module kspdg

go 1.24
