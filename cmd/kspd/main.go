// Command kspd runs the distributed KSP-DG deployment over TCP: worker
// processes host subgraphs and answer partial-KSP requests, and a master
// process builds the DTLP index, serves concurrent snapshot-isolated queries
// through the serve layer, and fans the refine step out to the workers — the
// same roles the paper assigns to SubgraphBolts and QueryBolts on Storm
// (Section 6.1).
//
// The master↔worker request path is an asynchronous batching pipeline:
// requests are tagged with IDs and multiplexed over a small connection pool
// per worker (-pool), and partial-KSP pair requests from different concurrent
// queries coalesce into shared batches (-batch-pairs / -batch-age) with
// cross-query deduplication.  -transport selects the legacy serialized
// transport, the multiplexed pipelined one, or the full batched pipeline
// (default).
//
// Processes either derive the dataset and partition deterministically from
// the shared flags, or — with -data-dir and -load-index — warm-start from a
// shared snapshot written by a previous run (or by kspgen), skipping DTLP
// construction entirely: the master recovers the full index and replays the
// update WAL, workers recover just the graph and partition.  With -data-dir
// the master also logs every applied update batch to the WAL and, with
// -snapshot-every, periodically rewrites the snapshot so restarts stay
// cheap.  The master replays a mixed workload: random queries flow through a
// bounded worker pool while weight-update batches land in between, each
// published as a new index epoch.
//
// Start two workers and a master on one machine:
//
//	kspd -mode worker -dataset NY -scale tiny -worker-id 0 -num-workers 2 -listen 127.0.0.1:7001 &
//	kspd -mode worker -dataset NY -scale tiny -worker-id 1 -num-workers 2 -listen 127.0.0.1:7002 &
//	kspd -mode master -dataset NY -scale tiny -num-workers 2 -connect 127.0.0.1:7001,127.0.0.1:7002 -queries 50 -k 3 -update-batches 3
//
// Cold-start once with persistence, then warm-start from the snapshot:
//
//	kspd -mode master -dataset NY -scale tiny -data-dir /var/lib/kspd -save-index -queries 10
//	kspd -mode master -data-dir /var/lib/kspd -load-index -queries 50 -update-batches 3
//
// Fault tolerance: with -replicas N every subgraph is hosted by N workers
// (the replica table is derived deterministically from the shared flags, so
// master and workers agree without coordination), worker health is tracked by
// -ping-every probes plus data-path outcomes, failed partial-KSP batches fail
// over to replicas, and -hedge-after optionally duplicates slow batches for
// tail latency.  All workers must be started with the same -replicas value:
//
//	kspd -mode worker -dataset NY -scale tiny -worker-id 0 -num-workers 2 -replicas 2 -listen 127.0.0.1:7001 &
//	kspd -mode worker -dataset NY -scale tiny -worker-id 1 -num-workers 2 -replicas 2 -listen 127.0.0.1:7002 &
//	kspd -mode master -dataset NY -scale tiny -num-workers 2 -replicas 2 -hedge-after 5ms \
//	    -connect 127.0.0.1:7001,127.0.0.1:7002 -queries 50 -k 3 -update-batches 3
//
// Topology mutations: -closures and -incidents weave road closures (an edge
// is deleted, later a new edge reopens between the same endpoints) and
// incidents (an edge is deleted while traffic spikes around it) into the
// scenario.  Each topology batch rebuilds only the touched subgraphs and is
// broadcast to every worker; with -replicas > 1 topology is rejected (the
// replica table is not extendable live yet).
//
// HTTP service: with -http the master skips the scenario replay and serves
// the JSON API (see internal/gateway: /v1/ksp, /v1/ksp/stream, /v1/updates,
// /v1/topology, /healthz, /metrics) until SIGINT/SIGTERM, then drains the
// listener and the query pool and — with -data-dir — writes a final snapshot.
// -tls-cert and -tls-key upgrade the listener to HTTPS:
//
//	kspd -mode master -dataset NY -scale tiny -http 127.0.0.1:8080 -http-rate 200
//	curl -s -X POST 127.0.0.1:8080/v1/ksp -d '{"source":3,"target":100,"k":2}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"kspdg/internal/cluster"
	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/gateway"
	"kspdg/internal/graph"
	"kspdg/internal/logx"
	"kspdg/internal/metrics"
	"kspdg/internal/partition"
	"kspdg/internal/rpcbatch"
	"kspdg/internal/serve"
	"kspdg/internal/store"
	"kspdg/internal/trace"
	"kspdg/internal/workload"
)

// lg is the process-wide leveled key=value logger (see internal/logx); main
// replaces it once -log-level is parsed.
var lg = logx.New(os.Stdout, logx.LevelInfo)

func main() {
	var (
		mode       = flag.String("mode", "master", "role: worker or master")
		dataset    = flag.String("dataset", "NY", "built-in dataset (NY, COL, FLA, CUSA)")
		scaleName  = flag.String("scale", "tiny", "dataset scale: tiny, small, medium")
		z          = flag.Int("z", 0, "subgraph size (0 = dataset default)")
		xi         = flag.Int("xi", 3, "bounding paths per boundary pair")
		workerID   = flag.Int("worker-id", 0, "this worker's id (worker mode)")
		numWorkers = flag.Int("num-workers", 1, "total number of workers in the deployment")
		listen     = flag.String("listen", "127.0.0.1:7001", "listen address (worker mode)")
		connect    = flag.String("connect", "", "comma-separated worker addresses (master mode)")
		queries    = flag.Int("queries", 20, "number of random queries to run (master mode)")
		k          = flag.Int("k", 2, "k shortest paths per query (master mode)")
		seed       = flag.Int64("seed", 42, "workload seed")
		batches    = flag.Int("update-batches", 2, "weight-update batches interleaved with the queries (master mode)")
		closures   = flag.Int("closures", 0, "road closure/reopen pairs woven into the scenario: an edge is deleted and later reinserted between the same endpoints (master mode)")
		incidents  = flag.Int("incidents", 0, "road incidents woven into the scenario: an edge is deleted and traffic spikes on the streets around it (master mode)")
		alpha      = flag.Float64("alpha", 0.2, "fraction of edges perturbed per update batch")
		tau        = flag.Float64("tau", 0.3, "relative weight variation per update batch")
		conc       = flag.Int("concurrency", 0, "query worker pool size (0 = GOMAXPROCS)")
		maxIter    = flag.Int("max-iterations", 0, "hard cap on reference paths examined per query (0 = default 10000; master mode)")
		stallWin   = flag.Int("stall-window", 0, "adaptive iteration budget: terminate a query near-exactly (reporting its bound gap) after this many iterations without bound-gap progress (0 = default 64, negative disables; master mode)")
		transport  = flag.String("transport", "batched", "master-worker transport: serialized (legacy lock-step), pipelined (multiplexed, per-query fan-out), or batched (multiplexed + cross-query pair batching)")
		pool       = flag.Int("pool", 2, "TCP connections per worker (pipelined and batched transports)")
		replicas   = flag.Int("replicas", 1, "workers hosting each subgraph; >1 enables health-checked failover on the batched transport (must match between master and workers)")
		hedgeAfter = flag.Duration("hedge-after", 0, "duplicate a partial-KSP batch to a replica when the primary is silent this long (master mode, needs -replicas > 1; 0 disables)")
		pingEvery  = flag.Duration("ping-every", 500*time.Millisecond, "worker health-check probe interval (master mode with -replicas > 1; 0 leaves detection to the data path)")
		batchPairs = flag.Int("batch-pairs", 0, "flush a coalesced partial-KSP batch at this many pairs (batched transport, 0 = default 64)")
		batchAge   = flag.Duration("batch-age", 0, "flush a coalesced batch when its oldest pair waited this long (batched transport, 0 = default 200µs)")
		dataDir    = flag.String("data-dir", "", "persistence directory for index snapshots and the update WAL")
		saveIndex  = flag.Bool("save-index", false, "force a fresh snapshot in -data-dir after a warm start (cold starts with -data-dir always snapshot; master mode)")
		loadIndex  = flag.Bool("load-index", false, "warm-start from the newest snapshot in -data-dir instead of deriving the dataset from flags")
		snapEvery  = flag.Int("snapshot-every", 0, "rewrite the snapshot every N applied update batches (master mode, needs -data-dir)")
		httpAddr   = flag.String("http", "", "serve the HTTP API on this address instead of replaying a scenario (master mode); SIGINT/SIGTERM drains and exits")
		tlsCert    = flag.String("tls-cert", "", "TLS certificate file for the -http listener (with -tls-key)")
		tlsKey     = flag.String("tls-key", "", "TLS private key file for the -http listener (with -tls-cert)")
		httpRate   = flag.Float64("http-rate", 100, "per-API-key admission rate in requests/second on the HTTP API (negative disables)")
		httpBurst  = flag.Int("http-burst", 0, "per-API-key token-bucket burst (0 = the rate)")
		httpTmout  = flag.Duration("http-timeout", 30*time.Second, "default per-request deadline applied when clients send no Request-Timeout-Ms header (0 = none)")
		workerPar  = flag.Int("worker-parallelism", 0, "partial-KSP executor width: goroutines one request's pairs (and heavy pairs' per-subgraph searches) fan out across on a worker, or in the master's local refine step (0 = GOMAXPROCS, 1 = sequential)")
		updatePar  = flag.Int("update-parallelism", 0, "goroutines refreshing affected subgraphs per weight-update batch (0 = GOMAXPROCS, 1 = serial; master mode)")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		pprofOn    = flag.Bool("pprof", false, "mount Go's net/http/pprof profiling handlers under /debug/pprof/ on the -http listener (master mode)")
		slowQuery  = flag.Duration("slow-query", 0, "log every query at least this slow with its trace id and per-stage breakdown; 0 logs only non-converged and budget-terminated outliers (master mode)")
		traceCap   = flag.Int("trace-capacity", 256, "retained query traces served on GET /debug/traces; 0 disables tracing (master mode)")
		traceSamp  = flag.Float64("trace-sample", 0.05, "probability a normal (fast, converged) query trace is retained; slow/non-converged/failed-over/canceled traces are always kept, negative keeps outliers only (master mode)")
	)
	flag.Parse()

	lvl, err := logx.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	lg = logx.New(os.Stdout, lvl)

	if (*tlsCert == "") != (*tlsKey == "") {
		fatal(fmt.Errorf("-tls-cert and -tls-key must be set together"))
	}
	if (*tlsCert != "" || *tlsKey != "") && *httpAddr == "" {
		fatal(fmt.Errorf("-tls-cert/-tls-key require -http"))
	}

	if *loadIndex && *dataDir == "" {
		fatal(fmt.Errorf("-load-index requires -data-dir"))
	}
	if (*saveIndex || *snapEvery > 0) && *dataDir == "" {
		fatal(fmt.Errorf("-save-index and -snapshot-every require -data-dir"))
	}

	switch *mode {
	case "worker":
		var part *partition.Partition
		if *loadIndex {
			start := time.Now()
			g, p, epoch, err := store.RecoverTopology(*dataDir)
			if err != nil {
				fatal(err)
			}
			part = p
			lg.Info("worker warm start",
				"worker", *workerID, "dir", *dataDir,
				"elapsed", time.Since(start).Round(time.Millisecond),
				"vertices", g.NumVertices(), "edges", g.NumEdges(),
				"subgraphs", part.NumSubgraphs(), "epoch", epoch)
		} else {
			_, p := deriveDataset(*dataset, *scaleName, *z)
			part = p
		}
		runWorker(part, *workerID, *numWorkers, *replicas, *listen, *workerPar)
	case "master":
		runMaster(masterConfig{
			dataset:    *dataset,
			scale:      *scaleName,
			z:          *z,
			xi:         *xi,
			connect:    *connect,
			queries:    *queries,
			k:          *k,
			seed:       *seed,
			batches:    *batches,
			closures:   *closures,
			incidents:  *incidents,
			alpha:      *alpha,
			tau:        *tau,
			conc:       *conc,
			maxIter:    *maxIter,
			stallWin:   *stallWin,
			transport:  *transport,
			pool:       *pool,
			replicas:   *replicas,
			hedgeAfter: *hedgeAfter,
			pingEvery:  *pingEvery,
			batch:      rpcbatch.Options{MaxPairs: *batchPairs, MaxDelay: *batchAge},
			dataDir:    *dataDir,
			saveIndex:  *saveIndex,
			loadIndex:  *loadIndex,
			snapEvery:  *snapEvery,
			httpAddr:   *httpAddr,
			tlsCert:    *tlsCert,
			tlsKey:     *tlsKey,
			httpRate:   *httpRate,
			httpBurst:  *httpBurst,
			httpTmout:  *httpTmout,
			workerPar:  *workerPar,
			updatePar:  *updatePar,
			pprofOn:    *pprofOn,
			slowQuery:  *slowQuery,
			traceCap:   *traceCap,
			traceSamp:  *traceSamp,
		})
	default:
		fatal(fmt.Errorf("unknown mode %q (want worker or master)", *mode))
	}
}

// deriveDataset builds the dataset and partition deterministically from the
// shared flags (the cold-start path).
func deriveDataset(dataset, scaleName string, z int) (*workload.Dataset, *partition.Partition) {
	scale, err := parseScale(scaleName)
	if err != nil {
		fatal(err)
	}
	ds, err := workload.BuiltinDataset(dataset, scale)
	if err != nil {
		fatal(err)
	}
	if z <= 0 {
		z = ds.DefaultZ
	}
	part, err := partition.PartitionGraph(ds.Graph, z)
	if err != nil {
		fatal(err)
	}
	return ds, part
}

func parseScale(name string) (workload.Scale, error) {
	switch name {
	case "tiny":
		return workload.ScaleTiny, nil
	case "small":
		return workload.ScaleSmall, nil
	case "medium":
		return workload.ScaleMedium, nil
	}
	return 0, fmt.Errorf("unknown scale %q", name)
}

// runWorker serves the subgraphs assigned to workerID until interrupted:
// round-robin over the partition at replication factor 1 (the historical
// assignment), the shared replica table above that — every process derives
// the same table from the same flags, so the master's failover routing and
// the workers' ownership agree without coordination.
func runWorker(part *partition.Partition, workerID, numWorkers, replicas int, listen string, parallelism int) {
	if numWorkers < 1 || workerID < 0 || workerID >= numWorkers {
		fatal(fmt.Errorf("invalid worker id %d of %d", workerID, numWorkers))
	}
	var owned []partition.SubgraphID
	if replicas > 1 {
		table, err := cluster.AssignReplicas(part, numWorkers, replicas)
		if err != nil {
			fatal(err)
		}
		owned = table.OwnedBy(workerID)
	} else {
		for i := 0; i < part.NumSubgraphs(); i++ {
			if i%numWorkers == workerID {
				owned = append(owned, partition.SubgraphID(i))
			}
		}
	}
	worker := cluster.NewWorker(workerID, part, owned)
	// A standalone worker maintains its own copy of the weights; incoming
	// update batches must be applied locally.
	worker.EnableLocalApply()
	worker.SetParallelism(parallelism)
	srv, err := cluster.Serve(listen, worker)
	if err != nil {
		fatal(err)
	}
	lg.Info("worker serving",
		"worker", workerID, "subgraphs", len(owned), "addr", srv.Addr(),
		"parallelism", resolveParallelism(parallelism))
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	_ = srv.Close()
}

type masterConfig struct {
	dataset, scale string
	z              int
	xi             int
	connect        string
	queries        int
	k              int
	seed           int64
	batches        int
	closures       int
	incidents      int
	alpha          float64
	tau            float64
	conc           int
	maxIter        int
	stallWin       int
	transport      string
	pool           int
	replicas       int
	hedgeAfter     time.Duration
	pingEvery      time.Duration
	batch          rpcbatch.Options
	dataDir        string
	saveIndex      bool
	loadIndex      bool
	snapEvery      int
	httpAddr       string
	tlsCert        string
	tlsKey         string
	httpRate       float64
	httpBurst      int
	httpTmout      time.Duration
	workerPar      int
	updatePar      int
	pprofOn        bool
	slowQuery      time.Duration
	traceCap       int
	traceSamp      float64
}

// runMaster obtains the graph, partition and DTLP index — warm-started from
// a snapshot or built cold from the dataset flags — connects to the workers,
// and replays a mixed query/update workload through the concurrent
// snapshot-isolated serve layer, reporting timing and scheduling statistics.
func runMaster(cfg masterConfig) {
	var st *store.Store
	if cfg.dataDir != "" {
		var err error
		st, err = store.Open(cfg.dataDir, store.Options{})
		if err != nil {
			fatal(err)
		}
		defer st.Close()
	}

	var (
		name  string
		g     *graph.Graph
		part  *partition.Partition
		index *dtlp.Index
	)
	if cfg.loadIndex {
		start := time.Now()
		builds := dtlp.SubgraphBuildCount()
		rec, err := st.Recover()
		if err != nil {
			fatal(err)
		}
		name = "snapshot:" + cfg.dataDir
		g, part, index = rec.Graph, rec.Partition, rec.Index
		lg.Info("master warm start",
			"dir", cfg.dataDir, "elapsed", time.Since(start).Round(time.Millisecond),
			"snapshot_epoch", rec.SnapshotEpoch, "replayed_batches", rec.ReplayedBatches,
			"epoch", rec.Epoch, "subgraph_builds", dtlp.SubgraphBuildCount()-builds)
		lg.Info("dataset ready", "dataset", name,
			"vertices", g.NumVertices(), "edges", g.NumEdges(), "subgraphs", part.NumSubgraphs())
	} else {
		ds, p := deriveDataset(cfg.dataset, cfg.scale, cfg.z)
		name, g, part = ds.Name, ds.Graph, p
		lg.Info("dataset ready", "dataset", name,
			"vertices", g.NumVertices(), "edges", g.NumEdges(), "subgraphs", part.NumSubgraphs())
		start := time.Now()
		var err error
		index, err = dtlp.Build(part, dtlp.Config{Xi: cfg.xi})
		if err != nil {
			fatal(err)
		}
		lg.Info("dtlp built", "elapsed", time.Since(start).Round(time.Millisecond),
			"skeleton_vertices", index.Skeleton().NumVertices(), "skeleton_edges", index.Skeleton().NumEdges())
	}
	// A cold-built index attached to a store always bootstraps a snapshot:
	// WAL records without a base snapshot are unrecoverable, and they would
	// poison the next cold start in the same directory.  -save-index
	// additionally forces a fresh (compacting) snapshot after a warm start.
	if st != nil && (cfg.saveIndex || !cfg.loadIndex) {
		epoch, err := st.SaveSnapshot(index)
		if err != nil {
			fatal(err)
		}
		lg.Info("snapshot written", "dir", cfg.dataDir, "epoch", epoch)
	}

	// Sharded write-path maintenance (no-op at 0: GOMAXPROCS is the default).
	index.SetUpdateParallelism(cfg.updatePar)

	// Metrics shared between the batching transport and the HTTP gateway:
	// every flushed partial-KSP batch feeds the per-pair latency histogram,
	// one observation per pair it carried.
	reg := metrics.NewRegistry()
	pairLat := reg.Histogram("kspd_rpc_pair_seconds",
		"Partial-KSP round-trip latency per pair (each shipped pair observes its batch's latency).", nil)
	cfg.batch.Observe = func(pairs int, d time.Duration) {
		s := d.Seconds()
		for i := 0; i < pairs; i++ {
			pairLat.Observe(s)
		}
	}

	// Stage-duration histogram fed by the tracer: every finished span observes
	// its duration under its stage name.  The family is registered even when
	// tracing is disabled so dashboards see a stable metric set.
	stageLat := reg.HistogramVec("kspd_stage_seconds",
		"Durations of traced pipeline stages (request, admission, queue, execute, filter, refine, rpc_wait, rpc_batch, rpc, worker_exec, rebuild, wal, broadcast, ...).",
		nil, "stage")
	var tracer *trace.Tracer
	if cfg.traceCap > 0 {
		tracer = trace.New(trace.Options{
			Capacity:      cfg.traceCap,
			SampleRate:    cfg.traceSamp,
			SlowThreshold: cfg.slowQuery,
			OnSpanFinish: func(stage string, d time.Duration) {
				stageLat.With(stage).Observe(d.Seconds())
			},
		})
	}

	var provider core.PartialProvider
	var broadcast func([]graph.WeightUpdate) error
	var broadcastTopo func(graph.TopologyUpdate) error
	var member *cluster.Membership
	if cfg.connect != "" {
		copts := cluster.ClientOptions{PoolSize: cfg.pool}
		if cfg.transport == "serialized" {
			copts = cluster.ClientOptions{Serialize: true}
		}
		var remotes []*cluster.RemoteWorker
		for _, addr := range strings.Split(cfg.connect, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			rw, err := cluster.DialPool(addr, copts)
			if err != nil {
				fatal(err)
			}
			defer rw.Close()
			remotes = append(remotes, rw)
			lg.Info("connected to worker", "addr", addr)
		}
		if len(remotes) == 0 {
			fatal(fmt.Errorf("-connect %q contains no worker addresses", cfg.connect))
		}
		switch cfg.transport {
		case "serialized", "pipelined":
			if cfg.replicas > 1 {
				fatal(fmt.Errorf("-replicas %d needs the batched transport, not %q", cfg.replicas, cfg.transport))
			}
			provider = cluster.NewRemoteProvider(remotes)
		case "batched":
			if cfg.replicas > 1 {
				table, err := cluster.AssignReplicas(part, len(remotes), cfg.replicas)
				if err != nil {
					fatal(err)
				}
				rp, err := cluster.NewReplicatedRemoteProvider(remotes, part, table, cluster.ReplicatedOptions{
					Batch:      cfg.batch,
					HedgeAfter: cfg.hedgeAfter,
					PingEvery:  cfg.pingEvery,
				})
				if err != nil {
					fatal(err)
				}
				defer rp.Close()
				provider = rp
				member = rp.Membership()
				lg.Info("replication enabled", "factor", table.Factor(),
					"hedge_after", cfg.hedgeAfter, "ping_every", cfg.pingEvery)
			} else {
				bp := cluster.NewBatchedRemoteProvider(remotes, cfg.batch)
				defer bp.Close()
				provider = bp
			}
		default:
			fatal(fmt.Errorf("unknown -transport %q (want serialized, pipelined, or batched)", cfg.transport))
		}
		lg.Info("transport ready", "transport", cfg.transport, "pool", remotes[0].PoolSize())
		broadcast = func(batch []graph.WeightUpdate) error {
			for _, rw := range remotes {
				if _, err := rw.ApplyUpdates(batch); err != nil {
					return err
				}
			}
			return nil
		}
		if cfg.replicas > 1 {
			// The replica table routes partial-KSP batches by subgraph; it is
			// derived once from the pre-topology partition and failover-aware
			// extension is not wired up yet, so topology mutations are
			// rejected instead of silently leaving new subgraphs unrouted.
			broadcastTopo = func(graph.TopologyUpdate) error {
				return fmt.Errorf("kspd: topology updates over a replicated transport (-replicas > 1) are not supported; restart the fleet on the new graph instead")
			}
		} else {
			nw := len(remotes)
			broadcastTopo = func(up graph.TopologyUpdate) error {
				req := cluster.TopologyUpdateRequest{Update: up, NumWorkers: nw, Factor: 1}
				for _, rw := range remotes {
					if _, err := rw.ApplyTopology(req); err != nil {
						return err
					}
				}
				return nil
			}
		}
	} else {
		lg.Info("no -connect given, running the refine step locally")
	}
	srvOpts := serve.Options{
		Workers:            cfg.conc,
		Broadcast:          broadcast,
		BroadcastTopology:  broadcastTopo,
		SnapshotEvery:      cfg.snapEvery,
		Engine:             core.Options{MaxIterations: cfg.maxIter, StallWindow: cfg.stallWin, Parallelism: cfg.workerPar},
		Logger:             lg,
		SlowQueryThreshold: cfg.slowQuery,
	}
	if st != nil {
		srvOpts.Store = st
	}
	srv := serve.New(index, provider, srvOpts)
	defer srv.Close()

	if cfg.httpAddr != "" {
		runHTTP(cfg, srv, index, st, member, reg, tracer)
		return
	}

	sc := workload.GenerateMixed(g, cfg.queries, cfg.batches, cfg.k, cfg.alpha, cfg.tau, cfg.seed)
	if cfg.closures > 0 || cfg.incidents > 0 {
		sc = workload.InjectRoadEvents(g, sc, workload.RoadEventsConfig{
			Closures:  cfg.closures,
			Incidents: cfg.incidents,
			Seed:      cfg.seed + 7,
		})
		lg.Info("injected topology events", "batches", sc.NumTopologyBatches(),
			"closures", cfg.closures, "incidents", cfg.incidents)
	}
	report, err := srv.RunScenario(sc)
	if err != nil {
		fatal(err)
	}
	if errs := report.Errs(); len(errs) > 0 {
		fatal(errs[0])
	}
	totalIter := 0
	for i, qr := range report.Results {
		totalIter += qr.Result.Iterations
		if i < 3 {
			lg.Info("query sample", "i", i,
				"source", qr.Query.Source, "target", qr.Query.Target,
				"paths", len(qr.Result.Paths), "best", bestDist(qr.Result),
				"epoch", qr.Result.Epoch, "iterations", qr.Result.Iterations,
				"elapsed", qr.Result.Elapsed.Round(time.Microsecond))
		}
	}
	stats := srv.Stats()
	lg.Info("scenario complete",
		"queries", len(report.Results), "k", cfg.k,
		"update_batches", report.BatchesApplied, "topology_batches", report.TopologyApplied,
		"elapsed", report.Elapsed.Round(time.Millisecond),
		"avg_iterations", fmt.Sprintf("%.2f", float64(totalIter)/float64(max(len(report.Results), 1))))
	if stats.TopologyBatches > 0 {
		lg.Info("topology maintenance", "subgraphs_rebuilt", stats.SubgraphsRebuilt,
			"topology_batches", stats.TopologyBatches)
	}
	lg.Info("scheduling stats", "epoch", stats.Epoch,
		"cache_hits", stats.CacheHits, "coalesced", stats.Coalesced,
		"updates_applied", stats.UpdatesApplied, "snapshots", stats.Snapshots)
	if stats.NonConverged > 0 {
		lg.Warn("queries cut off with fewer than k proven paths (results may be truncated)",
			"count", stats.NonConverged)
	}
	if stats.BudgetTerminated > 0 {
		lg.Info("budget-terminated queries (near-exact answers)",
			"count", stats.BudgetTerminated, "max_bound_gap", fmt.Sprintf("%.3f", stats.MaxBoundGap))
	}
	if stats.RPCBatches > 0 {
		lg.Info("rpc batching stats", "batches", stats.RPCBatches,
			"pairs_coalesced", stats.PairsCoalesced, "dedup_hits", stats.DedupHits)
	}
	if cfg.replicas > 1 {
		lg.Info("failover stats", "failovers", stats.Failovers,
			"hedged_batches", stats.HedgedBatches, "hedge_wins", stats.HedgeWins,
			"hedge_drops", stats.HedgeDrops)
	}
}

// runHTTP turns the master into a long-running network service: the gateway
// serves the JSON API until SIGINT/SIGTERM, then the process drains in order
// — stop accepting HTTP, finish in-flight requests, drain the query pool,
// and write a final snapshot when persistence is configured — so a rolling
// restart loses neither queries nor durability.
func runHTTP(cfg masterConfig, srv *serve.Server, index *dtlp.Index, st *store.Store, member *cluster.Membership, reg *metrics.Registry, tracer *trace.Tracer) {
	gw := gateway.New(srv, gateway.Options{
		Rate:              cfg.httpRate,
		Burst:             cfg.httpBurst,
		DefaultTimeout:    cfg.httpTmout,
		Membership:        member,
		Registry:          reg,
		WorkerParallelism: resolveParallelism(cfg.workerPar),
		Tracer:            tracer,
		EnablePprof:       cfg.pprofOn,
	})
	ln, err := net.Listen("tcp", cfg.httpAddr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: gw}
	scheme := "http"
	if cfg.tlsCert != "" {
		scheme = "https"
	}
	lg.Info("serving HTTP API", "url", fmt.Sprintf("%s://%s", scheme, ln.Addr()),
		"rate", cfg.httpRate, "default_timeout", cfg.httpTmout,
		"tracing", tracer != nil, "pprof", cfg.pprofOn)
	errCh := make(chan error, 1)
	go func() {
		var err error
		if cfg.tlsCert != "" {
			err = hs.ServeTLS(ln, cfg.tlsCert, cfg.tlsKey)
		} else {
			err = hs.Serve(ln)
		}
		errCh <- err
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		lg.Info("draining HTTP listener", "signal", s)
	case err := <-errCh:
		fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	if err := hs.Shutdown(ctx); err != nil {
		lg.Warn("HTTP drain incomplete", "err", err)
	}
	cancel()
	srv.Close() // drain in-flight queries
	stats := srv.Stats()
	lg.Info("drained", "epoch", stats.Epoch,
		"queries_served", stats.QueriesServed, "cache_hits", stats.CacheHits,
		"coalesced", stats.Coalesced, "truncated", stats.NonConverged,
		"budget_terminated", stats.BudgetTerminated, "canceled", stats.Canceled,
		"update_batches", stats.UpdateBatches)
	if st != nil {
		epoch, err := st.SaveSnapshot(index)
		if err != nil {
			fatal(fmt.Errorf("final snapshot: %w", err))
		}
		lg.Info("final snapshot written", "dir", cfg.dataDir, "epoch", epoch)
	}
}

// resolveParallelism reports the effective executor width for a configured
// value (0 means GOMAXPROCS, matching Worker.SetParallelism).
func resolveParallelism(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

func bestDist(res core.Result) float64 {
	if len(res.Paths) == 0 {
		return -1
	}
	return res.Paths[0].Dist
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "kspd: %v\n", err)
	os.Exit(1)
}
