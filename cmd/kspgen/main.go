// Command kspgen generates a synthetic scale-model road network and writes
// it in DIMACS ".gr" format, so it can be inspected, shared, or re-loaded by
// the other tools (and so a real DIMACS file can be swapped in seamlessly).
// With -snapshot-dir it additionally partitions the network, builds the DTLP
// index, and writes an internal/store snapshot, so a whole worker fleet can
// warm-start (`kspd -load-index`) from one prebuilt index instead of each
// process re-deriving the dataset from flags.
//
// Usage:
//
//	kspgen -dataset NY -scale small -out ny.gr
//	kspgen -width 120 -height 90 -seed 7 -out custom.gr
//	kspgen -dataset NY -scale tiny -snapshot-dir /var/lib/kspd -xi 3
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kspdg/internal/dtlp"
	"kspdg/internal/partition"
	"kspdg/internal/store"
	"kspdg/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "built-in dataset to generate (NY, COL, FLA, CUSA); empty means custom")
		scale   = flag.String("scale", "small", "built-in dataset scale: tiny, small, medium")
		width   = flag.Int("width", 50, "custom grid width")
		height  = flag.Int("height", 40, "custom grid height")
		seed    = flag.Int64("seed", 1, "custom generator seed")
		directd = flag.Bool("directed", false, "generate a directed network")
		out     = flag.String("out", "", "output file (default stdout; with -snapshot-dir, empty skips the DIMACS dump)")
		snapDir = flag.String("snapshot-dir", "", "also build the DTLP index and write an internal/store snapshot into this directory")
		z       = flag.Int("z", 0, "subgraph size for -snapshot-dir (0 = dataset default)")
		xi      = flag.Int("xi", 3, "bounding paths per boundary pair for -snapshot-dir")
	)
	flag.Parse()

	var ds *workload.Dataset
	var err error
	if *dataset != "" {
		var sc workload.Scale
		switch *scale {
		case "tiny":
			sc = workload.ScaleTiny
		case "small":
			sc = workload.ScaleSmall
		case "medium":
			sc = workload.ScaleMedium
		default:
			fmt.Fprintf(os.Stderr, "kspgen: unknown scale %q\n", *scale)
			os.Exit(2)
		}
		ds, err = workload.BuiltinDataset(*dataset, sc)
	} else {
		ds, err = workload.Generate(workload.RoadNetworkSpec{
			Name: "custom", Width: *width, Height: *height, DiagonalFraction: 0.15,
			MissingFraction: 0.25, MinWeight: 1, MaxWeight: 10, Directed: *directd, Seed: *seed, DefaultZ: 100,
		})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "kspgen: %v\n", err)
		os.Exit(1)
	}

	if *out != "" || *snapDir == "" {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kspgen: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := workload.WriteDIMACS(w, ds.Graph); err != nil {
			fmt.Fprintf(os.Stderr, "kspgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "kspgen: wrote %s (%d vertices, %d edges)\n", ds.Name, ds.Graph.NumVertices(), ds.Graph.NumEdges())
	}

	if *snapDir != "" {
		if *z <= 0 {
			*z = ds.DefaultZ
		}
		start := time.Now()
		part, err := partition.PartitionGraph(ds.Graph, *z)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kspgen: %v\n", err)
			os.Exit(1)
		}
		index, err := dtlp.Build(part, dtlp.Config{Xi: *xi})
		if err != nil {
			fmt.Fprintf(os.Stderr, "kspgen: %v\n", err)
			os.Exit(1)
		}
		st, err := store.Open(*snapDir, store.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "kspgen: %v\n", err)
			os.Exit(1)
		}
		epoch, err := st.SaveSnapshot(index)
		if err == nil {
			err = st.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "kspgen: %v\n", err)
			os.Exit(1)
		}
		stats := index.Stats()
		fmt.Fprintf(os.Stderr, "kspgen: snapshot of %s at epoch %d in %s (%d subgraphs, %d bounding paths, built in %v)\n",
			ds.Name, epoch, *snapDir, stats.NumSubgraphs, stats.NumBoundingPaths, time.Since(start).Round(time.Millisecond))
	}
}
