// Command kspbench regenerates the tables and figures of the paper's
// evaluation section against the scale-model datasets.
//
// Usage:
//
//	kspbench -list
//	kspbench -exp fig35
//	kspbench -exp all -scale small -nq 200 -workers 8
//
// Each experiment prints a plain-text table whose rows correspond to the
// series the paper plots; EXPERIMENTS.md records a captured run.
package main

import (
	"flag"
	"fmt"
	"os"

	"kspdg/internal/bench"
	"kspdg/internal/workload"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments and exit")
		exp     = flag.String("exp", "all", "experiment to run (e.g. table1, fig35, ablation-vfrag) or 'all'")
		scale   = flag.String("scale", "tiny", "dataset scale: tiny, small, or medium")
		nq      = flag.Int("nq", 0, "queries per batch (0 = scale default)")
		xi      = flag.Int("xi", 3, "number of bounding paths per boundary pair (ξ)")
		k       = flag.Int("k", 2, "default k")
		seed    = flag.Int64("seed", 42, "random seed for workloads")
		workers = flag.Int("workers", 4, "default simulated cluster size")
		jsonDir = flag.String("json", "", "also write machine-readable BENCH_<name>.json results (with ns/op and allocs) into this directory")
	)
	flag.Parse()

	if *list {
		for _, name := range bench.Experiments() {
			title, _ := bench.Describe(name)
			fmt.Printf("%-18s %s\n", name, title)
		}
		return
	}

	suite := bench.DefaultSuite()
	switch *scale {
	case "tiny":
		suite.Scale = workload.ScaleTiny
		suite.Nq = 60
	case "small":
		suite.Scale = workload.ScaleSmall
		suite.Nq = 150
	case "medium":
		suite.Scale = workload.ScaleMedium
		suite.Nq = 300
	default:
		fmt.Fprintf(os.Stderr, "kspbench: unknown scale %q (want tiny, small, or medium)\n", *scale)
		os.Exit(2)
	}
	if *nq > 0 {
		suite.Nq = *nq
	}
	suite.Xi = *xi
	suite.K = *k
	suite.Seed = *seed
	suite.Workers = *workers

	names := []string{*exp}
	if *exp == "all" {
		names = bench.Experiments()
	}
	for _, name := range names {
		if *jsonDir == "" {
			table, err := suite.Run(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kspbench: %v\n", err)
				os.Exit(1)
			}
			table.Fprint(os.Stdout)
			continue
		}
		table, metrics, err := suite.RunMeasured(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kspbench: %v\n", err)
			os.Exit(1)
		}
		table.Fprint(os.Stdout)
		path, err := bench.WriteJSON(*jsonDir, metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kspbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "kspbench: wrote %s (%.3fms/op, %d allocs)\n",
			path, float64(metrics.NsPerOp)/1e6, metrics.Allocs)
	}
}
