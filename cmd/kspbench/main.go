// Command kspbench regenerates the tables and figures of the paper's
// evaluation section against the scale-model datasets.
//
// Usage:
//
//	kspbench -list
//	kspbench -exp fig35
//	kspbench -exp all -scale small -nq 200 -workers 8
//	kspbench -check BENCH_rpc.json -check-tolerance 2
//	kspbench -exp rpc -cpuprofile cpu.pprof -memprofile alloc.pprof
//
// Each experiment prints a plain-text table whose rows correspond to the
// series the paper plots; EXPERIMENTS.md records a captured run.
//
// -check is the CI regression gate: it re-runs the experiment recorded in a
// committed BENCH_<name>.json baseline with the baseline's exact parameters
// and exits nonzero when the fresh ns/op exceeds the baseline's by more than
// -check-tolerance, or the fresh allocation count exceeds the baseline's by
// more than -check-alloc-tolerance.  Refresh a baseline by re-running the
// experiment with -json and committing the new file.
//
// -cpuprofile and -memprofile write pprof profiles covering the run (in
// -check mode too, so a failed gate leaves behind the evidence needed to
// diagnose it).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"kspdg/internal/bench"
	"kspdg/internal/workload"
)

var (
	list       = flag.Bool("list", false, "list available experiments and exit")
	exp        = flag.String("exp", "all", "experiment to run (e.g. table1, fig35, ablation-vfrag) or 'all'")
	scale      = flag.String("scale", "tiny", "dataset scale: tiny, small, or medium")
	nq         = flag.Int("nq", 0, "queries per batch (0 = scale default)")
	xi         = flag.Int("xi", 3, "number of bounding paths per boundary pair (ξ)")
	k          = flag.Int("k", 2, "default k")
	seed       = flag.Int64("seed", 42, "random seed for workloads")
	workers    = flag.Int("workers", 4, "default simulated cluster size")
	jsonDir    = flag.String("json", "", "also write machine-readable BENCH_<name>.json results (with ns/op and allocs) into this directory")
	check      = flag.String("check", "", "regression gate: re-run the experiment recorded in this BENCH_<name>.json baseline and fail on a slowdown beyond -check-tolerance or an allocation increase beyond -check-alloc-tolerance")
	checkTl    = flag.Float64("check-tolerance", 1.5, "maximum allowed fresh/baseline ns/op ratio for -check")
	checkAlTl  = flag.Float64("check-alloc-tolerance", 1.25, "maximum allowed fresh/baseline allocation-count ratio for -check")
	cpuProfile = flag.String("cpuprofile", "", "write a CPU pprof profile covering the run to this file")
	memProfile = flag.String("memprofile", "", "write a heap (alloc) pprof profile at the end of the run to this file")
)

func main() {
	flag.Parse()
	os.Exit(run())
}

// run carries the whole invocation so profile writers flush before the
// process exits with the gate's status code.
func run() int {
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kspbench: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "kspbench: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "kspbench: wrote CPU profile %s\n", *cpuProfile)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kspbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile reflects the run
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "kspbench: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "kspbench: wrote alloc profile %s\n", *memProfile)
		}()
	}

	if *check != "" {
		return runCheck(*check, *checkTl, *checkAlTl, *jsonDir)
	}

	if *list {
		for _, name := range bench.Experiments() {
			title, _ := bench.Describe(name)
			fmt.Printf("%-18s %s\n", name, title)
		}
		return 0
	}

	suite := bench.DefaultSuite()
	switch *scale {
	case "tiny":
		suite.Scale = workload.ScaleTiny
		suite.Nq = 60
	case "small":
		suite.Scale = workload.ScaleSmall
		suite.Nq = 150
	case "medium":
		suite.Scale = workload.ScaleMedium
		suite.Nq = 300
	default:
		fmt.Fprintf(os.Stderr, "kspbench: unknown scale %q (want tiny, small, or medium)\n", *scale)
		return 2
	}
	if *nq > 0 {
		suite.Nq = *nq
	}
	suite.Xi = *xi
	suite.K = *k
	suite.Seed = *seed
	suite.Workers = *workers

	names := []string{*exp}
	if *exp == "all" {
		names = bench.Experiments()
	}
	for _, name := range names {
		if *jsonDir == "" {
			table, err := suite.Run(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kspbench: %v\n", err)
				return 1
			}
			table.Fprint(os.Stdout)
			continue
		}
		table, metrics, err := suite.RunMeasured(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kspbench: %v\n", err)
			return 1
		}
		table.Fprint(os.Stdout)
		path, err := bench.WriteJSON(*jsonDir, metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kspbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "kspbench: wrote %s (%.3fms/op, %d allocs)\n",
			path, float64(metrics.NsPerOp)/1e6, metrics.Allocs)
	}
	return 0
}

// runCheck is the -check mode: replay the baseline's experiment with its
// exact parameters and gate on both the ns/op ratio and the allocation-count
// ratio.
func runCheck(baselinePath string, tolerance, allocTolerance float64, jsonDir string) int {
	baseline, err := bench.ReadJSON(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kspbench: %v\n", err)
		return 2
	}
	suite, err := bench.SuiteFromMetrics(baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kspbench: %v\n", err)
		return 2
	}
	fmt.Printf("kspbench: checking %s against %s (scale %s, nq %d, k %d, %d workers, tolerance %.2fx time / %.2fx allocs)\n",
		baseline.Name, baselinePath, baseline.Scale, baseline.Nq, baseline.K, baseline.Workers, tolerance, allocTolerance)
	table, fresh, err := suite.RunMeasured(baseline.Name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kspbench: %v\n", err)
		return 1
	}
	table.Fprint(os.Stdout)
	if jsonDir != "" {
		if path, err := bench.WriteJSON(jsonDir, fresh); err == nil {
			fmt.Fprintf(os.Stderr, "kspbench: wrote %s\n", path)
		} else {
			fmt.Fprintf(os.Stderr, "kspbench: %v\n", err)
		}
	}
	failed := false
	if err := bench.CheckRegression(baseline, fresh, tolerance); err != nil {
		fmt.Fprintf(os.Stderr, "kspbench: %v\n", err)
		failed = true
	}
	if err := bench.CheckAllocRegression(baseline, fresh, allocTolerance); err != nil {
		fmt.Fprintf(os.Stderr, "kspbench: %v\n", err)
		failed = true
	}
	if failed {
		return 1
	}
	fmt.Printf("kspbench: %s within tolerance: %.3fms/op vs baseline %.3fms/op (%.2fx <= %.2fx), %d allocs vs baseline %d\n",
		baseline.Name, float64(fresh.NsPerOp)/1e6, float64(baseline.NsPerOp)/1e6,
		float64(fresh.NsPerOp)/float64(baseline.NsPerOp), tolerance, fresh.Allocs, baseline.Allocs)
	return 0
}
