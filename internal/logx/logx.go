// Package logx is a minimal leveled key=value logger shared by kspd, the
// gateway, the serve layer, and cluster warnings.  Like internal/metrics and
// internal/trace it is dependency-free and instance-based: a nil *Logger is
// valid and discards everything, so library code can log unconditionally.
//
// Lines render as `time=RFC3339 level=info msg=... k=v k=v`; values
// containing spaces, quotes, or '=' are quoted with %q.
package logx

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level the way lines print it.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel maps "debug", "info", "warn"/"warning", "error" (any case) to a
// Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("logx: unknown level %q", s)
	}
}

// Logger writes leveled key=value lines to one writer.  Methods are safe for
// concurrent use; a nil *Logger discards everything.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level Level
	now   func() time.Time // test hook; nil means time.Now
}

// New returns a Logger writing lines at or above level to w.
func New(w io.Writer, level Level) *Logger {
	return &Logger{w: w, level: level}
}

// Enabled reports whether lines at level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv...) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv...) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv...) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv...) }

func (l *Logger) log(level Level, msg string, kv ...any) {
	if !l.Enabled(level) {
		return
	}
	nowFn := l.now
	if nowFn == nil {
		nowFn = time.Now
	}
	var b strings.Builder
	b.Grow(96)
	b.WriteString("time=")
	b.WriteString(nowFn().UTC().Format(time.RFC3339))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quote(msg))
	for i := 0; i+1 < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(quote(fmt.Sprint(kv[i+1])))
	}
	if len(kv)%2 != 0 {
		b.WriteString(" !BADKEY=")
		b.WriteString(quote(fmt.Sprint(kv[len(kv)-1])))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// quote returns s as-is when it is a bare token, else %q-quoted.
func quote(s string) string {
	if s == "" {
		return `""`
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '"' || c == '=' || c >= 0x7f {
			return fmt.Sprintf("%q", s)
		}
	}
	return s
}
