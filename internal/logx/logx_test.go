package logx

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fixed pins the logger clock so lines are byte-for-byte comparable.
func fixed(l *Logger) *Logger {
	l.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	return l
}

func TestLineFormat(t *testing.T) {
	var b strings.Builder
	l := fixed(New(&b, LevelInfo))
	l.Info("query done", "epoch", 7, "elapsed", 250*time.Millisecond, "converged", true)
	got := b.String()
	want := "time=2026-08-08T12:00:00Z level=info msg=\"query done\" epoch=7 elapsed=250ms converged=true\n"
	if got != want {
		t.Errorf("line = %q, want %q", got, want)
	}
}

func TestQuoting(t *testing.T) {
	var b strings.Builder
	l := fixed(New(&b, LevelInfo))
	l.Info("m", "plain", "bare", "spaced", "a b", "eq", "k=v", "quote", `say "hi"`, "empty", "")
	got := b.String()
	for _, want := range []string{
		` plain=bare`, ` spaced="a b"`, ` eq="k=v"`, ` quote="say \"hi\""`, ` empty=""`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("line %q missing %q", got, want)
		}
	}
}

func TestLevelFiltering(t *testing.T) {
	var b strings.Builder
	l := fixed(New(&b, LevelWarn))
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	got := b.String()
	if strings.Contains(got, "level=debug") || strings.Contains(got, "level=info") {
		t.Errorf("below-level lines leaked: %q", got)
	}
	if !strings.Contains(got, "level=warn") || !strings.Contains(got, "level=error") {
		t.Errorf("at-level lines missing: %q", got)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Error("Enabled disagrees with filtering")
	}
}

func TestOddKeyValues(t *testing.T) {
	var b strings.Builder
	l := fixed(New(&b, LevelInfo))
	l.Info("m", "k1", 1, "dangling")
	if !strings.Contains(b.String(), "!BADKEY=dangling") {
		t.Errorf("odd kv tail not flagged: %q", b.String())
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x", "k", "v")
	l.Warn("x")
	l.Error("x")
	if l.Enabled(LevelError) {
		t.Error("nil logger must report disabled")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "": LevelInfo,
		"warn": LevelWarn, "Warning": LevelWarn, "error": LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("unknown level must error")
	}
}

func TestConcurrentWritesStayLineAtomic(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		lines = append(lines, string(p))
		mu.Unlock()
		return len(p), nil
	})
	l := New(w, LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Info("tick", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	if len(lines) != 800 {
		t.Fatalf("got %d writes, want 800 (one per line)", len(lines))
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "time=") || !strings.HasSuffix(ln, "\n") {
			t.Fatalf("torn line %q", ln)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
