package cluster

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/rpcbatch"
	"kspdg/internal/testutil"
)

// buildServedWorker builds one TCP worker server owning all subgraphs of the
// paper graph and returns it with its partition.
func buildServedWorker(t *testing.T) (*Server, *partition.Partition) {
	t.Helper()
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	var owned []partition.SubgraphID
	for i := 0; i < p.NumSubgraphs(); i++ {
		owned = append(owned, partition.SubgraphID(i))
	}
	srv, err := Serve("127.0.0.1:0", NewWorker(0, p, owned))
	if err != nil {
		t.Fatal(err)
	}
	return srv, p
}

// somePairs returns n boundary pair requests of the partition.
func somePairs(t *testing.T, p *partition.Partition, n int) []core.PairRequest {
	t.Helper()
	boundary := p.BoundaryVertices()
	if len(boundary) < 2 {
		t.Skip("need boundary vertices")
	}
	var pairs []core.PairRequest
	for i := 0; i < n; i++ {
		pairs = append(pairs, core.PairRequest{
			A: boundary[i%len(boundary)],
			B: boundary[(i+1)%len(boundary)],
		})
	}
	return pairs
}

// waitGoroutinesSettle waits until the goroutine count drops back to at most
// base plus a small slack, failing the test otherwise.
func waitGoroutinesSettle(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d now vs %d at baseline", n, base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerCloseWithInflightRequests closes the server while many
// multiplexed requests are executing.  Close must return (no deadlock), the
// in-flight request goroutines must drain (no leaks under -race), and the
// client callers must all get an answer or an error instead of hanging.
func TestServerCloseWithInflightRequests(t *testing.T) {
	base := runtime.NumGoroutine()
	srv, p := buildServedWorker(t)
	rw, err := DialPool(srv.Addr(), ClientOptions{PoolSize: 2, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	pairs := somePairs(t, p, 3)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				// Errors are expected once the server goes down; hanging or
				// panicking is not.
				_, _ = rw.PartialKSP(PartialKSPRequest{Pairs: pairs, K: 2})
			}
		}()
	}
	time.Sleep(5 * time.Millisecond) // let requests get in flight
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	rw.Close()
	waitGoroutinesSettle(t, base)
}

// TestServerCloseRacesNewConnections closes the server while fresh
// connections are being dialed: every accepted connection must be closed and
// supervised regardless of which side of the closed-check it lands on.
func TestServerCloseRacesNewConnections(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 10; round++ {
		srv, _ := buildServedWorker(t)
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rw, err := DialPool(srv.Addr(), ClientOptions{MaxAttempts: 1})
				if err != nil {
					return // listener already closed: fine
				}
				_, _ = rw.Stats()
				rw.Close()
			}()
		}
		srv.Close()
		wg.Wait()
	}
	waitGoroutinesSettle(t, base)
}

// TestRemoteWorkerReconnectsAfterRestart kills the server under an idle
// client, restarts it on the same address, and requires later requests to
// succeed through the capped-backoff redial instead of failing the query.
func TestRemoteWorkerReconnectsAfterRestart(t *testing.T) {
	srv, p := buildServedWorker(t)
	addr := srv.Addr()
	rw, err := DialPool(addr, ClientOptions{PoolSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	pairs := somePairs(t, p, 1)
	if _, err := rw.PartialKSP(PartialKSPRequest{Pairs: pairs, K: 2}); err != nil {
		t.Fatalf("first request: %v", err)
	}

	srv.Close()
	// Restart on the same address (retry briefly: the kernel may need a
	// moment to release the port).
	var srv2 *Server
	for i := 0; i < 50; i++ {
		g := testutil.PaperGraph(t)
		p2, err := partition.PartitionGraph(g, 6)
		if err != nil {
			t.Fatal(err)
		}
		var owned []partition.SubgraphID
		for j := 0; j < p2.NumSubgraphs(); j++ {
			owned = append(owned, partition.SubgraphID(j))
		}
		srv2, err = Serve(addr, NewWorker(0, p2, owned))
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if srv2 == nil {
		t.Skip("could not rebind restart address")
	}
	defer srv2.Close()

	resp, err := rw.PartialKSP(PartialKSPRequest{Pairs: pairs, K: 2})
	if err != nil {
		t.Fatalf("request after restart should reconnect: %v", err)
	}
	if resp.NumPairs() != 1 {
		t.Fatalf("expected one result slot, got %d", resp.NumPairs())
	}
}

// TestRemoteWorkerKillServerMidBatch is the satellite's kill-the-server test:
// a stream of concurrent requests is in flight when the server dies and is
// restarted; requests during the outage may fail after the bounded retries,
// but none may hang, and requests after the restart must succeed again.
func TestRemoteWorkerKillServerMidBatch(t *testing.T) {
	srv, p := buildServedWorker(t)
	addr := srv.Addr()
	rw, err := DialPool(addr, ClientOptions{
		PoolSize:    2,
		MaxAttempts: 6,
		BackoffBase: time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	pairs := somePairs(t, p, 2)

	const callers = 8
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 12; j++ {
				if _, err := rw.PartialKSP(PartialKSPRequest{Pairs: pairs, K: 2}); err != nil {
					errs[i] = err
				}
			}
		}(i)
	}

	time.Sleep(3 * time.Millisecond)
	srv.Close()
	var srv2 *Server
	for i := 0; i < 50; i++ {
		g := testutil.PaperGraph(t)
		p2, _ := partition.PartitionGraph(g, 6)
		var owned []partition.SubgraphID
		for j := 0; j < p2.NumSubgraphs(); j++ {
			owned = append(owned, partition.SubgraphID(j))
		}
		srv2, err = Serve(addr, NewWorker(0, p2, owned))
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	wg.Wait() // every caller must return: retries are bounded
	if srv2 == nil {
		t.Skip("could not rebind restart address")
	}
	defer srv2.Close()

	// After the restart the same client must serve requests again.
	if _, err := rw.PartialKSP(PartialKSPRequest{Pairs: pairs, K: 2}); err != nil {
		t.Fatalf("request after mid-batch restart: %v", err)
	}
}

// TestSerializedTransportStillServed covers the legacy lock-step framing
// (zero request IDs) against the concurrent server: old clients keep working.
func TestSerializedTransportStillServed(t *testing.T) {
	srv, p := buildServedWorker(t)
	defer srv.Close()
	rw, err := DialPool(srv.Addr(), ClientOptions{Serialize: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	pairs := somePairs(t, p, 2)
	resp, err := rw.PartialKSP(PartialKSPRequest{Pairs: pairs, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.NumPairs() != len(pairs) {
		t.Fatalf("results %d, want %d", resp.NumPairs(), len(pairs))
	}
	if _, err := rw.Stats(); err != nil {
		t.Fatal(err)
	}
}

// remoteOracleDeployment splits the paper graph's subgraphs over two TCP
// worker servers and returns the index plus connected clients.
func remoteOracleDeployment(t *testing.T, copts ClientOptions) (*dtlp.Index, []*RemoteWorker, func()) {
	t.Helper()
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dtlp.Build(p, dtlp.Config{Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	var owned [2][]partition.SubgraphID
	for i := 0; i < p.NumSubgraphs(); i++ {
		owned[i%2] = append(owned[i%2], partition.SubgraphID(i))
	}
	var servers []*Server
	var remotes []*RemoteWorker
	for i := 0; i < 2; i++ {
		srv, err := Serve("127.0.0.1:0", NewWorker(i, p, owned[i]))
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		rw, err := DialPool(srv.Addr(), copts)
		if err != nil {
			t.Fatal(err)
		}
		remotes = append(remotes, rw)
	}
	cleanup := func() {
		for _, rw := range remotes {
			rw.Close()
		}
		for _, srv := range servers {
			srv.Close()
		}
	}
	return x, remotes, cleanup
}

// TestBatchedRemoteProviderMatchesOracle answers concurrent queries through
// the full batched pipeline (pool > 1, cross-query coalescing) and checks
// every result against brute force.
func TestBatchedRemoteProviderMatchesOracle(t *testing.T) {
	g := testutil.PaperGraph(t)
	x, remotes, cleanup := remoteOracleDeployment(t, ClientOptions{PoolSize: 3})
	defer cleanup()
	bp := NewBatchedRemoteProvider(remotes, rpcbatch.Options{})
	defer bp.Close()
	engine := core.NewEngine(x, bp, core.Options{})

	cases := []struct {
		s, t graph.VertexID
		k    int
	}{
		{testutil.V1, testutil.V19, 3},
		{testutil.V4, testutil.V13, 2},
		{testutil.V2, testutil.V17, 4},
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(cases)*4)
	for rep := 0; rep < 4; rep++ {
		for _, cse := range cases {
			wg.Add(1)
			go func(s, tt graph.VertexID, k int) {
				defer wg.Done()
				res, err := engine.Query(s, tt, k)
				if err != nil {
					errCh <- err
					return
				}
				want := testutil.BruteForceKSP(g, s, tt, k)
				if len(res.Paths) != len(want) {
					errCh <- fmt.Errorf("query (%d,%d,%d): got %d paths, want %d", s, tt, k, len(res.Paths), len(want))
					return
				}
				for i := range want {
					if math.Abs(res.Paths[i].Dist-want[i].Dist) > 1e-9 {
						errCh <- fmt.Errorf("query (%d,%d,%d) path %d dist %g, want %g", s, tt, k, i, res.Paths[i].Dist, want[i].Dist)
						return
					}
				}
			}(cse.s, cse.t, cse.k)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	st := bp.BatchStats()
	if st.Batches == 0 {
		t.Errorf("expected batched transport to ship batches, stats %+v", st)
	}
}

// TestWorkerReportsEpochResolution covers the pin-honouring contract the
// epoch memo depends on: a worker answers ServedEpoch=true only when it
// resolved the requested epoch's frozen view — never for unknown/evicted
// epochs, unpinned requests, or workers without a resolver.
func TestWorkerReportsEpochResolution(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dtlp.Build(p, dtlp.Config{Xi: 1})
	if err != nil {
		t.Fatal(err)
	}
	var owned []partition.SubgraphID
	for i := 0; i < p.NumSubgraphs(); i++ {
		owned = append(owned, partition.SubgraphID(i))
	}
	pairs := somePairs(t, p, 1)
	cur := x.CurrentView().Epoch()

	resolving := NewWorker(0, p, owned)
	resolving.SetViewResolver(x.ViewAt)
	if resp := resolving.HandlePartialKSP(PartialKSPRequest{Pairs: pairs, K: 2, Epoch: cur, HasEpoch: true}); !resp.ServedEpoch {
		t.Errorf("known epoch %d should be served pinned", cur)
	}
	if resp := resolving.HandlePartialKSP(PartialKSPRequest{Pairs: pairs, K: 2, Epoch: cur + 1000, HasEpoch: true}); resp.ServedEpoch {
		t.Errorf("unknown epoch must fall back to live weights and say so")
	}
	if resp := resolving.HandlePartialKSP(PartialKSPRequest{Pairs: pairs, K: 2}); resp.ServedEpoch {
		t.Errorf("unpinned request cannot claim an epoch")
	}

	standalone := NewWorker(1, p, owned)
	if resp := standalone.HandlePartialKSP(PartialKSPRequest{Pairs: pairs, K: 2, Epoch: cur, HasEpoch: true}); resp.ServedEpoch {
		t.Errorf("resolver-less worker must never claim a pin")
	}
}

// TestRemoteWorkerPing covers the health-check probe end to end.
func TestRemoteWorkerPing(t *testing.T) {
	srv, _ := buildServedWorker(t)
	defer srv.Close()
	rw, err := DialPool(srv.Addr(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	if err := rw.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
}

// TestRemoteWorkerBackoffPersistsAcrossRoundTrips is the satellite's backoff
// fix: the failure streak (and therefore the retry delay) must survive from
// one round trip to the next and reset only after a successful round trip —
// not after a merely accepted write.
func TestRemoteWorkerBackoffPersistsAcrossRoundTrips(t *testing.T) {
	srv, p := buildServedWorker(t)
	addr := srv.Addr()
	rw, err := DialPool(addr, ClientOptions{
		MaxAttempts: 1, // no in-call retries: any growth must come from the streak
		BackoffBase: time.Millisecond,
		BackoffMax:  8 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	pairs := somePairs(t, p, 1)
	if _, err := rw.PartialKSP(PartialKSPRequest{Pairs: pairs, K: 2}); err != nil {
		t.Fatalf("first request: %v", err)
	}
	if got := rw.failStreak.Load(); got != 0 {
		t.Fatalf("streak %d after success, want 0", got)
	}

	srv.Close()
	for i := 1; i <= 5; i++ {
		if _, err := rw.PartialKSP(PartialKSPRequest{Pairs: pairs, K: 2}); err == nil {
			t.Fatalf("request %d against a dead server should fail", i)
		}
	}
	if got := rw.failStreak.Load(); got < 5 {
		t.Fatalf("streak %d after 5 failed round trips, want >= 5 (state must persist across calls)", got)
	}
	if got, want := rw.backoffDelay(), 8*time.Millisecond; got != want {
		t.Fatalf("delay %v after a long streak, want the cap %v", got, want)
	}

	// Restart and require one successful round trip to clear the streak.
	var srv2 *Server
	for i := 0; i < 50; i++ {
		g := testutil.PaperGraph(t)
		p2, _ := partition.PartitionGraph(g, 6)
		var owned []partition.SubgraphID
		for j := 0; j < p2.NumSubgraphs(); j++ {
			owned = append(owned, partition.SubgraphID(j))
		}
		srv2, err = Serve(addr, NewWorker(0, p2, owned))
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if srv2 == nil {
		t.Skip("could not rebind restart address")
	}
	defer srv2.Close()
	if _, err := rw.PartialKSP(PartialKSPRequest{Pairs: pairs, K: 2}); err != nil {
		t.Fatalf("request after restart: %v", err)
	}
	if got := rw.failStreak.Load(); got != 0 {
		t.Fatalf("streak %d after a successful round trip, want 0", got)
	}
}
