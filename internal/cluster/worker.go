package cluster

import (
	"sort"
	"sync"

	"kspdg/internal/core"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/shortest"
)

// Worker is one SubgraphBolt host: it owns a subset of the partition's
// subgraphs (and their first-level DTLP data, which lives in the shared
// dtlp.Index in the in-process deployment) and answers partial-KSP and
// weight-update requests for them.
type Worker struct {
	id    int
	part  *partition.Partition
	owned map[partition.SubgraphID]bool

	mu    sync.Mutex
	stats StatsResponse
}

// NewWorker creates a worker owning the given subgraphs of part.
func NewWorker(id int, part *partition.Partition, owned []partition.SubgraphID) *Worker {
	w := &Worker{
		id:    id,
		part:  part,
		owned: make(map[partition.SubgraphID]bool, len(owned)),
	}
	for _, sg := range owned {
		w.owned[sg] = true
	}
	w.stats = StatsResponse{Worker: id, Subgraphs: len(owned)}
	return w
}

// ID returns the worker's identifier.
func (w *Worker) ID() int { return w.id }

// Owned returns the subgraphs this worker hosts.
func (w *Worker) Owned() []partition.SubgraphID {
	out := make([]partition.SubgraphID, 0, len(w.owned))
	for id := range w.owned {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Owns reports whether the worker hosts subgraph id.
func (w *Worker) Owns(id partition.SubgraphID) bool { return w.owned[id] }

// HandlePartialKSP computes the partial k shortest paths for every requested
// pair, restricted to the subgraphs this worker owns.  Pairs whose common
// subgraphs are all hosted elsewhere produce empty results.
func (w *Worker) HandlePartialKSP(req PartialKSPRequest) PartialKSPResponse {
	resp := PartialKSPResponse{Results: make([][]PathMsg, len(req.Pairs))}
	for i, pr := range req.Pairs {
		paths := w.partialForPair(pr, req.K)
		msgs := make([]PathMsg, len(paths))
		for j, p := range paths {
			msgs[j] = toPathMsg(p)
		}
		resp.Results[i] = msgs
	}
	w.mu.Lock()
	w.stats.RequestsServed++
	w.stats.PairsServed += len(req.Pairs)
	w.mu.Unlock()
	return resp
}

// partialForPair mirrors core.PartialKSPForPair but only searches subgraphs
// owned by this worker.
func (w *Worker) partialForPair(pr core.PairRequest, k int) []graph.Path {
	if pr.A == pr.B {
		return []graph.Path{{Vertices: []graph.VertexID{pr.A}}}
	}
	var merged []graph.Path
	seen := make(map[string]bool)
	for _, id := range w.part.CommonSubgraphs(pr.A, pr.B) {
		if !w.owned[id] {
			continue
		}
		sub := w.part.Subgraph(id)
		la, okA := sub.ToLocal(pr.A)
		lb, okB := sub.ToLocal(pr.B)
		if !okA || !okB {
			continue
		}
		for _, lp := range shortest.Yen(sub.Local, la, lb, k, nil) {
			gp := sub.GlobalPath(lp)
			key := graph.PathKey(gp)
			if seen[key] {
				continue
			}
			seen[key] = true
			merged = append(merged, gp)
		}
	}
	sort.Slice(merged, func(i, j int) bool { return graph.ComparePaths(merged[i], merged[j]) < 0 })
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}

// HandleWeightUpdate records that updates for this worker's subgraphs
// arrived.  In the in-process deployment the actual index maintenance is done
// once by the shared dtlp.Index (see Cluster.ApplyUpdates); the worker only
// accounts for the load it would carry.
func (w *Worker) HandleWeightUpdate(req WeightUpdateRequest) WeightUpdateResponse {
	w.mu.Lock()
	w.stats.UpdatesReceived += len(req.Updates)
	w.mu.Unlock()
	return WeightUpdateResponse{PathsTouched: len(req.Updates)}
}

// HandleStats returns the worker's load counters.
func (w *Worker) HandleStats(StatsRequest) StatsResponse {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}
