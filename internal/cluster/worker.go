package cluster

import (
	"sort"
	"sync"

	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/shortest"
)

// ViewResolver resolves an index epoch to its retained view, or nil when the
// epoch is unknown (see dtlp.Index.ViewAt).
type ViewResolver func(epoch uint64) *dtlp.IndexView

// Worker is one SubgraphBolt host: it owns a subset of the partition's
// subgraphs (and their first-level DTLP data, which lives in the shared
// dtlp.Index in the in-process deployment) and answers partial-KSP and
// weight-update requests for them.
type Worker struct {
	id         int
	part       *partition.Partition
	owned      map[partition.SubgraphID]bool
	views      ViewResolver // nil: serve live weights only
	applyLocal bool         // standalone worker: apply updates to its own partition copy

	mu    sync.Mutex
	stats StatsResponse
}

// NewWorker creates a worker owning the given subgraphs of part.
func NewWorker(id int, part *partition.Partition, owned []partition.SubgraphID) *Worker {
	w := &Worker{
		id:    id,
		part:  part,
		owned: make(map[partition.SubgraphID]bool, len(owned)),
	}
	for _, sg := range owned {
		w.owned[sg] = true
	}
	w.stats = StatsResponse{Worker: id, Subgraphs: len(owned)}
	return w
}

// ID returns the worker's identifier.
func (w *Worker) ID() int { return w.id }

// Owned returns the subgraphs this worker hosts.
func (w *Worker) Owned() []partition.SubgraphID {
	out := make([]partition.SubgraphID, 0, len(w.owned))
	for id := range w.owned {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Owns reports whether the worker hosts subgraph id.
func (w *Worker) Owns(id partition.SubgraphID) bool { return w.owned[id] }

// SetViewResolver enables epoch-pinned request handling: requests carrying an
// epoch are answered from that epoch's weight snapshots when the resolver can
// still supply them.  The in-process cluster wires this to the shared index's
// ViewAt; remote worker processes, which maintain their own weight copies,
// leave it unset and always serve their latest state.
func (w *Worker) SetViewResolver(r ViewResolver) { w.views = r }

// HandlePartialKSP computes the partial k shortest paths for every requested
// pair, restricted to the subgraphs this worker owns.  Pairs whose common
// subgraphs are all hosted elsewhere produce empty results.
func (w *Worker) HandlePartialKSP(req PartialKSPRequest) PartialKSPResponse {
	var view *dtlp.IndexView
	if req.HasEpoch && w.views != nil {
		view = w.views(req.Epoch)
	}
	resp := PartialKSPResponse{
		// Responses travel flat-encoded; see FlatPaths.  Decoders fall back
		// to the legacy Results field only for old peers.
		Flat: &FlatPaths{Counts: make([]int32, len(req.Pairs))},
		// A nil view means the pin was absent or could not be honoured
		// (unknown or evicted epoch): the answer reads live weights and must
		// not be treated as frozen at the requested epoch.
		ServedEpoch: view != nil,
	}
	for i, pr := range req.Pairs {
		paths := w.partialForPair(view, pr, req.K)
		resp.Flat.Counts[i] = int32(len(paths))
		for _, p := range paths {
			resp.Flat.appendPath(p)
		}
	}
	w.mu.Lock()
	w.stats.RequestsServed++
	w.stats.PairsServed += len(req.Pairs)
	w.mu.Unlock()
	return resp
}

// partialForPair mirrors core.PartialKSPForPair but only searches subgraphs
// owned by this worker.  With a non-nil view the searches read the epoch's
// frozen weights; otherwise they read the live subgraph weights.
func (w *Worker) partialForPair(view *dtlp.IndexView, pr core.PairRequest, k int) []graph.Path {
	if pr.A == pr.B {
		return []graph.Path{{Vertices: []graph.VertexID{pr.A}}}
	}
	ids := w.part.CommonSubgraphs(pr.A, pr.B)
	nOwned := 0
	for _, id := range ids {
		if w.owned[id] {
			nOwned++
		}
	}
	var merged []graph.Path
	var seen graph.PathSet
	// One Yen call already emits sorted, duplicate-free paths; only results
	// merged from several owned subgraphs need the dedup set and the sort.
	dedup := nOwned > 1
	for _, id := range ids {
		if !w.owned[id] {
			continue
		}
		sub := w.part.Subgraph(id)
		la, okA := sub.ToLocal(pr.A)
		lb, okB := sub.ToLocal(pr.B)
		if !okA || !okB {
			continue
		}
		var weights graph.WeightedView = sub.Local
		if view != nil {
			weights = view.SubgraphWeights(id)
		}
		for _, lp := range shortest.Yen(weights, la, lb, k, nil) {
			gp := sub.GlobalPath(lp)
			if dedup && !seen.Add(gp) {
				continue
			}
			merged = append(merged, gp)
		}
	}
	if dedup {
		sort.Slice(merged, func(i, j int) bool { return graph.ComparePaths(merged[i], merged[j]) < 0 })
	}
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}

// EnableLocalApply makes HandleWeightUpdate apply incoming batches to the
// worker's own partition copy.  Standalone (TCP) workers need this because no
// one else maintains their weights; in-process workers must leave it off — the
// shared dtlp.Index applies each batch exactly once, and applying it early
// here would zero the deltas its incremental maintenance derives.
func (w *Worker) EnableLocalApply() { w.applyLocal = true }

// HandleWeightUpdate records that updates for this worker's subgraphs
// arrived and, for standalone workers (see EnableLocalApply), pushes the new
// weights into the worker's partition copy.  In the in-process deployment the
// actual index maintenance is done once by the shared dtlp.Index (see
// Cluster.ApplyUpdates); the worker only accounts for the load it would
// carry.
func (w *Worker) HandleWeightUpdate(req WeightUpdateRequest) WeightUpdateResponse {
	w.mu.Lock()
	w.stats.UpdatesReceived += len(req.Updates)
	w.mu.Unlock()
	if w.applyLocal {
		if _, err := w.part.ApplyUpdates(req.Updates); err != nil {
			return WeightUpdateResponse{Err: err.Error()}
		}
	}
	return WeightUpdateResponse{PathsTouched: len(req.Updates)}
}

// HandleStats returns the worker's load counters.
func (w *Worker) HandleStats(StatsRequest) StatsResponse {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}
