package cluster

import (
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/shortest"
	"kspdg/internal/trace"
)

// ViewResolver resolves an index epoch to its retained view, or nil when the
// epoch is unknown (see dtlp.Index.ViewAt).
type ViewResolver func(epoch uint64) *dtlp.IndexView

// TouchedCounter reports how many bounding paths a weight-update batch
// touches (EP-Index entries for the updated edges).  The in-process cluster
// wires it to dtlp.Index.PathsCrossing; standalone workers without an index
// leave it unset and report zero.
type TouchedCounter func(batch []graph.WeightUpdate) int

// Worker is one SubgraphBolt host: it owns a subset of the partition's
// subgraphs (and their first-level DTLP data, which lives in the shared
// dtlp.Index in the in-process deployment) and answers partial-KSP,
// weight-update and topology-update requests for them.
type Worker struct {
	id         int
	state      atomic.Pointer[workerState]
	views      ViewResolver   // nil: serve live weights only
	touched    TouchedCounter // nil: report zero paths touched
	applyLocal bool           // standalone worker: apply updates to its own partition copy
	par        int            // partial-KSP executor width; 0 = GOMAXPROCS

	// Load counters are atomics: with the parallel executor several request
	// goroutines bump them concurrently, and a shared mutex would serialize
	// exactly the path the executor parallelizes.
	requestsServed  atomic.Int64
	pairsServed     atomic.Int64
	updatesReceived atomic.Int64
	topologyBatches atomic.Int64
}

// workerState bundles the partition and the ownership set so a topology
// update replaces both in one atomic pointer swap: a request handler loads
// the state once and sees a consistent pair, never a new partition with an
// old ownership map or vice versa.
type workerState struct {
	part  *partition.Partition
	owned map[partition.SubgraphID]bool
}

// NewWorker creates a worker owning the given subgraphs of part.
func NewWorker(id int, part *partition.Partition, owned []partition.SubgraphID) *Worker {
	w := &Worker{id: id}
	w.installState(part, owned)
	return w
}

// installState builds and publishes a workerState from an ownership list.
func (w *Worker) installState(part *partition.Partition, owned []partition.SubgraphID) {
	m := make(map[partition.SubgraphID]bool, len(owned))
	for _, sg := range owned {
		m[sg] = true
	}
	w.state.Store(&workerState{part: part, owned: m})
}

// SetPartition atomically replaces the worker's partition and ownership set.
// The in-process cluster calls it after a topology batch: the shared index
// already derived the new partition, and the worker only needs to route
// future requests against it (and any subgraphs the batch newly assigned).
func (w *Worker) SetPartition(part *partition.Partition, owned []partition.SubgraphID) {
	w.installState(part, owned)
}

// ID returns the worker's identifier.
func (w *Worker) ID() int { return w.id }

// Partition returns the partition the worker currently serves.
func (w *Worker) Partition() *partition.Partition { return w.state.Load().part }

// Owned returns the subgraphs this worker hosts.
func (w *Worker) Owned() []partition.SubgraphID {
	owned := w.state.Load().owned
	out := make([]partition.SubgraphID, 0, len(owned))
	for id := range owned {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Owns reports whether the worker hosts subgraph id.
func (w *Worker) Owns(id partition.SubgraphID) bool { return w.state.Load().owned[id] }

// SetViewResolver enables epoch-pinned request handling: requests carrying an
// epoch are answered from that epoch's weight snapshots when the resolver can
// still supply them.  The in-process cluster wires this to the shared index's
// ViewAt; remote worker processes, which maintain their own weight copies,
// leave it unset and always serve their latest state.
func (w *Worker) SetViewResolver(r ViewResolver) { w.views = r }

// SetTouchedCounter wires the EP-Index accounting used by HandleWeightUpdate
// to report real paths-touched counts instead of zero.
func (w *Worker) SetTouchedCounter(f TouchedCounter) { w.touched = f }

// SetParallelism sets the width of the worker's partial-KSP executor: the
// maximum number of goroutines one request's pairs (and, for heavy pairs,
// their per-subgraph searches) fan out across.  Zero (the default) means
// GOMAXPROCS; 1 forces the sequential path.  Not safe to call concurrently
// with request handling.
func (w *Worker) SetParallelism(n int) { w.par = n }

// parallelism resolves the configured executor width.
func (w *Worker) parallelism() int {
	if w.par > 0 {
		return w.par
	}
	return runtime.GOMAXPROCS(0)
}

// maxPairSpans bounds the per-pair Yen spans one traced request records, so a
// wide batch cannot flood the master's bounded trace with hundreds of spans;
// the aggregate request span always ships.
const maxPairSpans = 32

// pairSpanRecorder accumulates worker-side execution spans for one traced
// request.  Each pair's slot is written by exactly one executor goroutine, so
// recording needs no locks on the parallel path.
type pairSpanRecorder struct {
	reqStart time.Time
	starts   []time.Duration // offset of pair i's search from reqStart
	durs     []time.Duration
}

func newPairSpanRecorder(n int) *pairSpanRecorder {
	return &pairSpanRecorder{
		reqStart: time.Now(),
		starts:   make([]time.Duration, n),
		durs:     make([]time.Duration, n),
	}
}

// timePair wraps one pair's search with duration capture.
func (r *pairSpanRecorder) timePair(i int, search func() []graph.Path) []graph.Path {
	if r == nil {
		return search()
	}
	start := time.Since(r.reqStart)
	paths := search()
	r.starts[i] = start
	r.durs[i] = time.Since(r.reqStart) - start
	return paths
}

// msgs renders the recording as wire spans: index 0 is the aggregate request
// span (its duration is filled by the caller via the returned slice), followed
// by capped per-pair spans parented on it.
func (r *pairSpanRecorder) msgs(w *Worker, req PartialKSPRequest, width int) []trace.SpanMsg {
	msgs := make([]trace.SpanMsg, 0, 1+min(len(req.Pairs), maxPairSpans))
	msgs = append(msgs, trace.SpanMsg{
		Name:   "worker_exec",
		Parent: -1,
		DurNs:  int64(time.Since(r.reqStart)),
		Attrs: []trace.Attr{
			{Key: "worker", Value: strconv.Itoa(w.id)},
			{Key: "pairs", Value: strconv.Itoa(len(req.Pairs))},
			{Key: "width", Value: strconv.Itoa(width)},
		},
	})
	for i := range req.Pairs {
		if i >= maxPairSpans {
			break
		}
		msgs = append(msgs, trace.SpanMsg{
			Name:    "pair_yen",
			Parent:  0,
			StartNs: int64(r.starts[i]),
			DurNs:   int64(r.durs[i]),
			Attrs: []trace.Attr{
				{Key: "pair", Value: strconv.FormatUint(uint64(req.Pairs[i].A), 10) + "-" + strconv.FormatUint(uint64(req.Pairs[i].B), 10)},
			},
		})
	}
	return msgs
}

// HandlePartialKSP computes the partial k shortest paths for every requested
// pair, restricted to the subgraphs this worker owns.  Pairs whose common
// subgraphs are all hosted elsewhere produce empty results.
//
// With parallelism > 1 the pairs fan out across a bounded goroutine pool;
// each pair's paths land in a result slot indexed by its request position and
// are appended to the flat encoding serially in request order, so the
// response is byte-identical to the sequential one.
//
// Requests carrying a nonzero TraceID additionally get worker-side execution
// spans in the response (see PartialKSPResponse.Spans); untraced requests pay
// nothing.
func (w *Worker) HandlePartialKSP(req PartialKSPRequest) PartialKSPResponse {
	var view *dtlp.IndexView
	if req.HasEpoch && w.views != nil {
		view = w.views(req.Epoch)
	}
	var rec *pairSpanRecorder
	if req.TraceID != 0 {
		rec = newPairSpanRecorder(len(req.Pairs))
	}
	resp := PartialKSPResponse{
		// Responses travel flat-encoded; see FlatPaths.  Decoders fall back
		// to the legacy Results field only for old peers.
		Flat: &FlatPaths{Counts: make([]int32, len(req.Pairs))},
		// A nil view means the pin was absent or could not be honoured
		// (unknown or evicted epoch): the answer reads live weights and must
		// not be treated as frozen at the requested epoch.
		ServedEpoch: view != nil,
	}
	par := w.parallelism()
	width := 1
	if par <= 1 {
		for i, pr := range req.Pairs {
			i, pr := i, pr
			paths := rec.timePair(i, func() []graph.Path { return w.partialForPair(view, pr, req.K, 1) })
			resp.Flat.Counts[i] = int32(len(paths))
			for _, p := range paths {
				resp.Flat.appendPath(p)
			}
		}
	} else {
		// Split the budget: pairs get the outer lanes, and whatever width is
		// left over per pair goes to its per-subgraph searches.  A request
		// with fewer pairs than lanes pushes the surplus inward, so a single
		// heavy pair still uses the whole budget.
		inner := par / len(req.Pairs)
		if inner < 1 {
			inner = 1
		}
		outer := par
		if outer > len(req.Pairs) {
			outer = len(req.Pairs)
		}
		width = outer
		results := make([][]graph.Path, len(req.Pairs))
		if outer <= 1 {
			for i, pr := range req.Pairs {
				i, pr := i, pr
				results[i] = rec.timePair(i, func() []graph.Path { return w.partialForPair(view, pr, req.K, inner) })
			}
		} else {
			jobs := make(chan int)
			var wg sync.WaitGroup
			for g := 0; g < outer; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range jobs {
						i := i
						results[i] = rec.timePair(i, func() []graph.Path { return w.partialForPair(view, req.Pairs[i], req.K, inner) })
					}
				}()
			}
			for i := range req.Pairs {
				jobs <- i
			}
			close(jobs)
			wg.Wait()
		}
		for i, paths := range results {
			resp.Flat.Counts[i] = int32(len(paths))
			for _, p := range paths {
				resp.Flat.appendPath(p)
			}
		}
	}
	if rec != nil {
		resp.Spans = rec.msgs(w, req, width)
	}
	w.requestsServed.Add(1)
	w.pairsServed.Add(int64(len(req.Pairs)))
	return resp
}

// partialForPair mirrors core.PartialKSPForPair but only searches subgraphs
// owned by this worker.  With a non-nil view the searches read the epoch's
// frozen weights over the partition of that epoch's generation (topology
// batches replace the partition, so an epoch pin freezes structure as well
// as weights); otherwise they read the worker's live state.  inner is
// the width available for this pair's per-subgraph searches; results are
// merged in subgraph-id order through the same dedup set and sort as the
// sequential path, so the answer is identical either way.
func (w *Worker) partialForPair(view *dtlp.IndexView, pr core.PairRequest, k, inner int) []graph.Path {
	if pr.A == pr.B {
		return []graph.Path{{Vertices: []graph.VertexID{pr.A}}}
	}
	st := w.state.Load()
	part := st.part
	if view != nil {
		part = view.Partition()
	}
	ids := part.CommonSubgraphs(pr.A, pr.B)
	nOwned := 0
	for _, id := range ids {
		if st.owned[id] {
			nOwned++
		}
	}
	if inner > 1 && nOwned > 1 {
		return w.partialForPairParallel(view, part, st.owned, pr, k, inner, ids, nOwned)
	}
	var merged []graph.Path
	var seen graph.PathSet
	// One Yen call already emits sorted, duplicate-free paths; only results
	// merged from several owned subgraphs need the dedup set and the sort.
	dedup := nOwned > 1
	for _, id := range ids {
		if !st.owned[id] {
			continue
		}
		sub := part.Subgraph(id)
		la, okA := sub.ToLocal(pr.A)
		lb, okB := sub.ToLocal(pr.B)
		if !okA || !okB {
			continue
		}
		var weights graph.WeightedView = sub.Local
		if view != nil {
			weights = view.SubgraphWeights(id)
		}
		for _, lp := range shortest.Yen(weights, la, lb, k, nil) {
			gp := sub.GlobalPath(lp)
			if dedup && !seen.Add(gp) {
				continue
			}
			merged = append(merged, gp)
		}
	}
	if dedup {
		sort.Slice(merged, func(i, j int) bool { return graph.ComparePaths(merged[i], merged[j]) < 0 })
	}
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}

// partialForPairParallel fans the pair's owned-subgraph Yen searches across
// up to inner goroutines.  Each search fills a slot indexed by the subgraph's
// position in ids; the slots are then merged sequentially in that order
// through the dedup set, which is exactly the order the sequential loop
// visits — and since cross-subgraph duplicates are byte-identical paths, the
// merged result matches the sequential one bit for bit.
func (w *Worker) partialForPairParallel(view *dtlp.IndexView, part *partition.Partition, owned map[partition.SubgraphID]bool, pr core.PairRequest, k, inner int, ids []partition.SubgraphID, nOwned int) []graph.Path {
	ownedIDs := make([]partition.SubgraphID, 0, nOwned)
	for _, id := range ids {
		if owned[id] {
			ownedIDs = append(ownedIDs, id)
		}
	}
	perSub := make([][]graph.Path, len(ownedIDs))
	searchOne := func(j int) {
		id := ownedIDs[j]
		sub := part.Subgraph(id)
		la, okA := sub.ToLocal(pr.A)
		lb, okB := sub.ToLocal(pr.B)
		if !okA || !okB {
			return
		}
		var weights graph.WeightedView = sub.Local
		if view != nil {
			weights = view.SubgraphWeights(id)
		}
		lps := shortest.Yen(weights, la, lb, k, nil)
		gps := make([]graph.Path, 0, len(lps))
		for _, lp := range lps {
			gps = append(gps, sub.GlobalPath(lp))
		}
		perSub[j] = gps
	}
	g := inner
	if g > len(ownedIDs) {
		g = len(ownedIDs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				searchOne(j)
			}
		}()
	}
	for j := range ownedIDs {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	var merged []graph.Path
	var seen graph.PathSet
	for _, gps := range perSub {
		for _, gp := range gps {
			if !seen.Add(gp) {
				continue
			}
			merged = append(merged, gp)
		}
	}
	sort.Slice(merged, func(i, j int) bool { return graph.ComparePaths(merged[i], merged[j]) < 0 })
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}

// EnableLocalApply makes HandleWeightUpdate apply incoming batches to the
// worker's own partition copy.  Standalone (TCP) workers need this because no
// one else maintains their weights; in-process workers must leave it off — the
// shared dtlp.Index applies each batch exactly once, and applying it early
// here would zero the deltas its incremental maintenance derives.
func (w *Worker) EnableLocalApply() { w.applyLocal = true }

// HandleWeightUpdate records that updates for this worker's subgraphs
// arrived and, for standalone workers (see EnableLocalApply), pushes the new
// weights into the worker's partition copy.  In the in-process deployment the
// actual index maintenance is done once by the shared dtlp.Index (see
// Cluster.ApplyUpdates); the worker only accounts for the load it would
// carry.
//
// PathsTouched reports the number of bounding paths whose stored distance
// this batch adjusts — the EP-Index entries of the updated edges — when a
// TouchedCounter is wired (see SetTouchedCounter); workers without index
// access report zero rather than a made-up number.
func (w *Worker) HandleWeightUpdate(req WeightUpdateRequest) WeightUpdateResponse {
	w.updatesReceived.Add(int64(len(req.Updates)))
	// Bounding path structure is immutable, so the count is the same before
	// and after the weights land.
	touched := 0
	if w.touched != nil {
		touched = w.touched(req.Updates)
	}
	if w.applyLocal {
		if _, err := w.state.Load().part.ApplyUpdates(req.Updates); err != nil {
			return WeightUpdateResponse{Err: err.Error()}
		}
	}
	return WeightUpdateResponse{PathsTouched: touched}
}

// HandleTopologyUpdate ingests a topology batch.  In-process workers share
// the master's index — the shared dtlp.Index applies the batch exactly once
// and the master installs the derived partition via SetPartition — so they
// only account for the broadcast.  Standalone workers (see EnableLocalApply)
// derive the new graph and partition themselves, copy-on-write, and extend
// their ownership to any subgraphs the batch opened using the deterministic
// round-robin rule carried by the request: new subgraph s is hosted by
// workers (s+r) mod NumWorkers for replica ranks r < Factor.  Every process
// computes the same rule from the same batch, so the fleet's ownership stays
// consistent without coordination.
func (w *Worker) HandleTopologyUpdate(req TopologyUpdateRequest) TopologyUpdateResponse {
	w.topologyBatches.Add(1)
	if !w.applyLocal {
		return TopologyUpdateResponse{}
	}
	st := w.state.Load()
	newParent, inserted, deleted, err := st.part.Parent().ApplyTopology(req.Update)
	if err != nil {
		return TopologyUpdateResponse{Err: err.Error()}
	}
	newPart, _, err := st.part.ApplyTopology(newParent, req.Update, inserted, deleted)
	if err != nil {
		return TopologyUpdateResponse{Err: err.Error()}
	}
	owned := make(map[partition.SubgraphID]bool, len(st.owned))
	for id := range st.owned {
		owned[id] = true
	}
	if req.NumWorkers > 0 {
		factor := req.Factor
		if factor < 1 {
			factor = 1
		}
		if factor > req.NumWorkers {
			factor = req.NumWorkers
		}
		for sg := st.part.NumSubgraphs(); sg < newPart.NumSubgraphs(); sg++ {
			for r := 0; r < factor; r++ {
				if (sg+r)%req.NumWorkers == w.id {
					owned[partition.SubgraphID(sg)] = true
				}
			}
		}
	}
	w.state.Store(&workerState{part: newPart, owned: owned})
	return TopologyUpdateResponse{InsertedEdges: inserted, DeletedEdges: deleted}
}

// HandleStats returns the worker's load counters.
func (w *Worker) HandleStats(StatsRequest) StatsResponse {
	return StatsResponse{
		Worker:          w.id,
		Subgraphs:       len(w.state.Load().owned),
		PairsServed:     int(w.pairsServed.Load()),
		RequestsServed:  int(w.requestsServed.Load()),
		UpdatesReceived: int(w.updatesReceived.Load()),
		TopologyBatches: int(w.topologyBatches.Load()),
	}
}
