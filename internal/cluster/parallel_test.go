package cluster

import (
	"reflect"
	"testing"

	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/testutil"
)

// TestWorkerParallelMatchesSequential requires the parallel executor to
// produce byte-identical responses to the sequential path, for every
// combination of pair fan-out and heavy-pair inner fan-out.
func TestWorkerParallelMatchesSequential(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dtlp.Build(p, dtlp.Config{Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	all := make([]partition.SubgraphID, p.NumSubgraphs())
	for i := range all {
		all[i] = partition.SubgraphID(i)
	}
	// Every co-located boundary pair, plus one trivial same-vertex pair:
	// pairs sharing several subgraphs exercise the dedup merge and the inner
	// per-subgraph fan-out.
	boundary := p.BoundaryVertices()
	var pairs []core.PairRequest
	for i, a := range boundary {
		for _, b := range boundary[i+1:] {
			if len(p.CommonSubgraphs(a, b)) > 0 {
				pairs = append(pairs, core.PairRequest{A: a, B: b})
			}
		}
	}
	if len(pairs) < 2 {
		t.Skip("need at least two co-located boundary pairs")
	}
	pairs = append(pairs, core.PairRequest{A: boundary[0], B: boundary[0]})

	epoch := x.CurrentView().Epoch()
	reqs := []PartialKSPRequest{
		{Pairs: pairs, K: 3},
		{Pairs: pairs, K: 3, Epoch: epoch, HasEpoch: true},
		{Pairs: pairs[:1], K: 3}, // single heavy pair: whole budget goes inner
	}
	newWorker := func(par int) *Worker {
		w := NewWorker(0, p, all)
		w.SetViewResolver(x.ViewAt)
		w.SetParallelism(par)
		return w
	}
	for _, req := range reqs {
		want := newWorker(1).HandlePartialKSP(req)
		for _, par := range []int{2, 4, 8} {
			got := newWorker(par).HandlePartialKSP(req)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("parallelism %d diverges on %d pairs (k=%d, pinned=%v):\n got %+v\nwant %+v",
					par, len(req.Pairs), req.K, req.HasEpoch, got.Flat, want.Flat)
			}
		}
	}
}

// TestLocalProviderParallelMatchesSequential mirrors the worker check for the
// single-process provider, including its inner per-subgraph fan-out.
func TestLocalProviderParallelMatchesSequential(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	boundary := p.BoundaryVertices()
	var pairs []core.PairRequest
	for i, a := range boundary {
		for _, b := range boundary[i+1:] {
			if len(p.CommonSubgraphs(a, b)) > 0 {
				pairs = append(pairs, core.PairRequest{A: a, B: b})
			}
		}
	}
	if len(pairs) == 0 {
		t.Skip("no co-located boundary pairs")
	}
	want, err := core.NewLocalProvider(p, 1).PartialKSP(pairs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8} {
		for _, sub := range [][]core.PairRequest{pairs, pairs[:1]} {
			got, err := core.NewLocalProvider(p, par).PartialKSP(sub, 3)
			if err != nil {
				t.Fatal(err)
			}
			for _, pr := range sub {
				if !pathsEqual(got[pr], want[pr]) {
					t.Fatalf("parallelism %d diverges for pair %v:\n got %v\nwant %v", par, pr, got[pr], want[pr])
				}
			}
		}
	}
}

func pathsEqual(a, b []graph.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Dist != b[i].Dist || !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
