package cluster

import (
	"context"
	"sort"
	"sync"

	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/rpcbatch"
	"kspdg/internal/trace"
)

// mergeSeenPool recycles the dedup sets used while merging partial paths
// collected from several workers.
var mergeSeenPool = sync.Pool{New: func() interface{} { return new(graph.PathSet) }}

// mergePairPaths merges the partial paths collected for one pair (possibly
// from several workers with replicated subgraph boundaries) into the k
// shortest distinct paths.  The merge is in place: paths must be owned by the
// caller and is clobbered.
func mergePairPaths(paths []graph.Path, k int) []graph.Path {
	sort.Slice(paths, func(i, j int) bool { return graph.ComparePaths(paths[i], paths[j]) < 0 })
	seen := mergeSeenPool.Get().(*graph.PathSet)
	seen.Reset()
	defer mergeSeenPool.Put(seen)
	dedup := paths[:0]
	for _, p := range paths {
		if !seen.Add(p) {
			continue
		}
		dedup = append(dedup, p)
		if len(dedup) == k {
			break
		}
	}
	return dedup
}

// responseToMap converts a wire response back into per-pair path lists.  The
// returned paths alias the response's decoded arrays (see DecodePaths) and
// must be treated as immutable.
func responseToMap(pairs []core.PairRequest, resp PartialKSPResponse) map[core.PairRequest][]graph.Path {
	out := make(map[core.PairRequest][]graph.Path, len(pairs))
	decoded := resp.DecodePaths()
	for i, pr := range pairs {
		if i >= len(decoded) {
			continue
		}
		out[pr] = decoded[i]
	}
	return out
}

// batchedProvider is the asynchronous batching refine-step provider: pairs
// are routed to per-worker rpcbatch queues where they coalesce with pairs
// from other concurrent queries (same k and epoch) before travelling as one
// PartialKSPRequest, and the scattered replies are merged per pair.  It
// implements core.PartialProvider, core.ViewProvider and
// core.AsyncPartialProvider, so engines overlap the next filter step with the
// in-flight refine.
type batchedProvider struct {
	batchers []*rpcbatch.Batcher
	// route returns the worker indices that must be asked about a pair.
	route func(pr core.PairRequest) []int
}

// newBatchedProvider builds a provider over one batcher per worker sender.
func newBatchedProvider(senders []rpcbatch.Sender, route func(core.PairRequest) []int, opts rpcbatch.Options) *batchedProvider {
	bp := &batchedProvider{route: route}
	for _, send := range senders {
		bp.batchers = append(bp.batchers, rpcbatch.New(send, opts))
	}
	return bp
}

// PartialKSP implements core.PartialProvider against the workers' live
// weights.
func (bp *batchedProvider) PartialKSP(pairs []core.PairRequest, k int) (map[core.PairRequest][]graph.Path, error) {
	reply := <-bp.async(context.Background(), pairs, k, 0, false)
	return reply.Paths, reply.Err
}

// PartialKSPView implements core.ViewProvider: requests are pinned to the
// query's epoch, and only coalesce with other requests for the same epoch.
func (bp *batchedProvider) PartialKSPView(iv *dtlp.IndexView, pairs []core.PairRequest, k int) (map[core.PairRequest][]graph.Path, error) {
	reply := <-bp.async(context.Background(), pairs, k, iv.Epoch(), true)
	return reply.Paths, reply.Err
}

// PartialKSPAsync implements core.AsyncPartialProvider.
func (bp *batchedProvider) PartialKSPAsync(iv *dtlp.IndexView, pairs []core.PairRequest, k int) <-chan core.AsyncPartialReply {
	return bp.PartialKSPAsyncCtx(context.Background(), iv, pairs, k)
}

// PartialKSPAsyncCtx implements core.CtxAsyncPartialProvider: the context's
// trace span (if any) owns the coalesce-wait and batch spans the request
// produces downstream.  Cancellation is not consumed here — the engine already
// stops between iterations, and shipped pairs may serve other queries.
func (bp *batchedProvider) PartialKSPAsyncCtx(ctx context.Context, iv *dtlp.IndexView, pairs []core.PairRequest, k int) <-chan core.AsyncPartialReply {
	if iv == nil {
		return bp.async(ctx, pairs, k, 0, false)
	}
	return bp.async(ctx, pairs, k, iv.Epoch(), true)
}

func (bp *batchedProvider) async(ctx context.Context, pairs []core.PairRequest, k int, epoch uint64, hasEpoch bool) <-chan core.AsyncPartialReply {
	out := make(chan core.AsyncPartialReply, 1)
	result := make(map[core.PairRequest][]graph.Path, len(pairs))
	perWorker := make(map[int][]core.PairRequest)
	for _, pr := range pairs {
		result[pr] = nil
		for _, w := range bp.route(pr) {
			perWorker[w] = append(perWorker[w], pr)
		}
	}
	if len(perWorker) == 0 {
		out <- core.AsyncPartialReply{Paths: result}
		return out
	}
	type pendingReply struct {
		pairs []core.PairRequest
		ch    <-chan rpcbatch.Result
	}
	var replies []pendingReply
	for w, prs := range perWorker {
		replies = append(replies, pendingReply{pairs: prs, ch: bp.batchers[w].DoAsyncCtx(ctx, prs, k, epoch, hasEpoch)})
	}
	go func() {
		collected := make(map[core.PairRequest][]graph.Path, len(pairs))
		var firstErr error
		for _, pend := range replies {
			res := <-pend.ch
			if res.Err != nil {
				if firstErr == nil {
					firstErr = res.Err
				}
				continue
			}
			for _, pr := range pend.pairs {
				collected[pr] = append(collected[pr], res.Paths[pr]...)
			}
		}
		if firstErr != nil {
			out <- core.AsyncPartialReply{Err: firstErr}
			return
		}
		for pr, paths := range collected {
			if len(paths) > 0 {
				result[pr] = mergePairPaths(paths, k)
			}
		}
		out <- core.AsyncPartialReply{Paths: result}
	}()
	return out
}

// BatchStats aggregates the traffic counters of the per-worker batchers.
func (bp *batchedProvider) BatchStats() rpcbatch.Stats {
	var st rpcbatch.Stats
	for _, b := range bp.batchers {
		st.Add(b.Stats())
	}
	return st
}

// Close flushes and stops the per-worker batchers.
func (bp *batchedProvider) Close() {
	var wg sync.WaitGroup
	for _, b := range bp.batchers {
		wg.Add(1)
		go func(b *rpcbatch.Batcher) {
			defer wg.Done()
			b.Close()
		}(b)
	}
	wg.Wait()
}

// BatchedRemoteProvider is the batched transport over TCP workers: one
// rpcbatch queue per RemoteWorker, with every pair broadcast to all workers
// (each answers for the subgraphs it owns, mirroring RemoteProvider).  On top
// of the multiplexed connections this turns the request path into a full
// asynchronous pipeline: concurrent queries' pairs coalesce into shared
// batches, identical pairs are deduplicated, and many batches are in flight
// per worker at once.
type BatchedRemoteProvider struct {
	*batchedProvider
}

// NewBatchedRemoteProvider builds the batched provider over the given worker
// connections.
//
// The epoch-pinned pair memo is disabled unless opts.CacheCapacity is set to
// an explicit positive value: memoizing an answer under an epoch is only
// sound when the workers actually resolve epoch pins (Worker.SetViewResolver
// against the master's index).  Standalone worker processes maintain their
// own live weights and serve those for any pin, so a memo would freeze a
// transiently stale answer for the epoch's whole lifetime instead of the
// transient window the eventually consistent transport already has.  Opt in
// only for deployments whose workers share the master's retained views.
func NewBatchedRemoteProvider(workers []*RemoteWorker, opts rpcbatch.Options) *BatchedRemoteProvider {
	if opts.CacheCapacity == 0 {
		opts.CacheCapacity = -1
	}
	senders := make([]rpcbatch.Sender, len(workers))
	for i, rw := range workers {
		i, rw := i, rw
		senders[i] = func(ctx context.Context, pairs []core.PairRequest, k int, epoch uint64, hasEpoch bool) (map[core.PairRequest][]graph.Path, bool, error) {
			req := PartialKSPRequest{Pairs: pairs, K: k, Epoch: epoch, HasEpoch: hasEpoch}
			s, _ := trace.StartSpan(ctx, "rpc")
			s.SetAttrInt("worker", int64(i))
			req.TraceID = s.Trace().ID()
			req.SpanID = s.ID()
			resp, err := rw.PartialKSP(req)
			if err != nil {
				s.SetAttr("error", err.Error())
				s.Finish()
				return nil, false, err
			}
			s.Graft(resp.Spans)
			s.Finish()
			return responseToMap(pairs, resp), resp.ServedEpoch, nil
		}
	}
	all := make([]int, len(workers))
	for i := range all {
		all[i] = i
	}
	route := func(core.PairRequest) []int { return all }
	return &BatchedRemoteProvider{batchedProvider: newBatchedProvider(senders, route, opts)}
}
