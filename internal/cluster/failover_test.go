package cluster

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/rpcbatch"
	"kspdg/internal/testutil"
)

// fakeCaller is an in-process stand-in for a RemoteWorker: a real Worker
// behind an injectable transport (failures, latency, worker replacement),
// so replica failover and hedging are driven deterministically.
type fakeCaller struct {
	calls atomic.Int64

	mu     sync.Mutex
	worker *Worker
	fail   bool
	delay  time.Duration
}

func (f *fakeCaller) PartialKSP(req PartialKSPRequest) (PartialKSPResponse, error) {
	f.calls.Add(1)
	f.mu.Lock()
	worker, fail, delay := f.worker, f.fail, f.delay
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return PartialKSPResponse{}, errors.New("fake: injected transport failure")
	}
	return worker.HandlePartialKSP(req), nil
}

func (f *fakeCaller) setFail(fail bool) {
	f.mu.Lock()
	f.fail = fail
	f.mu.Unlock()
}

func (f *fakeCaller) setDelay(d time.Duration) {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
}

func (f *fakeCaller) setWorker(w *Worker) {
	f.mu.Lock()
	f.worker = w
	f.mu.Unlock()
}

// fakeReplicatedDeployment builds a replicated provider over fake callers
// backed by real workers that resolve epoch pins against the shared index.
func fakeReplicatedDeployment(t *testing.T, workers, factor int, opts ReplicatedOptions) (*dtlp.Index, *ReplicaTable, []*fakeCaller, *ReplicatedRemoteProvider) {
	t.Helper()
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dtlp.Build(p, dtlp.Config{Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := AssignReplicas(p, workers, factor)
	if err != nil {
		t.Fatal(err)
	}
	fakes := make([]*fakeCaller, workers)
	callers := make([]partialCaller, workers)
	for w := 0; w < workers; w++ {
		worker := NewWorker(w, p, rt.OwnedBy(w))
		worker.SetViewResolver(x.ViewAt)
		fakes[w] = &fakeCaller{worker: worker}
		callers[w] = fakes[w]
	}
	return x, rt, fakes, newReplicatedProvider(callers, p, rt, opts, nil)
}

// samePaths requires two per-pair path maps to agree on distances.
func samePaths(t *testing.T, got, want map[core.PairRequest][]graph.Path) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("answered %d pairs, want %d", len(got), len(want))
	}
	for pr, wantPaths := range want {
		gotPaths, ok := got[pr]
		if !ok {
			t.Fatalf("pair %v missing from answer", pr)
		}
		if len(gotPaths) != len(wantPaths) {
			t.Fatalf("pair %v: %d paths, want %d", pr, len(gotPaths), len(wantPaths))
		}
		for i := range wantPaths {
			if math.Abs(gotPaths[i].Dist-wantPaths[i].Dist) > 1e-9 {
				t.Fatalf("pair %v path %d dist %g, want %g", pr, i, gotPaths[i].Dist, wantPaths[i].Dist)
			}
		}
	}
}

// referenceAnswers computes the expected per-pair answers on the full
// partition (with 2 workers at factor 2 every worker hosts every subgraph,
// so the provider's merged answer must equal the local computation).
func referenceAnswers(part *partition.Partition, pairs []core.PairRequest, k int) map[core.PairRequest][]graph.Path {
	want := make(map[core.PairRequest][]graph.Path, len(pairs))
	for _, pr := range pairs {
		want[pr] = core.PartialKSPForPair(part, pr, k)
	}
	return want
}

func TestReplicatedProviderFailsOverWhenWorkerDies(t *testing.T) {
	x, _, fakes, rp := fakeReplicatedDeployment(t, 2, 2, ReplicatedOptions{})
	defer rp.Close()
	part := x.Partition()
	pairs := somePairs(t, part, 4)
	want := referenceAnswers(part, pairs, 3)

	got, err := rp.PartialKSP(pairs, 3)
	if err != nil {
		t.Fatalf("healthy deployment: %v", err)
	}
	samePaths(t, got, want)

	// Kill worker 0: every pair must still be answered, via the replica.
	fakes[0].setFail(true)
	got, err = rp.PartialKSP(pairs, 3)
	if err != nil {
		t.Fatalf("with worker 0 dead: %v", err)
	}
	samePaths(t, got, want)
	if st := rp.FailoverStats(); st.Failovers == 0 {
		t.Errorf("expected at least one failover, stats %+v", st)
	}
	if rp.Membership().State(0) == StateUp {
		t.Errorf("dead worker 0 still considered up")
	}

	// Later batches route around the suspected worker: answers keep flowing
	// without growing the failover count per call indefinitely.
	got, err = rp.PartialKSP(pairs, 3)
	if err != nil {
		t.Fatalf("steady state with worker 0 dead: %v", err)
	}
	samePaths(t, got, want)

	// Worker 0 rejoins; one successful call restores it.
	fakes[0].setFail(false)
	if _, err := rp.PartialKSP(pairs, 3); err != nil {
		t.Fatalf("after rejoin: %v", err)
	}
}

func TestReplicatedProviderAllReplicasDownFailsFast(t *testing.T) {
	x, _, fakes, rp := fakeReplicatedDeployment(t, 2, 2, ReplicatedOptions{})
	defer rp.Close()
	part := x.Partition()
	pairs := somePairs(t, part, 2)
	fakes[0].setFail(true)
	fakes[1].setFail(true)

	type result struct {
		err error
	}
	done := make(chan result, 1)
	go func() {
		_, err := rp.PartialKSP(pairs, 2)
		done <- result{err: err}
	}()
	select {
	case r := <-done:
		if r.err == nil {
			t.Fatal("expected an error with every replica down")
		}
		if !strings.Contains(r.err.Error(), "replicas of subgraph") {
			t.Fatalf("error %q does not name the uncoverable subgraph", r.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("query hung with every replica down instead of failing")
	}
}

func TestReplicatedProviderHedgedRequestBothAnswer(t *testing.T) {
	x, _, fakes, rp := fakeReplicatedDeployment(t, 2, 2, ReplicatedOptions{HedgeAfter: 2 * time.Millisecond})
	part := x.Partition()
	pairs := somePairs(t, part, 4)
	want := referenceAnswers(part, pairs, 3)

	// Both workers answer, worker 0 slowly: batches to worker 0 hedge onto
	// worker 1, the fast copy wins, and the slow copy's reply is dropped.
	fakes[0].setDelay(40 * time.Millisecond)
	got, err := rp.PartialKSP(pairs, 3)
	if err != nil {
		t.Fatalf("hedged query: %v", err)
	}
	samePaths(t, got, want)

	// Accounting stays conserved after the race: a fresh request still gets
	// exactly one correct answer per pair.
	fakes[0].setDelay(0)
	got, err = rp.PartialKSP(pairs, 3)
	if err != nil {
		t.Fatalf("query after hedge race: %v", err)
	}
	samePaths(t, got, want)

	// Close waits for the losers; both copies answered, so the drop count
	// must record the discarded duplicates.
	rp.Close()
	st := rp.FailoverStats()
	if st.HedgedBatches == 0 {
		t.Fatalf("expected hedged batches, stats %+v", st)
	}
	if st.HedgeWins == 0 {
		t.Errorf("expected the fast replica to win at least one race, stats %+v", st)
	}
	if st.HedgeDrops == 0 {
		t.Errorf("expected the slow duplicate replies to be counted dropped, stats %+v", st)
	}
	if st.Failovers != 0 {
		t.Errorf("hedging must not count as failover, stats %+v", st)
	}
	// Membership: slow is not dead — the late successes kept worker 0 up.
	if got := rp.Membership().State(0); got != StateUp {
		t.Errorf("slow worker 0 marked %v by hedging, want up", got)
	}
}

func TestReplicatedProviderStaleEpochRejoinDoesNotPoisonMemo(t *testing.T) {
	x, rt, fakes, rp := fakeReplicatedDeployment(t, 2, 2, ReplicatedOptions{
		Batch: rpcbatch.Options{CacheCapacity: 64},
	})
	defer rp.Close()
	part := x.Partition()
	all := somePairs(t, part, 4)
	p1, p2 := all[:1], all[2:3]
	iv := x.CurrentView()

	// Healthy phase: pinned answers come from resolving workers and are
	// memoized — the second identical request never hits the wire.
	first, err := rp.PartialKSPView(iv, p1, 2)
	if err != nil {
		t.Fatal(err)
	}
	wireBefore := fakes[0].calls.Load() + fakes[1].calls.Load()
	second, err := rp.PartialKSPView(iv, p1, 2)
	if err != nil {
		t.Fatal(err)
	}
	samePaths(t, second, first)
	if wire := fakes[0].calls.Load() + fakes[1].calls.Load(); wire != wireBefore {
		t.Fatalf("memoized pinned pair hit the wire again (%d -> %d calls)", wireBefore, wire)
	}
	if st := rp.BatchStats(); st.CacheHits == 0 {
		t.Fatalf("expected a pair memo hit, stats %+v", st)
	}

	// Worker 1 dies and worker 0 rejoins as a fresh process that no longer
	// retains the pinned epoch (no view resolver — the stale-epoch rejoin).
	fakes[1].setFail(true)
	fakes[0].setWorker(NewWorker(0, part, rt.OwnedBy(0)))

	hitsBefore := rp.BatchStats().CacheHits
	r1, err := rp.PartialKSPView(iv, p2, 2)
	if err != nil {
		t.Fatalf("pinned request against the rejoined worker: %v", err)
	}
	// The rejoined worker serves live weights; no update landed since the
	// pin, so the answer still matches the reference computation.
	samePaths(t, r1, referenceAnswers(part, p2, 2))

	// The unpinned fallback answer must NOT have been memoized as if it were
	// frozen at the epoch: the identical request goes to the wire again.
	wireBefore = fakes[0].calls.Load()
	r2, err := rp.PartialKSPView(iv, p2, 2)
	if err != nil {
		t.Fatal(err)
	}
	samePaths(t, r2, r1)
	if fakes[0].calls.Load() == wireBefore {
		t.Fatal("stale-epoch answer was served from the memo")
	}
	if hits := rp.BatchStats().CacheHits; hits != hitsBefore {
		t.Fatalf("memo hits grew from %d to %d on unpinned answers", hitsBefore, hits)
	}
}

func TestReplicatedRemoteProviderRejectsMismatchedTable(t *testing.T) {
	p := paperPartition(t)
	rt, err := AssignReplicas(p, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReplicatedRemoteProvider(nil, p, rt, ReplicatedOptions{}); err == nil {
		t.Fatal("expected an error for 0 clients against a 3-worker table")
	} else if !strings.Contains(err.Error(), "replica table") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestReplicatedProviderConcurrentChurn hammers the provider from many
// goroutines while a worker flaps up and down: every request must either
// succeed with correct answers or fail cleanly, and the accounting must stay
// conserved (exactly one outcome per request).
func TestReplicatedProviderConcurrentChurn(t *testing.T) {
	x, _, fakes, rp := fakeReplicatedDeployment(t, 3, 2, ReplicatedOptions{})
	defer rp.Close()
	part := x.Partition()
	pairs := somePairs(t, part, 3)
	want := referenceAnswers(part, pairs, 2)

	stop := make(chan struct{})
	var flapper sync.WaitGroup
	flapper.Add(1)
	go func() {
		defer flapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			fakes[i%3].setFail(i%2 == 0)
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				got, err := rp.PartialKSP(pairs, 2)
				if err != nil {
					continue // clean failure under churn is acceptable
				}
				for pr, wantPaths := range want {
					gotPaths := got[pr]
					if len(gotPaths) != len(wantPaths) {
						errCh <- fmt.Errorf("pair %v: %d paths, want %d", pr, len(gotPaths), len(wantPaths))
						return
					}
					for idx := range wantPaths {
						if math.Abs(gotPaths[idx].Dist-wantPaths[idx].Dist) > 1e-9 {
							errCh <- fmt.Errorf("pair %v path %d dist mismatch", pr, idx)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	flapper.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// After the churn, with everyone healthy, service is fully restored.
	for _, f := range fakes {
		f.setFail(false)
	}
	got, err := rp.PartialKSP(pairs, 2)
	if err != nil {
		t.Fatalf("after churn: %v", err)
	}
	samePaths(t, got, want)
}
