package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kspdg/internal/core"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/rpcbatch"
	"kspdg/internal/trace"
)

// partialCaller is the transport a replicated provider dispatches batches
// through.  *RemoteWorker implements it; tests substitute in-process fakes to
// drive failure and latency scenarios deterministically.
type partialCaller interface {
	PartialKSP(req PartialKSPRequest) (PartialKSPResponse, error)
}

// FailoverStats counts the replica-routing traffic of a replicated provider.
type FailoverStats struct {
	// Failovers is the number of batches re-dispatched to replicas after
	// their primary worker's send failed.
	Failovers int64
	// HedgedBatches is the number of speculative replica dispatches fired
	// because the primary had not answered within the hedge delay.
	HedgedBatches int64
	// HedgeWins is the number of hedged dispatches whose answer was used
	// because it arrived before the primary's.
	HedgeWins int64
	// HedgeDrops is the number of duplicate replies (the loser of a hedge
	// race) that arrived after the race was decided and were discarded.
	HedgeDrops int64
}

// Add accumulates other into s.
func (s *FailoverStats) Add(other FailoverStats) {
	s.Failovers += other.Failovers
	s.HedgedBatches += other.HedgedBatches
	s.HedgeWins += other.HedgeWins
	s.HedgeDrops += other.HedgeDrops
}

// ReplicatedOptions configures a replicated remote provider.
type ReplicatedOptions struct {
	// Batch tunes the per-worker cross-query coalescing (see rpcbatch).  The
	// epoch-pinned pair memo follows the NewBatchedRemoteProvider convention:
	// disabled unless CacheCapacity is explicitly positive, because it is only
	// sound when the workers resolve epoch pins.
	Batch rpcbatch.Options
	// HedgeAfter, when positive, fires a speculative duplicate of a batch at
	// replica workers once the primary has been silent this long; the first
	// answer wins and the loser's reply is discarded.  Partial-KSP requests
	// are idempotent reads, so hedging is always safe — it trades duplicate
	// work for tail latency.  Zero disables hedging.
	HedgeAfter time.Duration
	// SuspectAfter and DownAfter are the membership thresholds (see
	// MembershipOptions).
	SuspectAfter, DownAfter int
	// PingEvery enables background health-check probes of every worker
	// through RemoteWorker.Ping.  Zero leaves failure detection to the data
	// path alone.
	PingEvery time.Duration
}

// ReplicatedRemoteProvider is the fault-tolerant batched refine-step
// provider: every subgraph is hosted by an ordered set of workers (the
// ReplicaTable), a health-checked Membership tracks which workers are worth
// sending to, and each coalesced batch is dispatched primary-first with
// failover — and optionally hedging — to the replicas.  Queries keep flowing
// through the death of any worker as long as every subgraph retains one
// reachable replica.
type ReplicatedRemoteProvider struct {
	*batchedProvider
	callers []partialCaller
	part    *partition.Partition
	table   *ReplicaTable
	member  *Membership
	opts    ReplicatedOptions

	failovers atomic.Int64
	hedged    atomic.Int64
	hedgeWins atomic.Int64
	drops     atomic.Int64
	drains    sync.WaitGroup
}

// NewReplicatedRemoteProvider builds the provider over TCP worker clients.
// The caller must have started each worker with the partition set the table
// assigns it (ReplicaTable.OwnedBy) — both sides derive the same table from
// the shared partition, worker count and replication factor.
func NewReplicatedRemoteProvider(workers []*RemoteWorker, part *partition.Partition, table *ReplicaTable, opts ReplicatedOptions) (*ReplicatedRemoteProvider, error) {
	if len(workers) != table.NumWorkers() {
		return nil, fmt.Errorf("cluster: %d worker clients for a %d-worker replica table", len(workers), table.NumWorkers())
	}
	callers := make([]partialCaller, len(workers))
	for i, rw := range workers {
		callers[i] = rw
	}
	var ping func(int) error
	if opts.PingEvery > 0 {
		ping = func(w int) error { return workers[w].Ping() }
	}
	return newReplicatedProvider(callers, part, table, opts, ping), nil
}

// newReplicatedProvider is the transport-agnostic core, shared with tests.
func newReplicatedProvider(callers []partialCaller, part *partition.Partition, table *ReplicaTable, opts ReplicatedOptions, ping func(int) error) *ReplicatedRemoteProvider {
	if opts.Batch.CacheCapacity == 0 {
		opts.Batch.CacheCapacity = -1
	}
	rp := &ReplicatedRemoteProvider{
		callers: callers,
		part:    part,
		table:   table,
		opts:    opts,
	}
	rp.member = NewMembership(len(callers), MembershipOptions{
		SuspectAfter: opts.SuspectAfter,
		DownAfter:    opts.DownAfter,
		PingEvery:    opts.PingEvery,
		Ping:         ping,
	})
	senders := make([]rpcbatch.Sender, len(callers))
	for w := range callers {
		senders[w] = rp.sender(w)
	}
	rp.batchedProvider = newBatchedProvider(senders, rp.route, opts.Batch)
	return rp
}

// Membership exposes the provider's failure detector (for stats and tests).
func (rp *ReplicatedRemoteProvider) Membership() *Membership { return rp.member }

// Table returns the provider's replica table.
func (rp *ReplicatedRemoteProvider) Table() *ReplicaTable { return rp.table }

// FailoverStats returns the replica-routing counters.
func (rp *ReplicatedRemoteProvider) FailoverStats() FailoverStats {
	return FailoverStats{
		Failovers:     rp.failovers.Load(),
		HedgedBatches: rp.hedged.Load(),
		HedgeWins:     rp.hedgeWins.Load(),
		HedgeDrops:    rp.drops.Load(),
	}
}

// Close stops the health-check loop, flushes the batchers and waits for any
// hedge-race losers still in flight.
func (rp *ReplicatedRemoteProvider) Close() {
	rp.member.Stop()
	rp.batchedProvider.Close()
	rp.drains.Wait()
}

// route picks the dispatch target for every common subgraph of a pair:
// the first Up replica in table order (so the primary while it is healthy),
// else the first merely-Suspect one, else the primary regardless — fresh
// traffic keeps probing a Down primary, which is how a rebooted worker
// rejoins even without background pings.
func (rp *ReplicatedRemoteProvider) route(pr core.PairRequest) []int {
	var ws []int
	seen := make(map[int]bool)
	for _, sg := range rp.part.CommonSubgraphs(pr.A, pr.B) {
		w := rp.pickWorker(rp.table.Replicas(sg))
		if !seen[w] {
			seen[w] = true
			ws = append(ws, w)
		}
	}
	return ws
}

func (rp *ReplicatedRemoteProvider) pickWorker(replicas []int) int {
	for _, w := range replicas {
		if rp.member.State(w) == StateUp {
			return w
		}
	}
	for _, w := range replicas {
		if rp.member.State(w) == StateSuspect {
			return w
		}
	}
	return replicas[0]
}

// pickExcluding is pickWorker restricted to replicas outside excluded, with
// Down workers allowed as a last resort (the alternative is failing the
// query).  ok is false when every replica is excluded.
func (rp *ReplicatedRemoteProvider) pickExcluding(replicas []int, excluded map[int]bool) (int, bool) {
	for _, want := range []WorkerState{StateUp, StateSuspect, StateDown} {
		for _, w := range replicas {
			if !excluded[w] && rp.member.State(w) == want {
				return w, true
			}
		}
	}
	return 0, false
}

// sender adapts worker w to the rpcbatch transport: primary dispatch with
// optional hedging, then failover to replicas if the dispatch failed.
func (rp *ReplicatedRemoteProvider) sender(w int) rpcbatch.Sender {
	return func(ctx context.Context, pairs []core.PairRequest, k int, epoch uint64, hasEpoch bool) (map[core.PairRequest][]graph.Path, bool, error) {
		paths, pinned, err := rp.dispatch(ctx, w, pairs, k, epoch, hasEpoch)
		if err == nil {
			return paths, pinned, nil
		}
		return rp.failover(ctx, w, pairs, k, epoch, hasEpoch, err)
	}
}

// callWorker performs one transport call and feeds the failure detector.  A
// traced context stamps the request with the trace identity and grafts the
// worker's execution spans under a per-call "rpc" span.
func (rp *ReplicatedRemoteProvider) callWorker(ctx context.Context, w int, pairs []core.PairRequest, k int, epoch uint64, hasEpoch bool) (map[core.PairRequest][]graph.Path, bool, error) {
	req := PartialKSPRequest{Pairs: pairs, K: k, Epoch: epoch, HasEpoch: hasEpoch}
	s, _ := trace.StartSpan(ctx, "rpc")
	s.SetAttrInt("worker", int64(w))
	req.TraceID = s.Trace().ID()
	req.SpanID = s.ID()
	resp, err := rp.callers[w].PartialKSP(req)
	if err != nil {
		s.SetAttr("error", err.Error())
		s.Finish()
		rp.member.ReportFailure(w)
		return nil, false, err
	}
	s.Graft(resp.Spans)
	s.Finish()
	rp.member.ReportSuccess(w)
	return responseToMap(pairs, resp), resp.ServedEpoch, nil
}

// outcome is one dispatch attempt's result in a hedge race.
type outcome struct {
	paths  map[core.PairRequest][]graph.Path
	pinned bool
	err    error
}

// dispatch sends one batch to worker w.  With hedging enabled it races the
// primary call against a speculative replica dispatch fired after the hedge
// delay; exactly one result is returned to the batcher either way, so batch
// accounting is conserved no matter how many copies eventually answer.
func (rp *ReplicatedRemoteProvider) dispatch(ctx context.Context, w int, pairs []core.PairRequest, k int, epoch uint64, hasEpoch bool) (map[core.PairRequest][]graph.Path, bool, error) {
	if rp.opts.HedgeAfter <= 0 || rp.table.Factor() < 2 {
		return rp.callWorker(ctx, w, pairs, k, epoch, hasEpoch)
	}
	primCh := make(chan outcome, 1)
	go func() {
		paths, pinned, err := rp.callWorker(ctx, w, pairs, k, epoch, hasEpoch)
		primCh <- outcome{paths: paths, pinned: pinned, err: err}
	}()
	timer := time.NewTimer(rp.opts.HedgeAfter)
	defer timer.Stop()
	select {
	case o := <-primCh:
		return o.paths, o.pinned, o.err
	case <-timer.C:
	}
	// The primary is past the latency budget: fire the hedge.
	rp.hedged.Add(1)
	hedgeCh := make(chan outcome, 1)
	go func() {
		hspan, hctx := trace.StartSpan(ctx, "hedge")
		hspan.SetAttrInt("primary", int64(w))
		paths, pinned, err := rp.replicaDispatch(hctx, pairs, k, epoch, hasEpoch, map[int]bool{w: true})
		if err != nil {
			hspan.SetAttr("error", err.Error())
		}
		hspan.Finish()
		hedgeCh <- outcome{paths: paths, pinned: pinned, err: err}
	}()
	select {
	case o := <-primCh:
		if o.err == nil {
			rp.drainLoser(hedgeCh)
			return o.paths, o.pinned, nil
		}
		// The slow primary turned out to be a dead one; the in-flight hedge
		// doubles as the failover attempt.
		ho := <-hedgeCh
		if ho.err == nil {
			rp.hedgeWins.Add(1)
		}
		return ho.paths, ho.pinned, ho.err
	case ho := <-hedgeCh:
		if ho.err == nil {
			rp.hedgeWins.Add(1)
			rp.drainLoser(primCh)
			return ho.paths, ho.pinned, nil
		}
		// Hedge failed; the primary may still answer.
		o := <-primCh
		return o.paths, o.pinned, o.err
	}
}

// drainLoser consumes the losing side of a decided hedge race so its late
// reply is observed (and counted) instead of leaking a blocked goroutine.
// The discarded copy never reaches the batcher: accounting stays conserved.
func (rp *ReplicatedRemoteProvider) drainLoser(ch <-chan outcome) {
	rp.drains.Add(1)
	go func() {
		defer rp.drains.Done()
		if o := <-ch; o.err == nil {
			rp.drops.Add(1)
		}
	}()
}

// failover re-dispatches a failed batch onto the replicas: every common
// subgraph of every pair is re-covered by workers other than the failed one,
// workers that fail during the retry are excluded and their pairs re-covered
// again, until everything is answered or some subgraph runs out of replicas —
// which fails the batch with a clear error instead of hanging or silently
// dropping pairs.
func (rp *ReplicatedRemoteProvider) failover(ctx context.Context, failed int, pairs []core.PairRequest, k int, epoch uint64, hasEpoch bool, cause error) (map[core.PairRequest][]graph.Path, bool, error) {
	rp.failovers.Add(1)
	fspan, fctx := trace.StartSpan(ctx, "failover")
	fspan.SetAttrInt("failed_worker", int64(failed))
	fspan.SetAttr("cause", cause.Error())
	fspan.Trace().MarkFailedOver()
	paths, pinned, err := rp.replicaDispatch(fctx, pairs, k, epoch, hasEpoch, map[int]bool{failed: true})
	if err != nil {
		fspan.SetAttr("error", err.Error())
		fspan.Finish()
		return nil, false, fmt.Errorf("%w (failing over from worker %d: %v)", err, failed, cause)
	}
	fspan.Finish()
	return paths, pinned, nil
}

// replicaDispatch answers a batch without the excluded workers: it covers the
// pairs' subgraphs with the remaining replicas, calls each chosen worker
// concurrently, and loops re-covering the pairs of any worker that fails
// (excluding it) until the batch is fully answered or coverage is impossible.
func (rp *ReplicatedRemoteProvider) replicaDispatch(ctx context.Context, pairs []core.PairRequest, k int, epoch uint64, hasEpoch bool, excluded map[int]bool) (map[core.PairRequest][]graph.Path, bool, error) {
	merged := make(map[core.PairRequest][]graph.Path, len(pairs))
	for _, pr := range pairs {
		merged[pr] = nil
	}
	pinned := true
	pending := pairs
	for len(pending) > 0 {
		cover, err := rp.cover(pending, excluded)
		if err != nil {
			return nil, false, err
		}
		if len(cover) == 0 {
			break // pairs without common subgraphs: nothing to ask
		}
		type reply struct {
			worker int
			pairs  []core.PairRequest
			paths  map[core.PairRequest][]graph.Path
			pinned bool
			err    error
		}
		replies := make([]reply, 0, len(cover))
		var mu sync.Mutex
		var wg sync.WaitGroup
		for fw, prs := range cover {
			wg.Add(1)
			go func(fw int, prs []core.PairRequest) {
				defer wg.Done()
				paths, pin, err := rp.callWorker(ctx, fw, prs, k, epoch, hasEpoch)
				mu.Lock()
				replies = append(replies, reply{worker: fw, pairs: prs, paths: paths, pinned: pin, err: err})
				mu.Unlock()
			}(fw, prs)
		}
		wg.Wait()
		// A retried pair is re-covered across ALL its common subgraphs, not
		// just the failed worker's share, so a second failure mid-failover
		// can recompute subgraphs that already answered (mergePairPaths
		// dedups them).  Tracking per-(pair, subgraph) coverage would avoid
		// the duplicate work but only pays on the double-failure path.
		retry := make(map[core.PairRequest]bool)
		for _, r := range replies {
			if r.err != nil {
				excluded[r.worker] = true
				for _, pr := range r.pairs {
					retry[pr] = true
				}
				continue
			}
			pinned = pinned && r.pinned
			for _, pr := range r.pairs {
				merged[pr] = append(merged[pr], r.paths[pr]...)
			}
		}
		pending = pending[:0:0]
		for pr := range retry {
			pending = append(pending, pr)
		}
	}
	for pr, ps := range merged {
		if len(ps) > 0 {
			merged[pr] = mergePairPaths(ps, k)
		}
	}
	return merged, pinned, nil
}

// cover picks, for every common subgraph of every pair, a replica outside
// excluded and groups the pairs by chosen worker.  A subgraph whose whole
// replica set is excluded fails the cover with an error naming it.
func (rp *ReplicatedRemoteProvider) cover(pairs []core.PairRequest, excluded map[int]bool) (map[int][]core.PairRequest, error) {
	out := make(map[int][]core.PairRequest)
	for _, pr := range pairs {
		seen := make(map[int]bool)
		for _, sg := range rp.part.CommonSubgraphs(pr.A, pr.B) {
			replicas := rp.table.Replicas(sg)
			w, ok := rp.pickExcluding(replicas, excluded)
			if !ok {
				return nil, fmt.Errorf("cluster: all %d replicas of subgraph %d are unreachable", len(replicas), sg)
			}
			if !seen[w] {
				seen[w] = true
				out[w] = append(out[w], pr)
			}
		}
	}
	return out, nil
}
