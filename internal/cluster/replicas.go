package cluster

import (
	"fmt"
	"sort"
	"sync"

	"kspdg/internal/partition"
)

// ReplicaTable maps every subgraph of a partition to an ordered set of
// workers that host it: the primary first, then the failover replicas in
// preference order.  The table is derived deterministically from the
// partition, the worker count and the replication factor, so every process
// of a deployment (master routing, worker ownership, health-check failover)
// computes the same table from the shared flags without any coordination —
// the same trick the repo already uses to derive the dataset itself.
type ReplicaTable struct {
	factor  int
	workers int
	// mu guards replicas: Extend appends rows for subgraphs opened by
	// topology batches while concurrent queries read the table for routing.
	// Existing rows are never mutated, only the outer slice grows.
	mu sync.RWMutex
	// replicas[sg] lists the workers hosting subgraph sg, primary first.
	replicas [][]int
}

// AssignReplicas derives the replica table for the partition: factor distinct
// workers per subgraph, chosen by a greedy least-loaded policy on vertex
// counts applied rank by rank (rank 0 reproduces the single-copy assignment
// the in-process cluster has always used, so factor 1 changes nothing).  The
// factor is capped at the worker count — with fewer workers than requested
// copies every worker hosts the subgraph.
func AssignReplicas(part *partition.Partition, numWorkers, factor int) (*ReplicaTable, error) {
	if numWorkers < 1 {
		return nil, fmt.Errorf("cluster: replica assignment needs at least 1 worker, got %d", numWorkers)
	}
	if factor < 1 {
		factor = 1
	}
	if factor > numWorkers {
		factor = numWorkers
	}
	rt := &ReplicaTable{
		factor:   factor,
		workers:  numWorkers,
		replicas: make([][]int, part.NumSubgraphs()),
	}

	// Biggest subgraphs first, mirroring the "allocated to different workers
	// on a many-to-one basis based on their load" strategy of Section 5.2.
	type sgLoad struct {
		id   partition.SubgraphID
		size int
	}
	loads := make([]sgLoad, part.NumSubgraphs())
	for i := range loads {
		id := partition.SubgraphID(i)
		loads[i] = sgLoad{id: id, size: part.Subgraph(id).NumVertices()}
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].size != loads[j].size {
			return loads[i].size > loads[j].size
		}
		return loads[i].id < loads[j].id
	})

	workerLoad := make([]int, numWorkers)
	for rank := 0; rank < factor; rank++ {
		for _, l := range loads {
			hosted := rt.replicas[l.id]
			best := -1
			for w := 0; w < numWorkers; w++ {
				if containsWorker(hosted, w) {
					continue
				}
				if best < 0 || workerLoad[w] < workerLoad[best] {
					best = w
				}
			}
			if best < 0 {
				continue // factor capped above, cannot happen
			}
			workerLoad[best] += l.size
			rt.replicas[l.id] = append(hosted, best)
		}
	}
	return rt, nil
}

func containsWorker(ws []int, w int) bool {
	for _, x := range ws {
		if x == w {
			return true
		}
	}
	return false
}

// Factor returns the (possibly capped) replication factor.
func (rt *ReplicaTable) Factor() int { return rt.factor }

// NumWorkers returns the worker count the table was derived for.
func (rt *ReplicaTable) NumWorkers() int { return rt.workers }

// NumSubgraphs returns the number of subgraphs in the table.
func (rt *ReplicaTable) NumSubgraphs() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return len(rt.replicas)
}

// Replicas returns the workers hosting subgraph id, primary first.  The
// returned slice is the table's own; callers must not mutate it.
func (rt *ReplicaTable) Replicas(id partition.SubgraphID) []int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.replicas[id]
}

// Primary returns the primary worker of subgraph id.
func (rt *ReplicaTable) Primary(id partition.SubgraphID) int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.replicas[id][0]
}

// OwnedBy returns every subgraph hosted by worker w at any replica rank, in
// ascending order — the partition set a worker process loads at startup.
func (rt *ReplicaTable) OwnedBy(w int) []partition.SubgraphID {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	var out []partition.SubgraphID
	for sg, ws := range rt.replicas {
		if containsWorker(ws, w) {
			out = append(out, partition.SubgraphID(sg))
		}
	}
	return out
}

// Extend grows the table to numSubgraphs rows for subgraphs opened by
// topology batches.  New subgraph s is assigned round-robin: workers
// (s+r) mod NumWorkers for replica ranks r < Factor.  The rule is a pure
// function of (s, worker count, factor), so standalone workers derive the
// same assignment from the broadcast batch without seeing the table (see
// Worker.HandleTopologyUpdate).  Extend never reassigns existing rows.
func (rt *ReplicaTable) Extend(numSubgraphs int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for sg := len(rt.replicas); sg < numSubgraphs; sg++ {
		ws := make([]int, 0, rt.factor)
		for r := 0; r < rt.factor; r++ {
			ws = append(ws, (sg+r)%rt.workers)
		}
		rt.replicas = append(rt.replicas, ws)
	}
}
