package cluster

import (
	"testing"

	"kspdg/internal/core"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/testutil"
)

func TestWorkerOwnership(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSubgraphs() < 2 {
		t.Skip("need at least two subgraphs")
	}
	w := NewWorker(3, p, []partition.SubgraphID{0})
	if w.ID() != 3 {
		t.Errorf("ID = %d", w.ID())
	}
	if !w.Owns(0) || w.Owns(1) {
		t.Errorf("ownership flags wrong")
	}
	owned := w.Owned()
	if len(owned) != 1 || owned[0] != 0 {
		t.Errorf("Owned = %v", owned)
	}
}

func TestWorkerPartialKSPRestrictedToOwnedSubgraphs(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Find a boundary pair and the subgraphs containing it.
	boundary := p.BoundaryVertices()
	var a, b graph.VertexID = graph.NoVertex, graph.NoVertex
	var subs []partition.SubgraphID
	for i := 0; i < len(boundary) && a == graph.NoVertex; i++ {
		for j := i + 1; j < len(boundary); j++ {
			if cs := p.CommonSubgraphs(boundary[i], boundary[j]); len(cs) > 0 {
				a, b, subs = boundary[i], boundary[j], cs
				break
			}
		}
	}
	if a == graph.NoVertex {
		t.Skip("no co-located boundary pair")
	}
	owner := NewWorker(0, p, subs)
	other := NewWorker(1, p, nil)
	req := PartialKSPRequest{Pairs: []core.PairRequest{{A: a, B: b}}, K: 2}
	ownerResp := owner.HandlePartialKSP(req)
	if got := ownerResp.DecodePaths(); len(got[0]) == 0 {
		t.Errorf("owning worker should return partial paths")
	}
	otherResp := other.HandlePartialKSP(req)
	if got := otherResp.DecodePaths(); len(got[0]) != 0 {
		t.Errorf("non-owning worker should return no paths, got %v", got[0])
	}
	// Same-vertex pairs yield the trivial path regardless of ownership.
	trivial := other.HandlePartialKSP(PartialKSPRequest{Pairs: []core.PairRequest{{A: a, B: a}}, K: 2})
	if got := trivial.DecodePaths(); len(got[0]) != 1 {
		t.Errorf("same-vertex pair should yield the trivial path")
	}
	st := owner.HandleStats(StatsRequest{})
	if st.RequestsServed != 1 || st.PairsServed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWorkerWeightUpdateAccounting(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(0, p, nil)
	resp := w.HandleWeightUpdate(WeightUpdateRequest{Updates: []graph.WeightUpdate{{Edge: 0, NewWeight: 2}, {Edge: 1, NewWeight: 3}}})
	if resp.PathsTouched != 2 {
		t.Errorf("PathsTouched = %d", resp.PathsTouched)
	}
	if st := w.HandleStats(StatsRequest{}); st.UpdatesReceived != 2 {
		t.Errorf("UpdatesReceived = %d", st.UpdatesReceived)
	}
}

func TestPathMsgRoundTrip(t *testing.T) {
	p := graph.Path{Vertices: []graph.VertexID{1, 2, 3}, Dist: 4.5}
	back := fromPathMsg(toPathMsg(p))
	if !back.Equal(p) || back.Dist != p.Dist {
		t.Errorf("round trip mismatch: %v vs %v", back, p)
	}
}
