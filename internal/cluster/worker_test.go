package cluster

import (
	"testing"

	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/testutil"
)

func TestWorkerOwnership(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSubgraphs() < 2 {
		t.Skip("need at least two subgraphs")
	}
	w := NewWorker(3, p, []partition.SubgraphID{0})
	if w.ID() != 3 {
		t.Errorf("ID = %d", w.ID())
	}
	if !w.Owns(0) || w.Owns(1) {
		t.Errorf("ownership flags wrong")
	}
	owned := w.Owned()
	if len(owned) != 1 || owned[0] != 0 {
		t.Errorf("Owned = %v", owned)
	}
}

func TestWorkerPartialKSPRestrictedToOwnedSubgraphs(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Find a boundary pair and the subgraphs containing it.
	boundary := p.BoundaryVertices()
	var a, b graph.VertexID = graph.NoVertex, graph.NoVertex
	var subs []partition.SubgraphID
	for i := 0; i < len(boundary) && a == graph.NoVertex; i++ {
		for j := i + 1; j < len(boundary); j++ {
			if cs := p.CommonSubgraphs(boundary[i], boundary[j]); len(cs) > 0 {
				a, b, subs = boundary[i], boundary[j], cs
				break
			}
		}
	}
	if a == graph.NoVertex {
		t.Skip("no co-located boundary pair")
	}
	owner := NewWorker(0, p, subs)
	other := NewWorker(1, p, nil)
	req := PartialKSPRequest{Pairs: []core.PairRequest{{A: a, B: b}}, K: 2}
	ownerResp := owner.HandlePartialKSP(req)
	if got := ownerResp.DecodePaths(); len(got[0]) == 0 {
		t.Errorf("owning worker should return partial paths")
	}
	otherResp := other.HandlePartialKSP(req)
	if got := otherResp.DecodePaths(); len(got[0]) != 0 {
		t.Errorf("non-owning worker should return no paths, got %v", got[0])
	}
	// Same-vertex pairs yield the trivial path regardless of ownership.
	trivial := other.HandlePartialKSP(PartialKSPRequest{Pairs: []core.PairRequest{{A: a, B: a}}, K: 2})
	if got := trivial.DecodePaths(); len(got[0]) != 1 {
		t.Errorf("same-vertex pair should yield the trivial path")
	}
	st := owner.HandleStats(StatsRequest{})
	if st.RequestsServed != 1 || st.PairsServed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWorkerWeightUpdateAccounting(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dtlp.Build(p, dtlp.Config{Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Pick the edge the most bounding paths cross, so the real count is
	// nonzero and visibly different from the batch size the field used to
	// misreport.
	probe, crossings := graph.EdgeID(-1), 0
	for e := 0; e < g.NumEdges(); e++ {
		if n := x.PathsCrossing([]graph.WeightUpdate{{Edge: graph.EdgeID(e), NewWeight: 2}}); n > crossings {
			probe, crossings = graph.EdgeID(e), n
		}
	}
	if probe < 0 {
		t.Fatal("no edge crossed by a bounding path")
	}
	updates := []graph.WeightUpdate{{Edge: probe, NewWeight: 2}}
	want := x.PathsCrossing(updates)
	if want != crossings || want < 1 {
		t.Fatalf("PathsCrossing = %d, want %d >= 1", want, crossings)
	}

	w := NewWorker(0, p, nil)
	w.SetTouchedCounter(x.PathsCrossing)
	resp := w.HandleWeightUpdate(WeightUpdateRequest{Updates: updates})
	if resp.PathsTouched != want {
		t.Errorf("PathsTouched = %d, want EP-Index count %d", resp.PathsTouched, want)
	}
	if want > 1 && resp.PathsTouched == len(updates) {
		t.Errorf("PathsTouched = batch size %d; must report touched paths, not updates", len(updates))
	}
	if st := w.HandleStats(StatsRequest{}); st.UpdatesReceived != 1 {
		t.Errorf("UpdatesReceived = %d", st.UpdatesReceived)
	}

	// Without index access the worker reports zero instead of a fabricated
	// count.
	bare := NewWorker(1, p, nil)
	if resp := bare.HandleWeightUpdate(WeightUpdateRequest{Updates: updates}); resp.PathsTouched != 0 {
		t.Errorf("counterless PathsTouched = %d, want 0", resp.PathsTouched)
	}
}

func TestPathMsgRoundTrip(t *testing.T) {
	p := graph.Path{Vertices: []graph.VertexID{1, 2, 3}, Dist: 4.5}
	back := fromPathMsg(toPathMsg(p))
	if !back.Equal(p) || back.Dist != p.Dist {
		t.Errorf("round trip mismatch: %v vs %v", back, p)
	}
}
