package cluster

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"

	"kspdg/internal/core"
	"kspdg/internal/graph"
)

// Server exposes a Worker over TCP with gob-encoded messages.  It is the
// network deployment of a SubgraphBolt host: cmd/kspd wraps it in a worker
// process, and a master process reaches it through RemoteWorker.
type Server struct {
	worker   *Worker
	listener net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// Serve starts serving the worker on addr (e.g. "127.0.0.1:0") and returns
// the server.  The returned server is already accepting connections on
// Server.Addr().
func Serve(addr string, worker *Worker) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	s := &Server{worker: worker, listener: l, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the address the server listens on.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops accepting connections and closes existing ones.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		var reply replyEnvelope
		switch {
		case env.Shutdown:
			_ = enc.Encode(replyEnvelope{})
			return
		case env.Partial != nil:
			resp := s.worker.HandlePartialKSP(*env.Partial)
			reply.Partial = &resp
		case env.Update != nil:
			resp := s.worker.HandleWeightUpdate(*env.Update)
			reply.Update = &resp
		case env.Stats != nil:
			resp := s.worker.HandleStats(*env.Stats)
			reply.Stats = &resp
		default:
			reply.Err = "cluster: empty envelope"
		}
		if err := enc.Encode(reply); err != nil {
			return
		}
	}
}

// RemoteWorker is a client connection to a worker Server.  It is safe for
// concurrent use; requests are serialised over a single connection.
type RemoteWorker struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a worker server.
func Dial(addr string) (*RemoteWorker, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	return &RemoteWorker{addr: addr, conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Close closes the connection.
func (rw *RemoteWorker) Close() error {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.conn.Close()
}

// Addr returns the remote address.
func (rw *RemoteWorker) Addr() string { return rw.addr }

func (rw *RemoteWorker) roundTrip(env envelope) (replyEnvelope, error) {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if err := rw.enc.Encode(env); err != nil {
		return replyEnvelope{}, err
	}
	var reply replyEnvelope
	if err := rw.dec.Decode(&reply); err != nil {
		return replyEnvelope{}, err
	}
	if reply.Err != "" {
		return replyEnvelope{}, errors.New(reply.Err)
	}
	return reply, nil
}

// PartialKSP sends a partial-KSP request to the remote worker.
func (rw *RemoteWorker) PartialKSP(req PartialKSPRequest) (PartialKSPResponse, error) {
	reply, err := rw.roundTrip(envelope{Partial: &req})
	if err != nil {
		return PartialKSPResponse{}, err
	}
	if reply.Partial == nil {
		return PartialKSPResponse{}, errors.New("cluster: missing partial response")
	}
	return *reply.Partial, nil
}

// ApplyUpdates sends weight updates to the remote worker.
func (rw *RemoteWorker) ApplyUpdates(updates []graph.WeightUpdate) (WeightUpdateResponse, error) {
	reply, err := rw.roundTrip(envelope{Update: &WeightUpdateRequest{Updates: updates}})
	if err != nil {
		return WeightUpdateResponse{}, err
	}
	if reply.Update == nil {
		return WeightUpdateResponse{}, errors.New("cluster: missing update response")
	}
	if reply.Update.Err != "" {
		return *reply.Update, fmt.Errorf("cluster: worker failed to apply updates: %s", reply.Update.Err)
	}
	return *reply.Update, nil
}

// Stats fetches the remote worker's load counters.
func (rw *RemoteWorker) Stats() (StatsResponse, error) {
	reply, err := rw.roundTrip(envelope{Stats: &StatsRequest{}})
	if err != nil {
		return StatsResponse{}, err
	}
	if reply.Stats == nil {
		return StatsResponse{}, errors.New("cluster: missing stats response")
	}
	return *reply.Stats, nil
}

// Shutdown asks the remote worker connection to close after acknowledging.
func (rw *RemoteWorker) Shutdown() error {
	_, err := rw.roundTrip(envelope{Shutdown: true})
	return err
}

// RemoteProvider is a core.PartialProvider backed by remote workers reached
// over TCP.  Every worker is assumed to be able to serve any pair whose
// subgraphs it owns; pairs are broadcast to all workers and the replies
// merged, mirroring how the Storm deployment broadcasts the reference path to
// all SubgraphBolts (Section 6.1, Step 2).
type RemoteProvider struct {
	workers []*RemoteWorker
}

// NewRemoteProvider builds a provider over the given worker connections.
func NewRemoteProvider(workers []*RemoteWorker) *RemoteProvider {
	return &RemoteProvider{workers: workers}
}

// PartialKSP implements core.PartialProvider.
func (rp *RemoteProvider) PartialKSP(pairs []core.PairRequest, k int) (map[core.PairRequest][]graph.Path, error) {
	out := make(map[core.PairRequest][]graph.Path, len(pairs))
	if len(pairs) == 0 {
		return out, nil
	}
	req := PartialKSPRequest{Pairs: pairs, K: k}
	type reply struct {
		resp PartialKSPResponse
		err  error
	}
	replies := make([]reply, len(rp.workers))
	var wg sync.WaitGroup
	for i, w := range rp.workers {
		wg.Add(1)
		go func(i int, w *RemoteWorker) {
			defer wg.Done()
			resp, err := w.PartialKSP(req)
			replies[i] = reply{resp: resp, err: err}
		}(i, w)
	}
	wg.Wait()
	merged := make(map[core.PairRequest][]graph.Path)
	for _, r := range replies {
		if r.err != nil {
			return nil, r.err
		}
		for i, pr := range pairs {
			if i < len(r.resp.Results) {
				for _, msg := range r.resp.Results[i] {
					merged[pr] = append(merged[pr], fromPathMsg(msg))
				}
			}
		}
	}
	for pr, paths := range merged {
		sort.Slice(paths, func(i, j int) bool { return graph.ComparePaths(paths[i], paths[j]) < 0 })
		var dedup []graph.Path
		seen := make(map[string]bool)
		for _, p := range paths {
			key := graph.PathKey(p)
			if seen[key] {
				continue
			}
			seen[key] = true
			dedup = append(dedup, p)
			if len(dedup) == k {
				break
			}
		}
		out[pr] = dedup
	}
	for _, pr := range pairs {
		if _, ok := out[pr]; !ok {
			out[pr] = nil
		}
	}
	return out, nil
}
