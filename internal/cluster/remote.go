package cluster

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"kspdg/internal/core"
	"kspdg/internal/graph"
)

// maxInflightPerConn bounds the number of concurrently executing requests a
// server runs per connection.  When the bound is hit the connection's read
// loop blocks, which backpressures the client through the kernel buffers
// instead of growing an unbounded goroutine pile.
const maxInflightPerConn = 64

// Server exposes a Worker over TCP with gob-encoded messages.  It is the
// network deployment of a SubgraphBolt host: cmd/kspd wraps it in a worker
// process, and a master process reaches it through RemoteWorker.
//
// Requests tagged with a nonzero ID (the multiplexed transport) are executed
// concurrently and answered out of order; untagged requests keep the legacy
// lock-step behaviour of one inline reply per request, in order.
type Server struct {
	worker   *Worker
	listener net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// Serve starts serving the worker on addr (e.g. "127.0.0.1:0") and returns
// the server.  The returned server is already accepting connections on
// Server.Addr().
func Serve(addr string, worker *Worker) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	s := &Server{worker: worker, listener: l, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the address the server listens on.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops accepting connections, closes existing ones, and waits until
// every connection handler — including request goroutines spawned for
// in-flight multiplexed requests — has returned.  Requests already executing
// finish their computation; their replies fail to send on the closed
// connection and are dropped.  Close is idempotent and safe to call
// concurrently with new connections being accepted: the listener is closed
// before the per-connection teardown, and a connection that slipped past
// Accept is detected by the registration check and closed unserved.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = s.listener.Close()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	// Close the listener first so no further connections are accepted, then
	// close the registered connections.  A connection accepted before the
	// listener closed but not yet registered is closed by acceptLoop itself
	// when registration observes the closed flag.
	err := s.listener.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return
		}
		// Registration and the closed-check are one critical section, and the
		// handler is accounted in s.wg before the section ends: Close either
		// sees the connection in s.conns (and closes it) or this loop sees
		// s.closed (and closes it here).  There is no window in which a fresh
		// connection can outlive Close unsupervised.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	// requests tracks the goroutines spawned for multiplexed requests so the
	// connection teardown (and therefore Close) waits for them.
	var requests sync.WaitGroup
	defer func() {
		requests.Wait()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	// writeMu serialises reply writes: multiplexed replies come from
	// concurrent request goroutines but the gob stream permits one writer.
	var writeMu sync.Mutex
	write := func(reply replyEnvelope) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		return enc.Encode(reply)
	}
	slots := make(chan struct{}, maxInflightPerConn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		if env.Shutdown {
			_ = write(replyEnvelope{ID: env.ID})
			return
		}
		if env.ID == 0 {
			// Legacy lock-step framing: answer inline, in order.
			if err := write(s.dispatch(env)); err != nil {
				return
			}
			continue
		}
		slots <- struct{}{}
		requests.Add(1)
		go func(env envelope) {
			defer requests.Done()
			reply := s.dispatch(env)
			reply.ID = env.ID
			_ = write(reply)
			<-slots
		}(env)
	}
}

// dispatch executes one request envelope against the worker.
func (s *Server) dispatch(env envelope) replyEnvelope {
	var reply replyEnvelope
	switch {
	case env.Partial != nil:
		resp := s.worker.HandlePartialKSP(*env.Partial)
		reply.Partial = &resp
	case env.Update != nil:
		resp := s.worker.HandleWeightUpdate(*env.Update)
		reply.Update = &resp
	case env.Topology != nil:
		resp := s.worker.HandleTopologyUpdate(*env.Topology)
		reply.Topology = &resp
	case env.Stats != nil:
		resp := s.worker.HandleStats(*env.Stats)
		reply.Stats = &resp
	case env.Ping:
		reply.Pong = true
	default:
		reply.Err = "cluster: empty envelope"
	}
	return reply
}

// ClientOptions configures a RemoteWorker client.
type ClientOptions struct {
	// PoolSize is the number of TCP connections requests are spread over.
	// Zero means 1.  Even with one connection the client is pipelined: many
	// requests can be in flight concurrently, demultiplexed by request ID.
	PoolSize int
	// Serialize reverts to the legacy lock-step transport: one connection,
	// one request at a time, no request IDs, no reconnection.  It exists as
	// the baseline of the transport benchmarks.
	Serialize bool
	// MaxAttempts is the number of tries per request across reconnects.
	// Zero means 4.
	MaxAttempts int
	// BackoffBase and BackoffMax bound the capped exponential delay between
	// attempts after a connection failure.  Zeros mean 2ms and 250ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.PoolSize <= 0 {
		o.PoolSize = 1
	}
	if o.Serialize {
		o.PoolSize = 1
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 2 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 250 * time.Millisecond
	}
	return o
}

// callResult is a demultiplexed reply (or the transport error that killed
// the connection it was pending on).
type callResult struct {
	rep replyEnvelope
	err error
}

// pendingCalls tracks the in-flight request IDs of one connection and routes
// incoming replies to their waiters.  Unknown and duplicate IDs are dropped:
// a reply is delivered at most once, and only to the call that registered it.
type pendingCalls struct {
	mu    sync.Mutex
	calls map[uint64]chan callResult
	dead  error
}

func newPendingCalls() *pendingCalls {
	return &pendingCalls{calls: make(map[uint64]chan callResult)}
}

// register creates a waiter slot for id.  It fails if the connection already
// died (the reader exited before the call could be registered).
func (p *pendingCalls) register(id uint64) (chan callResult, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead != nil {
		return nil, p.dead
	}
	ch := make(chan callResult, 1)
	p.calls[id] = ch
	return ch, nil
}

// deliver routes one reply to its registered waiter.  It reports whether the
// reply was consumed; unmatched (unknown or already-answered) IDs are safely
// discarded.
func (p *pendingCalls) deliver(rep replyEnvelope) bool {
	p.mu.Lock()
	ch, ok := p.calls[rep.ID]
	if ok {
		delete(p.calls, rep.ID)
	}
	p.mu.Unlock()
	if !ok {
		return false
	}
	ch <- callResult{rep: rep}
	return true
}

// drop forgets a registered id (used when the request failed to send).
func (p *pendingCalls) drop(id uint64) {
	p.mu.Lock()
	delete(p.calls, id)
	p.mu.Unlock()
}

// failAll terminates every pending call with err and poisons the table so
// later registrations fail fast.
func (p *pendingCalls) failAll(err error) {
	p.mu.Lock()
	if p.dead == nil {
		p.dead = err
	}
	calls := p.calls
	p.calls = make(map[uint64]chan callResult)
	p.mu.Unlock()
	for _, ch := range calls {
		ch <- callResult{err: err}
	}
}

// readReplies decodes reply envelopes from dec and routes each to its pending
// call until the stream ends, returning the terminating decode error.  It is
// the demultiplexing half of the framing; FuzzFramedEnvelope drives it with
// adversarial streams.
func readReplies(dec *gob.Decoder, pending *pendingCalls) error {
	for {
		var rep replyEnvelope
		if err := dec.Decode(&rep); err != nil {
			return err
		}
		pending.deliver(rep)
	}
}

// clientConn is one pooled connection of a RemoteWorker: a shared gob encoder
// guarded by a mutex, and a reader goroutine demultiplexing replies by ID.
// When the connection breaks, pending calls fail (their callers retry through
// the RemoteWorker backoff loop) and the next send re-dials.
type clientConn struct {
	addr string

	mu      sync.Mutex
	closed  bool
	conn    net.Conn
	enc     *gob.Encoder
	pending *pendingCalls
}

// ensureLocked dials the connection if needed.  Callers hold cc.mu.
func (cc *clientConn) ensureLocked() error {
	if cc.closed {
		// A roundTrip racing RemoteWorker.Close must not re-dial: the fresh
		// connection and its reader goroutine would outlive the client.
		return errClientClosed
	}
	if cc.conn != nil {
		return nil
	}
	conn, err := net.Dial("tcp", cc.addr)
	if err != nil {
		return fmt.Errorf("cluster: dial %s: %w", cc.addr, err)
	}
	cc.conn = conn
	cc.enc = gob.NewEncoder(conn)
	cc.pending = newPendingCalls()
	pending := cc.pending
	dec := gob.NewDecoder(conn)
	go func() {
		err := readReplies(dec, pending)
		pending.failAll(fmt.Errorf("cluster: connection to %s lost: %w", cc.addr, err))
		cc.teardown(conn)
	}()
	return nil
}

// send encodes one request and returns the channel its reply will arrive on.
func (cc *clientConn) send(env envelope) (chan callResult, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if err := cc.ensureLocked(); err != nil {
		return nil, err
	}
	ch, err := cc.pending.register(env.ID)
	if err != nil {
		return nil, err
	}
	if err := cc.enc.Encode(env); err != nil {
		cc.pending.drop(env.ID)
		cc.conn.Close()
		cc.conn = nil
		return nil, fmt.Errorf("cluster: send to %s: %w", cc.addr, err)
	}
	return ch, nil
}

// teardown discards the connection if it is still the current one.
func (cc *clientConn) teardown(conn net.Conn) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.conn == conn {
		cc.conn.Close()
		cc.conn = nil
	}
}

// close closes the connection permanently and fails its pending calls.
func (cc *clientConn) close(err error) {
	cc.mu.Lock()
	cc.closed = true
	conn, pending := cc.conn, cc.pending
	cc.conn = nil
	cc.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if pending != nil {
		pending.failAll(err)
	}
}

// errClientClosed fails requests issued after RemoteWorker.Close.
var errClientClosed = errors.New("cluster: client closed")

// RemoteWorker is a client to a worker Server.  It is safe for unbounded
// concurrent use: requests are tagged with IDs, spread over a pool of
// connections, and demultiplexed by reader goroutines, so many requests are
// in flight concurrently instead of lock-step request/response.  A dropped
// connection is re-dialed with capped exponential backoff and the affected
// requests are retried (all worker requests are idempotent: partial-KSP is a
// read and weight updates carry absolute weights, though a retried update
// whose original reply was lost is counted twice in the worker's load
// stats).
type RemoteWorker struct {
	addr string
	opts ClientOptions

	ids    atomic.Uint64 // request ID source (IDs are nonzero)
	next   atomic.Uint64 // round-robin cursor over the pool
	closed atomic.Bool
	conns  []*clientConn

	// failStreak counts consecutive transport failures across all requests
	// and attempts of this client.  It only resets after a successful
	// round-trip — a reply actually arriving — never on a merely accepted
	// write: a half-dead connection that swallows requests without answering
	// must keep backing off instead of retrying at full speed.
	failStreak atomic.Uint64

	// serial mode state (ClientOptions.Serialize)
	serialMu sync.Mutex
	serial   net.Conn
	senc     *gob.Encoder
	sdec     *gob.Decoder
}

// Dial connects to a worker server with default options (one pipelined
// multiplexed connection).
func Dial(addr string) (*RemoteWorker, error) {
	return DialPool(addr, ClientOptions{})
}

// DialPool connects to a worker server with an explicit transport
// configuration.  All PoolSize connections are established eagerly so
// unreachable workers fail fast; later drops reconnect lazily with backoff.
func DialPool(addr string, opts ClientOptions) (*RemoteWorker, error) {
	opts = opts.withDefaults()
	rw := &RemoteWorker{addr: addr, opts: opts}
	if opts.Serialize {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
		}
		rw.serial = conn
		rw.senc = gob.NewEncoder(conn)
		rw.sdec = gob.NewDecoder(conn)
		return rw, nil
	}
	for i := 0; i < opts.PoolSize; i++ {
		cc := &clientConn{addr: addr}
		cc.mu.Lock()
		err := cc.ensureLocked()
		cc.mu.Unlock()
		if err != nil {
			for _, prev := range rw.conns {
				prev.close(errClientClosed)
			}
			return nil, err
		}
		rw.conns = append(rw.conns, cc)
	}
	return rw, nil
}

// Close closes every pooled connection; pending requests fail.
func (rw *RemoteWorker) Close() error {
	rw.closed.Store(true)
	if rw.opts.Serialize {
		rw.serialMu.Lock()
		defer rw.serialMu.Unlock()
		return rw.serial.Close()
	}
	for _, cc := range rw.conns {
		cc.close(errClientClosed)
	}
	return nil
}

// Addr returns the remote address.
func (rw *RemoteWorker) Addr() string { return rw.addr }

// PoolSize returns the number of pooled connections.
func (rw *RemoteWorker) PoolSize() int { return rw.opts.PoolSize }

// backoffDelay derives the pre-attempt delay from the client's persistent
// failure streak: BackoffBase doubled per recorded failure, capped at
// BackoffMax.  Zero while the client is healthy.
func (rw *RemoteWorker) backoffDelay() time.Duration {
	streak := rw.failStreak.Load()
	if streak == 0 {
		return 0
	}
	delay := rw.opts.BackoffBase
	for i := uint64(1); i < streak && delay < rw.opts.BackoffMax; i++ {
		delay *= 2
	}
	if delay > rw.opts.BackoffMax {
		delay = rw.opts.BackoffMax
	}
	return delay
}

// roundTrip issues one request and waits for its reply, retrying with capped
// backoff across reconnects on transport failures.  The backoff state lives
// on the client, not the call: the streak persists across round trips and
// only a completed round-trip (a reply received) resets it, so a connection
// that accepts writes but never answers keeps being treated as failing.
// Application-level errors (reply.Err) are returned without retry.
func (rw *RemoteWorker) roundTrip(env envelope) (replyEnvelope, error) {
	if rw.opts.Serialize {
		return rw.serialRoundTrip(env)
	}
	var lastErr error
	for attempt := 0; attempt < rw.opts.MaxAttempts; attempt++ {
		// The delay applies before the first attempt too: with a nonzero
		// streak the worker is known-unhealthy, and fresh calls pacing
		// themselves is the whole point of persisting the backoff state.
		if delay := rw.backoffDelay(); delay > 0 {
			time.Sleep(delay)
		}
		if rw.closed.Load() {
			return replyEnvelope{}, errClientClosed
		}
		cc := rw.conns[rw.next.Add(1)%uint64(len(rw.conns))]
		env.ID = rw.ids.Add(1)
		ch, err := cc.send(env)
		if err != nil {
			lastErr = err
			rw.failStreak.Add(1)
			continue
		}
		res := <-ch
		if res.err != nil {
			lastErr = res.err
			rw.failStreak.Add(1)
			continue
		}
		rw.failStreak.Store(0)
		if res.rep.Err != "" {
			return replyEnvelope{}, errors.New(res.rep.Err)
		}
		return res.rep, nil
	}
	return replyEnvelope{}, fmt.Errorf("cluster: %s unreachable after %d attempts: %w", rw.addr, rw.opts.MaxAttempts, lastErr)
}

// serialRoundTrip is the legacy lock-step transport (see ClientOptions).
func (rw *RemoteWorker) serialRoundTrip(env envelope) (replyEnvelope, error) {
	rw.serialMu.Lock()
	defer rw.serialMu.Unlock()
	if err := rw.senc.Encode(env); err != nil {
		return replyEnvelope{}, err
	}
	var reply replyEnvelope
	if err := rw.sdec.Decode(&reply); err != nil {
		return replyEnvelope{}, err
	}
	if reply.Err != "" {
		return replyEnvelope{}, errors.New(reply.Err)
	}
	return reply, nil
}

// PartialKSP sends a partial-KSP request to the remote worker.
func (rw *RemoteWorker) PartialKSP(req PartialKSPRequest) (PartialKSPResponse, error) {
	reply, err := rw.roundTrip(envelope{Partial: &req})
	if err != nil {
		return PartialKSPResponse{}, err
	}
	if reply.Partial == nil {
		return PartialKSPResponse{}, errors.New("cluster: missing partial response")
	}
	return *reply.Partial, nil
}

// ApplyUpdates sends weight updates to the remote worker.
func (rw *RemoteWorker) ApplyUpdates(updates []graph.WeightUpdate) (WeightUpdateResponse, error) {
	reply, err := rw.roundTrip(envelope{Update: &WeightUpdateRequest{Updates: updates}})
	if err != nil {
		return WeightUpdateResponse{}, err
	}
	if reply.Update == nil {
		return WeightUpdateResponse{}, errors.New("cluster: missing update response")
	}
	if reply.Update.Err != "" {
		return *reply.Update, fmt.Errorf("cluster: worker failed to apply updates: %s", reply.Update.Err)
	}
	return *reply.Update, nil
}

// ApplyTopology sends a topology batch to the remote worker.  Unlike weight
// updates, topology batches are NOT idempotent: a re-delivered batch (the
// transport retries within the attempt budget when a reply is lost) appends
// its inserts a second time.  Batches containing deletes fail loudly on
// re-delivery — deleting an already-dead edge is an error — and the echoed
// InsertedEdges let the master detect an id-shifted double apply.  A master
// observing either signal, or a transport error, must treat the worker's
// structure as diverged and resync it (restart from a snapshot).
func (rw *RemoteWorker) ApplyTopology(req TopologyUpdateRequest) (TopologyUpdateResponse, error) {
	reply, err := rw.roundTrip(envelope{Topology: &req})
	if err != nil {
		return TopologyUpdateResponse{}, err
	}
	if reply.Topology == nil {
		return TopologyUpdateResponse{}, errors.New("cluster: missing topology response (pre-topology worker?)")
	}
	if reply.Topology.Err != "" {
		return *reply.Topology, fmt.Errorf("cluster: worker failed to apply topology batch: %s", reply.Topology.Err)
	}
	return *reply.Topology, nil
}

// Stats fetches the remote worker's load counters.
func (rw *RemoteWorker) Stats() (StatsResponse, error) {
	reply, err := rw.roundTrip(envelope{Stats: &StatsRequest{}})
	if err != nil {
		return StatsResponse{}, err
	}
	if reply.Stats == nil {
		return StatsResponse{}, errors.New("cluster: missing stats response")
	}
	return *reply.Stats, nil
}

// Ping probes the remote worker with a no-op request.  It is the health
// check the membership layer runs between real traffic; like every request
// it retries within the client's attempt budget, so one Ping error means the
// worker stayed unreachable through the backoff window.
func (rw *RemoteWorker) Ping() error {
	reply, err := rw.roundTrip(envelope{Ping: true})
	if err != nil {
		return err
	}
	if !reply.Pong {
		return fmt.Errorf("cluster: %s did not acknowledge ping (pre-ping server?)", rw.addr)
	}
	return nil
}

// Shutdown asks the remote worker connection to close after acknowledging.
func (rw *RemoteWorker) Shutdown() error {
	_, err := rw.roundTrip(envelope{Shutdown: true})
	return err
}

// RemoteProvider is a core.PartialProvider backed by remote workers reached
// over TCP.  Every worker is assumed to be able to serve any pair whose
// subgraphs it owns; pairs are broadcast to all workers and the replies
// merged, mirroring how the Storm deployment broadcasts the reference path to
// all SubgraphBolts (Section 6.1, Step 2).  Each query fans its pairs out
// alone; see NewBatchedRemoteProvider for the transport that additionally
// coalesces pairs across concurrent queries.
type RemoteProvider struct {
	workers []*RemoteWorker
}

// NewRemoteProvider builds a provider over the given worker connections.
func NewRemoteProvider(workers []*RemoteWorker) *RemoteProvider {
	return &RemoteProvider{workers: workers}
}

// PartialKSP implements core.PartialProvider.
func (rp *RemoteProvider) PartialKSP(pairs []core.PairRequest, k int) (map[core.PairRequest][]graph.Path, error) {
	out := make(map[core.PairRequest][]graph.Path, len(pairs))
	if len(pairs) == 0 {
		return out, nil
	}
	req := PartialKSPRequest{Pairs: pairs, K: k}
	type reply struct {
		resp PartialKSPResponse
		err  error
	}
	replies := make([]reply, len(rp.workers))
	var wg sync.WaitGroup
	for i, w := range rp.workers {
		wg.Add(1)
		go func(i int, w *RemoteWorker) {
			defer wg.Done()
			resp, err := w.PartialKSP(req)
			replies[i] = reply{resp: resp, err: err}
		}(i, w)
	}
	wg.Wait()
	merged := make(map[core.PairRequest][]graph.Path)
	for _, r := range replies {
		if r.err != nil {
			return nil, r.err
		}
		decoded := r.resp.DecodePaths()
		for i, pr := range pairs {
			if i < len(decoded) {
				merged[pr] = append(merged[pr], decoded[i]...)
			}
		}
	}
	for pr, paths := range merged {
		out[pr] = mergePairPaths(paths, k)
	}
	for _, pr := range pairs {
		if _, ok := out[pr]; !ok {
			out[pr] = nil
		}
	}
	return out, nil
}
