package cluster

import (
	"math"
	"strings"
	"testing"

	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/testutil"
)

// TestClusterApplyTopology drives a topology batch through the in-process
// cluster: the shared index publishes the new epoch, every worker receives
// the broadcast and the derived partition, and queries answer against the
// mutated graph.
func TestClusterApplyTopology(t *testing.T) {
	g := testutil.PaperGraph(t)
	x, c := buildCluster(t, g, 6, 2, 2)

	nv := graph.VertexID(g.NumVertices())
	st, err := c.ApplyTopology(graph.TopologyUpdate{
		AddVertices: 1,
		InsertEdges: []graph.Edge{{U: testutil.V1, V: nv, Weight: 1}, {U: nv, V: testutil.V19, Weight: 1}},
		DeleteEdges: []graph.EdgeID{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 || len(st.InsertedEdges) != 2 || len(st.DeletedEdges) != 1 {
		t.Fatalf("unexpected topology stats: %+v", st)
	}

	// Queries remain exact against the post-topology parent graph.
	cur := x.Partition().Parent()
	engine := c.Engine(core.Options{})
	res, err := engine.Query(testutil.V1, testutil.V19, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := testutil.BruteForceKSP(cur, testutil.V1, testutil.V19, 2)
	if len(res.Paths) == 0 || math.Abs(res.Paths[0].Dist-want[0].Dist) > 1e-9 {
		t.Fatalf("post-topology query mismatch: %v vs %v", res.Paths, want)
	}
	if res.Paths[0].Dist > 2+1e-9 {
		t.Fatalf("inserted shortcut ignored: best v1->v19 = %g, want 2", res.Paths[0].Dist)
	}

	cs := c.Stats()
	if cs.TopologyBatches != 1 {
		t.Errorf("cluster topology batches = %d, want 1", cs.TopologyBatches)
	}

	// Empty batches are no-ops and never reach the workers.
	if _, err := c.ApplyTopology(graph.TopologyUpdate{}); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	if got := c.Stats().TopologyBatches; got != 1 {
		t.Errorf("empty batch was broadcast: %d batches", got)
	}
}

// TestRemoteWorkerTopology sends a topology batch to a standalone TCP worker
// (local-apply mode, as cmd/kspd runs them): the worker must derive the same
// edge ids as the master would, serve partial paths on the mutated graph, and
// reject a second delete of the same edge.
func TestRemoteWorkerTopology(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dtlp.Build(p, dtlp.Config{Xi: 1}); err != nil {
		t.Fatal(err)
	}
	var owned []partition.SubgraphID
	for i := 0; i < p.NumSubgraphs(); i++ {
		owned = append(owned, partition.SubgraphID(i))
	}
	w := NewWorker(0, p, owned)
	w.EnableLocalApply()
	srv, err := Serve("127.0.0.1:0", w)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rw, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()

	bestDist := func() float64 {
		t.Helper()
		resp, err := rw.PartialKSP(PartialKSPRequest{Pairs: []core.PairRequest{{A: testutil.V4, B: testutil.V6}}, K: 2})
		if err != nil {
			t.Fatalf("PartialKSP: %v", err)
		}
		best := math.Inf(1)
		for _, paths := range resp.DecodePaths() {
			for _, path := range paths {
				if path.Dist < best {
					best = path.Dist
				}
			}
		}
		return best
	}

	if pre := bestDist(); pre <= 0.5 {
		t.Fatalf("pre-topology partial distance %g already at the shortcut weight", pre)
	}

	// Insert a direct v4-v6 shortcut and delete the v4-v5 edge (id 5 in the
	// paper edge list).  The worker derives the inserted edge's global id
	// itself; it must match the master's deterministic assignment (appended
	// at NumEdges).
	resp, err := rw.ApplyTopology(TopologyUpdateRequest{
		Update: graph.TopologyUpdate{
			InsertEdges: []graph.Edge{{U: testutil.V4, V: testutil.V6, Weight: 0.5}},
			DeleteEdges: []graph.EdgeID{5},
		},
		NumWorkers: 1,
		Factor:     1,
	})
	if err != nil {
		t.Fatalf("ApplyTopology: %v", err)
	}
	if len(resp.InsertedEdges) != 1 || resp.InsertedEdges[0] != graph.EdgeID(g.NumEdges()) {
		t.Fatalf("inserted ids = %v, want [%d]", resp.InsertedEdges, g.NumEdges())
	}
	if len(resp.DeletedEdges) != 1 || resp.DeletedEdges[0] != 5 {
		t.Fatalf("deleted ids = %v, want [5]", resp.DeletedEdges)
	}

	if post := bestDist(); math.Abs(post-0.5) > 1e-9 {
		t.Fatalf("post-topology partial distance = %g, want 0.5 via the inserted edge", post)
	}

	stats, err := rw.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.TopologyBatches != 1 {
		t.Errorf("worker topology batches = %d, want 1", stats.TopologyBatches)
	}

	// Deleting the same edge again must fail remotely with the engine's
	// error, not crash the worker.
	if _, err := rw.ApplyTopology(TopologyUpdateRequest{
		Update:     graph.TopologyUpdate{DeleteEdges: []graph.EdgeID{5}},
		NumWorkers: 1,
		Factor:     1,
	}); err == nil || !strings.Contains(err.Error(), "already deleted") {
		t.Fatalf("double delete error = %v, want 'already deleted'", err)
	}
	if err := rw.Shutdown(); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}
