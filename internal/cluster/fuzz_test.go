package cluster

import (
	"bytes"
	"encoding/gob"
	"errors"
	"reflect"
	"testing"

	"kspdg/internal/core"
	"kspdg/internal/graph"
)

// FuzzWireRoundTrip builds request and reply envelopes from fuzzed fields,
// encodes them with the TCP transport's gob encoding, decodes them back and
// requires the result to be identical.  Any asymmetry here would corrupt the
// master/worker protocol silently.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add("partial", int64(3), int32(1), int32(2), uint64(0), false, 7.5, uint8(2))
	f.Add("partial", int64(8), int32(40), int32(41), uint64(12), true, 1.25, uint8(5))
	f.Add("update", int64(1), int32(0), int32(9), uint64(3), true, 0.5, uint8(1))
	f.Add("stats", int64(0), int32(0), int32(0), uint64(0), false, 0.0, uint8(0))
	f.Add("shutdown", int64(0), int32(0), int32(0), uint64(0), false, 0.0, uint8(0))
	f.Fuzz(func(t *testing.T, kind string, k int64, a, b int32, epoch uint64, hasEpoch bool, dist float64, n uint8) {
		env := envelope{Kind: kind}
		switch kind {
		case "partial":
			req := &PartialKSPRequest{K: int(k), Epoch: epoch, HasEpoch: hasEpoch}
			for i := uint8(0); i < n%8; i++ {
				req.Pairs = append(req.Pairs, core.PairRequest{
					A: graph.VertexID(a + int32(i)),
					B: graph.VertexID(b - int32(i)),
				})
			}
			env.Partial = req
		case "update":
			req := &WeightUpdateRequest{}
			for i := uint8(0); i < n%8; i++ {
				req.Updates = append(req.Updates, graph.WeightUpdate{
					Edge:      graph.EdgeID(a + int32(i)),
					NewWeight: dist,
				})
			}
			env.Update = req
		case "stats":
			env.Stats = &StatsRequest{}
		default:
			env.Shutdown = true
		}
		data, err := marshalEnvelope(env)
		if err != nil {
			t.Fatalf("marshal envelope: %v", err)
		}
		got, err := unmarshalEnvelope(data)
		if err != nil {
			t.Fatalf("unmarshal envelope: %v", err)
		}
		if !envelopesEqual(env, got) {
			t.Fatalf("envelope round trip changed the message:\n sent %+v\n got  %+v", env, got)
		}

		rep := replyEnvelope{
			Partial: &PartialKSPResponse{Results: [][]PathMsg{{
				{Vertices: []graph.VertexID{graph.VertexID(a), graph.VertexID(b)}, Dist: dist},
			}}},
			Update: &WeightUpdateResponse{PathsTouched: int(n)},
			Stats:  &StatsResponse{Worker: int(a), Subgraphs: int(n), PairsServed: int(k)},
		}
		rdata, err := marshalReply(rep)
		if err != nil {
			t.Fatalf("marshal reply: %v", err)
		}
		rgot, err := unmarshalReply(rdata)
		if err != nil {
			t.Fatalf("unmarshal reply: %v", err)
		}
		if !reflect.DeepEqual(normalizeReply(rep), normalizeReply(rgot)) {
			t.Fatalf("reply round trip changed the message:\n sent %+v\n got  %+v", rep, rgot)
		}
	})
}

// envelopesEqual compares envelopes modulo gob's nil/empty-slice conflation.
func envelopesEqual(a, b envelope) bool {
	return reflect.DeepEqual(normalizeEnvelope(a), normalizeEnvelope(b))
}

func normalizeEnvelope(e envelope) envelope {
	if e.Partial != nil && len(e.Partial.Pairs) == 0 {
		p := *e.Partial
		p.Pairs = nil
		e.Partial = &p
	}
	if e.Update != nil && len(e.Update.Updates) == 0 {
		u := *e.Update
		u.Updates = nil
		e.Update = &u
	}
	return e
}

func normalizeReply(r replyEnvelope) replyEnvelope {
	if r.Partial != nil {
		p := *r.Partial
		if len(p.Results) == 0 {
			p.Results = nil
		}
		r.Partial = &p
	}
	return r
}

// FuzzFramedEnvelope attacks the request-ID framing from the reply side: the
// client's demultiplexing reader is fed adversarial reply streams — valid
// replies with reordered IDs, duplicate IDs, IDs that were never registered,
// truncated frames, and raw garbage.  The invariants: the reader never
// panics, always terminates, delivers each registered call at most one reply,
// and after the connection-teardown failAll every registered call has exactly
// one outcome (so no caller can hang).
func FuzzFramedEnvelope(f *testing.F) {
	mkStream := func(ids ...uint64) []byte {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		for _, id := range ids {
			_ = enc.Encode(replyEnvelope{ID: id, Partial: &PartialKSPResponse{
				Results: [][]PathMsg{{{Vertices: []graph.VertexID{1, 2}, Dist: 1.5}}},
			}})
		}
		return buf.Bytes()
	}
	f.Add(mkStream(1, 2, 3), uint8(3), uint16(0))
	f.Add(mkStream(3, 2, 1), uint8(3), uint16(7))  // reordered, truncated tail
	f.Add(mkStream(2, 2, 1), uint8(2), uint16(0))  // duplicate ID
	f.Add(mkStream(9, 0, 12), uint8(4), uint16(3)) // unknown and zero IDs
	f.Add([]byte{0x00, 0x01, 0xff, 0xfe}, uint8(2), uint16(0))
	f.Fuzz(func(t *testing.T, stream []byte, nReg uint8, cut uint16) {
		if len(stream) > 0 {
			stream = stream[:len(stream)-int(cut)%(len(stream)+1)]
		}
		pending := newPendingCalls()
		n := int(nReg % 32)
		chans := make(map[uint64]chan callResult, n)
		for id := 1; id <= n; id++ {
			ch, err := pending.register(uint64(id))
			if err != nil {
				t.Fatalf("register %d: %v", id, err)
			}
			chans[uint64(id)] = ch
		}
		// The reader must consume the stream without panicking and return
		// the terminating decode error.
		if err := readReplies(gob.NewDecoder(bytes.NewReader(stream)), pending); err == nil {
			t.Fatalf("readReplies terminated without an error on a finite stream")
		}
		pending.failAll(errors.New("connection lost"))
		for id, ch := range chans {
			select {
			case res := <-ch:
				if res.err == nil && res.rep.ID != id {
					t.Fatalf("call %d received reply with ID %d", id, res.rep.ID)
				}
			default:
				t.Fatalf("call %d has no outcome after teardown", id)
			}
			select {
			case <-ch:
				t.Fatalf("call %d delivered more than once", id)
			default:
			}
		}
	})
}

// FuzzEnvelopeDecode feeds arbitrary bytes to the wire decoder: it must
// reject or accept them without panicking, and anything it accepts must
// re-encode and decode to the same message (no lossy acceptance).
func FuzzEnvelopeDecode(f *testing.F) {
	for _, env := range []envelope{
		{Kind: "partial", Partial: &PartialKSPRequest{K: 2, Pairs: []core.PairRequest{{A: 1, B: 2}}}},
		{Kind: "partial", Partial: &PartialKSPRequest{K: 1, Epoch: 7, HasEpoch: true}},
		{Kind: "update", Update: &WeightUpdateRequest{Updates: []graph.WeightUpdate{{Edge: 3, NewWeight: 1.5}}}},
		{Kind: "stats", Stats: &StatsRequest{}},
		{Kind: "shutdown", Shutdown: true},
	} {
		data, err := marshalEnvelope(env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := unmarshalEnvelope(data)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		data2, err := marshalEnvelope(env)
		if err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v (%+v)", err, env)
		}
		env2, err := unmarshalEnvelope(data2)
		if err != nil {
			t.Fatalf("re-encoded envelope failed to decode: %v", err)
		}
		if !envelopesEqual(env, env2) {
			t.Fatalf("lossy decode:\n first  %+v\n second %+v", env, env2)
		}
	})
}
