package cluster

import (
	"math"
	"math/rand"
	"testing"

	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/testutil"
	"kspdg/internal/workload"
)

func buildCluster(t testing.TB, g *graph.Graph, z, xi, workers int) (*dtlp.Index, *Cluster) {
	t.Helper()
	p, err := partition.PartitionGraph(g, z)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	x, err := dtlp.Build(p, dtlp.Config{Xi: xi})
	if err != nil {
		t.Fatalf("dtlp: %v", err)
	}
	c, err := New(x, Config{NumWorkers: workers})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	return x, c
}

func TestNewValidation(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, _ := partition.PartitionGraph(g, 6)
	x, _ := dtlp.Build(p, dtlp.Config{Xi: 1})
	if _, err := New(x, Config{NumWorkers: 0}); err == nil {
		t.Errorf("zero workers should be rejected")
	}
}

func TestAssignmentCoversAllSubgraphs(t *testing.T) {
	g := testutil.GridGraph(10, 10, 1)
	_, c := buildCluster(t, g, 12, 1, 4)
	counts := make([]int, c.NumWorkers())
	for id := 0; id < c.Index().Partition().NumSubgraphs(); id++ {
		w := c.AssignedWorker(partition.SubgraphID(id))
		if w < 0 || w >= c.NumWorkers() {
			t.Fatalf("subgraph %d assigned to invalid worker %d", id, w)
		}
		if !c.Worker(w).Owns(partition.SubgraphID(id)) {
			t.Errorf("worker %d does not own its assigned subgraph %d", w, id)
		}
		counts[w]++
	}
	// Load balance: no worker should be empty when there are enough
	// subgraphs to go around.
	if c.Index().Partition().NumSubgraphs() >= c.NumWorkers() {
		for w, n := range counts {
			if n == 0 {
				t.Errorf("worker %d owns no subgraphs", w)
			}
		}
	}
}

func TestClusterQueryMatchesOracle(t *testing.T) {
	g := testutil.PaperGraph(t)
	_, c := buildCluster(t, g, 6, 2, 3)
	engine := c.Engine(core.Options{})
	cases := []struct {
		s, t graph.VertexID
		k    int
	}{
		{testutil.V1, testutil.V19, 3},
		{testutil.V4, testutil.V13, 2},
		{testutil.V2, testutil.V17, 4},
	}
	for _, cse := range cases {
		res, err := engine.Query(cse.s, cse.t, cse.k)
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		want := testutil.BruteForceKSP(g, cse.s, cse.t, cse.k)
		if len(res.Paths) != len(want) {
			t.Fatalf("query (%d,%d,%d): got %d paths, want %d", cse.s, cse.t, cse.k, len(res.Paths), len(want))
		}
		for i := range want {
			if math.Abs(res.Paths[i].Dist-want[i].Dist) > 1e-9 {
				t.Errorf("query (%d,%d,%d) path %d dist %g, want %g", cse.s, cse.t, cse.k, i, res.Paths[i].Dist, want[i].Dist)
			}
		}
	}
	st := c.Stats()
	if st.MessagesSent == 0 {
		t.Errorf("expected cluster messages to be accounted")
	}
}

func TestClusterResultsIndependentOfWorkerCount(t *testing.T) {
	g := testutil.GridGraph(8, 8, 1)
	qg := workload.NewQueryGenerator(g.NumVertices(), 5)
	queries := qg.Batch(10)
	var baselineDists [][]float64
	for _, workers := range []int{1, 2, 5} {
		_, c := buildCluster(t, g, 10, 2, workers)
		results, err := c.ProcessBatch(queries, 2, core.Options{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		dists := make([][]float64, len(results))
		for i, r := range results {
			for _, p := range r.Paths {
				dists[i] = append(dists[i], p.Dist)
			}
		}
		if baselineDists == nil {
			baselineDists = dists
			continue
		}
		for i := range dists {
			if len(dists[i]) != len(baselineDists[i]) {
				t.Fatalf("workers=%d query %d: %d paths vs %d", workers, i, len(dists[i]), len(baselineDists[i]))
			}
			for j := range dists[i] {
				if math.Abs(dists[i][j]-baselineDists[i][j]) > 1e-9 {
					t.Errorf("workers=%d query %d path %d dist %g vs %g", workers, i, j, dists[i][j], baselineDists[i][j])
				}
			}
		}
	}
}

func TestClusterApplyUpdates(t *testing.T) {
	g := testutil.PaperGraph(t)
	_, c := buildCluster(t, g, 6, 2, 2)
	rng := rand.New(rand.NewSource(1))
	batch := testutil.PerturbWeights(t, g, rng, 0.5, 0.4, 0.1)
	if err := c.ApplyUpdates(batch); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.UpdatesRouted != int64(len(batch)) {
		t.Errorf("updates routed = %d, want %d", st.UpdatesRouted, len(batch))
	}
	total := 0
	for _, n := range st.WorkerUpdates {
		total += n
	}
	if total != len(batch) {
		t.Errorf("worker update counters sum to %d, want %d", total, len(batch))
	}
	// Queries remain exact after distributed maintenance.
	engine := c.Engine(core.Options{})
	res, err := engine.Query(testutil.V1, testutil.V19, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := testutil.BruteForceKSP(g, testutil.V1, testutil.V19, 2)
	if len(res.Paths) != len(want) || math.Abs(res.Paths[0].Dist-want[0].Dist) > 1e-9 {
		t.Errorf("post-update query mismatch: %v vs %v", res.Paths, want)
	}
	if err := c.ApplyUpdates(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

func TestClusterStatsBytes(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, _ := partition.PartitionGraph(g, 6)
	x, _ := dtlp.Build(p, dtlp.Config{Xi: 1})
	c, err := New(x, Config{NumWorkers: 2, MeasureBytes: true})
	if err != nil {
		t.Fatal(err)
	}
	engine := c.Engine(core.Options{})
	if _, err := engine.Query(testutil.V1, testutil.V19, 2); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.BytesSent == 0 {
		t.Errorf("MeasureBytes should account message sizes")
	}
	if len(st.WorkerRequests) != 2 || len(st.WorkerSubgraphs) != 2 {
		t.Errorf("per-worker stats missing: %+v", st)
	}
}

func TestProcessBatchLoadBalance(t *testing.T) {
	ds, err := workload.BuiltinDataset("NY", workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	_, c := buildCluster(t, g, 20, 1, 4)
	queries := workload.NewQueryGenerator(g.NumVertices(), 77).Batch(24)
	if _, err := c.ProcessBatch(queries, 2, core.Options{}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.QueriesHandled != 24 {
		t.Errorf("queries handled = %d, want 24", st.QueriesHandled)
	}
	busy := 0
	for _, r := range st.WorkerRequests {
		if r > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("expected at least two workers to serve requests, got %d busy", busy)
	}
}

func TestRemoteWorkerRoundTrip(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dtlp.Build(p, dtlp.Config{Xi: 1}); err != nil {
		t.Fatal(err)
	}
	// One worker owning all subgraphs, served over TCP.
	var owned []partition.SubgraphID
	for i := 0; i < p.NumSubgraphs(); i++ {
		owned = append(owned, partition.SubgraphID(i))
	}
	srv, err := Serve("127.0.0.1:0", NewWorker(0, p, owned))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rw, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()

	boundary := p.BoundaryVertices()
	if len(boundary) < 2 {
		t.Skip("need boundary vertices")
	}
	pairs := []core.PairRequest{{A: boundary[0], B: boundary[1]}}
	resp, err := rw.PartialKSP(PartialKSPRequest{Pairs: pairs, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.NumPairs() != 1 {
		t.Fatalf("expected one result slot, got %d", resp.NumPairs())
	}

	if _, err := rw.ApplyUpdates([]graph.WeightUpdate{{Edge: 0, NewWeight: 5}}); err != nil {
		t.Fatal(err)
	}
	stats, err := rw.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.RequestsServed != 1 || stats.UpdatesReceived != 1 {
		t.Errorf("remote stats = %+v", stats)
	}
	if err := rw.Shutdown(); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func TestRemoteProviderQueryMatchesOracle(t *testing.T) {
	g := testutil.PaperGraph(t)
	for _, tc := range []struct {
		name string
		opts ClientOptions
	}{
		{"pool1", ClientOptions{}},
		{"pool3", ClientOptions{PoolSize: 3}},
		{"serialized", ClientOptions{Serialize: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			x, remotes, cleanup := remoteOracleDeployment(t, tc.opts)
			defer cleanup()
			engine := core.NewEngine(x, NewRemoteProvider(remotes), core.Options{})
			res, err := engine.Query(testutil.V1, testutil.V19, 3)
			if err != nil {
				t.Fatal(err)
			}
			want := testutil.BruteForceKSP(g, testutil.V1, testutil.V19, 3)
			if len(res.Paths) != len(want) {
				t.Fatalf("remote query returned %d paths, want %d", len(res.Paths), len(want))
			}
			for i := range want {
				if math.Abs(res.Paths[i].Dist-want[i].Dist) > 1e-9 {
					t.Errorf("remote path %d dist %g, want %g", i, res.Paths[i].Dist, want[i].Dist)
				}
			}
		})
	}
}

// TestClusterReplicatedMatchesSingleCopy runs the same queries through a
// replicated in-process cluster and an unreplicated one: replication changes
// where subgraph copies live (and multiplies the update routing), never the
// answers.
func TestClusterReplicatedMatchesSingleCopy(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := dtlp.Build(p, dtlp.Config{Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	single, err := New(x1, Config{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	p2, _ := partition.PartitionGraph(g, 6)
	x2, err := dtlp.Build(p2, dtlp.Config{Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	replicated, err := New(x2, Config{NumWorkers: 3, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer replicated.Close()

	table := replicated.ReplicaTable()
	if table.Factor() != 2 {
		t.Fatalf("replica factor %d, want 2", table.Factor())
	}
	for sg := 0; sg < p2.NumSubgraphs(); sg++ {
		id := partition.SubgraphID(sg)
		for _, w := range table.Replicas(id) {
			if !replicated.Worker(w).Owns(id) {
				t.Errorf("worker %d does not own replicated subgraph %d", w, sg)
			}
		}
	}

	e1 := single.Engine(core.Options{})
	e2 := replicated.Engine(core.Options{})
	rng := rand.New(rand.NewSource(7))
	for q := 0; q < 6; q++ {
		s := graph.VertexID(rng.Intn(g.NumVertices()))
		d := graph.VertexID(rng.Intn(g.NumVertices()))
		if s == d {
			continue
		}
		r1, err1 := e1.Query(s, d, 3)
		r2, err2 := e2.Query(s, d, 3)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("query(%d,%d): errs %v vs %v", s, d, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if len(r1.Paths) != len(r2.Paths) {
			t.Fatalf("query(%d,%d): %d vs %d paths", s, d, len(r1.Paths), len(r2.Paths))
		}
		for i := range r1.Paths {
			if math.Abs(r1.Paths[i].Dist-r2.Paths[i].Dist) > 1e-9 {
				t.Fatalf("query(%d,%d) path %d: %g vs %g", s, d, i, r1.Paths[i].Dist, r2.Paths[i].Dist)
			}
		}
	}

	// Updates are routed to every replica.
	batch := []graph.WeightUpdate{{Edge: 0, NewWeight: g.Weight(0) * 1.5}}
	if err := replicated.ApplyUpdates(batch); err != nil {
		t.Fatal(err)
	}
	loc := p2.Locate(0)
	for _, w := range table.Replicas(loc.Subgraph) {
		ws := replicated.Worker(w).HandleStats(StatsRequest{})
		if ws.UpdatesReceived == 0 {
			t.Errorf("replica worker %d of subgraph %d received no updates", w, loc.Subgraph)
		}
	}
	if st := replicated.Stats(); st.ReplicaFactor != 2 {
		t.Errorf("stats replica factor %d, want 2", st.ReplicaFactor)
	}
}
