package cluster

import (
	"reflect"
	"testing"

	"kspdg/internal/partition"
	"kspdg/internal/testutil"
)

func paperPartition(t *testing.T) *partition.Partition {
	t.Helper()
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAssignReplicasSingleCopy(t *testing.T) {
	p := paperPartition(t)
	rt, err := AssignReplicas(p, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Factor() != 1 {
		t.Fatalf("factor %d, want 1", rt.Factor())
	}
	covered := 0
	for sg := 0; sg < p.NumSubgraphs(); sg++ {
		ws := rt.Replicas(partition.SubgraphID(sg))
		if len(ws) != 1 {
			t.Fatalf("subgraph %d hosted by %v, want exactly one worker", sg, ws)
		}
		covered++
	}
	// OwnedBy partitions the subgraphs with no overlap at factor 1.
	seen := make(map[partition.SubgraphID]int)
	for w := 0; w < 3; w++ {
		for _, sg := range rt.OwnedBy(w) {
			seen[sg]++
		}
	}
	if len(seen) != covered {
		t.Fatalf("OwnedBy covers %d subgraphs, want %d", len(seen), covered)
	}
	for sg, n := range seen {
		if n != 1 {
			t.Errorf("subgraph %d owned by %d workers at factor 1", sg, n)
		}
	}
}

func TestAssignReplicasFactorTwo(t *testing.T) {
	p := paperPartition(t)
	rt, err := AssignReplicas(p, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for sg := 0; sg < p.NumSubgraphs(); sg++ {
		id := partition.SubgraphID(sg)
		ws := rt.Replicas(id)
		if len(ws) != 2 {
			t.Fatalf("subgraph %d hosted by %v, want two workers", sg, ws)
		}
		if ws[0] == ws[1] {
			t.Fatalf("subgraph %d replicated onto the same worker %d twice", sg, ws[0])
		}
		if rt.Primary(id) != ws[0] {
			t.Fatalf("primary %d != first replica %d", rt.Primary(id), ws[0])
		}
	}
	// Each worker's owned set must include every subgraph it appears for.
	for w := 0; w < 3; w++ {
		owned := make(map[partition.SubgraphID]bool)
		for _, sg := range rt.OwnedBy(w) {
			owned[sg] = true
		}
		for sg := 0; sg < p.NumSubgraphs(); sg++ {
			id := partition.SubgraphID(sg)
			if containsWorker(rt.Replicas(id), w) != owned[id] {
				t.Errorf("worker %d ownership of subgraph %d inconsistent with table", w, sg)
			}
		}
	}
}

func TestAssignReplicasFactorCappedAtWorkers(t *testing.T) {
	p := paperPartition(t)
	rt, err := AssignReplicas(p, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Factor() != 2 {
		t.Fatalf("factor %d, want capped at 2", rt.Factor())
	}
	for sg := 0; sg < p.NumSubgraphs(); sg++ {
		if ws := rt.Replicas(partition.SubgraphID(sg)); len(ws) != 2 {
			t.Fatalf("subgraph %d hosted by %v, want both workers", sg, ws)
		}
	}
}

func TestAssignReplicasDeterministic(t *testing.T) {
	p := paperPartition(t)
	a, err := AssignReplicas(p, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AssignReplicas(p, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.replicas, b.replicas) {
		t.Fatalf("replica assignment is not deterministic:\n%v\n%v", a.replicas, b.replicas)
	}
}

func TestAssignReplicasRejectsZeroWorkers(t *testing.T) {
	p := paperPartition(t)
	if _, err := AssignReplicas(p, 0, 1); err == nil {
		t.Fatal("expected an error for 0 workers")
	}
}
