package cluster

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestMembershipEscalation(t *testing.T) {
	m := NewMembership(2, MembershipOptions{SuspectAfter: 2, DownAfter: 4})
	defer m.Stop()
	if got := m.State(0); got != StateUp {
		t.Fatalf("initial state %v, want up", got)
	}
	m.ReportFailure(0)
	if got := m.State(0); got != StateUp {
		t.Fatalf("after 1 failure: %v, want up (SuspectAfter=2)", got)
	}
	m.ReportFailure(0)
	if got := m.State(0); got != StateSuspect {
		t.Fatalf("after 2 failures: %v, want suspect", got)
	}
	m.ReportFailure(0)
	m.ReportFailure(0)
	if got := m.State(0); got != StateDown {
		t.Fatalf("after 4 failures: %v, want down", got)
	}
	// Worker 1's counters are independent.
	if got := m.State(1); got != StateUp {
		t.Fatalf("worker 1 state %v, want up", got)
	}
	// One success fully restores the worker.
	m.ReportSuccess(0)
	if got := m.State(0); got != StateUp {
		t.Fatalf("after success: %v, want up", got)
	}
	// The streak restarts from zero after a success.
	m.ReportFailure(0)
	if got := m.State(0); got != StateUp {
		t.Fatalf("1 failure after recovery: %v, want up", got)
	}
}

func TestMembershipPingLoopDrivesStates(t *testing.T) {
	var healthy atomic.Bool
	m := NewMembership(2, MembershipOptions{
		SuspectAfter: 1,
		DownAfter:    2,
		PingEvery:    2 * time.Millisecond,
		Ping: func(w int) error {
			if w == 1 && !healthy.Load() {
				return errors.New("injected ping failure")
			}
			return nil
		},
	})
	defer m.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for m.State(1) != StateDown {
		if time.Now().After(deadline) {
			t.Fatalf("worker 1 never went down; states %v", m.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
	if got := m.State(0); got != StateUp {
		t.Fatalf("worker 0 state %v, want up", got)
	}

	// The worker rejoins: the next successful probe restores it.
	healthy.Store(true)
	for m.State(1) != StateUp {
		if time.Now().After(deadline) {
			t.Fatalf("worker 1 never rejoined; states %v", m.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMembershipStopIsIdempotent(t *testing.T) {
	m := NewMembership(1, MembershipOptions{PingEvery: time.Millisecond, Ping: func(int) error { return nil }})
	m.Stop()
	m.Stop()
	mNoLoop := NewMembership(1, MembershipOptions{})
	mNoLoop.Stop()
}

func TestWorkerStateString(t *testing.T) {
	for state, want := range map[WorkerState]string{StateUp: "up", StateSuspect: "suspect", StateDown: "down"} {
		if got := state.String(); got != want {
			t.Errorf("state %d: %q, want %q", state, got, want)
		}
	}
}
