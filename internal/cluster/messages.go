// Package cluster provides the distributed runtime KSP-DG is deployed on in
// Section 6.1 of the paper.  The paper uses Apache Storm with an
// EntranceSpout (master: graph ingestion, weight updates, query admission),
// SubgraphBolts (workers owning subgraphs and their DTLP first-level
// indexes), and QueryBolts (workers holding a replica of the skeleton graph
// and driving the filter/refine iterations of their assigned queries).
//
// This package reproduces that topology with two interchangeable transports:
//
//   - an in-process cluster (Cluster) where workers are goroutine-backed
//     nodes exchanging the same messages through direct calls, used by the
//     benchmarks to study scaling with the number of workers; and
//   - a TCP transport (Serve / RemoteWorker) with gob-encoded messages, used
//     by cmd/kspd to run real worker processes on a network.
//
// Both transports serve the refine step through core.PartialProvider, so the
// KSP-DG engine is oblivious to where the subgraphs live.
package cluster

import (
	"bytes"
	"encoding/gob"

	"kspdg/internal/core"
	"kspdg/internal/graph"
	"kspdg/internal/trace"
)

// PathMsg is the wire representation of a path.
type PathMsg struct {
	Vertices []graph.VertexID
	Dist     float64
}

func toPathMsg(p graph.Path) PathMsg {
	return PathMsg{Vertices: p.Vertices, Dist: p.Dist}
}

func fromPathMsg(m PathMsg) graph.Path {
	return graph.Path{Vertices: m.Vertices, Dist: m.Dist}
}

// PartialKSPRequest asks a worker for partial k shortest paths for the pairs
// it owns subgraphs for.
type PartialKSPRequest struct {
	Pairs []core.PairRequest
	K     int
	// Epoch pins the request to an index epoch when HasEpoch is true.
	// Workers that can resolve the epoch (in-process workers sharing the
	// master's index) answer from that epoch's weight snapshots, giving the
	// querying engine snapshot isolation across the whole refine step.
	// Workers that cannot (remote processes, or an evicted epoch) serve
	// their latest applied weights instead, matching the eventually
	// consistent behaviour of the paper's Storm deployment.
	Epoch    uint64
	HasEpoch bool
	// TraceID/SpanID carry the master-side trace identity so the worker's
	// execution spans stitch into the same trace (see internal/trace).  A
	// zero TraceID means the request is untraced and the worker records
	// nothing; legacy peers never set the fields (gob tolerates additions),
	// which decodes as exactly that.
	TraceID uint64
	SpanID  uint64
}

// FlatPaths is the copy-free wire encoding of a response's paths: every
// path's vertex sequence is appended to one Verts array, described by the
// parallel per-path Lens and Dists arrays, with Counts giving the number of
// paths per request pair.  A flat response decodes into paths that subslice
// the single gob-allocated Verts array — instead of one slice header and one
// vertex array per path as in the legacy [][]PathMsg layout — which removes
// the dominant per-path allocations from the master's refine hot path.
type FlatPaths struct {
	Verts  []graph.VertexID
	Lens   []int32
	Dists  []float64
	Counts []int32
}

// appendPath encodes one path onto the flat arrays.
func (f *FlatPaths) appendPath(p graph.Path) {
	f.Verts = append(f.Verts, p.Vertices...)
	f.Lens = append(f.Lens, int32(len(p.Vertices)))
	f.Dists = append(f.Dists, p.Dist)
}

// PartialKSPResponse carries the partial paths a worker computed, keyed by
// pair index into the request (to keep gob encoding simple and compact).
type PartialKSPResponse struct {
	// Results[i] holds the paths for request pair i (possibly empty).  Legacy
	// encoding: current workers send Flat instead, but decoders accept both,
	// so responses from older peers (and hand-built test fixtures) still work.
	Results [][]PathMsg
	// Flat is the flat encoding of the same per-pair paths; when non-nil it
	// takes precedence over Results.  gob omits the field entirely for legacy
	// senders, decoding as nil — the safe fallback.
	Flat *FlatPaths
	// ServedEpoch reports that the request's epoch pin was honoured: every
	// path was computed from the frozen weights of the requested epoch.
	// False when the worker cannot resolve epochs (standalone processes),
	// when the epoch was evicted from the retention window, or when the
	// request carried no pin.  Consumers must not treat an unpinned answer
	// as immutable (see rpcbatch's epoch memo); legacy workers never set
	// the field, which decodes as false — the safe default.
	ServedEpoch bool
	// Spans are the worker-side execution spans recorded when the request
	// carried a nonzero TraceID: one aggregate span for the whole request
	// plus bounded per-pair Yen spans, with durations relative to request
	// receipt.  The master grafts them under its RPC span.  Legacy workers
	// leave the field nil.
	Spans []trace.SpanMsg
}

// NumPairs returns the number of request pair slots the response answers.
func (r *PartialKSPResponse) NumPairs() int {
	if r.Flat != nil {
		return len(r.Flat.Counts)
	}
	return len(r.Results)
}

// DecodePaths expands the response into per-pair path lists, accepting either
// encoding.  A flat response decodes with two allocations total (the per-pair
// slice-of-slices and one shared path-header array); every decoded path's
// vertex slice aliases the response's Verts array, so callers must treat the
// paths as immutable.  Malformed flat responses (lengths that overrun the
// arrays) decode to as many well-formed leading pairs as the data supports —
// the same shape a short legacy Results array produces.
func (r *PartialKSPResponse) DecodePaths() [][]graph.Path {
	f := r.Flat
	if f == nil {
		out := make([][]graph.Path, len(r.Results))
		total := 0
		for _, msgs := range r.Results {
			total += len(msgs)
		}
		hdrs := make([]graph.Path, 0, total)
		for i, msgs := range r.Results {
			start := len(hdrs)
			for _, m := range msgs {
				hdrs = append(hdrs, fromPathMsg(m))
			}
			out[i] = hdrs[start:len(hdrs):len(hdrs)]
		}
		return out
	}
	out := make([][]graph.Path, len(f.Counts))
	hdrs := make([]graph.Path, 0, len(f.Lens))
	voff := 0
	for i, l := range f.Lens {
		n := int(l)
		if n < 0 || voff+n > len(f.Verts) || i >= len(f.Dists) {
			break
		}
		hdrs = append(hdrs, graph.Path{Vertices: f.Verts[voff : voff+n : voff+n], Dist: f.Dists[i]})
		voff += n
	}
	poff := 0
	for i, c := range f.Counts {
		n := int(c)
		if n < 0 || poff+n > len(hdrs) {
			break
		}
		out[i] = hdrs[poff : poff+n : poff+n]
		poff += n
	}
	return out
}

// WeightUpdateRequest delivers edge weight updates to the worker owning the
// affected subgraphs.  Edge ids are global; the worker translates them.
type WeightUpdateRequest struct {
	Updates []graph.WeightUpdate
}

// WeightUpdateResponse acknowledges maintenance work.
type WeightUpdateResponse struct {
	PathsTouched int
	// Err reports a failure applying the batch on the worker (standalone
	// workers apply batches to their own partition copy).  Masters must
	// treat a non-empty Err as a failed broadcast: the worker's weights can
	// no longer be assumed to match the master's.
	Err string
}

// TopologyUpdateRequest delivers a batch of topology mutations (edge and
// vertex inserts and deletes) to a worker.  Unlike weight updates, which are
// routed only to the workers owning the affected subgraphs, topology batches
// are broadcast to every worker: a batch can reshape the partition (move
// boundary status, open subgraphs), and every worker must route future pairs
// against the same structure.
type TopologyUpdateRequest struct {
	Update graph.TopologyUpdate
	// NumWorkers and Factor let a standalone worker derive ownership of the
	// subgraphs this batch opens without coordination: new subgraph s is
	// hosted by workers (s+r) mod NumWorkers for replica ranks r < Factor.
	// A zero NumWorkers (legacy master) assigns nothing new.
	NumWorkers int
	Factor     int
}

// TopologyUpdateResponse acknowledges a topology batch.
type TopologyUpdateResponse struct {
	// InsertedEdges are the global ids the worker assigned to the batch's
	// inserts, in order.  The id assignment is deterministic (appended past
	// the current edge count), so every worker and the master agree on it;
	// masters can cross-check the echo to detect divergence.
	InsertedEdges []graph.EdgeID
	// DeletedEdges are the sorted global ids of all edges the batch removed,
	// including edges removed because an endpoint vertex was deleted.
	DeletedEdges []graph.EdgeID
	// Err reports a failure applying the batch on a standalone worker; the
	// master must treat it as a failed broadcast (the worker's structure can
	// no longer be assumed to match the master's).
	Err string
}

// StatsRequest asks a worker for its load counters.
type StatsRequest struct{}

// StatsResponse reports a worker's load counters.
type StatsResponse struct {
	Worker          int
	Subgraphs       int
	PairsServed     int
	RequestsServed  int
	UpdatesReceived int
	// TopologyBatches counts topology broadcasts received.  Legacy workers
	// never set the field; it decodes as zero.
	TopologyBatches int
}

// envelope is the tagged union used on the TCP wire.
//
// ID is the request tag of the multiplexed transport.  A zero ID marks a
// legacy lock-step request: the server answers it inline and in order, which
// keeps the pre-multiplexing framing decodable by both sides (gob tolerates
// the added field, and old clients never set it).  A nonzero ID lets the
// server process the request concurrently and reply out of order; the client
// demultiplexes replies by matching IDs.
type envelope struct {
	Kind     string
	ID       uint64
	Partial  *PartialKSPRequest
	Update   *WeightUpdateRequest
	Topology *TopologyUpdateRequest
	Stats    *StatsRequest
	Shutdown bool
	// Ping is a health-check probe: the server answers with Pong and does no
	// work.  Old servers decode the field (gob tolerates additions) but treat
	// the envelope as empty and reply with an error, which the failure
	// detector counts the same as an unreachable worker — safe either way.
	Ping bool
}

type replyEnvelope struct {
	// ID echoes the request's ID (zero for legacy lock-step requests).
	ID       uint64
	Err      string
	Partial  *PartialKSPResponse
	Update   *WeightUpdateResponse
	Topology *TopologyUpdateResponse
	Stats    *StatsResponse
	Pong     bool
}

func init() {
	gob.Register(envelope{})
	gob.Register(replyEnvelope{})
}

// marshalEnvelope gob-encodes a request envelope to bytes (the same encoding
// the TCP transport streams over a connection).
func marshalEnvelope(env envelope) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// unmarshalEnvelope decodes a request envelope from bytes.
func unmarshalEnvelope(data []byte) (envelope, error) {
	var env envelope
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&env)
	return env, err
}

// marshalReply and unmarshalReply are the response-side counterparts.
func marshalReply(rep replyEnvelope) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rep); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func unmarshalReply(data []byte) (replyEnvelope, error) {
	var rep replyEnvelope
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rep)
	return rep, err
}
