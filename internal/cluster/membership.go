package cluster

import (
	"sync"
	"time"
)

// WorkerState is the membership health state of one worker.
type WorkerState int32

const (
	// StateUp: the worker answered its most recent probe or request.
	StateUp WorkerState = iota
	// StateSuspect: enough consecutive failures to route new traffic away,
	// but recent enough success that the worker may just be slow.
	StateSuspect
	// StateDown: the failure streak crossed the down threshold; the worker
	// is only reconsidered when a probe or a failover attempt succeeds.
	StateDown
)

// String returns the state's lower-case name as exposed on /metrics
// (kspd_workers{state="..."}) and in healthz worker counts.
func (s WorkerState) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateSuspect:
		return "suspect"
	default:
		return "down"
	}
}

// MembershipOptions tunes the failure detector.
type MembershipOptions struct {
	// SuspectAfter is the consecutive-failure count at which a worker is
	// suspected (routing prefers other replicas).  Zero means 1.
	SuspectAfter int
	// DownAfter is the consecutive-failure count at which a worker is
	// declared down.  Zero means 3.
	DownAfter int
	// PingEvery enables the background health-check loop: every interval each
	// worker is probed through Ping and the outcome feeds the same suspicion
	// counters the data path feeds.  Zero disables the loop (the data path
	// alone then drives the detector).
	PingEvery time.Duration
	// Ping probes one worker.  Required when PingEvery is set.
	Ping func(worker int) error
}

func (o MembershipOptions) withDefaults() MembershipOptions {
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 1
	}
	if o.DownAfter < o.SuspectAfter {
		o.DownAfter = o.SuspectAfter + 2
	}
	return o
}

// Membership is a lightweight phi-less failure detector over a fixed worker
// set: consecutive failures (from health-check pings and from the data path)
// escalate a worker Up → Suspect → Down, and any success instantly restores
// it to Up — a rejoining worker is routed to again as soon as it answers one
// probe.  All methods are safe for concurrent use.
type Membership struct {
	opts MembershipOptions

	mu       sync.Mutex
	failures []int
	states   []WorkerState
	probing  []bool

	stopOnce sync.Once
	stop     chan struct{}
	loop     sync.WaitGroup
}

// NewMembership creates a detector for n workers, all initially Up, and
// starts the background ping loop when MembershipOptions.PingEvery is set.
func NewMembership(n int, opts MembershipOptions) *Membership {
	m := &Membership{
		opts:     opts.withDefaults(),
		failures: make([]int, n),
		states:   make([]WorkerState, n),
		probing:  make([]bool, n),
		stop:     make(chan struct{}),
	}
	if m.opts.PingEvery > 0 && m.opts.Ping != nil {
		m.loop.Add(1)
		go m.pingLoop()
	}
	return m
}

// pingLoop probes every worker each interval.  Probes run one goroutine per
// worker with an in-flight guard, so a worker whose probe blocks (e.g. a dial
// timing out) delays neither the other workers nor the next tick.
func (m *Membership) pingLoop() {
	defer m.loop.Done()
	ticker := time.NewTicker(m.opts.PingEvery)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		}
		m.mu.Lock()
		n := len(m.states)
		for w := 0; w < n; w++ {
			if m.probing[w] {
				continue
			}
			m.probing[w] = true
			m.loop.Add(1)
			go func(w int) {
				defer m.loop.Done()
				err := m.opts.Ping(w)
				m.mu.Lock()
				m.probing[w] = false
				m.mu.Unlock()
				if err != nil {
					m.ReportFailure(w)
				} else {
					m.ReportSuccess(w)
				}
			}(w)
		}
		m.mu.Unlock()
	}
}

// Stop terminates the background ping loop and waits for in-flight probes.
// It is idempotent; a Membership without a ping loop needs no Stop.
func (m *Membership) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.loop.Wait()
}

// ReportSuccess records a successful round-trip with worker w: the failure
// streak clears and the worker is Up again regardless of its previous state.
func (m *Membership) ReportSuccess(w int) {
	m.mu.Lock()
	m.failures[w] = 0
	m.states[w] = StateUp
	m.mu.Unlock()
}

// ReportFailure records a failed probe or request against worker w and
// returns the resulting state.
func (m *Membership) ReportFailure(w int) WorkerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failures[w]++
	switch {
	case m.failures[w] >= m.opts.DownAfter:
		m.states[w] = StateDown
	case m.failures[w] >= m.opts.SuspectAfter:
		m.states[w] = StateSuspect
	}
	return m.states[w]
}

// State returns worker w's current health state.
func (m *Membership) State(w int) WorkerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.states[w]
}

// Counts returns the number of workers currently in each state — the shape
// an observability endpoint exports (workers{state="up"} etc.) without
// enumerating workers per scrape.
func (m *Membership) Counts() (up, suspect, down int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, st := range m.states {
		switch st {
		case StateUp:
			up++
		case StateSuspect:
			suspect++
		default:
			down++
		}
	}
	return up, suspect, down
}

// Snapshot returns every worker's state, indexed by worker.
func (m *Membership) Snapshot() []WorkerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WorkerState, len(m.states))
	copy(out, m.states)
	return out
}
