package cluster

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/workload"
)

// Config controls the in-process cluster.
type Config struct {
	// NumWorkers is the number of simulated worker nodes (SubgraphBolt
	// hosts).  It must be at least 1.
	NumWorkers int
	// QueryBolts is the number of concurrent query processors used by
	// ProcessBatch.  Zero means NumWorkers.
	QueryBolts int
	// MeasureBytes enables gob-encoding of every message to account for the
	// bytes that would cross the network.  It adds CPU cost, so benchmarks
	// that only need timing leave it off.
	MeasureBytes bool
}

// Stats aggregates the communication and load counters of a cluster run.
type Stats struct {
	Workers         int
	MessagesSent    int64
	BytesSent       int64
	QueriesHandled  int64
	UpdatesRouted   int64
	WorkerRequests  []int // per-worker partial-KSP requests served
	WorkerPairs     []int // per-worker pairs served
	WorkerSubgraphs []int // per-worker owned subgraphs
	WorkerUpdates   []int // per-worker weight updates received
}

// Cluster is the in-process master-worker deployment: the master holds the
// DTLP index (skeleton graph) and the full graph, while the subgraphs are
// assigned to workers that serve the refine step.
type Cluster struct {
	cfg   Config
	index *dtlp.Index
	part  *partition.Partition

	workers []*Worker
	assign  map[partition.SubgraphID]int

	messages atomic.Int64
	bytes    atomic.Int64
	queries  atomic.Int64
	updates  atomic.Int64
}

// New builds an in-process cluster over an existing DTLP index.  Subgraphs
// are assigned to workers by a greedy least-loaded policy on vertex counts,
// mirroring the "allocated to different workers on a many-to-one basis based
// on their load" strategy of Section 5.2.
func New(index *dtlp.Index, cfg Config) (*Cluster, error) {
	if cfg.NumWorkers < 1 {
		return nil, fmt.Errorf("cluster: NumWorkers must be >= 1, got %d", cfg.NumWorkers)
	}
	if cfg.QueryBolts <= 0 {
		cfg.QueryBolts = cfg.NumWorkers
	}
	part := index.Partition()
	c := &Cluster{
		cfg:    cfg,
		index:  index,
		part:   part,
		assign: make(map[partition.SubgraphID]int, part.NumSubgraphs()),
	}

	// Least-loaded assignment: biggest subgraphs first.
	type sgLoad struct {
		id   partition.SubgraphID
		size int
	}
	loads := make([]sgLoad, part.NumSubgraphs())
	for i := range loads {
		loads[i] = sgLoad{id: partition.SubgraphID(i), size: part.Subgraph(partition.SubgraphID(i)).NumVertices()}
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].size != loads[j].size {
			return loads[i].size > loads[j].size
		}
		return loads[i].id < loads[j].id
	})
	workerLoad := make([]int, cfg.NumWorkers)
	owned := make([][]partition.SubgraphID, cfg.NumWorkers)
	for _, l := range loads {
		best := 0
		for w := 1; w < cfg.NumWorkers; w++ {
			if workerLoad[w] < workerLoad[best] {
				best = w
			}
		}
		workerLoad[best] += l.size
		owned[best] = append(owned[best], l.id)
		c.assign[l.id] = best
	}
	for w := 0; w < cfg.NumWorkers; w++ {
		worker := NewWorker(w, part, owned[w])
		// In-process workers share the master's index, so they can serve
		// epoch-pinned requests from the retained views.
		worker.SetViewResolver(index.ViewAt)
		c.workers = append(c.workers, worker)
	}
	return c, nil
}

// NumWorkers returns the number of workers.
func (c *Cluster) NumWorkers() int { return len(c.workers) }

// Worker returns worker i.
func (c *Cluster) Worker(i int) *Worker { return c.workers[i] }

// Index returns the cluster's DTLP index.
func (c *Cluster) Index() *dtlp.Index { return c.index }

// AssignedWorker returns the worker hosting subgraph id.
func (c *Cluster) AssignedWorker(id partition.SubgraphID) int { return c.assign[id] }

// Provider returns a core.PartialProvider that fans partial-KSP requests out
// to the workers owning the relevant subgraphs and merges their replies, i.e.
// the distributed refine step.
func (c *Cluster) Provider() core.PartialProvider { return &distProvider{c: c} }

// Engine builds a KSP-DG engine whose refine step runs on this cluster.
func (c *Cluster) Engine(opts core.Options) *core.Engine {
	return core.NewEngine(c.index, c.Provider(), opts)
}

// ApplyUpdates routes a batch of weight updates to the owning workers (for
// load accounting) and performs the index maintenance.  The caller must have
// already applied the batch to the master's copy of the graph.
func (c *Cluster) ApplyUpdates(batch []graph.WeightUpdate) error {
	if len(batch) == 0 {
		return nil
	}
	perWorker := make(map[int][]graph.WeightUpdate)
	for _, u := range batch {
		loc := c.part.Locate(u.Edge)
		if loc.Subgraph == partition.NoSubgraph {
			return fmt.Errorf("cluster: update for unpartitioned edge %d", u.Edge)
		}
		w := c.assign[loc.Subgraph]
		perWorker[w] = append(perWorker[w], u)
	}
	for w, ups := range perWorker {
		req := WeightUpdateRequest{Updates: ups}
		c.account(req)
		c.workers[w].HandleWeightUpdate(req)
		c.updates.Add(int64(len(ups)))
	}
	return c.index.ApplyUpdates(batch)
}

// ProcessBatch processes a batch of queries with the configured number of
// concurrent QueryBolts and returns per-query results in input order.
func (c *Cluster) ProcessBatch(queries []workload.Query, k int, opts core.Options) ([]core.Result, error) {
	results := make([]core.Result, len(queries))
	errs := make([]error, len(queries))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for b := 0; b < c.cfg.QueryBolts; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			engine := c.Engine(opts)
			for i := range jobs {
				q := queries[i]
				res, err := engine.Query(q.Source, q.Target, k)
				results[i] = res
				errs[i] = err
				c.queries.Add(1)
			}
		}()
	}
	for i := range queries {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Stats returns the aggregated communication and load statistics.
func (c *Cluster) Stats() Stats {
	st := Stats{
		Workers:        len(c.workers),
		MessagesSent:   c.messages.Load(),
		BytesSent:      c.bytes.Load(),
		QueriesHandled: c.queries.Load(),
		UpdatesRouted:  c.updates.Load(),
	}
	for _, w := range c.workers {
		ws := w.HandleStats(StatsRequest{})
		st.WorkerRequests = append(st.WorkerRequests, ws.RequestsServed)
		st.WorkerPairs = append(st.WorkerPairs, ws.PairsServed)
		st.WorkerSubgraphs = append(st.WorkerSubgraphs, ws.Subgraphs)
		st.WorkerUpdates = append(st.WorkerUpdates, ws.UpdatesReceived)
	}
	return st
}

// account records one message and, if enabled, its encoded size.
func (c *Cluster) account(msg interface{}) {
	c.messages.Add(1)
	if !c.cfg.MeasureBytes {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(msg); err == nil {
		c.bytes.Add(int64(buf.Len()))
	}
}

// distProvider implements core.PartialProvider by fanning requests out to the
// workers that own subgraphs containing each pair.
type distProvider struct {
	c *Cluster
}

// PartialKSP implements core.PartialProvider against the workers' live
// weights.
func (dp *distProvider) PartialKSP(pairs []core.PairRequest, k int) (map[core.PairRequest][]graph.Path, error) {
	return dp.partialKSP(pairs, k, PartialKSPRequest{})
}

// PartialKSPView implements core.ViewProvider: requests are pinned to the
// query's epoch so every worker answers from the same frozen weights.
func (dp *distProvider) PartialKSPView(iv *dtlp.IndexView, pairs []core.PairRequest, k int) (map[core.PairRequest][]graph.Path, error) {
	return dp.partialKSP(pairs, k, PartialKSPRequest{Epoch: iv.Epoch(), HasEpoch: true})
}

func (dp *distProvider) partialKSP(pairs []core.PairRequest, k int, template PartialKSPRequest) (map[core.PairRequest][]graph.Path, error) {
	c := dp.c
	out := make(map[core.PairRequest][]graph.Path, len(pairs))
	if len(pairs) == 0 {
		return out, nil
	}
	// Group the pairs by the workers that own at least one subgraph
	// containing both endpoints.
	perWorker := make(map[int][]core.PairRequest)
	for _, pr := range pairs {
		seen := make(map[int]bool)
		for _, id := range c.part.CommonSubgraphs(pr.A, pr.B) {
			w := c.assign[id]
			if !seen[w] {
				seen[w] = true
				perWorker[w] = append(perWorker[w], pr)
			}
		}
	}
	type reply struct {
		pairs []core.PairRequest
		resp  PartialKSPResponse
	}
	replies := make(chan reply, len(perWorker))
	var wg sync.WaitGroup
	for w, prs := range perWorker {
		wg.Add(1)
		go func(w int, prs []core.PairRequest) {
			defer wg.Done()
			req := template
			req.Pairs, req.K = prs, k
			c.account(req)
			resp := c.workers[w].HandlePartialKSP(req)
			c.account(resp)
			replies <- reply{pairs: prs, resp: resp}
		}(w, prs)
	}
	wg.Wait()
	close(replies)

	// Merge the per-worker partial paths, keeping the k shortest per pair.
	merged := make(map[core.PairRequest][]graph.Path)
	for r := range replies {
		for i, pr := range r.pairs {
			for _, msg := range r.resp.Results[i] {
				merged[pr] = append(merged[pr], fromPathMsg(msg))
			}
		}
	}
	for pr, paths := range merged {
		sort.Slice(paths, func(i, j int) bool { return graph.ComparePaths(paths[i], paths[j]) < 0 })
		// Drop duplicates produced by replicated subgraph boundaries.
		var dedup []graph.Path
		seen := make(map[string]bool)
		for _, p := range paths {
			key := graph.PathKey(p)
			if seen[key] {
				continue
			}
			seen[key] = true
			dedup = append(dedup, p)
			if len(dedup) == k {
				break
			}
		}
		out[pr] = dedup
	}
	for _, pr := range pairs {
		if _, ok := out[pr]; !ok {
			out[pr] = nil
		}
	}
	return out, nil
}
