package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"

	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/rpcbatch"
	"kspdg/internal/trace"
	"kspdg/internal/workload"
)

// Config controls the in-process cluster.
type Config struct {
	// NumWorkers is the number of simulated worker nodes (SubgraphBolt
	// hosts).  It must be at least 1.
	NumWorkers int
	// QueryBolts is the number of concurrent query processors used by
	// ProcessBatch.  Zero means NumWorkers.
	QueryBolts int
	// MeasureBytes enables gob-encoding of every message to account for the
	// bytes that would cross the network.  It adds CPU cost, so benchmarks
	// that only need timing leave it off.
	MeasureBytes bool
	// Replicas is the number of workers hosting each subgraph (capped at
	// NumWorkers).  Zero or one means single-copy ownership.  In-process
	// workers do not fail, so replication here models the replicated load
	// profile (each worker carries its share of every rank) rather than
	// failover; the TCP deployment adds the failure handling on top (see
	// ReplicatedRemoteProvider).
	Replicas int
	// Batch tunes the cross-query coalescing of partial-KSP requests (see
	// rpcbatch.Options).  Zero values use the rpcbatch defaults.
	Batch rpcbatch.Options
	// Parallelism is each worker's partial-KSP executor width: the number of
	// goroutines one request's pairs (and heavy pairs' per-subgraph
	// searches) fan out across.  Zero means GOMAXPROCS; 1 forces the
	// sequential path (right for 1-CPU hosts).  Results are identical at any
	// width (see Worker.SetParallelism).
	Parallelism int
}

// Stats aggregates the communication and load counters of a cluster run.
type Stats struct {
	Workers         int
	ReplicaFactor   int // workers hosting each subgraph (1 = no replication)
	MessagesSent    int64
	BytesSent       int64
	QueriesHandled  int64
	UpdatesRouted   int64
	TopologyBatches int64 // topology batches broadcast to the workers
	RPCBatches      int64 // coalesced partial-KSP batches shipped to workers
	PairsCoalesced  int64 // pairs that shared a batch with another query's pairs
	DedupHits       int64 // pairs answered by an identical pending pair
	PairCacheHits   int64 // pairs answered from the epoch-pinned pair memo
	WorkerRequests  []int // per-worker partial-KSP requests served
	WorkerPairs     []int // per-worker pairs served
	WorkerSubgraphs []int // per-worker owned subgraphs
	WorkerUpdates   []int // per-worker weight updates received
}

// Cluster is the in-process master-worker deployment: the master holds the
// DTLP index (skeleton graph) and the full graph, while the subgraphs are
// assigned to workers that serve the refine step.
type Cluster struct {
	cfg   Config
	index *dtlp.Index

	workers  []*Worker
	table    *ReplicaTable
	provider *batchedProvider

	messages atomic.Int64
	bytes    atomic.Int64
	queries  atomic.Int64
	updates  atomic.Int64
	topology atomic.Int64
}

// part resolves the current partition through the index: topology batches
// replace the partition, so the cluster must never cache the construction-time
// pointer for routing.
func (c *Cluster) part() *partition.Partition { return c.index.Partition() }

// New builds an in-process cluster over an existing DTLP index.  Subgraphs
// are assigned to workers by a greedy least-loaded policy on vertex counts,
// mirroring the "allocated to different workers on a many-to-one basis based
// on their load" strategy of Section 5.2.
func New(index *dtlp.Index, cfg Config) (*Cluster, error) {
	if cfg.NumWorkers < 1 {
		return nil, fmt.Errorf("cluster: NumWorkers must be >= 1, got %d", cfg.NumWorkers)
	}
	if cfg.QueryBolts <= 0 {
		cfg.QueryBolts = cfg.NumWorkers
	}
	part := index.Partition()
	c := &Cluster{
		cfg:   cfg,
		index: index,
	}

	// Least-loaded assignment, rank by rank when replication is on.
	table, err := AssignReplicas(part, cfg.NumWorkers, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	c.table = table
	for w := 0; w < cfg.NumWorkers; w++ {
		worker := NewWorker(w, part, table.OwnedBy(w))
		// In-process workers share the master's index, so they can serve
		// epoch-pinned requests from the retained views and report real
		// EP-Index touched-path counts for update batches.
		worker.SetViewResolver(index.ViewAt)
		worker.SetTouchedCounter(index.PathsCrossing)
		worker.SetParallelism(cfg.Parallelism)
		c.workers = append(c.workers, worker)
	}
	// One outbound batching queue per worker, shared by every engine built on
	// this cluster: pair requests from different concurrent queries (same
	// epoch) coalesce into one PartialKSPRequest per flush.
	senders := make([]rpcbatch.Sender, cfg.NumWorkers)
	for w := 0; w < cfg.NumWorkers; w++ {
		senders[w] = c.workerSender(w)
	}
	c.provider = newBatchedProvider(senders, c.routePair, cfg.Batch)
	return c, nil
}

// workerSender adapts one in-process worker to the rpcbatch transport, with
// the same message accounting the TCP deployment would incur.
func (c *Cluster) workerSender(w int) rpcbatch.Sender {
	return func(ctx context.Context, pairs []core.PairRequest, k int, epoch uint64, hasEpoch bool) (map[core.PairRequest][]graph.Path, bool, error) {
		req := PartialKSPRequest{Pairs: pairs, K: k, Epoch: epoch, HasEpoch: hasEpoch}
		s, _ := trace.StartSpan(ctx, "rpc")
		s.SetAttrInt("worker", int64(w))
		req.TraceID = s.Trace().ID()
		req.SpanID = s.ID()
		c.account(req)
		resp := c.workers[w].HandlePartialKSP(req)
		c.account(resp)
		s.Graft(resp.Spans)
		s.Finish()
		return responseToMap(pairs, resp), resp.ServedEpoch, nil
	}
}

// routePair returns the primary worker of every subgraph containing both
// endpoints of the pair.  In-process workers do not fail, so the replicas
// (when Config.Replicas > 1) stay on the sidelines for routing and only
// carry the replicated update load.
func (c *Cluster) routePair(pr core.PairRequest) []int {
	var ws []int
	seen := make(map[int]bool)
	for _, id := range c.part().CommonSubgraphs(pr.A, pr.B) {
		w := c.table.Primary(id)
		if !seen[w] {
			seen[w] = true
			ws = append(ws, w)
		}
	}
	return ws
}

// NumWorkers returns the number of workers.
func (c *Cluster) NumWorkers() int { return len(c.workers) }

// Worker returns worker i.
func (c *Cluster) Worker(i int) *Worker { return c.workers[i] }

// Index returns the cluster's DTLP index.
func (c *Cluster) Index() *dtlp.Index { return c.index }

// AssignedWorker returns the primary worker hosting subgraph id.
func (c *Cluster) AssignedWorker(id partition.SubgraphID) int { return c.table.Primary(id) }

// ReplicaTable returns the cluster's subgraph-to-workers assignment.
func (c *Cluster) ReplicaTable() *ReplicaTable { return c.table }

// Provider returns the cluster's refine-step provider: an asynchronous
// batching pipeline with one outbound queue per worker, where pair requests
// from different concurrent queries coalesce (and dedupe) before being
// shipped to the workers owning the relevant subgraphs.  The provider is
// shared across all engines built on this cluster — that sharing is what
// makes cross-query batching possible.  It implements core.PartialProvider,
// core.ViewProvider and core.AsyncPartialProvider.
func (c *Cluster) Provider() core.PartialProvider { return c.provider }

// Engine builds a KSP-DG engine whose refine step runs on this cluster.
func (c *Cluster) Engine(opts core.Options) *core.Engine {
	return core.NewEngine(c.index, c.Provider(), opts)
}

// ApplyUpdates routes a batch of weight updates to the owning workers (for
// load accounting) and performs the index maintenance.  The caller must have
// already applied the batch to the master's copy of the graph.
func (c *Cluster) ApplyUpdates(batch []graph.WeightUpdate) error {
	if len(batch) == 0 {
		return nil
	}
	perWorker := make(map[int][]graph.WeightUpdate)
	part := c.part()
	for _, u := range batch {
		loc := part.Locate(u.Edge)
		if loc.Subgraph == partition.NoSubgraph {
			return fmt.Errorf("cluster: update for unpartitioned edge %d", u.Edge)
		}
		// Every replica of the subgraph receives the update: replicated
		// ownership multiplies the maintenance traffic, and the per-worker
		// counters are how that cost shows up in the stats.
		for _, w := range c.table.Replicas(loc.Subgraph) {
			perWorker[w] = append(perWorker[w], u)
		}
	}
	for w, ups := range perWorker {
		req := WeightUpdateRequest{Updates: ups}
		c.account(req)
		c.workers[w].HandleWeightUpdate(req)
		c.updates.Add(int64(len(ups)))
	}
	return c.index.ApplyUpdates(batch)
}

// ApplyTopology applies a batch of topology mutations (edge and vertex
// inserts and deletes) to the cluster: the shared index derives the new
// graph and partition and rebuilds only the touched subgraph indexes (see
// dtlp.Index.ApplyTopology), the replica table is extended round-robin for
// any subgraphs the batch opened, and the batch is broadcast to every worker
// — topology can reshape routing anywhere, so unlike weight updates there is
// no per-subgraph addressing.  Each worker then has the new partition and
// its (possibly grown) ownership installed atomically.
func (c *Cluster) ApplyTopology(up graph.TopologyUpdate) (dtlp.TopologyStats, error) {
	st, err := c.index.ApplyTopologyStats(up)
	if err != nil {
		return st, err
	}
	return st, c.BroadcastTopology(up)
}

// BroadcastTopology distributes a topology batch the shared index has already
// applied: the replica table is extended round-robin over any subgraphs the
// batch opened, the batch is forwarded to every worker, and the new partition
// plus each worker's (possibly grown) ownership is installed atomically.
// Serve layers that front an in-process cluster wire this as
// serve.Options.BroadcastTopology — the serve writer applies the batch to the
// index, so only the distribution step remains; ApplyTopology composes both
// steps for standalone cluster users.
func (c *Cluster) BroadcastTopology(up graph.TopologyUpdate) error {
	if up.IsZero() {
		return nil
	}
	newPart := c.index.Partition()
	c.table.Extend(newPart.NumSubgraphs())
	req := TopologyUpdateRequest{
		Update:     up,
		NumWorkers: len(c.workers),
		Factor:     c.table.Factor(),
	}
	for i, w := range c.workers {
		c.account(req)
		resp := w.HandleTopologyUpdate(req)
		c.account(resp)
		if resp.Err != "" {
			return fmt.Errorf("cluster: worker %d failed to apply topology batch: %s", i, resp.Err)
		}
		w.SetPartition(newPart, c.table.OwnedBy(i))
	}
	c.topology.Add(1)
	return nil
}

// ProcessBatch processes a batch of queries with the configured number of
// concurrent QueryBolts and returns per-query results in input order.
func (c *Cluster) ProcessBatch(queries []workload.Query, k int, opts core.Options) ([]core.Result, error) {
	results := make([]core.Result, len(queries))
	errs := make([]error, len(queries))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for b := 0; b < c.cfg.QueryBolts; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			engine := c.Engine(opts)
			for i := range jobs {
				q := queries[i]
				res, err := engine.Query(q.Source, q.Target, k)
				results[i] = res
				errs[i] = err
				c.queries.Add(1)
			}
		}()
	}
	for i := range queries {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Stats returns the aggregated communication and load statistics.
func (c *Cluster) Stats() Stats {
	bst := c.provider.BatchStats()
	st := Stats{
		Workers:         len(c.workers),
		ReplicaFactor:   c.table.Factor(),
		MessagesSent:    c.messages.Load(),
		BytesSent:       c.bytes.Load(),
		QueriesHandled:  c.queries.Load(),
		UpdatesRouted:   c.updates.Load(),
		TopologyBatches: c.topology.Load(),
		RPCBatches:      bst.Batches,
		PairsCoalesced:  bst.Coalesced,
		DedupHits:       bst.DedupHits,
		PairCacheHits:   bst.CacheHits,
	}
	for _, w := range c.workers {
		ws := w.HandleStats(StatsRequest{})
		st.WorkerRequests = append(st.WorkerRequests, ws.RequestsServed)
		st.WorkerPairs = append(st.WorkerPairs, ws.PairsServed)
		st.WorkerSubgraphs = append(st.WorkerSubgraphs, ws.Subgraphs)
		st.WorkerUpdates = append(st.WorkerUpdates, ws.UpdatesReceived)
	}
	return st
}

// account records one message and, if enabled, its encoded size.
func (c *Cluster) account(msg interface{}) {
	c.messages.Add(1)
	if !c.cfg.MeasureBytes {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(msg); err == nil {
		c.bytes.Add(int64(buf.Len()))
	}
}

// Close flushes and stops the cluster's outbound batching queues.  Queries
// issued after Close fail; it is only needed when the cluster's lifetime is
// shorter than the process (tests, benchmarks).
func (c *Cluster) Close() { c.provider.Close() }
