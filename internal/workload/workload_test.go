package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"kspdg/internal/graph"
	"kspdg/internal/shortest"
)

const sampleDIMACS = `c sample graph
p sp 4 10
a 1 2 3
a 2 1 3
a 2 3 4
a 3 2 4
a 3 4 5
a 4 3 5
a 1 4 10
a 4 1 10
a 1 3 8
a 3 1 8
`

func TestLoadDIMACSUndirected(t *testing.T) {
	g, err := LoadDIMACS(strings.NewReader(sampleDIMACS), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.Directed() {
		t.Errorf("expected undirected graph")
	}
	if g.NumVertices() != 4 {
		t.Errorf("vertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 5 {
		t.Errorf("edges = %d, want 5 (mirrored arcs merged)", g.NumEdges())
	}
	if d := shortest.ShortestDistance(g, 0, 3, nil); d != 10 {
		t.Errorf("shortest 1->4 = %g, want 10 (direct edge)", d)
	}
}

func TestLoadDIMACSDirected(t *testing.T) {
	g, err := LoadDIMACS(strings.NewReader(sampleDIMACS), false)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() {
		t.Errorf("expected directed graph")
	}
	if g.NumEdges() != 10 {
		t.Errorf("edges = %d, want 10", g.NumEdges())
	}
}

func TestLoadDIMACSErrors(t *testing.T) {
	cases := []string{
		"a 1 2 3\n",           // arc before problem line
		"p sp x 3\n",          // bad vertex count
		"p tw 4 3\n",          // wrong problem type
		"p sp 4 3\nq 1 2 3\n", // unknown record
		"p sp 4 3\na 1 2\n",   // malformed arc
		"",                    // empty
	}
	for _, c := range cases {
		if _, err := LoadDIMACS(strings.NewReader(c), true); err == nil {
			t.Errorf("expected error for input %q", c)
		}
	}
}

func TestWriteAndReloadDIMACS(t *testing.T) {
	ds, err := BuiltinDataset("NY", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, ds.Graph); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadDIMACS(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != ds.Graph.NumVertices() || g2.NumEdges() != ds.Graph.NumEdges() {
		t.Errorf("round trip size mismatch: %d/%d vs %d/%d",
			g2.NumVertices(), g2.NumEdges(), ds.Graph.NumVertices(), ds.Graph.NumEdges())
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(RoadNetworkSpec{Width: 1, Height: 5}); err == nil {
		t.Errorf("degenerate grid should be rejected")
	}
}

func TestBuiltinDatasets(t *testing.T) {
	var prev int
	for _, name := range DatasetNames() {
		ds, err := BuiltinDataset(name, ScaleTiny)
		if err != nil {
			t.Fatalf("BuiltinDataset(%s): %v", name, err)
		}
		g := ds.Graph
		if g.NumVertices() <= prev {
			t.Errorf("%s should be larger than the previous dataset (%d vs %d)", name, g.NumVertices(), prev)
		}
		prev = g.NumVertices()
		if ds.DefaultZ < 2 {
			t.Errorf("%s default z = %d", name, ds.DefaultZ)
		}
		// Connectivity: every vertex reachable from vertex 0.
		tree := shortest.Dijkstra(g, 0, nil)
		for v := 0; v < g.NumVertices(); v++ {
			if !tree.Reachable(graph.VertexID(v)) {
				t.Fatalf("%s: vertex %d unreachable; generator must produce connected graphs", name, v)
			}
		}
		// Sparsity sanity: average degree between 2 and 4 edges per vertex.
		avgDeg := 2 * float64(g.NumEdges()) / float64(g.NumVertices())
		if avgDeg < 2 || avgDeg > 5 {
			t.Errorf("%s: average degree %g outside road-network range", name, avgDeg)
		}
	}
	if _, err := BuiltinDataset("MARS", ScaleTiny); err == nil {
		t.Errorf("unknown dataset should error")
	}
}

func TestBuiltinDatasetDeterministic(t *testing.T) {
	a, err := BuiltinDataset("COL", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuiltinDataset("COL", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumVertices() != b.Graph.NumVertices() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatalf("generation not deterministic")
	}
	for e := graph.EdgeID(0); int(e) < a.Graph.NumEdges(); e++ {
		if a.Graph.Weight(e) != b.Graph.Weight(e) {
			t.Fatalf("weights differ at edge %d", e)
		}
	}
}

func TestGenerateDirected(t *testing.T) {
	ds, err := Generate(RoadNetworkSpec{Name: "D", Width: 6, Height: 6, Directed: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Graph.Directed() {
		t.Errorf("expected directed graph")
	}
	if ds.Graph.NumEdges()%2 != 0 {
		t.Errorf("directed generator should add arcs in pairs")
	}
}

func TestTrafficModelStep(t *testing.T) {
	ds, err := BuiltinDataset("NY", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	before := make([]float64, g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		before[e] = g.Weight(graph.EdgeID(e))
	}
	tm := NewTrafficModel(0.35, 0.3, 7)
	batch, err := tm.Step(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) == 0 {
		t.Fatal("expected some updates")
	}
	frac := float64(len(batch)) / float64(g.NumEdges())
	if frac < 0.2 || frac > 0.5 {
		t.Errorf("changed fraction %g too far from alpha=0.35", frac)
	}
	for _, u := range batch {
		if u.NewWeight <= 0 {
			t.Errorf("weight must stay positive")
		}
		old := before[u.Edge]
		if old > 0 {
			ratio := u.NewWeight / old
			if ratio < 1-0.3-1e-9 && u.NewWeight > tm.MinWeight+1e-12 {
				t.Errorf("edge %d changed by more than tau: ratio %g", u.Edge, ratio)
			}
			if ratio > 1+0.3+1e-9 {
				t.Errorf("edge %d changed by more than tau: ratio %g", u.Edge, ratio)
			}
		}
		if g.Weight(u.Edge) != u.NewWeight {
			t.Errorf("update not applied to graph")
		}
	}
}

func TestTrafficModelMirrorsDirectedPairs(t *testing.T) {
	ds, err := Generate(RoadNetworkSpec{Name: "D", Width: 8, Height: 6, Directed: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	tm := NewTrafficModel(0.5, 0.4, 5)
	tm.MirrorDirected = true
	if _, err := tm.Step(g); err != nil {
		t.Fatal(err)
	}
	for e := 0; e+1 < g.NumEdges(); e += 2 {
		if math.Abs(g.Weight(graph.EdgeID(e))-g.Weight(graph.EdgeID(e+1))) > 1e-12 {
			t.Fatalf("mirrored pair %d/%d weights differ", e, e+1)
		}
	}
}

func TestTrafficModelAlphaZero(t *testing.T) {
	ds, _ := BuiltinDataset("NY", ScaleTiny)
	tm := NewTrafficModel(0, 0.3, 1)
	batch, err := tm.Step(ds.Graph)
	if err != nil || batch != nil {
		t.Errorf("alpha=0 should produce no updates, got %v, %v", batch, err)
	}
}

func TestQueryGenerator(t *testing.T) {
	qg := NewQueryGenerator(100, 13)
	qs := qg.Batch(50)
	if len(qs) != 50 {
		t.Fatalf("batch size = %d", len(qs))
	}
	for _, q := range qs {
		if q.Source == q.Target {
			t.Errorf("query endpoints must differ")
		}
		if int(q.Source) >= 100 || int(q.Target) >= 100 || q.Source < 0 || q.Target < 0 {
			t.Errorf("query endpoints out of range: %+v", q)
		}
	}
	// Determinism.
	again := NewQueryGenerator(100, 13).Batch(50)
	for i := range qs {
		if qs[i] != again[i] {
			t.Fatalf("query generation not deterministic")
		}
	}
}

// Property: traffic model never produces non-positive weights and always
// reports exactly the edges it changed.
func TestPropertyTrafficModelSound(t *testing.T) {
	ds, err := BuiltinDataset("NY", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	f := func(seed int64, alphaRaw, tauRaw uint8) bool {
		alpha := float64(alphaRaw%100) / 100
		tau := float64(tauRaw%90) / 100
		tm := NewTrafficModel(alpha, tau, seed)
		batch, err := tm.Step(g)
		if err != nil {
			return false
		}
		for _, u := range batch {
			if u.NewWeight <= 0 {
				return false
			}
			if g.Weight(u.Edge) != u.NewWeight {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInjectChaos(t *testing.T) {
	ds, err := BuiltinDataset("NY", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	sc := GenerateMixed(ds.Graph, 12, 2, 3, 0.2, 0.3, 7)

	chaotic := InjectChaos(sc, 1, 4, 8)
	if got := chaotic.NumChaosEvents(); got != 2 {
		t.Fatalf("chaos events %d, want kill + restart", got)
	}
	if chaotic.NumQueries() != sc.NumQueries() || chaotic.NumUpdateBatches() != sc.NumUpdateBatches() {
		t.Fatalf("chaos injection changed the query/update stream")
	}
	// The kill precedes the restart, both target worker 1, and they sit at
	// the requested positions of the query stream.
	queries, sawKill, sawRestart := 0, 0, 0
	for _, ev := range chaotic.Events {
		if ev.Query != nil {
			queries++
		}
		if ev.Chaos == nil {
			continue
		}
		if ev.Chaos.Worker != 1 {
			t.Errorf("chaos targets worker %d, want 1", ev.Chaos.Worker)
		}
		switch ev.Chaos.Action {
		case ChaosKillWorker:
			sawKill++
			if sawRestart > 0 {
				t.Error("kill after restart")
			}
			if queries != 4 {
				t.Errorf("kill after %d queries, want 4", queries)
			}
		case ChaosRestartWorker:
			sawRestart++
			if queries != 8 {
				t.Errorf("restart after %d queries, want 8", queries)
			}
		}
	}
	if sawKill != 1 || sawRestart != 1 {
		t.Fatalf("saw %d kills and %d restarts, want 1 and 1", sawKill, sawRestart)
	}

	// Kill-only (no restart position): exactly one chaos event.
	killOnly := InjectChaos(sc, 0, 6, 0)
	if got := killOnly.NumChaosEvents(); got != 1 {
		t.Fatalf("kill-only chaos events %d, want 1", got)
	}

	// Positions beyond the stream clamp to the end instead of dropping.
	clamped := InjectChaos(sc, 0, 1000, 2000)
	if got := clamped.NumChaosEvents(); got != 2 {
		t.Fatalf("clamped chaos events %d, want 2", got)
	}

	// The original scenario is untouched.
	if sc.NumChaosEvents() != 0 {
		t.Fatal("InjectChaos mutated its input")
	}
}

func TestChaosActionString(t *testing.T) {
	if ChaosKillWorker.String() != "kill" || ChaosRestartWorker.String() != "restart" {
		t.Fatalf("chaos action names: %q %q", ChaosKillWorker, ChaosRestartWorker)
	}
}

func TestGenerateOpenLoop(t *testing.T) {
	ds, err := BuiltinDataset("NY", ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	arr := GenerateOpenLoop(ds.Graph, 200, 500, 7)
	if len(arr) != 200 {
		t.Fatalf("got %d arrivals, want 200", len(arr))
	}
	n := ds.Graph.NumVertices()
	var prev time.Duration
	for i, a := range arr {
		if a.At < prev {
			t.Fatalf("arrival %d at %v before predecessor %v (must be non-decreasing)", i, a.At, prev)
		}
		prev = a.At
		if int(a.Query.Source) >= n || int(a.Query.Target) >= n || a.Query.Source == a.Query.Target {
			t.Fatalf("arrival %d has bad query %+v", i, a.Query)
		}
	}
	// Mean inter-arrival should be in the ballpark of 1/rate (2ms at 500/s):
	// with 200 samples the sample mean stays well within a factor of two.
	mean := arr[len(arr)-1].At / time.Duration(len(arr))
	if mean < 1*time.Millisecond || mean > 4*time.Millisecond {
		t.Errorf("mean inter-arrival %v implausible for rate 500/s", mean)
	}

	// Determinism: same seed, same stream; different seed, different stream.
	again := GenerateOpenLoop(ds.Graph, 200, 500, 7)
	for i := range arr {
		if arr[i] != again[i] {
			t.Fatalf("arrival %d differs across identical seeds", i)
		}
	}
	other := GenerateOpenLoop(ds.Graph, 200, 500, 8)
	same := true
	for i := range arr {
		if arr[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}
