package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/shortest"
)

// PairRequest asks for the partial k shortest paths between two adjacent
// vertices of a reference path (global vertex ids).  The vertices of a pair
// always share at least one subgraph.
type PairRequest struct {
	A, B graph.VertexID
}

// PartialProvider supplies partial k shortest paths for boundary pairs.  The
// refine step of KSP-DG is expressed against this interface so that the same
// engine code runs both locally (LocalProvider) and on a cluster where the
// pairs are fanned out to the workers owning the relevant subgraphs
// (cluster.Provider).
type PartialProvider interface {
	// PartialKSP returns, for every requested pair, up to k shortest paths
	// between the pair's endpoints restricted to single subgraphs containing
	// both, expressed in global vertex ids and sorted by distance.
	PartialKSP(pairs []PairRequest, k int) (map[PairRequest][]graph.Path, error)
}

// ViewProvider is implemented by providers that can answer the refine step
// against a specific index epoch.  The engine prefers this interface when
// present, which is what gives in-flight queries snapshot isolation from
// concurrent weight updates; providers without it (e.g. remote workers that
// always serve their latest applied state) fall back to PartialKSP.
type ViewProvider interface {
	// PartialKSPView is PartialKSP with all subgraph searches running over
	// the weights frozen in the given epoch view.
	PartialKSPView(iv *dtlp.IndexView, pairs []PairRequest, k int) (map[PairRequest][]graph.Path, error)
}

// AsyncPartialReply carries the outcome of an asynchronous refine request:
// the partial paths for every requested pair, or the error that failed the
// batch they travelled in.
type AsyncPartialReply struct {
	Paths map[PairRequest][]graph.Path
	Err   error
}

// AsyncPartialProvider is implemented by providers that can issue the refine
// step without blocking the caller: PartialKSPAsync returns immediately with
// a channel that later receives the reply.  The engine prefers this interface
// when present and uses the gap to run the next iteration's filter step
// (reference-path generation on the skeleton) while the refine is in flight —
// with a batching transport the request may additionally coalesce with pairs
// from other concurrent queries while it waits.  A nil view requests the live
// weights, mirroring PartialKSP.
type AsyncPartialProvider interface {
	PartialKSPAsync(iv *dtlp.IndexView, pairs []PairRequest, k int) <-chan AsyncPartialReply
}

// CtxAsyncPartialProvider is AsyncPartialProvider with a context parameter.
// The engine prefers this interface over AsyncPartialProvider when both are
// present and passes its query context through, so a context-carried trace
// span (see internal/trace) follows the refine request into the batching
// transport and onto the wire.  Implementations must treat the context as
// trace carrier only — refine requests may coalesce with other queries'
// pairs, so per-query cancellation must not abort a shipped batch.
type CtxAsyncPartialProvider interface {
	PartialKSPAsyncCtx(ctx context.Context, iv *dtlp.IndexView, pairs []PairRequest, k int) <-chan AsyncPartialReply
}

// LocalProvider computes partial k shortest paths directly against the local
// partition, optionally using multiple goroutines.  It is the single-process
// stand-in for the SubgraphBolts of the Storm deployment.
type LocalProvider struct {
	part *partition.Partition
	// Parallelism is the number of worker goroutines; 0 or 1 means serial.
	Parallelism int
}

// NewLocalProvider returns a LocalProvider over the given partition.
func NewLocalProvider(part *partition.Partition, parallelism int) *LocalProvider {
	return &LocalProvider{part: part, Parallelism: parallelism}
}

// PartialKSP implements PartialProvider against the live subgraph weights of
// the partition the provider was constructed over.
func (lp *LocalProvider) PartialKSP(pairs []PairRequest, k int) (map[PairRequest][]graph.Path, error) {
	return lp.partialKSP(lp.part, pairs, k, liveSubgraphWeights(lp.part))
}

// PartialKSPView implements ViewProvider: every subgraph search reads the
// weights frozen in the epoch view, over the partition of that epoch's
// generation (topology updates replace the partition, so the view's own
// partition — not the construction-time one — is authoritative).
func (lp *LocalProvider) PartialKSPView(iv *dtlp.IndexView, pairs []PairRequest, k int) (map[PairRequest][]graph.Path, error) {
	return lp.partialKSP(iv.Partition(), pairs, k, iv.SubgraphWeights)
}

// subgraphWeightsFn resolves the weighted view a subgraph search should run
// over: either the live local graph or an epoch snapshot of it.
type subgraphWeightsFn func(partition.SubgraphID) *graph.Snapshot

// liveSubgraphWeights reads the subgraph weights as of the moment of the
// call.  Unlike an epoch view, consecutive calls may observe different
// weights when updates are applied concurrently.
func liveSubgraphWeights(part *partition.Partition) subgraphWeightsFn {
	return func(id partition.SubgraphID) *graph.Snapshot {
		return part.Subgraph(id).Local.Snapshot()
	}
}

func (lp *LocalProvider) partialKSP(part *partition.Partition, pairs []PairRequest, k int, weights subgraphWeightsFn) (map[PairRequest][]graph.Path, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	out := make(map[PairRequest][]graph.Path, len(pairs))
	if len(pairs) == 0 {
		return out, nil
	}
	par := lp.Parallelism
	if par <= 1 {
		for _, pr := range pairs {
			out[pr] = partialKSPForPairInner(part, pr, k, weights, 1)
		}
		return out, nil
	}
	// Split the budget like cluster.Worker: pairs take the outer lanes, and
	// the leftover width per pair fans out that pair's per-subgraph searches,
	// so a single heavy pair still uses the whole budget.
	inner := par / len(pairs)
	if inner < 1 {
		inner = 1
	}
	if len(pairs) == 1 {
		out[pairs[0]] = partialKSPForPairInner(part, pairs[0], k, weights, inner)
		return out, nil
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	jobs := make(chan PairRequest)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pr := range jobs {
				paths := partialKSPForPairInner(part, pr, k, weights, inner)
				mu.Lock()
				out[pr] = paths
				mu.Unlock()
			}
		}()
	}
	for _, pr := range pairs {
		jobs <- pr
	}
	close(jobs)
	wg.Wait()
	return out, nil
}

// PartialKSPForPair computes up to k shortest paths between the pair's
// endpoints, searching each subgraph that contains both endpoints and merging
// the per-subgraph results (Algorithm 4, lines 3-8).  Paths are returned in
// global vertex ids sorted by distance.
func PartialKSPForPair(part *partition.Partition, pr PairRequest, k int) []graph.Path {
	return partialKSPForPair(part, pr, k, liveSubgraphWeights(part))
}

// PartialKSPForPairView is PartialKSPForPair over the weights of one epoch.
func PartialKSPForPairView(iv *dtlp.IndexView, pr PairRequest, k int) []graph.Path {
	return partialKSPForPair(iv.Partition(), pr, k, iv.SubgraphWeights)
}

// pairSeenPool recycles the dedup sets used when a pair's endpoints share
// more than one subgraph; the common single-subgraph case skips dedup (and
// the merge sort) entirely, since one Yen call cannot produce duplicates and
// already emits in ascending order.
var pairSeenPool = sync.Pool{New: func() interface{} { return new(graph.PathSet) }}

func partialKSPForPair(part *partition.Partition, pr PairRequest, k int, weights subgraphWeightsFn) []graph.Path {
	return partialKSPForPairInner(part, pr, k, weights, 1)
}

// partialKSPForPairInner is partialKSPForPair with an inner-parallelism
// budget: when inner > 1 and the endpoints share several subgraphs, the
// per-subgraph Yen searches fan out across up to inner goroutines.  Results
// fill slots indexed by the subgraph's position in CommonSubgraphs and merge
// sequentially in that order through the same dedup set and sort as the
// serial loop, so the answer is bit-identical either way.
func partialKSPForPairInner(part *partition.Partition, pr PairRequest, k int, weights subgraphWeightsFn, inner int) []graph.Path {
	if pr.A == pr.B {
		return []graph.Path{{Vertices: []graph.VertexID{pr.A}}}
	}
	ids := part.CommonSubgraphs(pr.A, pr.B)
	if inner > 1 && len(ids) > 1 {
		return partialKSPForPairParallel(part, pr, k, weights, inner, ids)
	}
	var merged []graph.Path
	var seen *graph.PathSet
	if len(ids) > 1 {
		seen = pairSeenPool.Get().(*graph.PathSet)
		seen.Reset()
		defer pairSeenPool.Put(seen)
	}
	for _, id := range ids {
		sub := part.Subgraph(id)
		la, okA := sub.ToLocal(pr.A)
		lb, okB := sub.ToLocal(pr.B)
		if !okA || !okB {
			continue
		}
		for _, lp := range shortest.Yen(weights(id), la, lb, k, nil) {
			gp := sub.GlobalPath(lp)
			if seen != nil && !seen.Add(gp) {
				continue
			}
			merged = append(merged, gp)
		}
	}
	if len(ids) > 1 {
		sort.Slice(merged, func(i, j int) bool { return graph.ComparePaths(merged[i], merged[j]) < 0 })
	}
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}

// partialKSPForPairParallel runs one pair's per-subgraph searches on up to
// inner goroutines (see partialKSPForPairInner for the determinism argument).
func partialKSPForPairParallel(part *partition.Partition, pr PairRequest, k int, weights subgraphWeightsFn, inner int, ids []partition.SubgraphID) []graph.Path {
	perSub := make([][]graph.Path, len(ids))
	searchOne := func(j int) {
		sub := part.Subgraph(ids[j])
		la, okA := sub.ToLocal(pr.A)
		lb, okB := sub.ToLocal(pr.B)
		if !okA || !okB {
			return
		}
		lps := shortest.Yen(weights(ids[j]), la, lb, k, nil)
		gps := make([]graph.Path, 0, len(lps))
		for _, lp := range lps {
			gps = append(gps, sub.GlobalPath(lp))
		}
		perSub[j] = gps
	}
	g := inner
	if g > len(ids) {
		g = len(ids)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				searchOne(j)
			}
		}()
	}
	for j := range ids {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	seen := pairSeenPool.Get().(*graph.PathSet)
	seen.Reset()
	defer pairSeenPool.Put(seen)
	var merged []graph.Path
	for _, gps := range perSub {
		for _, gp := range gps {
			if !seen.Add(gp) {
				continue
			}
			merged = append(merged, gp)
		}
	}
	sort.Slice(merged, func(i, j int) bool { return graph.ComparePaths(merged[i], merged[j]) < 0 })
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}
