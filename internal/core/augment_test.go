package core

import (
	"testing"

	"kspdg/internal/graph"
	"kspdg/internal/shortest"
	"kspdg/internal/testutil"
)

func TestAugmentedSkeletonView(t *testing.T) {
	base := testutil.LineGraph(t, 4) // vertices 0-1-2-3, unit weights
	aug := newAugmentedSkeleton(base)
	if aug.NumVertices() != 4 || aug.NumEdges() != 3 {
		t.Fatalf("augmented view should start identical to base")
	}
	v := aug.addVertex()
	if v != 4 || aug.NumVertices() != 5 {
		t.Errorf("addVertex gave id %d, NumVertices %d", v, aug.NumVertices())
	}
	e := aug.addEdge(v, 1, 2.5)
	if int(e) != base.NumEdges() {
		t.Errorf("extra edge id = %d, want %d", e, base.NumEdges())
	}
	if aug.Weight(e) != 2.5 || aug.InitialWeight(e) != 2.5 {
		t.Errorf("extra edge weight wrong")
	}
	ends := aug.EdgeEndpoints(e)
	if ends.U != v || ends.V != 1 {
		t.Errorf("extra edge endpoints = %+v", ends)
	}
	// Undirected base: arc visible from both sides.
	if got, ok := aug.EdgeBetween(v, 1); !ok || got != e {
		t.Errorf("EdgeBetween(v,1) = %d,%v", got, ok)
	}
	if got, ok := aug.EdgeBetween(1, v); !ok || got != e {
		t.Errorf("EdgeBetween(1,v) = %d,%v", got, ok)
	}
	if _, ok := aug.EdgeBetween(v, 3); ok {
		t.Errorf("unexpected edge between v and 3")
	}
	// Base edges still resolve through the wrapper.
	if be, ok := aug.EdgeBetween(0, 1); !ok || aug.Weight(be) != 1 {
		t.Errorf("base edge lookup broken")
	}
	if eps := aug.EdgeEndpoints(0); eps != base.EdgeEndpoints(0) {
		t.Errorf("base edge endpoints differ")
	}
	// Neighbors of an attached base vertex include the extra arc; cached
	// merged adjacency stays correct after another edge is added.
	if len(aug.Neighbors(1)) != len(base.Neighbors(1))+1 {
		t.Errorf("merged adjacency missing extra arc")
	}
	v2 := aug.addVertex()
	aug.addEdge(v2, 1, 1)
	if len(aug.Neighbors(1)) != len(base.Neighbors(1))+2 {
		t.Errorf("merged adjacency not invalidated after new edge")
	}
	// Dijkstra runs over the augmented view: v -(2.5)- 1 -(1)- 0.
	p, ok := shortest.ShortestPath(aug, v, 0, nil)
	if !ok || p.Dist != 3.5 {
		t.Errorf("shortest path over augmented view = %v, %v", p, ok)
	}
}

func TestAugmentedSkeletonDirected(t *testing.T) {
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	base := b.Build()
	aug := newAugmentedSkeleton(base)
	s := aug.addVertex()
	aug.addEdge(s, 0, 2) // directed: only s -> 0
	if _, ok := aug.EdgeBetween(0, s); ok {
		t.Errorf("directed extra edge must not be reversible")
	}
	if _, ok := aug.EdgeBetween(s, 0); !ok {
		t.Errorf("forward extra edge missing")
	}
	p, ok := shortest.ShortestPath(aug, s, 2, nil)
	if !ok || p.Dist != 4 {
		t.Errorf("directed augmented path = %v, %v", p, ok)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if got := o.beam(2); got != 6 {
		t.Errorf("beam(2) = %d, want 6", got)
	}
	if got := o.beam(10); got != 20 {
		t.Errorf("beam(10) = %d, want 20", got)
	}
	o.BeamWidth = 3
	if got := o.beam(10); got != 3 {
		t.Errorf("explicit beam ignored")
	}
	var o2 Options
	if o2.maxIterations() != 10000 {
		t.Errorf("default max iterations = %d", o2.maxIterations())
	}
	o2.MaxIterations = 7
	if o2.maxIterations() != 7 {
		t.Errorf("explicit max iterations ignored")
	}
}

func TestQueryRespectsMaxIterations(t *testing.T) {
	g := testutil.GridGraph(6, 6, 1)
	_, _, e := buildEngine(t, g, 8, 1)
	limited := NewEngine(e.Index(), nil, Options{MaxIterations: 1})
	res, err := limited.Query(0, graph.VertexID(g.NumVertices()-1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("iterations = %d, want exactly 1 under the cap", res.Iterations)
	}
	if len(res.Paths) == 0 {
		t.Errorf("even one iteration should produce candidate paths on a grid")
	}
}
