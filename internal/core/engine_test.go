package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/shortest"
	"kspdg/internal/testutil"
)

func buildEngine(t testing.TB, g *graph.Graph, z, xi int) (*partition.Partition, *dtlp.Index, *Engine) {
	t.Helper()
	p, err := partition.PartitionGraph(g, z)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	x, err := dtlp.Build(p, dtlp.Config{Xi: xi})
	if err != nil {
		t.Fatalf("dtlp: %v", err)
	}
	return p, x, NewEngine(x, nil, Options{})
}

// assertMatchesOracle checks that the engine's k shortest path distances
// exactly match the brute-force oracle for the query.
func assertMatchesOracle(t *testing.T, g *graph.Graph, e *Engine, s, tt graph.VertexID, k int) {
	t.Helper()
	res, err := e.Query(s, tt, k)
	if err != nil {
		t.Fatalf("Query(%d,%d,%d): %v", s, tt, k, err)
	}
	want := testutil.BruteForceKSP(g, s, tt, k)
	if len(res.Paths) != len(want) {
		t.Fatalf("Query(%d,%d,%d) returned %d paths, oracle %d\n got: %v\nwant: %v",
			s, tt, k, len(res.Paths), len(want), res.Paths, want)
	}
	for i := range want {
		if math.Abs(res.Paths[i].Dist-want[i].Dist) > 1e-9 {
			t.Errorf("Query(%d,%d,%d) path %d dist = %g, oracle %g", s, tt, k, i, res.Paths[i].Dist, want[i].Dist)
		}
		if err := res.Paths[i].Validate(g); err != nil {
			t.Errorf("Query(%d,%d,%d) path %d invalid: %v", s, tt, k, i, err)
		}
		if math.Abs(res.Paths[i].EvalDist(g)-res.Paths[i].Dist) > 1e-9 {
			t.Errorf("Query(%d,%d,%d) path %d reported dist %g but edges sum to %g",
				s, tt, k, i, res.Paths[i].Dist, res.Paths[i].EvalDist(g))
		}
		if res.Paths[i].Source() != s || res.Paths[i].Target() != tt {
			t.Errorf("Query(%d,%d,%d) path %d endpoints wrong: %v", s, tt, k, i, res.Paths[i])
		}
	}
}

func TestQueryBoundaryEndpoints(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, _, e := buildEngine(t, g, 6, 2)
	boundary := p.BoundaryVertices()
	if len(boundary) < 2 {
		t.Skip("not enough boundary vertices")
	}
	for _, k := range []int{1, 2, 3, 5} {
		assertMatchesOracle(t, g, e, boundary[0], boundary[len(boundary)-1], k)
	}
}

func TestQueryNonBoundaryEndpoints(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, _, e := buildEngine(t, g, 6, 2)
	// Pick two non-boundary vertices far apart.
	var interior []graph.VertexID
	for v := graph.VertexID(0); int(v) < g.NumVertices(); v++ {
		if !p.IsBoundary(v) {
			interior = append(interior, v)
		}
	}
	if len(interior) < 2 {
		t.Skip("no interior vertices")
	}
	s, tt := interior[0], interior[len(interior)-1]
	for _, k := range []int{1, 2, 4} {
		assertMatchesOracle(t, g, e, s, tt, k)
	}
}

func TestQueryMixedEndpoints(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, _, e := buildEngine(t, g, 6, 2)
	boundary := p.BoundaryVertices()
	var interior []graph.VertexID
	for v := graph.VertexID(0); int(v) < g.NumVertices(); v++ {
		if !p.IsBoundary(v) {
			interior = append(interior, v)
		}
	}
	if len(boundary) == 0 || len(interior) == 0 {
		t.Skip("need both boundary and interior vertices")
	}
	assertMatchesOracle(t, g, e, boundary[0], interior[len(interior)-1], 3)
	assertMatchesOracle(t, g, e, interior[0], boundary[len(boundary)-1], 3)
}

func TestQuerySameSubgraphInteriorEndpoints(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, _, e := buildEngine(t, g, 6, 2)
	// Find two interior vertices that share a subgraph.
	var s, tt graph.VertexID = graph.NoVertex, graph.NoVertex
outer:
	for _, sg := range p.Subgraphs {
		var interior []graph.VertexID
		for _, v := range sg.Globals {
			if !p.IsBoundary(v) {
				interior = append(interior, v)
			}
		}
		if len(interior) >= 2 {
			s, tt = interior[0], interior[1]
			break outer
		}
	}
	if s == graph.NoVertex {
		t.Skip("no subgraph with two interior vertices")
	}
	assertMatchesOracle(t, g, e, s, tt, 2)
}

func TestQueryTrivialAndErrorCases(t *testing.T) {
	g := testutil.PaperGraph(t)
	_, _, e := buildEngine(t, g, 6, 1)
	res, err := e.Query(3, 3, 2)
	if err != nil || len(res.Paths) != 1 || res.Paths[0].Len() != 0 {
		t.Errorf("s==t should return the trivial path, got %v, %v", res.Paths, err)
	}
	if _, err := e.Query(0, 1, 0); err == nil {
		t.Errorf("k=0 should error")
	}
	if _, err := e.Query(0, graph.VertexID(g.NumVertices()+3), 1); err == nil {
		t.Errorf("out-of-range target should error")
	}
	if _, err := e.Query(-1, 0, 1); err == nil {
		t.Errorf("negative source should error")
	}
}

func TestQueryDisconnectedGraph(t *testing.T) {
	b := graph.NewBuilder(8, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(4, 5, 1)
	b.AddEdge(5, 6, 1)
	b.AddEdge(6, 7, 1)
	g := b.Build()
	_, _, e := buildEngine(t, g, 3, 1)
	res, err := e.Query(0, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 0 {
		t.Errorf("disconnected query should return no paths, got %v", res.Paths)
	}
}

func TestQueryAfterWeightUpdates(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, x, e := buildEngine(t, g, 6, 2)
	rng := rand.New(rand.NewSource(99))
	boundary := p.BoundaryVertices()
	for round := 0; round < 10; round++ {
		batch := testutil.PerturbWeights(t, g, rng, 0.35, 0.3, 0.1)
		if err := x.ApplyUpdates(batch); err != nil {
			t.Fatal(err)
		}
		s := boundary[rng.Intn(len(boundary))]
		tt := graph.VertexID(rng.Intn(g.NumVertices()))
		if s == tt {
			continue
		}
		assertMatchesOracle(t, g, e, s, tt, 1+rng.Intn(4))
	}
}

func TestQueryStatsPopulated(t *testing.T) {
	g := testutil.PaperGraph(t)
	_, _, e := buildEngine(t, g, 6, 2)
	res, err := e.Query(testutil.V1, testutil.V19, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 1 {
		t.Errorf("iterations = %d, want >= 1", res.Iterations)
	}
	if res.PairsRefined == 0 {
		t.Errorf("expected refined pairs")
	}
	if res.CandidatesGenerated == 0 {
		t.Errorf("expected generated candidates")
	}
	if res.Elapsed <= 0 {
		t.Errorf("elapsed should be positive")
	}
}

func TestQueryWithExplicitLocalProviderParallel(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dtlp.Build(p, dtlp.Config{Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(x, NewLocalProvider(p, 4), Options{})
	assertMatchesOracle(t, g, e, testutil.V1, testutil.V19, 4)
}

func TestPartialKSPForPair(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	boundary := p.BoundaryVertices()
	var a, b graph.VertexID = graph.NoVertex, graph.NoVertex
	for i := 0; i < len(boundary) && a == graph.NoVertex; i++ {
		for j := i + 1; j < len(boundary); j++ {
			if len(p.CommonSubgraphs(boundary[i], boundary[j])) > 0 {
				a, b = boundary[i], boundary[j]
				break
			}
		}
	}
	if a == graph.NoVertex {
		t.Skip("no co-located boundary pair")
	}
	paths := PartialKSPForPair(p, PairRequest{A: a, B: b}, 3)
	if len(paths) == 0 {
		t.Fatal("expected partial paths")
	}
	for i, path := range paths {
		if path.Source() != a || path.Target() != b {
			t.Errorf("partial path %d endpoints wrong: %v", i, path)
		}
		if err := path.Validate(g); err != nil {
			t.Errorf("partial path %d invalid: %v", i, err)
		}
		if i > 0 && paths[i-1].Dist > path.Dist+1e-9 {
			t.Errorf("partial paths not sorted")
		}
	}
	// Same-vertex pair yields the trivial path.
	trivial := PartialKSPForPair(p, PairRequest{A: a, B: a}, 2)
	if len(trivial) != 1 || trivial[0].Len() != 0 {
		t.Errorf("same-vertex pair should return trivial path, got %v", trivial)
	}
}

func TestLocalProviderValidation(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	lp := NewLocalProvider(p, 0)
	if _, err := lp.PartialKSP([]PairRequest{{A: 0, B: 1}}, 0); err == nil {
		t.Errorf("k=0 should be rejected")
	}
	out, err := lp.PartialKSP(nil, 2)
	if err != nil || len(out) != 0 {
		t.Errorf("empty request should return empty map, got %v, %v", out, err)
	}
}

func TestQueryDirectedGraph(t *testing.T) {
	// Directed ring + chords.
	b := graph.NewBuilder(12, true)
	for i := 0; i < 12; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%12), 1+float64(i%4))
	}
	b.AddEdge(0, 6, 3)
	b.AddEdge(3, 9, 2)
	b.AddEdge(9, 2, 5)
	g := b.Build()
	_, _, e := buildEngine(t, g, 5, 2)
	res, err := e.Query(0, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := testutil.BruteForceKSP(g, 0, 7, 3)
	if len(res.Paths) != len(want) {
		t.Fatalf("directed query returned %d paths, oracle %d", len(res.Paths), len(want))
	}
	for i := range want {
		if math.Abs(res.Paths[i].Dist-want[i].Dist) > 1e-9 {
			t.Errorf("directed path %d dist = %g, oracle %g", i, res.Paths[i].Dist, want[i].Dist)
		}
	}
}

func TestQueryOnGrid(t *testing.T) {
	g := testutil.GridGraph(6, 6, 1)
	_, _, e := buildEngine(t, g, 8, 2)
	res, err := e.Query(0, graph.VertexID(g.NumVertices()-1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 3 {
		t.Fatalf("expected 3 paths, got %d", len(res.Paths))
	}
	// On a unit grid the shortest distance between opposite corners is the
	// Manhattan distance; several ties exist so all three should equal 10.
	for i, p := range res.Paths {
		if p.Dist != 10 {
			t.Errorf("grid path %d dist = %g, want 10", i, p.Dist)
		}
	}
	sp, _ := shortest.ShortestPath(g, 0, graph.VertexID(g.NumVertices()-1), nil)
	if res.Paths[0].Dist != sp.Dist {
		t.Errorf("first path should match Dijkstra")
	}
}

// Property: KSP-DG matches the brute-force oracle on random graphs, random
// partitions, random endpoints and random k, including after weight changes.
func TestPropertyKSPDGMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 14 + rng.Intn(18)
		g := testutil.RandomConnected(rng, n, n/3)
		p, err := partition.PartitionGraph(g, 5+rng.Intn(5))
		if err != nil {
			return false
		}
		x, err := dtlp.Build(p, dtlp.Config{Xi: 1 + rng.Intn(3)})
		if err != nil {
			return false
		}
		e := NewEngine(x, nil, Options{})
		// Optionally perturb weights.
		if rng.Intn(2) == 1 {
			batch := testutil.PerturbWeights(t, g, rng, 0.4, 0.5, 0.05)
			if err := x.ApplyUpdates(batch); err != nil {
				return false
			}
		}
		for q := 0; q < 3; q++ {
			s := graph.VertexID(rng.Intn(n))
			tt := graph.VertexID(rng.Intn(n))
			if s == tt {
				continue
			}
			k := 1 + rng.Intn(4)
			res, err := e.Query(s, tt, k)
			if err != nil {
				return false
			}
			want := testutil.BruteForceKSP(g, s, tt, k)
			if len(res.Paths) != len(want) {
				return false
			}
			for i := range want {
				if math.Abs(res.Paths[i].Dist-want[i].Dist) > 1e-9 {
					return false
				}
				if res.Paths[i].Validate(g) != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestResultConverged pins the Converged/BoundGap contract: a query that
// terminates through the Theorem 3 bound (or by exhausting the generator)
// reports Converged with a zero BoundGap (exact), and the same query rerun
// with an iteration cap below its natural iteration count must not pass the
// result off as exact — it either reports a positive BoundGap (near-exact
// with k paths in hand) or drops Converged (genuinely truncated below k).
func TestResultConverged(t *testing.T) {
	g := testutil.PaperGraph(t)
	_, x, e := buildEngine(t, g, 6, 2)

	res, err := e.Query(testutil.V1, testutil.V19, 4)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if !res.Converged {
		t.Fatalf("uncapped query should converge (%d iterations)", res.Iterations)
	}
	if res.BoundGap != 0 {
		t.Fatalf("uncapped query should be exact, got BoundGap %g", res.BoundGap)
	}
	if res.Iterations < 2 {
		t.Skipf("query converged in %d iteration(s); cannot exercise the cap", res.Iterations)
	}

	capped := NewEngine(x, nil, Options{MaxIterations: res.Iterations - 1})
	cres, err := capped.Query(testutil.V1, testutil.V19, 4)
	if err != nil {
		t.Fatalf("capped Query: %v", err)
	}
	if cres.Converged && cres.BoundGap == 0 {
		t.Fatalf("query capped at %d iterations must not claim an exact result", res.Iterations-1)
	}
	if !cres.Converged && cres.BoundGap != 0 {
		t.Fatalf("truncated result must not carry a bound gap, got %g", cres.BoundGap)
	}
	if cres.Iterations != res.Iterations-1 {
		t.Errorf("capped query ran %d iterations, want %d", cres.Iterations, res.Iterations-1)
	}

	// Trivial cases are exact by construction.
	same, err := e.Query(testutil.V5, testutil.V5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !same.Converged {
		t.Error("s == t query should report convergence")
	}
}

// TestStreamTiedImmediate pins the streaming emission epsilon to the one
// Theorem 3 uses: a settled path whose distance ties the next reference
// path's lower bound must stream immediately, not wait for the final flush.
//
// The graph has three tied parallel s-t paths of length 2 plus one longer
// chain, partitioned at z=2 so every vertex is a boundary vertex and the
// skeleton reference paths carry exact distances.  With k=4 the query needs
// several iterations, but after the first one a length-2 path is already in
// hand while the next reference path's bound is also exactly 2 — settled
// only under the tie-inclusive (<= bound + eps) test.  A yield that aborts
// on its first call must therefore abort the query inside iteration 1; an
// emitter that held tied paths back to the flush would run all iterations
// first.
func TestStreamTiedImmediate(t *testing.T) {
	b := graph.NewBuilder(9, false)
	s, tt := graph.VertexID(0), graph.VertexID(1)
	for _, m := range []graph.VertexID{2, 3, 4} {
		b.AddEdge(s, m, 1)
		b.AddEdge(m, tt, 1)
	}
	chain := []graph.VertexID{s, 5, 6, 7, 8, tt}
	for i := 0; i+1 < len(chain); i++ {
		b.AddEdge(chain[i], chain[i+1], 1)
	}
	g := b.Build()
	_, x, eng := buildEngine(t, g, 2, 2)
	iv := x.CurrentView()
	const k = 4
	ctx := context.Background()

	var streamed []graph.Path
	res, err := eng.StreamView(ctx, iv, s, tt, k, func(p graph.Path) error {
		streamed = append(streamed, p)
		return nil
	})
	if err != nil {
		t.Fatalf("StreamView: %v", err)
	}
	if !res.Converged || res.BoundGap != 0 {
		t.Fatalf("Converged=%v BoundGap=%g, want an exact result", res.Converged, res.BoundGap)
	}
	wantDists := []float64{2, 2, 2, 5}
	if len(res.Paths) != len(wantDists) {
		t.Fatalf("got %d paths, want %d: %v", len(res.Paths), len(wantDists), res.Paths)
	}
	for i, d := range wantDists {
		if math.Abs(res.Paths[i].Dist-d) > 1e-9 {
			t.Errorf("path %d dist = %g, want %g", i, res.Paths[i].Dist, d)
		}
	}
	// The stream is exactly Result.Paths, in order: the frozen emitted prefix
	// guarantees tied-distance late arrivals cannot displace streamed paths.
	if len(streamed) != len(res.Paths) {
		t.Fatalf("streamed %d paths, result has %d", len(streamed), len(res.Paths))
	}
	for i := range streamed {
		if !streamed[i].Equal(res.Paths[i]) {
			t.Errorf("streamed path %d = %v, result path = %v", i, streamed[i], res.Paths[i])
		}
	}
	if res.Iterations < 2 {
		t.Fatalf("query converged in %d iterations; the construction no longer separates emission from termination", res.Iterations)
	}

	sentinel := errors.New("stop streaming")
	ares, aerr := eng.StreamView(ctx, iv, s, tt, k, func(graph.Path) error { return sentinel })
	if !errors.Is(aerr, sentinel) {
		t.Fatalf("aborting yield returned %v, want the sentinel", aerr)
	}
	if ares.Iterations != 1 {
		t.Errorf("aborting yield stopped the query after %d of %d iterations; a tied-distance settled path did not stream immediately",
			ares.Iterations, res.Iterations)
	}
}

// TestStreamTiedWeightsRandom hammers the streaming contract on a
// unit-weight random graph, where nearly every pair of path distances ties:
// for every query the yielded sequence must be exactly Result.Paths in
// non-decreasing distance order, and the result must stay exact.
func TestStreamTiedWeightsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 24
	g := testutil.RandomConnected(rng, n, 30)
	unit := make([]graph.WeightUpdate, g.NumEdges())
	for e := range unit {
		unit[e] = graph.WeightUpdate{Edge: graph.EdgeID(e), NewWeight: 1}
	}
	if err := g.ApplyUpdates(unit); err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	_, x, eng := buildEngine(t, g, 5, 2)
	iv := x.CurrentView()
	const k = 6
	for trial := 0; trial < 30; trial++ {
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		var streamed []graph.Path
		res, err := eng.StreamView(context.Background(), iv, s, tt, k, func(p graph.Path) error {
			streamed = append(streamed, p)
			return nil
		})
		if err != nil {
			t.Fatalf("StreamView(%d,%d): %v", s, tt, err)
		}
		if res.BoundGap != 0 {
			t.Errorf("query(%d,%d): BoundGap=%g on a graph the engine solves exactly", s, tt, res.BoundGap)
		}
		if len(streamed) != len(res.Paths) {
			t.Fatalf("query(%d,%d): streamed %d paths, result has %d", s, tt, len(streamed), len(res.Paths))
		}
		for i := range streamed {
			if !streamed[i].Equal(res.Paths[i]) {
				t.Errorf("query(%d,%d): streamed path %d = %v, result path = %v", s, tt, i, streamed[i], res.Paths[i])
			}
			if i > 0 && streamed[i].Dist < streamed[i-1].Dist-1e-9 {
				t.Errorf("query(%d,%d): stream order regressed at %d: %g after %g", s, tt, i, streamed[i].Dist, streamed[i-1].Dist)
			}
		}
	}
}
