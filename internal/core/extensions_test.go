package core

import (
	"math"
	"testing"

	"kspdg/internal/graph"
	"kspdg/internal/testutil"
)

func TestQueryViaSingleWaypoint(t *testing.T) {
	g := testutil.PaperGraph(t)
	_, _, e := buildEngine(t, g, 6, 2)
	res, err := e.QueryVia(testutil.V1, []graph.VertexID{testutil.V9}, testutil.V19, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) == 0 {
		t.Fatal("expected constrained paths")
	}
	for i, p := range res.Paths {
		if !p.Contains(testutil.V9) {
			t.Errorf("path %d does not visit the waypoint: %v", i, p)
		}
		if p.Source() != testutil.V1 || p.Target() != testutil.V19 {
			t.Errorf("path %d endpoints wrong: %v", i, p)
		}
		if err := p.Validate(g); err != nil {
			t.Errorf("path %d invalid: %v", i, err)
		}
		if i > 0 && res.Paths[i-1].Dist > p.Dist+1e-9 {
			t.Errorf("constrained paths not sorted by distance")
		}
	}
	// The best constrained path can never beat the unconstrained shortest.
	plain, err := e.Query(testutil.V1, testutil.V19, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths[0].Dist < plain.Paths[0].Dist-1e-9 {
		t.Errorf("constrained best %g beats unconstrained best %g", res.Paths[0].Dist, plain.Paths[0].Dist)
	}
	if res.Iterations == 0 || res.Elapsed <= 0 {
		t.Errorf("aggregated stats missing: %+v", res)
	}
}

func TestQueryViaNoWaypointsEqualsQuery(t *testing.T) {
	g := testutil.PaperGraph(t)
	_, _, e := buildEngine(t, g, 6, 2)
	via, err := e.QueryVia(testutil.V4, nil, testutil.V13, 3)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := e.Query(testutil.V4, testutil.V13, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(via.Paths) != len(plain.Paths) {
		t.Fatalf("QueryVia without waypoints returned %d paths, Query %d", len(via.Paths), len(plain.Paths))
	}
	for i := range plain.Paths {
		if math.Abs(via.Paths[i].Dist-plain.Paths[i].Dist) > 1e-9 {
			t.Errorf("path %d dist %g vs %g", i, via.Paths[i].Dist, plain.Paths[i].Dist)
		}
	}
}

func TestQueryViaErrorsAndUnreachable(t *testing.T) {
	g := testutil.PaperGraph(t)
	_, _, e := buildEngine(t, g, 6, 1)
	if _, err := e.QueryVia(0, nil, 5, 0); err == nil {
		t.Errorf("k=0 should error")
	}
	if _, err := e.QueryVia(0, []graph.VertexID{0}, 5, 2); err == nil {
		t.Errorf("duplicate consecutive waypoint should error")
	}
	// Disconnected graph: constrained query returns no paths.
	b := graph.NewBuilder(6, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	dg := b.Build()
	_, _, de := buildEngine(t, dg, 3, 1)
	res, err := de.QueryVia(0, []graph.VertexID{2}, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 0 {
		t.Errorf("unreachable constrained query should return no paths")
	}
}

func TestPathOverlap(t *testing.T) {
	a := graph.Path{Vertices: []graph.VertexID{1, 2, 3, 4}}
	b := graph.Path{Vertices: []graph.VertexID{1, 5, 6, 4}}
	c := graph.Path{Vertices: []graph.VertexID{1, 2, 3, 4}}
	d := graph.Path{Vertices: []graph.VertexID{7, 8}}
	if got := PathOverlap(a, c); got != 1 {
		t.Errorf("identical paths overlap = %g, want 1", got)
	}
	if got := PathOverlap(a, d); got != 0 {
		t.Errorf("disjoint paths overlap = %g, want 0", got)
	}
	if got := PathOverlap(a, b); math.Abs(got-2.0/6.0) > 1e-9 {
		t.Errorf("overlap = %g, want 1/3", got)
	}
	if got := PathOverlap(graph.Path{}, graph.Path{}); got != 1 {
		t.Errorf("empty paths overlap = %g, want 1", got)
	}
}

func TestQueryDiverse(t *testing.T) {
	g := testutil.GridGraph(6, 6, 1)
	_, _, e := buildEngine(t, g, 8, 2)
	s, tt := graph.VertexID(0), graph.VertexID(g.NumVertices()-1)
	res, err := e.QueryDiverse(s, tt, 3, 0.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) == 0 {
		t.Fatal("expected diverse paths")
	}
	plain, _ := e.Query(s, tt, 1)
	if math.Abs(res.Paths[0].Dist-plain.Paths[0].Dist) > 1e-9 {
		t.Errorf("first diverse path must be the overall shortest")
	}
	for i := 0; i < len(res.Paths); i++ {
		for j := i + 1; j < len(res.Paths); j++ {
			if ov := PathOverlap(res.Paths[i], res.Paths[j]); ov > 0.6+1e-9 {
				t.Errorf("paths %d and %d overlap %g > 0.6", i, j, ov)
			}
		}
		if err := res.Paths[i].Validate(g); err != nil {
			t.Errorf("diverse path %d invalid: %v", i, err)
		}
	}
	// Overlap threshold 1 degenerates to plain KSP.
	loose, err := e.QueryDiverse(s, tt, 3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := e.Query(s, tt, 3)
	if len(loose.Paths) != len(want.Paths) {
		t.Errorf("maxOverlap=1 should reduce to plain KSP (%d vs %d paths)", len(loose.Paths), len(want.Paths))
	}
	// Validation errors.
	if _, err := e.QueryDiverse(s, tt, 0, 0.5, 2); err == nil {
		t.Errorf("k=0 should error")
	}
	if _, err := e.QueryDiverse(s, tt, 2, 1.5, 2); err == nil {
		t.Errorf("maxOverlap>1 should error")
	}
}
