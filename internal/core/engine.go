// Package core implements KSP-DG, the distributed filter-and-refine
// algorithm for answering k shortest path queries over dynamic road networks
// (Section 5 of the paper).
//
// Each iteration computes one more reference path on the skeleton graph Gλ
// (the filter step), asks a PartialProvider for the partial k shortest paths
// between every pair of adjacent vertices on the reference path (the refine
// step, executed in parallel across subgraphs/workers), joins the partial
// paths into candidate k shortest paths in G, and folds them into the running
// result list L.  The search stops once the distance of the k-th path in L is
// no greater than the distance of the next unexplored reference path
// (Theorem 3), which guarantees the result is exact with respect to the
// skeleton's lower bounds.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/shortest"
	"kspdg/internal/trace"
)

// Options configures query processing.
type Options struct {
	// BeamWidth bounds the number of partial combinations kept while joining
	// partial paths along a reference path.  Zero means max(2k, k+4).  Wider
	// beams make the join closer to exhaustive at higher cost.
	BeamWidth int
	// MaxIterations caps the number of reference paths examined per query as
	// a hard safety valve behind the adaptive budget.  Zero means 10000.
	MaxIterations int
	// StallWindow is the adaptive iteration budget: once the query holds k
	// results, the search terminates early with a principled near-exact
	// answer (Result.BoundGap > 0) after StallWindow consecutive iterations
	// in which the bound gap — the k-th result's distance minus the next
	// reference path's lower bound — failed to shrink by at least
	// StallImprovement (relative).  This is what turns the worst-case
	// convergence tail (thousands of reference paths with barely-rising
	// lower bounds on loosely-bounded skeletons) into a tunable latency
	// ceiling.  Zero means 64; negative disables adaptive termination,
	// leaving only the MaxIterations cap.
	StallWindow int
	// StallImprovement is the minimum relative bound-gap improvement the
	// stall detector counts as progress.  Zero means 1e-3.
	StallImprovement float64
	// Parallelism is passed to LocalProvider when the engine builds its own
	// provider; it has no effect when a custom provider is supplied.
	Parallelism int
	// DisablePairCache turns off the reuse of partial k shortest paths across
	// consecutive reference paths (the Section 5.2 optimisation).  Only used
	// by the ablation benchmarks.
	DisablePairCache bool
}

func (o Options) beam(k int) int {
	if o.BeamWidth > 0 {
		return o.BeamWidth
	}
	b := 2 * k
	if b < k+4 {
		b = k + 4
	}
	return b
}

func (o Options) maxIterations() int {
	if o.MaxIterations > 0 {
		return o.MaxIterations
	}
	return 10000
}

// stallWindow resolves the adaptive budget window; 0 means disabled.
func (o Options) stallWindow() int {
	if o.StallWindow > 0 {
		return o.StallWindow
	}
	if o.StallWindow < 0 {
		return 0
	}
	return 64
}

func (o Options) stallImprovement() float64 {
	if o.StallImprovement > 0 {
		return o.StallImprovement
	}
	return 1e-3
}

// Result is the answer to one KSP query together with execution statistics.
type Result struct {
	// Paths holds up to k shortest loopless paths in ascending distance.
	Paths []graph.Path
	// Epoch is the index epoch the query ran against (see dtlp.IndexView).
	// All paths and distances are consistent with that epoch's weights.
	Epoch uint64
	// Converged reports whether the search terminated through a principled
	// bound: the Theorem 3 test or reference-path exhaustion (the result is
	// exact, BoundGap == 0), or the adaptive iteration budget (the result is
	// near-exact within BoundGap, see below).  A false value means the
	// search was cut off while it still had fewer than k proven candidates —
	// the paths are valid but possibly truncated, and callers that need
	// completeness must check it.
	Converged bool
	// BoundGap is 0 for exact results.  When the adaptive iteration budget
	// (or the MaxIterations cap) terminated a search that already held k
	// candidate paths, BoundGap is the distance of the k-th result minus the
	// lower bound of the next unexplored reference path: every unexplored
	// candidate is at least that lower bound long, so each returned distance
	// exceeds its exact counterpart by at most BoundGap.
	BoundGap float64
	// Iterations is the number of reference paths examined (filter steps).
	Iterations int
	// PairsRefined is the number of distinct adjacent boundary pairs whose
	// partial k shortest paths were computed for this query.
	PairsRefined int
	// CandidatesGenerated counts candidate complete paths produced by joins.
	CandidatesGenerated int
	// Elapsed is the wall-clock processing time of the query.  It is set on
	// every return path, including errors and cancellations.
	Elapsed time.Duration
}

// Engine answers KSP queries using the DTLP index and a PartialProvider for
// the refine step.
type Engine struct {
	index    *dtlp.Index
	provider PartialProvider
	opts     Options
}

// NewEngine creates an engine over the given index.  If provider is nil a
// LocalProvider over the index's partition is used.
func NewEngine(index *dtlp.Index, provider PartialProvider, opts Options) *Engine {
	if provider == nil {
		provider = NewLocalProvider(index.Partition(), opts.Parallelism)
	}
	return &Engine{index: index, provider: provider, opts: opts}
}

// Index returns the engine's DTLP index.
func (e *Engine) Index() *dtlp.Index { return e.index }

// Query answers q(s, t) with the given k, returning up to k shortest loopless
// paths from s to t under the most recently published index epoch.  It is
// shorthand for QueryView(e.Index().CurrentView(), s, t, k) and is safe to
// call concurrently with index maintenance.
func (e *Engine) Query(s, t graph.VertexID, k int) (Result, error) {
	return e.QueryView(e.index.CurrentView(), s, t, k)
}

// QueryView answers q(s, t) against a specific epoch view of the index.  The
// whole query — reference path generation on the skeleton, endpoint
// attachment, and the refine step (when the provider is view-aware) — reads
// the weights frozen in the view, so concurrent ApplyUpdates calls cannot
// tear the result.
func (e *Engine) QueryView(iv *dtlp.IndexView, s, t graph.VertexID, k int) (Result, error) {
	return e.queryView(context.Background(), iv, s, t, k, nil)
}

// QueryViewCtx is QueryView under a context: the iteration loop aborts as
// soon as ctx is done, including while a refine request is in flight (the
// abandoned reply lands in a buffered channel, so nothing leaks).  This is
// what lets a serving layer stop burning worker capacity for a client that
// already hung up or blew its deadline.
func (e *Engine) QueryViewCtx(ctx context.Context, iv *dtlp.IndexView, s, t graph.VertexID, k int) (Result, error) {
	return e.queryView(ctx, iv, s, t, k, nil)
}

// StreamView answers the query like QueryViewCtx but additionally emits
// result paths incrementally through yield, in ascending distance order, as
// the search settles them: a path is yielded as soon as Theorem 3's bound
// proves no strictly shorter candidate can appear (its distance is at most
// the next reference path's lower bound, under the same epsilon the
// termination test uses, so tied-distance paths are not held back), and the
// remainder is flushed on termination.  The union of yielded paths is
// exactly Result.Paths.  A non-nil error from yield aborts the query with
// that error — a streaming HTTP handler uses this to stop computing for a
// disconnected client.
func (e *Engine) StreamView(ctx context.Context, iv *dtlp.IndexView, s, t graph.VertexID, k int, yield func(graph.Path) error) (Result, error) {
	return e.queryView(ctx, iv, s, t, k, yield)
}

// engineScratch is the pooled per-query working state: the pair cache, the
// dedup set, the running top-k list, the join buffers, and the candidate
// vertex arena.  Pooling it (plus the arena-backed joins) removes nearly all
// steady-state allocation from the iteration loop.
type engineScratch struct {
	pairCache   map[PairRequest][]graph.Path
	resultSet   graph.PathSet
	list        []graph.Path
	missing     []PairRequest
	missingSeen map[PairRequest]struct{}
	joinCur     []graph.Path
	joinNext    []graph.Path
	seqBuf      []graph.VertexID
	arena       vertexArena
}

var engineScratchPool = sync.Pool{New: func() interface{} {
	return &engineScratch{
		pairCache:   make(map[PairRequest][]graph.Path),
		missingSeen: make(map[PairRequest]struct{}),
	}
}}

func getEngineScratch() *engineScratch {
	sc := engineScratchPool.Get().(*engineScratch)
	clear(sc.pairCache)
	clear(sc.missingSeen)
	sc.resultSet.Reset()
	sc.list = sc.list[:0]
	sc.missing = sc.missing[:0]
	sc.joinCur = sc.joinCur[:0]
	sc.joinNext = sc.joinNext[:0]
	sc.arena.reset()
	return sc
}

// vertexArena hands out vertex-sequence storage for candidate paths in large
// blocks, so the join step's many short-lived candidates stop being
// individual heap allocations.  Arena memory only lives for one query; the
// final result paths are deep-copied out before the scratch is pooled again.
type vertexArena struct {
	blocks [][]graph.VertexID
	cur    int
	off    int
}

const arenaBlockLen = 4096

func (a *vertexArena) reset() { a.cur, a.off = 0, 0 }

func (a *vertexArena) alloc(n int) []graph.VertexID {
	if n > arenaBlockLen {
		return make([]graph.VertexID, n)
	}
	for {
		if a.cur == len(a.blocks) {
			a.blocks = append(a.blocks, make([]graph.VertexID, arenaBlockLen))
		}
		if a.off+n <= arenaBlockLen {
			b := a.blocks[a.cur][a.off : a.off+n : a.off+n]
			a.off += n
			return b
		}
		a.cur++
		a.off = 0
	}
}

// joinSimple concatenates prefix and seg (which must start at prefix's last
// vertex) when the joined path is simple, allocating the joined sequence from
// the arena.  The simplicity test is a quadratic scan — paths are tens of
// vertices, so scanning beats the map the former Concat+IsSimple pair built —
// and it runs before any allocation, so rejected combinations are free.
func joinSimple(a *vertexArena, prefix, seg graph.Path) (graph.Path, bool) {
	pv, sv := prefix.Vertices, seg.Vertices
	if len(pv) == 0 || len(sv) == 0 || pv[len(pv)-1] != sv[0] {
		return graph.Path{}, false
	}
	for _, u := range sv[1:] {
		for _, w := range pv {
			if u == w {
				return graph.Path{}, false
			}
		}
	}
	out := a.alloc(len(pv) + len(sv) - 1)
	copy(out, pv)
	copy(out[len(pv):], sv[1:])
	return graph.Path{Vertices: out, Dist: prefix.Dist + seg.Dist}, true
}

// insertTopK inserts p into the ascending-ordered list, keeping at most k
// entries, and reports whether p entered.  Entries below index frozen are
// settled (already streamed to a client) and are never displaced: an
// epsilon-tied candidate that would sort before them is placed at frozen
// instead, which is sound because ties are interchangeable under the
// multiset-of-lengths contract.
func insertTopK(list []graph.Path, p graph.Path, k, frozen int) ([]graph.Path, bool) {
	pos := sort.Search(len(list), func(i int) bool { return graph.ComparePaths(list[i], p) > 0 })
	if pos < frozen {
		pos = frozen
	}
	if len(list) < k {
		list = append(list, graph.Path{})
		copy(list[pos+1:], list[pos:])
		list[pos] = p
		return list, true
	}
	if pos >= k {
		return list, false
	}
	copy(list[pos+1:k], list[pos:k-1])
	list[pos] = p
	return list, true
}

func (e *Engine) queryView(ctx context.Context, iv *dtlp.IndexView, s, t graph.VertexID, k int, yield func(graph.Path) error) (res Result, err error) {
	start := time.Now()
	// Elapsed is set on every return path — error, cancellation, or success —
	// so latency stats never observe zero-duration queries.
	defer func() { res.Elapsed = time.Since(start) }()
	// qspan is the serve layer's per-query execution span (nil when the query
	// is untraced); per-iteration filter/refine child spans and the
	// termination attributes hang off it.
	qspan := trace.FromContext(ctx)
	if qspan != nil {
		defer func() {
			qspan.SetAttrInt("iterations", int64(res.Iterations))
			qspan.SetAttrInt("pairs_refined", int64(res.PairsRefined))
			qspan.SetAttr("converged", strconv.FormatBool(res.Converged))
			if res.BoundGap > 0 {
				qspan.SetAttr("bound_gap", strconv.FormatFloat(res.BoundGap, 'g', -1, 64))
			}
		}()
	}
	if iv == nil {
		iv = e.index.CurrentView()
	}
	res = Result{Epoch: iv.Epoch()}
	parent := e.index.Partition().Parent()
	if k <= 0 {
		return res, fmt.Errorf("core: k must be positive, got %d", k)
	}
	n := parent.NumVertices()
	if int(s) < 0 || int(s) >= n || int(t) < 0 || int(t) >= n {
		return res, fmt.Errorf("core: query endpoints (%d,%d) outside [0,%d)", s, t, n)
	}
	// emit forwards a settled path to the streaming observer.  A failed yield
	// on a canceled context reports the cancellation, not the write error it
	// caused downstream — callers (and the serve layer's Canceled counter)
	// care about the root cause.
	emit := func(p graph.Path) error {
		if err := yield(p); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return err
		}
		return nil
	}
	if s == t {
		res.Paths = []graph.Path{{Vertices: []graph.VertexID{s}}}
		res.Converged = true
		if yield != nil {
			if err := emit(res.Paths[0]); err != nil {
				return res, err
			}
		}
		return res, nil
	}

	view, sAug, tAug, toGlobal, err := e.buildAugmentedSkeleton(iv, s, t)
	if err != nil {
		return res, err
	}

	sc := getEngineScratch()
	defer engineScratchPool.Put(sc)

	gen := shortest.NewGenerator(view, sAug, tAug, nil)
	list := sc.list

	ref, ok := gen.Next()
	if !ok {
		// No reference path: s and t are disconnected (also under the
		// skeleton abstraction).  Return an empty (and exact) result.
		res.Converged = true
		return res, nil
	}
	// A context-aware async provider is preferred so the trace span follows
	// the refine request into the batching transport and onto the wire.
	ctxAsyncProvider, _ := e.provider.(CtxAsyncPartialProvider)
	asyncProvider, _ := e.provider.(AsyncPartialProvider)
	maxIter := e.opts.maxIterations()
	stallWindow := e.opts.stallWindow()
	minImprove := e.opts.stallImprovement()
	bestGap := math.Inf(1)
	stall := 0
	lastBound := math.NaN() // lower bound of the last unexplored reference path
	emitted := 0            // settled prefix of list already streamed through yield
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		res.Iterations++
		sc.seqBuf = toGlobal(ref, sc.seqBuf[:0])
		seq := sc.seqBuf
		missing := e.missingPairs(sc, seq)

		// Refine: with an asynchronous provider the request is issued first
		// and the next iteration's filter step (reference-path generation on
		// the skeleton) runs while it is in flight; synchronous providers
		// fetch inline, preserving the lock-step behaviour.
		var pending <-chan AsyncPartialReply
		if len(missing) > 0 {
			if ctxAsyncProvider != nil {
				pending = ctxAsyncProvider.PartialKSPAsyncCtx(ctx, iv, missing, k)
			} else if asyncProvider != nil {
				pending = asyncProvider.PartialKSPAsync(iv, missing, k)
			} else {
				rspan := qspan.Child("refine")
				rspan.SetAttrInt("iter", int64(iter))
				rspan.SetAttrInt("pairs", int64(len(missing)))
				partials, err := e.partialKSP(iv, missing, k)
				rspan.Finish()
				if err != nil {
					return res, err
				}
				for _, pr := range missing {
					sc.pairCache[pr] = partials[pr]
				}
			}
			res.PairsRefined += len(missing)
		}

		// Filter of iteration i+1, overlapped with the in-flight refine of
		// iteration i whenever the provider is asynchronous.
		fspan := qspan.Child("filter")
		fspan.SetAttrInt("iter", int64(iter))
		next, okNext := gen.Next()
		fspan.Finish()

		if pending != nil {
			// The refine span measures only the post-overlap wait: the part of
			// the in-flight refine the filter step could not hide.
			rspan := qspan.Child("refine")
			rspan.SetAttrInt("iter", int64(iter))
			rspan.SetAttrInt("pairs", int64(len(missing)))
			// The wait is cancelable: reply channels are buffered, so an
			// abandoned reply is delivered to nobody and the sender moves on.
			select {
			case reply := <-pending:
				rspan.Finish()
				if reply.Err != nil {
					return res, reply.Err
				}
				for _, pr := range missing {
					sc.pairCache[pr] = reply.Paths[pr]
				}
			case <-ctx.Done():
				rspan.Finish()
				return res, ctx.Err()
			}
		}

		candidates := e.joinCandidates(sc, seq, k, &res)
		for _, c := range candidates {
			if !sc.resultSet.Add(c) {
				continue
			}
			list, _ = insertTopK(list, c, k, emitted)
		}

		if !okNext {
			// Every reference path was examined: the search space is
			// exhausted, so the result is exact.
			res.Converged = true
			break
		}
		lastBound = next.Dist
		if len(list) >= k && list[k-1].Dist <= next.Dist+1e-9 {
			// Theorem 3 termination: the k-th result is at least as short as
			// the next reference path's lower bound.
			res.Converged = true
			break
		}
		if stallWindow > 0 && len(list) >= k {
			// Adaptive iteration budget: every unexplored candidate is at
			// least next.Dist long, so the k results in hand are within
			// gap of exact.  When that gap stops shrinking meaningfully for
			// a whole window, further iterations are near-pure latency —
			// terminate with the bound instead of spinning toward the cap.
			gap := list[k-1].Dist - next.Dist
			if gap < bestGap*(1-minImprove) {
				bestGap, stall = gap, 0
			} else if stall++; stall >= stallWindow {
				res.Converged = true
				res.BoundGap = gap
				break
			}
		}
		if yield != nil {
			// Stream the settled prefix: every future candidate joins along a
			// reference path of lower-bound distance >= next.Dist, so entries
			// at or below that bound (same epsilon as the Theorem 3 test, so
			// tied-distance paths are not held back) can no longer be beaten
			// by a strictly shorter candidate.  insertTopK freezes the
			// emitted prefix against epsilon-tied reorderings.
			for emitted < len(list) && list[emitted].Dist <= next.Dist+1e-9 {
				if err := emit(list[emitted].Clone()); err != nil {
					return res, err
				}
				emitted++
			}
		}
		ref = next
	}
	if !res.Converged && len(list) >= k && !math.IsNaN(lastBound) {
		// The MaxIterations safety valve fired with k candidates in hand:
		// report the same principled near-exact bound the adaptive budget
		// would have, instead of a bare truncation.
		res.Converged = true
		res.BoundGap = math.Max(list[k-1].Dist-lastBound, 0)
	}
	// The working list is arena/scratch-backed; deep-copy the winners so the
	// scratch can be pooled while the result outlives the query.
	res.Paths = make([]graph.Path, len(list))
	for i, p := range list {
		res.Paths[i] = p.Clone()
	}
	sc.list = list[:0]
	if yield != nil {
		for ; emitted < len(res.Paths); emitted++ {
			if err := emit(res.Paths[emitted]); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}

// buildAugmentedSkeleton maps the query endpoints onto the skeleton graph,
// attaching non-boundary endpoints per Section 5.3.  It returns the weighted
// view to search, the augmented source/target ids, and a translator from a
// path over augmented ids to global vertex ids (appending into the caller's
// buffer).  All weights — the skeleton MBDs and the attachment lower bounds —
// come from the epoch view.
func (e *Engine) buildAugmentedSkeleton(iv *dtlp.IndexView, s, t graph.VertexID) (graph.WeightedView, graph.VertexID, graph.VertexID, func(graph.Path, []graph.VertexID) []graph.VertexID, error) {
	skel := iv.Skeleton()
	aug := newAugmentedSkeleton(iv.SkeletonWeights())

	extraGlobal := make(map[graph.VertexID]graph.VertexID) // augmented id -> global id

	resolve := func(v graph.VertexID, bounds map[graph.VertexID]float64) (graph.VertexID, error) {
		if id, ok := skel.SkelID(v); ok {
			return id, nil
		}
		id := aug.addVertex()
		extraGlobal[id] = v
		attached := 0
		for bv, d := range bounds {
			if sb, ok := skel.SkelID(bv); ok && !math.IsInf(d, 1) {
				aug.addEdge(id, sb, d)
				attached++
			}
		}
		return id, nil
	}

	sAug, err := resolve(s, iv.BoundaryLowerBounds(s))
	if err != nil {
		return nil, 0, 0, nil, err
	}
	var tAug graph.VertexID
	if id, ok := skel.SkelID(t); ok {
		tAug = id
	} else {
		id := aug.addVertex()
		extraGlobal[id] = t
		for bv, d := range iv.BoundaryLowerBoundsTo(t) {
			if sb, ok := skel.SkelID(bv); ok && !math.IsInf(d, 1) {
				// Edge direction boundary -> t for directed graphs; for
				// undirected graphs addEdge installs both directions anyway.
				aug.addEdge(sb, id, d)
			}
		}
		tAug = id
	}
	// Two non-boundary endpoints sharing a subgraph additionally need a
	// direct skeleton edge so purely-local answers are reachable.
	if _, sBound := skel.SkelID(s); !sBound {
		if _, tBound := skel.SkelID(t); !tBound {
			if d := iv.WithinSubgraphDistance(s, t); !math.IsInf(d, 1) {
				aug.addEdge(sAug, tAug, d)
			}
		}
	}

	toGlobal := func(p graph.Path, buf []graph.VertexID) []graph.VertexID {
		for _, v := range p.Vertices {
			if g, ok := extraGlobal[v]; ok {
				buf = append(buf, g)
			} else {
				buf = append(buf, skel.GlobalID(v))
			}
		}
		return buf
	}
	return aug, sAug, tAug, toGlobal, nil
}

// missingPairs returns the adjacent pairs of the reference sequence whose
// partial k shortest paths are not already in the query-local cache (the
// Section 5.2 reuse optimisation; DisablePairCache forces a full refetch).
// The returned slice is scratch-backed and only valid until the next call.
func (e *Engine) missingPairs(sc *engineScratch, seq []graph.VertexID) []PairRequest {
	missing := sc.missing[:0]
	clear(sc.missingSeen)
	for i := 0; i+1 < len(seq); i++ {
		pr := PairRequest{A: seq[i], B: seq[i+1]}
		if _, dup := sc.missingSeen[pr]; dup {
			continue
		}
		if _, ok := sc.pairCache[pr]; !ok || e.opts.DisablePairCache {
			sc.missingSeen[pr] = struct{}{}
			missing = append(missing, pr)
		}
	}
	sc.missing = missing
	return missing
}

// joinCandidates implements the join half of Algorithm 4: with every adjacent
// pair's partial paths already in the scratch pair cache, it joins them
// segment by segment into complete candidate paths from s to t.  The returned
// slice and the candidates' vertex sequences are scratch/arena-backed and only
// valid until the next call.
func (e *Engine) joinCandidates(sc *engineScratch, seq []graph.VertexID, k int, res *Result) []graph.Path {
	if len(seq) < 2 {
		return nil
	}
	beam := e.opts.beam(k)
	// Join segment by segment, keeping the `beam` shortest simple partial
	// combinations (Algorithm 4 keeps k; a slightly wider beam compensates
	// for combinations discarded due to vertex overlaps).  The two join
	// buffers are reused across segments and across iterations.
	current := sc.joinCur[:0]
	first := sc.pairCache[PairRequest{A: seq[0], B: seq[1]}]
	if len(first) == 0 {
		return nil
	}
	current = append(current, first...)
	for i := 1; i+1 < len(seq); i++ {
		segs := sc.pairCache[PairRequest{A: seq[i], B: seq[i+1]}]
		if len(segs) == 0 {
			sc.joinCur = current[:0]
			return nil
		}
		next := sc.joinNext[:0]
		for _, prefix := range current {
			for _, seg := range segs {
				joined, ok := joinSimple(&sc.arena, prefix, seg)
				if !ok {
					continue
				}
				next = append(next, joined)
			}
		}
		if len(next) == 0 {
			sc.joinCur, sc.joinNext = current[:0], next
			return nil
		}
		sort.Slice(next, func(a, b int) bool { return graph.ComparePaths(next[a], next[b]) < 0 })
		if len(next) > beam {
			next = next[:beam]
		}
		// Swap buffers: next becomes current, current's storage is reused
		// for the following segment's combinations.
		sc.joinNext = current
		current = next
	}
	sc.joinCur = current
	res.CandidatesGenerated += len(current)
	if len(current) > k {
		current = current[:k]
	}
	return current
}

// partialKSP dispatches the refine step to the provider, preferring the
// epoch-consistent path when the provider supports it.
func (e *Engine) partialKSP(iv *dtlp.IndexView, pairs []PairRequest, k int) (map[PairRequest][]graph.Path, error) {
	if vp, ok := e.provider.(ViewProvider); ok && iv != nil {
		return vp.PartialKSPView(iv, pairs, k)
	}
	return e.provider.PartialKSP(pairs, k)
}
