// Package core implements KSP-DG, the distributed filter-and-refine
// algorithm for answering k shortest path queries over dynamic road networks
// (Section 5 of the paper).
//
// Each iteration computes one more reference path on the skeleton graph Gλ
// (the filter step), asks a PartialProvider for the partial k shortest paths
// between every pair of adjacent vertices on the reference path (the refine
// step, executed in parallel across subgraphs/workers), joins the partial
// paths into candidate k shortest paths in G, and folds them into the running
// result list L.  The search stops once the distance of the k-th path in L is
// no greater than the distance of the next unexplored reference path
// (Theorem 3), which guarantees the result is exact with respect to the
// skeleton's lower bounds.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/shortest"
)

// Options configures query processing.
type Options struct {
	// BeamWidth bounds the number of partial combinations kept while joining
	// partial paths along a reference path.  Zero means max(2k, k+4).  Wider
	// beams make the join closer to exhaustive at higher cost.
	BeamWidth int
	// MaxIterations caps the number of reference paths examined per query as
	// a safety valve.  Zero means 10000.
	MaxIterations int
	// Parallelism is passed to LocalProvider when the engine builds its own
	// provider; it has no effect when a custom provider is supplied.
	Parallelism int
	// DisablePairCache turns off the reuse of partial k shortest paths across
	// consecutive reference paths (the Section 5.2 optimisation).  Only used
	// by the ablation benchmarks.
	DisablePairCache bool
}

func (o Options) beam(k int) int {
	if o.BeamWidth > 0 {
		return o.BeamWidth
	}
	b := 2 * k
	if b < k+4 {
		b = k + 4
	}
	return b
}

func (o Options) maxIterations() int {
	if o.MaxIterations > 0 {
		return o.MaxIterations
	}
	return 10000
}

// Result is the answer to one KSP query together with execution statistics.
type Result struct {
	// Paths holds up to k shortest loopless paths in ascending distance.
	Paths []graph.Path
	// Epoch is the index epoch the query ran against (see dtlp.IndexView).
	// All paths and distances are consistent with that epoch's weights.
	Epoch uint64
	// Converged reports whether the search terminated through the Theorem 3
	// bound (or by exhausting all reference paths), which is what guarantees
	// the result is exact.  A false value means the MaxIterations safety cap
	// fired first and the paths — while valid — may be silently truncated:
	// callers that need exactness must check it.
	Converged bool
	// Iterations is the number of reference paths examined (filter steps).
	Iterations int
	// PairsRefined is the number of distinct adjacent boundary pairs whose
	// partial k shortest paths were computed for this query.
	PairsRefined int
	// CandidatesGenerated counts candidate complete paths produced by joins.
	CandidatesGenerated int
	// Elapsed is the wall-clock processing time of the query.
	Elapsed time.Duration
}

// Engine answers KSP queries using the DTLP index and a PartialProvider for
// the refine step.
type Engine struct {
	index    *dtlp.Index
	provider PartialProvider
	opts     Options
}

// NewEngine creates an engine over the given index.  If provider is nil a
// LocalProvider over the index's partition is used.
func NewEngine(index *dtlp.Index, provider PartialProvider, opts Options) *Engine {
	if provider == nil {
		provider = NewLocalProvider(index.Partition(), opts.Parallelism)
	}
	return &Engine{index: index, provider: provider, opts: opts}
}

// Index returns the engine's DTLP index.
func (e *Engine) Index() *dtlp.Index { return e.index }

// Query answers q(s, t) with the given k, returning up to k shortest loopless
// paths from s to t under the most recently published index epoch.  It is
// shorthand for QueryView(e.Index().CurrentView(), s, t, k) and is safe to
// call concurrently with index maintenance.
func (e *Engine) Query(s, t graph.VertexID, k int) (Result, error) {
	return e.QueryView(e.index.CurrentView(), s, t, k)
}

// QueryView answers q(s, t) against a specific epoch view of the index.  The
// whole query — reference path generation on the skeleton, endpoint
// attachment, and the refine step (when the provider is view-aware) — reads
// the weights frozen in the view, so concurrent ApplyUpdates calls cannot
// tear the result.
func (e *Engine) QueryView(iv *dtlp.IndexView, s, t graph.VertexID, k int) (Result, error) {
	return e.queryView(context.Background(), iv, s, t, k, nil)
}

// QueryViewCtx is QueryView under a context: the iteration loop aborts as
// soon as ctx is done, including while a refine request is in flight (the
// abandoned reply lands in a buffered channel, so nothing leaks).  This is
// what lets a serving layer stop burning worker capacity for a client that
// already hung up or blew its deadline.
func (e *Engine) QueryViewCtx(ctx context.Context, iv *dtlp.IndexView, s, t graph.VertexID, k int) (Result, error) {
	return e.queryView(ctx, iv, s, t, k, nil)
}

// StreamView answers the query like QueryViewCtx but additionally emits
// result paths incrementally through yield, in ascending distance order, as
// the search settles them: a path is yielded as soon as Theorem 3's bound
// proves no future candidate can displace it (its distance is strictly below
// the next reference path's lower bound), and the remainder is flushed on
// termination.  The union of yielded paths is exactly Result.Paths.  A
// non-nil error from yield aborts the query with that error — a streaming
// HTTP handler uses this to stop computing for a disconnected client.
func (e *Engine) StreamView(ctx context.Context, iv *dtlp.IndexView, s, t graph.VertexID, k int, yield func(graph.Path) error) (Result, error) {
	return e.queryView(ctx, iv, s, t, k, yield)
}

func (e *Engine) queryView(ctx context.Context, iv *dtlp.IndexView, s, t graph.VertexID, k int, yield func(graph.Path) error) (Result, error) {
	start := time.Now()
	if iv == nil {
		iv = e.index.CurrentView()
	}
	res := Result{Epoch: iv.Epoch()}
	parent := e.index.Partition().Parent()
	if k <= 0 {
		return res, fmt.Errorf("core: k must be positive, got %d", k)
	}
	n := parent.NumVertices()
	if int(s) < 0 || int(s) >= n || int(t) < 0 || int(t) >= n {
		return res, fmt.Errorf("core: query endpoints (%d,%d) outside [0,%d)", s, t, n)
	}
	if s == t {
		res.Paths = []graph.Path{{Vertices: []graph.VertexID{s}}}
		res.Converged = true
		res.Elapsed = time.Since(start)
		if yield != nil {
			if err := yield(res.Paths[0]); err != nil {
				return res, err
			}
		}
		return res, nil
	}

	view, sAug, tAug, toGlobal, err := e.buildAugmentedSkeleton(iv, s, t)
	if err != nil {
		return res, err
	}

	gen := shortest.NewGenerator(view, sAug, tAug, nil)
	pairCache := make(map[PairRequest][]graph.Path)
	resultSet := make(map[string]bool)
	var list []graph.Path

	ref, ok := gen.Next()
	if !ok {
		// No reference path: s and t are disconnected (also under the
		// skeleton abstraction).  Return an empty (and exact) result.
		res.Converged = true
		res.Elapsed = time.Since(start)
		return res, nil
	}
	asyncProvider, _ := e.provider.(AsyncPartialProvider)
	maxIter := e.opts.maxIterations()
	emitted := 0 // prefix of list already streamed through yield
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		res.Iterations++
		seq := toGlobal(ref)
		missing := e.missingPairs(seq, pairCache)

		// Refine: with an asynchronous provider the request is issued first
		// and the next iteration's filter step (reference-path generation on
		// the skeleton) runs while it is in flight; synchronous providers
		// fetch inline, preserving the lock-step behaviour.
		var pending <-chan AsyncPartialReply
		if len(missing) > 0 {
			if asyncProvider != nil {
				pending = asyncProvider.PartialKSPAsync(iv, missing, k)
			} else {
				partials, err := e.partialKSP(iv, missing, k)
				if err != nil {
					return res, err
				}
				for _, pr := range missing {
					pairCache[pr] = partials[pr]
				}
			}
			res.PairsRefined += len(missing)
		}

		// Filter of iteration i+1, overlapped with the in-flight refine of
		// iteration i whenever the provider is asynchronous.
		next, okNext := gen.Next()

		if pending != nil {
			// The wait is cancelable: reply channels are buffered, so an
			// abandoned reply is delivered to nobody and the sender moves on.
			select {
			case reply := <-pending:
				if reply.Err != nil {
					return res, reply.Err
				}
				for _, pr := range missing {
					pairCache[pr] = reply.Paths[pr]
				}
			case <-ctx.Done():
				return res, ctx.Err()
			}
		}

		candidates := e.joinCandidates(seq, k, pairCache, &res)
		for _, c := range candidates {
			key := graph.PathKey(c)
			if resultSet[key] {
				continue
			}
			resultSet[key] = true
			list = append(list, c)
		}
		sort.Slice(list, func(i, j int) bool { return graph.ComparePaths(list[i], list[j]) < 0 })
		if len(list) > k {
			list = list[:k]
		}

		if !okNext {
			// Every reference path was examined: the search space is
			// exhausted, so the result is exact.
			res.Converged = true
			break
		}
		if len(list) >= k && list[k-1].Dist <= next.Dist+1e-9 {
			// Theorem 3 termination: the k-th result is at least as short as
			// the next reference path's lower bound.
			res.Converged = true
			break
		}
		if yield != nil {
			// Stream the settled prefix: every future candidate joins along a
			// reference path of lower-bound distance >= next.Dist, so entries
			// strictly below that bound can no longer be displaced or
			// reordered (sorting is by distance first) — they are final.
			for emitted < len(list) && list[emitted].Dist < next.Dist-1e-9 {
				if err := yield(list[emitted]); err != nil {
					return res, err
				}
				emitted++
			}
		}
		ref = next
	}
	res.Paths = list
	res.Elapsed = time.Since(start)
	if yield != nil {
		for ; emitted < len(list); emitted++ {
			if err := yield(list[emitted]); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}

// buildAugmentedSkeleton maps the query endpoints onto the skeleton graph,
// attaching non-boundary endpoints per Section 5.3.  It returns the weighted
// view to search, the augmented source/target ids, and a translator from a
// path over augmented ids to global vertex ids.  All weights — the skeleton
// MBDs and the attachment lower bounds — come from the epoch view.
func (e *Engine) buildAugmentedSkeleton(iv *dtlp.IndexView, s, t graph.VertexID) (graph.WeightedView, graph.VertexID, graph.VertexID, func(graph.Path) []graph.VertexID, error) {
	skel := iv.Skeleton()
	aug := newAugmentedSkeleton(iv.SkeletonWeights())

	extraGlobal := make(map[graph.VertexID]graph.VertexID) // augmented id -> global id

	resolve := func(v graph.VertexID, bounds map[graph.VertexID]float64) (graph.VertexID, error) {
		if id, ok := skel.SkelID(v); ok {
			return id, nil
		}
		id := aug.addVertex()
		extraGlobal[id] = v
		attached := 0
		for bv, d := range bounds {
			if sb, ok := skel.SkelID(bv); ok && !math.IsInf(d, 1) {
				aug.addEdge(id, sb, d)
				attached++
			}
		}
		return id, nil
	}

	sAug, err := resolve(s, iv.BoundaryLowerBounds(s))
	if err != nil {
		return nil, 0, 0, nil, err
	}
	var tAug graph.VertexID
	if id, ok := skel.SkelID(t); ok {
		tAug = id
	} else {
		id := aug.addVertex()
		extraGlobal[id] = t
		for bv, d := range iv.BoundaryLowerBoundsTo(t) {
			if sb, ok := skel.SkelID(bv); ok && !math.IsInf(d, 1) {
				// Edge direction boundary -> t for directed graphs; for
				// undirected graphs addEdge installs both directions anyway.
				aug.addEdge(sb, id, d)
			}
		}
		tAug = id
	}
	// Two non-boundary endpoints sharing a subgraph additionally need a
	// direct skeleton edge so purely-local answers are reachable.
	if _, sBound := skel.SkelID(s); !sBound {
		if _, tBound := skel.SkelID(t); !tBound {
			if d := iv.WithinSubgraphDistance(s, t); !math.IsInf(d, 1) {
				aug.addEdge(sAug, tAug, d)
			}
		}
	}

	toGlobal := func(p graph.Path) []graph.VertexID {
		out := make([]graph.VertexID, len(p.Vertices))
		for i, v := range p.Vertices {
			if g, ok := extraGlobal[v]; ok {
				out[i] = g
			} else {
				out[i] = skel.GlobalID(v)
			}
		}
		return out
	}
	return aug, sAug, tAug, toGlobal, nil
}

// missingPairs returns the adjacent pairs of the reference sequence whose
// partial k shortest paths are not already in the query-local cache (the
// Section 5.2 reuse optimisation; DisablePairCache forces a full refetch).
func (e *Engine) missingPairs(seq []graph.VertexID, cache map[PairRequest][]graph.Path) []PairRequest {
	var missing []PairRequest
	seen := make(map[PairRequest]bool)
	for i := 0; i+1 < len(seq); i++ {
		pr := PairRequest{A: seq[i], B: seq[i+1]}
		if seen[pr] {
			continue
		}
		if _, ok := cache[pr]; !ok || e.opts.DisablePairCache {
			seen[pr] = true
			missing = append(missing, pr)
		}
	}
	return missing
}

// joinCandidates implements the join half of Algorithm 4: with every adjacent
// pair's partial paths already in the cache, it joins them segment by segment
// into complete candidate paths from s to t.
func (e *Engine) joinCandidates(seq []graph.VertexID, k int, cache map[PairRequest][]graph.Path, res *Result) []graph.Path {
	if len(seq) < 2 {
		return nil
	}
	beam := e.opts.beam(k)
	// Join segment by segment, keeping the `beam` shortest simple partial
	// combinations (Algorithm 4 keeps k; a slightly wider beam compensates
	// for combinations discarded due to vertex overlaps).
	current := []graph.Path{}
	first := cache[PairRequest{A: seq[0], B: seq[1]}]
	if len(first) == 0 {
		return nil
	}
	current = append(current, first...)
	for i := 1; i+1 < len(seq); i++ {
		segs := cache[PairRequest{A: seq[i], B: seq[i+1]}]
		if len(segs) == 0 {
			return nil
		}
		var next []graph.Path
		for _, prefix := range current {
			for _, seg := range segs {
				joined, err := prefix.Concat(seg)
				if err != nil || !joined.IsSimple() {
					continue
				}
				next = append(next, joined)
			}
		}
		if len(next) == 0 {
			return nil
		}
		sort.Slice(next, func(a, b int) bool { return graph.ComparePaths(next[a], next[b]) < 0 })
		if len(next) > beam {
			next = next[:beam]
		}
		current = next
	}
	res.CandidatesGenerated += len(current)
	if len(current) > k {
		current = current[:k]
	}
	return current
}

// partialKSP dispatches the refine step to the provider, preferring the
// epoch-consistent path when the provider supports it.
func (e *Engine) partialKSP(iv *dtlp.IndexView, pairs []PairRequest, k int) (map[PairRequest][]graph.Path, error) {
	if vp, ok := e.provider.(ViewProvider); ok && iv != nil {
		return vp.PartialKSPView(iv, pairs, k)
	}
	return e.provider.PartialKSP(pairs, k)
}
