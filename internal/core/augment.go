package core

import (
	"kspdg/internal/graph"
)

// augmentedSkeleton is a read-only view of the skeleton graph extended with
// up to two temporary vertices representing non-boundary query endpoints
// (Section 5.3).  The extra vertices receive ids immediately after the
// skeleton's own vertex range and are connected to the boundary vertices of
// their subgraphs with lower-bound weights; two non-boundary endpoints that
// share a subgraph additionally get a direct edge.
//
// The view implements graph.WeightedView so the unmodified shortest-path
// machinery can run on it.
type augmentedSkeleton struct {
	base graph.WeightedView

	extraVerts int
	// extraAdj holds the additional arcs for every vertex that gains arcs
	// (both the new vertices and the base vertices they attach to).
	extraAdj map[graph.VertexID][]graph.Arc
	// extraEdges describes the added edges; edge ids start at base.NumEdges().
	extraEdges []augEdge
	// mergedAdj caches base+extra adjacency for base vertices that gained
	// arcs, so Neighbors stays allocation-free per call.
	mergedAdj map[graph.VertexID][]graph.Arc
}

type augEdge struct {
	u, v graph.VertexID
	w    float64
}

// newAugmentedSkeleton wraps base with room for extra vertices.
func newAugmentedSkeleton(base graph.WeightedView) *augmentedSkeleton {
	return &augmentedSkeleton{
		base:      base,
		extraAdj:  make(map[graph.VertexID][]graph.Arc),
		mergedAdj: make(map[graph.VertexID][]graph.Arc),
	}
}

// addVertex reserves a new augmented vertex and returns its id.
func (a *augmentedSkeleton) addVertex() graph.VertexID {
	id := graph.VertexID(a.base.NumVertices() + a.extraVerts)
	a.extraVerts++
	return id
}

// addEdge adds an edge between u and v with weight w.  For undirected base
// graphs the edge is traversable both ways.
func (a *augmentedSkeleton) addEdge(u, v graph.VertexID, w float64) graph.EdgeID {
	id := graph.EdgeID(a.base.NumEdges() + len(a.extraEdges))
	a.extraEdges = append(a.extraEdges, augEdge{u: u, v: v, w: w})
	a.extraAdj[u] = append(a.extraAdj[u], graph.Arc{To: v, Edge: id})
	if !a.base.Directed() {
		a.extraAdj[v] = append(a.extraAdj[v], graph.Arc{To: u, Edge: id})
	}
	// Invalidate merged adjacency caches for the touched vertices.
	delete(a.mergedAdj, u)
	delete(a.mergedAdj, v)
	return id
}

func (a *augmentedSkeleton) Directed() bool { return a.base.Directed() }

func (a *augmentedSkeleton) NumVertices() int { return a.base.NumVertices() + a.extraVerts }

func (a *augmentedSkeleton) NumEdges() int { return a.base.NumEdges() + len(a.extraEdges) }

func (a *augmentedSkeleton) Neighbors(v graph.VertexID) []graph.Arc {
	if int(v) >= a.base.NumVertices() {
		return a.extraAdj[v]
	}
	extra, ok := a.extraAdj[v]
	if !ok {
		return a.base.Neighbors(v)
	}
	if merged, ok := a.mergedAdj[v]; ok {
		return merged
	}
	baseArcs := a.base.Neighbors(v)
	merged := make([]graph.Arc, 0, len(baseArcs)+len(extra))
	merged = append(merged, baseArcs...)
	merged = append(merged, extra...)
	a.mergedAdj[v] = merged
	return merged
}

func (a *augmentedSkeleton) Weight(e graph.EdgeID) float64 {
	if int(e) < a.base.NumEdges() {
		return a.base.Weight(e)
	}
	return a.extraEdges[int(e)-a.base.NumEdges()].w
}

func (a *augmentedSkeleton) InitialWeight(e graph.EdgeID) float64 {
	if int(e) < a.base.NumEdges() {
		return a.base.InitialWeight(e)
	}
	return a.extraEdges[int(e)-a.base.NumEdges()].w
}

func (a *augmentedSkeleton) EdgeEndpoints(e graph.EdgeID) graph.Endpoints {
	if int(e) < a.base.NumEdges() {
		return a.base.EdgeEndpoints(e)
	}
	ae := a.extraEdges[int(e)-a.base.NumEdges()]
	return graph.Endpoints{U: ae.u, V: ae.v}
}

func (a *augmentedSkeleton) EdgeBetween(u, v graph.VertexID) (graph.EdgeID, bool) {
	// Extra arcs first (they are few), then the base graph.
	for _, arc := range a.extraAdj[u] {
		if arc.To == v {
			return arc.Edge, true
		}
	}
	if int(u) < a.base.NumVertices() && int(v) < a.base.NumVertices() {
		return a.base.EdgeBetween(u, v)
	}
	return graph.NoEdge, false
}

var _ graph.WeightedView = (*augmentedSkeleton)(nil)
