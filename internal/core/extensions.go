package core

import (
	"fmt"
	"sort"

	"kspdg/internal/graph"
)

// This file implements the query variants the paper lists as future work in
// Section 8: KSP queries constrained to pass through designated vertices, and
// KSP queries whose answers must be mutually diverse.  Both are built on top
// of the standard KSP-DG iteration, so they run unchanged on the local and
// distributed providers.

// QueryVia answers a constrained KSP query: the k shortest loopless paths
// from s to t that visit every waypoint, in order.  Each leg (s→w1, w1→w2,
// ..., wn→t) is answered with a KSP-DG query and the legs are joined keeping
// the k shortest simple combinations, mirroring how candidateKSP joins
// partial paths along a reference path.
func (e *Engine) QueryVia(s graph.VertexID, waypoints []graph.VertexID, t graph.VertexID, k int) (Result, error) {
	var agg Result
	if k <= 0 {
		return agg, fmt.Errorf("core: k must be positive, got %d", k)
	}
	stops := make([]graph.VertexID, 0, len(waypoints)+2)
	stops = append(stops, s)
	stops = append(stops, waypoints...)
	stops = append(stops, t)
	for i := 0; i+1 < len(stops); i++ {
		if stops[i] == stops[i+1] {
			return agg, fmt.Errorf("core: consecutive duplicate waypoint %d", stops[i])
		}
	}
	beam := e.opts.beam(k)
	var combos []graph.Path
	for i := 0; i+1 < len(stops); i++ {
		legRes, err := e.Query(stops[i], stops[i+1], k)
		if err != nil {
			return agg, err
		}
		agg.Iterations += legRes.Iterations
		agg.PairsRefined += legRes.PairsRefined
		agg.CandidatesGenerated += legRes.CandidatesGenerated
		agg.Elapsed += legRes.Elapsed
		if len(legRes.Paths) == 0 {
			// One leg is unreachable: the whole constrained query has no
			// answer.
			return agg, nil
		}
		if combos == nil {
			combos = append(combos, legRes.Paths...)
			continue
		}
		var next []graph.Path
		for _, prefix := range combos {
			for _, leg := range legRes.Paths {
				joined, err := prefix.Concat(leg)
				if err != nil || !joined.IsSimple() {
					continue
				}
				next = append(next, joined)
			}
		}
		if len(next) == 0 {
			return agg, nil
		}
		sort.Slice(next, func(a, b int) bool { return graph.ComparePaths(next[a], next[b]) < 0 })
		if len(next) > beam {
			next = next[:beam]
		}
		combos = next
	}
	if len(combos) > k {
		combos = combos[:k]
	}
	agg.Paths = combos
	return agg, nil
}

// PathOverlap returns the fraction of shared vertices between two paths
// (Jaccard similarity of their vertex sets).  It is the diversity measure
// used by QueryDiverse.
func PathOverlap(a, b graph.Path) float64 {
	if len(a.Vertices) == 0 && len(b.Vertices) == 0 {
		return 1
	}
	set := make(map[graph.VertexID]bool, len(a.Vertices))
	for _, v := range a.Vertices {
		set[v] = true
	}
	inter := 0
	union := len(set)
	seen := make(map[graph.VertexID]bool, len(b.Vertices))
	for _, v := range b.Vertices {
		if seen[v] {
			continue
		}
		seen[v] = true
		if set[v] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// QueryDiverse answers a diversity-constrained KSP query: up to k shortest
// loopless paths from s to t such that the vertex overlap (Jaccard
// similarity) between any two returned paths is at most maxOverlap.  The
// shortest path is always included; subsequent candidates are admitted
// greedily in ascending distance order.  candidateFactor controls how many
// ordinary shortest paths are examined (candidateFactor*k, minimum 2k).
func (e *Engine) QueryDiverse(s, t graph.VertexID, k int, maxOverlap float64, candidateFactor int) (Result, error) {
	var res Result
	if k <= 0 {
		return res, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if maxOverlap < 0 || maxOverlap > 1 {
		return res, fmt.Errorf("core: maxOverlap must be in [0,1], got %g", maxOverlap)
	}
	if candidateFactor < 2 {
		candidateFactor = 2
	}
	inner, err := e.Query(s, t, candidateFactor*k)
	if err != nil {
		return res, err
	}
	res.Iterations = inner.Iterations
	res.PairsRefined = inner.PairsRefined
	res.CandidatesGenerated = inner.CandidatesGenerated
	res.Elapsed = inner.Elapsed
	for _, cand := range inner.Paths {
		ok := true
		for _, chosen := range res.Paths {
			if PathOverlap(cand, chosen) > maxOverlap {
				ok = false
				break
			}
		}
		if ok {
			res.Paths = append(res.Paths, cand)
			if len(res.Paths) == k {
				break
			}
		}
	}
	return res, nil
}
