package core

import (
	"sync/atomic"
	"testing"

	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/testutil"
)

// asyncLocalProvider exposes a LocalProvider through the asynchronous refine
// interface, counting the async dispatches so tests can prove the engine
// actually took the overlapped path.
type asyncLocalProvider struct {
	lp    *LocalProvider
	calls atomic.Int64
}

func (ap *asyncLocalProvider) PartialKSP(pairs []PairRequest, k int) (map[PairRequest][]graph.Path, error) {
	return ap.lp.PartialKSP(pairs, k)
}

func (ap *asyncLocalProvider) PartialKSPAsync(iv *dtlp.IndexView, pairs []PairRequest, k int) <-chan AsyncPartialReply {
	ap.calls.Add(1)
	ch := make(chan AsyncPartialReply, 1)
	go func() {
		var paths map[PairRequest][]graph.Path
		var err error
		if iv != nil {
			paths, err = ap.lp.PartialKSPView(iv, pairs, k)
		} else {
			paths, err = ap.lp.PartialKSP(pairs, k)
		}
		ch <- AsyncPartialReply{Paths: paths, Err: err}
	}()
	return ch
}

// TestAsyncProviderMatchesSync runs the same queries through the synchronous
// and the asynchronous refine path: the overlapped pipeline must change
// nothing about the answers (and must actually be exercised).
func TestAsyncProviderMatchesSync(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, x, syncEngine := buildEngine(t, g, 6, 2)
	ap := &asyncLocalProvider{lp: NewLocalProvider(p, 0)}
	asyncEngine := NewEngine(x, ap, Options{})

	cases := []struct {
		s, t graph.VertexID
		k    int
	}{
		{testutil.V1, testutil.V19, 3},
		{testutil.V4, testutil.V13, 2},
		{testutil.V2, testutil.V17, 4},
		{testutil.V1, testutil.V1, 2},
	}
	for _, cse := range cases {
		want, err := syncEngine.Query(cse.s, cse.t, cse.k)
		if err != nil {
			t.Fatalf("sync query(%d,%d,%d): %v", cse.s, cse.t, cse.k, err)
		}
		got, err := asyncEngine.Query(cse.s, cse.t, cse.k)
		if err != nil {
			t.Fatalf("async query(%d,%d,%d): %v", cse.s, cse.t, cse.k, err)
		}
		if len(got.Paths) != len(want.Paths) {
			t.Fatalf("query(%d,%d,%d): async %d paths, sync %d", cse.s, cse.t, cse.k, len(got.Paths), len(want.Paths))
		}
		for i := range want.Paths {
			if got.Paths[i].Dist != want.Paths[i].Dist {
				t.Errorf("query(%d,%d,%d) path %d: async dist %g, sync %g",
					cse.s, cse.t, cse.k, i, got.Paths[i].Dist, want.Paths[i].Dist)
			}
		}
		if got.Converged != want.Converged {
			t.Errorf("query(%d,%d,%d): async converged=%v, sync %v", cse.s, cse.t, cse.k, got.Converged, want.Converged)
		}
	}
	if ap.calls.Load() == 0 {
		t.Fatalf("engine never dispatched through the async provider")
	}
}
