package dtlp

import (
	"fmt"
	"math"
	"sync/atomic"

	"kspdg/internal/graph"
	"kspdg/internal/partition"
)

// subgraphBuilds counts buildSubgraphIndex invocations process-wide.  The
// warm-start path (Importer) never enumerates bounding paths, so recovery
// tests assert this counter stays flat across a snapshot load.
var subgraphBuilds atomic.Int64

// SubgraphBuildCount returns the number of subgraph index constructions
// (bounding path enumerations) performed by this process.  Import never
// increases it; Build increases it once per subgraph, and ApplyTopology once
// per touched subgraph — so recovery stays enumeration-free only up to the
// first topology record in the WAL, whose replay re-runs the same
// incremental rebuilds the original apply did.
func SubgraphBuildCount() int64 { return subgraphBuilds.Load() }

// PathRecord is the serializable form of one bounding path: everything the
// Importer needs to reinstall the path without re-enumerating candidates.
// Vertex and edge ids are subgraph-local.  Vfrags is immutable by
// construction; Dist is the path's actual distance at export time, carried
// verbatim so a recovered index reproduces the exporting index bit for bit
// (recomputing it from weights could differ in the last ulp from the
// incrementally maintained value).
type PathRecord struct {
	Pair     PairKey
	Vertices []graph.VertexID
	Edges    []graph.EdgeID
	Vfrags   float64
	Dist     float64
}

// ExportedState is a consistent description of an index passed to the
// callback of ExportState.  It is only valid for the duration of the
// callback; the slices inside streamed PathRecords are owned by the index
// and must not be retained or modified.
type ExportedState struct {
	// Epoch is the most recently published epoch; Dist values and View
	// weights are exactly the state of that epoch.
	Epoch uint64
	// View is the index view published at Epoch.
	View *IndexView
	// Paths streams every bounding path in deterministic order: subgraphs in
	// id order, pairs sorted by (A, B), paths in construction order.
	Paths func(visit func(sub partition.SubgraphID, rec PathRecord) error) error
}

// ExportState locks out the writer and runs fn with a consistent exportable
// state of the index: the current epoch, its weight view, and a deterministic
// stream of all bounding paths.  It is the producer side of the snapshot
// subsystem (internal/store).
func (x *Index) ExportState(fn func(st ExportedState) error) error {
	x.writeMu.Lock()
	defer x.writeMu.Unlock()
	view := x.CurrentView()
	st := ExportedState{
		Epoch: view.Epoch(),
		View:  view,
		Paths: func(visit func(sub partition.SubgraphID, rec PathRecord) error) error {
			for id, si := range view.gen.subs {
				keys := make([]PairKey, 0, len(si.pairs))
				for k := range si.pairs {
					keys = append(keys, k)
				}
				sortPairKeys(keys)
				for _, k := range keys {
					for _, bp := range si.pairs[k].paths {
						rec := PathRecord{
							Pair:     k,
							Vertices: bp.Vertices,
							Edges:    bp.Edges,
							Vfrags:   bp.Vfrags,
							Dist:     bp.Dist,
						}
						if err := visit(partition.SubgraphID(id), rec); err != nil {
							return err
						}
					}
				}
			}
			return nil
		},
	}
	return fn(st)
}

// Importer reassembles an Index from previously exported path records
// without enumerating bounding paths — the expensive step of Build.  Records
// are streamed in via Add (in any order) and Finish derives everything that
// is a pure function of them: bound distances, LBDs, the pair->subgraph map,
// and the skeleton graph with its MBD weights.
//
// The partition's local weights must already reflect the weight snapshot the
// records were exported with (the store loads weights before paths).
type Importer struct {
	part     *partition.Partition
	cfg      Config
	subs     []*SubgraphIndex
	nextID   []int
	finished bool
}

// NewImporter prepares an import over the given partition.  cfg must carry
// the same Xi the exporting index was built with (it bounds per-pair path
// counts during validation).
func NewImporter(part *partition.Partition, cfg Config) (*Importer, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	imp := &Importer{
		part:   part,
		cfg:    cfg,
		subs:   make([]*SubgraphIndex, part.NumSubgraphs()),
		nextID: make([]int, part.NumSubgraphs()),
	}
	for i := range imp.subs {
		imp.subs[i] = &SubgraphIndex{
			sub:        part.Subgraph(partition.SubgraphID(i)),
			cfg:        cfg,
			pairs:      make(map[PairKey]*pairEntry),
			epIndex:    make(map[graph.EdgeID][]*BoundingPath),
			unitsDirty: true,
		}
	}
	return imp, nil
}

// Add installs one bounding path record into the owning subgraph index.  It
// validates the record against the partition topology so that corrupted
// snapshots surface as errors, never as silently wrong indexes.
func (imp *Importer) Add(id partition.SubgraphID, rec PathRecord) error {
	if imp.finished {
		return fmt.Errorf("dtlp: import already finished")
	}
	if int(id) < 0 || int(id) >= len(imp.subs) {
		return fmt.Errorf("dtlp: import record for subgraph %d outside [0,%d)", id, len(imp.subs))
	}
	si := imp.subs[id]
	local := si.sub.Local
	directed := local.Directed()
	nv, ne := local.NumVertices(), local.NumEdges()
	if len(rec.Vertices) < 2 || len(rec.Edges) != len(rec.Vertices)-1 {
		return fmt.Errorf("dtlp: import path with %d vertices / %d edges", len(rec.Vertices), len(rec.Edges))
	}
	for _, v := range rec.Vertices {
		if int(v) < 0 || int(v) >= nv {
			return fmt.Errorf("dtlp: import path vertex %d outside [0,%d)", v, nv)
		}
	}
	for i, e := range rec.Edges {
		if int(e) < 0 || int(e) >= ne {
			return fmt.Errorf("dtlp: import path edge %d outside [0,%d)", e, ne)
		}
		ends := local.EdgeEndpoints(e)
		u, v := rec.Vertices[i], rec.Vertices[i+1]
		if !(ends.U == u && ends.V == v) && (directed || !(ends.U == v && ends.V == u)) {
			return fmt.Errorf("dtlp: import path edge %d does not connect vertices %d-%d", e, u, v)
		}
	}
	if MakePairKey(rec.Pair.A, rec.Pair.B, directed) != rec.Pair {
		return fmt.Errorf("dtlp: import pair (%d,%d) not normalised", rec.Pair.A, rec.Pair.B)
	}
	if rec.Vertices[0] != rec.Pair.A || rec.Vertices[len(rec.Vertices)-1] != rec.Pair.B {
		return fmt.Errorf("dtlp: import pair (%d,%d) does not match path endpoints", rec.Pair.A, rec.Pair.B)
	}
	if math.IsNaN(rec.Vfrags) || math.IsInf(rec.Vfrags, 0) || rec.Vfrags <= 0 {
		return fmt.Errorf("dtlp: import path with invalid vfrag count %g", rec.Vfrags)
	}
	if math.IsNaN(rec.Dist) || math.IsInf(rec.Dist, 0) || rec.Dist < 0 {
		return fmt.Errorf("dtlp: import path with invalid distance %g", rec.Dist)
	}
	entry, ok := si.pairs[rec.Pair]
	if !ok {
		entry = &pairEntry{key: rec.Pair, lbd: infValue}
		si.pairs[rec.Pair] = entry
	}
	// Construction keeps every enumerated path among the first ξ distinct
	// vfrag lengths, so MaxEnumerate (not ξ) bounds the per-pair path count.
	if len(entry.paths) >= imp.cfg.MaxEnumerate {
		return fmt.Errorf("dtlp: import pair (%d,%d) has more than %d paths", rec.Pair.A, rec.Pair.B, imp.cfg.MaxEnumerate)
	}
	bp := &BoundingPath{
		ID:       imp.nextID[id],
		Pair:     rec.Pair,
		Vertices: append([]graph.VertexID(nil), rec.Vertices...),
		Edges:    append([]graph.EdgeID(nil), rec.Edges...),
		Vfrags:   rec.Vfrags,
		Dist:     rec.Dist,
	}
	imp.nextID[id]++
	for _, e := range bp.Edges {
		si.epIndex[e] = append(si.epIndex[e], bp)
		si.epEntries++
	}
	entry.paths = append(entry.paths, bp)
	si.numPaths++
	return nil
}

// Finish derives the remaining index state (bounds, LBDs, skeleton) and
// publishes the initial view at the given epoch, so a recovered index
// continues the epoch sequence of the process that exported it.  The
// Importer must not be used afterwards.
func (imp *Importer) Finish(epoch uint64) (*Index, error) {
	if imp.finished {
		return nil, fmt.Errorf("dtlp: import already finished")
	}
	imp.finished = true
	x := &Index{cfg: imp.cfg}
	g := &generation{part: imp.part, subs: imp.subs}
	for _, si := range g.subs {
		si.refreshBounds()
	}
	if err := g.finishStructure(); err != nil {
		return nil, err
	}
	x.gen.Store(g)
	x.epochBase = epoch
	x.publishView(nil)
	return x, nil
}
