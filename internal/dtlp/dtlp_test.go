package dtlp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/shortest"
	"kspdg/internal/testutil"
)

func buildPaperIndex(t testing.TB, xi int) (*graph.Graph, *partition.Partition, *Index) {
	t.Helper()
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	x, err := Build(p, Config{Xi: xi})
	if err != nil {
		t.Fatalf("dtlp build: %v", err)
	}
	return g, p, x
}

func TestBuildRejectsBadConfig(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(p, Config{Xi: 0}); err == nil {
		t.Errorf("Xi=0 should be rejected")
	}
}

func TestBuildPaperGraph(t *testing.T) {
	_, p, x := buildPaperIndex(t, 2)
	st := x.Stats()
	if st.NumSubgraphs != p.NumSubgraphs() {
		t.Errorf("stats subgraphs = %d, want %d", st.NumSubgraphs, p.NumSubgraphs())
	}
	if st.NumBoundaryVertices != len(p.BoundaryVertices()) {
		t.Errorf("stats boundary = %d, want %d", st.NumBoundaryVertices, len(p.BoundaryVertices()))
	}
	if st.SkeletonVertices != len(p.BoundaryVertices()) {
		t.Errorf("skeleton vertices = %d, want %d", st.SkeletonVertices, len(p.BoundaryVertices()))
	}
	if st.NumBoundingPaths == 0 || st.EPIndexEntries == 0 || st.ApproxBytes == 0 {
		t.Errorf("expected non-trivial index stats, got %+v", st)
	}
	if x.Config().Xi != 2 {
		t.Errorf("config not preserved")
	}
}

// LBD must never exceed the true shortest distance between the pair inside
// the subgraph — the core soundness property the index provides.
func TestLBDIsLowerBoundWithinSubgraph(t *testing.T) {
	_, p, x := buildPaperIndex(t, 2)
	checkLowerBounds(t, p, x)
}

func checkLowerBounds(t *testing.T, p *partition.Partition, x *Index) {
	t.Helper()
	for _, sg := range p.Subgraphs {
		si := x.SubgraphIndex(sg.ID)
		for i := 0; i < len(sg.Boundary); i++ {
			for j := i + 1; j < len(sg.Boundary); j++ {
				a, b := sg.Boundary[i], sg.Boundary[j]
				la, _ := sg.ToLocal(a)
				lb, _ := sg.ToLocal(b)
				trueDist := shortest.ShortestDistance(sg.Local, la, lb, nil)
				lbd := si.LBDLocal(la, lb)
				if math.IsInf(trueDist, 1) {
					continue
				}
				if lbd > trueDist+1e-9 {
					t.Errorf("subgraph %d pair (%d,%d): LBD %g exceeds true distance %g",
						sg.ID, a, b, lbd, trueDist)
				}
				if lbd <= 0 {
					t.Errorf("subgraph %d pair (%d,%d): LBD %g should be positive", sg.ID, a, b, lbd)
				}
			}
		}
	}
}

// At construction time all unit weights equal 1, so every bounding path's
// bound distance equals its vfrag count bounded by the subgraph's total, and
// the LBD equals the true shortest distance within the subgraph (Section 5.5:
// "at the very beginning ... the lower bound distance of any two boundary
// vertices equals their shortest distance within every subgraph").
func TestInitialLBDEqualsSubgraphShortestDistance(t *testing.T) {
	_, p, x := buildPaperIndex(t, 3)
	for _, sg := range p.Subgraphs {
		si := x.SubgraphIndex(sg.ID)
		for i := 0; i < len(sg.Boundary); i++ {
			for j := i + 1; j < len(sg.Boundary); j++ {
				la, _ := sg.ToLocal(sg.Boundary[i])
				lb, _ := sg.ToLocal(sg.Boundary[j])
				trueDist := shortest.ShortestDistance(sg.Local, la, lb, nil)
				if math.IsInf(trueDist, 1) {
					continue
				}
				lbd := si.LBDLocal(la, lb)
				if math.Abs(lbd-trueDist) > 1e-9 {
					t.Errorf("subgraph %d pair (%d,%d): initial LBD %g != shortest %g",
						sg.ID, sg.Boundary[i], sg.Boundary[j], lbd, trueDist)
				}
			}
		}
	}
}

func TestMBDIsMinOverSubgraphs(t *testing.T) {
	_, p, x := buildPaperIndex(t, 2)
	boundary := p.BoundaryVertices()
	for i := 0; i < len(boundary); i++ {
		for j := i + 1; j < len(boundary); j++ {
			a, b := boundary[i], boundary[j]
			want := math.Inf(1)
			for _, id := range p.CommonSubgraphs(a, b) {
				if d := x.LBD(id, a, b); d < want {
					want = d
				}
			}
			got := x.MBD(a, b)
			if math.IsInf(want, 1) {
				if !math.IsInf(got, 1) {
					t.Errorf("MBD(%d,%d) = %g, want +Inf", a, b, got)
				}
				continue
			}
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("MBD(%d,%d) = %g, want %g", a, b, got, want)
			}
		}
	}
}

func TestSkeletonStructure(t *testing.T) {
	_, p, x := buildPaperIndex(t, 2)
	skel := x.Skeleton()
	if skel.NumVertices() != len(p.BoundaryVertices()) {
		t.Fatalf("skeleton has %d vertices, want %d", skel.NumVertices(), len(p.BoundaryVertices()))
	}
	// Every skeleton vertex maps back and forth consistently.
	for _, v := range p.BoundaryVertices() {
		id, ok := skel.SkelID(v)
		if !ok {
			t.Errorf("boundary vertex %d missing from skeleton", v)
			continue
		}
		if skel.GlobalID(id) != v {
			t.Errorf("skeleton id round trip failed for %d", v)
		}
	}
	// Skeleton edges carry the MBD weights.
	for e := graph.EdgeID(0); int(e) < skel.Graph().NumEdges(); e++ {
		ends := skel.Graph().EdgeEndpoints(e)
		a, b := skel.GlobalID(ends.U), skel.GlobalID(ends.V)
		if math.Abs(skel.Graph().Weight(e)-x.MBD(a, b)) > 1e-9 {
			t.Errorf("skeleton edge (%d,%d) weight %g != MBD %g", a, b, skel.Graph().Weight(e), x.MBD(a, b))
		}
		if math.Abs(skel.Weight(a, b)-x.MBD(a, b)) > 1e-9 {
			t.Errorf("Skeleton.Weight(%d,%d) mismatch", a, b)
		}
	}
	if !math.IsInf(skel.Weight(0, 1), 1) {
		// vertices 0 and 1 are non-boundary in the paper graph partitioning
		t.Logf("note: weight(0,1) = %g", skel.Weight(0, 1))
	}
}

// Skeleton path distances must lower-bound true distances in G between
// boundary vertices (Theorem 2) — this is what guarantees KSP-DG correctness.
func TestSkeletonDistanceLowerBoundsTrueDistance(t *testing.T) {
	g, p, x := buildPaperIndex(t, 2)
	skel := x.Skeleton()
	boundary := p.BoundaryVertices()
	for i := 0; i < len(boundary); i++ {
		for j := i + 1; j < len(boundary); j++ {
			a, b := boundary[i], boundary[j]
			sa, _ := skel.SkelID(a)
			sb, _ := skel.SkelID(b)
			skelDist := shortest.ShortestDistance(skel.Graph(), sa, sb, nil)
			trueDist := shortest.ShortestDistance(g, a, b, nil)
			if math.IsInf(trueDist, 1) {
				continue
			}
			if skelDist > trueDist+1e-9 {
				t.Errorf("skeleton distance %g exceeds true distance %g for (%d,%d)", skelDist, trueDist, a, b)
			}
		}
	}
}

func TestApplyUpdatesMaintainsInvariants(t *testing.T) {
	g, p, x := buildPaperIndex(t, 2)
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		// Perturb ~40% of edges by up to ±50%.
		var batch []graph.WeightUpdate
		for e := graph.EdgeID(0); int(e) < g.NumEdges(); e++ {
			if rng.Float64() < 0.4 {
				factor := 1 + (rng.Float64()*2-1)*0.5
				w := g.Weight(e) * factor
				if w < 0.1 {
					w = 0.1
				}
				batch = append(batch, graph.WeightUpdate{Edge: e, NewWeight: w})
			}
		}
		if err := g.ApplyUpdates(batch); err != nil {
			t.Fatal(err)
		}
		if err := x.ApplyUpdates(batch); err != nil {
			t.Fatal(err)
		}
		// Subgraph local weights must mirror the parent graph.
		for e := graph.EdgeID(0); int(e) < g.NumEdges(); e++ {
			loc := p.Locate(e)
			if got, want := p.Subgraph(loc.Subgraph).Local.Weight(loc.LocalEdge), g.Weight(e); math.Abs(got-want) > 1e-12 {
				t.Fatalf("round %d: subgraph weight %g != parent %g", round, got, want)
			}
		}
		// LBDs remain valid lower bounds.
		checkLowerBounds(t, p, x)
		// Skeleton edge weights remain in sync with MBDs.
		skel := x.Skeleton()
		for e := graph.EdgeID(0); int(e) < skel.Graph().NumEdges(); e++ {
			ends := skel.Graph().EdgeEndpoints(e)
			a, b := skel.GlobalID(ends.U), skel.GlobalID(ends.V)
			if math.Abs(skel.Graph().Weight(e)-x.MBD(a, b)) > 1e-9 {
				t.Fatalf("round %d: skeleton edge (%d,%d) weight %g != MBD %g",
					round, a, b, skel.Graph().Weight(e), x.MBD(a, b))
			}
		}
	}
}

func TestApplyUpdatesBoundingPathDistances(t *testing.T) {
	g, p, x := buildPaperIndex(t, 2)
	// Pick an edge covered by at least one bounding path.
	var target graph.EdgeID = graph.NoEdge
	var si *SubgraphIndex
	var loc partition.EdgeLocation
	for e := graph.EdgeID(0); int(e) < g.NumEdges(); e++ {
		l := p.Locate(e)
		s := x.SubgraphIndex(l.Subgraph)
		if len(s.PathsThroughEdge(l.LocalEdge)) > 0 {
			target, si, loc = e, s, l
			break
		}
	}
	if target == graph.NoEdge {
		t.Fatal("no edge covered by a bounding path")
	}
	before := make(map[int]float64)
	for _, bp := range si.PathsThroughEdge(loc.LocalEdge) {
		before[bp.ID] = bp.Dist
	}
	old := g.Weight(target)
	batch := []graph.WeightUpdate{{Edge: target, NewWeight: old + 5}}
	if err := g.ApplyUpdates(batch); err != nil {
		t.Fatal(err)
	}
	if err := x.ApplyUpdates(batch); err != nil {
		t.Fatal(err)
	}
	for _, bp := range si.PathsThroughEdge(loc.LocalEdge) {
		if math.Abs(bp.Dist-(before[bp.ID]+5)) > 1e-9 {
			t.Errorf("bounding path %d distance = %g, want %g", bp.ID, bp.Dist, before[bp.ID]+5)
		}
	}
	// Bounding path distances must equal re-evaluating the path on the
	// subgraph's current weights.
	for _, entry := range si.pairs {
		for _, bp := range entry.paths {
			want := 0.0
			for _, e := range bp.Edges {
				want += si.sub.Local.Weight(e)
			}
			if math.Abs(bp.Dist-want) > 1e-9 {
				t.Errorf("path %d incremental dist %g != recomputed %g", bp.ID, bp.Dist, want)
			}
		}
	}
}

func TestApplyUpdatesUnknownEdge(t *testing.T) {
	g, _, x := buildPaperIndex(t, 1)
	bad := []graph.WeightUpdate{{Edge: graph.EdgeID(g.NumEdges() + 10), NewWeight: 1}}
	if err := x.ApplyUpdates(bad); err == nil {
		t.Errorf("expected error for unknown edge")
	}
	if err := x.ApplyUpdates(nil); err != nil {
		t.Errorf("empty batch should be a no-op, got %v", err)
	}
}

func TestBoundaryLowerBounds(t *testing.T) {
	g, p, x := buildPaperIndex(t, 2)
	// v1 is an interior (non-boundary) vertex in the paper partitioning.
	v := testutil.V1
	if p.IsBoundary(v) {
		t.Skipf("vertex %d unexpectedly boundary; partitioning changed", v)
	}
	bounds := x.BoundaryLowerBounds(v)
	if len(bounds) == 0 {
		t.Fatal("expected lower bounds to boundary vertices")
	}
	for bv, d := range bounds {
		if !p.IsBoundary(bv) {
			t.Errorf("bound reported for non-boundary vertex %d", bv)
		}
		trueDist := shortest.ShortestDistance(g, v, bv, nil)
		if d < trueDist-1e-9 {
			// The within-subgraph distance can exceed the global distance but
			// never undercut it ... actually it must be >= global distance.
			t.Errorf("within-subgraph distance %g below global distance %g for (%d,%d)", d, trueDist, v, bv)
		}
	}
	// A boundary vertex gets distance 0 to itself.
	bv := p.BoundaryVertices()[0]
	selfBounds := x.BoundaryLowerBounds(bv)
	if d, ok := selfBounds[bv]; !ok || d != 0 {
		t.Errorf("self distance = %v,%v; want 0,true", d, ok)
	}
}

func TestVfragBoundDistanceExample(t *testing.T) {
	// Reproduce the mechanics of Example 4: a subgraph whose weights change
	// keeps vfrag counts fixed while unit weights shrink, producing a tighter
	// bound distance than edge-count-based bounds.
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	x, err := Build(p, Config{Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Find a subgraph and boundary pair with indexed bounding paths; prefer
	// the (V13, V14) pair of the paper example when the partitioner
	// co-locates it, otherwise fall back to the first indexed pair.
	var si *SubgraphIndex
	var la, lb graph.VertexID
	var paths []*BoundingPath
	for _, id := range p.CommonSubgraphs(testutil.V13, testutil.V14) {
		cand := x.SubgraphIndex(id)
		a, _ := cand.Subgraph().ToLocal(testutil.V13)
		b, _ := cand.Subgraph().ToLocal(testutil.V14)
		if ps := cand.BoundingPaths(a, b); len(ps) > 0 {
			si, la, lb, paths = cand, a, b, ps
			break
		}
	}
	if si == nil {
	outer:
		for _, sg := range p.Subgraphs {
			cand := x.SubgraphIndex(sg.ID)
			for i := 0; i < len(sg.Boundary); i++ {
				for j := i + 1; j < len(sg.Boundary); j++ {
					a, _ := sg.ToLocal(sg.Boundary[i])
					b, _ := sg.ToLocal(sg.Boundary[j])
					if ps := cand.BoundingPaths(a, b); len(ps) > 0 {
						si, la, lb, paths = cand, a, b, ps
						break outer
					}
				}
			}
		}
	}
	if si == nil {
		t.Fatal("no bounding paths indexed anywhere")
	}
	for _, bp := range paths {
		if bp.Vfrags <= 0 {
			t.Errorf("vfrag count must be positive")
		}
		if bp.Bound > bp.Dist+1e-9 {
			t.Errorf("bound distance %g exceeds actual distance %g", bp.Bound, bp.Dist)
		}
	}
	// Shrink all weights in that subgraph; bounds must stay below distances.
	var batch []graph.WeightUpdate
	for _, ge := range si.Subgraph().GlobalEdges {
		batch = append(batch, graph.WeightUpdate{Edge: ge, NewWeight: g.Weight(ge) / 3})
	}
	if err := g.ApplyUpdates(batch); err != nil {
		t.Fatal(err)
	}
	if err := x.ApplyUpdates(batch); err != nil {
		t.Fatal(err)
	}
	for _, bp := range si.BoundingPaths(la, lb) {
		if bp.Bound > bp.Dist+1e-9 {
			t.Errorf("after update: bound %g exceeds distance %g", bp.Bound, bp.Dist)
		}
	}
}

func TestPathSetsExposeEPIndex(t *testing.T) {
	_, p, x := buildPaperIndex(t, 2)
	for _, sg := range p.Subgraphs {
		si := x.SubgraphIndex(sg.ID)
		sets := si.PathSets()
		total := 0
		for e, ids := range sets {
			if len(ids) == 0 {
				t.Errorf("edge %d has empty path set", e)
			}
			total += len(ids)
		}
		if total != si.EPIndexEntries() {
			t.Errorf("PathSets total %d != EPIndexEntries %d", total, si.EPIndexEntries())
		}
	}
}

func TestDirectedGraphIndex(t *testing.T) {
	// A directed ring with a chord: ensure directed pairs are indexed in both
	// directions and LBDs respect direction.
	b := graph.NewBuilder(8, true)
	for i := 0; i < 8; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%8), 1+float64(i%3))
	}
	b.AddEdge(0, 4, 2)
	g := b.Build()
	p, err := partition.PartitionGraph(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	x, err := Build(p, Config{Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !x.Skeleton().Directed() {
		t.Errorf("skeleton of a directed graph must be directed")
	}
	for _, sg := range p.Subgraphs {
		si := x.SubgraphIndex(sg.ID)
		for i := 0; i < len(sg.Boundary); i++ {
			for j := 0; j < len(sg.Boundary); j++ {
				if i == j {
					continue
				}
				la, _ := sg.ToLocal(sg.Boundary[i])
				lb, _ := sg.ToLocal(sg.Boundary[j])
				trueDist := shortest.ShortestDistance(sg.Local, la, lb, nil)
				lbd := si.LBDLocal(la, lb)
				if math.IsInf(trueDist, 1) {
					continue
				}
				if lbd > trueDist+1e-9 {
					t.Errorf("directed LBD %g exceeds true %g for (%d,%d)", lbd, trueDist, sg.Boundary[i], sg.Boundary[j])
				}
			}
		}
	}
}

// Property: on random graphs with random perturbations, LBDs always remain
// lower bounds of within-subgraph shortest distances and skeleton weights
// track MBDs.
func TestPropertyMaintenanceSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 24 + rng.Intn(40)
		g := testutil.RandomConnected(rng, n, n/2)
		p, err := partition.PartitionGraph(g, 6+rng.Intn(6))
		if err != nil {
			return false
		}
		x, err := Build(p, Config{Xi: 1 + rng.Intn(3)})
		if err != nil {
			return false
		}
		for round := 0; round < 3; round++ {
			batch := testutil.PerturbWeights(t, g, rng, 0.5, 0.6, 0.05)
			if err := x.ApplyUpdates(batch); err != nil {
				return false
			}
		}
		for _, sg := range p.Subgraphs {
			si := x.SubgraphIndex(sg.ID)
			for i := 0; i < len(sg.Boundary); i++ {
				for j := i + 1; j < len(sg.Boundary); j++ {
					la, _ := sg.ToLocal(sg.Boundary[i])
					lb, _ := sg.ToLocal(sg.Boundary[j])
					trueDist := shortest.ShortestDistance(sg.Local, la, lb, nil)
					if math.IsInf(trueDist, 1) {
						continue
					}
					if si.LBDLocal(la, lb) > trueDist+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
