package dtlp

import (
	"sync"
	"testing"

	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/testutil"
)

func TestApplyTopologyInsertDelete(t *testing.T) {
	_, p, x := buildPaperIndex(t, 2)
	v0 := x.CurrentView()

	st, err := x.ApplyTopologyStats(graph.TopologyUpdate{
		InsertEdges: []graph.Edge{{U: 0, V: 9, Weight: 2.5}},
		DeleteEdges: []graph.EdgeID{0},
	})
	if err != nil {
		t.Fatalf("ApplyTopology: %v", err)
	}
	if st.Epoch != v0.Epoch()+1 {
		t.Errorf("epoch = %d, want %d", st.Epoch, v0.Epoch()+1)
	}
	if len(st.InsertedEdges) != 1 || len(st.DeletedEdges) != 1 || st.DeletedEdges[0] != 0 {
		t.Errorf("unexpected stats %+v", st)
	}

	np := x.Partition()
	if np == p {
		t.Fatalf("topology update did not replace the partition")
	}
	parent := np.Parent()
	if parent.EdgeAlive(0) {
		t.Errorf("deleted edge 0 still alive")
	}
	if !parent.EdgeAlive(st.InsertedEdges[0]) {
		t.Errorf("inserted edge %d not alive", st.InsertedEdges[0])
	}
	if w := parent.Weight(st.InsertedEdges[0]); w != 2.5 {
		t.Errorf("inserted edge weight = %g, want 2.5", w)
	}
	if err := np.Validate(); err != nil {
		t.Fatalf("partition invalid after topology: %v", err)
	}
	checkLowerBounds(t, np, x)

	// The pre-topology view must stay pinned to the old generation.
	old := x.ViewAt(v0.Epoch())
	if old == nil {
		t.Fatalf("old epoch evicted")
	}
	if old.Partition() != p {
		t.Errorf("old view resolves the new partition")
	}
	if x.CurrentView().Partition() != np {
		t.Errorf("current view does not resolve the new partition")
	}

	// Weight updates on the deleted edge must now be rejected.
	if err := x.ApplyUpdates([]graph.WeightUpdate{{Edge: 0, NewWeight: 9}}); err == nil {
		t.Errorf("weight update on deleted edge accepted")
	}
}

func TestApplyTopologyIncrementalRebuild(t *testing.T) {
	_, p, x := buildPaperIndex(t, 2)
	before := SubgraphBuildCount()
	st, err := x.ApplyTopologyStats(graph.TopologyUpdate{DeleteEdges: []graph.EdgeID{1}})
	if err != nil {
		t.Fatalf("ApplyTopology: %v", err)
	}
	delta := SubgraphBuildCount() - before
	if delta != int64(st.SubgraphsRebuilt) {
		t.Errorf("subgraph builds = %d, stats report %d", delta, st.SubgraphsRebuilt)
	}
	if st.SubgraphsRebuilt == 0 || st.SubgraphsRebuilt >= p.NumSubgraphs() {
		t.Errorf("expected a strict subset of %d subgraphs rebuilt, got %d",
			p.NumSubgraphs(), st.SubgraphsRebuilt)
	}
}

func TestApplyTopologyEmptyBatch(t *testing.T) {
	_, _, x := buildPaperIndex(t, 2)
	e0 := x.CurrentView().Epoch()
	epoch, err := x.ApplyTopologyEpoch(graph.TopologyUpdate{})
	if err != nil || epoch != e0 {
		t.Errorf("empty batch: epoch %d err %v, want %d nil", epoch, err, e0)
	}
}

// Deleting the last edge of a vertex leaves the vertex isolated but keeps its
// id valid and the partition consistent.
func TestApplyTopologyDeleteLastEdgeOfVertex(t *testing.T) {
	g := testutil.LineGraph(t, 6)
	p, err := partition.PartitionGraph(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	x, err := Build(p, Config{Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 0's only edge is edge 0 (0-1).
	if _, err := x.ApplyTopologyStats(graph.TopologyUpdate{DeleteEdges: []graph.EdgeID{0}}); err != nil {
		t.Fatalf("ApplyTopology: %v", err)
	}
	np := x.Partition()
	if err := np.Validate(); err != nil {
		t.Fatalf("partition invalid: %v", err)
	}
	if np.Parent().Degree(0) != 0 {
		t.Errorf("vertex 0 still has arcs")
	}
	// Deleting the edge again must fail (already dead).
	if err := x.ApplyTopology(graph.TopologyUpdate{DeleteEdges: []graph.EdgeID{0}}); err == nil {
		t.Errorf("double delete accepted")
	}
	checkLowerBounds(t, np, x)
}

// Deleting a boundary (skeleton) vertex removes it from every subgraph and
// every incident edge, and the rebuilt skeleton no longer carries it.
func TestApplyTopologyDeleteBoundaryVertex(t *testing.T) {
	_, p, x := buildPaperIndex(t, 2)
	bvs := p.BoundaryVertices()
	if len(bvs) == 0 {
		t.Fatal("paper partition has no boundary vertices")
	}
	bv := bvs[0]
	if _, err := x.ApplyTopologyStats(graph.TopologyUpdate{DeleteVertices: []graph.VertexID{bv}}); err != nil {
		t.Fatalf("ApplyTopology: %v", err)
	}
	np := x.Partition()
	if err := np.Validate(); err != nil {
		t.Fatalf("partition invalid: %v", err)
	}
	if len(np.SubgraphsOf(bv)) != 0 {
		t.Errorf("deleted vertex %d still member of %v", bv, np.SubgraphsOf(bv))
	}
	if np.IsBoundary(bv) {
		t.Errorf("deleted vertex %d still flagged boundary", bv)
	}
	if _, ok := x.Skeleton().SkelID(bv); ok {
		t.Errorf("deleted vertex %d still in skeleton", bv)
	}
	parent := np.Parent()
	for e := 0; e < parent.NumEdges(); e++ {
		ends := parent.EdgeEndpoints(graph.EdgeID(e))
		if (ends.U == bv || ends.V == bv) && parent.EdgeAlive(graph.EdgeID(e)) {
			t.Errorf("edge %d incident to deleted vertex %d still alive", e, bv)
		}
	}
	checkLowerBounds(t, np, x)
}

// A subgraph emptied by vertex deletions persists as a tombstone and is
// reused for an edge between brand-new vertices.
func TestApplyTopologyInsertIntoEmptySubgraph(t *testing.T) {
	g := testutil.LineGraph(t, 4) // edges 0-1, 1-2, 2-3
	p, err := partition.PartitionGraph(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSubgraphs() < 2 {
		t.Fatalf("expected multiple subgraphs, got %d", p.NumSubgraphs())
	}
	x, err := Build(p, Config{Xi: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Empty out subgraph 0 (vertices 0 and 1).
	if _, err := x.ApplyTopologyStats(graph.TopologyUpdate{DeleteVertices: []graph.VertexID{0, 1}}); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if n := x.Partition().Subgraph(0).NumVertices(); n != 0 {
		t.Fatalf("subgraph 0 has %d vertices, want 0", n)
	}
	// Insert an edge between two new vertices: must land in subgraph 0.
	nv := graph.VertexID(g.NumVertices())
	st, err := x.ApplyTopologyStats(graph.TopologyUpdate{
		AddVertices: 2,
		InsertEdges: []graph.Edge{{U: nv, V: nv + 1, Weight: 1}},
	})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	np := x.Partition()
	if err := np.Validate(); err != nil {
		t.Fatalf("partition invalid: %v", err)
	}
	sg := np.Subgraph(0)
	if sg.NumVertices() != 2 || !sg.Contains(nv) || !sg.Contains(nv+1) {
		t.Errorf("subgraph 0 = %v, want the two new vertices", sg.Globals)
	}
	if loc := np.Locate(st.InsertedEdges[0]); loc.Subgraph != 0 {
		t.Errorf("inserted edge owned by subgraph %d, want 0", loc.Subgraph)
	}
	if np.NumSubgraphs() != p.NumSubgraphs() {
		t.Errorf("subgraph count changed from %d to %d", p.NumSubgraphs(), np.NumSubgraphs())
	}
}

// An inserted edge between vertices of two full subgraphs opens a new
// subgraph holding both endpoints, making them boundary vertices.
func TestApplyTopologyInsertOpensNewSubgraph(t *testing.T) {
	g := testutil.LineGraph(t, 4)
	p, err := partition.PartitionGraph(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	x, err := Build(p, Config{Xi: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := p.NumSubgraphs()
	// 0 and 3 live in different full (z=2) subgraphs with no room.
	st, err := x.ApplyTopologyStats(graph.TopologyUpdate{
		InsertEdges: []graph.Edge{{U: 0, V: 3, Weight: 5}},
	})
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	np := x.Partition()
	if err := np.Validate(); err != nil {
		t.Fatalf("partition invalid: %v", err)
	}
	if np.NumSubgraphs() != before+1 {
		t.Fatalf("subgraphs = %d, want %d", np.NumSubgraphs(), before+1)
	}
	if loc := np.Locate(st.InsertedEdges[0]); int(loc.Subgraph) != before {
		t.Errorf("inserted edge owned by subgraph %d, want new subgraph %d", loc.Subgraph, before)
	}
	if !np.IsBoundary(0) || !np.IsBoundary(3) {
		t.Errorf("endpoints of bridging edge not boundary")
	}
	checkLowerBounds(t, np, x)
}

// Topology and weight batches may arrive concurrently; the single-writer lock
// serializes them and every batch still publishes exactly one epoch.
func TestApplyTopologyConcurrentWithWeights(t *testing.T) {
	g, _, x := buildPaperIndex(t, 2)
	base := x.CurrentView().Epoch()
	const topoBatches, weightBatches = 4, 8
	var wg sync.WaitGroup
	wg.Add(2)
	errs := make(chan error, topoBatches+weightBatches)
	go func() {
		defer wg.Done()
		u := graph.VertexID(0)
		for i := 0; i < topoBatches; i++ {
			// Insert parallel-free fresh vertices so batches never conflict.
			nv := graph.VertexID(g.NumVertices() + 2*i)
			if err := x.ApplyTopology(graph.TopologyUpdate{
				AddVertices: 2,
				InsertEdges: []graph.Edge{{U: u, V: nv, Weight: 3}, {U: nv, V: nv + 1, Weight: 4}},
			}); err != nil {
				errs <- err
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < weightBatches; i++ {
			// Edge 2 of the paper graph is never deleted here.
			if err := x.ApplyUpdates([]graph.WeightUpdate{{Edge: 2, NewWeight: float64(i + 1)}}); err != nil {
				errs <- err
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent batch failed: %v", err)
	}
	if got := x.CurrentView().Epoch(); got != base+topoBatches+weightBatches {
		t.Errorf("epoch = %d, want %d", got, base+topoBatches+weightBatches)
	}
	if err := x.Partition().Validate(); err != nil {
		t.Fatalf("final partition invalid: %v", err)
	}
	checkLowerBounds(t, x.Partition(), x)
}
