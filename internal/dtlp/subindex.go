package dtlp

import (
	"math"
	"sort"

	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/shortest"
)

var infValue = math.Inf(1)

// BoundingPath is one indexed bounding path between two boundary vertices of
// a subgraph (Section 3.4).  The vertex/edge sequences are fixed at
// construction time; only Dist (the current actual distance) and Bound (the
// current bound distance) change as the graph evolves.
type BoundingPath struct {
	// ID is unique within the owning SubgraphIndex.
	ID int
	// Pair is the local boundary pair this path connects.
	Pair PairKey
	// Vertices is the path in subgraph-local vertex ids.
	Vertices []graph.VertexID
	// Edges is the path in subgraph-local edge ids.
	Edges []graph.EdgeID
	// Vfrags is ϕ(P): the total number of virtual fragments, i.e. the sum of
	// initial edge weights along the path.  It never changes.
	Vfrags float64
	// Dist is the current actual distance of the path, maintained
	// incrementally from edge weight deltas.
	Dist float64
	// Bound is the current bound distance BD(P): the sum of the ϕ(P)
	// smallest unit weights in the subgraph.
	Bound float64
}

// pairEntry groups the bounding paths of one local boundary pair together
// with the pair's current lower bound distance.
type pairEntry struct {
	key   PairKey // local vertex ids
	paths []*BoundingPath
	lbd   float64
}

// SubgraphIndex is the first level of DTLP for a single subgraph: the
// bounding paths for every pair of its boundary vertices, the EP-Index
// mapping local edges to the bounding paths crossing them, and the unit
// weight bookkeeping needed to compute bound distances.
type SubgraphIndex struct {
	sub *partition.Subgraph
	cfg Config

	pairs   map[PairKey]*pairEntry           // keyed by local pair
	epIndex map[graph.EdgeID][]*BoundingPath // local edge -> covering paths

	// Unit-weight machinery: sortedUnits holds (unit weight, fragment count)
	// per edge ordered by unit weight ascending, with running prefix sums for
	// O(log E) bound distance queries.  It is rebuilt lazily after updates.
	unitsDirty  bool
	sortedUnits []unitEntry
	prefixFrags []float64 // cumulative fragment counts
	prefixCost  []float64 // cumulative unitWeight*frags

	numPaths  int
	epEntries int
}

type unitEntry struct {
	unit  float64
	frags float64
}

// buildSubgraphIndex indexes a single subgraph: for every pair of its
// boundary vertices it computes up to ξ bounding paths under the vfrag
// metric, registers them in the EP-Index and derives the pair's LBD.
func buildSubgraphIndex(sub *partition.Subgraph, cfg Config) (*SubgraphIndex, error) {
	subgraphBuilds.Add(1)
	si := &SubgraphIndex{
		sub:     sub,
		cfg:     cfg,
		pairs:   make(map[PairKey]*pairEntry),
		epIndex: make(map[graph.EdgeID][]*BoundingPath),
	}
	directed := sub.Local.Directed()
	// The vfrag metric ranks paths by their initial weights: an edge with
	// initial weight w0 contributes w0 vfrags.
	vfragOpts := &shortest.Options{Weight: sub.Local.InitialWeight}

	nextID := 0
	addPair := func(a, b graph.VertexID) {
		la, okA := sub.ToLocal(a)
		lb, okB := sub.ToLocal(b)
		if !okA || !okB {
			return
		}
		key := MakePairKey(la, lb, directed)
		if _, dup := si.pairs[key]; dup {
			return
		}
		candidates := shortest.KShortestDistinctLengths(sub.Local, key.A, key.B, cfg.Xi, cfg.MaxEnumerate, vfragOpts)
		if len(candidates) == 0 {
			return // pair unreachable inside this subgraph
		}
		entry := &pairEntry{key: key, lbd: infValue}
		for _, p := range candidates {
			bp := &BoundingPath{
				ID:       nextID,
				Pair:     key,
				Vertices: p.Vertices,
				Vfrags:   p.Dist, // distance under the vfrag metric
			}
			nextID++
			// Record local edge ids and the current actual distance.
			for i := 0; i+1 < len(p.Vertices); i++ {
				e, ok := sub.Local.EdgeBetween(p.Vertices[i], p.Vertices[i+1])
				if !ok {
					continue
				}
				bp.Edges = append(bp.Edges, e)
				bp.Dist += sub.Local.Weight(e)
				si.epIndex[e] = append(si.epIndex[e], bp)
				si.epEntries++
			}
			entry.paths = append(entry.paths, bp)
			si.numPaths++
		}
		si.pairs[key] = entry
	}

	bnd := sub.Boundary
	for i := 0; i < len(bnd); i++ {
		for j := i + 1; j < len(bnd); j++ {
			addPair(bnd[i], bnd[j])
			if directed {
				addPair(bnd[j], bnd[i])
			}
		}
	}

	si.unitsDirty = true
	si.refreshBounds()
	return si, nil
}

// Subgraph returns the indexed subgraph.
func (si *SubgraphIndex) Subgraph() *partition.Subgraph { return si.sub }

// NumPairs returns the number of indexed boundary pairs.
func (si *SubgraphIndex) NumPairs() int { return len(si.pairs) }

// NumBoundingPaths returns the total number of bounding paths indexed.
func (si *SubgraphIndex) NumBoundingPaths() int { return si.numPaths }

// EPIndexEntries returns the number of (edge -> path) entries in the
// EP-Index of this subgraph.
func (si *SubgraphIndex) EPIndexEntries() int { return si.epEntries }

// BoundingPaths returns the bounding paths of the local pair (la, lb), or nil
// if the pair is not indexed.
func (si *SubgraphIndex) BoundingPaths(la, lb graph.VertexID) []*BoundingPath {
	key := MakePairKey(la, lb, si.sub.Local.Directed())
	entry, ok := si.pairs[key]
	if !ok {
		return nil
	}
	return entry.paths
}

// PathsThroughEdge returns the bounding paths crossing the local edge e (the
// EP-Index lookup of Algorithm 2).
func (si *SubgraphIndex) PathsThroughEdge(e graph.EdgeID) []*BoundingPath { return si.epIndex[e] }

// PathSets returns, per local edge, the ids of the bounding paths crossing
// it.  This is the raw EP-Index content consumed by the MFP-tree compressor.
func (si *SubgraphIndex) PathSets() map[graph.EdgeID][]int {
	out := make(map[graph.EdgeID][]int, len(si.epIndex))
	for e, paths := range si.epIndex {
		ids := make([]int, len(paths))
		for i, p := range paths {
			ids[i] = p.ID
		}
		out[e] = ids
	}
	return out
}

// LBDLocal returns the lower bound distance of the local pair (la, lb), or
// +Inf if the pair is not indexed (e.g. unreachable within the subgraph).
func (si *SubgraphIndex) LBDLocal(la, lb graph.VertexID) float64 {
	key := MakePairKey(la, lb, si.sub.Local.Directed())
	if entry, ok := si.pairs[key]; ok {
		return entry.lbd
	}
	return infValue
}

// LBDGlobal is LBDLocal with global vertex ids.
func (si *SubgraphIndex) LBDGlobal(a, b graph.VertexID) float64 {
	la, okA := si.sub.ToLocal(a)
	lb, okB := si.sub.ToLocal(b)
	if !okA || !okB {
		return infValue
	}
	return si.LBDLocal(la, lb)
}

// globalPairKey translates a local pair key into global vertex ids.
func (si *SubgraphIndex) globalPairKey(local PairKey, directed bool) PairKey {
	return MakePairKey(si.sub.ToGlobal(local.A), si.sub.ToGlobal(local.B), directed)
}

// applyEdgeDelta adjusts the actual distance of every bounding path crossing
// the local edge e by delta and marks the unit-weight cache dirty, returning
// the number of paths touched.  Called by Index.ApplyUpdates after the
// subgraph's local weight has been updated.
func (si *SubgraphIndex) applyEdgeDelta(e graph.EdgeID, delta float64) int {
	for _, bp := range si.epIndex[e] {
		bp.Dist += delta
	}
	si.unitsDirty = true
	return len(si.epIndex[e])
}

// refreshBounds recomputes the bound distance of every bounding path and the
// LBD of every pair from the current unit weights, returning the local pair
// keys whose LBD changed.
func (si *SubgraphIndex) refreshBounds() []PairKey {
	si.rebuildUnitsIfDirty()
	var changed []PairKey
	for key, entry := range si.pairs {
		minDist := infValue
		maxBound := 0.0
		for _, bp := range entry.paths {
			bp.Bound = si.sumSmallestUnits(bp.Vfrags)
			if bp.Dist < minDist {
				minDist = bp.Dist
			}
			if bp.Bound > maxBound {
				maxBound = bp.Bound
			}
		}
		// Theorem 1: if the largest bound distance reaches the smallest
		// actual distance among the bounding paths, that actual distance is
		// the exact shortest distance; otherwise the largest bound distance
		// is a valid lower bound.
		lbd := maxBound
		if maxBound >= minDist {
			lbd = minDist
		}
		if lbd != entry.lbd {
			entry.lbd = lbd
			changed = append(changed, key)
		}
	}
	return changed
}

// rebuildUnitsIfDirty rebuilds the sorted unit-weight table and its prefix
// sums from the subgraph's current weights.
func (si *SubgraphIndex) rebuildUnitsIfDirty() {
	if !si.unitsDirty && si.sortedUnits != nil {
		return
	}
	g := si.sub.Local
	n := g.NumEdges()
	if cap(si.sortedUnits) < n || cap(si.prefixFrags) < n+1 {
		si.sortedUnits = make([]unitEntry, n)
		si.prefixFrags = make([]float64, n+1)
		si.prefixCost = make([]float64, n+1)
	}
	si.sortedUnits = si.sortedUnits[:n]
	for e := 0; e < n; e++ {
		w0 := g.InitialWeight(graph.EdgeID(e))
		w := g.Weight(graph.EdgeID(e))
		frags := w0
		unit := 0.0
		if w0 > 0 {
			unit = w / w0
		}
		si.sortedUnits[e] = unitEntry{unit: unit, frags: frags}
	}
	sort.Slice(si.sortedUnits, func(i, j int) bool { return si.sortedUnits[i].unit < si.sortedUnits[j].unit })
	si.prefixFrags = si.prefixFrags[:n+1]
	si.prefixCost = si.prefixCost[:n+1]
	si.prefixFrags[0], si.prefixCost[0] = 0, 0
	for i, u := range si.sortedUnits {
		si.prefixFrags[i+1] = si.prefixFrags[i] + u.frags
		si.prefixCost[i+1] = si.prefixCost[i] + u.frags*u.unit
	}
	si.unitsDirty = false
}

// sumSmallestUnits returns the total weight of the phi smallest virtual
// fragments in the subgraph (greedily taking fragments from the edges with
// the smallest unit weights).  If the subgraph holds fewer than phi
// fragments, all of them are summed.
func (si *SubgraphIndex) sumSmallestUnits(phi float64) float64 {
	si.rebuildUnitsIfDirty()
	n := len(si.sortedUnits)
	if n == 0 || phi <= 0 {
		return 0
	}
	// Binary search for the first prefix holding at least phi fragments.
	i := sort.Search(n, func(i int) bool { return si.prefixFrags[i+1] >= phi })
	if i == n {
		return si.prefixCost[n]
	}
	remaining := phi - si.prefixFrags[i]
	return si.prefixCost[i] + remaining*si.sortedUnits[i].unit
}

// boundaryDistancesFrom returns the shortest distance within this subgraph
// from global vertex v to every boundary vertex of the subgraph, under the
// given weights (the live local graph or an epoch snapshot of it).  Used
// when attaching non-boundary query endpoints to the skeleton graph.
func (si *SubgraphIndex) boundaryDistancesFrom(v graph.VertexID, weights graph.WeightedView) map[graph.VertexID]float64 {
	lv, ok := si.sub.ToLocal(v)
	if !ok {
		return nil
	}
	tree := shortest.Dijkstra(weights, lv, nil)
	out := make(map[graph.VertexID]float64, len(si.sub.Boundary))
	for _, bv := range si.sub.Boundary {
		lb, ok := si.sub.ToLocal(bv)
		if !ok {
			continue
		}
		if tree.Reachable(lb) {
			out[bv] = tree.Dist[lb]
		}
	}
	return out
}

// boundaryDistancesTo returns the shortest distance within this subgraph
// from every boundary vertex of the subgraph to global vertex v, under the
// given weights.  Used for directed graphs when attaching a non-boundary
// destination vertex to the skeleton graph.
func (si *SubgraphIndex) boundaryDistancesTo(v graph.VertexID, weights graph.WeightedView) map[graph.VertexID]float64 {
	lv, ok := si.sub.ToLocal(v)
	if !ok {
		return nil
	}
	out := make(map[graph.VertexID]float64, len(si.sub.Boundary))
	for _, bv := range si.sub.Boundary {
		lb, ok := si.sub.ToLocal(bv)
		if !ok {
			continue
		}
		if d := shortest.ShortestDistance(weights, lb, lv, nil); !math.IsInf(d, 1) {
			out[bv] = d
		}
	}
	return out
}

// approxBytes estimates the memory footprint of this subgraph's index,
// counting bounding path vertex/edge slices and EP-Index entries.  Used for
// the construction-cost experiments.
func (si *SubgraphIndex) approxBytes() int64 {
	var b int64
	for _, entry := range si.pairs {
		b += 48 // pair bookkeeping
		for _, bp := range entry.paths {
			b += int64(len(bp.Vertices))*4 + int64(len(bp.Edges))*4 + 56
		}
	}
	b += int64(si.epEntries) * 8
	b += int64(len(si.sortedUnits)) * 16
	return b
}
