package dtlp

import (
	"testing"

	"kspdg/internal/graph"
)

// FuzzMakePairKey checks the PairKey normalisation invariants for arbitrary
// vertex pairs: directed keys preserve the pair as given, undirected keys are
// canonical (A <= B), order-insensitive, and never lose an endpoint.
func FuzzMakePairKey(f *testing.F) {
	f.Add(int32(0), int32(0), false)
	f.Add(int32(1), int32(2), false)
	f.Add(int32(2), int32(1), false)
	f.Add(int32(1), int32(2), true)
	f.Add(int32(2), int32(1), true)
	f.Add(int32(-1), int32(5), false)
	f.Add(int32(1<<30), int32(-(1 << 30)), true)
	f.Fuzz(func(t *testing.T, a, b int32, directed bool) {
		va, vb := graph.VertexID(a), graph.VertexID(b)
		key := MakePairKey(va, vb, directed)
		if directed {
			if key.A != va || key.B != vb {
				t.Fatalf("directed key must preserve order: MakePairKey(%d,%d,true) = %+v", va, vb, key)
			}
			return
		}
		if key.A > key.B {
			t.Fatalf("undirected key not normalised: MakePairKey(%d,%d,false) = %+v", va, vb, key)
		}
		if !(key.A == va && key.B == vb) && !(key.A == vb && key.B == va) {
			t.Fatalf("key lost an endpoint: MakePairKey(%d,%d,false) = %+v", va, vb, key)
		}
		if swapped := MakePairKey(vb, va, false); swapped != key {
			t.Fatalf("undirected key order-sensitive: (%d,%d) -> %+v but (%d,%d) -> %+v",
				va, vb, key, vb, va, swapped)
		}
	})
}
