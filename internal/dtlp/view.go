package dtlp

import (
	"math"

	"kspdg/internal/graph"
	"kspdg/internal/partition"
)

// viewRetention is the number of recently published IndexViews kept reachable
// through ViewAt.  Views older than this can no longer be resolved by epoch
// (in-flight queries that already hold a pointer keep theirs alive regardless).
const viewRetention = 32

// IndexView is an immutable epoch view of the DTLP index: the skeleton graph
// weights and every subgraph's local weights as of one published epoch.
//
// Views are copy-on-write: consecutive epochs share the weight snapshots of
// all subgraphs an update batch did not touch, which keeps publication cost
// proportional to the affected subgraphs rather than the whole index.  A view
// is safe for unrestricted concurrent use; queries running against the same
// view are guaranteed to observe a single consistent set of edge weights even
// while newer epochs are being published.
type IndexView struct {
	x     *Index
	gen   *generation // the structural generation this epoch belongs to
	epoch uint64
	skel  *graph.Snapshot   // skeleton graph weights at this epoch
	subs  []*graph.Snapshot // per-subgraph local weights, indexed by SubgraphID
}

// Epoch returns the monotonically increasing epoch number of this view.
// Epoch 0 is the state at index construction time.
func (v *IndexView) Epoch() uint64 { return v.epoch }

// Index returns the index this view was published from.
func (v *IndexView) Index() *Index { return v.x }

// Partition returns the partition as of this view's epoch.  A partition's
// vertex/edge mappings are immutable (topology updates install a new
// partition in a new generation), so the returned value stays consistent
// with this view's weight snapshots no matter what is published later.
func (v *IndexView) Partition() *partition.Partition { return v.gen.part }

// Skeleton returns the skeleton of this view's generation for id translation.
// Its topology and id mappings are immutable; weight reads must go through
// SkeletonWeights instead.
func (v *IndexView) Skeleton() *Skeleton { return v.gen.skeleton }

// SkeletonWeights returns the skeleton graph weights frozen at this epoch.
func (v *IndexView) SkeletonWeights() *graph.Snapshot { return v.skel }

// SubgraphWeights returns the local weights of subgraph id frozen at this
// epoch.
func (v *IndexView) SubgraphWeights(id partition.SubgraphID) *graph.Snapshot {
	return v.subs[id]
}

// GlobalWeight returns the weight of global edge e at this epoch, resolved
// through the owning subgraph's snapshot (the partition is edge-disjoint, so
// every edge has exactly one owner).
func (v *IndexView) GlobalWeight(e graph.EdgeID) float64 {
	if e < 0 || int(e) >= v.gen.part.Parent().NumEdges() {
		return math.Inf(1)
	}
	loc := v.gen.part.Locate(e)
	if loc.Subgraph == partition.NoSubgraph {
		return math.Inf(1)
	}
	return v.subs[loc.Subgraph].Weight(loc.LocalEdge)
}

// epochWeights adapts this view's subgraph snapshots to the shared helper
// signature.
func (v *IndexView) epochWeights(id partition.SubgraphID) graph.WeightedView {
	return v.subs[id]
}

// BoundaryLowerBounds returns, for an arbitrary (possibly non-boundary)
// global vertex u, the shortest distance at this epoch within each containing
// subgraph from u to every boundary vertex of that subgraph.  It is the
// epoch-consistent counterpart of Index.BoundaryLowerBounds.
func (v *IndexView) BoundaryLowerBounds(u graph.VertexID) map[graph.VertexID]float64 {
	return v.gen.boundaryLowerBounds(u, v.epochWeights)
}

// BoundaryLowerBoundsTo is the directed counterpart of BoundaryLowerBounds:
// per boundary vertex b of the subgraphs containing u, the within-subgraph
// distance at this epoch travelling from b to u.  For undirected graphs it
// equals BoundaryLowerBounds.
func (v *IndexView) BoundaryLowerBoundsTo(u graph.VertexID) map[graph.VertexID]float64 {
	return v.gen.boundaryLowerBoundsTo(u, v.epochWeights)
}

// WithinSubgraphDistance returns the smallest shortest-path distance from s to
// t at this epoch measured inside any single subgraph containing both, or
// +Inf if no subgraph contains both vertices.
func (v *IndexView) WithinSubgraphDistance(s, t graph.VertexID) float64 {
	return v.gen.withinSubgraphDistance(s, t, v.epochWeights)
}

// publishView builds and atomically publishes the next epoch view for the
// current generation.  Only the subgraphs in affected are re-snapshotted;
// everything else is shared with the previous view (copy-on-write).  When a
// topology update grew the subgraph list, the new tail is always snapshotted.
// Callers must hold x.writeMu.
func (x *Index) publishView(affected map[partition.SubgraphID]bool) *IndexView {
	prev := x.view.Load()
	gen := x.gen.Load()
	nv := &IndexView{
		x:    x,
		gen:  gen,
		skel: gen.skeleton.g.Snapshot(),
		subs: make([]*graph.Snapshot, len(gen.subs)),
	}
	if prev != nil {
		nv.epoch = prev.epoch + 1
	} else {
		nv.epoch = x.epochBase
	}
	for id := range nv.subs {
		sid := partition.SubgraphID(id)
		if prev != nil && id < len(prev.subs) && !affected[sid] {
			nv.subs[id] = prev.subs[id]
			continue
		}
		nv.subs[id] = gen.part.Subgraph(sid).Local.Snapshot()
	}
	x.view.Store(nv)

	x.viewMu.Lock()
	x.recent = append(x.recent, nv)
	if len(x.recent) > viewRetention {
		x.recent = x.recent[len(x.recent)-viewRetention:]
	}
	x.viewMu.Unlock()
	return nv
}

// CurrentView returns the most recently published epoch view.  The returned
// view is immutable and safe to query from any number of goroutines while
// ApplyUpdates publishes newer epochs.
func (x *Index) CurrentView() *IndexView { return x.view.Load() }

// ViewAt returns the retained view for the given epoch, or nil if that epoch
// has been evicted from the retention window (see viewRetention).
func (x *Index) ViewAt(epoch uint64) *IndexView {
	x.viewMu.Lock()
	defer x.viewMu.Unlock()
	for i := len(x.recent) - 1; i >= 0; i-- {
		if x.recent[i].epoch == epoch {
			return x.recent[i]
		}
	}
	return nil
}
