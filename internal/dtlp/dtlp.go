// Package dtlp implements the Distributed Two-Level Path index (DTLP) from
// Section 3 of the paper.
//
// The first level indexes, for every pair of boundary vertices inside a
// subgraph, a set of at most ξ bounding paths: the paths with the fewest
// virtual fragments (vfrags).  An edge with initial weight w0 consists of w0
// vfrags, each with unit weight w/w0 under the current weight w.  Bounding
// paths never change as weights evolve, which is what makes the index cheap
// to maintain; only their distances and bound distances are refreshed.  From
// the bounding paths the index derives, per subgraph, a lower bound distance
// (LBD) for each boundary pair (Theorem 1), and across subgraphs the minimum
// lower bound distance (MBD).
//
// The second level is the skeleton graph Gλ whose vertices are all boundary
// vertices and whose edge weights are the MBDs.  Gλ supplies the reference
// paths that drive the KSP-DG search.
//
// An Edge-Path index (EP-Index) maps every subgraph edge to the bounding
// paths crossing it so that a weight change only touches the affected paths
// (Algorithm 2).  The optional MFP-tree compression of the EP-Index lives in
// package mfptree.
//
// # Snapshot / epoch model
//
// The index supports snapshot-isolated concurrent querying through immutable
// epoch views (IndexView).  ApplyUpdates is the single writer: it mutates the
// subgraph weights, bounding path distances and skeleton weights under an
// internal write lock and then atomically publishes a new IndexView — a
// copy-on-write bundle of the skeleton weight snapshot plus one weight
// snapshot per subgraph, sharing the snapshots of all subgraphs the batch did
// not touch with the previous epoch.  Queries obtain a view via CurrentView
// (or resolve a specific epoch with ViewAt) and see a single consistent set
// of weights for their whole lifetime, no matter how many update batches are
// applied concurrently.  Bounding paths themselves are immutable by design,
// which is what makes copy-on-write publication cheap: only weight arrays are
// ever copied, never index structure.
package dtlp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/shortest"
)

// Config controls DTLP construction.
type Config struct {
	// Xi (ξ) is the maximum number of bounding paths kept per boundary pair.
	// It must be at least 1.  Larger values tighten the lower bounds (fewer
	// KSP-DG iterations) at higher construction and maintenance cost.
	Xi int
	// MaxEnumerate caps the number of candidate paths enumerated per pair
	// while searching for Xi distinct vfrag counts.  Zero means 3*Xi+2.
	MaxEnumerate int
	// Parallelism is the number of goroutines used to index subgraphs during
	// construction.  Zero means GOMAXPROCS.
	Parallelism int
	// UpdateParallelism is the number of goroutines ApplyUpdates uses to
	// apply edge deltas and refresh bounds across affected subgraphs.  Zero
	// means GOMAXPROCS; 1 forces the serial path.  Sharding happens inside
	// the single-writer lock, so it changes wall-clock time, never results.
	UpdateParallelism int
}

func (c Config) withDefaults() (Config, error) {
	if c.Xi < 1 {
		return c, fmt.Errorf("dtlp: Xi must be >= 1, got %d", c.Xi)
	}
	if c.MaxEnumerate <= 0 {
		c.MaxEnumerate = 3*c.Xi + 2
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c, nil
}

// PairKey identifies an ordered pair of global boundary vertices.  For
// undirected graphs the pair is normalised so that A <= B.
type PairKey struct {
	A, B graph.VertexID
}

// MakePairKey builds a PairKey, normalising the order for undirected graphs.
func MakePairKey(a, b graph.VertexID, directed bool) PairKey {
	if !directed && a > b {
		a, b = b, a
	}
	return PairKey{A: a, B: b}
}

// generation bundles the structural state of the index that a topology
// mutation replaces wholesale: the partition, the per-subgraph first-level
// indexes, the skeleton graph, and the pair->subgraph map.  All four are
// immutable in structure once a generation is published (weight updates
// mutate weights inside them, but never the structure), so readers pin a
// generation with a single atomic load and epoch views keep their generation
// alive for as long as they are referenced.
type generation struct {
	part     *partition.Partition
	subs     []*SubgraphIndex
	skeleton *Skeleton
	pairSubs map[PairKey][]partition.SubgraphID // subgraphs contributing a finite LBD for the pair
}

// Index is the DTLP index over a partitioned graph.
type Index struct {
	cfg Config

	// gen is the current structural generation.  Weight updates mutate the
	// current generation in place (weights only); topology updates derive and
	// atomically install a new one.  Epoch views pin the generation they were
	// published from, so queries on old epochs keep resolving the partition
	// and skeleton that existed at that epoch.
	gen atomic.Pointer[generation]

	// Epoch view machinery: writeMu serializes ApplyUpdates and ApplyTopology
	// (the single writer), view holds the most recently published IndexView,
	// and recent retains a window of past views so queries can be audited
	// against the exact epoch they ran on.  epochBase is the epoch of the
	// first published view: 0 for a freshly built index, the snapshot epoch
	// for a recovered one (see Importer.Finish), so epochs continue across
	// restarts.
	epochBase uint64
	writeMu   sync.Mutex
	view      atomic.Pointer[IndexView]
	viewMu    sync.Mutex
	recent    []*IndexView

	// updatePar is the ApplyUpdates sharding width (see
	// Config.UpdateParallelism); atomic so SetUpdateParallelism can retune a
	// live index without racing the writer.
	updatePar atomic.Int32
}

// SetUpdateParallelism retunes the ApplyUpdates sharding width at runtime
// (recovered indexes are built without a Config, so the flag-driven knob in
// cmd/kspd lands here).  n <= 0 restores the GOMAXPROCS default.
func (x *Index) SetUpdateParallelism(n int) {
	if n < 0 {
		n = 0
	}
	x.updatePar.Store(int32(n))
}

// updateParallelism resolves the effective sharding width.
func (x *Index) updateParallelism() int {
	if n := int(x.updatePar.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Build constructs the DTLP index for the given partition.  Subgraphs are
// indexed in parallel (the distributed deployment assigns them to workers;
// here goroutines stand in for workers during offline construction).
func Build(part *partition.Partition, cfg Config) (*Index, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	x := &Index{cfg: cfg}
	x.SetUpdateParallelism(cfg.UpdateParallelism)
	g := &generation{
		part: part,
		subs: make([]*SubgraphIndex, part.NumSubgraphs()),
	}

	// Index each subgraph (first level): bounding paths, EP-Index, LBDs.
	type job struct{ id partition.SubgraphID }
	jobs := make(chan job)
	var wg sync.WaitGroup
	errOnce := sync.Once{}
	var buildErr error
	for w := 0; w < cfg.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				si, err := buildSubgraphIndex(part.Subgraph(j.id), cfg)
				if err != nil {
					errOnce.Do(func() { buildErr = err })
					continue
				}
				g.subs[j.id] = si
			}
		}()
	}
	for id := 0; id < part.NumSubgraphs(); id++ {
		jobs <- job{id: partition.SubgraphID(id)}
	}
	close(jobs)
	wg.Wait()
	if buildErr != nil {
		return nil, buildErr
	}

	// Record which subgraphs contribute to each boundary pair, then build the
	// second level: the skeleton graph with MBD edge weights.
	if err := g.finishStructure(); err != nil {
		return nil, err
	}
	x.gen.Store(g)
	x.publishView(nil) // epoch 0: the construction-time weights
	return x, nil
}

// finishStructure derives the generation state that is a pure function of the
// partition and the per-subgraph indexes: the pair->subgraph map and the
// skeleton graph.  Registration iterates pairs in sorted order so the derived
// structures are deterministic.
func (g *generation) finishStructure() error {
	directed := g.part.Parent().Directed()
	g.pairSubs = make(map[PairKey][]partition.SubgraphID)
	for _, si := range g.subs {
		keys := make([]PairKey, 0, len(si.pairs))
		for k := range si.pairs {
			keys = append(keys, k)
		}
		sortPairKeys(keys)
		for _, key := range keys {
			gk := si.globalPairKey(key, directed)
			g.pairSubs[gk] = append(g.pairSubs[gk], si.sub.ID)
		}
	}
	skel, err := buildSkeleton(g.part, g.mbdAll(), directed)
	if err != nil {
		return err
	}
	g.skeleton = skel
	return nil
}

// Config returns the configuration the index was built with.
func (x *Index) Config() Config { return x.cfg }

// Partition returns the current partition of the index.  Topology updates
// replace the partition; callers that must stay consistent with a specific
// epoch should resolve it through that epoch's IndexView instead.
func (x *Index) Partition() *partition.Partition { return x.gen.Load().part }

// Skeleton returns the current skeleton graph Gλ (second index level).
func (x *Index) Skeleton() *Skeleton { return x.gen.Load().skeleton }

// SubgraphIndex returns the current first-level index of one subgraph.
func (x *Index) SubgraphIndex(id partition.SubgraphID) *SubgraphIndex { return x.gen.Load().subs[id] }

// LBD returns the lower bound distance between global boundary vertices a and
// b within subgraph id, or +Inf if the pair is not indexed there.
func (x *Index) LBD(id partition.SubgraphID, a, b graph.VertexID) float64 {
	return x.gen.Load().subs[id].LBDGlobal(a, b)
}

// MBD returns the minimum lower bound distance between global boundary
// vertices a and b across all subgraphs containing both, or +Inf if no
// subgraph indexes the pair.
func (x *Index) MBD(a, b graph.VertexID) float64 {
	return x.gen.Load().mbd(a, b)
}

// mbd computes the minimum lower bound distance of one boundary pair within
// this generation.
func (g *generation) mbd(a, b graph.VertexID) float64 {
	key := MakePairKey(a, b, g.part.Parent().Directed())
	best := inf()
	for _, id := range g.pairSubs[key] {
		if d := g.subs[id].LBDGlobal(a, b); d < best {
			best = d
		}
	}
	return best
}

// mbdAll computes the MBD of every indexed boundary pair.
func (g *generation) mbdAll() map[PairKey]float64 {
	out := make(map[PairKey]float64)
	for key, subs := range g.pairSubs {
		best := inf()
		for _, id := range subs {
			if d := g.subs[id].LBDGlobal(key.A, key.B); d < best {
				best = d
			}
		}
		if best < inf() {
			out[key] = best
		}
	}
	return out
}

// weightsAt resolves the weighted view a subgraph computation runs over: the
// live local graph (Index methods) or an epoch snapshot (IndexView methods).
type weightsAt func(partition.SubgraphID) graph.WeightedView

// liveWeights reads each subgraph's live local graph.
func (g *generation) liveWeights(id partition.SubgraphID) graph.WeightedView {
	return g.part.Subgraph(id).Local
}

// BoundaryLowerBounds returns, for an arbitrary (possibly non-boundary)
// global vertex v, a lower bound on the distance within each containing
// subgraph from v to every boundary vertex of that subgraph.  This implements
// the Step 1 handling of non-boundary query endpoints (Section 5.3): the
// returned map is used to attach v to the skeleton graph.
//
// The bound used is the exact shortest distance inside the subgraph, which is
// a valid (and the tightest possible) lower bound for the first/last segment
// of any path leaving the subgraph through a boundary vertex.
func (x *Index) BoundaryLowerBounds(v graph.VertexID) map[graph.VertexID]float64 {
	g := x.gen.Load()
	return g.boundaryLowerBounds(v, g.liveWeights)
}

func (g *generation) boundaryLowerBounds(v graph.VertexID, at weightsAt) map[graph.VertexID]float64 {
	out := make(map[graph.VertexID]float64)
	for _, id := range g.part.SubgraphsOf(v) {
		for bv, d := range g.subs[id].boundaryDistancesFrom(v, at(id)) {
			if cur, ok := out[bv]; !ok || d < cur {
				out[bv] = d
			}
		}
	}
	return out
}

// BoundaryLowerBoundsTo is the directed counterpart of BoundaryLowerBounds:
// it returns, per boundary vertex b of the subgraphs containing v, a lower
// bound on the within-subgraph distance travelling from b to v.  For
// undirected graphs it equals BoundaryLowerBounds.
func (x *Index) BoundaryLowerBoundsTo(v graph.VertexID) map[graph.VertexID]float64 {
	g := x.gen.Load()
	return g.boundaryLowerBoundsTo(v, g.liveWeights)
}

func (g *generation) boundaryLowerBoundsTo(v graph.VertexID, at weightsAt) map[graph.VertexID]float64 {
	if !g.part.Parent().Directed() {
		return g.boundaryLowerBounds(v, at)
	}
	out := make(map[graph.VertexID]float64)
	for _, id := range g.part.SubgraphsOf(v) {
		for bv, d := range g.subs[id].boundaryDistancesTo(v, at(id)) {
			if cur, ok := out[bv]; !ok || d < cur {
				out[bv] = d
			}
		}
	}
	return out
}

// WithinSubgraphDistance returns the smallest shortest-path distance from s
// to t measured inside any single subgraph containing both, or +Inf if no
// subgraph contains both vertices.  KSP-DG uses it to attach a direct edge
// between two non-boundary query endpoints that share a subgraph.
func (x *Index) WithinSubgraphDistance(s, t graph.VertexID) float64 {
	g := x.gen.Load()
	return g.withinSubgraphDistance(s, t, g.liveWeights)
}

func (g *generation) withinSubgraphDistance(s, t graph.VertexID, at weightsAt) float64 {
	best := inf()
	for _, id := range g.part.CommonSubgraphs(s, t) {
		sub := g.part.Subgraph(id)
		ls, okS := sub.ToLocal(s)
		lt, okT := sub.ToLocal(t)
		if !okS || !okT {
			continue
		}
		if d := shortest.ShortestDistance(at(id), ls, lt, nil); d < best {
			best = d
		}
	}
	return best
}

// ApplyUpdates ingests a batch of global edge weight updates: it propagates
// the new weights to the owning subgraphs' local graphs, refreshes the
// affected bounding path distances via the EP-Index, recomputes lower bound
// distances, and updates the skeleton graph edge weights (Algorithm 2).
//
// The parent graph itself is not modified; callers that also track the full
// graph (the master node) apply the same batch there.
//
// ApplyUpdates is the index's single writer: concurrent calls are serialized
// internally, and once a call returns a new epoch view reflecting the whole
// batch has been published atomically (see CurrentView).  Queries running
// against previously obtained views are unaffected.
func (x *Index) ApplyUpdates(batch []graph.WeightUpdate) error {
	_, err := x.ApplyUpdatesStats(batch)
	return err
}

// ApplyUpdatesEpoch is ApplyUpdates returning the epoch published for the
// batch (or the current epoch for an empty batch).  The persistence layer
// uses it to tag WAL records with the exact epoch their batch produced.
func (x *Index) ApplyUpdatesEpoch(batch []graph.WeightUpdate) (uint64, error) {
	st, err := x.ApplyUpdatesStats(batch)
	return st.Epoch, err
}

// UpdateStats reports the maintenance work one update batch performed.
type UpdateStats struct {
	// Epoch is the epoch published for the batch (or the current epoch for
	// an empty batch).
	Epoch uint64
	// PathsTouched counts the bounding path distance adjustments the batch
	// caused: one per (updated edge, bounding path crossing it) EP-Index
	// entry with a nonzero delta.
	PathsTouched int
	// SubgraphsAffected counts the subgraphs whose bounds were refreshed.
	SubgraphsAffected int
	// PairsChanged counts the distinct boundary pairs whose skeleton weight
	// was recomputed because some subgraph's LBD for them changed.
	PairsChanged int
}

// ApplyUpdatesStats is ApplyUpdates returning per-batch maintenance
// statistics (published epoch, bounding paths touched, subgraphs refreshed,
// skeleton pairs recomputed).
//
// Maintenance is sharded: edge deltas are grouped per subgraph (preserving
// batch order within each group, so floating-point accumulation matches the
// serial path exactly) and the per-subgraph applyEdgeDelta+refreshBounds work
// runs on up to UpdateParallelism goroutines — each subgraph's first-level
// state is independent, which is what the paper exploits by assigning
// subgraphs to different SubgraphBolts.  Skeleton weights are then recomputed
// serially from the deterministically sorted union of changed pairs; since
// every subgraph whose LBD changed reports the pair itself, computing MBDs
// after all refreshes yields the same final weights as the serial
// interleaving.  Epoch publication stays atomic and single-writer.
func (x *Index) ApplyUpdatesStats(batch []graph.WeightUpdate) (UpdateStats, error) {
	if len(batch) == 0 {
		return UpdateStats{Epoch: x.CurrentView().Epoch()}, nil
	}
	x.writeMu.Lock()
	defer x.writeMu.Unlock()
	g := x.gen.Load()
	// Capture pre-update weights to derive the deltas used for incremental
	// bounding path distance maintenance, grouped per owning subgraph in
	// batch order.
	type pendingDelta struct {
		local graph.EdgeID
		delta float64
	}
	perSub := make(map[partition.SubgraphID][]pendingDelta)
	numEdges := g.part.Parent().NumEdges()
	for _, u := range batch {
		if u.Edge < 0 || int(u.Edge) >= numEdges {
			return UpdateStats{}, fmt.Errorf("dtlp: update for edge %d outside [0,%d)", u.Edge, numEdges)
		}
		loc := g.part.Locate(u.Edge)
		if loc.Subgraph == partition.NoSubgraph {
			return UpdateStats{}, fmt.Errorf("dtlp: update for edge %d not covered by partition", u.Edge)
		}
		old := g.part.Subgraph(loc.Subgraph).Local.Weight(loc.LocalEdge)
		if delta := u.NewWeight - old; delta != 0 {
			perSub[loc.Subgraph] = append(perSub[loc.Subgraph], pendingDelta{local: loc.LocalEdge, delta: delta})
		}
	}
	// Push new weights into the subgraph local graphs.
	if _, err := g.part.ApplyUpdates(batch); err != nil {
		return UpdateStats{}, err
	}
	affectedIDs := make([]partition.SubgraphID, 0, len(perSub))
	for id := range perSub {
		affectedIDs = append(affectedIDs, id)
	}
	sort.Slice(affectedIDs, func(i, j int) bool { return affectedIDs[i] < affectedIDs[j] })
	// Shard the EP-Index distance adjustments and bound refreshes across the
	// affected subgraphs.  refreshOne touches only subgraph-local state (and
	// reads the already-updated local weights), so the shards are disjoint.
	changed := make([][]PairKey, len(affectedIDs))
	touchedPer := make([]int, len(affectedIDs))
	refreshOne := func(i int) {
		si := g.subs[affectedIDs[i]]
		touched := 0
		for _, d := range perSub[affectedIDs[i]] {
			touched += si.applyEdgeDelta(d.local, d.delta)
		}
		touchedPer[i] = touched
		changed[i] = si.refreshBounds()
	}
	if par := x.updateParallelism(); par <= 1 || len(affectedIDs) <= 1 {
		for i := range affectedIDs {
			refreshOne(i)
		}
	} else {
		if par > len(affectedIDs) {
			par = len(affectedIDs)
		}
		jobs := make(chan int)
		var wg sync.WaitGroup
		for g := 0; g < par; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					refreshOne(i)
				}
			}()
		}
		for i := range affectedIDs {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	st := UpdateStats{SubgraphsAffected: len(affectedIDs)}
	for _, t := range touchedPer {
		st.PathsTouched += t
	}
	// Recompute the skeleton weights for every pair whose LBD changed in some
	// subgraph.  The union is sorted (and deduplicated) so the write order is
	// deterministic regardless of which goroutine finished first; the MBDs
	// themselves are order-independent minima over the refreshed LBDs.
	directed := g.part.Parent().Directed()
	var changedPairs []PairKey
	for i, id := range affectedIDs {
		si := g.subs[id]
		for _, localPair := range changed[i] {
			changedPairs = append(changedPairs, si.globalPairKey(localPair, directed))
		}
	}
	sort.Slice(changedPairs, func(i, j int) bool {
		if changedPairs[i].A != changedPairs[j].A {
			return changedPairs[i].A < changedPairs[j].A
		}
		return changedPairs[i].B < changedPairs[j].B
	})
	var prev PairKey
	for i, gk := range changedPairs {
		if i > 0 && gk == prev {
			continue
		}
		prev = gk
		st.PairsChanged++
		mbd := g.mbd(gk.A, gk.B)
		if err := g.skeleton.SetWeight(gk, mbd); err != nil {
			return UpdateStats{}, err
		}
	}
	// Publish the next epoch: re-snapshot only the touched subgraphs, share
	// everything else with the previous view.
	affected := make(map[partition.SubgraphID]bool, len(affectedIDs))
	for _, id := range affectedIDs {
		affected[id] = true
	}
	nv := x.publishView(affected)
	st.Epoch = nv.epoch
	return st, nil
}

// PathsCrossing counts the EP-Index entries of the batch's edges: the number
// of bounding path distance adjustments applying the batch would perform
// (duplicate edges in the batch count each time, mirroring ApplyUpdates).
// Bounding path structure is immutable after construction, so the count is
// safe to take concurrently with queries and updates.  Edges outside the
// partition count zero.
func (x *Index) PathsCrossing(batch []graph.WeightUpdate) int {
	g := x.gen.Load()
	numEdges := g.part.Parent().NumEdges()
	n := 0
	for _, u := range batch {
		if u.Edge < 0 || int(u.Edge) >= numEdges {
			continue
		}
		loc := g.part.Locate(u.Edge)
		if loc.Subgraph == partition.NoSubgraph {
			continue
		}
		n += len(g.subs[loc.Subgraph].epIndex[loc.LocalEdge])
	}
	return n
}

// Stats summarises index size for the construction-cost experiments
// (Figures 15-18) and Table 1.
type Stats struct {
	NumSubgraphs        int
	NumBoundaryVertices int
	SkeletonVertices    int
	SkeletonEdges       int
	NumBoundingPaths    int
	EPIndexEntries      int // total (edge -> path) entries across all subgraphs
	ApproxBytes         int64
}

// Stats returns size statistics of the index.
func (x *Index) Stats() Stats {
	g := x.gen.Load()
	st := Stats{
		NumSubgraphs:        g.part.NumSubgraphs(),
		NumBoundaryVertices: len(g.part.BoundaryVertices()),
		SkeletonVertices:    g.skeleton.NumVertices(),
		SkeletonEdges:       g.skeleton.NumEdges(),
	}
	for _, si := range g.subs {
		st.NumBoundingPaths += si.numPaths
		st.EPIndexEntries += si.epEntries
		st.ApproxBytes += si.approxBytes()
	}
	st.ApproxBytes += int64(st.SkeletonEdges) * 24
	return st
}

func inf() float64 { return infValue }
