package dtlp

import (
	"fmt"
	"sort"
	"sync"

	"kspdg/internal/graph"
	"kspdg/internal/partition"
)

// Skeleton is the second level of DTLP: the skeleton graph Gλ (Section 3.6).
// Its vertices are the boundary vertices of all subgraphs; two vertices are
// connected iff they are boundary vertices of a common subgraph with a finite
// lower bound distance, and the edge weight is the minimum lower bound
// distance (MBD) between them.
//
// The skeleton's topology is fixed once built (bounding paths, and hence
// reachability within subgraphs, do not depend on weights); only the edge
// weights change as the underlying graph evolves.  A Skeleton is safe for
// concurrent readers with a single writer (the index maintenance path).
type Skeleton struct {
	directed bool
	// g is the skeleton graph over compact skeleton vertex ids.
	g *graph.Graph
	// globals maps skeleton vertex id -> global boundary vertex id.
	globals []graph.VertexID
	toSkel  map[graph.VertexID]graph.VertexID

	mu       sync.RWMutex
	pairEdge map[PairKey]graph.EdgeID // global pair -> skeleton edge
}

// buildSkeleton constructs the skeleton graph from the per-pair MBDs.
func buildSkeleton(part *partition.Partition, mbd map[PairKey]float64, directed bool) (*Skeleton, error) {
	boundary := part.BoundaryVertices()
	s := &Skeleton{
		directed: directed,
		globals:  append([]graph.VertexID(nil), boundary...),
		toSkel:   make(map[graph.VertexID]graph.VertexID, len(boundary)),
		pairEdge: make(map[PairKey]graph.EdgeID, len(mbd)),
	}
	for i, v := range s.globals {
		s.toSkel[v] = graph.VertexID(i)
	}
	b := graph.NewBuilder(len(s.globals), directed)
	// Deterministic edge order: iterate pairs sorted by (A, B).
	keys := make([]PairKey, 0, len(mbd))
	for k := range mbd {
		keys = append(keys, k)
	}
	sortPairKeys(keys)
	for _, k := range keys {
		sa, okA := s.toSkel[k.A]
		sb, okB := s.toSkel[k.B]
		if !okA || !okB {
			return nil, fmt.Errorf("dtlp: pair (%d,%d) references non-boundary vertex", k.A, k.B)
		}
		e, err := b.AddEdge(sa, sb, mbd[k])
		if err != nil {
			return nil, fmt.Errorf("dtlp: building skeleton: %w", err)
		}
		s.pairEdge[k] = e
	}
	s.g = b.Build()
	return s, nil
}

func sortPairKeys(keys []PairKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].A != keys[j].A {
			return keys[i].A < keys[j].A
		}
		return keys[i].B < keys[j].B
	})
}

// Graph returns the underlying skeleton graph (vertices are skeleton ids).
func (s *Skeleton) Graph() *graph.Graph { return s.g }

// Directed reports whether the skeleton graph is directed.
func (s *Skeleton) Directed() bool { return s.directed }

// NumVertices returns the number of skeleton vertices (boundary vertices).
func (s *Skeleton) NumVertices() int { return len(s.globals) }

// NumEdges returns the number of skeleton edges.
func (s *Skeleton) NumEdges() int { return s.g.NumEdges() }

// SkelID translates a global boundary vertex to its skeleton id.
func (s *Skeleton) SkelID(global graph.VertexID) (graph.VertexID, bool) {
	id, ok := s.toSkel[global]
	return id, ok
}

// GlobalID translates a skeleton id back to the global vertex id.
func (s *Skeleton) GlobalID(skel graph.VertexID) graph.VertexID { return s.globals[skel] }

// GlobalPath translates a path over skeleton ids into global vertex ids.
func (s *Skeleton) GlobalPath(p graph.Path) graph.Path {
	out := graph.Path{Vertices: make([]graph.VertexID, len(p.Vertices)), Dist: p.Dist}
	for i, v := range p.Vertices {
		out.Vertices[i] = s.globals[v]
	}
	return out
}

// Weight returns the current MBD weight of the skeleton edge between the
// global boundary vertices a and b, or +Inf if no such edge exists.
func (s *Skeleton) Weight(a, b graph.VertexID) float64 {
	key := MakePairKey(a, b, s.directed)
	s.mu.RLock()
	e, ok := s.pairEdge[key]
	s.mu.RUnlock()
	if !ok {
		return infValue
	}
	return s.g.Weight(e)
}

// SetWeight updates the skeleton edge weight for the global pair key to the
// new MBD.  Pairs without a skeleton edge are ignored (they were unreachable
// within every subgraph at construction time, which cannot change).
func (s *Skeleton) SetWeight(key PairKey, mbd float64) error {
	s.mu.RLock()
	e, ok := s.pairEdge[key]
	s.mu.RUnlock()
	if !ok {
		return nil
	}
	if mbd < 0 || mbd == infValue {
		return fmt.Errorf("dtlp: invalid skeleton weight %g for pair (%d,%d)", mbd, key.A, key.B)
	}
	_, err := s.g.UpdateWeight(e, mbd)
	return err
}

// Snapshot returns a consistent snapshot of the skeleton graph weights for
// query processing, along with the id mappings needed to interpret it.
func (s *Skeleton) Snapshot() *SkeletonView {
	return &SkeletonView{skel: s, snap: s.g.Snapshot()}
}

// SkeletonView is an immutable view of the skeleton graph taken at a point in
// time.  In the distributed deployment each worker holds a replica of the
// skeleton; a SkeletonView models the worker-local copy a query runs against.
type SkeletonView struct {
	skel *Skeleton
	snap *graph.Snapshot
}

// View returns the weighted view of the skeleton snapshot.
func (v *SkeletonView) View() graph.WeightedView { return v.snap }

// Skeleton returns the parent skeleton (for id translation).
func (v *SkeletonView) Skeleton() *Skeleton { return v.skel }
