package dtlp

import (
	"sync"

	"kspdg/internal/graph"
	"kspdg/internal/partition"
)

// TopologyStats reports the maintenance work one topology batch performed.
type TopologyStats struct {
	// Epoch is the epoch published for the batch (or the current epoch for
	// an empty batch).
	Epoch uint64
	// InsertedEdges are the global ids assigned to the batch's InsertEdges,
	// in order.  Nil for an empty batch.
	InsertedEdges []graph.EdgeID
	// DeletedEdges are the sorted global ids of all edges the batch removed,
	// including edges deleted because an endpoint vertex was deleted.
	DeletedEdges []graph.EdgeID
	// SubgraphsRebuilt counts the subgraphs whose bounding paths and EP-Index
	// were re-enumerated — the incremental-maintenance cost of the batch.
	SubgraphsRebuilt int
	// SubgraphsTotal is the subgraph count after the batch, for reference.
	SubgraphsTotal int
}

// ApplyTopology ingests a batch of topology mutations: it derives a new
// parent graph and partition (copy-on-write; see graph.Graph.ApplyTopology
// and partition.Partition.ApplyTopology), re-enumerates bounding paths and
// EP-Index entries only for the subgraphs the batch touched, rebuilds the
// skeleton graph, and publishes the result as a normal epoch so the
// snapshot-isolated read path observes it exactly like a weight batch.
// Queries running against earlier epochs keep the old generation alive and
// are completely unaffected.
//
// ApplyTopology shares the single-writer lock with ApplyUpdates, so topology
// and weight batches serialize against each other in arrival order.
func (x *Index) ApplyTopology(up graph.TopologyUpdate) error {
	_, err := x.ApplyTopologyStats(up)
	return err
}

// ApplyTopologyEpoch is ApplyTopology returning the epoch published for the
// batch (or the current epoch for an empty batch).
func (x *Index) ApplyTopologyEpoch(up graph.TopologyUpdate) (uint64, error) {
	st, err := x.ApplyTopologyStats(up)
	return st.Epoch, err
}

// ApplyTopologyStats is ApplyTopology returning per-batch maintenance
// statistics.  Touched-subgraph rebuilds are sharded across up to
// UpdateParallelism goroutines; each rebuild is independent of the others, so
// the sharding changes wall-clock time, never results.
func (x *Index) ApplyTopologyStats(up graph.TopologyUpdate) (TopologyStats, error) {
	if up.IsZero() {
		return TopologyStats{Epoch: x.CurrentView().Epoch()}, nil
	}
	x.writeMu.Lock()
	defer x.writeMu.Unlock()
	old := x.gen.Load()

	newParent, inserted, deleted, err := old.part.Parent().ApplyTopology(up)
	if err != nil {
		return TopologyStats{}, err
	}
	newPart, touched, err := old.part.ApplyTopology(newParent, up, inserted, deleted)
	if err != nil {
		return TopologyStats{}, err
	}

	// Rebuild the first-level index of every touched subgraph; everything
	// else is shared with the previous generation (the partition shares the
	// corresponding *Subgraph values, so the old indexes stay valid).
	subs := make([]*SubgraphIndex, newPart.NumSubgraphs())
	copy(subs, old.subs)
	var rebuildErr error
	var errOnce sync.Once
	rebuild := func(id partition.SubgraphID) {
		si, err := buildSubgraphIndex(newPart.Subgraph(id), x.cfg)
		if err != nil {
			errOnce.Do(func() { rebuildErr = err })
			return
		}
		subs[id] = si
	}
	if par := x.updateParallelism(); par <= 1 || len(touched) <= 1 {
		for _, id := range touched {
			rebuild(id)
		}
	} else {
		if par > len(touched) {
			par = len(touched)
		}
		jobs := make(chan partition.SubgraphID)
		var wg sync.WaitGroup
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for id := range jobs {
					rebuild(id)
				}
			}()
		}
		for _, id := range touched {
			jobs <- id
		}
		close(jobs)
		wg.Wait()
	}
	if rebuildErr != nil {
		return TopologyStats{}, rebuildErr
	}

	// Boundary membership and cross-subgraph minima can shift globally, so
	// the pair->subgraph map and the skeleton are rebuilt wholesale (both are
	// cheap relative to bounding-path enumeration and fully deterministic).
	ng := &generation{part: newPart, subs: subs}
	if err := ng.finishStructure(); err != nil {
		return TopologyStats{}, err
	}

	// Publish: install the generation, then publish the next epoch view.
	// Untouched subgraphs share their weight snapshots with the previous
	// epoch exactly like a weight batch.
	x.gen.Store(ng)
	affected := make(map[partition.SubgraphID]bool, len(touched))
	for _, id := range touched {
		affected[id] = true
	}
	nv := x.publishView(affected)
	return TopologyStats{
		Epoch:            nv.epoch,
		InsertedEdges:    inserted,
		DeletedEdges:     deleted,
		SubgraphsRebuilt: len(touched),
		SubgraphsTotal:   newPart.NumSubgraphs(),
	}, nil
}
