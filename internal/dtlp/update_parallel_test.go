package dtlp

import (
	"math/rand"
	"testing"

	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/testutil"
)

// TestApplyUpdatesStatsTouchedCount asserts that the reported PathsTouched is
// the real EP-Index count for the batch's edges, not the batch size.
func TestApplyUpdatesStatsTouchedCount(t *testing.T) {
	g, _, x := buildPaperIndex(t, 2)
	var batch []graph.WeightUpdate
	for e := graph.EdgeID(0); int(e) < g.NumEdges(); e++ {
		// Delta is always nonzero, so every EP-Index entry of every batch
		// edge is adjusted and PathsCrossing predicts the count exactly.
		batch = append(batch, graph.WeightUpdate{Edge: e, NewWeight: g.Weight(e) + 1})
	}
	want := x.PathsCrossing(batch)
	if want <= 0 {
		t.Fatalf("PathsCrossing = %d, want > 0", want)
	}
	st, err := x.ApplyUpdatesStats(batch)
	if err != nil {
		t.Fatal(err)
	}
	if st.PathsTouched != want {
		t.Errorf("PathsTouched = %d, want EP-Index count %d", st.PathsTouched, want)
	}
	if st.PathsTouched == len(batch) {
		t.Errorf("PathsTouched equals batch size %d; the count must come from the EP-Index", len(batch))
	}
	if st.SubgraphsAffected <= 0 {
		t.Errorf("SubgraphsAffected = %d, want > 0", st.SubgraphsAffected)
	}
	if st.Epoch == 0 {
		t.Errorf("Epoch = 0, want the published epoch")
	}
}

// TestApplyUpdatesShardedMatchesSerial drives two identical indexes — one
// refreshing serially, one with a wide shard pool — through the same update
// rounds and requires identical maintenance stats, LBDs and MBDs after every
// round.
func TestApplyUpdatesShardedMatchesSerial(t *testing.T) {
	build := func(par int) (*graph.Graph, *Index) {
		rng := rand.New(rand.NewSource(7))
		g := testutil.RandomConnected(rng, 120, 80)
		p, err := partition.PartitionGraph(g, 8)
		if err != nil {
			t.Fatal(err)
		}
		x, err := Build(p, Config{Xi: 2, UpdateParallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		return g, x
	}
	gSerial, serial := build(1)
	gPar, par := build(8)

	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 4; round++ {
		batch := testutil.PerturbWeights(t, gSerial, rng, 0.4, 0.6, 0.05)
		if err := gPar.ApplyUpdates(batch); err != nil {
			t.Fatal(err)
		}
		stS, err := serial.ApplyUpdatesStats(batch)
		if err != nil {
			t.Fatal(err)
		}
		stP, err := par.ApplyUpdatesStats(batch)
		if err != nil {
			t.Fatal(err)
		}
		if stS != stP {
			t.Fatalf("round %d: stats diverge: serial %+v, sharded %+v", round, stS, stP)
		}
		boundary := serial.Partition().BoundaryVertices()
		for i, a := range boundary {
			for _, b := range boundary[i+1:] {
				mS, mP := serial.MBD(a, b), par.MBD(a, b)
				if mS != mP {
					t.Fatalf("round %d: MBD(%d,%d) diverges: serial %v, sharded %v", round, a, b, mS, mP)
				}
			}
		}
	}
}
