// Package mfptree implements the EP-Index compression scheme of Section 4 of
// the paper: edges whose bounding-path sets are similar (high Jaccard
// similarity, estimated with MinHash and grouped with banded LSH) are placed
// in the same group, and within each group the path sets are compacted into a
// modified FP-tree (MFP-tree) that shares common prefixes.  The per-group
// trees are merged under a common root, producing the forest Te.
//
// The forest supports the same operation the flat EP-Index provides — "give
// me every bounding path that crosses edge e" — by locating the edge's tail
// node and walking up exactly |P_e| ancestors, so weight-change maintenance
// (Algorithm 2) works directly on the compressed representation.
package mfptree

import (
	"fmt"
	"sort"

	"kspdg/internal/graph"
)

// PathID identifies a bounding path within one subgraph index.
type PathID = int

// Config controls MinHash signature generation and LSH banding.
type Config struct {
	// NumHashes is the number of MinHash functions (rows of the signature
	// matrix).  Zero means 8.
	NumHashes int
	// Bands is the number of LSH bands; it must divide NumHashes.  Zero
	// means 4.  Edges that collide in at least one band share a group.
	Bands int
	// Seed makes signature generation deterministic.
	Seed uint64
}

func (c Config) withDefaults() (Config, error) {
	if c.NumHashes == 0 {
		c.NumHashes = 8
	}
	if c.Bands == 0 {
		c.Bands = 4
	}
	if c.NumHashes <= 0 || c.Bands <= 0 {
		return c, fmt.Errorf("mfptree: NumHashes and Bands must be positive")
	}
	if c.NumHashes%c.Bands != 0 {
		return c, fmt.Errorf("mfptree: Bands (%d) must divide NumHashes (%d)", c.Bands, c.NumHashes)
	}
	return c, nil
}

// node is one MFP-tree node.  Normal nodes carry a bounding path id; tail
// nodes carry the edge whose path set ends at that node together with the
// size of that path set.
type node struct {
	parent   *node
	children []*node

	// isTail distinguishes tail (edge) nodes from normal (path) nodes.
	isTail bool
	path   PathID       // valid when !isTail
	edge   graph.EdgeID // valid when isTail
	setLen int          // valid when isTail: |P_edge|
}

// Forest is the merged MFP-tree Te for one subgraph's EP-Index.
type Forest struct {
	cfg    Config
	roots  []*node                // one root per group tree
	tails  map[graph.EdgeID]*node // edge -> its tail node
	groups [][]graph.EdgeID       // LSH grouping of edges
	// pathIndex maps a path id to every node carrying it, used to find the
	// longest matching prefix during insertion.
	pathIndex map[PathID][]*node

	numNodes       int
	uncompressed   int // total EP-Index entries (sum of |P_e|)
	totalPathNodes int // normal nodes in the forest
}

// Build compresses the given EP-Index content (edge -> path id set) into a
// merged MFP-tree forest.
func Build(pathSets map[graph.EdgeID][]PathID, cfg Config) (*Forest, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	f := &Forest{
		cfg:       cfg,
		tails:     make(map[graph.EdgeID]*node, len(pathSets)),
		pathIndex: make(map[PathID][]*node),
	}
	for _, set := range pathSets {
		f.uncompressed += len(set)
	}

	// Group edges whose path sets are likely similar.
	f.groups = lshGroups(pathSets, cfg)

	// Build one MFP-tree per group and hang all group roots under the forest.
	for _, group := range f.groups {
		root := f.buildGroupTree(group, pathSets)
		if root != nil {
			f.roots = append(f.roots, root)
		}
	}
	return f, nil
}

// buildGroupTree builds the MFP-tree of one edge group.
func (f *Forest) buildGroupTree(group []graph.EdgeID, pathSets map[graph.EdgeID][]PathID) *node {
	// Frequency of each path across the group's path sets; paths that occur
	// in many sets sort first so that shared prefixes align.
	freq := make(map[PathID]int)
	for _, e := range group {
		for _, p := range pathSets[e] {
			freq[p]++
		}
	}
	root := &node{}
	f.numNodes++ // group root

	// Deterministic edge order inside the group.
	edges := append([]graph.EdgeID(nil), group...)
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })

	for _, e := range edges {
		set := pathSets[e]
		if len(set) == 0 {
			continue
		}
		seq := append([]PathID(nil), set...)
		sort.Slice(seq, func(i, j int) bool {
			if freq[seq[i]] != freq[seq[j]] {
				return freq[seq[i]] > freq[seq[j]]
			}
			return seq[i] < seq[j]
		})
		f.insert(root, e, seq)
	}
	return root
}

// insert adds the sequence seq followed by the tail node for edge e into the
// tree rooted at root, reusing the longest matching prefix already present in
// the forest (the match may start at any node of this group's tree, per the
// paper's modification of the FP-tree).
func (f *Forest) insert(root *node, e graph.EdgeID, seq []PathID) {
	attach, matched := f.longestPrefixNode(root, seq)
	cur := attach
	if cur == nil {
		cur = root
	}
	for _, p := range seq[matched:] {
		child := &node{parent: cur, path: p}
		cur.children = append(cur.children, child)
		f.pathIndex[p] = append(f.pathIndex[p], child)
		f.numNodes++
		f.totalPathNodes++
		cur = child
	}
	tail := &node{parent: cur, isTail: true, edge: e, setLen: len(seq)}
	cur.children = append(cur.children, tail)
	f.tails[e] = tail
	f.numNodes++
}

// longestPrefixNode finds the deepest node of a chain matching a prefix of
// seq within the tree rooted at root.  It returns the last matched node and
// the number of matched elements (0 if no match, in which case the sequence
// is inserted at the root).
func (f *Forest) longestPrefixNode(root *node, seq []PathID) (*node, int) {
	if len(seq) == 0 {
		return root, 0
	}
	bestNode := (*node)(nil)
	bestLen := 0
	// Candidate starting points: every existing node labelled seq[0] that
	// belongs to this group's tree.
	for _, start := range f.pathIndex[seq[0]] {
		if !inTree(start, root) {
			continue
		}
		n := start
		length := 1
		for length < len(seq) {
			var next *node
			for _, c := range n.children {
				if !c.isTail && c.path == seq[length] {
					next = c
					break
				}
			}
			if next == nil {
				break
			}
			n = next
			length++
		}
		if length > bestLen {
			bestLen = length
			bestNode = n
			if bestLen == len(seq) {
				break
			}
		}
	}
	if bestNode == nil {
		return root, 0
	}
	return bestNode, bestLen
}

// inTree reports whether n belongs to the tree rooted at root.
func inTree(n, root *node) bool {
	for cur := n; cur != nil; cur = cur.parent {
		if cur == root {
			return true
		}
	}
	return false
}

// PathsForEdge returns the bounding path ids whose paths cross edge e, by
// walking up |P_e| ancestors from the edge's tail node.  It returns nil if
// the edge is unknown.
func (f *Forest) PathsForEdge(e graph.EdgeID) []PathID {
	tail, ok := f.tails[e]
	if !ok {
		return nil
	}
	out := make([]PathID, 0, tail.setLen)
	cur := tail.parent
	for i := 0; i < tail.setLen && cur != nil; i++ {
		out = append(out, cur.path)
		cur = cur.parent
	}
	return out
}

// VisitPathsForEdge calls visit for every bounding path id crossing edge e.
// This is the maintenance hook of Algorithm 2 on the compressed index: the
// caller updates the distance of each visited path by the weight delta.
func (f *Forest) VisitPathsForEdge(e graph.EdgeID, visit func(PathID)) {
	tail, ok := f.tails[e]
	if !ok {
		return
	}
	cur := tail.parent
	for i := 0; i < tail.setLen && cur != nil; i++ {
		visit(cur.path)
		cur = cur.parent
	}
}

// Groups returns the LSH edge grouping the forest was built with.
func (f *Forest) Groups() [][]graph.EdgeID { return f.groups }

// NumEdges returns the number of edges indexed.
func (f *Forest) NumEdges() int { return len(f.tails) }

// Stats summarises the compression achieved.
type Stats struct {
	Edges               int
	Groups              int
	UncompressedEntries int     // flat EP-Index entries (one per edge-path pair)
	PathNodes           int     // normal nodes stored in the forest
	TotalNodes          int     // including group roots and tail nodes
	CompressionRatio    float64 // PathNodes / UncompressedEntries (lower is better)
}

// Stats returns compression statistics.
func (f *Forest) Stats() Stats {
	st := Stats{
		Edges:               len(f.tails),
		Groups:              len(f.groups),
		UncompressedEntries: f.uncompressed,
		PathNodes:           f.totalPathNodes,
		TotalNodes:          f.numNodes,
	}
	if f.uncompressed > 0 {
		st.CompressionRatio = float64(f.totalPathNodes) / float64(f.uncompressed)
	}
	return st
}
