package mfptree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/testutil"
)

// figure8PathSets reproduces the EP-Index of Figures 8-9 of the paper: twelve
// bounding paths P1..P12 between v1 and v10 over fifteen edges.  Edge ids are
// synthetic; the path sets mirror the figure's columns.
func figure8PathSets() map[graph.EdgeID][]PathID {
	return map[graph.EdgeID][]PathID{
		0:  {4, 5},                // e1,2
		1:  {1, 6, 7, 8, 9},       // e1,4
		2:  {2, 3, 9, 10, 11, 12}, // e1,5
		3:  {4, 5},                // e2,5
		4:  {6, 7, 9},             // e4,5
		5:  {1, 8, 9},             // e4,7
		6:  {10},                  // e5,6
		7:  {2, 4, 6, 11},         // e5,8
		8:  {3, 5, 7, 12},         // e5,9
		9:  {10},                  // e6,9
		10: {8, 11},               // e7,8
		11: {12},                  // e8,9
		12: {1, 9, 11},            // e7,10
		13: {2, 4, 6, 8, 12},      // e8,10
		14: {3, 5, 7, 10},         // e9,10
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []PathID
		want float64
	}{
		{[]PathID{1, 2, 3}, []PathID{1, 2, 3}, 1},
		{[]PathID{1, 2}, []PathID{3, 4}, 0},
		{[]PathID{1, 2, 3}, []PathID{2, 3, 4}, 0.5},
		{nil, nil, 1},
		{[]PathID{1}, nil, 0},
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); got != c.want {
			t.Errorf("Jaccard(%v,%v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestSignatureEstimatesJaccard(t *testing.T) {
	cfg := Config{NumHashes: 128, Bands: 16, Seed: 42}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		var a, b []PathID
		for p := 0; p < 60; p++ {
			r := rng.Float64()
			if r < 0.4 {
				a = append(a, p)
				b = append(b, p)
			} else if r < 0.7 {
				a = append(a, p)
			} else {
				b = append(b, p)
			}
		}
		sa := Signature(a, cfg)
		sb := Signature(b, cfg)
		agree := 0
		for i := range sa {
			if sa[i] == sb[i] {
				agree++
			}
		}
		est := float64(agree) / float64(len(sa))
		truth := Jaccard(a, b)
		if est < truth-0.3 || est > truth+0.3 {
			t.Errorf("trial %d: MinHash estimate %g too far from true Jaccard %g", trial, est, truth)
		}
	}
}

func TestSignatureDeterministic(t *testing.T) {
	cfg := Config{NumHashes: 16, Bands: 4, Seed: 7}
	set := []PathID{3, 1, 4, 1, 5}
	if !reflect.DeepEqual(Signature(set, cfg), Signature(set, cfg)) {
		t.Errorf("signature should be deterministic")
	}
	other := Config{NumHashes: 16, Bands: 4, Seed: 8}
	if reflect.DeepEqual(Signature(set, cfg), Signature(set, other)) {
		t.Errorf("different seeds should give different signatures")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Build(map[graph.EdgeID][]PathID{}, Config{NumHashes: 10, Bands: 3}); err == nil {
		t.Errorf("bands not dividing hashes should be rejected")
	}
	if _, err := Build(map[graph.EdgeID][]PathID{}, Config{NumHashes: -1, Bands: -1}); err == nil {
		t.Errorf("negative config should be rejected")
	}
	if _, err := Build(map[graph.EdgeID][]PathID{}, Config{}); err != nil {
		t.Errorf("default config should be accepted: %v", err)
	}
}

func TestForestPreservesPathSets(t *testing.T) {
	sets := figure8PathSets()
	f, err := Build(sets, Config{NumHashes: 8, Bands: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumEdges() != len(sets) {
		t.Fatalf("forest indexes %d edges, want %d", f.NumEdges(), len(sets))
	}
	for e, want := range sets {
		got := f.PathsForEdge(e)
		if len(got) != len(want) {
			t.Errorf("edge %d: got %d paths, want %d (%v vs %v)", e, len(got), len(want), got, want)
			continue
		}
		gs := append([]PathID(nil), got...)
		ws := append([]PathID(nil), want...)
		sort.Ints(gs)
		sort.Ints(ws)
		if !reflect.DeepEqual(gs, ws) {
			t.Errorf("edge %d: path set %v, want %v", e, gs, ws)
		}
	}
	if got := f.PathsForEdge(graph.EdgeID(999)); got != nil {
		t.Errorf("unknown edge should return nil, got %v", got)
	}
}

func TestVisitPathsForEdge(t *testing.T) {
	sets := figure8PathSets()
	f, err := Build(sets, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var visited []PathID
	f.VisitPathsForEdge(13, func(p PathID) { visited = append(visited, p) })
	sort.Ints(visited)
	want := append([]PathID(nil), sets[13]...)
	sort.Ints(want)
	if !reflect.DeepEqual(visited, want) {
		t.Errorf("visited %v, want %v", visited, want)
	}
	called := false
	f.VisitPathsForEdge(graph.EdgeID(999), func(PathID) { called = true })
	if called {
		t.Errorf("visiting unknown edge should not call the callback")
	}
}

func TestForestCompresses(t *testing.T) {
	sets := figure8PathSets()
	f, err := Build(sets, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Edges != len(sets) {
		t.Errorf("stats edges = %d, want %d", st.Edges, len(sets))
	}
	if st.UncompressedEntries == 0 || st.PathNodes == 0 || st.TotalNodes == 0 {
		t.Errorf("stats should be populated: %+v", st)
	}
	if st.PathNodes > st.UncompressedEntries {
		t.Errorf("compression should never expand path nodes: %+v", st)
	}
	if st.CompressionRatio <= 0 || st.CompressionRatio > 1 {
		t.Errorf("compression ratio %g out of range", st.CompressionRatio)
	}
	if st.Groups != len(f.Groups()) {
		t.Errorf("group count mismatch")
	}
}

func TestGroupsPartitionEdges(t *testing.T) {
	sets := figure8PathSets()
	f, err := Build(sets, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[graph.EdgeID]bool)
	for _, g := range f.Groups() {
		for _, e := range g {
			if seen[e] {
				t.Errorf("edge %d appears in multiple groups", e)
			}
			seen[e] = true
		}
	}
	if len(seen) != len(sets) {
		t.Errorf("groups cover %d edges, want %d", len(seen), len(sets))
	}
}

func TestIdenticalPathSetsShareGroup(t *testing.T) {
	// Edges with identical path sets must always collide in every band and
	// therefore end up in the same group.
	sets := map[graph.EdgeID][]PathID{
		0: {1, 2, 3},
		1: {1, 2, 3},
		2: {7, 8, 9, 10},
		3: {7, 8, 9, 10},
	}
	f, err := Build(sets, Config{NumHashes: 8, Bands: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	groupOf := make(map[graph.EdgeID]int)
	for gi, g := range f.Groups() {
		for _, e := range g {
			groupOf[e] = gi
		}
	}
	if groupOf[0] != groupOf[1] {
		t.Errorf("edges 0 and 1 with identical sets should share a group")
	}
	if groupOf[2] != groupOf[3] {
		t.Errorf("edges 2 and 3 with identical sets should share a group")
	}
}

func TestEmptyInput(t *testing.T) {
	f, err := Build(map[graph.EdgeID][]PathID{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumEdges() != 0 || len(f.Groups()) != 0 {
		t.Errorf("empty input should give empty forest")
	}
	st := f.Stats()
	if st.CompressionRatio != 0 {
		t.Errorf("empty forest ratio = %g, want 0", st.CompressionRatio)
	}
}

// Integration: compress the EP-Index produced by the DTLP index of the paper
// graph and check the compressed forest returns the same path sets.
func TestCompressDTLPEPIndex(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dtlp.Build(p, dtlp.Config{Xi: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range p.Subgraphs {
		si := x.SubgraphIndex(sg.ID)
		sets := si.PathSets()
		if len(sets) == 0 {
			continue
		}
		f, err := Build(sets, Config{Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		for e, want := range sets {
			got := f.PathsForEdge(e)
			gs := append([]PathID(nil), got...)
			ws := append([]PathID(nil), want...)
			sort.Ints(gs)
			sort.Ints(ws)
			if !reflect.DeepEqual(gs, ws) {
				t.Errorf("subgraph %d edge %d: compressed set %v != original %v", sg.ID, e, gs, ws)
			}
		}
		st := f.Stats()
		if st.PathNodes > st.UncompressedEntries {
			t.Errorf("subgraph %d: compression expanded the index: %+v", sg.ID, st)
		}
	}
}

// Property: for random path sets the forest always returns exactly the
// original sets, regardless of grouping.
func TestPropertyForestLossless(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numEdges := 2 + rng.Intn(20)
		numPaths := 2 + rng.Intn(15)
		sets := make(map[graph.EdgeID][]PathID, numEdges)
		for e := 0; e < numEdges; e++ {
			var set []PathID
			for p := 0; p < numPaths; p++ {
				if rng.Float64() < 0.4 {
					set = append(set, p)
				}
			}
			if len(set) == 0 {
				set = []PathID{rng.Intn(numPaths)}
			}
			sets[graph.EdgeID(e)] = set
		}
		forest, err := Build(sets, Config{Seed: uint64(seed)})
		if err != nil {
			return false
		}
		for e, want := range sets {
			got := forest.PathsForEdge(e)
			if len(got) != len(want) {
				return false
			}
			gs := append([]PathID(nil), got...)
			ws := append([]PathID(nil), want...)
			sort.Ints(gs)
			sort.Ints(ws)
			if !reflect.DeepEqual(gs, ws) {
				return false
			}
		}
		st := forest.Stats()
		return st.PathNodes <= st.UncompressedEntries
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
