package mfptree

import (
	"sort"

	"kspdg/internal/graph"
)

// Jaccard returns the Jaccard similarity |A∩B| / |A∪B| of two path id sets.
// It is the "ideal compressing ratio" the LSH grouping tries to maximise
// within groups (Section 4.1).
func Jaccard(a, b []PathID) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	set := make(map[PathID]bool, len(a))
	for _, p := range a {
		set[p] = true
	}
	inter := 0
	union := len(set)
	seen := make(map[PathID]bool, len(b))
	for _, p := range b {
		if seen[p] {
			continue
		}
		seen[p] = true
		if set[p] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// splitmix64 is a small, fast, well-mixed 64-bit hash used to derive the
// MinHash functions.  Each hash function i permutes path ids by hashing
// (seed, i, pathID).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashPath(seed uint64, fn int, p PathID) uint64 {
	return splitmix64(seed ^ splitmix64(uint64(fn)*0x9e3779b97f4a7c15+uint64(p)+1))
}

// Signature computes the MinHash signature (one value per hash function) of
// a path id set.  Signatures of two sets agree on a fraction of positions
// that estimates their Jaccard similarity.
func Signature(set []PathID, cfg Config) []uint64 {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil
	}
	sig := make([]uint64, cfg.NumHashes)
	for i := range sig {
		sig[i] = ^uint64(0)
		for _, p := range set {
			if h := hashPath(cfg.Seed, i, p); h < sig[i] {
				sig[i] = h
			}
		}
	}
	return sig
}

// lshGroups groups edges whose MinHash signatures collide in at least one
// band.  Edges in the same group are expected to share many bounding paths.
// Each edge appears in exactly one group (bands connect groups transitively
// through a union-find).
func lshGroups(pathSets map[graph.EdgeID][]PathID, cfg Config) [][]graph.EdgeID {
	edges := make([]graph.EdgeID, 0, len(pathSets))
	for e := range pathSets {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
	if len(edges) == 0 {
		return nil
	}

	// Union-find over edge indices.
	parent := make([]int, len(edges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	rows := cfg.NumHashes / cfg.Bands
	sigs := make([][]uint64, len(edges))
	for i, e := range edges {
		sigs[i] = Signature(pathSets[e], cfg)
	}
	for band := 0; band < cfg.Bands; band++ {
		buckets := make(map[uint64]int) // band hash -> first edge index
		for i := range edges {
			h := uint64(band) + 0x51_7c_c1_b7_27_22_0a_95
			for r := 0; r < rows; r++ {
				h = splitmix64(h ^ sigs[i][band*rows+r])
			}
			if first, ok := buckets[h]; ok {
				union(first, i)
			} else {
				buckets[h] = i
			}
		}
	}

	groupsByRoot := make(map[int][]graph.EdgeID)
	for i, e := range edges {
		r := find(i)
		groupsByRoot[r] = append(groupsByRoot[r], e)
	}
	roots := make([]int, 0, len(groupsByRoot))
	for r := range groupsByRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]graph.EdgeID, 0, len(roots))
	for _, r := range roots {
		out = append(out, groupsByRoot[r])
	}
	return out
}
