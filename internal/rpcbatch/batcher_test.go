package rpcbatch

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kspdg/internal/core"
	"kspdg/internal/graph"
)

// recordingSender counts calls and returns a one-path answer per pair whose
// distance encodes the epoch, so tests can tell which epoch served a pair.
type recordingSender struct {
	mu       sync.Mutex
	calls    [][]core.PairRequest
	err      error
	delay    time.Duration
	unpinned bool // report answers as not epoch-frozen
}

func (rs *recordingSender) send(_ context.Context, pairs []core.PairRequest, k int, epoch uint64, hasEpoch bool) (map[core.PairRequest][]graph.Path, bool, error) {
	if rs.delay > 0 {
		time.Sleep(rs.delay)
	}
	rs.mu.Lock()
	rs.calls = append(rs.calls, append([]core.PairRequest(nil), pairs...))
	err := rs.err
	rs.mu.Unlock()
	if err != nil {
		return nil, false, err
	}
	out := make(map[core.PairRequest][]graph.Path, len(pairs))
	for _, pr := range pairs {
		out[pr] = []graph.Path{{Vertices: []graph.VertexID{pr.A, pr.B}, Dist: float64(epoch)}}
	}
	return out, hasEpoch && !rs.unpinned, nil
}

func (rs *recordingSender) batches() [][]core.PairRequest {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([][]core.PairRequest(nil), rs.calls...)
}

func pairsN(n int) []core.PairRequest {
	out := make([]core.PairRequest, n)
	for i := range out {
		out[i] = core.PairRequest{A: graph.VertexID(i), B: graph.VertexID(i + 1)}
	}
	return out
}

func TestFlushBySize(t *testing.T) {
	rs := &recordingSender{}
	b := New(rs.send, Options{MaxPairs: 4, MaxDelay: time.Hour})
	defer b.Close()
	paths, err := b.Do(pairsN(4), 2, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("got %d pair results, want 4", len(paths))
	}
	if got := rs.batches(); len(got) != 1 || len(got[0]) != 4 {
		t.Fatalf("expected one 4-pair batch, got %v", got)
	}
	st := b.Stats()
	if st.Batches != 1 || st.PairsSent != 4 || st.Enqueued != 4 {
		t.Errorf("stats %+v", st)
	}
}

func TestFlushByAge(t *testing.T) {
	// The age trigger governs contended periods: a first caller's flush is
	// held in flight by the sender delay, so the second caller's bucket
	// (size bound unreachable) can only ship via the MaxDelay timer.
	rs := &recordingSender{delay: 50 * time.Millisecond}
	b := New(rs.send, Options{MaxPairs: 1 << 20, MaxDelay: time.Millisecond, CacheCapacity: -1})
	defer b.Close()
	first := b.DoAsync(pairsN(1), 3, 7, true)
	time.Sleep(2 * time.Millisecond) // let the first flush get in flight
	start := time.Now()
	paths, err := b.Do(pairsN(2)[1:], 3, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("got %d results, want 1", len(paths))
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("age flush took %v", waited)
	}
	if r := <-first; r.Err != nil {
		t.Fatal(r.Err)
	}
	if b.Stats().Batches != 2 {
		t.Errorf("stats %+v", b.Stats())
	}
}

func TestLoneCallerFlushesImmediately(t *testing.T) {
	rs := &recordingSender{}
	// MaxDelay far beyond the test timeout: a lone caller must not wait it.
	b := New(rs.send, Options{MaxPairs: 1 << 20, MaxDelay: time.Hour})
	defer b.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := b.Do(pairsN(3), 2, 1, true); err != nil {
			t.Errorf("do: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("lone caller waited for the age trigger")
	}
}

func TestDedupAcrossCallers(t *testing.T) {
	// The sender delay keeps the first caller's flush in flight so the
	// second caller's identical pair dedups onto it.
	rs := &recordingSender{delay: 20 * time.Millisecond}
	b := New(rs.send, Options{MaxPairs: 8, MaxDelay: 5 * time.Millisecond, CacheCapacity: -1})
	defer b.Close()
	pr := core.PairRequest{A: 1, B: 2}
	ch1 := b.DoAsync([]core.PairRequest{pr}, 2, 3, true)
	time.Sleep(2 * time.Millisecond)
	ch2 := b.DoAsync([]core.PairRequest{pr}, 2, 3, true)
	r1, r2 := <-ch1, <-ch2
	if r1.Err != nil || r2.Err != nil {
		t.Fatalf("errors: %v %v", r1.Err, r2.Err)
	}
	if len(r1.Paths[pr]) != 1 || len(r2.Paths[pr]) != 1 {
		t.Fatalf("both callers should receive the shared pair result")
	}
	st := b.Stats()
	if st.PairsSent != 1 || st.DedupHits != 1 {
		t.Errorf("expected the second submission to dedup, stats %+v", st)
	}
}

func TestEpochsNeverShareABatch(t *testing.T) {
	rs := &recordingSender{}
	b := New(rs.send, Options{MaxPairs: 64, MaxDelay: 2 * time.Millisecond, CacheCapacity: -1})
	defer b.Close()
	pr := core.PairRequest{A: 4, B: 5}
	ch1 := b.DoAsync([]core.PairRequest{pr}, 2, 1, true)
	ch2 := b.DoAsync([]core.PairRequest{pr}, 2, 2, true)
	ch3 := b.DoAsync([]core.PairRequest{pr}, 2, 0, false) // live weights
	r1, r2, r3 := <-ch1, <-ch2, <-ch3
	if r1.Err != nil || r2.Err != nil || r3.Err != nil {
		t.Fatalf("errors: %v %v %v", r1.Err, r2.Err, r3.Err)
	}
	// The sender encodes the epoch in the distance: each request must have
	// been answered by its own epoch's batch.
	if d := r1.Paths[pr][0].Dist; d != 1 {
		t.Errorf("epoch-1 caller served from epoch %v", d)
	}
	if d := r2.Paths[pr][0].Dist; d != 2 {
		t.Errorf("epoch-2 caller served from epoch %v", d)
	}
	st := b.Stats()
	if st.Batches != 3 || st.DedupHits != 0 {
		t.Errorf("mixed-epoch requests must not share batches: %+v", st)
	}
}

func TestEpochPinnedCache(t *testing.T) {
	rs := &recordingSender{}
	b := New(rs.send, Options{MaxPairs: 8, MaxDelay: time.Millisecond})
	defer b.Close()
	pr := core.PairRequest{A: 8, B: 9}
	if _, err := b.Do([]core.PairRequest{pr}, 2, 5, true); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Do([]core.PairRequest{pr}, 2, 5, true); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.CacheHits != 1 || st.PairsSent != 1 {
		t.Errorf("second same-epoch request should hit the memo: %+v", st)
	}
	// A new epoch must miss: the weights may have changed.
	if _, err := b.Do([]core.PairRequest{pr}, 2, 6, true); err != nil {
		t.Fatal(err)
	}
	st = b.Stats()
	if st.CacheHits != 1 || st.PairsSent != 2 {
		t.Errorf("new-epoch request must not reuse the old epoch's answer: %+v", st)
	}
	// Live-weight requests are never cached.
	if _, err := b.Do([]core.PairRequest{pr}, 2, 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Do([]core.PairRequest{pr}, 2, 0, false); err != nil {
		t.Fatal(err)
	}
	st = b.Stats()
	if st.CacheHits != 1 || st.PairsSent != 4 {
		t.Errorf("live-weight requests must bypass the memo: %+v", st)
	}
}

func TestSenderErrorPropagates(t *testing.T) {
	rs := &recordingSender{err: errors.New("worker down"), delay: 20 * time.Millisecond}
	b := New(rs.send, Options{MaxPairs: 2, MaxDelay: time.Millisecond})
	defer b.Close()
	ch1 := b.DoAsync(pairsN(1), 2, 1, true)
	time.Sleep(2 * time.Millisecond)
	ch2 := b.DoAsync(pairsN(1), 2, 1, true) // dedups onto the in-flight pair
	r1, r2 := <-ch1, <-ch2
	if r1.Err == nil || r2.Err == nil {
		t.Fatalf("both callers must see the batch error, got %v / %v", r1.Err, r2.Err)
	}
}

func TestUnpinnedAnswersAreNotMemoized(t *testing.T) {
	// A worker that cannot honour the epoch pin (evicted epoch, standalone
	// process) reports pinned=false: its answers must never enter the memo,
	// even with the cache enabled.
	rs := &recordingSender{unpinned: true}
	b := New(rs.send, Options{MaxPairs: 8, MaxDelay: time.Millisecond})
	defer b.Close()
	pr := core.PairRequest{A: 30, B: 31}
	for i := 0; i < 2; i++ {
		if _, err := b.Do([]core.PairRequest{pr}, 2, 9, true); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Stats()
	if st.CacheHits != 0 || st.PairsSent != 2 {
		t.Errorf("unpinned answers must be recomputed every time: %+v", st)
	}
}

func TestCloseFlushesAndRejects(t *testing.T) {
	// Two active callers: the first's flush is held in flight by the sender
	// delay, the second's bucket is still forming (hour-long age trigger)
	// when Close runs — Close must force it out.
	rs := &recordingSender{delay: 30 * time.Millisecond}
	b := New(rs.send, Options{MaxPairs: 1 << 20, MaxDelay: time.Hour, CacheCapacity: -1})
	first := b.DoAsync(pairsN(1), 2, 1, true)
	time.Sleep(2 * time.Millisecond)
	ch := b.DoAsync(pairsN(4)[1:], 2, 1, true)
	b.Close() // must force the buffered pairs out
	if r := <-first; r.Err != nil {
		t.Fatal(r.Err)
	}
	r := <-ch
	if r.Err != nil || len(r.Paths) != 3 {
		t.Fatalf("close should flush the forming batch: %+v", r)
	}
	if res := <-b.DoAsync(pairsN(1), 2, 1, true); !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("post-close submissions must fail with ErrClosed, got %v", res.Err)
	}
}

func TestEmptyRequest(t *testing.T) {
	rs := &recordingSender{}
	b := New(rs.send, Options{})
	defer b.Close()
	paths, err := b.Do(nil, 2, 1, true)
	if err != nil || len(paths) != 0 {
		t.Fatalf("empty request: %v %v", paths, err)
	}
	if b.Stats().Batches != 0 {
		t.Errorf("empty request must not flush anything")
	}
}

// TestConcurrentAccounting hammers the batcher from many goroutines across
// several epochs and checks the conservation law: every enqueued pair is
// either shipped, deduped onto a pending pair, or answered from the memo.
func TestConcurrentAccounting(t *testing.T) {
	rs := &recordingSender{delay: 100 * time.Microsecond}
	b := New(rs.send, Options{MaxPairs: 16, MaxDelay: 200 * time.Microsecond})
	defer b.Close()
	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				var pairs []core.PairRequest
				for j := 0; j < 1+rng.Intn(4); j++ {
					pairs = append(pairs, core.PairRequest{
						A: graph.VertexID(rng.Intn(10)),
						B: graph.VertexID(10 + rng.Intn(10)),
					})
				}
				epoch := uint64(rng.Intn(3))
				paths, err := b.Do(pairs, 2, epoch, true)
				if err != nil {
					failures.Add(1)
					return
				}
				for _, pr := range pairs {
					if len(paths[pr]) != 1 || paths[pr][0].Dist != float64(epoch) {
						failures.Add(1)
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d callers saw wrong results", failures.Load())
	}
	st := b.Stats()
	if st.Enqueued != st.PairsSent+st.DedupHits+st.CacheHits {
		t.Errorf("accounting broken: enqueued %d != sent %d + dedup %d + cache %d",
			st.Enqueued, st.PairsSent, st.DedupHits, st.CacheHits)
	}
}
