// Package rpcbatch coalesces partial-KSP pair requests from different
// concurrent queries into shared batches, one outbound queue per worker.
//
// The paper's query cost is dominated by the refine step's partial-KSP
// requests to subgraph hosts.  When many queries run concurrently (the serve
// layer's worker pool), shipping every query's pairs alone wastes the wire
// twice:
// every query pays a full RPC per refine iteration, and queries whose
// reference paths overlap recompute identical (s,t) pairs on the workers.  A
// Batcher sits between the engines and one worker's transport and:
//
//   - buffers incoming pair requests, flushing a batch when it reaches
//     Options.MaxPairs or when the oldest buffered pair has waited
//     Options.MaxDelay (size/age trigger, like a NIC's interrupt coalescing);
//   - never mixes incompatible requests: batches are keyed by (k, epoch), so
//     a flushed batch is answerable by one worker call and epoch-pinned
//     queries keep snapshot isolation even when different epochs are in
//     flight concurrently;
//   - dedupes identical (s, t, k, epoch) pairs across queries: later
//     requesters attach to the pending pair — buffered or already on the
//     wire — and share its reply instead of re-sending it.
//
// The batcher is transport-agnostic: the in-process cluster and the TCP
// RemoteWorker both plug in through the Sender callback.
package rpcbatch

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kspdg/internal/core"
	"kspdg/internal/graph"
	"kspdg/internal/trace"
)

// Sender ships one coalesced batch to a worker and returns the partial paths
// per pair, plus whether the worker honoured the epoch pin (pinned answers
// were computed from the requested epoch's frozen weights and are therefore
// immutable; only they may enter the memo).  All pairs of a call share k and
// the epoch pin.  The context carries only trace information — the batch
// span of the owning trace (the first traced caller that contributed a pair),
// never request cancellation, since a flushed batch serves waiters from many
// queries.  Senders are invoked from flush goroutines and must be safe for
// concurrent use.
type Sender func(ctx context.Context, pairs []core.PairRequest, k int, epoch uint64, hasEpoch bool) (paths map[core.PairRequest][]graph.Path, pinned bool, err error)

// Options tunes the flush triggers.
type Options struct {
	// MaxPairs flushes a batch as soon as it holds this many distinct pairs.
	// Zero means 64.
	MaxPairs int
	// MaxDelay flushes a batch when its oldest pair has been buffered this
	// long.  The age trigger only governs contended periods: when a single
	// caller is active the batch flushes immediately (there is no one to
	// coalesce with, so lingering would be pure added latency).  Zero means
	// 200µs.
	MaxDelay time.Duration
	// CacheCapacity bounds the memo of answered epoch-pinned pairs.  A pair
	// result pinned to an epoch is immutable — the epoch's weights are frozen
	// — so it can be replayed to any later query at the same epoch, extending
	// the cross-query dedup from concurrently-pending pairs to the whole
	// lifetime of an epoch.  Requests without an epoch pin (live weights)
	// are never cached.  Zero means 4096; negative disables.
	CacheCapacity int
	// Observe, when non-nil, is called once per shipped batch with the
	// number of pairs it carried and the round-trip latency of the worker
	// call (successful or not).  The serve layer uses it to feed the
	// per-pair RPC latency histogram.  It runs on the flush goroutine and
	// must be safe for concurrent use and cheap.
	Observe func(pairs int, d time.Duration)
}

func (o Options) withDefaults() Options {
	if o.MaxPairs <= 0 {
		o.MaxPairs = 64
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 200 * time.Microsecond
	}
	if o.CacheCapacity == 0 {
		o.CacheCapacity = 4096
	}
	return o
}

// Stats counts the batcher's traffic.
type Stats struct {
	// Batches is the number of flushes (worker calls) issued.
	Batches int64
	// PairsSent is the number of distinct pairs shipped across all batches.
	PairsSent int64
	// Enqueued is the number of pair requests callers submitted.
	Enqueued int64
	// DedupHits counts submitted pairs that attached to an identical pending
	// pair (buffered or in flight) instead of being shipped again.
	DedupHits int64
	// CacheHits counts submitted pairs answered from the epoch-pinned memo.
	CacheHits int64
	// Coalesced counts shipped pairs that travelled in a batch fed by more
	// than one caller — the cross-query sharing the batcher exists for.
	Coalesced int64
}

// Add accumulates other into s (for aggregating per-worker batchers).
func (s *Stats) Add(other Stats) {
	s.Batches += other.Batches
	s.PairsSent += other.PairsSent
	s.Enqueued += other.Enqueued
	s.DedupHits += other.DedupHits
	s.CacheHits += other.CacheHits
	s.Coalesced += other.Coalesced
}

// Result is the outcome of one Do/DoAsync call: the partial paths for every
// requested pair, or the first transport error that hit one of its batches.
type Result struct {
	Paths map[core.PairRequest][]graph.Path
	Err   error
}

// ErrClosed fails requests submitted after Close.
var ErrClosed = errors.New("rpcbatch: batcher closed")

// batchKey identifies requests that may share a batch.
type batchKey struct {
	k        int
	epoch    uint64
	hasEpoch bool
}

// flightKey identifies one dedupable pending pair.
type flightKey struct {
	pair core.PairRequest
	batchKey
}

// waiter is one Do/DoAsync call awaiting its pairs.
type waiter struct {
	missing int
	paths   map[core.PairRequest][]graph.Path
	err     error
	done    chan Result

	// Trace bookkeeping: the caller's coalesce-wait span (nil when the
	// caller is untraced) and what happened to its pairs on the way in.
	span      *trace.Span
	memoHits  int
	dedupHits int
	batchIDs  []uint64
}

// recordBatch notes that one of the waiter's pairs rides batch id (bounded,
// deduplicated — a waiter's pairs usually land in one or two batches).
func (w *waiter) recordBatch(id uint64) {
	if w.span == nil {
		return
	}
	for _, b := range w.batchIDs {
		if b == id {
			return
		}
	}
	if len(w.batchIDs) < 8 {
		w.batchIDs = append(w.batchIDs, id)
	}
}

// resolvePairLocked records one pair outcome for a waiter, delivering the
// combined result (and retiring the waiter from the active count) once the
// last pair lands.  Callers hold b.mu.
func (b *Batcher) resolvePairLocked(w *waiter, pr core.PairRequest, paths []graph.Path, err error) {
	if err != nil {
		if w.err == nil {
			w.err = err
		}
	} else {
		w.paths[pr] = paths
	}
	w.missing--
	if w.missing == 0 {
		b.active--
		if w.span != nil {
			w.span.SetAttrInt("memo_hits", int64(w.memoHits))
			w.span.SetAttrInt("dedup_hits", int64(w.dedupHits))
			w.span.SetAttr("batches", formatIDs(w.batchIDs))
			if w.err != nil {
				w.span.SetAttr("error", w.err.Error())
			}
			w.span.Finish()
		}
		w.done <- Result{Paths: w.paths, Err: w.err} // buffered; never blocks
	}
}

// formatIDs renders a short batch-ID list as "3,4".
func formatIDs(ids []uint64) string {
	if len(ids) == 0 {
		return ""
	}
	s := strconv.FormatUint(ids[0], 10)
	for _, id := range ids[1:] {
		s += "," + strconv.FormatUint(id, 10)
	}
	return s
}

// entry is one pending pair and the waiters sharing its reply.
type entry struct {
	waiters []*waiter
}

// bucket is one forming batch: the distinct pairs buffered for one batchKey
// since the last flush, with the age timer that bounds their wait.
type bucket struct {
	key     batchKey
	id      uint64 // batch id, for trace attribution
	owner   *trace.Span
	order   []core.PairRequest
	entries map[core.PairRequest]*entry
	callers int
	timer   *time.Timer
}

// Batcher is one worker's outbound pair-request queue.
type Batcher struct {
	send Sender
	opts Options

	mu       sync.Mutex
	closed   bool
	active   int // callers submitted but not yet fully answered
	buckets  map[batchKey]*bucket
	inflight map[flightKey]*entry
	cache    map[flightKey][]graph.Path
	flushes  sync.WaitGroup
	batchSeq atomic.Uint64

	batches   atomic.Int64
	pairsSent atomic.Int64
	enqueued  atomic.Int64
	dedup     atomic.Int64
	cacheHits atomic.Int64
	coalesced atomic.Int64
}

// New creates a batcher shipping batches through send.
func New(send Sender, opts Options) *Batcher {
	b := &Batcher{
		send:     send,
		opts:     opts.withDefaults(),
		buckets:  make(map[batchKey]*bucket),
		inflight: make(map[flightKey]*entry),
	}
	if b.opts.CacheCapacity > 0 {
		b.cache = make(map[flightKey][]graph.Path)
	}
	return b
}

// DoAsync submits the pairs and returns a channel that receives the combined
// result once every pair has been answered.  The call returns immediately;
// the pairs ride whatever batches their (k, epoch) class flushes into.
func (b *Batcher) DoAsync(pairs []core.PairRequest, k int, epoch uint64, hasEpoch bool) <-chan Result {
	return b.DoAsyncCtx(context.Background(), pairs, k, epoch, hasEpoch)
}

// DoAsyncCtx is DoAsync with a context that may carry a trace span.  The
// span gets a child "rpc_wait" span measuring the coalesce wait (submit to
// last-pair delivery) annotated with memo/dedup hits and the batch ids the
// pairs rode; the first traced caller to contribute a pair to a forming batch
// becomes that batch's trace owner.  Cancellation is deliberately NOT
// honoured — a submitted pair may serve other queries' waiters.
func (b *Batcher) DoAsyncCtx(ctx context.Context, pairs []core.PairRequest, k int, epoch uint64, hasEpoch bool) <-chan Result {
	done := make(chan Result, 1)
	if len(pairs) == 0 {
		done <- Result{Paths: make(map[core.PairRequest][]graph.Path)}
		return done
	}
	w := &waiter{paths: make(map[core.PairRequest][]graph.Path, len(pairs)), done: done}
	if s := trace.FromContext(ctx); s != nil {
		w.span = s.Child("rpc_wait")
		w.span.SetAttrInt("pairs", int64(len(pairs)))
	}
	bk := batchKey{k: k, epoch: epoch, hasEpoch: hasEpoch}
	distinct := pairs[:0:0]
	seen := make(map[core.PairRequest]bool, len(pairs))
	for _, pr := range pairs {
		if !seen[pr] {
			seen[pr] = true
			distinct = append(distinct, pr)
		}
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		done <- Result{Err: ErrClosed}
		return done
	}
	// missing is preset before any pair resolves so a cache hit on an early
	// pair cannot deliver the waiter while later pairs are still unfiled;
	// the caller is active until its last pair resolves.
	w.missing = len(distinct)
	b.active++
	contributed := false
	for _, pr := range distinct {
		b.enqueued.Add(1)
		fk := flightKey{pair: pr, batchKey: bk}
		if hasEpoch && b.cache != nil {
			if paths, ok := b.cache[fk]; ok {
				// Epoch-pinned answer already known: replay it.
				b.cacheHits.Add(1)
				w.memoHits++
				b.resolvePairLocked(w, pr, paths, nil)
				continue
			}
		}
		if e, ok := b.inflight[fk]; ok {
			// Identical pair already on the wire: share its reply.
			e.waiters = append(e.waiters, w)
			b.dedup.Add(1)
			w.dedupHits++
			continue
		}
		bu := b.buckets[bk]
		if bu == nil {
			bu = &bucket{key: bk, id: b.batchSeq.Add(1), entries: make(map[core.PairRequest]*entry)}
			b.buckets[bk] = bu
			bu.timer = time.AfterFunc(b.opts.MaxDelay, func() { b.flushAged(bk, bu) })
		}
		if bu.owner == nil {
			bu.owner = w.span
		}
		if !contributed {
			bu.callers++
			contributed = true
		}
		if e, ok := bu.entries[pr]; ok {
			// Identical pair already buffered: share its slot.
			e.waiters = append(e.waiters, w)
			b.dedup.Add(1)
			w.dedupHits++
			w.recordBatch(bu.id)
			continue
		}
		bu.entries[pr] = &entry{waiters: []*waiter{w}}
		bu.order = append(bu.order, pr)
		w.recordBatch(bu.id)
		if len(bu.order) >= b.opts.MaxPairs {
			b.flushLocked(bu)
			contributed = false // pairs beyond MaxPairs start a new bucket
		}
	}
	// A lone caller has no one to coalesce with: lingering for the age
	// trigger would trade pure latency for nothing, so its bucket ships
	// immediately.  With other callers active the bucket waits (bounded by
	// MaxDelay) for their pairs.
	if bu := b.buckets[bk]; bu != nil && b.active <= 1 {
		b.flushLocked(bu)
	}
	b.mu.Unlock()
	return done
}

// Do is DoAsync followed by a blocking wait.
func (b *Batcher) Do(pairs []core.PairRequest, k int, epoch uint64, hasEpoch bool) (map[core.PairRequest][]graph.Path, error) {
	res := <-b.DoAsyncCtx(context.Background(), pairs, k, epoch, hasEpoch)
	return res.Paths, res.Err
}

// flushAged is the timer callback: flush the bucket if it is still forming.
func (b *Batcher) flushAged(bk batchKey, bu *bucket) {
	b.mu.Lock()
	if b.buckets[bk] == bu {
		b.flushLocked(bu)
	}
	b.mu.Unlock()
}

// flushLocked moves a forming bucket onto the wire: its entries become
// in-flight (still dedupable) and a goroutine ships the batch and scatters
// the replies back to every attached waiter.  Callers hold b.mu.
func (b *Batcher) flushLocked(bu *bucket) {
	delete(b.buckets, bu.key)
	bu.timer.Stop()
	for _, pr := range bu.order {
		b.inflight[flightKey{pair: pr, batchKey: bu.key}] = bu.entries[pr]
	}
	b.batches.Add(1)
	b.pairsSent.Add(int64(len(bu.order)))
	if bu.callers > 1 {
		b.coalesced.Add(int64(len(bu.order)))
	}
	b.flushes.Add(1)
	bspan := bu.owner.Child("rpc_batch") // nil-safe: nil owner yields nil span
	bspan.SetAttrInt("batch", int64(bu.id))
	bspan.SetAttrInt("pairs", int64(len(bu.order)))
	bspan.SetAttrInt("callers", int64(bu.callers))
	// The sender context carries trace identity only, never cancellation:
	// the batch serves waiters from many queries.
	sctx := trace.NewContext(context.Background(), bspan)
	go func() {
		defer b.flushes.Done()
		var start time.Time
		if b.opts.Observe != nil {
			start = time.Now()
		}
		paths, pinned, err := b.send(sctx, bu.order, bu.key.k, bu.key.epoch, bu.key.hasEpoch)
		if b.opts.Observe != nil {
			b.opts.Observe(len(bu.order), time.Since(start))
		}
		if err != nil {
			bspan.SetAttr("error", err.Error())
		}
		bspan.Finish()
		b.mu.Lock()
		for _, pr := range bu.order {
			fk := flightKey{pair: pr, batchKey: bu.key}
			// Only answers the worker actually froze at the requested epoch
			// are immutable; unpinned fallbacks (evicted epochs, standalone
			// workers) must not be memoized as if they were.
			if err == nil && pinned && bu.key.hasEpoch && b.cache != nil {
				b.cacheStoreLocked(fk, paths[pr])
			}
			e := b.inflight[fk]
			delete(b.inflight, fk)
			for _, w := range e.waiters {
				if err != nil {
					b.resolvePairLocked(w, pr, nil, err)
				} else {
					b.resolvePairLocked(w, pr, paths[pr], nil)
				}
			}
		}
		b.mu.Unlock()
	}()
}

// cacheStoreLocked memoizes one answered epoch-pinned pair, evicting pairs
// from other (superseded or not-yet-reached) epochs first when the capacity
// bound is hit, then falling back to clearing the memo.  Callers hold b.mu.
func (b *Batcher) cacheStoreLocked(fk flightKey, paths []graph.Path) {
	if len(b.cache) >= b.opts.CacheCapacity {
		for old := range b.cache {
			if old.epoch != fk.epoch {
				delete(b.cache, old)
			}
		}
		if len(b.cache) >= b.opts.CacheCapacity {
			b.cache = make(map[flightKey][]graph.Path)
		}
	}
	b.cache[fk] = paths
}

// Flush ships every forming bucket immediately (age trigger forced).
func (b *Batcher) Flush() {
	b.mu.Lock()
	for _, bu := range b.buckets {
		b.flushLocked(bu)
	}
	b.mu.Unlock()
}

// Close flushes buffered pairs, waits for in-flight batches to resolve, and
// fails later submissions with ErrClosed.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.flushes.Wait()
		return
	}
	b.closed = true
	for _, bu := range b.buckets {
		b.flushLocked(bu)
	}
	b.mu.Unlock()
	b.flushes.Wait()
}

// Stats returns a snapshot of the traffic counters.
func (b *Batcher) Stats() Stats {
	return Stats{
		Batches:   b.batches.Load(),
		PairsSent: b.pairsSent.Load(),
		Enqueued:  b.enqueued.Load(),
		DedupHits: b.dedup.Load(),
		CacheHits: b.cacheHits.Load(),
		Coalesced: b.coalesced.Load(),
	}
}
