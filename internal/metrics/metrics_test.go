package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests.")
	g := r.Gauge("inflight", "In-flight requests.")
	c.Add(41)
	c.Inc()
	g.Set(2.5)
	g.Add(-1)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP requests_total Total requests.",
		"# TYPE requests_total counter",
		"requests_total 42",
		"# TYPE inflight gauge",
		"inflight 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecsAndFuncs(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "Requests by route and code.", "route", "code")
	v.With("/v1/ksp", "200").Add(3)
	v.With("/v1/ksp", "429").Inc()
	v.With("/metrics", "200").Inc()
	r.GaugeFunc("epoch", "Current epoch.", func() float64 { return 7 })
	r.CounterFunc("served_total", "Served.", func() float64 { return 9 })
	r.GaugeVecFunc("workers", "Worker states.", "state", []string{"up", "down"}, func() []float64 {
		return []float64{3, 1}
	})

	var b strings.Builder
	_, _ = r.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		`http_requests_total{route="/v1/ksp",code="200"} 3`,
		`http_requests_total{route="/v1/ksp",code="429"} 1`,
		`http_requests_total{route="/metrics",code="200"} 1`,
		"epoch 7",
		"served_total 9",
		`workers{state="up"} 3`,
		`workers{state="down"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}

	var b strings.Builder
	_, _ = r.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_sum 56.05",
		"latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Quantile estimates land on bucket upper bounds.
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("p50 = %v, want 1", q)
	}
	if q := h.Quantile(0.99); q != 10 {
		t.Errorf("p99 = %v, want 10 (overflow clamps to last bound)", q)
	}
	var empty Histogram
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("route_seconds", "Per-route latency.", []float64{1}, "route")
	v.With("/a").Observe(0.5)
	v.With("/a").Observe(2)
	v.With("/b").Observe(0.1)

	var b strings.Builder
	_, _ = r.WriteTo(&b)
	out := b.String()
	for _, want := range []string{
		`route_seconds_bucket{route="/a",le="1"} 1`,
		`route_seconds_bucket{route="/a",le="+Inf"} 2`,
		`route_seconds_count{route="/a"} 2`,
		`route_seconds_bucket{route="/b",le="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("x", "")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c", "", "l")
	v.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	_, _ = r.WriteTo(&b)
	if want := `c{l="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, b.String())
	}
}

func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "")
	h := r.Histogram("h", "", []float64{1, 2})
	v := r.CounterVec("vec", "", "i")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				h.Observe(float64(j % 3))
				v.With(string(rune('a' + i%2))).Inc()
				if j%100 == 0 {
					var b strings.Builder
					_, _ = r.WriteTo(&b)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Value())
	}
	if h.Count() != 4000 {
		t.Fatalf("histogram count = %d, want 4000", h.Count())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "ok 1") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}
}
