package metrics

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestHistogramEmptyScrape pins the exposition of a histogram that never saw
// an observation: every cumulative bucket (including +Inf), the sum, and the
// count must render as explicit zeros, not disappear from the scrape.
func TestHistogramEmptyScrape(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty_seconds", "Empty.", []float64{0.5, 2})
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"# TYPE empty_seconds histogram",
		`empty_seconds_bucket{le="0.5"} 0`,
		`empty_seconds_bucket{le="2"} 0`,
		`empty_seconds_bucket{le="+Inf"} 0`,
		"empty_seconds_sum 0",
		"empty_seconds_count 0",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("empty scrape missing %q:\n%s", want, got)
		}
	}
}

// TestHistogramEmptyVecScrape: a labeled histogram family with no children
// must still expose its TYPE header (dashboards and the metrics-catalogue
// check rely on family presence, not traffic).
func TestHistogramEmptyVecScrape(t *testing.T) {
	r := NewRegistry()
	r.HistogramVec("stage_seconds", "Stages.", nil, "stage")
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.Contains(got, "# TYPE stage_seconds histogram") {
		t.Errorf("empty vec lost its TYPE header:\n%s", got)
	}
	if strings.Contains(got, "stage_seconds_bucket") {
		t.Errorf("empty vec must emit no series:\n%s", got)
	}
}

// TestHistogramOverflowBucket: observations beyond the last finite bound land
// only in +Inf, boundary values land in their exact bucket (le is inclusive),
// and the quantile estimator saturates at the last finite bound.
func TestHistogramOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "H.", []float64{1, 10})
	h.Observe(1)           // boundary: le="1" is inclusive
	h.Observe(10)          // boundary of the last finite bucket
	h.Observe(1e9)         // far overflow
	h.Observe(math.Inf(1)) // infinite observation must not wedge anything
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		`h_seconds_bucket{le="1"} 1`,
		`h_seconds_bucket{le="10"} 2`,
		`h_seconds_bucket{le="+Inf"} 4`,
		"h_seconds_count 4",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("scrape missing %q:\n%s", want, got)
		}
	}
	if q := h.Quantile(1); q != 10 {
		t.Errorf("overflow quantile = %v, want saturation at last bound 10", q)
	}
	if s := h.Sum(); !math.IsInf(s, 1) {
		t.Errorf("sum = %v, want +Inf after an infinite observation", s)
	}
}

// TestHistogramNegativeAndZero: a histogram is a distribution, not a latency
// guard — zero and negative values must count in the lowest bucket.
func TestHistogramNegativeAndZero(t *testing.T) {
	h := newHistogram([]float64{0, 1})
	h.Observe(-5)
	h.Observe(0)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if got := h.counts[0].Load(); got != 2 {
		t.Errorf("lowest bucket holds %d, want 2", got)
	}
}

// TestHistogramConcurrentObserveVsScrape hammers Observe from many goroutines
// while scraping continuously, then checks the final scrape for full
// conservation: +Inf bucket == count == observations, monotone cumulative
// buckets.  Run with -race this also proves the lock-free counters are sound.
func TestHistogramConcurrentObserveVsScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c_seconds", "C.", []float64{0.25, 0.5, 0.75})
	const goroutines, perG = 8, 5000
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				if _, err := r.WriteTo(&b); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%100) / 100)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	scrapes.Wait()

	if h.Count() != goroutines*perG {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*perG)
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	var inf int64
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "c_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("cumulative buckets not monotone: %q after %d", line, prev)
		}
		prev = v
		inf = v
	}
	if inf != goroutines*perG {
		t.Errorf("+Inf bucket = %d, want %d", inf, goroutines*perG)
	}
}
