// Package metrics is a small hand-rolled metrics registry with Prometheus
// text exposition: atomic counters, gauges, sampled functions and fixed-bucket
// histograms, with optional label vectors.  It exists so the gateway can
// expose first-class observability without pulling a client library into the
// module — the exposition format is the stable contract, not an SDK.
//
// All metric operations (Inc, Add, Set, Observe) are lock-free atomic
// updates safe for unbounded concurrent use; registration and scraping take
// the registry lock.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta, which must be non-negative for the exposition to stay
// meaningful (negative deltas are not rejected, matching the rest of the
// repo's trust-the-caller style).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default latency buckets in seconds, spanning sub-
// millisecond in-process queries through multi-second tail outliers.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf implicit
	counts  []atomic.Int64
	sumBits atomic.Uint64 // float64 sum of observations
	count   atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) from the
// bucket counts: the upper bound of the bucket the quantile falls into (the
// last finite bound for the overflow bucket).  It is a scrape-side
// convenience for tests and reports; Prometheus computes the same thing from
// the exposition.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	if len(h.bounds) == 0 {
		return math.Inf(1)
	}
	return h.bounds[len(h.bounds)-1]
}

// kind is the exposition TYPE of a metric family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// sample is one exposition line: a suffix ("", "_bucket", ...), a rendered
// label set and a value.
type sample struct {
	suffix string
	labels string
	value  string
}

// family is one registered metric family.
type family struct {
	name    string
	help    string
	typ     kind
	collect func() []sample
}

// Registry holds metric families and renders them in the Prometheus text
// format.  The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register installs a family, panicking on duplicate names — duplicate
// registration is a programming error, caught in any test that scrapes.
func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", f.name))
	}
	r.byName[f.name] = f
	r.families = append(r.families, f)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: kindCounter, collect: func() []sample {
		return []sample{{value: strconv.FormatInt(c.Value(), 10)}}
	}})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, typ: kindGauge, collect: func() []sample {
		return []sample{{value: formatFloat(g.Value())}}
	}})
	return g
}

// CounterFunc registers a counter family whose value is sampled from fn at
// scrape time — the bridge for counters maintained elsewhere (serve.Stats,
// cluster.FailoverStats) without double accounting.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: kindCounter, collect: func() []sample {
		return []sample{{value: formatFloat(fn())}}
	}})
}

// GaugeFunc registers a gauge family sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: kindGauge, collect: func() []sample {
		return []sample{{value: formatFloat(fn())}}
	}})
}

// GaugeVecFunc registers a gauge family with one child per label value,
// sampled from fn at scrape time.  fn returns a value per label value, in
// order (e.g. worker health states).
func (r *Registry) GaugeVecFunc(name, help, label string, values []string, fn func() []float64) {
	rendered := make([]string, len(values))
	for i, v := range values {
		rendered[i] = renderLabels([]string{label}, []string{v})
	}
	r.register(&family{name: name, help: help, typ: kindGauge, collect: func() []sample {
		vals := fn()
		out := make([]sample, 0, len(rendered))
		for i, l := range rendered {
			v := 0.0
			if i < len(vals) {
				v = vals[i]
			}
			out = append(out, sample{labels: l, value: formatFloat(v)})
		}
		return out
	}})
}

// Histogram registers and returns a new histogram with the given bucket
// upper bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	h := newHistogram(buckets)
	r.register(&family{name: name, help: help, typ: kindHistogram, collect: func() []sample {
		return h.samples("")
	}})
	return h
}

// samples renders a histogram's exposition lines under an optional rendered
// base label set (without braces), e.g. `route="/v1/ksp"`.
func (h *Histogram) samples(base string) []sample {
	out := make([]sample, 0, len(h.counts)+2)
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		labels := `le="` + le + `"`
		if base != "" {
			labels = base + "," + labels
		}
		out = append(out, sample{suffix: "_bucket", labels: labels, value: strconv.FormatInt(cum, 10)})
	}
	out = append(out,
		sample{suffix: "_sum", labels: base, value: formatFloat(h.Sum())},
		sample{suffix: "_count", labels: base, value: strconv.FormatInt(h.Count(), 10)})
	return out
}

// CounterVec is a counter family with one child per label-value tuple,
// created lazily on first use.
type CounterVec struct {
	labels   []string
	mu       sync.Mutex
	children map[string]*Counter
	order    []string
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: labels, children: make(map[string]*Counter)}
	r.register(&family{name: name, help: help, typ: kindCounter, collect: func() []sample {
		v.mu.Lock()
		defer v.mu.Unlock()
		out := make([]sample, 0, len(v.order))
		for _, l := range v.order {
			out = append(out, sample{labels: l, value: strconv.FormatInt(v.children[l].Value(), 10)})
		}
		return out
	}})
	return v
}

// With returns the child counter for the given label values (one per label
// name, in registration order).
func (v *CounterVec) With(values ...string) *Counter {
	key := renderLabels(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &Counter{}
		v.children[key] = c
		v.order = append(v.order, key)
	}
	return c
}

// HistogramVec is a histogram family with one child per label-value tuple.
type HistogramVec struct {
	labels   []string
	buckets  []float64
	mu       sync.Mutex
	children map[string]*Histogram
	order    []string
}

// HistogramVec registers and returns a labeled histogram family (nil buckets
// means DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	v := &HistogramVec{labels: labels, buckets: buckets, children: make(map[string]*Histogram)}
	r.register(&family{name: name, help: help, typ: kindHistogram, collect: func() []sample {
		v.mu.Lock()
		defer v.mu.Unlock()
		var out []sample
		for _, l := range v.order {
			out = append(out, v.children[l].samples(l)...)
		}
		return out
	}})
	return v
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := renderLabels(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[key]
	if !ok {
		h = newHistogram(v.buckets)
		v.children[key] = h
		v.order = append(v.order, key)
	}
	return h
}

// renderLabels renders `k1="v1",k2="v2"` with label values escaped.
func renderLabels(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float the way Prometheus expects: integers without a
// decimal point, everything else in shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo renders every family in the Prometheus text exposition format.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var total int64
	for _, f := range fams {
		n, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		total += int64(n)
		if err != nil {
			return total, err
		}
		for _, s := range f.collect() {
			line := f.name + s.suffix
			if s.labels != "" {
				line += "{" + s.labels + "}"
			}
			n, err := fmt.Fprintf(w, "%s %s\n", line, s.value)
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// Handler returns an http.Handler serving the exposition (the /metrics
// endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}
