package baseline

import (
	"container/heap"
	"math"

	"kspdg/internal/graph"
	"kspdg/internal/shortest"
)

// FindKSP is a centralized deviation-based k shortest paths algorithm in the
// spirit of Liu et al. [21]: a single shortest path tree (SPT) rooted at the
// destination is computed per query and reused to complete candidate
// deviations, so most deviations cost a tree lookup instead of a Dijkstra
// run.  When a tree completion would revisit a vertex of the deviation
// prefix, the algorithm falls back to a constrained Dijkstra, keeping the
// result exact.
//
// Like Yen's algorithm it is sequential and needs the entire graph in one
// place, which is what limits its scalability relative to KSP-DG.
type FindKSP struct {
	g *graph.Graph
}

// NewFindKSP creates the FindKSP baseline over g.
func NewFindKSP(g *graph.Graph) *FindKSP { return &FindKSP{g: g} }

// Name implements Algorithm.
func (f *FindKSP) Name() string { return "FindKSP" }

// ApplyUpdates implements Algorithm.  FindKSP builds its per-query SPT from
// scratch, so no persistent index needs maintenance.
func (f *FindKSP) ApplyUpdates([]graph.WeightUpdate) error { return nil }

// Query implements Algorithm.
func (f *FindKSP) Query(s, t graph.VertexID, k int) ([]graph.Path, error) {
	if k <= 0 {
		return nil, nil
	}
	snap := f.g.Snapshot()
	if s == t {
		return []graph.Path{{Vertices: []graph.VertexID{s}}}, nil
	}
	spt := buildTreeToTarget(snap, t)
	first, ok := spt.pathFrom(s)
	if !ok {
		return nil, nil
	}
	result := []graph.Path{first}
	seen := map[string]bool{graph.PathKey(first): true}
	candidates := &pathHeap{}
	heap.Init(candidates)

	for len(result) < k {
		prev := result[len(result)-1]
		for j := 0; j < prev.Len(); j++ {
			spur := prev.Vertices[j]
			rootVerts := prev.Vertices[:j+1]
			rootSet := make(map[graph.VertexID]bool, j+1)
			for _, u := range rootVerts {
				rootSet[u] = true
			}
			// Edges taken out of the spur node by already accepted paths with
			// the same root prefix must not be re-used (Yen's rule).
			banned := make(map[graph.EdgeID]bool)
			for _, p := range result {
				if p.Len() > j && samePrefix(p.Vertices, rootVerts) {
					if e, ok := snap.EdgeBetween(p.Vertices[j], p.Vertices[j+1]); ok {
						banned[e] = true
					}
				}
			}
			rootPath := graph.Path{Vertices: append([]graph.VertexID(nil), rootVerts...)}
			rootPath.Dist = evalDist(snap, rootPath.Vertices)

			for _, arc := range snap.Neighbors(spur) {
				if banned[arc.Edge] || rootSet[arc.To] {
					continue
				}
				cand, ok := f.completeDeviation(snap, spt, rootPath, arc, rootSet, t)
				if !ok {
					continue
				}
				key := graph.PathKey(cand)
				if seen[key] {
					continue
				}
				seen[key] = true
				heap.Push(candidates, cand)
			}
		}
		if candidates.Len() == 0 {
			break
		}
		result = append(result, heap.Pop(candidates).(graph.Path))
	}
	return result, nil
}

// completeDeviation builds the candidate path root + (spur -> arc.To) +
// completion(arc.To .. t).  The completion is the SPT path when it does not
// collide with the root, and a constrained Dijkstra otherwise.
func (f *FindKSP) completeDeviation(snap *graph.Snapshot, spt *targetTree, root graph.Path, arc graph.Arc, rootSet map[graph.VertexID]bool, t graph.VertexID) (graph.Path, bool) {
	edgeW := snap.Weight(arc.Edge)
	if tail, ok := spt.pathFrom(arc.To); ok {
		collision := false
		for _, v := range tail.Vertices {
			if rootSet[v] {
				collision = true
				break
			}
		}
		if !collision {
			verts := make([]graph.VertexID, 0, len(root.Vertices)+len(tail.Vertices))
			verts = append(verts, root.Vertices...)
			verts = append(verts, tail.Vertices...)
			cand := graph.Path{Vertices: verts, Dist: root.Dist + edgeW + tail.Dist}
			if cand.IsSimple() {
				return cand, true
			}
		}
	}
	// Fall back to an exact constrained search avoiding the root vertices.
	ban := make(map[graph.VertexID]bool, len(rootSet))
	for v := range rootSet {
		ban[v] = true
	}
	delete(ban, arc.To)
	tail, ok := shortest.ShortestPath(snap, arc.To, t, &shortest.Options{ForbiddenVertices: ban})
	if !ok {
		return graph.Path{}, false
	}
	verts := make([]graph.VertexID, 0, len(root.Vertices)+len(tail.Vertices))
	verts = append(verts, root.Vertices...)
	verts = append(verts, tail.Vertices...)
	cand := graph.Path{Vertices: verts, Dist: root.Dist + edgeW + tail.Dist}
	if !cand.IsSimple() {
		return graph.Path{}, false
	}
	return cand, true
}

// targetTree is a shortest path tree oriented towards a target vertex:
// dist[v] is the shortest distance v -> target and next[v] is the next hop.
type targetTree struct {
	target graph.VertexID
	dist   []float64
	next   []graph.VertexID
}

// buildTreeToTarget computes the shortest path tree towards t.  For
// undirected graphs this is a plain Dijkstra from t; for directed graphs the
// search runs over the reversed adjacency.
func buildTreeToTarget(snap *graph.Snapshot, t graph.VertexID) *targetTree {
	n := snap.NumVertices()
	tt := &targetTree{
		target: t,
		dist:   make([]float64, n),
		next:   make([]graph.VertexID, n),
	}
	var view graph.WeightedView = snap
	if snap.Directed() {
		view = newReversedView(snap)
	}
	tree := shortest.Dijkstra(view, t, nil)
	for v := 0; v < n; v++ {
		tt.dist[v] = tree.Dist[v]
		tt.next[v] = tree.Parent[v] // parent in the reverse tree is the next hop towards t
	}
	return tt
}

// pathFrom returns the tree path from v to the target.
func (tt *targetTree) pathFrom(v graph.VertexID) (graph.Path, bool) {
	if math.IsInf(tt.dist[v], 1) {
		return graph.Path{}, false
	}
	verts := []graph.VertexID{v}
	for cur := v; cur != tt.target; {
		cur = tt.next[cur]
		verts = append(verts, cur)
		if cur == graph.NoVertex || len(verts) > len(tt.dist) {
			return graph.Path{}, false
		}
	}
	return graph.Path{Vertices: verts, Dist: tt.dist[v]}, true
}

// reversedView presents a directed graph with all arcs reversed, so that a
// forward Dijkstra from t computes distances towards t in the original graph.
type reversedView struct {
	base *graph.Snapshot
	radj [][]graph.Arc
}

func newReversedView(base *graph.Snapshot) *reversedView {
	rv := &reversedView{base: base, radj: make([][]graph.Arc, base.NumVertices())}
	for v := graph.VertexID(0); int(v) < base.NumVertices(); v++ {
		for _, a := range base.Neighbors(v) {
			rv.radj[a.To] = append(rv.radj[a.To], graph.Arc{To: v, Edge: a.Edge})
		}
	}
	return rv
}

func (rv *reversedView) Directed() bool                         { return true }
func (rv *reversedView) NumVertices() int                       { return rv.base.NumVertices() }
func (rv *reversedView) NumEdges() int                          { return rv.base.NumEdges() }
func (rv *reversedView) Neighbors(v graph.VertexID) []graph.Arc { return rv.radj[v] }
func (rv *reversedView) Weight(e graph.EdgeID) float64          { return rv.base.Weight(e) }
func (rv *reversedView) InitialWeight(e graph.EdgeID) float64   { return rv.base.InitialWeight(e) }
func (rv *reversedView) EdgeEndpoints(e graph.EdgeID) graph.Endpoints {
	ends := rv.base.EdgeEndpoints(e)
	return graph.Endpoints{U: ends.V, V: ends.U}
}
func (rv *reversedView) EdgeBetween(u, v graph.VertexID) (graph.EdgeID, bool) {
	return rv.base.EdgeBetween(v, u)
}

// evalDist sums the current weights along a vertex sequence.
func evalDist(snap *graph.Snapshot, verts []graph.VertexID) float64 {
	var d float64
	for i := 0; i+1 < len(verts); i++ {
		e, ok := snap.EdgeBetween(verts[i], verts[i+1])
		if !ok {
			return math.Inf(1)
		}
		d += snap.Weight(e)
	}
	return d
}

// samePrefix reports whether p starts with prefix.
func samePrefix(p, prefix []graph.VertexID) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

// pathHeap is a min-heap of paths ordered by ComparePaths.
type pathHeap []graph.Path

func (h pathHeap) Len() int            { return len(h) }
func (h pathHeap) Less(i, j int) bool  { return graph.ComparePaths(h[i], h[j]) < 0 }
func (h pathHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x interface{}) { *h = append(*h, x.(graph.Path)) }
func (h *pathHeap) Pop() interface{} {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}
