package baseline

import (
	"kspdg/internal/graph"
	"kspdg/internal/shortest"
)

// YenBaseline answers KSP queries by running Yen's algorithm directly on the
// full graph.  It maintains no index, so ApplyUpdates is free but every query
// pays the full sequential search cost — the scalability limitation the paper
// contrasts KSP-DG against.
type YenBaseline struct {
	g *graph.Graph
}

// NewYen creates the Yen baseline over g.
func NewYen(g *graph.Graph) *YenBaseline { return &YenBaseline{g: g} }

// Name implements Algorithm.
func (y *YenBaseline) Name() string { return "Yen" }

// Query implements Algorithm.
func (y *YenBaseline) Query(s, t graph.VertexID, k int) ([]graph.Path, error) {
	return shortest.Yen(y.g.Snapshot(), s, t, k, nil), nil
}

// ApplyUpdates implements Algorithm.  Yen keeps no index, so there is nothing
// to maintain.
func (y *YenBaseline) ApplyUpdates([]graph.WeightUpdate) error { return nil }
