package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kspdg/internal/graph"
	"kspdg/internal/shortest"
	"kspdg/internal/testutil"
)

func TestYenBaselineMatchesOracle(t *testing.T) {
	g := testutil.PaperGraph(t)
	alg := NewYen(g)
	if alg.Name() != "Yen" {
		t.Errorf("name = %q", alg.Name())
	}
	got, err := alg.Query(testutil.V4, testutil.V13, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := testutil.BruteForceKSP(g, testutil.V4, testutil.V13, 3)
	if len(got) != len(want) {
		t.Fatalf("got %d paths, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Errorf("path %d dist = %g, want %g", i, got[i].Dist, want[i].Dist)
		}
	}
	if err := alg.ApplyUpdates(nil); err != nil {
		t.Errorf("ApplyUpdates: %v", err)
	}
}

func TestFindKSPMatchesYen(t *testing.T) {
	g := testutil.PaperGraph(t)
	alg := NewFindKSP(g)
	if alg.Name() != "FindKSP" {
		t.Errorf("name = %q", alg.Name())
	}
	cases := []struct {
		s, t graph.VertexID
		k    int
	}{
		{testutil.V4, testutil.V13, 4}, {testutil.V1, testutil.V19, 5}, {testutil.V3, testutil.V14, 3},
	}
	for _, c := range cases {
		got, err := alg.Query(c.s, c.t, c.k)
		if err != nil {
			t.Fatal(err)
		}
		want := shortest.Yen(g, c.s, c.t, c.k, nil)
		if len(got) != len(want) {
			t.Fatalf("FindKSP(%d,%d,%d) returned %d paths, Yen %d", c.s, c.t, c.k, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Errorf("FindKSP(%d,%d,%d) path %d dist %g, Yen %g", c.s, c.t, c.k, i, got[i].Dist, want[i].Dist)
			}
			if !got[i].IsSimple() || got[i].Validate(g) != nil {
				t.Errorf("FindKSP produced invalid path %v", got[i])
			}
		}
	}
}

func TestFindKSPEdgeCases(t *testing.T) {
	g := testutil.LineGraph(t, 5)
	alg := NewFindKSP(g)
	if got, _ := alg.Query(2, 2, 3); len(got) != 1 || got[0].Len() != 0 {
		t.Errorf("s==t should return trivial path, got %v", got)
	}
	if got, _ := alg.Query(0, 4, 0); got != nil {
		t.Errorf("k=0 should return nil")
	}
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	dg := b.Build()
	if got, _ := NewFindKSP(dg).Query(0, 3, 2); got != nil {
		t.Errorf("disconnected should return nil, got %v", got)
	}
}

func TestFindKSPDirected(t *testing.T) {
	b := graph.NewBuilder(10, true)
	for i := 0; i < 10; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%10), 1+float64(i%3))
	}
	b.AddEdge(0, 5, 2)
	b.AddEdge(2, 8, 4)
	g := b.Build()
	got, err := NewFindKSP(g).Query(0, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := shortest.Yen(g, 0, 6, 3, nil)
	if len(got) != len(want) {
		t.Fatalf("directed FindKSP returned %d, Yen %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Errorf("directed path %d dist %g, want %g", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestCANDSMatchesDijkstra(t *testing.T) {
	g := testutil.PaperGraph(t)
	c, err := NewCANDS(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "CANDS" {
		t.Errorf("name = %q", c.Name())
	}
	if c.IndexedPairs() == 0 {
		t.Errorf("expected indexed boundary pairs")
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		s := graph.VertexID(rng.Intn(g.NumVertices()))
		tt := graph.VertexID(rng.Intn(g.NumVertices()))
		got, err := c.Query(s, tt, 1)
		if err != nil {
			t.Fatal(err)
		}
		wantDist := shortest.ShortestDistance(g, s, tt, nil)
		if s == tt {
			if len(got) != 1 || got[0].Len() != 0 {
				t.Errorf("s==t result wrong: %v", got)
			}
			continue
		}
		if math.IsInf(wantDist, 1) {
			if len(got) != 0 {
				t.Errorf("expected no path for unreachable pair")
			}
			continue
		}
		if len(got) != 1 {
			t.Fatalf("CANDS(%d,%d) returned %d paths, want 1", s, tt, len(got))
		}
		if math.Abs(got[0].Dist-wantDist) > 1e-9 {
			t.Errorf("CANDS(%d,%d) dist = %g, Dijkstra %g", s, tt, got[0].Dist, wantDist)
		}
		if math.Abs(got[0].EvalDist(g)-got[0].Dist) > 1e-9 {
			t.Errorf("CANDS path distance inconsistent with its edges")
		}
	}
}

func TestCANDSMaintenance(t *testing.T) {
	g := testutil.PaperGraph(t)
	c, err := NewCANDS(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	before := c.RecomputedPairs
	rng := rand.New(rand.NewSource(11))
	batch := testutil.PerturbWeights(t, g, rng, 0.5, 0.5, 0.1)
	if err := c.ApplyUpdates(batch); err != nil {
		t.Fatal(err)
	}
	if c.RecomputedPairs <= before {
		t.Errorf("maintenance should recompute boundary pairs")
	}
	// Queries remain exact after maintenance.
	s, tt := graph.VertexID(0), graph.VertexID(g.NumVertices()-1)
	got, err := c.Query(s, tt, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantDist := shortest.ShortestDistance(g, s, tt, nil)
	if len(got) != 1 || math.Abs(got[0].Dist-wantDist) > 1e-9 {
		t.Errorf("after maintenance: dist = %v, want %g", got, wantDist)
	}
	if err := c.ApplyUpdates(nil); err != nil {
		t.Errorf("empty batch should be fine: %v", err)
	}
}

func TestCANDSRejectsDirected(t *testing.T) {
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 1, 1)
	g := b.Build()
	if _, err := NewCANDS(g, 2); err == nil {
		t.Errorf("directed graph should be rejected")
	}
}

func TestCANDSQueryEdgeCases(t *testing.T) {
	g := testutil.PaperGraph(t)
	c, err := NewCANDS(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Query(0, 5, 0); got != nil {
		t.Errorf("k=0 should return nil")
	}
	// k>1 still returns the single shortest path.
	got, _ := c.Query(testutil.V1, testutil.V19, 5)
	if len(got) != 1 {
		t.Errorf("CANDS should return exactly one path, got %d", len(got))
	}
}

func TestSortPathsByDistHelper(t *testing.T) {
	ps := []graph.Path{{Dist: 3}, {Dist: 1}, {Dist: 2}}
	sortPathsByDist(ps)
	if ps[0].Dist != 1 || ps[2].Dist != 3 {
		t.Errorf("sort failed: %v", ps)
	}
}

// Property: FindKSP equals Yen on random graphs.
func TestPropertyFindKSPEqualsYen(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(15)
		g := testutil.RandomConnected(rng, n, n/2)
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			return true
		}
		k := 1 + rng.Intn(5)
		got, err := NewFindKSP(g).Query(s, tt, k)
		if err != nil {
			return false
		}
		want := shortest.Yen(g, s, tt, k, nil)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: CANDS matches Dijkstra on random graphs, also after maintenance.
func TestPropertyCANDSEqualsDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15 + rng.Intn(25)
		g := testutil.RandomConnected(rng, n, n/2)
		c, err := NewCANDS(g, 5+rng.Intn(6))
		if err != nil {
			return false
		}
		if rng.Intn(2) == 1 {
			batch := testutil.PerturbWeights(t, g, rng, 0.5, 0.5, 0.05)
			if err := c.ApplyUpdates(batch); err != nil {
				return false
			}
		}
		for q := 0; q < 4; q++ {
			s := graph.VertexID(rng.Intn(n))
			tt := graph.VertexID(rng.Intn(n))
			if s == tt {
				continue
			}
			got, err := c.Query(s, tt, 1)
			if err != nil {
				return false
			}
			want := shortest.ShortestDistance(g, s, tt, nil)
			if math.IsInf(want, 1) {
				if len(got) != 0 {
					return false
				}
				continue
			}
			if len(got) != 1 || math.Abs(got[0].Dist-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
