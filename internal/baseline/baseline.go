// Package baseline implements the comparison algorithms evaluated against
// KSP-DG in Section 6.5 of the paper:
//
//   - Yen's algorithm [27] run on the full graph (the classical centralized
//     KSP method).
//   - FindKSP [21], a centralized deviation-based KSP algorithm that reuses a
//     shortest path tree rooted at the destination to generate candidate
//     deviations cheaply.
//   - CANDS [26], a distributed single-shortest-path method for dynamic
//     graphs that indexes the exact shortest paths between boundary vertices
//     of each subgraph; its index is precise but expensive to maintain when
//     weights change.
//
// All baselines implement the Algorithm interface so the benchmark harness
// can drive them interchangeably with KSP-DG.
package baseline

import (
	"kspdg/internal/graph"
)

// Algorithm is the common interface of KSP query algorithms used by the
// benchmark harness.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Query returns up to k shortest loopless paths from s to t under the
	// graph's current weights.
	Query(s, t graph.VertexID, k int) ([]graph.Path, error)
	// ApplyUpdates performs whatever index maintenance the algorithm needs
	// after the given edge weight updates have been applied to the graph.
	ApplyUpdates(batch []graph.WeightUpdate) error
}
