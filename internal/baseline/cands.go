package baseline

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/shortest"
)

// overlayItem and overlayHeap implement the priority queue of the overlay
// Dijkstra used by CANDS queries.
type overlayItem struct {
	v graph.VertexID
	d float64
}

type overlayHeap []overlayItem

func (h overlayHeap) Len() int            { return len(h) }
func (h overlayHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h overlayHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *overlayHeap) Push(x interface{}) { *h = append(*h, x.(overlayItem)) }
func (h *overlayHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// CANDS reproduces the single-shortest-path competitor of Section 6.5
// (Yang et al. [26]): the graph is partitioned into subgraphs and, inside
// every subgraph, the exact shortest path between each pair of boundary
// vertices is precomputed and indexed.  A query builds an overlay graph whose
// edges are those indexed shortest distances (plus the attachment of the
// query endpoints to the boundary vertices of their subgraphs) and runs a
// single Dijkstra on it, then expands the overlay hops back into full paths.
//
// Because the index stores exact shortest paths, it answers k=1 queries very
// efficiently, but every weight change invalidates the indexed paths of the
// affected subgraph, which must then be recomputed — the maintenance cost the
// paper contrasts with DTLP's weight-insensitive bounding paths (Figure 41).
type CANDS struct {
	g    *graph.Graph
	part *partition.Partition

	// pairPaths[sub] maps an ordered local boundary pair to the exact
	// shortest path (in local vertex ids) within that subgraph.
	pairPaths []map[[2]graph.VertexID]graph.Path
	// RecomputedPairs counts boundary pairs recomputed by maintenance, a
	// proxy for maintenance cost in reports.
	RecomputedPairs int
}

// NewCANDS builds the CANDS index over its own partition of g with subgraph
// size z.  Only undirected graphs are supported (the overlay attachment of
// the destination assumes symmetric distances).
func NewCANDS(g *graph.Graph, z int) (*CANDS, error) {
	if g.Directed() {
		return nil, fmt.Errorf("cands: directed graphs are not supported")
	}
	part, err := partition.PartitionGraph(g, z)
	if err != nil {
		return nil, fmt.Errorf("cands: %w", err)
	}
	c := &CANDS{g: g, part: part, pairPaths: make([]map[[2]graph.VertexID]graph.Path, part.NumSubgraphs())}
	for id := range c.pairPaths {
		c.rebuildSubgraph(partition.SubgraphID(id))
	}
	return c, nil
}

// Name implements Algorithm.
func (c *CANDS) Name() string { return "CANDS" }

// Partition returns the partition CANDS operates on.
func (c *CANDS) Partition() *partition.Partition { return c.part }

// rebuildSubgraph recomputes the exact shortest paths between every pair of
// boundary vertices of one subgraph.
func (c *CANDS) rebuildSubgraph(id partition.SubgraphID) {
	sub := c.part.Subgraph(id)
	paths := make(map[[2]graph.VertexID]graph.Path)
	for _, a := range sub.Boundary {
		la, _ := sub.ToLocal(a)
		tree := shortest.Dijkstra(sub.Local, la, nil)
		for _, b := range sub.Boundary {
			if a == b {
				continue
			}
			lb, _ := sub.ToLocal(b)
			if p, ok := tree.PathTo(lb); ok {
				paths[[2]graph.VertexID{la, lb}] = p
				c.RecomputedPairs++
			}
		}
	}
	c.pairPaths[id] = paths
}

// ApplyUpdates implements Algorithm: the indexed shortest paths of every
// subgraph touched by the batch are recomputed from scratch.
func (c *CANDS) ApplyUpdates(batch []graph.WeightUpdate) error {
	if len(batch) == 0 {
		return nil
	}
	perSub, err := c.part.ApplyUpdates(batch)
	if err != nil {
		return err
	}
	for id := range perSub {
		c.rebuildSubgraph(id)
	}
	return nil
}

// Query implements Algorithm.  CANDS is a single-shortest-path method; it
// returns at most one path regardless of k (k > 1 is answered with the single
// shortest path, mirroring how the paper restricts the comparison to k=1).
func (c *CANDS) Query(s, t graph.VertexID, k int) ([]graph.Path, error) {
	if k <= 0 {
		return nil, nil
	}
	if s == t {
		return []graph.Path{{Vertices: []graph.VertexID{s}}}, nil
	}
	p, ok := c.shortest(s, t)
	if !ok {
		return nil, nil
	}
	return []graph.Path{p}, nil
}

// overlayArc is one edge of the query-time overlay graph.
type overlayArc struct {
	to   graph.VertexID
	dist float64
	// via identifies the indexed path realising the hop (subgraph + local
	// pair); nil for hops attached directly via Dijkstra expansion.
	sub  partition.SubgraphID
	pair [2]graph.VertexID
	real bool
}

// shortest runs the overlay search for the single shortest path.
func (c *CANDS) shortest(s, t graph.VertexID) (graph.Path, bool) {
	// Overlay vertices: all boundary vertices plus s and t.  Edges: indexed
	// boundary-pair shortest distances within each subgraph, plus exact
	// within-subgraph distances from s/t to the boundary vertices of their
	// subgraphs, plus (if s and t share a subgraph) the direct within-subgraph
	// distance.
	adj := make(map[graph.VertexID][]overlayArc)
	addIndexedEdges := func() {
		for id, paths := range c.pairPaths {
			sub := c.part.Subgraph(partition.SubgraphID(id))
			for key, p := range paths {
				a := sub.ToGlobal(key[0])
				b := sub.ToGlobal(key[1])
				adj[a] = append(adj[a], overlayArc{to: b, dist: p.Dist, sub: partition.SubgraphID(id), pair: key, real: true})
			}
		}
	}
	addEndpoint := func(v graph.VertexID, outgoing bool) {
		for _, id := range c.part.SubgraphsOf(v) {
			sub := c.part.Subgraph(id)
			lv, _ := sub.ToLocal(v)
			tree := shortest.Dijkstra(sub.Local, lv, nil)
			for _, b := range sub.Boundary {
				lb, _ := sub.ToLocal(b)
				if p, ok := tree.PathTo(lb); ok {
					if outgoing {
						adj[v] = append(adj[v], overlayArc{to: b, dist: p.Dist, sub: id, pair: [2]graph.VertexID{lv, lb}, real: true})
					} else {
						// For undirected graphs the same distance applies in
						// both directions; directed graphs are handled by
						// reversing the stored local path at expansion time.
						adj[b] = append(adj[b], overlayArc{to: v, dist: p.Dist, sub: id, pair: [2]graph.VertexID{lv, lb}, real: true})
					}
				}
			}
		}
	}
	addIndexedEdges()
	addEndpoint(s, true)
	addEndpoint(t, false)
	if d := withinSubgraphDistance(c.part, s, t); !math.IsInf(d, 1) {
		adj[s] = append(adj[s], overlayArc{to: t, dist: d})
	}

	// Dijkstra over the overlay (binary heap with lazy deletion).
	dist := map[graph.VertexID]float64{s: 0}
	prev := map[graph.VertexID]graph.VertexID{}
	prevArc := map[graph.VertexID]overlayArc{}
	visited := map[graph.VertexID]bool{}
	pq := &overlayHeap{{v: s, d: 0}}
	heap.Init(pq)
	for pq.Len() > 0 {
		item := heap.Pop(pq).(overlayItem)
		u := item.v
		if visited[u] {
			continue
		}
		visited[u] = true
		if u == t {
			break
		}
		for _, arc := range adj[u] {
			nd := dist[u] + arc.dist
			if cur, ok := dist[arc.to]; !ok || nd < cur {
				dist[arc.to] = nd
				prev[arc.to] = u
				prevArc[arc.to] = arc
				heap.Push(pq, overlayItem{v: arc.to, d: nd})
			}
		}
	}
	if _, ok := dist[t]; !ok || !visited[t] {
		return graph.Path{}, false
	}
	// Expand overlay hops back into a full path.
	var hops []graph.VertexID
	for cur := t; ; {
		hops = append([]graph.VertexID{cur}, hops...)
		if cur == s {
			break
		}
		cur = prev[cur]
	}
	full := graph.Path{Vertices: []graph.VertexID{s}}
	for i := 1; i < len(hops); i++ {
		arc := prevArc[hops[i]]
		var seg graph.Path
		if arc.real {
			sub := c.part.Subgraph(arc.sub)
			if lp, ok := c.pairPaths[arc.sub][arc.pair]; ok && sub.ToGlobal(arc.pair[0]) == hops[i-1] {
				seg = sub.GlobalPath(lp)
			} else {
				// Attachment hop (or reversed stored pair): recompute the
				// within-subgraph shortest path for this hop.
				seg = segmentPath(c.part, hops[i-1], hops[i])
			}
		} else {
			seg = segmentPath(c.part, hops[i-1], hops[i])
		}
		if len(seg.Vertices) == 0 {
			return graph.Path{}, false
		}
		joined, err := full.Concat(seg)
		if err != nil {
			return graph.Path{}, false
		}
		full = joined
	}
	return full, true
}

// segmentPath returns the shortest within-subgraph path between two global
// vertices sharing a subgraph.
func segmentPath(part *partition.Partition, a, b graph.VertexID) graph.Path {
	best := graph.Path{}
	bestDist := math.Inf(1)
	for _, id := range part.CommonSubgraphs(a, b) {
		sub := part.Subgraph(id)
		la, _ := sub.ToLocal(a)
		lb, _ := sub.ToLocal(b)
		if p, ok := shortest.ShortestPath(sub.Local, la, lb, nil); ok && p.Dist < bestDist {
			bestDist = p.Dist
			best = sub.GlobalPath(p)
		}
	}
	return best
}

// withinSubgraphDistance returns the smallest within-subgraph distance
// between two vertices sharing a subgraph, or +Inf.
func withinSubgraphDistance(part *partition.Partition, a, b graph.VertexID) float64 {
	best := math.Inf(1)
	for _, id := range part.CommonSubgraphs(a, b) {
		sub := part.Subgraph(id)
		la, _ := sub.ToLocal(a)
		lb, _ := sub.ToLocal(b)
		if d := shortest.ShortestDistance(sub.Local, la, lb, nil); d < best {
			best = d
		}
	}
	return best
}

// IndexedPairs returns the number of boundary pairs currently indexed, a
// size metric used in reports.
func (c *CANDS) IndexedPairs() int {
	total := 0
	for _, m := range c.pairPaths {
		total += len(m)
	}
	return total
}

// sortPathsByDist sorts paths ascending by distance (helper for tests).
func sortPathsByDist(ps []graph.Path) {
	sort.Slice(ps, func(i, j int) bool { return graph.ComparePaths(ps[i], ps[j]) < 0 })
}
