package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kspdg/internal/graph"
	"kspdg/internal/shortest"
	"kspdg/internal/testutil"
)

func TestPartitionPaperGraph(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := PartitionGraph(g, 6)
	if err != nil {
		t.Fatalf("PartitionGraph: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.NumSubgraphs() < 4 {
		t.Errorf("expected at least 4 subgraphs for z=6, got %d", p.NumSubgraphs())
	}
	if len(p.BoundaryVertices()) == 0 {
		t.Errorf("expected boundary vertices")
	}
	// Every boundary vertex must belong to at least two subgraphs.
	for _, v := range p.BoundaryVertices() {
		if len(p.SubgraphsOf(v)) < 2 {
			t.Errorf("boundary vertex %d in %d subgraphs", v, len(p.SubgraphsOf(v)))
		}
		if !p.IsBoundary(v) {
			t.Errorf("IsBoundary(%d) = false for listed boundary vertex", v)
		}
	}
}

func TestPartitionZTooSmall(t *testing.T) {
	g := testutil.LineGraph(t, 4)
	if _, err := PartitionGraph(g, 1); err == nil {
		t.Errorf("z=1 should be rejected")
	}
}

func TestPartitionSingleSubgraph(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := PartitionGraph(g, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumSubgraphs() != 1 {
		t.Errorf("z=|V| should give a single subgraph, got %d", p.NumSubgraphs())
	}
	if len(p.BoundaryVertices()) != 0 {
		t.Errorf("single subgraph should have no boundary vertices")
	}
}

func TestPartitionCoversAllEdgesOnce(t *testing.T) {
	g := testutil.GridGraph(8, 8, 1)
	p, err := PartitionGraph(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sg := range p.Subgraphs {
		total += sg.NumEdges()
		if sg.NumVertices() > 10 {
			t.Errorf("subgraph %d has %d vertices > z", sg.ID, sg.NumVertices())
		}
	}
	if total != g.NumEdges() {
		t.Errorf("edges covered %d, want %d", total, g.NumEdges())
	}
}

func TestSubgraphLocalGlobalMapping(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range p.Subgraphs {
		for li, gv := range sg.Globals {
			l, ok := sg.ToLocal(gv)
			if !ok || l != graph.VertexID(li) {
				t.Errorf("subgraph %d: ToLocal(%d) = %d,%v; want %d,true", sg.ID, gv, l, ok, li)
			}
			if sg.ToGlobal(graph.VertexID(li)) != gv {
				t.Errorf("subgraph %d: ToGlobal(%d) != %d", sg.ID, li, gv)
			}
			if !sg.Contains(gv) {
				t.Errorf("subgraph %d should contain %d", sg.ID, gv)
			}
		}
		if sg.Contains(graph.VertexID(999)) {
			t.Errorf("Contains(999) should be false")
		}
	}
}

func TestSubgraphLocalEdgeWeightsMatchParent(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	for ge := graph.EdgeID(0); int(ge) < g.NumEdges(); ge++ {
		loc := p.Locate(ge)
		sg := p.Subgraph(loc.Subgraph)
		if got, want := sg.Local.Weight(loc.LocalEdge), g.Weight(ge); got != want {
			t.Errorf("edge %d weight in subgraph = %g, parent = %g", ge, got, want)
		}
		ends := g.EdgeEndpoints(ge)
		lEnds := sg.Local.EdgeEndpoints(loc.LocalEdge)
		if sg.ToGlobal(lEnds.U) != ends.U || sg.ToGlobal(lEnds.V) != ends.V {
			t.Errorf("edge %d endpoint mapping mismatch", ge)
		}
	}
}

func TestPartitionBuiltAfterWeightChangesUsesCurrentWeights(t *testing.T) {
	g := testutil.PaperGraph(t)
	// Change a weight before partitioning; the subgraph local weight must be
	// the current weight, while the local initial weight matches the parent's
	// initial weight (used for vfrags).
	e, _ := g.EdgeBetween(testutil.V1, testutil.V2)
	if _, err := g.UpdateWeight(e, 42); err != nil {
		t.Fatal(err)
	}
	p, err := PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	loc := p.Locate(e)
	sg := p.Subgraph(loc.Subgraph)
	if got := sg.Local.Weight(loc.LocalEdge); got != 42 {
		t.Errorf("local current weight = %g, want 42", got)
	}
	if got := sg.Local.InitialWeight(loc.LocalEdge); got != 3 {
		t.Errorf("local initial weight = %g, want 3", got)
	}
}

func TestApplyUpdatesPropagation(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := g.EdgeBetween(testutil.V4, testutil.V7)
	batch := []graph.WeightUpdate{{Edge: e, NewWeight: 99}}
	if _, err := g.UpdateWeight(e, 99); err != nil {
		t.Fatal(err)
	}
	perSub, err := p.ApplyUpdates(batch)
	if err != nil {
		t.Fatal(err)
	}
	loc := p.Locate(e)
	if len(perSub[loc.Subgraph]) != 1 {
		t.Errorf("expected one translated update for owning subgraph")
	}
	if got := p.Subgraph(loc.Subgraph).Local.Weight(loc.LocalEdge); got != 99 {
		t.Errorf("subgraph weight = %g, want 99", got)
	}
	// Invalid edge id must be rejected.
	if _, err := p.ApplyUpdates([]graph.WeightUpdate{{Edge: graph.EdgeID(g.NumEdges() + 5), NewWeight: 1}}); err == nil {
		t.Errorf("expected error for unknown edge")
	}
}

func TestCommonSubgraphs(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Two endpoints of any edge must share at least one subgraph.
	for ge := graph.EdgeID(0); int(ge) < g.NumEdges(); ge++ {
		ends := g.EdgeEndpoints(ge)
		if len(p.CommonSubgraphs(ends.U, ends.V)) == 0 {
			t.Errorf("endpoints of edge %d share no subgraph", ge)
		}
	}
}

func TestPartitionStats(t *testing.T) {
	g := testutil.GridGraph(10, 10, 1)
	p, err := PartitionGraph(g, 12)
	if err != nil {
		t.Fatal(err)
	}
	st := p.ComputeStats()
	if st.NumSubgraphs != p.NumSubgraphs() {
		t.Errorf("stats subgraph count mismatch")
	}
	if st.MaxSubgraphVertices > 12 {
		t.Errorf("max subgraph vertices %d exceeds z", st.MaxSubgraphVertices)
	}
	if st.NumBoundaryVertices != len(p.BoundaryVertices()) {
		t.Errorf("stats boundary count mismatch")
	}
	if st.AvgSubgraphVertices <= 0 {
		t.Errorf("average subgraph size should be positive")
	}
}

// Any path between vertices in different subgraphs must pass through a
// boundary vertex (the key structural property exploited by KSP-DG).
func TestPathsCrossSubgraphsViaBoundary(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	sp, ok := shortest.ShortestPath(g, testutil.V1, testutil.V19, nil)
	if !ok {
		t.Fatal("no path")
	}
	crosses := false
	for _, v := range sp.Vertices {
		if p.IsBoundary(v) {
			crosses = true
			break
		}
	}
	if !crosses {
		t.Errorf("path between far-apart vertices should cross a boundary vertex")
	}
}

// Shortest distances inside a subgraph's local graph must equal distances in
// the parent graph restricted to the subgraph's edges.
func TestSubgraphShortestPathsConsistent(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range p.Subgraphs {
		if len(sg.Boundary) < 2 {
			continue
		}
		u, v := sg.Boundary[0], sg.Boundary[1]
		lu, _ := sg.ToLocal(u)
		lv, _ := sg.ToLocal(v)
		lp, ok := shortest.ShortestPath(sg.Local, lu, lv, nil)
		if !ok {
			continue
		}
		gp := sg.GlobalPath(lp)
		if err := gp.Validate(g); err != nil {
			t.Errorf("subgraph %d: global path invalid: %v", sg.ID, err)
		}
		if math.Abs(gp.EvalDist(g)-lp.Dist) > 1e-9 {
			t.Errorf("subgraph %d: local dist %g != parent dist %g", sg.ID, lp.Dist, gp.EvalDist(g))
		}
	}
}

func TestLocalPathRoundTrip(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	sg := p.Subgraphs[0]
	global := graph.Path{Vertices: append([]graph.VertexID(nil), sg.Globals...)}
	local, ok := sg.LocalPath(global)
	if !ok {
		t.Fatal("LocalPath failed for subgraph's own vertices")
	}
	back := sg.GlobalPath(local)
	if !back.Equal(global) {
		t.Errorf("round trip mismatch: %v vs %v", back, global)
	}
	if _, ok := sg.LocalPath(graph.Path{Vertices: []graph.VertexID{9999}}); ok {
		t.Errorf("LocalPath should fail for foreign vertex")
	}
}

// Property: for random graphs and random z, the partition always validates
// and subgraph count decreases (weakly) as z increases.
func TestPropertyPartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		g := testutil.RandomConnected(rng, n, n/2)
		z1 := 4 + rng.Intn(6)
		z2 := z1 + 5 + rng.Intn(10)
		p1, err := PartitionGraph(g, z1)
		if err != nil || p1.Validate() != nil {
			return false
		}
		p2, err := PartitionGraph(g, z2)
		if err != nil || p2.Validate() != nil {
			return false
		}
		return p2.NumSubgraphs() <= p1.NumSubgraphs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: partitioning is deterministic for a given graph and z.
func TestPropertyPartitionDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 15 + rng.Intn(30)
		g := testutil.RandomConnected(rng, n, n/3)
		z := 5 + rng.Intn(8)
		p1, err1 := PartitionGraph(g, z)
		p2, err2 := PartitionGraph(g, z)
		if err1 != nil || err2 != nil {
			return false
		}
		if p1.NumSubgraphs() != p2.NumSubgraphs() {
			return false
		}
		for i := range p1.Subgraphs {
			a, b := p1.Subgraphs[i], p2.Subgraphs[i]
			if len(a.Globals) != len(b.Globals) || len(a.GlobalEdges) != len(b.GlobalEdges) {
				return false
			}
			for j := range a.Globals {
				if a.Globals[j] != b.Globals[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
