package partition

import (
	"fmt"
	"sort"

	"kspdg/internal/graph"
)

// ApplyTopology derives a new Partition over newParent, the graph returned by
// the old parent's ApplyTopology for the same update.  inserted and deleted
// are the edge id lists that call returned (inserted aligned with
// up.InsertEdges, deleted including vertex-expansion deletions).
//
// The derivation is copy-on-write and incremental: subgraphs whose vertex and
// edge membership is unchanged are shared by pointer with the old partition,
// so their Local graphs (and any weight snapshots taken of them) stay valid.
// The returned id list names every subgraph whose bounding-path index must be
// rebuilt — those with changed membership plus those whose boundary vertex
// set shifted (the latter are shallow-copied with a fresh Boundary).
//
// Inserted edges are routed deterministically:
//
//  1. the lowest-id subgraph already containing both endpoints, else
//  2. the subgraph containing one endpoint with room for the other
//     (fewest vertices first, ties to the lowest id), else
//  3. the lowest-id empty subgraph — or a brand-new one appended at the end —
//     which takes both endpoints.
//
// Subgraph ids are stable: a subgraph emptied by vertex deletions persists as
// an empty tombstone (reusable by rule 3), and new vertices that arrive with
// no inserted edge remain unassigned until an edge connects them.
func (p *Partition) ApplyTopology(newParent *graph.Graph, up graph.TopologyUpdate, inserted, deleted []graph.EdgeID) (*Partition, []SubgraphID, error) {
	if newParent.NumVertices() < p.parent.NumVertices() || newParent.NumEdges() < p.parent.NumEdges() {
		return nil, nil, fmt.Errorf("partition: new parent (%dv,%de) smaller than old (%dv,%de)",
			newParent.NumVertices(), newParent.NumEdges(), p.parent.NumVertices(), p.parent.NumEdges())
	}
	if len(inserted) != len(up.InsertEdges) {
		return nil, nil, fmt.Errorf("partition: %d inserted edge ids for %d InsertEdges", len(inserted), len(up.InsertEdges))
	}
	delVerts := make(map[graph.VertexID]bool, len(up.DeleteVertices))
	for _, v := range up.DeleteVertices {
		delVerts[v] = true
	}
	delEdges := make(map[graph.EdgeID]bool, len(deleted))
	for _, e := range deleted {
		delEdges[e] = true
	}

	// Working membership per subgraph: the old assignment minus deletions.
	type subState struct {
		verts   []graph.VertexID
		inSet   map[graph.VertexID]bool
		edges   []graph.EdgeID
		changed bool // vertex or edge membership changed
	}
	states := make([]*subState, len(p.Subgraphs))
	for i, sg := range p.Subgraphs {
		st := &subState{inSet: make(map[graph.VertexID]bool, len(sg.Globals))}
		for _, v := range sg.Globals {
			if delVerts[v] {
				st.changed = true
				continue
			}
			st.verts = append(st.verts, v)
			st.inSet[v] = true
		}
		for _, e := range sg.GlobalEdges {
			if delEdges[e] {
				st.changed = true
				continue
			}
			st.edges = append(st.edges, e)
		}
		states[i] = st
	}

	// vertex -> containing subgraphs over the post-deletion membership,
	// maintained as inserts route new vertices into subgraphs.
	vsubs := make(map[graph.VertexID][]SubgraphID)
	for i, st := range states {
		for _, v := range st.verts {
			vsubs[v] = append(vsubs[v], SubgraphID(i))
		}
	}
	addVertex := func(id SubgraphID, v graph.VertexID) {
		st := states[id]
		st.verts = append(st.verts, v)
		st.inSet[v] = true
		st.changed = true
		vsubs[v] = append(vsubs[v], id)
	}

	for _, e := range inserted {
		ends := newParent.EdgeEndpoints(e)
		u, v := ends.U, ends.V
		target := NoSubgraph
		for _, a := range vsubs[u] {
			if states[a].inSet[v] && (target == NoSubgraph || a < target) {
				target = a
			}
		}
		if target == NoSubgraph {
			best, bestSize := NoSubgraph, 0
			consider := func(id SubgraphID) {
				st := states[id]
				if len(st.verts)+1 > p.Z {
					return
				}
				if best == NoSubgraph || len(st.verts) < bestSize ||
					(len(st.verts) == bestSize && id < best) {
					best, bestSize = id, len(st.verts)
				}
			}
			for _, a := range vsubs[u] {
				consider(a)
			}
			for _, a := range vsubs[v] {
				consider(a)
			}
			if best != NoSubgraph {
				if !states[best].inSet[u] {
					addVertex(best, u)
				}
				if !states[best].inSet[v] {
					addVertex(best, v)
				}
				target = best
			}
		}
		if target == NoSubgraph {
			for id, st := range states {
				if len(st.verts) == 0 {
					target = SubgraphID(id)
					break
				}
			}
			if target == NoSubgraph {
				target = SubgraphID(len(states))
				states = append(states, &subState{inSet: make(map[graph.VertexID]bool, 2)})
			}
			addVertex(target, u)
			addVertex(target, v)
		}
		st := states[target]
		st.edges = append(st.edges, e)
		st.changed = true
	}

	np := &Partition{
		Z:          p.Z,
		parent:     newParent,
		edgeLoc:    make([]EdgeLocation, newParent.NumEdges()),
		vertexSubs: make(map[graph.VertexID][]SubgraphID),
		isBoundary: make([]bool, newParent.NumVertices()),
	}
	for i := range np.edgeLoc {
		np.edgeLoc[i] = EdgeLocation{Subgraph: NoSubgraph, LocalEdge: graph.NoEdge}
	}

	touchedSet := make(map[SubgraphID]bool)
	np.Subgraphs = make([]*Subgraph, len(states))
	for i, st := range states {
		id := SubgraphID(i)
		if i < len(p.Subgraphs) && !st.changed {
			old := p.Subgraphs[i]
			np.Subgraphs[i] = old
			for le, ge := range old.GlobalEdges {
				np.edgeLoc[ge] = EdgeLocation{Subgraph: id, LocalEdge: graph.EdgeID(le)}
			}
			continue
		}
		touchedSet[id] = true
		sg, err := materializeSubgraph(newParent, id, st.verts, st.edges, np.edgeLoc)
		if err != nil {
			return nil, nil, err
		}
		np.Subgraphs[i] = sg
	}

	// Global vertex bookkeeping over the final membership.
	for i, sg := range np.Subgraphs {
		for _, v := range sg.Globals {
			np.vertexSubs[v] = append(np.vertexSubs[v], SubgraphID(i))
		}
	}
	for v, subs := range np.vertexSubs {
		if len(subs) > 1 {
			np.isBoundary[v] = true
			np.boundary = append(np.boundary, v)
		}
	}
	sort.Slice(np.boundary, func(i, j int) bool { return np.boundary[i] < np.boundary[j] })

	// Per-subgraph boundary lists.  A changed boundary set on an otherwise
	// unchanged subgraph still invalidates its bounding-path index, so such
	// subgraphs are shallow-copied (sharing Local and the id mappings) and
	// reported as touched.
	for i, sg := range np.Subgraphs {
		var bnd []graph.VertexID
		for _, gv := range sg.Globals {
			if np.isBoundary[gv] {
				bnd = append(bnd, gv)
			}
		}
		sort.Slice(bnd, func(a, b int) bool { return bnd[a] < bnd[b] })
		id := SubgraphID(i)
		if touchedSet[id] {
			sg.Boundary = bnd
			continue
		}
		if boundaryEqual(bnd, sg.Boundary) {
			continue
		}
		cp := *sg
		cp.Boundary = bnd
		np.Subgraphs[i] = &cp
		touchedSet[id] = true
	}

	touched := make([]SubgraphID, 0, len(touchedSet))
	for id := range touchedSet {
		touched = append(touched, id)
	}
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	return np, touched, nil
}

func boundaryEqual(a, b []graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// materializeSubgraph builds one Subgraph from its global vertex and edge id
// lists, registering its edges in edgeLoc.  The Local graph is constructed
// from the parent's initial weights and then brought up to its current
// weights, exactly as assemble does.  Boundary is left for the caller.
func materializeSubgraph(g *graph.Graph, id SubgraphID, verts []graph.VertexID, edges []graph.EdgeID, edgeLoc []EdgeLocation) (*Subgraph, error) {
	sg := &Subgraph{
		ID:          id,
		Globals:     append([]graph.VertexID(nil), verts...),
		GlobalEdges: append([]graph.EdgeID(nil), edges...),
		toLocal:     make(map[graph.VertexID]graph.VertexID, len(verts)),
	}
	for li, gv := range sg.Globals {
		sg.toLocal[gv] = graph.VertexID(li)
	}
	b := graph.NewBuilder(len(sg.Globals), g.Directed())
	for le, ge := range sg.GlobalEdges {
		ends := g.EdgeEndpoints(ge)
		lu, okU := sg.toLocal[ends.U]
		lv, okV := sg.toLocal[ends.V]
		if !okU || !okV {
			return nil, fmt.Errorf("partition: subgraph %d owns edge %d but misses an endpoint", id, ge)
		}
		if _, err := b.AddEdge(lu, lv, g.InitialWeight(ge)); err != nil {
			return nil, fmt.Errorf("partition: rebuilding subgraph %d: %w", id, err)
		}
		edgeLoc[ge] = EdgeLocation{Subgraph: id, LocalEdge: graph.EdgeID(le)}
	}
	sg.Local = b.Build()
	var updates []graph.WeightUpdate
	for le, ge := range sg.GlobalEdges {
		if w := g.Weight(ge); w != g.InitialWeight(ge) {
			updates = append(updates, graph.WeightUpdate{Edge: graph.EdgeID(le), NewWeight: w})
		}
	}
	if len(updates) > 0 {
		if err := sg.Local.ApplyUpdates(updates); err != nil {
			return nil, err
		}
	}
	return sg, nil
}
