// Package partition splits a road network into edge-disjoint subgraphs of
// bounded size, following Section 3.3 of the paper: starting from an
// arbitrary vertex the graph is traversed breadth-first and edges are
// assigned to subgraphs such that every subgraph has at most z vertices,
// subgraphs may share vertices ("boundary vertices") but never edges, and the
// union of all subgraphs is the original graph.
//
// Each Subgraph materialises its own local graph.Graph over compact local
// vertex indices so that shortest path searches inside a subgraph cost
// O(|subgraph|) rather than O(|G|).  The Partition keeps the mapping between
// global and local identifiers and propagates weight updates from the parent
// graph to the owning subgraph.
package partition

import (
	"fmt"
	"sort"

	"kspdg/internal/graph"
)

// SubgraphID identifies a subgraph within a Partition.
type SubgraphID int32

// NoSubgraph is a sentinel SubgraphID meaning "none".
const NoSubgraph SubgraphID = -1

// EdgeLocation records which subgraph owns a global edge and the edge's local
// identifier inside that subgraph.
type EdgeLocation struct {
	Subgraph  SubgraphID
	LocalEdge graph.EdgeID
}

// Subgraph is one partition element: a bounded-size local graph plus the
// mappings back to the parent graph.
type Subgraph struct {
	// ID is the subgraph's identifier within its Partition.
	ID SubgraphID
	// Local is the subgraph materialised over local vertex ids
	// 0..len(Globals)-1.  Its weights track the parent graph through
	// Partition.ApplyUpdates.
	Local *graph.Graph
	// Globals maps local vertex index -> global VertexID.
	Globals []graph.VertexID
	// GlobalEdges maps local edge index -> global EdgeID.
	GlobalEdges []graph.EdgeID
	// Boundary lists the global ids of this subgraph's boundary vertices
	// (vertices shared with at least one other subgraph), sorted ascending.
	Boundary []graph.VertexID

	toLocal map[graph.VertexID]graph.VertexID
}

// NumVertices returns the number of vertices in the subgraph.
func (s *Subgraph) NumVertices() int { return len(s.Globals) }

// NumEdges returns the number of edges owned by the subgraph.
func (s *Subgraph) NumEdges() int { return len(s.GlobalEdges) }

// ToLocal translates a global vertex id to the subgraph-local id.
func (s *Subgraph) ToLocal(v graph.VertexID) (graph.VertexID, bool) {
	l, ok := s.toLocal[v]
	return l, ok
}

// ToGlobal translates a subgraph-local vertex id to the global id.
func (s *Subgraph) ToGlobal(local graph.VertexID) graph.VertexID { return s.Globals[local] }

// Contains reports whether the subgraph contains global vertex v.
func (s *Subgraph) Contains(v graph.VertexID) bool {
	_, ok := s.toLocal[v]
	return ok
}

// ContainsBoundary reports whether global vertex v is a boundary vertex of
// this subgraph.
func (s *Subgraph) ContainsBoundary(v graph.VertexID) bool {
	i := sort.Search(len(s.Boundary), func(i int) bool { return s.Boundary[i] >= v })
	return i < len(s.Boundary) && s.Boundary[i] == v
}

// GlobalPath translates a path expressed in local vertex ids into global ids.
func (s *Subgraph) GlobalPath(p graph.Path) graph.Path {
	out := graph.Path{Vertices: make([]graph.VertexID, len(p.Vertices)), Dist: p.Dist}
	for i, v := range p.Vertices {
		out.Vertices[i] = s.Globals[v]
	}
	return out
}

// LocalPath translates a path expressed in global vertex ids into local ids.
// It returns false if any vertex is not part of the subgraph.
func (s *Subgraph) LocalPath(p graph.Path) (graph.Path, bool) {
	out := graph.Path{Vertices: make([]graph.VertexID, len(p.Vertices)), Dist: p.Dist}
	for i, v := range p.Vertices {
		l, ok := s.toLocal[v]
		if !ok {
			return graph.Path{}, false
		}
		out.Vertices[i] = l
	}
	return out, true
}

// Partition is the result of partitioning a graph: the set of subgraphs plus
// global<->local mappings and boundary vertex bookkeeping.
type Partition struct {
	// Z is the maximum number of vertices per subgraph the partition was
	// built with.
	Z int
	// Subgraphs lists all subgraphs, indexed by SubgraphID.
	Subgraphs []*Subgraph

	parent     *graph.Graph
	edgeLoc    []EdgeLocation                  // global edge -> location
	vertexSubs map[graph.VertexID][]SubgraphID // global vertex -> subgraphs containing it
	isBoundary []bool                          // global vertex -> boundary flag
	boundary   []graph.VertexID                // sorted global boundary vertices
}

// PartitionGraph partitions g into subgraphs with at most z vertices each
// using breadth-first traversal.  z must be at least 2 (an edge needs two
// vertices).
func PartitionGraph(g *graph.Graph, z int) (*Partition, error) {
	if z < 2 {
		return nil, fmt.Errorf("partition: z = %d, need at least 2", z)
	}
	n := g.NumVertices()
	edgeAssigned := make([]bool, g.NumEdges())
	// builders[i] accumulates the edges of subgraph i before materialisation.
	type pending struct {
		vertices []graph.VertexID // insertion order
		inSet    map[graph.VertexID]bool
		edges    []graph.EdgeID
	}
	var pendings []*pending

	// Breadth-first sweep over all vertices; each sweep grows subgraphs until
	// every edge is assigned.  Iterating vertices in id order makes the
	// partitioning deterministic.
	for start := graph.VertexID(0); int(start) < n; start++ {
		if !hasUnassignedEdge(g, start, edgeAssigned) {
			continue
		}
		// Grow subgraphs seeded at start until all edges reachable from it
		// are assigned.
		queue := []graph.VertexID{start}
		enqueued := map[graph.VertexID]bool{start: true}
		cur := &pending{inSet: make(map[graph.VertexID]bool)}
		addVertex := func(v graph.VertexID) {
			if !cur.inSet[v] {
				cur.inSet[v] = true
				cur.vertices = append(cur.vertices, v)
			}
		}
		flush := func() {
			if len(cur.edges) > 0 {
				pendings = append(pendings, cur)
			}
			cur = &pending{inSet: make(map[graph.VertexID]bool)}
		}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range g.Neighbors(u) {
				if edgeAssigned[a.Edge] {
					continue
				}
				// Number of new vertices this edge would add to the current
				// subgraph.
				need := 0
				if !cur.inSet[u] {
					need++
				}
				if !cur.inSet[a.To] {
					need++
				}
				if len(cur.vertices)+need > z {
					// Current subgraph is full; start a new one.
					flush()
				}
				addVertex(u)
				addVertex(a.To)
				cur.edges = append(cur.edges, a.Edge)
				edgeAssigned[a.Edge] = true
				if !enqueued[a.To] {
					enqueued[a.To] = true
					queue = append(queue, a.To)
				}
			}
		}
		flush()
	}

	subVerts := make([][]graph.VertexID, len(pendings))
	subEdges := make([][]graph.EdgeID, len(pendings))
	for i, pend := range pendings {
		subVerts[i] = pend.vertices
		subEdges[i] = pend.edges
	}
	return assemble(g, z, subVerts, subEdges)
}

// Assemble reconstructs a Partition from an explicit subgraph assignment:
// subVerts[i] and subEdges[i] list the global vertex and edge ids of subgraph
// i.  It materialises the same structures PartitionGraph produces from its
// breadth-first sweep and validates every structural invariant, so a
// serialized assignment (internal/store snapshots) round-trips exactly even
// if the partitioning heuristic changes between versions.  Local subgraph
// weights are brought up to the parent's current weights.
func Assemble(parent *graph.Graph, z int, subVerts [][]graph.VertexID, subEdges [][]graph.EdgeID) (*Partition, error) {
	if z < 2 {
		return nil, fmt.Errorf("partition: z = %d, need at least 2", z)
	}
	if len(subVerts) != len(subEdges) {
		return nil, fmt.Errorf("partition: %d vertex lists but %d edge lists", len(subVerts), len(subEdges))
	}
	p, err := assemble(parent, z, subVerts, subEdges)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("partition: assembled partition invalid: %w", err)
	}
	return p, nil
}

// assemble materialises subgraphs from per-subgraph vertex/edge id lists and
// derives the boundary bookkeeping.  It is shared by PartitionGraph (whose
// sweep guarantees the invariants) and Assemble (which validates them).
func assemble(g *graph.Graph, z int, subVerts [][]graph.VertexID, subEdges [][]graph.EdgeID) (*Partition, error) {
	n := g.NumVertices()
	p := &Partition{
		Z:          z,
		parent:     g,
		edgeLoc:    make([]EdgeLocation, g.NumEdges()),
		vertexSubs: make(map[graph.VertexID][]SubgraphID),
		isBoundary: make([]bool, n),
	}
	for i := range p.edgeLoc {
		p.edgeLoc[i] = EdgeLocation{Subgraph: NoSubgraph, LocalEdge: graph.NoEdge}
	}
	for i := range subVerts {
		id := SubgraphID(i)
		sg := &Subgraph{
			ID:          id,
			Globals:     append([]graph.VertexID(nil), subVerts[i]...),
			GlobalEdges: append([]graph.EdgeID(nil), subEdges[i]...),
			toLocal:     make(map[graph.VertexID]graph.VertexID, len(subVerts[i])),
		}
		for li, gv := range sg.Globals {
			if int(gv) < 0 || int(gv) >= n {
				return nil, fmt.Errorf("partition: subgraph %d vertex %d outside [0,%d)", id, gv, n)
			}
			if _, dup := sg.toLocal[gv]; dup {
				return nil, fmt.Errorf("partition: subgraph %d lists vertex %d twice", id, gv)
			}
			sg.toLocal[gv] = graph.VertexID(li)
			p.vertexSubs[gv] = append(p.vertexSubs[gv], id)
		}
		b := graph.NewBuilder(len(sg.Globals), g.Directed())
		for le, ge := range sg.GlobalEdges {
			if int(ge) < 0 || int(ge) >= g.NumEdges() {
				return nil, fmt.Errorf("partition: subgraph %d edge %d outside [0,%d)", id, ge, g.NumEdges())
			}
			ends := g.EdgeEndpoints(ge)
			lu, okU := sg.toLocal[ends.U]
			lv, okV := sg.toLocal[ends.V]
			if !okU || !okV {
				return nil, fmt.Errorf("partition: subgraph %d owns edge %d but misses an endpoint", id, ge)
			}
			if _, err := b.AddEdge(lu, lv, g.InitialWeight(ge)); err != nil {
				return nil, fmt.Errorf("partition: building subgraph %d: %w", id, err)
			}
			p.edgeLoc[ge] = EdgeLocation{Subgraph: id, LocalEdge: graph.EdgeID(le)}
		}
		sg.Local = b.Build()
		// Bring subgraph weights up to the parent's current weights (they may
		// differ from the initial weights if the graph evolved before
		// partitioning).
		var updates []graph.WeightUpdate
		for le, ge := range sg.GlobalEdges {
			if w := g.Weight(ge); w != g.InitialWeight(ge) {
				updates = append(updates, graph.WeightUpdate{Edge: graph.EdgeID(le), NewWeight: w})
			}
		}
		if len(updates) > 0 {
			if err := sg.Local.ApplyUpdates(updates); err != nil {
				return nil, err
			}
		}
		p.Subgraphs = append(p.Subgraphs, sg)
	}

	// Boundary vertices: vertices present in more than one subgraph.
	for v, subs := range p.vertexSubs {
		if len(subs) > 1 {
			p.isBoundary[v] = true
			p.boundary = append(p.boundary, v)
		}
	}
	sort.Slice(p.boundary, func(i, j int) bool { return p.boundary[i] < p.boundary[j] })
	for _, sg := range p.Subgraphs {
		for _, gv := range sg.Globals {
			if p.isBoundary[gv] {
				sg.Boundary = append(sg.Boundary, gv)
			}
		}
		sort.Slice(sg.Boundary, func(i, j int) bool { return sg.Boundary[i] < sg.Boundary[j] })
	}
	return p, nil
}

func hasUnassignedEdge(g *graph.Graph, v graph.VertexID, assigned []bool) bool {
	for _, a := range g.Neighbors(v) {
		if !assigned[a.Edge] {
			return true
		}
	}
	return false
}

// Parent returns the graph this partition was built from.
func (p *Partition) Parent() *graph.Graph { return p.parent }

// NumSubgraphs returns the number of subgraphs.
func (p *Partition) NumSubgraphs() int { return len(p.Subgraphs) }

// Subgraph returns the subgraph with the given id.
func (p *Partition) Subgraph(id SubgraphID) *Subgraph { return p.Subgraphs[id] }

// IsBoundary reports whether global vertex v is a boundary vertex.
func (p *Partition) IsBoundary(v graph.VertexID) bool { return p.isBoundary[v] }

// BoundaryVertices returns all boundary vertices, sorted ascending.  The
// returned slice is owned by the partition and must not be modified.
func (p *Partition) BoundaryVertices() []graph.VertexID { return p.boundary }

// SubgraphsOf returns the ids of the subgraphs containing global vertex v.
func (p *Partition) SubgraphsOf(v graph.VertexID) []SubgraphID { return p.vertexSubs[v] }

// CommonSubgraphs returns the ids of subgraphs that contain both u and v.
func (p *Partition) CommonSubgraphs(u, v graph.VertexID) []SubgraphID {
	var out []SubgraphID
	for _, a := range p.vertexSubs[u] {
		for _, b := range p.vertexSubs[v] {
			if a == b {
				out = append(out, a)
			}
		}
	}
	return out
}

// Locate returns the owning subgraph and local edge id of global edge e.
func (p *Partition) Locate(e graph.EdgeID) EdgeLocation { return p.edgeLoc[e] }

// ApplyUpdates propagates a batch of global weight updates to the owning
// subgraphs' local graphs, and returns the per-subgraph translated batches.
// The parent graph itself is not modified (callers typically update the
// parent first and then propagate).
func (p *Partition) ApplyUpdates(batch []graph.WeightUpdate) (map[SubgraphID][]graph.WeightUpdate, error) {
	perSub := make(map[SubgraphID][]graph.WeightUpdate)
	for _, u := range batch {
		if int(u.Edge) < 0 || int(u.Edge) >= len(p.edgeLoc) {
			return nil, fmt.Errorf("partition: update for unknown edge %d", u.Edge)
		}
		loc := p.edgeLoc[u.Edge]
		if loc.Subgraph == NoSubgraph {
			return nil, fmt.Errorf("partition: edge %d not assigned to any subgraph", u.Edge)
		}
		perSub[loc.Subgraph] = append(perSub[loc.Subgraph], graph.WeightUpdate{Edge: loc.LocalEdge, NewWeight: u.NewWeight})
	}
	for id, ups := range perSub {
		if err := p.Subgraphs[id].Local.ApplyUpdates(ups); err != nil {
			return nil, err
		}
	}
	return perSub, nil
}

// Validate checks the structural invariants of the partition against its
// parent graph: every edge belongs to exactly one subgraph, edge endpoints
// are vertices of the owning subgraph, no subgraph exceeds z vertices, and
// boundary flags are consistent.  Intended for tests and debugging.
func (p *Partition) Validate() error {
	seen := make([]bool, p.parent.NumEdges())
	for _, sg := range p.Subgraphs {
		if len(sg.Globals) > p.Z {
			return fmt.Errorf("subgraph %d has %d vertices, exceeds z=%d", sg.ID, len(sg.Globals), p.Z)
		}
		for le, ge := range sg.GlobalEdges {
			if seen[ge] {
				return fmt.Errorf("edge %d assigned to more than one subgraph", ge)
			}
			if !p.parent.EdgeAlive(ge) {
				return fmt.Errorf("deleted edge %d assigned to subgraph %d", ge, sg.ID)
			}
			seen[ge] = true
			ends := p.parent.EdgeEndpoints(ge)
			if !sg.Contains(ends.U) || !sg.Contains(ends.V) {
				return fmt.Errorf("subgraph %d owns edge %d but misses an endpoint", sg.ID, ge)
			}
			loc := p.edgeLoc[ge]
			if loc.Subgraph != sg.ID || loc.LocalEdge != graph.EdgeID(le) {
				return fmt.Errorf("edge %d location mismatch", ge)
			}
		}
	}
	for e, ok := range seen {
		if !ok && p.parent.EdgeAlive(graph.EdgeID(e)) {
			return fmt.Errorf("edge %d not assigned to any subgraph", e)
		}
	}
	for v := graph.VertexID(0); int(v) < p.parent.NumVertices(); v++ {
		want := len(p.vertexSubs[v]) > 1
		if p.isBoundary[v] != want {
			return fmt.Errorf("vertex %d boundary flag %v inconsistent with membership count %d",
				v, p.isBoundary[v], len(p.vertexSubs[v]))
		}
	}
	return nil
}

// Stats summarises a partition for reporting (Table 1 of the paper).
type Stats struct {
	NumSubgraphs          int
	NumBoundaryVertices   int
	SubgraphsWithOver5Bnd int // number of subgraphs with more than five boundary vertices
	MaxSubgraphVertices   int
	AvgSubgraphVertices   float64
}

// ComputeStats returns summary statistics of the partition.
func (p *Partition) ComputeStats() Stats {
	st := Stats{NumSubgraphs: len(p.Subgraphs), NumBoundaryVertices: len(p.boundary)}
	total := 0
	for _, sg := range p.Subgraphs {
		total += len(sg.Globals)
		if len(sg.Globals) > st.MaxSubgraphVertices {
			st.MaxSubgraphVertices = len(sg.Globals)
		}
		if len(sg.Boundary) > 5 {
			st.SubgraphsWithOver5Bnd++
		}
	}
	if len(p.Subgraphs) > 0 {
		st.AvgSubgraphVertices = float64(total) / float64(len(p.Subgraphs))
	}
	return st
}
