package difftest

import (
	"fmt"
	"testing"

	"kspdg/internal/cluster"
	"kspdg/internal/core"
	"kspdg/internal/dtlp"
)

// parallelClusterProvider runs the refine step on an in-process batched
// cluster whose workers execute partial-KSP requests with the given executor
// width (1 = the sequential path, >1 = the parallel fan-out).
func parallelClusterProvider(workers, parallelism int) func(tb testing.TB, x *dtlp.Index) (core.PartialProvider, func()) {
	return func(tb testing.TB, x *dtlp.Index) (core.PartialProvider, func()) {
		tb.Helper()
		c, err := cluster.New(x, cluster.Config{NumWorkers: workers, Parallelism: parallelism})
		if err != nil {
			tb.Fatalf("cluster: %v", err)
		}
		return c.Provider(), c.Close
	}
}

// TestDifferentialGridParallel is the parallel-executor lane: the full
// differential grid of TestDifferentialGrid, refined through cluster workers
// at parallelism 1 and 4, with the index's update maintenance sharded at the
// same widths.  Every answer must stay bit-identical to exact Yen at the
// epoch it reports — the executor is only allowed to change wall-clock time,
// never results.  Runs under -race in CI, which is also what audits the
// parallel searches' pooled scratch for sharing bugs.
func TestDifferentialGridParallel(t *testing.T) {
	for _, par := range []int{1, 4} {
		for _, directed := range []bool{false, true} {
			for _, k := range []int{1, 4, 8} {
				for _, xi := range []int{1, 2, 4} {
					for seed := int64(1); seed <= 3; seed++ {
						p := Params{
							Directed: directed, K: k, Xi: xi,
							Seed:              seed*100 + int64(k)*10 + int64(xi),
							Provider:          parallelClusterProvider(3, par),
							UpdateParallelism: par,
						}
						name := fmt.Sprintf("par=%d/directed=%v/k=%d/xi=%d/seed=%d", par, directed, k, xi, seed)
						t.Run(name, func(t *testing.T) {
							if testing.Short() && (!p.Directed && p.K == 4 || seed > 1) {
								t.Skip("short lane runs seed 1 and skips the slow iteration-cap cells; the full grid runs nightly")
							}
							Check(t, p)
						})
					}
				}
			}
		}
	}
}

// TestDifferentialChaosKillWorkerParallel repeats the kill-a-worker chaos
// scenario with the workers' parallel executor at width 1 and 4 (restarted
// workers inherit the width): replica answers must stay bit-identical to
// exact Yen at the reported epoch no matter how wide the surviving workers
// fan out.
func TestDifferentialChaosKillWorkerParallel(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("par=%d/kill", par), func(t *testing.T) {
			CheckChaos(t, ChaosParams{Seed: 75, Victim: 0, Parallelism: par})
		})
		t.Run(fmt.Sprintf("par=%d/kill-and-rejoin", par), func(t *testing.T) {
			if testing.Short() && par == 1 {
				t.Skip("width-1 rejoin cell duplicates the base chaos lane; the full grid runs nightly")
			}
			CheckChaos(t, ChaosParams{Seed: 72, Victim: 1, Restart: true, Parallelism: par})
		})
	}
}
