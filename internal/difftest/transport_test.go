package difftest

import (
	"fmt"
	"testing"

	"kspdg/internal/cluster"
	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/partition"
	"kspdg/internal/rpcbatch"
)

// batchedClusterProvider runs the refine step on an in-process cluster whose
// workers resolve epoch pins from the shared index — the batched pipeline
// with exact snapshot isolation.
func batchedClusterProvider(workers int) func(tb testing.TB, x *dtlp.Index) (core.PartialProvider, func()) {
	return func(tb testing.TB, x *dtlp.Index) (core.PartialProvider, func()) {
		tb.Helper()
		c, err := cluster.New(x, cluster.Config{NumWorkers: workers})
		if err != nil {
			tb.Fatalf("cluster: %v", err)
		}
		return c.Provider(), c.Close
	}
}

// batchedTCPProvider serves the refine step over real TCP worker servers
// (multiplexed framing, pool size > 1, cross-query batching).  The workers
// share the index's partition, so updates applied to the index are visible to
// them the way the in-process cluster's are.
func batchedTCPProvider(workers, pool int) func(tb testing.TB, x *dtlp.Index) (core.PartialProvider, func()) {
	return func(tb testing.TB, x *dtlp.Index) (core.PartialProvider, func()) {
		tb.Helper()
		part := x.Partition()
		var servers []*cluster.Server
		var remotes []*cluster.RemoteWorker
		for w := 0; w < workers; w++ {
			var owned []partition.SubgraphID
			for i := 0; i < part.NumSubgraphs(); i++ {
				if i%workers == w {
					owned = append(owned, partition.SubgraphID(i))
				}
			}
			worker := cluster.NewWorker(w, part, owned)
			// Epoch pins resolve against the shared index, so even the TCP
			// transport serves frozen weights for retained epochs.
			worker.SetViewResolver(x.ViewAt)
			srv, err := cluster.Serve("127.0.0.1:0", worker)
			if err != nil {
				tb.Fatalf("serve: %v", err)
			}
			servers = append(servers, srv)
			rw, err := cluster.DialPool(srv.Addr(), cluster.ClientOptions{PoolSize: pool})
			if err != nil {
				tb.Fatalf("dial: %v", err)
			}
			remotes = append(remotes, rw)
		}
		// The workers resolve epoch pins, so the memo is sound: opt in to
		// cover it under the differential audit.
		bp := cluster.NewBatchedRemoteProvider(remotes, rpcbatch.Options{CacheCapacity: 4096})
		cleanup := func() {
			bp.Close()
			for _, rw := range remotes {
				rw.Close()
			}
			for _, srv := range servers {
				srv.Close()
			}
		}
		return bp, cleanup
	}
}

// TestDifferentialGridBatchedTransport re-runs a cross-section of the
// differential grid with the refine step on the batched transports: the
// in-process batched cluster and real TCP workers with pool size > 1.  The
// per-query answers must stay pinned to exact Yen regardless of how the
// pairs travel.
func TestDifferentialGridBatchedTransport(t *testing.T) {
	providers := []struct {
		name  string
		build func(tb testing.TB, x *dtlp.Index) (core.PartialProvider, func())
	}{
		{"cluster", batchedClusterProvider(3)},
		{"tcp-pool2", batchedTCPProvider(2, 2)},
	}
	for _, pv := range providers {
		for _, directed := range []bool{false, true} {
			for _, k := range []int{1, 8} {
				p := Params{Directed: directed, K: k, Xi: 2, Seed: 7*100 + int64(k), Provider: pv.build}
				name := fmt.Sprintf("%s/directed=%v/k=%d", pv.name, directed, k)
				t.Run(name, func(t *testing.T) {
					Check(t, p)
				})
			}
		}
	}
}

// TestDifferentialConcurrentBatchedTransport floods the serve layer while
// update batches land, with the refine step coalescing pairs across the
// concurrent queries: queries pinned to different epochs share the
// per-worker batching queues (mixed-epoch concurrent batches), and every
// result must still match Yen on the frozen weights of the epoch it reports.
func TestDifferentialConcurrentBatchedTransport(t *testing.T) {
	t.Run("cluster/undirected", func(t *testing.T) {
		CheckConcurrent(t, ConcurrentParams{Seed: 42, Provider: batchedClusterProvider(3)})
	})
	t.Run("cluster/directed", func(t *testing.T) {
		CheckConcurrent(t, ConcurrentParams{Directed: true, Seed: 43, Provider: batchedClusterProvider(3)})
	})
	t.Run("tcp-pool2/undirected", func(t *testing.T) {
		if testing.Short() {
			t.Skip("TCP concurrent audit runs in the full lane")
		}
		CheckConcurrent(t, ConcurrentParams{Seed: 44, Provider: batchedTCPProvider(2, 2)})
	})
}
