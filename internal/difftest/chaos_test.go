package difftest

import (
	"testing"
	"time"
)

// TestDifferentialChaosKillWorker is the kill-worker chaos lane: with
// replication factor 2, a worker dying mid-workload must lose zero queries
// and every returned path set must still match exact Yen at the epoch each
// query reports.
func TestDifferentialChaosKillWorker(t *testing.T) {
	t.Run("kill", func(t *testing.T) {
		CheckChaos(t, ChaosParams{Seed: 75, Victim: 0})
	})
	t.Run("kill-and-rejoin", func(t *testing.T) {
		CheckChaos(t, ChaosParams{Seed: 72, Victim: 1, Restart: true})
	})
	t.Run("directed-hedged", func(t *testing.T) {
		if testing.Short() {
			t.Skip("hedged directed chaos cell runs in the full lane")
		}
		CheckChaos(t, ChaosParams{Seed: 73, Victim: 0, Directed: true, Restart: true, HedgeAfter: 3 * time.Millisecond})
	})
}
