// Differential audit of the HTTP front door: every answer served over the
// gateway — plain, epoch-pinned, and streamed — must be length-identical to
// exact Yen on the frozen weights of the epoch the response reports, while
// weight updates land through the same HTTP surface.  This closes the loop
// the in-process harness cannot: the JSON round trip, the admission pipeline
// and the NDJSON stream all sit between the engine and the verdict.
package difftest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"kspdg/internal/dtlp"
	"kspdg/internal/gateway"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/serve"
	"kspdg/internal/shortest"
	"kspdg/internal/workload"
)

// httpPath mirrors the gateway's path JSON.
type httpPath struct {
	Vertices []graph.VertexID `json:"vertices"`
	Distance float64          `json:"distance"`
}

type httpQueryResponse struct {
	Paths     []httpPath `json:"paths"`
	Epoch     uint64     `json:"epoch"`
	Converged bool       `json:"converged"`
}

type httpStreamLine struct {
	Path  *httpPath `json:"path"`
	Done  bool      `json:"done"`
	Epoch uint64    `json:"epoch"`
	Error string    `json:"error"`
}

func toPaths(hp []httpPath) []graph.Path {
	out := make([]graph.Path, len(hp))
	for i, p := range hp {
		out[i] = graph.Path{Vertices: p.Vertices, Dist: p.Distance}
	}
	return out
}

func TestGatewayMatchesYen(t *testing.T) {
	p := Params{Queries: 6, UpdateRounds: 3, Seed: 99}.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	g := p.buildGraph(rng)
	part, err := partition.PartitionGraph(g, p.Z)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	x, err := dtlp.Build(part, dtlp.Config{Xi: p.Xi})
	if err != nil {
		t.Fatalf("dtlp build: %v", err)
	}
	srv := serve.New(x, nil, serve.Options{Workers: 4})
	defer srv.Close()
	gw := gateway.New(srv, gateway.Options{Rate: -1})
	ts := httptest.NewServer(gw)
	defer ts.Close()

	qgen := workload.NewQueryGenerator(g.NumVertices(), p.Seed+1)
	tm := workload.NewTrafficModel(0.35, 0.45, p.Seed+2)

	audit := func(kind string, epoch uint64, paths []graph.Path, s, tgt graph.VertexID) {
		t.Helper()
		view := x.ViewAt(epoch)
		if view == nil {
			t.Fatalf("%s query(%d,%d): epoch %d not retained", kind, s, tgt, epoch)
		}
		want := shortest.Yen(g, s, tgt, p.K, &shortest.Options{Weight: view.GlobalWeight})
		if gl, wl := lengths(paths), lengths(want); !sameLengths(gl, wl) {
			t.Errorf("%s query(%d,%d)@epoch %d: HTTP lengths %v != Yen %v", kind, s, tgt, epoch, gl, wl)
		}
	}

	postJSON := func(path string, body interface{}, out interface{}) int {
		t.Helper()
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("decoding %s response: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	audited := 0
	var pinnedProbe *struct {
		s, t  graph.VertexID
		epoch uint64
	}
	for round := 0; round <= p.UpdateRounds; round++ {
		if round > 0 {
			// The weight updates travel over HTTP too, so the whole dynamic
			// regime is exercised through the public surface.
			batch := tm.Derive(g.NumEdges(), g.Directed(), g.Weight)
			if len(batch) == 0 {
				continue
			}
			type updateJSON struct {
				Edge   int64   `json:"edge"`
				Weight float64 `json:"weight"`
			}
			ups := make([]updateJSON, len(batch))
			for i, u := range batch {
				ups[i] = updateJSON{Edge: int64(u.Edge), Weight: u.NewWeight}
			}
			if code := postJSON("/v1/updates", map[string]interface{}{"updates": ups}, nil); code != 200 {
				t.Fatalf("round %d: updates status %d", round, code)
			}
			// No oracle-side mirror is needed: serve applies the batch to the
			// shared master graph, and the audit reads weights through the
			// frozen epoch view rather than the live graph anyway.
		}
		for _, q := range qgen.Batch(p.Queries) {
			var qr httpQueryResponse
			code := postJSON("/v1/ksp", map[string]interface{}{
				"source": q.Source, "target": q.Target, "k": p.K,
			}, &qr)
			if code != 200 {
				t.Fatalf("round %d: query status %d", round, code)
			}
			if !qr.Converged {
				t.Logf("round %d: query(%d,%d) did not converge; auditing anyway", round, q.Source, q.Target)
			}
			audit("plain", qr.Epoch, toPaths(qr.Paths), q.Source, q.Target)
			audited++
			if pinnedProbe == nil {
				pinnedProbe = &struct {
					s, t  graph.VertexID
					epoch uint64
				}{q.Source, q.Target, qr.Epoch}
			}
		}

		// One streamed query per round, audited the same way.
		q := qgen.Batch(1)[0]
		resp, err := http.Get(fmt.Sprintf("%s/v1/ksp/stream?source=%d&target=%d&k=%d", ts.URL, q.Source, q.Target, p.K))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("round %d: stream status %d", round, resp.StatusCode)
		}
		var streamed []graph.Path
		var epoch uint64
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var line httpStreamLine
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				t.Fatalf("bad stream line %q: %v", sc.Text(), err)
			}
			if line.Done {
				if line.Error != "" {
					t.Fatalf("round %d: stream error %q", round, line.Error)
				}
				epoch = line.Epoch
				break
			}
			streamed = append(streamed, graph.Path{Vertices: line.Path.Vertices, Dist: line.Path.Distance})
		}
		resp.Body.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		audit("stream", epoch, streamed, q.Source, q.Target)
		audited++
	}

	// An epoch-pinned read after all the updates must still match Yen on the
	// pinned epoch's frozen weights — the live graph has long moved on.
	if pinnedProbe != nil {
		view := x.ViewAt(pinnedProbe.epoch)
		if view == nil {
			t.Fatalf("pinned epoch %d fell out of retention", pinnedProbe.epoch)
		}
		var qr httpQueryResponse
		code := postJSON("/v1/ksp", map[string]interface{}{
			"source": pinnedProbe.s, "target": pinnedProbe.t, "k": p.K, "epoch": pinnedProbe.epoch,
		}, &qr)
		if code != 200 {
			t.Fatalf("pinned query status %d", code)
		}
		if qr.Epoch != pinnedProbe.epoch {
			t.Fatalf("pinned query answered at epoch %d, want %d", qr.Epoch, pinnedProbe.epoch)
		}
		want := shortest.Yen(view.Partition().Parent(), pinnedProbe.s, pinnedProbe.t, p.K,
			&shortest.Options{Weight: view.GlobalWeight})
		if gl, wl := lengths(toPaths(qr.Paths)), lengths(want); !sameLengths(gl, wl) {
			t.Errorf("pinned query(%d,%d)@epoch %d: HTTP lengths %v != Yen %v",
				pinnedProbe.s, pinnedProbe.t, pinnedProbe.epoch, gl, wl)
		}
	}
	if audited < 2*(p.UpdateRounds+1) {
		t.Fatalf("audited only %d outcomes", audited)
	}
}
