package difftest

import (
	"fmt"
	"testing"
)

// TestDifferentialTopology sweeps the topology-mutation lane across both
// graph flavours and three seeds: every run covers at least four topology
// epochs (a delete severing a previously returned top-k path, an insert
// creating a strictly shorter alternative, and two randomized mixed batches),
// auditing against an exact Yen oracle rebuilt on the replaced parent graph
// after each one.  Runs under -race in CI.
func TestDifferentialTopology(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			p := TopologyParams{Directed: directed, Seed: seed * 37}
			t.Run(fmt.Sprintf("directed=%v/seed=%d", directed, seed), func(t *testing.T) {
				CheckTopology(t, p)
			})
		}
	}
}

// TestDifferentialTopologyRecover is the durability variant: the whole run
// persists through a store (base snapshot + interleaved weight/topology WAL),
// then crashes and recovers, and every audited query must reproduce its live
// distances bit for bit on the recovered index.
func TestDifferentialTopologyRecover(t *testing.T) {
	for _, directed := range []bool{false, true} {
		p := TopologyParams{Directed: directed, Seed: 101, Recover: true}
		t.Run(fmt.Sprintf("directed=%v", directed), func(t *testing.T) {
			CheckTopology(t, p)
		})
	}
}
