package difftest

import (
	"math/rand"
	"testing"

	"kspdg/internal/baseline"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/serve"
	"kspdg/internal/store"
	"kspdg/internal/testutil"
)

// TopologyParams describes a topology-mutation differential run: the engine
// is audited against an exact Yen oracle rebuilt from scratch on the replaced
// parent graph after every topology epoch.
type TopologyParams struct {
	// Directed, K, Xi, N, Extra, Z, Queries and Seed mirror Params.
	Directed           bool
	K, Xi, N, Extra, Z int
	Queries            int
	Seed               int64
	// ExtraEpochs is the number of additional randomized topology epochs
	// applied after the two targeted ones (the severing delete and the
	// shortcut insert).  Zero means 2, so a default run covers at least four
	// topology-mutation epochs.
	ExtraEpochs int
	// Recover, when set, persists every batch through a store in a temp
	// directory, then simulates a crash after the final round: the index is
	// recovered from snapshot + WAL and every audited query is re-run on the
	// recovered index, requiring bit-identical distances to the live run.
	Recover bool
	// UpdateParallelism mirrors Params.UpdateParallelism.
	UpdateParallelism int
}

// auditedQuery is one live-run outcome kept for the post-recovery replay.
type auditedQuery struct {
	s, t graph.VertexID
	dist []float64
}

// CheckTopology runs one topology differential cell.  The event sequence is:
//
//  1. an initial audit round on the built index,
//  2. a targeted delete severing an edge of a previously returned top-k path
//     (with a weight batch landing first, so WAL records interleave kinds),
//  3. a targeted insert creating a strictly shorter alternative between a
//     previously queried pair,
//  4. ExtraEpochs randomized batches mixing vertex additions, edge inserts,
//     edge deletes and vertex deletes.
//
// After every epoch the Yen oracle is rebuilt on the index's replaced parent
// graph and the audit round repeats: sorted path-length multisets must agree.
// With Recover set the run then crashes and recovers from snapshot + WAL, and
// every audited query must reproduce the live run's distances bit for bit.
func CheckTopology(tb testing.TB, p TopologyParams) {
	tb.Helper()
	base := Params{Directed: p.Directed, K: p.K, Xi: p.Xi, N: p.N, Extra: p.Extra,
		Z: p.Z, Queries: p.Queries, Seed: p.Seed}.withDefaults()
	if p.ExtraEpochs == 0 {
		p.ExtraEpochs = 2
	}
	rng := rand.New(rand.NewSource(base.Seed))
	g := base.buildGraph(rng)
	part, err := partition.PartitionGraph(g, base.Z)
	if err != nil {
		tb.Fatalf("partition: %v", err)
	}
	x, err := dtlp.Build(part, dtlp.Config{Xi: base.Xi, UpdateParallelism: p.UpdateParallelism})
	if err != nil {
		tb.Fatalf("dtlp build: %v", err)
	}
	opts := serve.Options{Workers: 2}
	var st *store.Store
	if p.Recover {
		st, err = store.Open(tb.TempDir(), store.Options{})
		if err != nil {
			tb.Fatalf("store open: %v", err)
		}
		if _, err := st.SaveSnapshot(x); err != nil {
			tb.Fatalf("base snapshot: %v", err)
		}
		opts.Store = st
	}
	srv := serve.New(x, nil, opts)
	defer srv.Close()

	var audited []auditedQuery
	// audit checks base.Queries random pairs plus any targeted extras against
	// exact Yen on the index's current parent graph — re-resolved every round
	// because topology epochs replace it copy-on-write.  Only the most recent
	// round's outcomes are kept: the post-recovery replay runs against the
	// final epoch, so earlier rounds' distances would not be comparable.
	audit := func(label string, targeted ...[2]graph.VertexID) {
		audited = audited[:0]
		cur := x.Partition().Parent()
		yen := baseline.NewYen(cur)
		pairs := make([][2]graph.VertexID, 0, base.Queries+len(targeted))
		for q := 0; q < base.Queries; q++ {
			s := graph.VertexID(rng.Intn(base.N))
			t := graph.VertexID(rng.Intn(base.N))
			if s != t {
				pairs = append(pairs, [2]graph.VertexID{s, t})
			}
		}
		pairs = append(pairs, targeted...)
		for _, pr := range pairs {
			s, t := pr[0], pr[1]
			got, err := srv.Query(s, t, base.K)
			if err != nil {
				tb.Fatalf("%s: KSP-DG query(%d,%d,%d): %v", label, s, t, base.K, err)
			}
			want, err := yen.Query(s, t, base.K)
			if err != nil {
				tb.Fatalf("%s: Yen query(%d,%d,%d): %v", label, s, t, base.K, err)
			}
			gl, wl := lengths(got.Paths), lengths(want)
			switch {
			case got.Converged && got.BoundGap > 0:
				if !withinGap(gl, wl, got.BoundGap) {
					tb.Errorf("%s: query(%d,%d,%d) violated its near-exactness claim: KSP-DG lengths %v not within bound gap %g of Yen lengths %v",
						label, s, t, base.K, gl, got.BoundGap, wl)
				}
			case !sameLengths(gl, wl):
				tb.Errorf("%s: query(%d,%d,%d): KSP-DG lengths %v != Yen lengths %v",
					label, s, t, base.K, gl, wl)
			}
			for i, path := range got.Paths {
				if err := path.Validate(cur); err != nil {
					tb.Errorf("%s: query(%d,%d,%d) path %d invalid: %v", label, s, t, base.K, i, err)
				}
			}
			audited = append(audited, auditedQuery{s: s, t: t, dist: rawDists(got.Paths)})
		}
	}

	audit("initial")

	// Epoch 1 — a delete severing a previously returned top-k path.  A weight
	// batch lands first so the WAL interleaves record kinds before the first
	// topology record.
	s0 := graph.VertexID(rng.Intn(base.N))
	t0 := graph.VertexID(rng.Intn(base.N))
	for s0 == t0 {
		t0 = graph.VertexID(rng.Intn(base.N))
	}
	pre, err := srv.Query(s0, t0, base.K)
	if err != nil || len(pre.Paths) == 0 {
		tb.Fatalf("pre-delete query(%d,%d,%d): %v (paths %d)", s0, t0, base.K, err, len(pre.Paths))
	}
	if err := srv.ApplyUpdates(testutil.PerturbWeights(tb, x.Partition().Parent(), rng, 0.3, 0.4, 0.1)); err != nil {
		tb.Fatalf("interleaved weight batch: %v", err)
	}
	top := pre.Paths[0]
	cur := x.Partition().Parent()
	sever := severingEdge(cur, top)
	if err := srv.ApplyTopology(graph.TopologyUpdate{DeleteEdges: []graph.EdgeID{sever}}); err != nil {
		tb.Fatalf("severing delete: %v", err)
	}
	audit("after-severing-delete", [2]graph.VertexID{s0, t0})

	// Epoch 2 — an insert creating a strictly shorter alternative for the
	// same pair: a direct shortcut cheaper than the pre-delete best distance
	// (which can only have grown or disappeared since).
	shortcut := pre.Paths[0].Dist / 2
	if shortcut <= 0 {
		shortcut = 0.25
	}
	if err := srv.ApplyTopology(graph.TopologyUpdate{
		InsertEdges: []graph.Edge{{U: s0, V: t0, Weight: shortcut}},
	}); err != nil {
		tb.Fatalf("shortcut insert: %v", err)
	}
	res, err := srv.Query(s0, t0, base.K)
	if err != nil || len(res.Paths) == 0 {
		tb.Fatalf("post-insert query(%d,%d,%d): %v", s0, t0, base.K, err)
	}
	if res.Paths[0].Dist > shortcut+1e-9 {
		tb.Errorf("inserted shortcut (%g) did not become the shortest path: got %g", shortcut, res.Paths[0].Dist)
	}
	audit("after-shortcut-insert", [2]graph.VertexID{s0, t0})

	// Remaining epochs — randomized mixed batches, each followed by a weight
	// batch so both WAL record kinds keep interleaving.
	for e := 0; e < p.ExtraEpochs; e++ {
		up := randomTopologyBatch(rng, x.Partition().Parent())
		if err := srv.ApplyTopology(up); err != nil {
			tb.Fatalf("random topology epoch %d: %v", e, err)
		}
		if batch := testutil.PerturbWeights(tb, x.Partition().Parent(), rng, 0.25, 0.4, 0.1); len(batch) > 0 {
			if err := srv.ApplyUpdates(batch); err != nil {
				tb.Fatalf("weight batch after topology epoch %d: %v", e, err)
			}
		}
		audit("after-random-topology")
	}

	if !p.Recover {
		return
	}
	// Crash: the server dies without a final snapshot, so recovery replays
	// the interleaved weight + topology WAL on top of the base snapshot.
	srv.Close()
	if err := st.Close(); err != nil {
		tb.Fatalf("store close: %v", err)
	}
	st2, err := store.Open(st.Dir(), store.Options{})
	if err != nil {
		tb.Fatalf("store reopen: %v", err)
	}
	defer st2.Close()
	rec, err := st2.Recover()
	if err != nil {
		tb.Fatalf("recover: %v", err)
	}
	if want := x.CurrentView().Epoch(); rec.Epoch != want {
		tb.Fatalf("recovered epoch %d, live epoch %d", rec.Epoch, want)
	}
	srv2 := serve.New(rec.Index, nil, serve.Options{Workers: 2})
	defer srv2.Close()
	for _, aq := range audited {
		res, err := srv2.Query(aq.s, aq.t, base.K)
		if err != nil {
			tb.Fatalf("recovered query(%d,%d,%d): %v", aq.s, aq.t, base.K, err)
		}
		got := rawDists(res.Paths)
		if len(got) != len(aq.dist) {
			tb.Errorf("recovered query(%d,%d,%d): %d paths, live run had %d", aq.s, aq.t, base.K, len(got), len(aq.dist))
			continue
		}
		for i := range got {
			if got[i] != aq.dist[i] { // bit-identical, no tolerance
				tb.Errorf("recovered query(%d,%d,%d) path %d: distance %v != live %v",
					aq.s, aq.t, base.K, i, got[i], aq.dist[i])
			}
		}
	}
}

// severingEdge picks the edge of the top path to delete: the first hop whose
// endpoints both keep degree >= 3 afterwards (so the graph usually stays
// connected and the pair keeps alternative routes), falling back to the
// middle hop.  Even if the fallback disconnects the pair, the audit stays
// valid — engine and oracle must agree on the severed graph either way.
func severingEdge(cur *graph.Graph, top graph.Path) graph.EdgeID {
	deg := make(map[graph.VertexID]int)
	for e := 0; e < cur.NumEdges(); e++ {
		if !cur.EdgeAlive(graph.EdgeID(e)) {
			continue
		}
		ends := cur.EdgeEndpoints(graph.EdgeID(e))
		deg[ends.U]++
		deg[ends.V]++
	}
	for i := 0; i+1 < len(top.Vertices); i++ {
		u, v := top.Vertices[i], top.Vertices[i+1]
		if deg[u] >= 3 && deg[v] >= 3 {
			if e, ok := cur.EdgeBetween(u, v); ok {
				return e
			}
		}
	}
	mid := (len(top.Vertices) - 1) / 2
	e, _ := cur.EdgeBetween(top.Vertices[mid], top.Vertices[mid+1])
	return e
}

// rawDists returns path distances in rank order, unsorted and untruncated —
// the bitwise replay contract of the recovery audit.
func rawDists(paths []graph.Path) []float64 {
	out := make([]float64, len(paths))
	for i, p := range paths {
		out[i] = p.Dist
	}
	return out
}

// randomTopologyBatch derives a small mixed mutation batch against cur: with
// the fixed application order (add vertices, delete vertices, delete edges,
// insert edges) the batch may delete a vertex and wire a fresh one into the
// same neighbourhood.
func randomTopologyBatch(rng *rand.Rand, cur *graph.Graph) graph.TopologyUpdate {
	up := graph.TopologyUpdate{AddVertices: 1}
	fresh := graph.VertexID(cur.NumVertices())
	// Wire the fresh vertex to two distinct live endpoints.
	var anchors []graph.VertexID
	for attempts := 0; len(anchors) < 2 && attempts < 256; attempts++ {
		e := graph.EdgeID(rng.Intn(cur.NumEdges()))
		if !cur.EdgeAlive(e) {
			continue
		}
		v := cur.EdgeEndpoints(e).U
		dup := false
		for _, a := range anchors {
			if a == v {
				dup = true
			}
		}
		if !dup {
			anchors = append(anchors, v)
		}
	}
	for _, a := range anchors {
		w := 1 + rng.Float64()*5
		up.InsertEdges = append(up.InsertEdges, graph.Edge{U: fresh, V: a, Weight: w})
		if cur.Directed() {
			up.InsertEdges = append(up.InsertEdges, graph.Edge{U: a, V: fresh, Weight: w})
		}
	}
	// Delete one live edge whose endpoints both keep degree >= 2, so the
	// graph stays connected for the oracle comparison.
	deg := make(map[graph.VertexID]int)
	for e := 0; e < cur.NumEdges(); e++ {
		if !cur.EdgeAlive(graph.EdgeID(e)) {
			continue
		}
		ends := cur.EdgeEndpoints(graph.EdgeID(e))
		deg[ends.U]++
		deg[ends.V]++
	}
	for attempts := 0; attempts < 256; attempts++ {
		e := graph.EdgeID(rng.Intn(cur.NumEdges()))
		if !cur.EdgeAlive(e) {
			continue
		}
		ends := cur.EdgeEndpoints(e)
		if deg[ends.U] >= 3 && deg[ends.V] >= 3 {
			up.DeleteEdges = append(up.DeleteEdges, e)
			break
		}
	}
	return up
}
