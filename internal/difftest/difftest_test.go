package difftest

import (
	"fmt"
	"math/rand"
	"testing"

	"kspdg/internal/baseline"
	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
)

// TestDifferentialGrid sweeps the full parameter grid of the acceptance
// criteria: directed/undirected × k ∈ {1,4,8} × ξ ∈ {1,2,4} × 3 seeds = 54
// randomized graph/parameter combinations, each checked before and after two
// randomized weight-update batches.
//
// In -short mode (the -race CI lane on slow hardware) the undirected k=4
// column is skipped: it is where the engine's iteration-cap outliers live,
// making those nine cells an order of magnitude slower than the rest of the
// grid.  The full grid runs in the non-race lane.
func TestDifferentialGrid(t *testing.T) {
	combos := 0
	for _, directed := range []bool{false, true} {
		for _, k := range []int{1, 4, 8} {
			for _, xi := range []int{1, 2, 4} {
				for seed := int64(1); seed <= 3; seed++ {
					combos++
					p := Params{Directed: directed, K: k, Xi: xi, Seed: seed*100 + int64(k)*10 + int64(xi)}
					name := fmt.Sprintf("directed=%v/k=%d/xi=%d/seed=%d", directed, k, xi, seed)
					t.Run(name, func(t *testing.T) {
						if testing.Short() && !p.Directed && p.K == 4 {
							t.Skip("slow iteration-cap cells are gated behind the full (non-short) lane")
						}
						Check(t, p)
					})
				}
			}
		}
	}
	if combos < 50 {
		t.Fatalf("grid covers only %d combinations, want >= 50", combos)
	}
}

// TestAdaptiveBudgetStall pins the adaptive iteration budget's contract on a
// constructed stall: a one-iteration stall window with an unattainable
// improvement threshold (99% gap reduction per iteration) turns every
// non-converging iteration past the first into a stall, so any query that
// Theorem 3 does not settle immediately must terminate through the budget —
// strictly earlier than the exact run — reporting Converged with
// BoundGap > 0, and its answer must stay within that gap of exact Yen.  The
// same queries through a budget-disabled engine must match Yen exactly with
// BoundGap == 0 (the converging case).  Runs under -race in CI.
func TestAdaptiveBudgetStall(t *testing.T) {
	// The safety-valve cap is lowered for both engines so the handful of
	// iteration-cap grinder queries in the sweep stay cheap; assertions that
	// require a principled termination are gated on staying under it.
	const iterCap = 1500
	budgetHit := false
	for seed := int64(1); seed <= 4 && !budgetHit; seed++ {
		p := Params{K: 4, Xi: 2}.withDefaults()
		rng := rand.New(rand.NewSource(7000 + seed))
		g := p.buildGraph(rng)
		part, err := partition.PartitionGraph(g, p.Z)
		if err != nil {
			t.Fatalf("partition: %v", err)
		}
		x, err := dtlp.Build(part, dtlp.Config{Xi: p.Xi})
		if err != nil {
			t.Fatalf("dtlp build: %v", err)
		}
		budgeted := core.NewEngine(x, nil, core.Options{
			MaxIterations: iterCap, StallWindow: 1, StallImprovement: 0.99,
		})
		exact := core.NewEngine(x, nil, core.Options{
			MaxIterations: iterCap, StallWindow: -1,
		})
		yen := baseline.NewYen(g)
		for q := 0; q < 12; q++ {
			s := graph.VertexID(rng.Intn(p.N))
			tt := graph.VertexID(rng.Intn(p.N))
			if s == tt {
				continue
			}
			bres, err := budgeted.Query(s, tt, p.K)
			if err != nil {
				t.Fatalf("budgeted query(%d,%d): %v", s, tt, err)
			}
			eres, err := exact.Query(s, tt, p.K)
			if err != nil {
				t.Fatalf("exact query(%d,%d): %v", s, tt, err)
			}
			want, err := yen.Query(s, tt, p.K)
			if err != nil {
				t.Fatalf("yen query(%d,%d): %v", s, tt, err)
			}
			wl := lengths(want)
			if eres.Iterations < iterCap {
				// Converging case: without the budget the engine must claim
				// and deliver an exact result.
				if !eres.Converged || eres.BoundGap != 0 {
					t.Errorf("query(%d,%d): budget-disabled run Converged=%v BoundGap=%g, want exact",
						s, tt, eres.Converged, eres.BoundGap)
				}
				if !sameLengths(lengths(eres.Paths), wl) {
					t.Errorf("query(%d,%d): budget-disabled lengths %v != Yen %v",
						s, tt, lengths(eres.Paths), wl)
				}
			}
			switch {
			case bres.BoundGap > 0:
				budgetHit = true
				if !bres.Converged {
					t.Errorf("query(%d,%d): BoundGap=%g with Converged=false", s, tt, bres.BoundGap)
				}
				if bres.Iterations >= iterCap {
					t.Errorf("query(%d,%d): budget termination at the safety-valve cap (%d iterations), want within the stall window",
						s, tt, bres.Iterations)
				}
				if bres.Iterations >= eres.Iterations {
					t.Errorf("query(%d,%d): budget fired after %d iterations, not earlier than the exact run's %d",
						s, tt, bres.Iterations, eres.Iterations)
				}
				if !withinGap(lengths(bres.Paths), wl, bres.BoundGap) {
					t.Errorf("query(%d,%d): budgeted lengths %v not within bound gap %g of Yen %v",
						s, tt, lengths(bres.Paths), bres.BoundGap, wl)
				}
			case !bres.Converged:
				// Genuine truncation: the safety valve fired before k
				// candidates existed.  Not this test's subject.
				t.Logf("query(%d,%d): truncated after %d iterations", s, tt, bres.Iterations)
			default:
				// The budget never fired, so the result must be exact.
				if !sameLengths(lengths(bres.Paths), wl) {
					t.Errorf("query(%d,%d): budgeted run claimed exact, lengths %v != Yen %v",
						s, tt, lengths(bres.Paths), wl)
				}
			}
		}
	}
	if !budgetHit {
		t.Fatal("no query in the sweep triggered the adaptive budget; the stall construction no longer stalls")
	}
}

// TestDifferentialTightBudget runs grid cells through the standard
// differential harness with an aggressive adaptive budget, exercising
// Check's near-exactness audit (withinGap) on whatever queries the budget
// cuts short while everything else must still match Yen exactly.
func TestDifferentialTightBudget(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			Check(t, Params{K: 4, Xi: 2, Seed: 8000 + seed, Engine: core.Options{
				MaxIterations: 2000, StallWindow: 2, StallImprovement: 0.5,
			}})
		})
	}
}

// TestDifferentialConcurrent audits concurrent queries against Yen running
// on the exact epoch each query reports, while update batches land mid-run:
// 8 queriers × 5 queries interleaved with 3 weight-update batches through the
// snapshot layer, on both graph flavours.  Run under -race in CI.
func TestDifferentialConcurrent(t *testing.T) {
	t.Run("undirected", func(t *testing.T) {
		CheckConcurrent(t, ConcurrentParams{Seed: 42})
	})
	t.Run("directed", func(t *testing.T) {
		CheckConcurrent(t, ConcurrentParams{Directed: true, Seed: 43})
	})
}
