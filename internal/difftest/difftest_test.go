package difftest

import (
	"fmt"
	"testing"
)

// TestDifferentialGrid sweeps the full parameter grid of the acceptance
// criteria: directed/undirected × k ∈ {1,4,8} × ξ ∈ {1,2,4} × 3 seeds = 54
// randomized graph/parameter combinations, each checked before and after two
// randomized weight-update batches.
//
// In -short mode (the -race CI lane on slow hardware) the undirected k=4
// column is skipped: it is where the engine's iteration-cap outliers live,
// making those nine cells an order of magnitude slower than the rest of the
// grid.  The full grid runs in the non-race lane.
func TestDifferentialGrid(t *testing.T) {
	combos := 0
	for _, directed := range []bool{false, true} {
		for _, k := range []int{1, 4, 8} {
			for _, xi := range []int{1, 2, 4} {
				for seed := int64(1); seed <= 3; seed++ {
					combos++
					p := Params{Directed: directed, K: k, Xi: xi, Seed: seed*100 + int64(k)*10 + int64(xi)}
					name := fmt.Sprintf("directed=%v/k=%d/xi=%d/seed=%d", directed, k, xi, seed)
					t.Run(name, func(t *testing.T) {
						if testing.Short() && !p.Directed && p.K == 4 {
							t.Skip("slow iteration-cap cells are gated behind the full (non-short) lane")
						}
						Check(t, p)
					})
				}
			}
		}
	}
	if combos < 50 {
		t.Fatalf("grid covers only %d combinations, want >= 50", combos)
	}
}

// TestDifferentialConcurrent audits concurrent queries against Yen running
// on the exact epoch each query reports, while update batches land mid-run:
// 8 queriers × 5 queries interleaved with 3 weight-update batches through the
// snapshot layer, on both graph flavours.  Run under -race in CI.
func TestDifferentialConcurrent(t *testing.T) {
	t.Run("undirected", func(t *testing.T) {
		CheckConcurrent(t, ConcurrentParams{Seed: 42})
	})
	t.Run("directed", func(t *testing.T) {
		CheckConcurrent(t, ConcurrentParams{Directed: true, Seed: 43})
	})
}
