// Chaos lane: the differential harness run against a replicated TCP
// deployment while workers are killed and rejoin mid-workload.  The paper
// deploys KSP-DG on Storm precisely because a road-network service must
// survive process failures (Section 6.1); this is the strongest black-box
// statement of that property the repo can make: with replication factor 2,
// killing a worker loses zero queries, and every returned path set is still
// bit-identical to exact Yen on the frozen weights of the epoch the query
// reports.
package difftest

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"kspdg/internal/cluster"
	"kspdg/internal/dtlp"
	"kspdg/internal/partition"
	"kspdg/internal/rpcbatch"
	"kspdg/internal/serve"
	"kspdg/internal/shortest"
	"kspdg/internal/workload"
)

// ChaosParams describes one kill-worker chaos run.
type ChaosParams struct {
	// Workers is the number of TCP worker servers.  Zero means 3.
	Workers int
	// Factor is the replication factor.  Zero means 2.
	Factor int
	// Queries is the number of queries in the mixed workload.  Zero means 40.
	Queries int
	// UpdateBatches is the number of weight-update batches interleaved with
	// the queries.  Zero means 3.
	UpdateBatches int
	// Victim is the worker killed mid-workload.
	Victim int
	// Restart re-serves the victim on its old address later in the workload.
	Restart bool
	// OutageWindow is how long the victim stays down before a Restart:
	// queries submitted meanwhile run against the dead worker and must be
	// carried by the replicas.  Zero means 50ms when Restart is set.
	OutageWindow time.Duration
	// HedgeAfter enables hedged sends in the provider (0 = off).
	HedgeAfter time.Duration
	// Parallelism is every worker's partial-KSP executor width, applied to
	// restarted workers too.  Zero means GOMAXPROCS (the worker default).
	Parallelism int
	// K, Xi, N, Extra, Z and Directed mirror Params.
	K, Xi, N, Extra, Z int
	Directed           bool
	Seed               int64
}

// chaosDeployment owns the worker servers so kill/restart events can be
// mapped onto real processes-with-sockets.
type chaosDeployment struct {
	part   *partition.Partition
	index  *dtlp.Index
	table  *cluster.ReplicaTable
	outage time.Duration
	par    int

	mu      sync.Mutex
	servers []*cluster.Server
	addrs   []string
	killed  []bool
}

func (d *chaosDeployment) apply(ev workload.ChaosEvent) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := ev.Worker
	if w < 0 || w >= len(d.servers) {
		return fmt.Errorf("chaos: no worker %d", w)
	}
	switch ev.Action {
	case workload.ChaosKillWorker:
		if d.killed[w] {
			return nil
		}
		d.killed[w] = true
		return d.servers[w].Close()
	case workload.ChaosRestartWorker:
		if !d.killed[w] {
			return nil
		}
		// Keep the worker down for the outage window: queries already in
		// flight (and the ones submitted while we sleep) must be carried by
		// the replicas, which is the property the lane exists to prove.
		time.Sleep(d.outage)
		worker := cluster.NewWorker(w, d.part, d.table.OwnedBy(w))
		worker.SetViewResolver(d.index.ViewAt)
		worker.SetParallelism(d.par)
		// The old port may linger briefly after the close; retry the rebind.
		var srv *cluster.Server
		var err error
		for i := 0; i < 200; i++ {
			srv, err = cluster.Serve(d.addrs[w], worker)
			if err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			return fmt.Errorf("chaos: restarting worker %d on %s: %w", w, d.addrs[w], err)
		}
		d.servers[w] = srv
		d.killed[w] = false
		return nil
	default:
		return fmt.Errorf("chaos: unknown action %v", ev.Action)
	}
}

func (d *chaosDeployment) close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for w, srv := range d.servers {
		if !d.killed[w] {
			srv.Close()
		}
	}
}

// CheckChaos builds a replicated TCP deployment, replays a mixed workload
// with a worker killed (and optionally restarted) in the middle of it, and
// audits every query against exact Yen on the frozen weights of the epoch
// the query reports.  Zero queries may fail and zero results may diverge:
// replication plus failover must make worker death invisible to callers.
func CheckChaos(tb testing.TB, cp ChaosParams) {
	tb.Helper()
	if cp.Workers == 0 {
		cp.Workers = 3
	}
	if cp.Factor == 0 {
		cp.Factor = 2
	}
	if cp.Queries == 0 {
		cp.Queries = 40
	}
	if cp.UpdateBatches == 0 {
		cp.UpdateBatches = 3
	}
	if cp.Restart && cp.OutageWindow == 0 {
		cp.OutageWindow = 50 * time.Millisecond
	}
	p := Params{Directed: cp.Directed, K: cp.K, Xi: cp.Xi, N: cp.N, Extra: cp.Extra, Z: cp.Z, Seed: cp.Seed}.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	g := p.buildGraph(rng)
	part, err := partition.PartitionGraph(g, p.Z)
	if err != nil {
		tb.Fatalf("partition: %v", err)
	}
	x, err := dtlp.Build(part, dtlp.Config{Xi: p.Xi, UpdateParallelism: cp.Parallelism})
	if err != nil {
		tb.Fatalf("dtlp build: %v", err)
	}
	table, err := cluster.AssignReplicas(part, cp.Workers, cp.Factor)
	if err != nil {
		tb.Fatalf("replica table: %v", err)
	}

	dep := &chaosDeployment{
		part:   part,
		index:  x,
		table:  table,
		outage: cp.OutageWindow,
		par:    cp.Parallelism,
		killed: make([]bool, cp.Workers),
	}
	var remotes []*cluster.RemoteWorker
	for w := 0; w < cp.Workers; w++ {
		worker := cluster.NewWorker(w, part, table.OwnedBy(w))
		worker.SetViewResolver(x.ViewAt)
		worker.SetParallelism(cp.Parallelism)
		srv, err := cluster.Serve("127.0.0.1:0", worker)
		if err != nil {
			tb.Fatalf("serve worker %d: %v", w, err)
		}
		dep.servers = append(dep.servers, srv)
		dep.addrs = append(dep.addrs, srv.Addr())
		rw, err := cluster.DialPool(srv.Addr(), cluster.ClientOptions{
			PoolSize:    2,
			MaxAttempts: 2,
			BackoffBase: time.Millisecond,
			BackoffMax:  20 * time.Millisecond,
		})
		if err != nil {
			tb.Fatalf("dial worker %d: %v", w, err)
		}
		remotes = append(remotes, rw)
	}
	defer dep.close()
	defer func() {
		for _, rw := range remotes {
			rw.Close()
		}
	}()

	// The workers resolve epoch pins against the shared index, so the
	// epoch-pinned pair memo is sound and replicas answer bit-identically.
	provider, err := cluster.NewReplicatedRemoteProvider(remotes, part, table, cluster.ReplicatedOptions{
		Batch:        rpcbatch.Options{CacheCapacity: 4096},
		SuspectAfter: 1,
		DownAfter:    3,
		PingEvery:    5 * time.Millisecond,
		HedgeAfter:   cp.HedgeAfter,
	})
	if err != nil {
		tb.Fatalf("replicated provider: %v", err)
	}
	defer provider.Close()

	srv := serve.New(x, provider, serve.Options{
		Workers: 8,
		Chaos:   dep.apply,
	})
	defer srv.Close()

	sc := workload.GenerateMixed(g, cp.Queries, cp.UpdateBatches, p.K, 0.3, 0.45, p.Seed+17)
	killAt := cp.Queries / 3
	restartAt := 0
	if cp.Restart {
		restartAt = 2 * cp.Queries / 3
	}
	sc = workload.InjectChaos(sc, cp.Victim, killAt, restartAt)

	report, err := srv.RunScenario(sc)
	if err != nil {
		tb.Fatalf("chaos scenario: %v", err)
	}
	wantChaos := 1
	if cp.Restart {
		wantChaos = 2
	}
	if report.ChaosInjected != wantChaos {
		tb.Fatalf("injected %d chaos events, want %d", report.ChaosInjected, wantChaos)
	}
	if report.BatchesApplied != sc.NumUpdateBatches() {
		tb.Fatalf("applied %d/%d update batches", report.BatchesApplied, sc.NumUpdateBatches())
	}

	// Zero lost queries: every query of the workload must have an answer.
	lost := 0
	for _, qr := range report.Results {
		if qr.Err != nil {
			lost++
			tb.Errorf("query %d -> %d failed during chaos: %v", qr.Query.Source, qr.Query.Target, qr.Err)
		}
	}
	if lost > 0 {
		tb.Fatalf("%d/%d queries lost to the worker kill", lost, len(report.Results))
	}

	// Bit-identical to Yen at the exact epoch each query reports.
	audited := 0
	for _, qr := range report.Results {
		view := x.ViewAt(qr.Result.Epoch)
		if view == nil {
			tb.Fatalf("epoch %d evicted from the retention window", qr.Result.Epoch)
		}
		want := shortest.Yen(g, qr.Query.Source, qr.Query.Target, p.K, &shortest.Options{Weight: view.GlobalWeight})
		gl, wl := lengths(qr.Result.Paths), lengths(want)
		switch {
		case sameLengths(gl, wl) && !qr.Result.Converged:
			tb.Logf("iteration-cap outlier: query(%d,%d,%d)@epoch %d exact without converging (%d iterations)",
				qr.Query.Source, qr.Query.Target, p.K, qr.Result.Epoch, qr.Result.Iterations)
		case !sameLengths(gl, wl):
			tb.Errorf("query(%d,%d,%d)@epoch %d: KSP-DG lengths %v != Yen-at-epoch lengths %v (diverged during chaos)",
				qr.Query.Source, qr.Query.Target, p.K, qr.Result.Epoch, gl, wl)
		}
		audited++
	}
	if audited == 0 {
		tb.Fatal("no outcomes audited")
	}

	if st := srv.Stats(); st.Failovers == 0 && st.HedgedBatches == 0 {
		// The kill may land after the query flood drained on very fast runs;
		// surface it rather than failing, but it usually means the scenario
		// shrank too much to exercise failover.
		tb.Logf("chaos run recorded no failovers or hedges (stats %+v); workload may have drained before the kill", st)
	}
}
