// Package difftest is the differential test harness that pins KSP-DG's
// correctness to Yen's algorithm, the exact centralized baseline the paper
// compares against (Section 6.5).
//
// The harness generates random connected weighted graphs across a parameter
// grid (directed/undirected, k, ξ, seeds), answers the same queries through
// the KSP-DG engine and through exact Yen on the full graph, and asserts that
// the multisets of returned path lengths are identical — the strongest
// black-box statement of Theorem 3's exactness guarantee.  Checks repeat
// after randomized weight-update batches (exercising the Algorithm 2
// maintenance path) and, in the concurrent variant, while update batches land
// between in-flight queries: each concurrent result is audited against Yen
// running on the frozen weights of the exact epoch the query reports.
package difftest

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"kspdg/internal/baseline"
	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/serve"
	"kspdg/internal/shortest"
	"kspdg/internal/testutil"
)

// Params describes one cell of the differential grid.
type Params struct {
	// Directed selects the graph flavour: a random connected undirected
	// graph or a random strongly connected directed graph.
	Directed bool
	// K is the number of shortest paths per query.  Zero means 4.
	K int
	// Xi is the DTLP ξ parameter.  Zero means 2.
	Xi int
	// N is the number of vertices.  Zero means 22.
	N int
	// Extra is the number of extra edges beyond the spanning tree.  Zero
	// means N/3.
	Extra int
	// Z is the partition subgraph size.  Zero means 7.
	Z int
	// Queries is the number of random queries checked per round.  Zero
	// means 4.
	Queries int
	// UpdateRounds is the number of randomized weight-update batches, each
	// followed by a fresh round of differential checks.  Zero means 2.
	UpdateRounds int
	// Seed makes the cell deterministic.
	Seed int64
	// Provider, when set, builds the engine's refine-step provider over the
	// built index — e.g. the batched cluster transport — together with a
	// cleanup function.  Nil runs the refine step on the local provider.
	Provider func(tb testing.TB, x *dtlp.Index) (core.PartialProvider, func())
	// Engine overrides the engine options for the cell — e.g. a tight
	// adaptive iteration budget, whose near-exact claims the checks then
	// audit against exact Yen.  The zero value runs the defaults.
	Engine core.Options
	// UpdateParallelism shards the index's per-batch bound maintenance
	// across this many goroutines (see dtlp.Config.UpdateParallelism).
	// Zero means GOMAXPROCS.
	UpdateParallelism int
}

func (p Params) withDefaults() Params {
	if p.K == 0 {
		p.K = 4
	}
	if p.N == 0 {
		p.N = 22
	}
	if p.Extra == 0 {
		p.Extra = p.N / 3
	}
	if p.Z == 0 {
		p.Z = 7
	}
	if p.Xi == 0 {
		p.Xi = 2
	}
	if p.Queries == 0 {
		p.Queries = 4
	}
	if p.UpdateRounds == 0 {
		p.UpdateRounds = 2
	}
	return p
}

func (p Params) buildGraph(rng *rand.Rand) *graph.Graph {
	if p.Directed {
		return testutil.RandomStronglyConnected(rng, p.N, p.Extra)
	}
	return testutil.RandomConnected(rng, p.N, p.Extra)
}

// lengths extracts the sorted multiset of path distances.
func lengths(paths []graph.Path) []float64 {
	out := make([]float64, len(paths))
	for i, p := range paths {
		out[i] = p.Dist
	}
	sort.Float64s(out)
	return out
}

// sameLengths reports whether two sorted length multisets agree to 1e-9.
func sameLengths(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}

// withinGap audits a budget-terminated result's near-exactness claim: the
// sorted returned lengths must pairwise dominate the exact lengths (a k
// shortest path answer can never beat exact Yen) while exceeding them by at
// most the reported bound gap.
func withinGap(got, want []float64, gap float64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] < want[i]-1e-9 || got[i] > want[i]+gap+1e-9 {
			return false
		}
	}
	return true
}

// Check runs one differential grid cell: KSP-DG versus exact Yen on the same
// queries, before and after each randomized weight-update batch.
func Check(tb testing.TB, p Params) {
	tb.Helper()
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	g := p.buildGraph(rng)
	part, err := partition.PartitionGraph(g, p.Z)
	if err != nil {
		tb.Fatalf("partition: %v", err)
	}
	x, err := dtlp.Build(part, dtlp.Config{Xi: p.Xi, UpdateParallelism: p.UpdateParallelism})
	if err != nil {
		tb.Fatalf("dtlp build: %v", err)
	}
	var provider core.PartialProvider
	if p.Provider != nil {
		var cleanup func()
		provider, cleanup = p.Provider(tb, x)
		defer cleanup()
	}
	engine := core.NewEngine(x, provider, p.Engine)
	yen := baseline.NewYen(g)

	round := func(label string) {
		for q := 0; q < p.Queries; q++ {
			s := graph.VertexID(rng.Intn(p.N))
			t := graph.VertexID(rng.Intn(p.N))
			if s == t {
				continue
			}
			got, err := engine.Query(s, t, p.K)
			if err != nil {
				tb.Fatalf("%s: KSP-DG query(%d,%d,%d): %v", label, s, t, p.K, err)
			}
			want, err := yen.Query(s, t, p.K)
			if err != nil {
				tb.Fatalf("%s: Yen query(%d,%d,%d): %v", label, s, t, p.K, err)
			}
			gl, wl := lengths(got.Paths), lengths(want)
			switch {
			case got.Converged && got.BoundGap > 0:
				// The adaptive iteration budget terminated the search early
				// with a near-exact claim: every returned length must be
				// within the reported bound gap of its exact counterpart.
				if !withinGap(gl, wl, got.BoundGap) {
					tb.Errorf("%s: query(%d,%d,%d) violated its near-exactness claim: KSP-DG lengths %v not within bound gap %g of Yen lengths %v",
						label, s, t, p.K, gl, got.BoundGap, wl)
				} else if !sameLengths(gl, wl) {
					tb.Logf("%s: query(%d,%d,%d) budget-terminated after %d iterations, near-exact within bound gap %g",
						label, s, t, p.K, got.Iterations, got.BoundGap)
				}
			case sameLengths(gl, wl) && !got.Converged:
				// The MaxIterations safety valve fired before k candidates
				// existed, yet the answer matched exact Yen anyway.
				tb.Logf("%s: iteration-cap outlier: query(%d,%d,%d) exact after %d iterations without the Theorem 3 bound",
					label, s, t, p.K, got.Iterations)
			case !sameLengths(gl, wl) && !got.Converged:
				tb.Errorf("%s: query(%d,%d,%d) truncated by the iteration cap: KSP-DG lengths %v != Yen lengths %v",
					label, s, t, p.K, gl, wl)
			case !sameLengths(gl, wl):
				tb.Errorf("%s: query(%d,%d,%d): KSP-DG lengths %v != Yen lengths %v",
					label, s, t, p.K, gl, wl)
			}
			for i, path := range got.Paths {
				if err := path.Validate(g); err != nil {
					tb.Errorf("%s: query(%d,%d,%d) path %d invalid: %v", label, s, t, p.K, i, err)
				}
			}
		}
	}

	round("initial")
	for r := 1; r <= p.UpdateRounds; r++ {
		batch := testutil.PerturbWeights(tb, g, rng, 0.35, 0.45, 0.1)
		if err := x.ApplyUpdates(batch); err != nil {
			tb.Fatalf("round %d: ApplyUpdates: %v", r, err)
		}
		round("after-updates")
	}
}

// ConcurrentParams describes a concurrent differential run through the
// snapshot-isolated serve layer.
type ConcurrentParams struct {
	// Queriers is the number of concurrent query goroutines.  Zero means 8.
	Queriers int
	// QueriesPerQuerier is the number of queries each goroutine issues.
	// Zero means 5.
	QueriesPerQuerier int
	// UpdateBatches is the number of weight-update batches applied while the
	// queriers run.  Zero means 3.
	UpdateBatches int
	// K, Xi, N, Extra, Z and Directed mirror Params.
	K, Xi, N, Extra, Z int
	Directed           bool
	Seed               int64
	// Provider mirrors Params.Provider: it selects the refine transport the
	// serve layer fans out on (nil = local).  With a batching transport this
	// makes the audit cover cross-query coalescing: concurrent queries
	// pinned to different epochs share the per-worker queues, and every
	// result must still match Yen on the exact epoch it reports.
	Provider func(tb testing.TB, x *dtlp.Index) (core.PartialProvider, func())
}

// CheckConcurrent floods a serve.Server with concurrent queries while weight
// update batches land, then audits every result against exact Yen running on
// the frozen weights of the epoch that result reports.  A mismatch means a
// query observed torn weights — i.e. snapshot isolation failed.
func CheckConcurrent(tb testing.TB, cp ConcurrentParams) {
	tb.Helper()
	if cp.Queriers == 0 {
		cp.Queriers = 8
	}
	if cp.QueriesPerQuerier == 0 {
		cp.QueriesPerQuerier = 5
	}
	if cp.UpdateBatches == 0 {
		cp.UpdateBatches = 3
	}
	p := Params{Directed: cp.Directed, K: cp.K, Xi: cp.Xi, N: cp.N, Extra: cp.Extra, Z: cp.Z, Seed: cp.Seed}.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	g := p.buildGraph(rng)
	part, err := partition.PartitionGraph(g, p.Z)
	if err != nil {
		tb.Fatalf("partition: %v", err)
	}
	x, err := dtlp.Build(part, dtlp.Config{Xi: p.Xi})
	if err != nil {
		tb.Fatalf("dtlp build: %v", err)
	}
	var provider core.PartialProvider
	if cp.Provider != nil {
		var cleanup func()
		provider, cleanup = cp.Provider(tb, x)
		defer cleanup()
	}
	srv := serve.New(x, provider, serve.Options{Workers: cp.Queriers})
	defer srv.Close()

	type outcome struct {
		s, t graph.VertexID
		k    int
		res  core.Result
	}
	outcomes := make(chan outcome, cp.Queriers*cp.QueriesPerQuerier)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < cp.Queriers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(seed))
			<-start
			for i := 0; i < cp.QueriesPerQuerier; i++ {
				s := graph.VertexID(qrng.Intn(p.N))
				t := graph.VertexID(qrng.Intn(p.N))
				if s == t {
					continue
				}
				res, err := srv.Query(s, t, p.K)
				if err != nil {
					tb.Errorf("query(%d,%d,%d): %v", s, t, p.K, err)
					continue
				}
				outcomes <- outcome{s: s, t: t, k: p.K, res: res}
			}
		}(p.Seed + int64(w) + 1)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		urng := rand.New(rand.NewSource(p.Seed + 999))
		<-start
		for b := 0; b < cp.UpdateBatches; b++ {
			var batch []graph.WeightUpdate
			for e := 0; e < g.NumEdges(); e++ {
				if urng.Float64() < 0.3 {
					w := g.Weight(graph.EdgeID(e)) * (0.55 + urng.Float64()*0.9)
					if w < 0.1 {
						w = 0.1
					}
					batch = append(batch, graph.WeightUpdate{Edge: graph.EdgeID(e), NewWeight: w})
				}
			}
			if err := srv.ApplyUpdates(batch); err != nil {
				tb.Errorf("ApplyUpdates batch %d: %v", b, err)
			}
		}
	}()
	close(start)
	wg.Wait()
	close(outcomes)

	if st := srv.Stats(); st.UpdateBatches < int64(cp.UpdateBatches) {
		tb.Fatalf("only %d/%d update batches applied", st.UpdateBatches, cp.UpdateBatches)
	}
	audited := 0
	for o := range outcomes {
		view := x.ViewAt(o.res.Epoch)
		if view == nil {
			tb.Fatalf("epoch %d evicted from the retention window", o.res.Epoch)
		}
		want := shortest.Yen(g, o.s, o.t, o.k, &shortest.Options{Weight: view.GlobalWeight})
		gl, wl := lengths(o.res.Paths), lengths(want)
		switch {
		case o.res.Converged && o.res.BoundGap > 0:
			if !withinGap(gl, wl, o.res.BoundGap) {
				tb.Errorf("query(%d,%d,%d)@epoch %d violated its near-exactness claim: KSP-DG lengths %v not within bound gap %g of Yen-at-epoch lengths %v",
					o.s, o.t, o.k, o.res.Epoch, gl, o.res.BoundGap, wl)
			} else if !sameLengths(gl, wl) {
				tb.Logf("query(%d,%d,%d)@epoch %d budget-terminated, near-exact within bound gap %g",
					o.s, o.t, o.k, o.res.Epoch, o.res.BoundGap)
			}
		case sameLengths(gl, wl) && !o.res.Converged:
			// The iteration cap fired but the answer still matches exact Yen:
			// a convergence outlier, made visible instead of passing silently
			// as if the Theorem 3 bound had been reached.
			tb.Logf("iteration-cap outlier: query(%d,%d,%d)@epoch %d returned exact results without converging (%d iterations)",
				o.s, o.t, o.k, o.res.Epoch, o.res.Iterations)
		case !sameLengths(gl, wl) && !o.res.Converged:
			tb.Errorf("query(%d,%d,%d)@epoch %d truncated by the iteration cap: KSP-DG lengths %v != Yen-at-epoch lengths %v",
				o.s, o.t, o.k, o.res.Epoch, gl, wl)
		case !sameLengths(gl, wl):
			tb.Errorf("query(%d,%d,%d)@epoch %d: KSP-DG lengths %v != Yen-at-epoch lengths %v (snapshot isolation violated)",
				o.s, o.t, o.k, o.res.Epoch, gl, wl)
		}
		audited++
	}
	if audited == 0 {
		tb.Fatal("no outcomes audited")
	}
}
