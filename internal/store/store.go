// Package store is the durable-state subsystem: index snapshots plus an
// epoch write-ahead log (WAL), making restart cost proportional to
// updates-since-snapshot instead of graph size.
//
// A Store manages one data directory containing at most one generation of
// durable state:
//
//	snap-<epoch>.ksp  — a checksummed binary snapshot of the graph topology,
//	                    the partition assignment, the DTLP index skeleton
//	                    (bounding paths, EP-Index content, skeleton graph
//	                    derivation inputs) and one weight snapshot, all
//	                    frozen at <epoch>.
//	wal-<epoch>.log   — the write-ahead log of update batches applied after
//	                    <epoch>: the batch that produced epoch E is stored
//	                    under record epoch E.  Weight batches and topology
//	                    batches (edge/vertex inserts and deletes) interleave
//	                    in epoch order.
//
// serve.Server appends each applied batch through AppendBatch (the
// WAL-on-apply hook) and periodically calls SaveSnapshot, which rotates the
// WAL and deletes the previous generation.  Recover loads the newest valid
// snapshot, replays the WAL in epoch order, and returns an index whose epoch
// counter continues exactly where the crashed process stopped — queries
// against the recovered index are indistinguishable from queries against a
// process that never crashed.
//
// # Format versioning
//
// Every snapshot and WAL file records FormatVersion.  The policy is strict:
// any layout change — even a field addition — bumps the version, and readers
// accept exactly the versions they were built for, failing loudly otherwise
// (the fixed-width format has no tag/length framing to skip unknown fields).
// A version bump therefore means a cold start: rebuild the index from the
// dataset and write a fresh snapshot.  Snapshots are portable across
// machines of any endianness (the encoding is explicitly little-endian) but
// are not a general interchange format.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
)

// Options configures a Store.
type Options struct {
	// SyncEvery batches WAL fsyncs: 1 (and 0, the default) fsyncs after
	// every appended batch; n > 1 fsyncs every n-th batch, trading up to
	// n-1 batches of power-failure durability for append throughput.
	// Records are always flushed to the OS, so a process crash alone loses
	// nothing.
	SyncEvery int
}

// Store manages the durable state in one data directory.  All methods are
// safe for concurrent use; appends and snapshots are serialized internally.
type Store struct {
	dir  string
	opts Options

	mu     sync.Mutex
	wal    *walWriter
	closed bool
}

// Open creates (if needed) the data directory and returns a Store over it.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	return &Store{dir: dir, opts: opts}, nil
}

// Dir returns the data directory the store manages.
func (s *Store) Dir() string { return s.dir }

// snapPathIn and walPathIn are the single source of the on-disk naming
// scheme, shared by the writers and the recovery scanner.
func snapPathIn(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.ksp", epoch))
}

func walPathIn(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", epoch))
}

func (s *Store) snapPath(epoch uint64) string { return snapPathIn(s.dir, epoch) }
func (s *Store) walPath(epoch uint64) string  { return walPathIn(s.dir, epoch) }

// listGeneration scans the directory for snapshot and WAL files, returning
// their epochs sorted ascending.
func listGeneration(dir string) (snaps, wals []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	parse := func(name, prefix, suffix string) (uint64, bool) {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			return 0, false
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		v, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if v, ok := parse(e.Name(), "snap-", ".ksp"); ok {
			snaps = append(snaps, v)
		}
		if v, ok := parse(e.Name(), "wal-", ".log"); ok {
			wals = append(wals, v)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return snaps, wals, nil
}

// SaveSnapshot writes a snapshot of the index at its current epoch, rotates
// the WAL to start at that epoch, and deletes the previous generation's
// files.  It returns the snapshot epoch.  The write is atomic: the snapshot
// is streamed to a temporary file, fsynced, and renamed into place.
func (s *Store) SaveSnapshot(x *dtlp.Index) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("store: store is closed")
	}
	tmp, err := os.CreateTemp(s.dir, "snap-*.tmp")
	if err != nil {
		return 0, err
	}
	tmpName := tmp.Name()
	epoch, err := encodeSnapshot(tmp, x)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return 0, fmt.Errorf("store: writing snapshot: %w", err)
	}
	final := s.snapPath(epoch)
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return 0, err
	}
	syncDir(s.dir)

	// Rotate the WAL so it starts at the snapshot epoch, then drop every
	// other file: the snapshot supersedes the whole directory.  Reusing an
	// existing wal-<epoch> file here would be wrong — the active segment
	// never matches the snapshot epoch in this branch, so such a file can
	// only be left over from an earlier run (possibly one whose epoch
	// counter restarted from 0 in the same directory), and its records must
	// not survive into the new generation.
	if s.wal == nil || s.wal.startEpoch != epoch {
		if s.wal != nil {
			if err := s.wal.close(); err != nil {
				return epoch, err
			}
			s.wal = nil
		}
		path := s.walPath(epoch)
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return epoch, err
		}
		w, err := createWAL(path, epoch)
		if err != nil {
			return epoch, err
		}
		s.wal = w
		syncDir(s.dir)
	}
	s.compactLocked(epoch)
	return epoch, nil
}

// compactLocked removes every snapshot and WAL segment except keepEpoch's.
// Deleting higher epochs too (not just older ones) matters when a data
// directory is reused across cold starts: a fresh epoch-0 snapshot must not
// leave a stale higher-epoch generation behind for Recover to prefer.
func (s *Store) compactLocked(keepEpoch uint64) {
	snaps, wals, err := listGeneration(s.dir)
	if err != nil {
		return // compaction is best-effort; recovery tolerates extra files
	}
	for _, e := range snaps {
		if e != keepEpoch {
			os.Remove(s.snapPath(e))
		}
	}
	for _, e := range wals {
		if e != keepEpoch {
			os.Remove(s.walPath(e))
		}
	}
	// Also sweep snap-*.tmp files orphaned by a crash between CreateTemp and
	// the rename; s.mu is held, so no live temporary can be caught here.
	if entries, err := os.ReadDir(s.dir); err == nil {
		for _, e := range entries {
			if !e.IsDir() && strings.HasPrefix(e.Name(), "snap-") && strings.HasSuffix(e.Name(), ".tmp") {
				os.Remove(filepath.Join(s.dir, e.Name()))
			}
		}
	}
}

// AppendBatch logs one applied weight-update batch under the epoch it
// produced (dtlp.Index.ApplyUpdatesEpoch).  The first append after Open
// attaches to the newest existing WAL segment (truncating any torn tail) or
// creates one starting at epoch-1.  Epochs must be appended in increasing
// order.
func (s *Store) AppendBatch(epoch uint64, batch []graph.WeightUpdate) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureWALLocked(epoch); err != nil {
		return err
	}
	return s.wal.append(epoch, batch, s.opts.SyncEvery)
}

// AppendTopology logs one applied topology batch under the epoch it produced
// (dtlp.Index.ApplyTopologyEpoch).  Topology records interleave with weight
// records in the same WAL, in epoch order; replay re-derives the same edge
// ids and partition routing deterministically, so a recovered process is
// bit-identical to the crashed one.
func (s *Store) AppendTopology(epoch uint64, up graph.TopologyUpdate) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureWALLocked(epoch); err != nil {
		return err
	}
	return s.wal.appendTopology(epoch, up, s.opts.SyncEvery)
}

// ensureWALLocked attaches to (or creates) the active WAL segment before the
// first append.  Callers hold s.mu.
func (s *Store) ensureWALLocked(epoch uint64) error {
	if s.closed {
		return fmt.Errorf("store: store is closed")
	}
	if s.wal != nil {
		return nil
	}
	_, wals, err := listGeneration(s.dir)
	if err != nil {
		return err
	}
	if len(wals) > 0 {
		path := s.walPath(wals[len(wals)-1])
		w, last, err := openWALForAppend(path)
		if err != nil {
			// An unreadable header means the segment died in the crash
			// window before its header became durable; it holds no
			// recoverable records, so recreate it rather than failing
			// every append forever.
			if rerr := os.Remove(path); rerr != nil {
				return err
			}
			if w, err = createWAL(path, wals[len(wals)-1]); err != nil {
				return err
			}
			last = wals[len(wals)-1]
		}
		if last >= epoch {
			w.close()
			return fmt.Errorf("store: WAL already holds epoch %d, cannot append epoch %d", last, epoch)
		}
		s.wal = w
		return nil
	}
	if epoch == 0 {
		return fmt.Errorf("store: cannot log a batch for epoch 0 (epoch 0 is construction time)")
	}
	w, err := createWAL(s.walPath(epoch-1), epoch-1)
	if err != nil {
		return err
	}
	s.wal = w
	syncDir(s.dir)
	return nil
}

// Sync forces an fsync of the active WAL segment, flushing any batches still
// riding an Options.SyncEvery window.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil || s.wal.f == nil {
		return nil
	}
	return s.wal.f.Sync()
}

// Close fsyncs and closes the active WAL segment.  The store cannot be used
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal != nil {
		err := s.wal.close()
		s.wal = nil
		return err
	}
	return nil
}

// Recovered is the result of a successful recovery: the reconstructed graph,
// partition, and index, ready to serve at the epoch the crashed process last
// published.
type Recovered struct {
	Graph     *graph.Graph
	Partition *partition.Partition
	Index     *dtlp.Index
	// SnapshotEpoch is the epoch of the snapshot the recovery started from.
	SnapshotEpoch uint64
	// Epoch is the index's current epoch after WAL replay.
	Epoch uint64
	// ReplayedBatches counts the WAL batches applied on top of the snapshot.
	ReplayedBatches int
}

// Recover loads the newest valid snapshot in the data directory, replays the
// WAL on top of it, and returns the reconstructed state.  The recovered
// index's epoch counter continues where the previous process stopped, and
// its weights and bounding-path distances are bit-identical to that
// process's published state (the differential recovery tests assert this).
// Recovery never enumerates bounding paths — restart cost is the snapshot
// read plus updates-since-snapshot.
func (s *Store) Recover() (*Recovered, error) {
	return recoverState(s.dir, false)
}

// RecoverTopology is the worker-side recovery: it loads the graph and
// partition (with WAL-replayed weights) from a data directory without
// assembling the DTLP index.  Workers hosting subgraphs need exactly this
// much state; only the master needs the full index.
func RecoverTopology(dir string) (*graph.Graph, *partition.Partition, uint64, error) {
	rec, err := recoverState(dir, true)
	if err != nil {
		return nil, nil, 0, err
	}
	return rec.Graph, rec.Partition, rec.Epoch, nil
}

// recoverState is the shared recovery core.  With topologyOnly set, WAL batches
// are applied to the graph and partition but no index is assembled.
func recoverState(dir string, topologyOnly bool) (*Recovered, error) {
	snaps, wals, err := listGeneration(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	if len(snaps) == 0 {
		return nil, fmt.Errorf("store: no snapshot in %s", dir)
	}
	// Newest snapshot first; fall back to older generations if the newest is
	// corrupt (e.g. a crash mid-rename on a filesystem without atomic rename).
	var sc *snapshotContents
	var loadErr error
	for i := len(snaps) - 1; i >= 0; i-- {
		sc, loadErr = loadSnapshotFile(snapPathIn(dir, snaps[i]), topologyOnly)
		if loadErr == nil {
			break
		}
		sc = nil
	}
	if sc == nil {
		return nil, fmt.Errorf("store: no loadable snapshot in %s: %w", dir, loadErr)
	}
	rec := &Recovered{
		Graph:         sc.graph,
		Partition:     sc.partition,
		Index:         sc.index,
		SnapshotEpoch: sc.epoch,
		Epoch:         sc.epoch,
	}
	// Replay WAL segments in start-epoch order, skipping batches the
	// snapshot already covers.
	for _, start := range wals {
		recs, _, _, err := readWAL(walPathIn(dir, start))
		if err != nil {
			// A segment with an unreadable header can hold no durable records:
			// createWAL fsyncs the header before any append is possible, so
			// this is the crash window between file creation and header
			// durability.  Treat it as empty rather than failing a recovery
			// whose snapshot is intact (torn tails inside a readable segment
			// are already handled by readWAL itself).
			continue
		}
		for _, r := range recs {
			if r.Epoch <= rec.Epoch {
				continue
			}
			if r.Epoch != rec.Epoch+1 {
				return nil, fmt.Errorf("store: WAL gap: have epoch %d, next record is epoch %d", rec.Epoch, r.Epoch)
			}
			if r.Topo != nil {
				// Topology record: the mutation is copy-on-write, so the
				// recovered graph and partition pointers advance with it.
				if topologyOnly {
					ng, inserted, deleted, err := rec.Graph.ApplyTopology(*r.Topo)
					if err != nil {
						return nil, fmt.Errorf("store: replaying topology epoch %d: %w", r.Epoch, err)
					}
					np, _, err := rec.Partition.ApplyTopology(ng, *r.Topo, inserted, deleted)
					if err != nil {
						return nil, fmt.Errorf("store: replaying topology epoch %d: %w", r.Epoch, err)
					}
					rec.Graph, rec.Partition = ng, np
				} else {
					epoch, err := rec.Index.ApplyTopologyEpoch(*r.Topo)
					if err != nil {
						return nil, fmt.Errorf("store: replaying topology epoch %d: %w", r.Epoch, err)
					}
					if epoch != r.Epoch {
						return nil, fmt.Errorf("store: replay produced epoch %d for WAL record %d", epoch, r.Epoch)
					}
					rec.Partition = rec.Index.Partition()
					rec.Graph = rec.Partition.Parent()
				}
				rec.Epoch = r.Epoch
				rec.ReplayedBatches++
				continue
			}
			if err := rec.Graph.ApplyUpdates(r.Batch); err != nil {
				return nil, fmt.Errorf("store: replaying epoch %d: %w", r.Epoch, err)
			}
			if topologyOnly {
				if _, err := rec.Partition.ApplyUpdates(r.Batch); err != nil {
					return nil, fmt.Errorf("store: replaying epoch %d: %w", r.Epoch, err)
				}
			} else {
				epoch, err := rec.Index.ApplyUpdatesEpoch(r.Batch)
				if err != nil {
					return nil, fmt.Errorf("store: replaying epoch %d: %w", r.Epoch, err)
				}
				if epoch != r.Epoch {
					return nil, fmt.Errorf("store: replay produced epoch %d for WAL record %d", epoch, r.Epoch)
				}
			}
			rec.Epoch = r.Epoch
			rec.ReplayedBatches++
		}
	}
	return rec, nil
}

// loadSnapshotFile decodes one snapshot file.
func loadSnapshotFile(path string, topologyOnly bool) (*snapshotContents, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	sc, err := decodeSnapshot(f, fi.Size(), topologyOnly)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", filepath.Base(path), err)
	}
	return sc, nil
}

// syncDir fsyncs a directory so renames and creations are durable.  Best
// effort: some filesystems do not support directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
