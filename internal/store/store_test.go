package store

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/serve"
	"kspdg/internal/testutil"
	"kspdg/internal/workload"
)

// The store must plug into the serve layer's durability hook.
var _ serve.Persister = (*Store)(nil)

// buildIndex constructs a deterministic random graph, partition, and index.
// Calling it twice with the same seed yields two independent but identical
// instances (the never-crashed reference and the crash/recover subject).
func buildIndex(tb testing.TB, seed int64, n, z, xi int) (*graph.Graph, *dtlp.Index) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := testutil.RandomConnected(rng, n, n/3)
	part, err := partition.PartitionGraph(g, z)
	if err != nil {
		tb.Fatalf("partition: %v", err)
	}
	x, err := dtlp.Build(part, dtlp.Config{Xi: xi})
	if err != nil {
		tb.Fatalf("dtlp build: %v", err)
	}
	return g, x
}

// exportRecords drains an index's path record stream into a flat slice.
type taggedRecord struct {
	Sub partition.SubgraphID
	Rec dtlp.PathRecord
}

func exportRecords(tb testing.TB, x *dtlp.Index) []taggedRecord {
	tb.Helper()
	var out []taggedRecord
	err := x.ExportState(func(st dtlp.ExportedState) error {
		return st.Paths(func(sub partition.SubgraphID, rec dtlp.PathRecord) error {
			out = append(out, taggedRecord{Sub: sub, Rec: dtlp.PathRecord{
				Pair:     rec.Pair,
				Vertices: append([]graph.VertexID(nil), rec.Vertices...),
				Edges:    append([]graph.EdgeID(nil), rec.Edges...),
				Vfrags:   rec.Vfrags,
				Dist:     rec.Dist,
			}})
			return nil
		})
	})
	if err != nil {
		tb.Fatalf("export: %v", err)
	}
	return out
}

// requireIdenticalIndexes asserts two indexes are bit-identical: same epoch,
// same weights, and the same bounding path state down to the float bits.
func requireIdenticalIndexes(tb testing.TB, want, got *dtlp.Index) {
	tb.Helper()
	wv, gv := want.CurrentView(), got.CurrentView()
	if wv.Epoch() != gv.Epoch() {
		tb.Fatalf("epoch mismatch: want %d, got %d", wv.Epoch(), gv.Epoch())
	}
	numE := want.Partition().Parent().NumEdges()
	if gotE := got.Partition().Parent().NumEdges(); gotE != numE {
		tb.Fatalf("edge count mismatch: want %d, got %d", numE, gotE)
	}
	for e := 0; e < numE; e++ {
		ww := math.Float64bits(wv.GlobalWeight(graph.EdgeID(e)))
		gw := math.Float64bits(gv.GlobalWeight(graph.EdgeID(e)))
		if ww != gw {
			tb.Fatalf("edge %d weight bits differ: %016x vs %016x", e, ww, gw)
		}
	}
	wr, gr := exportRecords(tb, want), exportRecords(tb, got)
	if len(wr) != len(gr) {
		tb.Fatalf("path record count mismatch: want %d, got %d", len(wr), len(gr))
	}
	for i := range wr {
		a, b := wr[i], gr[i]
		if a.Sub != b.Sub || a.Rec.Pair != b.Rec.Pair ||
			math.Float64bits(a.Rec.Vfrags) != math.Float64bits(b.Rec.Vfrags) ||
			math.Float64bits(a.Rec.Dist) != math.Float64bits(b.Rec.Dist) {
			tb.Fatalf("record %d differs: %+v vs %+v", i, a, b)
		}
		if len(a.Rec.Vertices) != len(b.Rec.Vertices) {
			tb.Fatalf("record %d vertex count differs", i)
		}
		for j := range a.Rec.Vertices {
			if a.Rec.Vertices[j] != b.Rec.Vertices[j] {
				tb.Fatalf("record %d vertex %d differs", i, j)
			}
		}
		for j := range a.Rec.Edges {
			if a.Rec.Edges[j] != b.Rec.Edges[j] {
				tb.Fatalf("record %d edge %d differs", i, j)
			}
		}
	}
}

// requireIdenticalAnswers runs the same queries through both indexes and
// asserts byte-identical results: same epoch, same paths, same distances.
// Both engines share an iteration cap so the occasional slow-converging
// random query stays bounded; equivalence still holds because both sides are
// truncated identically (a state divergence would still surface).
func requireIdenticalAnswers(tb testing.TB, want, got *dtlp.Index, n int, seed int64, k int) {
	tb.Helper()
	opts := core.Options{MaxIterations: 50}
	we := core.NewEngine(want, nil, opts)
	ge := core.NewEngine(got, nil, opts)
	rng := rand.New(rand.NewSource(seed))
	for q := 0; q < 12; q++ {
		s := graph.VertexID(rng.Intn(n))
		t := graph.VertexID(rng.Intn(n))
		if s == t {
			continue
		}
		wres, err := we.Query(s, t, k)
		if err != nil {
			tb.Fatalf("reference query(%d,%d): %v", s, t, err)
		}
		gres, err := ge.Query(s, t, k)
		if err != nil {
			tb.Fatalf("recovered query(%d,%d): %v", s, t, err)
		}
		if wres.Epoch != gres.Epoch {
			tb.Fatalf("query(%d,%d): epoch %d vs %d", s, t, wres.Epoch, gres.Epoch)
		}
		if len(wres.Paths) != len(gres.Paths) {
			tb.Fatalf("query(%d,%d): %d paths vs %d", s, t, len(wres.Paths), len(gres.Paths))
		}
		for i := range wres.Paths {
			wp, gp := wres.Paths[i], gres.Paths[i]
			if math.Float64bits(wp.Dist) != math.Float64bits(gp.Dist) {
				tb.Fatalf("query(%d,%d) path %d: dist bits %016x vs %016x",
					s, t, i, math.Float64bits(wp.Dist), math.Float64bits(gp.Dist))
			}
			if len(wp.Vertices) != len(gp.Vertices) {
				tb.Fatalf("query(%d,%d) path %d: lengths differ", s, t, i)
			}
			for j := range wp.Vertices {
				if wp.Vertices[j] != gp.Vertices[j] {
					tb.Fatalf("query(%d,%d) path %d vertex %d differs", s, t, i, j)
				}
			}
		}
	}
}

// TestSnapshotRoundTrip saves a freshly built index and recovers it: the
// recovered index must be bit-identical at epoch 0 without any subgraph
// construction work.
func TestSnapshotRoundTrip(t *testing.T) {
	const seed, n, z, xi = 11, 34, 8, 2
	_, x := buildIndex(t, seed, n, z, xi)
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := st.SaveSnapshot(x)
	if err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	if epoch != 0 {
		t.Fatalf("snapshot epoch = %d, want 0", epoch)
	}
	builds := dtlp.SubgraphBuildCount()
	rec, err := st.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := dtlp.SubgraphBuildCount(); got != builds {
		t.Fatalf("recovery rebuilt %d subgraph indexes; warm start must not enumerate bounding paths", got-builds)
	}
	if rec.Epoch != 0 || rec.SnapshotEpoch != 0 || rec.ReplayedBatches != 0 {
		t.Fatalf("unexpected recovery summary: %+v", rec)
	}
	requireIdenticalIndexes(t, x, rec.Index)
	requireIdenticalAnswers(t, x, rec.Index, n, seed+1, 3)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverEquivalence is the kill-and-recover differential test of the
// acceptance criteria: a server running with the store (snapshot landing
// mid-stream, WAL tail) is crashed and recovered, and the recovered state
// must be indistinguishable — epoch counter, index weights, bounding path
// distances, and k-shortest-path answers — from a server that applied the
// same batches without ever crashing.
func TestRecoverEquivalence(t *testing.T) {
	const seed, n, z, xi, k = 42, 36, 8, 2, 3
	gA, xA := buildIndex(t, seed, n, z, xi)
	_, xB := buildIndex(t, seed, n, z, xi)

	dir := t.TempDir()
	st, err := Open(dir, Options{SyncEvery: 2})
	if err != nil {
		t.Fatal(err)
	}

	srvA := serve.New(xA, nil, serve.Options{Workers: 2})
	defer srvA.Close()
	// Snapshot every 4 batches: after 6 batches the store holds a snapshot
	// at epoch 4 plus WAL records for epochs 5 and 6.
	srvB := serve.New(xB, nil, serve.Options{Workers: 2, Store: st, SnapshotEvery: 4})

	const batches = 6
	sc := workload.GenerateMixed(gA, 0, batches, k, 0.4, 0.5, seed+7)
	applied := 0
	for _, ev := range sc.Events {
		if len(ev.Updates) == 0 {
			continue
		}
		if err := srvA.ApplyUpdates(ev.Updates); err != nil {
			t.Fatalf("reference ApplyUpdates: %v", err)
		}
		if err := srvB.ApplyUpdates(ev.Updates); err != nil {
			t.Fatalf("stored ApplyUpdates: %v", err)
		}
		applied++
	}
	if applied != batches {
		t.Fatalf("generated %d batches, want %d", applied, batches)
	}
	if st := srvB.Stats(); st.Snapshots != 1 {
		t.Fatalf("expected 1 periodic snapshot, got %d", st.Snapshots)
	}

	// Crash: abandon srvB and its index, close the store abruptly.
	srvB.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	builds := dtlp.SubgraphBuildCount()
	rec, err := st2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := dtlp.SubgraphBuildCount(); got != builds {
		t.Fatalf("recovery rebuilt %d subgraph indexes", got-builds)
	}
	if rec.SnapshotEpoch != 4 || rec.Epoch != batches || rec.ReplayedBatches != 2 {
		t.Fatalf("recovery summary: snapshot %d, epoch %d, replayed %d; want 4, %d, 2",
			rec.SnapshotEpoch, rec.Epoch, rec.ReplayedBatches, batches)
	}
	requireIdenticalIndexes(t, xA, rec.Index)
	requireIdenticalAnswers(t, xA, rec.Index, n, seed+100, k)

	// Warm-started server continues the epoch sequence and keeps logging:
	// one more batch must land as epoch 7 on both sides and stay identical.
	srvC := serve.New(rec.Index, nil, serve.Options{Workers: 2, Store: st2})
	defer srvC.Close()
	sc2 := workload.GenerateMixed(gA, 0, 1, k, 0.4, 0.5, seed+8)
	for _, ev := range sc2.Events {
		if len(ev.Updates) == 0 {
			continue
		}
		if err := srvA.ApplyUpdates(ev.Updates); err != nil {
			t.Fatal(err)
		}
		if err := srvC.ApplyUpdates(ev.Updates); err != nil {
			t.Fatal(err)
		}
	}
	if got := rec.Index.CurrentView().Epoch(); got != batches+1 {
		t.Fatalf("warm-started epoch = %d, want %d", got, batches+1)
	}
	requireIdenticalIndexes(t, xA, rec.Index)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverTopology recovers graph+partition only (the worker warm-start
// path) and checks the replayed weights match a full recovery.
func TestRecoverTopology(t *testing.T) {
	const seed, n, z, xi = 17, 30, 7, 2
	g, x := buildIndex(t, seed, n, z, xi)
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.SaveSnapshot(x); err != nil {
		t.Fatal(err)
	}
	srv := serve.New(x, nil, serve.Options{Workers: 1, Store: st})
	sc := workload.GenerateMixed(g, 0, 3, 2, 0.4, 0.5, seed)
	for _, ev := range sc.Events {
		if len(ev.Updates) > 0 {
			if err := srv.ApplyUpdates(ev.Updates); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv.Close()
	st.Close()

	rg, rp, epoch, err := RecoverTopology(dir)
	if err != nil {
		t.Fatalf("RecoverTopology: %v", err)
	}
	if epoch != 3 {
		t.Fatalf("topology recovery epoch = %d, want 3", epoch)
	}
	for e := 0; e < g.NumEdges(); e++ {
		if math.Float64bits(g.Weight(graph.EdgeID(e))) != math.Float64bits(rg.Weight(graph.EdgeID(e))) {
			t.Fatalf("edge %d weight differs after topology recovery", e)
		}
	}
	// Subgraph-local weights must track the parent too.
	for i := 0; i < rp.NumSubgraphs(); i++ {
		sg := rp.Subgraph(partition.SubgraphID(i))
		for le, ge := range sg.GlobalEdges {
			if math.Float64bits(sg.Local.Weight(graph.EdgeID(le))) != math.Float64bits(g.Weight(ge)) {
				t.Fatalf("subgraph %d local edge %d weight differs", i, le)
			}
		}
	}
}

// TestWALTornTail truncates the WAL mid-record (a crash during append) and
// checks recovery stops cleanly at the last complete record, and that a
// subsequent append reuses the valid prefix.
func TestWALTornTail(t *testing.T) {
	const seed, n, z, xi = 23, 30, 7, 2
	g, x := buildIndex(t, seed, n, z, xi)
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.SaveSnapshot(x); err != nil {
		t.Fatal(err)
	}
	srv := serve.New(x, nil, serve.Options{Workers: 1, Store: st})
	sc := workload.GenerateMixed(g, 0, 3, 2, 0.4, 0.5, seed)
	for _, ev := range sc.Events {
		if len(ev.Updates) > 0 {
			if err := srv.ApplyUpdates(ev.Updates); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv.Close()
	st.Close()

	walPath := filepath.Join(dir, "wal-0000000000000000.log")
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatalf("expected WAL segment: %v", err)
	}
	if err := os.Truncate(walPath, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st2.Recover()
	if err != nil {
		t.Fatalf("Recover after torn tail: %v", err)
	}
	if rec.Epoch != 2 || rec.ReplayedBatches != 2 {
		t.Fatalf("torn-tail recovery reached epoch %d (%d batches), want epoch 2 (2 batches)",
			rec.Epoch, rec.ReplayedBatches)
	}
	// Appending after recovery must truncate the torn bytes and continue.
	if err := st2.AppendBatch(3, []graph.WeightUpdate{{Edge: 0, NewWeight: 9}}); err != nil {
		t.Fatalf("append after torn tail: %v", err)
	}
	st2.Close()
	recs, _, _, err := readWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Epoch != 3 {
		t.Fatalf("WAL after repair holds %d records, want 3 ending at epoch 3", len(recs))
	}
}

// TestCompaction checks that a periodic snapshot rotates the WAL and removes
// the previous generation's files.
func TestCompaction(t *testing.T) {
	const seed, n, z, xi = 31, 30, 7, 2
	g, x := buildIndex(t, seed, n, z, xi)
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.SaveSnapshot(x); err != nil {
		t.Fatal(err)
	}
	srv := serve.New(x, nil, serve.Options{Workers: 1, Store: st, SnapshotEvery: 2})
	sc := workload.GenerateMixed(g, 0, 4, 2, 0.4, 0.5, seed)
	for _, ev := range sc.Events {
		if len(ev.Updates) > 0 {
			if err := srv.ApplyUpdates(ev.Updates); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv.Close()
	st.Close()

	snaps, wals, err := listGeneration(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0] != 4 {
		t.Fatalf("expected exactly snap-4 after compaction, got %v", snaps)
	}
	if len(wals) != 1 || wals[0] != 4 {
		t.Fatalf("expected exactly wal-4 after rotation, got %v", wals)
	}
}

// TestRecoverErrors covers the failure modes: empty dir, corrupt snapshot,
// and version mismatch all fail loudly instead of returning wrong state.
func TestRecoverErrors(t *testing.T) {
	empty := t.TempDir()
	if _, err := Open(empty, Options{}); err != nil {
		t.Fatal(err)
	}
	st, _ := Open(empty, Options{})
	if _, err := st.Recover(); err == nil {
		t.Fatal("Recover on an empty dir should fail")
	}

	_, x := buildIndex(t, 5, 26, 7, 2)
	dir := t.TempDir()
	st2, _ := Open(dir, Options{})
	if _, err := st2.SaveSnapshot(x); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	snapPath := filepath.Join(dir, "snap-0000000000000000.ksp")
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle: either semantic validation or the checksum
	// must reject the file.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0xff
	if err := os.WriteFile(snapPath, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	st3, _ := Open(dir, Options{})
	if _, err := st3.Recover(); err == nil {
		t.Fatal("Recover of a corrupted snapshot should fail")
	}
}

// TestReusedDataDirColdStart reuses one data directory across two cold
// starts (each restarting the epoch counter at 0) and checks the second
// run's snapshot fully supersedes the first generation: no stale
// higher-epoch snapshot survives for Recover to prefer, and no stale WAL
// records are replayed over the new state.
func TestReusedDataDirColdStart(t *testing.T) {
	const n, z, xi = 30, 7, 2
	dir := t.TempDir()

	// Run 1: snapshot at epoch 0, then three logged batches (epochs 1-3),
	// then a periodic snapshot at epoch 2 leaves snap-2/wal-2 behind.
	g1, x1 := buildIndex(t, 51, n, z, xi)
	st1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st1.SaveSnapshot(x1); err != nil {
		t.Fatal(err)
	}
	srv1 := serve.New(x1, nil, serve.Options{Workers: 1, Store: st1, SnapshotEvery: 2})
	sc := workload.GenerateMixed(g1, 0, 3, 2, 0.4, 0.5, 51)
	for _, ev := range sc.Events {
		if len(ev.Updates) > 0 {
			if err := srv1.ApplyUpdates(ev.Updates); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv1.Close()
	st1.Close()

	// Run 2: a different cold start (different graph) reuses the directory.
	g2, x2 := buildIndex(t, 52, n, z, xi)
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.SaveSnapshot(x2); err != nil {
		t.Fatal(err)
	}
	snaps, wals, err := listGeneration(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0] != 0 || len(wals) != 1 || wals[0] != 0 {
		t.Fatalf("run 2's epoch-0 snapshot must supersede run 1's generation, got snaps %v wals %v", snaps, wals)
	}
	srv2 := serve.New(x2, nil, serve.Options{Workers: 1, Store: st2})
	sc2 := workload.GenerateMixed(g2, 0, 2, 2, 0.4, 0.5, 52)
	for _, ev := range sc2.Events {
		if len(ev.Updates) > 0 {
			if err := srv2.ApplyUpdates(ev.Updates); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv2.Close()
	st2.Close()

	st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st3.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.SnapshotEpoch != 0 || rec.Epoch != 2 || rec.ReplayedBatches != 2 {
		t.Fatalf("recovery picked up stale state: snapshot %d, epoch %d, replayed %d; want 0, 2, 2",
			rec.SnapshotEpoch, rec.Epoch, rec.ReplayedBatches)
	}
	requireIdenticalIndexes(t, x2, rec.Index)
	st3.Close()
}

// TestTornHeaderSegment simulates the crash window between WAL segment
// creation and header durability: a zero-length (or partial-header) segment
// must neither fail recovery of an intact snapshot nor wedge appends.
func TestTornHeaderSegment(t *testing.T) {
	const n, z, xi = 26, 7, 2
	_, x := buildIndex(t, 61, n, z, xi)
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.SaveSnapshot(x); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Clobber the rotated segment with a partial header.
	if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000000.log"), []byte("KSPD"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st2.Recover()
	if err != nil {
		t.Fatalf("Recover must tolerate a torn-header segment: %v", err)
	}
	if rec.Epoch != 0 || rec.ReplayedBatches != 0 {
		t.Fatalf("unexpected recovery summary: %+v", rec)
	}
	// Appends must recreate the dead segment instead of failing forever.
	if err := st2.AppendBatch(1, []graph.WeightUpdate{{Edge: 0, NewWeight: 3}}); err != nil {
		t.Fatalf("append after torn header: %v", err)
	}
	st2.Close()
	recs, start, _, err := readWAL(filepath.Join(dir, "wal-0000000000000000.log"))
	if err != nil || start != 0 || len(recs) != 1 || recs[0].Epoch != 1 {
		t.Fatalf("recreated segment: start %d, %d records, err %v", start, len(recs), err)
	}
}

// TestAppendEpochGapRefused pins the WAL contiguity contract: once a batch's
// append is lost, later epochs are refused until a snapshot resynchronises
// the log — a recorded gap would make the whole directory unrecoverable.
func TestAppendEpochGapRefused(t *testing.T) {
	_, x := buildIndex(t, 71, 26, 7, 2)
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.SaveSnapshot(x); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendBatch(1, []graph.WeightUpdate{{Edge: 0, NewWeight: 2}}); err != nil {
		t.Fatal(err)
	}
	// Epoch 2 "failed" (never appended); epoch 3 must be refused.
	if err := st.AppendBatch(3, []graph.WeightUpdate{{Edge: 1, NewWeight: 4}}); err == nil {
		t.Fatal("append with an epoch gap must be refused")
	}
	// A snapshot at the index's current epoch resynchronises: the rotated
	// segment accepts the epoch after the snapshot's.
	if _, err := x.ApplyUpdatesEpoch([]graph.WeightUpdate{{Edge: 0, NewWeight: 5}}); err != nil {
		t.Fatal(err)
	}
	epoch, err := st.SaveSnapshot(x)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendBatch(epoch+1, []graph.WeightUpdate{{Edge: 1, NewWeight: 4}}); err != nil {
		t.Fatalf("append after resync snapshot: %v", err)
	}
	// Orphaned snapshot temp files are swept by compaction.
	tmp := filepath.Join(dir, "snap-orphan.tmp")
	if err := os.WriteFile(tmp, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.SaveSnapshot(x); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("orphaned %s should be swept by snapshot compaction", tmp)
	}
	st.Close()
}

// TestRecoverMixedKinds interleaves weight and topology records in the WAL —
// with the periodic snapshot landing between them, so the snapshot captures a
// post-topology graph and the replayed tail contains both record kinds — and
// requires the recovered index to be bit-identical to a never-crashed
// reference that applied the same sequence.
func TestRecoverMixedKinds(t *testing.T) {
	const seed, n, z, xi, k = 31, 32, 7, 2, 3
	gA, xA := buildIndex(t, seed, n, z, xi)
	_, xB := buildIndex(t, seed, n, z, xi)
	nE := graph.EdgeID(gA.NumEdges())

	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srvA := serve.New(xA, nil, serve.Options{Workers: 1})
	defer srvA.Close()
	// SnapshotEvery counts weight and topology batches alike: the snapshot
	// lands at epoch 3 (after the first topology batch), leaving epochs 4-5 —
	// one of each kind — in the WAL tail.
	srvB := serve.New(xB, nil, serve.Options{Workers: 1, Store: st, SnapshotEvery: 3})

	weights := func(ups ...graph.WeightUpdate) {
		t.Helper()
		if err := srvA.ApplyUpdates(ups); err != nil {
			t.Fatalf("reference ApplyUpdates: %v", err)
		}
		if err := srvB.ApplyUpdates(ups); err != nil {
			t.Fatalf("stored ApplyUpdates: %v", err)
		}
	}
	topology := func(up graph.TopologyUpdate) {
		t.Helper()
		if err := srvA.ApplyTopology(up); err != nil {
			t.Fatalf("reference ApplyTopology: %v", err)
		}
		if err := srvB.ApplyTopology(up); err != nil {
			t.Fatalf("stored ApplyTopology: %v", err)
		}
	}

	weights(graph.WeightUpdate{Edge: 1, NewWeight: 4.25}, graph.WeightUpdate{Edge: 2, NewWeight: 2.5}) // epoch 1
	topology(graph.TopologyUpdate{                                                                     // epoch 2: fresh vertex n wired in, edge 0 tombstoned
		AddVertices: 1,
		InsertEdges: []graph.Edge{{U: 0, V: graph.VertexID(n), Weight: 2.25}, {U: graph.VertexID(n), V: 1, Weight: 1.75}},
		DeleteEdges: []graph.EdgeID{0},
	})
	weights(graph.WeightUpdate{Edge: nE, NewWeight: 3.5}, graph.WeightUpdate{Edge: 3, NewWeight: 6}) // epoch 3: touches an inserted edge
	topology(graph.TopologyUpdate{                                                                   // epoch 4: delete + insert in one batch
		DeleteEdges: []graph.EdgeID{2},
		InsertEdges: []graph.Edge{{U: 4, V: 7, Weight: 5.5}},
	})
	weights(graph.WeightUpdate{Edge: nE + 2, NewWeight: 4.75}) // epoch 5

	if stats := srvB.Stats(); stats.Snapshots != 1 || stats.TopologyBatches != 2 {
		t.Fatalf("stored server stats: %d snapshots, %d topology batches; want 1, 2", stats.Snapshots, stats.TopologyBatches)
	}

	// Crash and recover.
	srvB.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.SnapshotEpoch != 3 || rec.Epoch != 5 || rec.ReplayedBatches != 2 {
		t.Fatalf("recovery summary: snapshot %d, epoch %d, replayed %d; want 3, 5, 2",
			rec.SnapshotEpoch, rec.Epoch, rec.ReplayedBatches)
	}
	if got, want := rec.Graph.NumVertices(), n+1; got != want {
		t.Fatalf("recovered vertex count = %d, want %d", got, want)
	}
	if rec.Graph.EdgeAlive(0) || rec.Graph.EdgeAlive(2) {
		t.Fatal("recovered graph resurrected a deleted edge")
	}
	if !rec.Graph.EdgeAlive(nE) || !rec.Graph.EdgeAlive(nE+2) {
		t.Fatal("recovered graph lost an inserted edge")
	}
	requireIdenticalIndexes(t, xA, rec.Index)
	requireIdenticalAnswers(t, xA, rec.Index, n+1, seed+100, k)

	// The warm-started server continues the interleaved stream: one more
	// topology batch must land as epoch 6 on both sides and stay identical.
	srvC := serve.New(rec.Index, nil, serve.Options{Workers: 1, Store: st2})
	defer srvC.Close()
	more := graph.TopologyUpdate{InsertEdges: []graph.Edge{{U: 2, V: 9, Weight: 3.25}}}
	if err := srvA.ApplyTopology(more); err != nil {
		t.Fatal(err)
	}
	if err := srvC.ApplyTopology(more); err != nil {
		t.Fatal(err)
	}
	if got := rec.Index.CurrentView().Epoch(); got != 6 {
		t.Fatalf("warm-started epoch = %d, want 6", got)
	}
	requireIdenticalIndexes(t, xA, rec.Index)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}
