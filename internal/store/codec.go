package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
)

// Snapshot binary layout (FormatVersion 2), all integers little-endian:
//
//	magic "KSPDSNP1" | u32 version
//	u64 epoch | u32 xi | u32 maxEnumerate | u64 z
//	graph:     u8 directed | u64 numV | u64 numE
//	           numE × (i32 U | i32 V | f64 initW | f64 curW | u8 alive)
//	partition: u64 numSubs
//	           per sub: u64 nv, nv × i32 vertex | u64 ne, ne × i32 edge
//	paths:     records, each u8 tag:
//	           1 | u32 sub | i32 pairA | i32 pairB
//	             | u32 nVerts, nVerts × i32 | u32 nEdges, nEdges × i32
//	             | f64 vfrags | f64 dist
//	           0 terminates the stream
//	trailer:   u32 CRC-32C of everything above
//
// Version 2 added the per-edge alive flag: topology deletes tombstone edges
// (graph.Graph never renumbers ids), and a snapshot must round-trip the
// tombstones so edge ids — which appear in WAL weight records and in future
// topology batches — keep meaning the same edges after recovery.  Dead edges
// still encode their endpoints and initial weight; their curW field carries
// the initial weight (their live weight is meaningless and updates to them
// are rejected).
//
// The encoder streams straight to the writer (no in-memory image), so
// snapshotting a large graph does not double peak memory.  Floats are stored
// as IEEE-754 bits, so weights and path distances round-trip exactly.

const (
	snapMagic = "KSPDSNP1"
	walMagic  = "KSPDWAL1"

	// FormatVersion is the current snapshot and WAL format version.  See the
	// package comment in store.go for the version policy.  Version 2 added
	// edge tombstones to snapshots and topology records to the WAL.
	FormatVersion = 2
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// crcWriter tees writes into a CRC-32C accumulator.
type crcWriter struct {
	w   *bufio.Writer
	crc hash.Hash32
	buf [8]byte
}

func newCRCWriter(w io.Writer) *crcWriter {
	return &crcWriter{w: bufio.NewWriterSize(w, 1<<16), crc: crc32.New(crcTable)}
}

func (cw *crcWriter) writeBytes(p []byte) error {
	if _, err := cw.w.Write(p); err != nil {
		return err
	}
	cw.crc.Write(p)
	return nil
}

func (cw *crcWriter) u8(v uint8) error { cw.buf[0] = v; return cw.writeBytes(cw.buf[:1]) }
func (cw *crcWriter) u32(v uint32) error {
	binary.LittleEndian.PutUint32(cw.buf[:4], v)
	return cw.writeBytes(cw.buf[:4])
}
func (cw *crcWriter) u64(v uint64) error {
	binary.LittleEndian.PutUint64(cw.buf[:8], v)
	return cw.writeBytes(cw.buf[:8])
}
func (cw *crcWriter) i32(v int32) error   { return cw.u32(uint32(v)) }
func (cw *crcWriter) f64(v float64) error { return cw.u64(math.Float64bits(v)) }

// finish writes the CRC trailer (not itself checksummed) and flushes.
func (cw *crcWriter) finish() error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], cw.crc.Sum32())
	if _, err := cw.w.Write(buf[:]); err != nil {
		return err
	}
	return cw.w.Flush()
}

// crcReader mirrors crcWriter: every read feeds the CRC accumulator, and
// size bounds count fields so corrupted inputs cannot force huge allocations.
type crcReader struct {
	r    *bufio.Reader
	crc  hash.Hash32
	size int64 // total input size, used as a sanity bound on counts
	buf  [8]byte
}

func newCRCReader(r io.Reader, size int64) *crcReader {
	return &crcReader{r: bufio.NewReaderSize(r, 1<<16), crc: crc32.New(crcTable), size: size}
}

func (cr *crcReader) readBytes(p []byte) error {
	if _, err := io.ReadFull(cr.r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("store: truncated input: %w", err)
	}
	cr.crc.Write(p)
	return nil
}

func (cr *crcReader) u8() (uint8, error) {
	if err := cr.readBytes(cr.buf[:1]); err != nil {
		return 0, err
	}
	return cr.buf[0], nil
}

func (cr *crcReader) u32() (uint32, error) {
	if err := cr.readBytes(cr.buf[:4]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(cr.buf[:4]), nil
}

func (cr *crcReader) u64() (uint64, error) {
	if err := cr.readBytes(cr.buf[:8]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(cr.buf[:8]), nil
}

func (cr *crcReader) i32() (int32, error) {
	v, err := cr.u32()
	return int32(v), err
}

func (cr *crcReader) f64() (float64, error) {
	v, err := cr.u64()
	return math.Float64frombits(v), err
}

// count reads a u64 count field and rejects values that cannot possibly fit
// in the input (each element needs at least one byte), bounding allocations
// on corrupted snapshots.
func (cr *crcReader) count(what string) (int, error) {
	v, err := cr.u64()
	if err != nil {
		return 0, err
	}
	if cr.size >= 0 && v > uint64(cr.size) {
		return 0, fmt.Errorf("store: %s count %d exceeds input size %d", what, v, cr.size)
	}
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("store: %s count %d too large", what, v)
	}
	return int(v), nil
}

// count32 is count for u32-encoded fields.
func (cr *crcReader) count32(what string) (int, error) {
	v, err := cr.u32()
	if err != nil {
		return 0, err
	}
	if cr.size >= 0 && uint64(v) > uint64(cr.size) {
		return 0, fmt.Errorf("store: %s count %d exceeds input size %d", what, v, cr.size)
	}
	return int(v), nil
}

// verify reads the CRC trailer and compares it against the accumulated sum.
func (cr *crcReader) verify() error {
	want := cr.crc.Sum32()
	var buf [4]byte
	if _, err := io.ReadFull(cr.r, buf[:]); err != nil {
		return fmt.Errorf("store: truncated checksum trailer: %w", err)
	}
	if got := binary.LittleEndian.Uint32(buf[:]); got != want {
		return fmt.Errorf("store: snapshot checksum mismatch: file %08x, computed %08x", got, want)
	}
	return nil
}

// encodeSnapshot streams a consistent snapshot of the index to w and returns
// the epoch it captured.  It must not race with update application outside
// dtlp's writer lock (ExportState holds it for the whole encode).
func encodeSnapshot(w io.Writer, x *dtlp.Index) (uint64, error) {
	cw := newCRCWriter(w)
	var epoch uint64
	err := x.ExportState(func(st dtlp.ExportedState) error {
		epoch = st.Epoch
		part := x.Partition()
		parent := part.Parent()
		cfg := x.Config()

		if err := cw.writeBytes([]byte(snapMagic)); err != nil {
			return err
		}
		if err := cw.u32(FormatVersion); err != nil {
			return err
		}
		if err := cw.u64(st.Epoch); err != nil {
			return err
		}
		if err := cw.u32(uint32(cfg.Xi)); err != nil {
			return err
		}
		if err := cw.u32(uint32(cfg.MaxEnumerate)); err != nil {
			return err
		}
		if err := cw.u64(uint64(part.Z)); err != nil {
			return err
		}

		// Graph topology, initial weights (vfrag counts), and the one weight
		// snapshot: the weights frozen at st.Epoch.
		directed := uint8(0)
		if parent.Directed() {
			directed = 1
		}
		if err := cw.u8(directed); err != nil {
			return err
		}
		if err := cw.u64(uint64(parent.NumVertices())); err != nil {
			return err
		}
		numE := parent.NumEdges()
		if err := cw.u64(uint64(numE)); err != nil {
			return err
		}
		for e := 0; e < numE; e++ {
			id := graph.EdgeID(e)
			ends := parent.EdgeEndpoints(id)
			if err := cw.i32(int32(ends.U)); err != nil {
				return err
			}
			if err := cw.i32(int32(ends.V)); err != nil {
				return err
			}
			initW := parent.InitialWeight(id)
			if err := cw.f64(initW); err != nil {
				return err
			}
			// Dead edges have no meaningful live weight; store the initial
			// weight so the field always validates as finite.
			curW := initW
			alive := uint8(0)
			if parent.EdgeAlive(id) {
				curW = st.View.GlobalWeight(id)
				alive = 1
			}
			if err := cw.f64(curW); err != nil {
				return err
			}
			if err := cw.u8(alive); err != nil {
				return err
			}
		}

		// Partition assignment.
		if err := cw.u64(uint64(part.NumSubgraphs())); err != nil {
			return err
		}
		for i := 0; i < part.NumSubgraphs(); i++ {
			sg := part.Subgraph(partition.SubgraphID(i))
			if err := cw.u64(uint64(len(sg.Globals))); err != nil {
				return err
			}
			for _, v := range sg.Globals {
				if err := cw.i32(int32(v)); err != nil {
					return err
				}
			}
			if err := cw.u64(uint64(len(sg.GlobalEdges))); err != nil {
				return err
			}
			for _, e := range sg.GlobalEdges {
				if err := cw.i32(int32(e)); err != nil {
					return err
				}
			}
		}

		// The DTLP skeleton structure: every bounding path.
		err := st.Paths(func(sub partition.SubgraphID, rec dtlp.PathRecord) error {
			if err := cw.u8(1); err != nil {
				return err
			}
			if err := cw.u32(uint32(sub)); err != nil {
				return err
			}
			if err := cw.i32(int32(rec.Pair.A)); err != nil {
				return err
			}
			if err := cw.i32(int32(rec.Pair.B)); err != nil {
				return err
			}
			if err := cw.u32(uint32(len(rec.Vertices))); err != nil {
				return err
			}
			for _, v := range rec.Vertices {
				if err := cw.i32(int32(v)); err != nil {
					return err
				}
			}
			if err := cw.u32(uint32(len(rec.Edges))); err != nil {
				return err
			}
			for _, e := range rec.Edges {
				if err := cw.i32(int32(e)); err != nil {
					return err
				}
			}
			if err := cw.f64(rec.Vfrags); err != nil {
				return err
			}
			return cw.f64(rec.Dist)
		})
		if err != nil {
			return err
		}
		return cw.u8(0) // end of path stream
	})
	if err != nil {
		return 0, err
	}
	return epoch, cw.finish()
}

// snapshotContents is the decoded state of a snapshot file.  Index is nil
// when decoding was asked for topology only.
type snapshotContents struct {
	epoch     uint64
	graph     *graph.Graph
	partition *partition.Partition
	index     *dtlp.Index
}

// decodeSnapshot reads and validates a snapshot.  size is the input length
// in bytes (used to bound allocations; pass -1 if unknown).  When
// topologyOnly is set the path records are validated and discarded and no
// index is assembled.  Nothing is returned unless the checksum verifies.
func decodeSnapshot(r io.Reader, size int64, topologyOnly bool) (*snapshotContents, error) {
	cr := newCRCReader(r, size)
	magic := make([]byte, len(snapMagic))
	if err := cr.readBytes(magic); err != nil {
		return nil, err
	}
	if string(magic) != snapMagic {
		return nil, fmt.Errorf("store: not a snapshot file (magic %q)", magic)
	}
	version, err := cr.u32()
	if err != nil {
		return nil, err
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("store: unsupported snapshot format version %d (supported: %d)", version, FormatVersion)
	}
	epoch, err := cr.u64()
	if err != nil {
		return nil, err
	}
	xi, err := cr.u32()
	if err != nil {
		return nil, err
	}
	maxEnum, err := cr.u32()
	if err != nil {
		return nil, err
	}
	if xi == 0 || xi > math.MaxInt32 || maxEnum > math.MaxInt32 {
		return nil, fmt.Errorf("store: invalid index config (xi=%d, maxEnumerate=%d)", xi, maxEnum)
	}
	z, err := cr.count("partition z")
	if err != nil {
		return nil, err
	}

	// Graph.
	directedB, err := cr.u8()
	if err != nil {
		return nil, err
	}
	if directedB > 1 {
		return nil, fmt.Errorf("store: invalid directed flag %d", directedB)
	}
	directed := directedB == 1
	numV, err := cr.count("vertex")
	if err != nil {
		return nil, err
	}
	numE, err := cr.count("edge")
	if err != nil {
		return nil, err
	}
	b := graph.NewBuilder(numV, directed)
	curW := make([]float64, 0, min(numE, 1<<16))
	dead := make([]bool, 0, min(numE, 1<<16))
	for e := 0; e < numE; e++ {
		u, err := cr.i32()
		if err != nil {
			return nil, err
		}
		v, err := cr.i32()
		if err != nil {
			return nil, err
		}
		w0, err := cr.f64()
		if err != nil {
			return nil, err
		}
		w, err := cr.f64()
		if err != nil {
			return nil, err
		}
		aliveB, err := cr.u8()
		if err != nil {
			return nil, err
		}
		if aliveB > 1 {
			return nil, fmt.Errorf("store: edge %d has invalid alive flag %d", e, aliveB)
		}
		if math.IsNaN(w0) || math.IsInf(w0, 0) || math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("store: edge %d has invalid weights (%g, %g)", e, w0, w)
		}
		id, err := b.AddEdge(graph.VertexID(u), graph.VertexID(v), w0)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot graph: %w", err)
		}
		if aliveB == 0 {
			if err := b.MarkDead(id); err != nil {
				return nil, fmt.Errorf("store: snapshot graph: %w", err)
			}
		}
		curW = append(curW, w)
		dead = append(dead, aliveB == 0)
	}
	g := b.Build()
	var updates []graph.WeightUpdate
	for e, w := range curW {
		if !dead[e] && g.InitialWeight(graph.EdgeID(e)) != w {
			updates = append(updates, graph.WeightUpdate{Edge: graph.EdgeID(e), NewWeight: w})
		}
	}
	if len(updates) > 0 {
		if err := g.ApplyUpdates(updates); err != nil {
			return nil, fmt.Errorf("store: snapshot weights: %w", err)
		}
	}

	// Partition.
	numSubs, err := cr.count("subgraph")
	if err != nil {
		return nil, err
	}
	subVerts := make([][]graph.VertexID, 0, min(numSubs, 1<<16))
	subEdges := make([][]graph.EdgeID, 0, min(numSubs, 1<<16))
	for i := 0; i < numSubs; i++ {
		nv, err := cr.count("subgraph vertex")
		if err != nil {
			return nil, err
		}
		verts := make([]graph.VertexID, 0, min(nv, 1<<16))
		for j := 0; j < nv; j++ {
			v, err := cr.i32()
			if err != nil {
				return nil, err
			}
			verts = append(verts, graph.VertexID(v))
		}
		ne, err := cr.count("subgraph edge")
		if err != nil {
			return nil, err
		}
		edges := make([]graph.EdgeID, 0, min(ne, 1<<16))
		for j := 0; j < ne; j++ {
			e, err := cr.i32()
			if err != nil {
				return nil, err
			}
			edges = append(edges, graph.EdgeID(e))
		}
		subVerts = append(subVerts, verts)
		subEdges = append(subEdges, edges)
	}
	part, err := partition.Assemble(g, z, subVerts, subEdges)
	if err != nil {
		return nil, fmt.Errorf("store: snapshot partition: %w", err)
	}

	// Bounding path records.
	var imp *dtlp.Importer
	if !topologyOnly {
		imp, err = dtlp.NewImporter(part, dtlp.Config{Xi: int(xi), MaxEnumerate: int(maxEnum)})
		if err != nil {
			return nil, err
		}
	}
	for {
		tag, err := cr.u8()
		if err != nil {
			return nil, err
		}
		if tag == 0 {
			break
		}
		if tag != 1 {
			return nil, fmt.Errorf("store: invalid path record tag %d", tag)
		}
		sub, err := cr.u32()
		if err != nil {
			return nil, err
		}
		pa, err := cr.i32()
		if err != nil {
			return nil, err
		}
		pb, err := cr.i32()
		if err != nil {
			return nil, err
		}
		nVerts, err := cr.count32("path vertex")
		if err != nil {
			return nil, err
		}
		verts := make([]graph.VertexID, 0, min(nVerts, 1<<12))
		for j := 0; j < nVerts; j++ {
			v, err := cr.i32()
			if err != nil {
				return nil, err
			}
			verts = append(verts, graph.VertexID(v))
		}
		nEdges, err := cr.count32("path edge")
		if err != nil {
			return nil, err
		}
		edges := make([]graph.EdgeID, 0, min(nEdges, 1<<12))
		for j := 0; j < nEdges; j++ {
			e, err := cr.i32()
			if err != nil {
				return nil, err
			}
			edges = append(edges, graph.EdgeID(e))
		}
		vfrags, err := cr.f64()
		if err != nil {
			return nil, err
		}
		dist, err := cr.f64()
		if err != nil {
			return nil, err
		}
		if imp != nil {
			rec := dtlp.PathRecord{
				Pair:     dtlp.PairKey{A: graph.VertexID(pa), B: graph.VertexID(pb)},
				Vertices: verts,
				Edges:    edges,
				Vfrags:   vfrags,
				Dist:     dist,
			}
			if err := imp.Add(partition.SubgraphID(sub), rec); err != nil {
				return nil, fmt.Errorf("store: snapshot path record: %w", err)
			}
		}
	}
	if err := cr.verify(); err != nil {
		return nil, err
	}
	sc := &snapshotContents{epoch: epoch, graph: g, partition: part}
	if imp != nil {
		x, err := imp.Finish(epoch)
		if err != nil {
			return nil, fmt.Errorf("store: assembling index: %w", err)
		}
		sc.index = x
	}
	return sc, nil
}
