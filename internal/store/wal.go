package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"kspdg/internal/graph"
)

// WAL binary layout (FormatVersion 2), all integers little-endian:
//
//	header:  magic "KSPDWAL1" | u32 version | u64 startEpoch
//	record:  u64 epoch | u8 kind | payload
//	         | u32 CRC-32C of the record bytes above
//
//	kind 0 (weights):  u32 count | count × (i32 edge | f64 weight)
//	kind 1 (topology): u32 addVertices
//	                   | u32 nIns,  nIns × (i32 u | i32 v | f64 weight)
//	                   | u32 nDelE, nDelE × i32 edge
//	                   | u32 nDelV, nDelV × i32 vertex
//
// A segment named wal-<startEpoch>.log holds the update batches that
// produced epochs startEpoch+1, startEpoch+2, ...  Weight and topology
// batches interleave in epoch order, exactly as they were applied; replaying
// them in sequence reproduces the crashed process's state bit for bit
// (topology replay re-derives the same edge ids because insertion order is
// part of the record).  Records are flushed to the OS on every append
// (surviving process crashes); fsync is batched per Options.SyncEvery
// (bounding data loss on power failure).  Readers stop at the first record
// that fails its CRC or is truncated: a torn tail from a crash mid-append is
// expected and cleanly ignored.

// maxWALBatch bounds the per-record element counts accepted by the reader,
// so corrupted length fields cannot force huge allocations.
const maxWALBatch = 1 << 24

// WAL record kinds.
const (
	walKindWeights  = 0
	walKindTopology = 1
)

// walRecord is one decoded WAL entry: the batch that produced Epoch.
// Exactly one of Batch and Topo is meaningful, selected by the record's kind
// (a weight record may legitimately carry an empty Batch).
type walRecord struct {
	Epoch uint64
	Batch []graph.WeightUpdate
	Topo  *graph.TopologyUpdate
}

// walWriter appends records to one WAL segment file.
type walWriter struct {
	f          *os.File
	startEpoch uint64
	last       uint64 // epoch of the last appended (or recovered) record
	off        int64  // length of the valid record prefix written so far
	pending    int    // appends since the last fsync
	broken     bool   // a failed append could not be rolled back
}

// createWAL creates a new segment for batches after startEpoch, fsyncing the
// header immediately so an empty segment is recoverable.  O_APPEND matters:
// it keeps the rollback in append correct (after a truncate, the next write
// lands at the new end of file, never leaving a zero-filled hole).
func createWAL(path string, startEpoch uint64) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [20]byte
	copy(hdr[:8], walMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], startEpoch)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f, startEpoch: startEpoch, last: startEpoch, off: int64(len(hdr))}, nil
}

// openWALForAppend reopens an existing segment, truncating any torn tail so
// new records continue the valid prefix.
func openWALForAppend(path string) (*walWriter, uint64, error) {
	recs, startEpoch, validLen, err := readWAL(path)
	if err != nil {
		return nil, 0, err
	}
	if err := os.Truncate(path, validLen); err != nil {
		return nil, 0, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, err
	}
	last := startEpoch
	if len(recs) > 0 {
		last = recs[len(recs)-1].Epoch
	}
	return &walWriter{f: f, startEpoch: startEpoch, last: last, off: validLen}, last, nil
}

// recBuf accumulates one record's bytes before the single Write that commits
// it.  Building the full record first keeps torn-tail semantics simple: a
// record is either entirely in the file or (after rollback) entirely absent.
type recBuf []byte

func (b *recBuf) u8(v uint8) { *b = append(*b, v) }
func (b *recBuf) u32(v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	*b = append(*b, tmp[:]...)
}
func (b *recBuf) u64(v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	*b = append(*b, tmp[:]...)
}
func (b *recBuf) i32(v int32)   { b.u32(uint32(v)) }
func (b *recBuf) f64(v float64) { b.u64(math.Float64bits(v)) }

// append writes one weight record and flushes it to the OS.  syncEvery
// batches fsyncs: 1 syncs every record, n > 1 every n records (the rest ride
// along).  A failed write is rolled back by truncating the file to the last
// valid record, so later appends stay recoverable; if even the rollback
// fails the writer is poisoned and every subsequent append errors (silently
// appending after torn bytes would make recovery drop the new records).
func (w *walWriter) append(epoch uint64, batch []graph.WeightUpdate, syncEvery int) error {
	buf := make(recBuf, 0, 13+len(batch)*12+4)
	buf.u64(epoch)
	buf.u8(walKindWeights)
	buf.u32(uint32(len(batch)))
	for _, u := range batch {
		buf.i32(int32(u.Edge))
		buf.f64(u.NewWeight)
	}
	return w.commit(epoch, buf, syncEvery)
}

// appendTopology writes one topology record; framing and failure handling
// are identical to append.
func (w *walWriter) appendTopology(epoch uint64, up graph.TopologyUpdate, syncEvery int) error {
	buf := make(recBuf, 0, 25+len(up.InsertEdges)*16+len(up.DeleteEdges)*4+len(up.DeleteVertices)*4+4)
	buf.u64(epoch)
	buf.u8(walKindTopology)
	buf.u32(uint32(up.AddVertices))
	buf.u32(uint32(len(up.InsertEdges)))
	for _, e := range up.InsertEdges {
		buf.i32(int32(e.U))
		buf.i32(int32(e.V))
		buf.f64(e.Weight)
	}
	buf.u32(uint32(len(up.DeleteEdges)))
	for _, e := range up.DeleteEdges {
		buf.i32(int32(e))
	}
	buf.u32(uint32(len(up.DeleteVertices)))
	for _, v := range up.DeleteVertices {
		buf.i32(int32(v))
	}
	return w.commit(epoch, buf, syncEvery)
}

// commit appends one framed record (checksummed here) to the segment.
func (w *walWriter) commit(epoch uint64, buf recBuf, syncEvery int) error {
	if w.broken {
		return fmt.Errorf("store: WAL writer unusable after an unrecoverable append failure")
	}
	// Epochs must be contiguous: if an earlier append failed (its batch is
	// applied in memory but not logged), accepting later epochs would record
	// a permanent gap that recovery rejects wholesale — refusing here keeps
	// the failure visible until a snapshot resynchronises the log.
	if epoch != w.last+1 {
		return fmt.Errorf("store: WAL expects epoch %d next, got %d (a snapshot is needed to resynchronise after a lost append)", w.last+1, epoch)
	}
	buf.u32(crc32.Checksum(buf, crcTable))
	if _, err := w.f.Write(buf); err != nil {
		if terr := w.f.Truncate(w.off); terr != nil {
			w.broken = true
		}
		return err
	}
	w.off += int64(len(buf))
	w.last = epoch
	w.pending++
	if syncEvery <= 1 || w.pending >= syncEvery {
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.pending = 0
	}
	return nil
}

// close fsyncs outstanding records and closes the segment.
func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// readWAL decodes a segment file.  It returns the records of the valid
// prefix, the segment's start epoch, and the byte length of that prefix
// (callers truncate to it before appending).  A torn or corrupt tail is not
// an error; a bad header is.
func readWAL(path string) (recs []walRecord, startEpoch uint64, validLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close()
	size := int64(-1)
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	recs, startEpoch, validLen, err = decodeWAL(f, size)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("store: reading WAL %s: %w", path, err)
	}
	return recs, startEpoch, validLen, nil
}

// decodeWAL is the reader core, split out so the fuzz target can feed it
// arbitrary bytes.  size bounds record counts (pass -1 if unknown) so a
// corrupted length field cannot force a huge allocation.
func decodeWAL(r io.Reader, size int64) (recs []walRecord, startEpoch uint64, validLen int64, err error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, 0, fmt.Errorf("truncated header: %w", err)
	}
	if string(hdr[:8]) != walMagic {
		return nil, 0, 0, fmt.Errorf("not a WAL file (magic %q)", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != FormatVersion {
		return nil, 0, 0, fmt.Errorf("unsupported WAL format version %d (supported: %d)", v, FormatVersion)
	}
	startEpoch = binary.LittleEndian.Uint64(hdr[12:20])
	validLen = int64(len(hdr))
	for {
		rec, n, ok := decodeWALRecord(r, size)
		if !ok {
			return recs, startEpoch, validLen, nil // clean end, torn or corrupt tail
		}
		recs = append(recs, rec)
		validLen += n
	}
}

// walRecordReader reads one record's fields while retaining every byte read,
// so the trailing CRC can be verified over exactly the bytes consumed.
type walRecordReader struct {
	r    io.Reader
	read []byte
	buf  [8]byte
}

func (rr *walRecordReader) bytes(n int) ([]byte, bool) {
	p := rr.buf[:n]
	if _, err := io.ReadFull(rr.r, p); err != nil {
		return nil, false
	}
	rr.read = append(rr.read, p...)
	return p, true
}

func (rr *walRecordReader) u8() (uint8, bool) {
	p, ok := rr.bytes(1)
	if !ok {
		return 0, false
	}
	return p[0], true
}

func (rr *walRecordReader) u32() (uint32, bool) {
	p, ok := rr.bytes(4)
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint32(p), true
}

func (rr *walRecordReader) u64() (uint64, bool) {
	p, ok := rr.bytes(8)
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint64(p), true
}

func (rr *walRecordReader) i32() (int32, bool) {
	v, ok := rr.u32()
	return int32(v), ok
}

func (rr *walRecordReader) f64() (float64, bool) {
	v, ok := rr.u64()
	return math.Float64frombits(v), ok
}

// countOK bounds a decoded element count: each element occupies at least
// elemSize bytes, so counts implying more bytes than the input holds are
// corrupt (treated as a torn tail by the caller).
func countOK(count uint32, elemSize int64, size int64) bool {
	if count > maxWALBatch {
		return false
	}
	return size < 0 || int64(count) <= size/elemSize
}

// decodeWALRecord reads one record.  ok=false means the reader hit a clean
// EOF, a torn tail, or corruption — indistinguishable by design, all ending
// the valid prefix.  n is the record's byte length including the CRC.
func decodeWALRecord(r io.Reader, size int64) (rec walRecord, n int64, ok bool) {
	rr := &walRecordReader{r: r}
	epoch, ok := rr.u64()
	if !ok {
		return walRecord{}, 0, false
	}
	kind, ok := rr.u8()
	if !ok {
		return walRecord{}, 0, false
	}
	rec.Epoch = epoch
	switch kind {
	case walKindWeights:
		count, ok := rr.u32()
		if !ok || !countOK(count, 12, size) {
			return walRecord{}, 0, false
		}
		batch := make([]graph.WeightUpdate, count)
		for i := range batch {
			e, ok1 := rr.i32()
			w, ok2 := rr.f64()
			if !ok1 || !ok2 {
				return walRecord{}, 0, false
			}
			batch[i] = graph.WeightUpdate{Edge: graph.EdgeID(e), NewWeight: w}
		}
		rec.Batch = batch
	case walKindTopology:
		addV, ok := rr.u32()
		if !ok || !countOK(addV, 1, size) {
			return walRecord{}, 0, false
		}
		up := &graph.TopologyUpdate{AddVertices: int(addV)}
		nIns, ok := rr.u32()
		if !ok || !countOK(nIns, 16, size) {
			return walRecord{}, 0, false
		}
		for i := uint32(0); i < nIns; i++ {
			u, ok1 := rr.i32()
			v, ok2 := rr.i32()
			w, ok3 := rr.f64()
			if !ok1 || !ok2 || !ok3 {
				return walRecord{}, 0, false
			}
			up.InsertEdges = append(up.InsertEdges, graph.Edge{U: graph.VertexID(u), V: graph.VertexID(v), Weight: w})
		}
		nDelE, ok := rr.u32()
		if !ok || !countOK(nDelE, 4, size) {
			return walRecord{}, 0, false
		}
		for i := uint32(0); i < nDelE; i++ {
			e, ok := rr.i32()
			if !ok {
				return walRecord{}, 0, false
			}
			up.DeleteEdges = append(up.DeleteEdges, graph.EdgeID(e))
		}
		nDelV, ok := rr.u32()
		if !ok || !countOK(nDelV, 4, size) {
			return walRecord{}, 0, false
		}
		for i := uint32(0); i < nDelV; i++ {
			v, ok := rr.i32()
			if !ok {
				return walRecord{}, 0, false
			}
			up.DeleteVertices = append(up.DeleteVertices, graph.VertexID(v))
		}
		rec.Topo = up
	default:
		return walRecord{}, 0, false // unknown kind: treat as torn tail
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return walRecord{}, 0, false
	}
	if binary.LittleEndian.Uint32(crcBuf[:]) != crc32.Checksum(rr.read, crcTable) {
		return walRecord{}, 0, false
	}
	return rec, int64(len(rr.read)) + 4, true
}
