package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"kspdg/internal/graph"
)

// WAL binary layout (FormatVersion 1), all integers little-endian:
//
//	header:  magic "KSPDWAL1" | u32 version | u64 startEpoch
//	record:  u64 epoch | u32 count | count × (i32 edge | f64 weight)
//	         | u32 CRC-32C of the record bytes above
//
// A segment named wal-<startEpoch>.log holds the update batches that
// produced epochs startEpoch+1, startEpoch+2, ...  Records are flushed to
// the OS on every append (surviving process crashes); fsync is batched per
// Options.SyncEvery (bounding data loss on power failure).  Readers stop at
// the first record that fails its CRC or is truncated: a torn tail from a
// crash mid-append is expected and cleanly ignored.

// maxWALBatch bounds the per-record update count accepted by the reader, so
// corrupted length fields cannot force huge allocations.
const maxWALBatch = 1 << 24

// walRecord is one decoded WAL entry: the batch that produced Epoch.
type walRecord struct {
	Epoch uint64
	Batch []graph.WeightUpdate
}

// walWriter appends records to one WAL segment file.
type walWriter struct {
	f          *os.File
	startEpoch uint64
	last       uint64 // epoch of the last appended (or recovered) record
	off        int64  // length of the valid record prefix written so far
	pending    int    // appends since the last fsync
	broken     bool   // a failed append could not be rolled back
}

// createWAL creates a new segment for batches after startEpoch, fsyncing the
// header immediately so an empty segment is recoverable.  O_APPEND matters:
// it keeps the rollback in append correct (after a truncate, the next write
// lands at the new end of file, never leaving a zero-filled hole).
func createWAL(path string, startEpoch uint64) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr [20]byte
	copy(hdr[:8], walMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], FormatVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], startEpoch)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f, startEpoch: startEpoch, last: startEpoch, off: int64(len(hdr))}, nil
}

// openWALForAppend reopens an existing segment, truncating any torn tail so
// new records continue the valid prefix.
func openWALForAppend(path string) (*walWriter, uint64, error) {
	recs, startEpoch, validLen, err := readWAL(path)
	if err != nil {
		return nil, 0, err
	}
	if err := os.Truncate(path, validLen); err != nil {
		return nil, 0, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, err
	}
	last := startEpoch
	if len(recs) > 0 {
		last = recs[len(recs)-1].Epoch
	}
	return &walWriter{f: f, startEpoch: startEpoch, last: last, off: validLen}, last, nil
}

// append writes one record and flushes it to the OS.  syncEvery batches
// fsyncs: 1 syncs every record, n > 1 every n records (the rest ride along).
// A failed write is rolled back by truncating the file to the last valid
// record, so later appends stay recoverable; if even the rollback fails the
// writer is poisoned and every subsequent append errors (silently appending
// after torn bytes would make recovery drop the new records).
func (w *walWriter) append(epoch uint64, batch []graph.WeightUpdate, syncEvery int) error {
	if w.broken {
		return fmt.Errorf("store: WAL writer unusable after an unrecoverable append failure")
	}
	// Epochs must be contiguous: if an earlier append failed (its batch is
	// applied in memory but not logged), accepting later epochs would record
	// a permanent gap that recovery rejects wholesale — refusing here keeps
	// the failure visible until a snapshot resynchronises the log.
	if epoch != w.last+1 {
		return fmt.Errorf("store: WAL expects epoch %d next, got %d (a snapshot is needed to resynchronise after a lost append)", w.last+1, epoch)
	}
	buf := make([]byte, 0, 12+len(batch)*12+4)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:8], epoch)
	buf = append(buf, tmp[:8]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(batch)))
	buf = append(buf, tmp[:4]...)
	for _, u := range batch {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(u.Edge))
		buf = append(buf, tmp[:4]...)
		binary.LittleEndian.PutUint64(tmp[:8], math.Float64bits(u.NewWeight))
		buf = append(buf, tmp[:8]...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], crc32.Checksum(buf, crcTable))
	buf = append(buf, tmp[:4]...)
	if _, err := w.f.Write(buf); err != nil {
		if terr := w.f.Truncate(w.off); terr != nil {
			w.broken = true
		}
		return err
	}
	w.off += int64(len(buf))
	w.last = epoch
	w.pending++
	if syncEvery <= 1 || w.pending >= syncEvery {
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.pending = 0
	}
	return nil
}

// close fsyncs outstanding records and closes the segment.
func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// readWAL decodes a segment file.  It returns the records of the valid
// prefix, the segment's start epoch, and the byte length of that prefix
// (callers truncate to it before appending).  A torn or corrupt tail is not
// an error; a bad header is.
func readWAL(path string) (recs []walRecord, startEpoch uint64, validLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close()
	size := int64(-1)
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	recs, startEpoch, validLen, err = decodeWAL(f, size)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("store: reading WAL %s: %w", path, err)
	}
	return recs, startEpoch, validLen, nil
}

// decodeWAL is the reader core, split out so the fuzz target can feed it
// arbitrary bytes.  size bounds record counts (pass -1 if unknown) so a
// corrupted length field cannot force a huge allocation.
func decodeWAL(r io.Reader, size int64) (recs []walRecord, startEpoch uint64, validLen int64, err error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, 0, fmt.Errorf("truncated header: %w", err)
	}
	if string(hdr[:8]) != walMagic {
		return nil, 0, 0, fmt.Errorf("not a WAL file (magic %q)", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != FormatVersion {
		return nil, 0, 0, fmt.Errorf("unsupported WAL format version %d (supported: %d)", v, FormatVersion)
	}
	startEpoch = binary.LittleEndian.Uint64(hdr[12:20])
	validLen = int64(len(hdr))
	for {
		var fixed [12]byte
		if _, err := io.ReadFull(r, fixed[:]); err != nil {
			return recs, startEpoch, validLen, nil // clean or torn end
		}
		epoch := binary.LittleEndian.Uint64(fixed[:8])
		count := binary.LittleEndian.Uint32(fixed[8:12])
		if count > maxWALBatch || (size >= 0 && int64(count) > size/12) {
			return recs, startEpoch, validLen, nil // corrupt length: treat as torn tail
		}
		payload := make([]byte, int(count)*12)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, startEpoch, validLen, nil
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
			return recs, startEpoch, validLen, nil
		}
		crc := crc32.Checksum(fixed[:], crcTable)
		crc = crc32.Update(crc, crcTable, payload)
		if binary.LittleEndian.Uint32(crcBuf[:]) != crc {
			return recs, startEpoch, validLen, nil
		}
		batch := make([]graph.WeightUpdate, count)
		for i := range batch {
			off := i * 12
			batch[i] = graph.WeightUpdate{
				Edge:      graph.EdgeID(int32(binary.LittleEndian.Uint32(payload[off : off+4]))),
				NewWeight: math.Float64frombits(binary.LittleEndian.Uint64(payload[off+4 : off+12])),
			}
		}
		recs = append(recs, walRecord{Epoch: epoch, Batch: batch})
		validLen += int64(len(fixed)) + int64(len(payload)) + int64(len(crcBuf))
	}
}
