package store

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/testutil"
)

// fuzzSeedBytes produces a valid snapshot and a valid WAL segment to seed
// the corpus, so the fuzzer mutates structurally plausible inputs instead of
// only flailing at the magic bytes.
func fuzzSeedBytes(tb testing.TB) (snap, wal []byte) {
	tb.Helper()
	rng := rand.New(rand.NewSource(9))
	g := testutil.RandomConnected(rng, 18, 6)
	part, err := partition.PartitionGraph(g, 6)
	if err != nil {
		tb.Fatal(err)
	}
	x, err := dtlp.Build(part, dtlp.Config{Xi: 2})
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := encodeSnapshot(&buf, x); err != nil {
		tb.Fatal(err)
	}

	dir := tb.TempDir()
	w, err := createWAL(filepath.Join(dir, "wal-0000000000000000.log"), 0)
	if err != nil {
		tb.Fatal(err)
	}
	if err := w.append(1, []graph.WeightUpdate{{Edge: 0, NewWeight: 2.5}, {Edge: 1, NewWeight: 7}}, 1); err != nil {
		tb.Fatal(err)
	}
	if err := w.append(2, []graph.WeightUpdate{{Edge: 2, NewWeight: 1.25}}, 1); err != nil {
		tb.Fatal(err)
	}
	if err := w.close(); err != nil {
		tb.Fatal(err)
	}
	walBytes, err := os.ReadFile(filepath.Join(dir, "wal-0000000000000000.log"))
	if err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes(), walBytes
}

// FuzzSnapshotDecode feeds arbitrary (seeded with valid, then mutated)
// bytes to the snapshot and WAL decoders.  Both must return clean errors on
// corrupted or truncated input — never panic, never allocate unboundedly,
// and never hand back state that failed validation or checksum.
func FuzzSnapshotDecode(f *testing.F) {
	snap, wal := fuzzSeedBytes(f)
	f.Add(snap)
	f.Add(wal)
	f.Add([]byte(snapMagic))
	f.Add([]byte(walMagic))
	f.Add([]byte{})
	// Truncations and single-byte corruptions of the valid snapshot.
	f.Add(snap[:len(snap)/2])
	corrupt := append([]byte(nil), snap...)
	corrupt[len(corrupt)/3] ^= 0x40
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		sc, err := decodeSnapshot(bytes.NewReader(data), int64(len(data)), false)
		if err == nil && sc.index == nil {
			t.Fatal("decodeSnapshot returned no error and no index")
		}
		if _, err := decodeSnapshot(bytes.NewReader(data), int64(len(data)), true); err != nil {
			_ = err // errors are expected; panics are the failure mode
		}
		if _, _, _, err := decodeWAL(bytes.NewReader(data), int64(len(data))); err != nil {
			_ = err
		}
	})
}

// TestFuzzSeedsDecode pins the seed corpus behaviour without the fuzzer:
// the pristine snapshot decodes, every prefix truncation fails cleanly, and
// every single-byte corruption either fails or still checksums out (it must
// never panic).
func TestFuzzSeedsDecode(t *testing.T) {
	snap, wal := fuzzSeedBytes(t)
	if _, err := decodeSnapshot(bytes.NewReader(snap), int64(len(snap)), false); err != nil {
		t.Fatalf("pristine snapshot failed to decode: %v", err)
	}
	if recs, _, _, err := decodeWAL(bytes.NewReader(wal), int64(len(wal))); err != nil || len(recs) != 2 {
		t.Fatalf("pristine WAL decode: %d records, err %v", len(recs), err)
	}
	for cut := 0; cut < len(snap); cut += 7 {
		if _, err := decodeSnapshot(bytes.NewReader(snap[:cut]), int64(cut), false); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	for i := 0; i < len(snap); i += 11 {
		mut := append([]byte(nil), snap...)
		mut[i] ^= 0xa5
		_, err := decodeSnapshot(bytes.NewReader(mut), int64(len(mut)), false)
		if err == nil && i > 12 {
			// Everything after the header is covered by the CRC trailer, so a
			// bit flip must be detected somewhere (validation or checksum).
			t.Fatalf("corruption at byte %d went undetected", i)
		}
	}
	for cut := 0; cut < len(wal); cut += 5 {
		recs, _, _, err := decodeWAL(bytes.NewReader(wal[:cut]), int64(cut))
		if cut >= 20 && err != nil {
			t.Fatalf("WAL truncation at %d should yield a valid prefix, got error %v", cut, err)
		}
		if cut < 20 && err == nil {
			t.Fatalf("WAL header truncation at %d decoded without error", cut)
		}
		_ = recs
	}
}
