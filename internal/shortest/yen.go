package shortest

import (
	"container/heap"

	"kspdg/internal/graph"
)

// Yen computes up to k shortest loopless (simple) paths from s to t in
// ascending order of distance, following Yen's classic deviation algorithm
// [Yen 1971].  Fewer than k paths are returned if the graph does not contain
// k distinct simple paths from s to t.
//
// opts applies to every underlying shortest path search: a custom weight
// function affects the metric the paths are ranked by, and forbidden
// vertices/edges are excluded everywhere (in addition to Yen's own deviation
// bans).
func Yen(v graph.WeightedView, s, t graph.VertexID, k int, opts *Options) []graph.Path {
	if k <= 0 {
		return nil
	}
	if s == t {
		return []graph.Path{{Vertices: []graph.VertexID{s}}}
	}
	first, ok := ShortestPath(v, s, t, opts)
	if !ok {
		return nil
	}
	result := []graph.Path{first}
	seen := map[string]bool{graph.PathKey(first): true}
	candidates := &pathHeap{}
	heap.Init(candidates)

	for len(result) < k {
		prev := result[len(result)-1]
		// Deviate from every spur node of the previously found path.
		for j := 0; j < prev.Len(); j++ {
			spur := prev.Vertices[j]
			rootVerts := prev.Vertices[:j+1]

			banEdges := make(map[graph.EdgeID]bool)
			if opts != nil {
				for e := range opts.ForbiddenEdges {
					banEdges[e] = true
				}
			}
			// Ban the edge that each already-accepted path with the same
			// root prefix takes out of the spur node.
			for _, p := range result {
				if p.Len() > j && samePrefix(p.Vertices, rootVerts) {
					if e, ok := v.EdgeBetween(p.Vertices[j], p.Vertices[j+1]); ok {
						banEdges[e] = true
					}
				}
			}
			// Ban the root path vertices (except the spur node) so the spur
			// path cannot loop back into the root.
			banVerts := make(map[graph.VertexID]bool)
			if opts != nil {
				for u := range opts.ForbiddenVertices {
					banVerts[u] = true
				}
			}
			for _, u := range rootVerts[:j] {
				banVerts[u] = true
			}

			spurOpts := &Options{ForbiddenVertices: banVerts, ForbiddenEdges: banEdges}
			if opts != nil {
				spurOpts.Weight = opts.Weight
			}
			spurPath, ok := ShortestPath(v, spur, t, spurOpts)
			if !ok {
				continue
			}
			rootPath := graph.Path{Vertices: append([]graph.VertexID(nil), rootVerts...)}
			rootPath.Dist = pathDist(v, rootPath.Vertices, opts)
			total, err := rootPath.Concat(spurPath)
			if err != nil || !total.IsSimple() {
				continue
			}
			key := graph.PathKey(total)
			if seen[key] {
				continue
			}
			seen[key] = true
			heap.Push(candidates, total)
		}
		if candidates.Len() == 0 {
			break
		}
		next := heap.Pop(candidates).(graph.Path)
		result = append(result, next)
	}
	return result
}

// samePrefix reports whether p begins with exactly the vertices of prefix.
func samePrefix(p, prefix []graph.VertexID) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

// pathDist sums the weights along a vertex sequence under opts.
func pathDist(v graph.WeightedView, verts []graph.VertexID, opts *Options) float64 {
	weight := opts.weightFn(v)
	var d float64
	for i := 0; i+1 < len(verts); i++ {
		e, ok := v.EdgeBetween(verts[i], verts[i+1])
		if !ok {
			return 0
		}
		d += weight(e)
	}
	return d
}

// pathHeap is a min-heap of candidate paths ordered by ComparePaths.
type pathHeap []graph.Path

func (h pathHeap) Len() int            { return len(h) }
func (h pathHeap) Less(i, j int) bool  { return graph.ComparePaths(h[i], h[j]) < 0 }
func (h pathHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x interface{}) { *h = append(*h, x.(graph.Path)) }
func (h *pathHeap) Pop() interface{} {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}

// KShortestDistinctLengths returns the shortest paths from s to t whose
// length (under the search metric) falls into the `limit` smallest distinct
// length classes.  Paths sharing the same length class are all kept but the
// class counts only once towards limit.  This is the enumeration primitive
// used by DTLP bounding path selection, where "bounding paths containing the
// same number of vfrags are counted as only one path" (Section 3.4).
//
// The metric is given by opts.Weight (typically initial weights, so the path
// length equals the vfrag count).  Enumeration generates at most maxEnumerate
// candidate paths to bound worst-case cost; the result is therefore capped at
// maxEnumerate paths even when a length class has more ties.
func KShortestDistinctLengths(v graph.WeightedView, s, t graph.VertexID, limit, maxEnumerate int, opts *Options) []graph.Path {
	if limit <= 0 {
		return nil
	}
	if maxEnumerate < limit {
		maxEnumerate = limit
	}
	all := Yen(v, s, t, maxEnumerate, opts)
	var out []graph.Path
	seen := make(map[int64]bool, limit)
	for _, p := range all {
		// Path lengths under the vfrag metric are sums of integer initial
		// weights; rounding guards against floating point noise.
		key := int64(p.Dist*1000 + 0.5)
		if !seen[key] {
			if len(seen) >= limit {
				break
			}
			seen[key] = true
		}
		out = append(out, p)
	}
	return out
}
