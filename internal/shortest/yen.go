package shortest

import (
	"container/heap"
	"sync"

	"kspdg/internal/graph"
)

// yenScratch is the reusable per-call working state of Yen's deviation loop:
// the ban maps rebuilt for every spur vertex, the candidate vertex buffer, and
// the dedup set.  Reusing it turns the former per-spur map and key-string
// allocations into cleared-map writes.
type yenScratch struct {
	banVerts   map[graph.VertexID]bool
	banEdges   map[graph.EdgeID]bool
	seen       graph.PathSet
	totalBuf   []graph.VertexID
	prefixDist []float64
}

func newYenScratch() *yenScratch {
	return &yenScratch{
		banVerts: make(map[graph.VertexID]bool),
		banEdges: make(map[graph.EdgeID]bool),
	}
}

// yenScratchPool recycles scratch state across Yen calls.  Parallel partial
// searches (one goroutine per pair or per subgraph) each Get their own
// scratch, so no two in-flight searches ever share buffers.  The ban maps are
// cleared by resetBans at every spur iteration and the vertex buffers
// self-truncate, so only the dedup set needs an explicit reset on reuse.
var yenScratchPool = sync.Pool{New: func() interface{} { return newYenScratch() }}

// resetBans clears the ban maps and seeds them from the caller's options.
func (ys *yenScratch) resetBans(opts *Options) {
	clear(ys.banVerts)
	clear(ys.banEdges)
	if opts != nil {
		for u := range opts.ForbiddenVertices {
			ys.banVerts[u] = true
		}
		for e := range opts.ForbiddenEdges {
			ys.banEdges[e] = true
		}
	}
}

// fillPrefixDist computes the cumulative distance of every prefix of verts
// under the search metric, so each spur iteration reads its root distance in
// O(1) instead of re-walking the root path.
func (ys *yenScratch) fillPrefixDist(v graph.WeightedView, verts []graph.VertexID, opts *Options) {
	weight := opts.weightFn(v)
	ys.prefixDist = append(ys.prefixDist[:0], 0)
	for i := 0; i+1 < len(verts); i++ {
		d := ys.prefixDist[i]
		if e, ok := v.EdgeBetween(verts[i], verts[i+1]); ok {
			d += weight(e)
		}
		ys.prefixDist = append(ys.prefixDist, d)
	}
}

// deviate runs one round of Yen's deviation step: for every spur vertex of
// prev, search a spur path avoiding the produced paths' deviation edges, and
// push every new simple candidate onto the heap.  produced must contain prev
// as its last element.
func (ys *yenScratch) deviate(v graph.WeightedView, t graph.VertexID, produced []graph.Path, opts *Options, candidates *pathHeap) {
	prev := produced[len(produced)-1]
	ys.fillPrefixDist(v, prev.Vertices, opts)
	spurOpts := &Options{ForbiddenVertices: ys.banVerts, ForbiddenEdges: ys.banEdges}
	if opts != nil {
		spurOpts.Weight = opts.Weight
	}
	for j := 0; j < prev.Len(); j++ {
		spur := prev.Vertices[j]
		rootVerts := prev.Vertices[:j+1]

		ys.resetBans(opts)
		// Ban the edge that each already-accepted path with the same root
		// prefix takes out of the spur node, and the root vertices (except
		// the spur node) so the spur path cannot loop back into the root.
		for _, p := range produced {
			if p.Len() > j && samePrefix(p.Vertices, rootVerts) {
				if e, ok := v.EdgeBetween(p.Vertices[j], p.Vertices[j+1]); ok {
					ys.banEdges[e] = true
				}
			}
		}
		for _, u := range rootVerts[:j] {
			ys.banVerts[u] = true
		}

		spurPath, ok := ShortestPath(v, spur, t, spurOpts)
		if !ok {
			continue
		}
		// The root vertices (minus the spur node) were forbidden during the
		// spur search, so the joined path is simple by construction; the scan
		// is a cheap guard that costs no allocation, unlike the map-backed
		// IsSimple it replaces.
		if seqIntersects(rootVerts[:j], spurPath.Vertices) {
			continue
		}
		ys.totalBuf = append(ys.totalBuf[:0], rootVerts...)
		ys.totalBuf = append(ys.totalBuf, spurPath.Vertices[1:]...)
		// Dedup before allocating: a duplicate candidate costs nothing.
		if !ys.seen.AddSeq(ys.totalBuf) {
			continue
		}
		total := graph.Path{
			Vertices: append([]graph.VertexID(nil), ys.totalBuf...),
			Dist:     ys.prefixDist[j] + spurPath.Dist,
		}
		heap.Push(candidates, total)
	}
}

// Yen computes up to k shortest loopless (simple) paths from s to t in
// ascending order of distance, following Yen's classic deviation algorithm
// [Yen 1971].  Fewer than k paths are returned if the graph does not contain
// k distinct simple paths from s to t.
//
// opts applies to every underlying shortest path search: a custom weight
// function affects the metric the paths are ranked by, and forbidden
// vertices/edges are excluded everywhere (in addition to Yen's own deviation
// bans).
func Yen(v graph.WeightedView, s, t graph.VertexID, k int, opts *Options) []graph.Path {
	if k <= 0 {
		return nil
	}
	if s == t {
		return []graph.Path{{Vertices: []graph.VertexID{s}}}
	}
	first, ok := ShortestPath(v, s, t, opts)
	if !ok {
		return nil
	}
	result := []graph.Path{first}
	ys := yenScratchPool.Get().(*yenScratch)
	ys.seen.Reset()
	defer yenScratchPool.Put(ys)
	ys.seen.Add(first)
	candidates := &pathHeap{}
	heap.Init(candidates)

	for len(result) < k {
		ys.deviate(v, t, result, opts, candidates)
		if candidates.Len() == 0 {
			break
		}
		next := heap.Pop(candidates).(graph.Path)
		result = append(result, next)
	}
	return result
}

// samePrefix reports whether p begins with exactly the vertices of prefix.
func samePrefix(p, prefix []graph.VertexID) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

// seqIntersects reports whether any vertex of a appears in b.  Paths are
// short (tens of vertices), so the quadratic scan beats building a set.
func seqIntersects(a, b []graph.VertexID) bool {
	for _, u := range a {
		for _, w := range b {
			if u == w {
				return true
			}
		}
	}
	return false
}

// pathHeap is a min-heap of candidate paths ordered by ComparePaths.
type pathHeap []graph.Path

func (h pathHeap) Len() int            { return len(h) }
func (h pathHeap) Less(i, j int) bool  { return graph.ComparePaths(h[i], h[j]) < 0 }
func (h pathHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x interface{}) { *h = append(*h, x.(graph.Path)) }
func (h *pathHeap) Pop() interface{} {
	old := *h
	n := len(old)
	p := old[n-1]
	*h = old[:n-1]
	return p
}

// KShortestDistinctLengths returns the shortest paths from s to t whose
// length (under the search metric) falls into the `limit` smallest distinct
// length classes.  Paths sharing the same length class are all kept but the
// class counts only once towards limit.  This is the enumeration primitive
// used by DTLP bounding path selection, where "bounding paths containing the
// same number of vfrags are counted as only one path" (Section 3.4).
//
// The metric is given by opts.Weight (typically initial weights, so the path
// length equals the vfrag count).  Enumeration generates at most maxEnumerate
// candidate paths to bound worst-case cost; the result is therefore capped at
// maxEnumerate paths even when a length class has more ties.
func KShortestDistinctLengths(v graph.WeightedView, s, t graph.VertexID, limit, maxEnumerate int, opts *Options) []graph.Path {
	if limit <= 0 {
		return nil
	}
	if maxEnumerate < limit {
		maxEnumerate = limit
	}
	all := Yen(v, s, t, maxEnumerate, opts)
	var out []graph.Path
	seen := make(map[int64]bool, limit)
	for _, p := range all {
		// Path lengths under the vfrag metric are sums of integer initial
		// weights; rounding guards against floating point noise.
		key := int64(p.Dist*1000 + 0.5)
		if !seen[key] {
			if len(seen) >= limit {
				break
			}
			seen[key] = true
		}
		out = append(out, p)
	}
	return out
}
