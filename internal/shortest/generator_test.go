package shortest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kspdg/internal/graph"
	"kspdg/internal/testutil"
)

func TestGeneratorMatchesYen(t *testing.T) {
	g := testutil.PaperGraph(t)
	want := Yen(g, testutil.V4, testutil.V13, 6, nil)
	gen := NewGenerator(g, testutil.V4, testutil.V13, nil)
	for i, w := range want {
		p, ok := gen.Next()
		if !ok {
			t.Fatalf("generator exhausted at %d, want %d paths", i, len(want))
		}
		if !p.Equal(w) || math.Abs(p.Dist-w.Dist) > 1e-9 {
			t.Errorf("path %d: generator %v, Yen %v", i, p, w)
		}
	}
	if len(gen.Produced()) != len(want) {
		t.Errorf("Produced() length %d, want %d", len(gen.Produced()), len(want))
	}
}

func TestGeneratorExhaustion(t *testing.T) {
	g := testutil.LineGraph(t, 4)
	gen := NewGenerator(g, 0, 3, nil)
	if _, ok := gen.Next(); !ok {
		t.Fatal("expected first path")
	}
	if _, ok := gen.Next(); ok {
		t.Errorf("line graph has only one simple path")
	}
	// Once exhausted, it stays exhausted.
	if _, ok := gen.Next(); ok {
		t.Errorf("exhausted generator returned a path")
	}
}

func TestGeneratorSameSourceTarget(t *testing.T) {
	g := testutil.LineGraph(t, 4)
	gen := NewGenerator(g, 2, 2, nil)
	p, ok := gen.Next()
	if !ok || p.Len() != 0 {
		t.Errorf("expected trivial path, got %v,%v", p, ok)
	}
	if _, ok := gen.Next(); ok {
		t.Errorf("only one trivial path expected")
	}
}

func TestGeneratorUnreachable(t *testing.T) {
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build()
	gen := NewGenerator(g, 0, 3, nil)
	if _, ok := gen.Next(); ok {
		t.Errorf("expected no path")
	}
}

// Property: the generator yields exactly the same sequence as Yen on random
// graphs.
func TestPropertyGeneratorEquivalentToYen(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(15)
		g := testutil.RandomConnected(rng, n, n/2)
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		k := 1 + rng.Intn(6)
		want := Yen(g, s, tt, k, nil)
		gen := NewGenerator(g, s, tt, nil)
		for i := 0; i < len(want); i++ {
			p, ok := gen.Next()
			if !ok || math.Abs(p.Dist-want[i].Dist) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
