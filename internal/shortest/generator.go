package shortest

import (
	"container/heap"

	"kspdg/internal/graph"
)

// Generator enumerates the k shortest loopless paths from a source to a
// target one at a time, in ascending order of distance, using Yen's deviation
// scheme incrementally.  KSP-DG uses a Generator over the skeleton graph to
// produce reference paths lazily: each iteration consumes one more reference
// path and the termination test peeks at the next one, so eagerly computing
// all of them up front would be wasted work.
type Generator struct {
	view graph.WeightedView
	s, t graph.VertexID
	opts *Options

	produced   []graph.Path
	candidates pathHeap
	seen       map[string]bool
	exhausted  bool
	started    bool
}

// NewGenerator creates a Generator for paths from s to t under opts.
func NewGenerator(v graph.WeightedView, s, t graph.VertexID, opts *Options) *Generator {
	return &Generator{view: v, s: s, t: t, opts: opts, seen: make(map[string]bool)}
}

// Produced returns the paths generated so far, in order.
func (g *Generator) Produced() []graph.Path { return g.produced }

// Next returns the next shortest path that has not been returned yet.  The
// second return value is false when no further simple path exists.
func (g *Generator) Next() (graph.Path, bool) {
	if g.exhausted {
		return graph.Path{}, false
	}
	if !g.started {
		g.started = true
		if g.s == g.t {
			p := graph.Path{Vertices: []graph.VertexID{g.s}}
			g.produced = append(g.produced, p)
			g.exhausted = true
			return p, true
		}
		first, ok := ShortestPath(g.view, g.s, g.t, g.opts)
		if !ok {
			g.exhausted = true
			return graph.Path{}, false
		}
		g.produced = append(g.produced, first)
		g.seen[graph.PathKey(first)] = true
		heap.Init(&g.candidates)
		return first, true
	}
	// Deviate from the most recently produced path, then pop the best
	// candidate accumulated so far.
	prev := g.produced[len(g.produced)-1]
	for j := 0; j < prev.Len(); j++ {
		spur := prev.Vertices[j]
		rootVerts := prev.Vertices[:j+1]

		banEdges := make(map[graph.EdgeID]bool)
		if g.opts != nil {
			for e := range g.opts.ForbiddenEdges {
				banEdges[e] = true
			}
		}
		for _, p := range g.produced {
			if p.Len() > j && samePrefix(p.Vertices, rootVerts) {
				if e, ok := g.view.EdgeBetween(p.Vertices[j], p.Vertices[j+1]); ok {
					banEdges[e] = true
				}
			}
		}
		banVerts := make(map[graph.VertexID]bool)
		if g.opts != nil {
			for u := range g.opts.ForbiddenVertices {
				banVerts[u] = true
			}
		}
		for _, u := range rootVerts[:j] {
			banVerts[u] = true
		}

		spurOpts := &Options{ForbiddenVertices: banVerts, ForbiddenEdges: banEdges}
		if g.opts != nil {
			spurOpts.Weight = g.opts.Weight
		}
		spurPath, ok := ShortestPath(g.view, spur, g.t, spurOpts)
		if !ok {
			continue
		}
		rootPath := graph.Path{Vertices: append([]graph.VertexID(nil), rootVerts...)}
		rootPath.Dist = pathDist(g.view, rootPath.Vertices, g.opts)
		total, err := rootPath.Concat(spurPath)
		if err != nil || !total.IsSimple() {
			continue
		}
		key := graph.PathKey(total)
		if g.seen[key] {
			continue
		}
		g.seen[key] = true
		heap.Push(&g.candidates, total)
	}
	if g.candidates.Len() == 0 {
		g.exhausted = true
		return graph.Path{}, false
	}
	next := heap.Pop(&g.candidates).(graph.Path)
	g.produced = append(g.produced, next)
	return next, true
}
