package shortest

import (
	"container/heap"

	"kspdg/internal/graph"
)

// Generator enumerates the k shortest loopless paths from a source to a
// target one at a time, in ascending order of distance, using Yen's deviation
// scheme incrementally.  KSP-DG uses a Generator over the skeleton graph to
// produce reference paths lazily: each iteration consumes one more reference
// path and the termination test peeks at the next one, so eagerly computing
// all of them up front would be wasted work.
//
// A Generator keeps one yenScratch for its whole lifetime, so the deviation
// state (ban maps, dedup set, candidate buffers) is allocated once per query
// instead of once per spur vertex.
type Generator struct {
	view graph.WeightedView
	s, t graph.VertexID
	opts *Options

	produced   []graph.Path
	candidates pathHeap
	ys         *yenScratch
	exhausted  bool
	started    bool
}

// NewGenerator creates a Generator for paths from s to t under opts.
func NewGenerator(v graph.WeightedView, s, t graph.VertexID, opts *Options) *Generator {
	return &Generator{view: v, s: s, t: t, opts: opts, ys: newYenScratch()}
}

// Produced returns the paths generated so far, in order.
func (g *Generator) Produced() []graph.Path { return g.produced }

// Next returns the next shortest path that has not been returned yet.  The
// second return value is false when no further simple path exists.
func (g *Generator) Next() (graph.Path, bool) {
	if g.exhausted {
		return graph.Path{}, false
	}
	if !g.started {
		g.started = true
		if g.s == g.t {
			p := graph.Path{Vertices: []graph.VertexID{g.s}}
			g.produced = append(g.produced, p)
			g.exhausted = true
			return p, true
		}
		first, ok := ShortestPath(g.view, g.s, g.t, g.opts)
		if !ok {
			g.exhausted = true
			return graph.Path{}, false
		}
		g.produced = append(g.produced, first)
		g.ys.seen.Add(first)
		heap.Init(&g.candidates)
		return first, true
	}
	// Deviate from the most recently produced path, then pop the best
	// candidate accumulated so far.
	g.ys.deviate(g.view, g.t, g.produced, g.opts, &g.candidates)
	if g.candidates.Len() == 0 {
		g.exhausted = true
		return graph.Path{}, false
	}
	next := heap.Pop(&g.candidates).(graph.Path)
	g.produced = append(g.produced, next)
	return next, true
}
