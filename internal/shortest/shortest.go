// Package shortest implements single-source shortest path search (Dijkstra)
// and Yen's algorithm for k shortest loopless paths.  These are the
// sequential building blocks that both the DTLP index construction and the
// KSP-DG refine step (partial k shortest paths within a subgraph) rely on, as
// well as the centralized baselines evaluated in the paper.
//
// All algorithms operate on a graph.WeightedView, so they work on live
// graphs, snapshots, and partitioned subgraphs alike.  An Options value can
// substitute a different weight function (used by the DTLP index, which
// searches under initial-weight/vfrag metrics) and can forbid vertices or
// edges (used by Yen's deviation step).
package shortest

import (
	"math"

	"kspdg/internal/graph"
)

// WeightFunc maps an edge to the weight used during search.  It allows
// searching under a metric other than the view's current weights (for
// example, the initial weights that define virtual fragments in DTLP).
type WeightFunc func(graph.EdgeID) float64

// Options configures a shortest path search.  The zero value (or nil pointer)
// searches under the view's current weights with nothing forbidden.
type Options struct {
	// Weight substitutes the edge weight function.  Nil means the view's
	// current weights.
	Weight WeightFunc
	// ForbiddenVertices are excluded from the search (they can be neither
	// visited nor relaxed).  The source is never excluded.
	ForbiddenVertices map[graph.VertexID]bool
	// ForbiddenEdges are excluded from the search.
	ForbiddenEdges map[graph.EdgeID]bool
}

func (o *Options) weightFn(v graph.WeightedView) WeightFunc {
	if o != nil && o.Weight != nil {
		return o.Weight
	}
	return v.Weight
}

func (o *Options) vertexForbidden(u graph.VertexID) bool {
	return o != nil && o.ForbiddenVertices != nil && o.ForbiddenVertices[u]
}

func (o *Options) edgeForbidden(e graph.EdgeID) bool {
	return o != nil && o.ForbiddenEdges != nil && o.ForbiddenEdges[e]
}

// Tree is a shortest path tree rooted at Source, as produced by Dijkstra.
// Dist[v] is +Inf for unreachable vertices.
type Tree struct {
	Source     graph.VertexID
	Dist       []float64
	Parent     []graph.VertexID
	ParentEdge []graph.EdgeID
}

// Reachable reports whether t contains a path from the source to v.
func (t *Tree) Reachable(v graph.VertexID) bool {
	return !math.IsInf(t.Dist[v], 1)
}

// PathTo reconstructs the shortest path from the tree's source to v.
// The second return value is false if v is unreachable.
func (t *Tree) PathTo(v graph.VertexID) (graph.Path, bool) {
	if !t.Reachable(v) {
		return graph.Path{}, false
	}
	var rev []graph.VertexID
	for u := v; u != graph.NoVertex; u = t.Parent[u] {
		rev = append(rev, u)
		if u == t.Source {
			break
		}
	}
	verts := make([]graph.VertexID, len(rev))
	for i, u := range rev {
		verts[len(rev)-1-i] = u
	}
	return graph.Path{Vertices: verts, Dist: t.Dist[v]}, true
}

// Dijkstra computes the full shortest path tree from source s under opts.
func Dijkstra(v graph.WeightedView, s graph.VertexID, opts *Options) *Tree {
	return dijkstra(v, s, graph.NoVertex, opts)
}

// ShortestPath computes one shortest path from s to t under opts.  The search
// stops as soon as t is settled.  The second return value is false if t is
// unreachable.
func ShortestPath(v graph.WeightedView, s, t graph.VertexID, opts *Options) (graph.Path, bool) {
	if s == t {
		return graph.Path{Vertices: []graph.VertexID{s}}, true
	}
	tree := dijkstra(v, s, t, opts)
	return tree.PathTo(t)
}

// ShortestDistance returns only the shortest distance from s to t, or +Inf if
// t is unreachable.
func ShortestDistance(v graph.WeightedView, s, t graph.VertexID, opts *Options) float64 {
	if s == t {
		return 0
	}
	tree := dijkstra(v, s, t, opts)
	return tree.Dist[t]
}

// dijkstra runs Dijkstra's algorithm from s.  If target is a valid vertex the
// search terminates once target is settled (its distance is then exact);
// distances of unsettled vertices are upper bounds in that case.
func dijkstra(v graph.WeightedView, s, target graph.VertexID, opts *Options) *Tree {
	n := v.NumVertices()
	t := &Tree{
		Source:     s,
		Dist:       make([]float64, n),
		Parent:     make([]graph.VertexID, n),
		ParentEdge: make([]graph.EdgeID, n),
	}
	inf := math.Inf(1)
	for i := range t.Dist {
		t.Dist[i] = inf
		t.Parent[i] = graph.NoVertex
		t.ParentEdge[i] = graph.NoEdge
	}
	weight := opts.weightFn(v)
	t.Dist[s] = 0

	pq := newVertexHeap(n)
	pq.push(s, 0)
	settled := make([]bool, n)
	for pq.len() > 0 {
		u, du := pq.pop()
		if settled[u] {
			continue
		}
		settled[u] = true
		if u == target {
			break
		}
		for _, a := range v.Neighbors(u) {
			if settled[a.To] || opts.vertexForbidden(a.To) || opts.edgeForbidden(a.Edge) {
				continue
			}
			nd := du + weight(a.Edge)
			if nd < t.Dist[a.To] {
				t.Dist[a.To] = nd
				t.Parent[a.To] = u
				t.ParentEdge[a.To] = a.Edge
				pq.push(a.To, nd)
			}
		}
	}
	return t
}
