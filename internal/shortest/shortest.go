// Package shortest implements single-source shortest path search (Dijkstra)
// and Yen's algorithm for k shortest loopless paths.  These are the
// sequential building blocks that both the DTLP index construction and the
// KSP-DG refine step (partial k shortest paths within a subgraph) rely on, as
// well as the centralized baselines evaluated in the paper.
//
// All algorithms operate on a graph.WeightedView, so they work on live
// graphs, snapshots, and partitioned subgraphs alike.  An Options value can
// substitute a different weight function (used by the DTLP index, which
// searches under initial-weight/vfrag metrics) and can forbid vertices or
// edges (used by Yen's deviation step).
package shortest

import (
	"math"
	"sync"

	"kspdg/internal/graph"
)

// WeightFunc maps an edge to the weight used during search.  It allows
// searching under a metric other than the view's current weights (for
// example, the initial weights that define virtual fragments in DTLP).
type WeightFunc func(graph.EdgeID) float64

// Options configures a shortest path search.  The zero value (or nil pointer)
// searches under the view's current weights with nothing forbidden.
type Options struct {
	// Weight substitutes the edge weight function.  Nil means the view's
	// current weights.
	Weight WeightFunc
	// ForbiddenVertices are excluded from the search (they can be neither
	// visited nor relaxed).  The source is never excluded.
	ForbiddenVertices map[graph.VertexID]bool
	// ForbiddenEdges are excluded from the search.
	ForbiddenEdges map[graph.EdgeID]bool
}

func (o *Options) weightFn(v graph.WeightedView) WeightFunc {
	if o != nil && o.Weight != nil {
		return o.Weight
	}
	return v.Weight
}

func (o *Options) vertexForbidden(u graph.VertexID) bool {
	return o != nil && o.ForbiddenVertices != nil && o.ForbiddenVertices[u]
}

func (o *Options) edgeForbidden(e graph.EdgeID) bool {
	return o != nil && o.ForbiddenEdges != nil && o.ForbiddenEdges[e]
}

// Tree is a shortest path tree rooted at Source, as produced by Dijkstra.
// Dist[v] is +Inf for unreachable vertices.
type Tree struct {
	Source     graph.VertexID
	Dist       []float64
	Parent     []graph.VertexID
	ParentEdge []graph.EdgeID
}

// Reachable reports whether t contains a path from the source to v.
func (t *Tree) Reachable(v graph.VertexID) bool {
	return !math.IsInf(t.Dist[v], 1)
}

// PathTo reconstructs the shortest path from the tree's source to v.
// The second return value is false if v is unreachable.
func (t *Tree) PathTo(v graph.VertexID) (graph.Path, bool) {
	if !t.Reachable(v) {
		return graph.Path{}, false
	}
	var rev []graph.VertexID
	for u := v; u != graph.NoVertex; u = t.Parent[u] {
		rev = append(rev, u)
		if u == t.Source {
			break
		}
	}
	verts := make([]graph.VertexID, len(rev))
	for i, u := range rev {
		verts[len(rev)-1-i] = u
	}
	return graph.Path{Vertices: verts, Dist: t.Dist[v]}, true
}

// Dijkstra computes the full shortest path tree from source s under opts.
func Dijkstra(v graph.WeightedView, s graph.VertexID, opts *Options) *Tree {
	return dijkstra(v, s, graph.NoVertex, opts)
}

// ShortestPath computes one shortest path from s to t under opts.  The search
// stops as soon as t is settled.  The second return value is false if t is
// unreachable.  The search runs on pooled scratch state, so only the
// returned path itself allocates.
func ShortestPath(v graph.WeightedView, s, t graph.VertexID, opts *Options) (graph.Path, bool) {
	if s == t {
		return graph.Path{Vertices: []graph.VertexID{s}}, true
	}
	sc := getScratch(v.NumVertices())
	sc.run(v, s, t, opts)
	p, ok := sc.pathTo(s, t)
	putScratch(sc)
	return p, ok
}

// ShortestDistance returns only the shortest distance from s to t, or +Inf if
// t is unreachable.  Like ShortestPath it runs on pooled scratch state; it
// never allocates.
func ShortestDistance(v graph.WeightedView, s, t graph.VertexID, opts *Options) float64 {
	if s == t {
		return 0
	}
	sc := getScratch(v.NumVertices())
	sc.run(v, s, t, opts)
	d := sc.dist[t]
	putScratch(sc)
	return d
}

// dijkstra runs Dijkstra's algorithm from s into a freshly allocated Tree.
// If target is a valid vertex the search terminates once target is settled
// (its distance is then exact); distances of unsettled vertices are upper
// bounds in that case.
func dijkstra(v graph.WeightedView, s, target graph.VertexID, opts *Options) *Tree {
	sc := getScratch(v.NumVertices())
	sc.run(v, s, target, opts)
	t := &Tree{
		Source:     s,
		Dist:       append([]float64(nil), sc.dist...),
		Parent:     append([]graph.VertexID(nil), sc.parent...),
		ParentEdge: append([]graph.EdgeID(nil), sc.parentEdge...),
	}
	putScratch(sc)
	return t
}

// searchScratch is the reusable working state of one Dijkstra search.  Yen's
// algorithm runs O(k·len) searches per call and the engine's refine step runs
// Yen per subgraph per pair, so allocating this state per search dominated
// the query path's allocation profile; a sync.Pool amortises it to zero in
// steady state.
type searchScratch struct {
	dist       []float64
	parent     []graph.VertexID
	parentEdge []graph.EdgeID
	settled    []bool
	heap       vertexHeap
}

var scratchPool = sync.Pool{New: func() interface{} { return new(searchScratch) }}

func getScratch(n int) *searchScratch {
	sc := scratchPool.Get().(*searchScratch)
	if cap(sc.dist) < n {
		sc.dist = make([]float64, n)
		sc.parent = make([]graph.VertexID, n)
		sc.parentEdge = make([]graph.EdgeID, n)
		sc.settled = make([]bool, n)
	}
	sc.dist = sc.dist[:n]
	sc.parent = sc.parent[:n]
	sc.parentEdge = sc.parentEdge[:n]
	sc.settled = sc.settled[:n]
	inf := math.Inf(1)
	for i := 0; i < n; i++ {
		sc.dist[i] = inf
		sc.parent[i] = graph.NoVertex
		sc.parentEdge[i] = graph.NoEdge
		sc.settled[i] = false
	}
	sc.heap.reset()
	return sc
}

func putScratch(sc *searchScratch) { scratchPool.Put(sc) }

// run executes the Dijkstra loop over the scratch arrays.
func (sc *searchScratch) run(v graph.WeightedView, s, target graph.VertexID, opts *Options) {
	weight := opts.weightFn(v)
	sc.dist[s] = 0
	pq := &sc.heap
	pq.push(s, 0)
	for pq.len() > 0 {
		u, du := pq.pop()
		if sc.settled[u] {
			continue
		}
		sc.settled[u] = true
		if u == target {
			break
		}
		for _, a := range v.Neighbors(u) {
			if sc.settled[a.To] || opts.vertexForbidden(a.To) || opts.edgeForbidden(a.Edge) {
				continue
			}
			nd := du + weight(a.Edge)
			if nd < sc.dist[a.To] {
				sc.dist[a.To] = nd
				sc.parent[a.To] = u
				sc.parentEdge[a.To] = a.Edge
				pq.push(a.To, nd)
			}
		}
	}
}

// pathTo reconstructs the shortest path from s to t out of the scratch
// arrays, allocating exactly the returned vertex slice.
func (sc *searchScratch) pathTo(s, t graph.VertexID) (graph.Path, bool) {
	if math.IsInf(sc.dist[t], 1) {
		return graph.Path{}, false
	}
	depth := 0
	for u := t; u != graph.NoVertex; u = sc.parent[u] {
		depth++
		if u == s {
			break
		}
	}
	verts := make([]graph.VertexID, depth)
	i := depth - 1
	for u := t; i >= 0; u = sc.parent[u] {
		verts[i] = u
		i--
	}
	return graph.Path{Vertices: verts, Dist: sc.dist[t]}, true
}
