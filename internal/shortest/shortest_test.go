package shortest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"kspdg/internal/graph"
	"kspdg/internal/testutil"
)

func TestDijkstraLine(t *testing.T) {
	g := testutil.LineGraph(t, 10)
	tree := Dijkstra(g, 0, nil)
	for v := 0; v < 10; v++ {
		if tree.Dist[v] != float64(v) {
			t.Errorf("Dist[%d] = %g, want %d", v, tree.Dist[v], v)
		}
	}
	p, ok := tree.PathTo(9)
	if !ok || p.Len() != 9 || p.Dist != 9 {
		t.Errorf("PathTo(9) = %v, %v", p, ok)
	}
}

func TestDijkstraMatchesBruteForce(t *testing.T) {
	g := testutil.PaperGraph(t)
	cases := []struct{ s, t graph.VertexID }{
		{testutil.V4, testutil.V13}, {testutil.V1, testutil.V19},
		{testutil.V3, testutil.V16}, {testutil.V7, testutil.V17},
	}
	for _, c := range cases {
		p, ok := ShortestPath(g, c.s, c.t, nil)
		if !ok {
			t.Fatalf("no path %d->%d", c.s, c.t)
		}
		want := testutil.BruteForceKSP(g, c.s, c.t, 1)
		if len(want) == 0 {
			t.Fatalf("brute force found no path %d->%d", c.s, c.t)
		}
		if math.Abs(p.Dist-want[0].Dist) > 1e-9 {
			t.Errorf("ShortestPath(%d,%d) dist = %g, brute force = %g", c.s, c.t, p.Dist, want[0].Dist)
		}
		if err := p.Validate(g); err != nil {
			t.Errorf("invalid path: %v", err)
		}
	}
}

func TestShortestPathSameVertex(t *testing.T) {
	g := testutil.LineGraph(t, 3)
	p, ok := ShortestPath(g, 1, 1, nil)
	if !ok || p.Len() != 0 || p.Dist != 0 {
		t.Errorf("s==t path = %v, %v", p, ok)
	}
	if d := ShortestDistance(g, 2, 2, nil); d != 0 {
		t.Errorf("ShortestDistance(s,s) = %g", d)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build()
	if _, ok := ShortestPath(g, 0, 3, nil); ok {
		t.Errorf("expected no path between components")
	}
	if d := ShortestDistance(g, 0, 3, nil); !math.IsInf(d, 1) {
		t.Errorf("distance to unreachable = %g, want +Inf", d)
	}
	tree := Dijkstra(g, 0, nil)
	if tree.Reachable(3) {
		t.Errorf("vertex 3 should be unreachable")
	}
	if _, ok := tree.PathTo(3); ok {
		t.Errorf("PathTo unreachable should report false")
	}
}

func TestDijkstraForbiddenVertex(t *testing.T) {
	g := testutil.PaperGraph(t)
	// Forbid v9; v4 -> v13 must route around it (e.g. through v10).
	opts := &Options{ForbiddenVertices: map[graph.VertexID]bool{testutil.V9: true}}
	p, ok := ShortestPath(g, testutil.V4, testutil.V13, opts)
	if !ok {
		t.Fatal("expected a path avoiding v9")
	}
	if p.Contains(testutil.V9) {
		t.Errorf("path %v contains forbidden vertex", p)
	}
	unrestricted, _ := ShortestPath(g, testutil.V4, testutil.V13, nil)
	if p.Dist < unrestricted.Dist-1e-9 {
		t.Errorf("restricted path cannot be shorter than unrestricted")
	}
}

func TestDijkstraForbiddenEdge(t *testing.T) {
	g := testutil.LineGraph(t, 5)
	e, _ := g.EdgeBetween(2, 3)
	opts := &Options{ForbiddenEdges: map[graph.EdgeID]bool{e: true}}
	if _, ok := ShortestPath(g, 0, 4, opts); ok {
		t.Errorf("line graph with cut edge should be disconnected")
	}
}

func TestDijkstraCustomWeight(t *testing.T) {
	g := testutil.PaperGraph(t)
	// Hop-count metric: every edge weighs 1.
	opts := &Options{Weight: func(graph.EdgeID) float64 { return 1 }}
	p, ok := ShortestPath(g, testutil.V1, testutil.V13, opts)
	if !ok {
		t.Fatal("no path")
	}
	if p.Dist != float64(p.Len()) {
		t.Errorf("hop metric distance %g != edges %d", p.Dist, p.Len())
	}
}

func TestDijkstraDirected(t *testing.T) {
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g := b.Build()
	if _, ok := ShortestPath(g, 2, 0, nil); ok {
		t.Errorf("reverse path should not exist in directed graph")
	}
	p, ok := ShortestPath(g, 0, 2, nil)
	if !ok || p.Dist != 2 {
		t.Errorf("forward path = %v, %v", p, ok)
	}
}

func TestDijkstraRespectsSnapshotWeights(t *testing.T) {
	g := testutil.LineGraph(t, 4)
	snap := g.Snapshot()
	e, _ := g.EdgeBetween(1, 2)
	g.UpdateWeight(e, 100)
	p, _ := ShortestPath(snap, 0, 3, nil)
	if p.Dist != 3 {
		t.Errorf("snapshot search saw later update: dist = %g", p.Dist)
	}
	p2, _ := ShortestPath(g, 0, 3, nil)
	if p2.Dist != 102 {
		t.Errorf("live search dist = %g, want 102", p2.Dist)
	}
}

func TestYenMatchesBruteForce(t *testing.T) {
	g := testutil.PaperGraph(t)
	cases := []struct {
		s, t graph.VertexID
		k    int
	}{
		{testutil.V4, testutil.V13, 2}, {testutil.V4, testutil.V13, 6},
		{testutil.V1, testutil.V19, 4}, {testutil.V3, testutil.V14, 3},
	}
	for _, c := range cases {
		got := Yen(g, c.s, c.t, c.k, nil)
		want := testutil.BruteForceKSP(g, c.s, c.t, c.k)
		if len(got) != len(want) {
			t.Fatalf("Yen(%d,%d,%d) returned %d paths, brute force %d", c.s, c.t, c.k, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Errorf("Yen(%d,%d,%d) path %d dist = %g, brute force = %g",
					c.s, c.t, c.k, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

func TestYenProperties(t *testing.T) {
	g := testutil.PaperGraph(t)
	paths := Yen(g, testutil.V1, testutil.V19, 8, nil)
	if len(paths) == 0 {
		t.Fatal("expected paths")
	}
	sp, _ := ShortestPath(g, testutil.V1, testutil.V19, nil)
	if paths[0].Dist != sp.Dist {
		t.Errorf("first Yen path (%g) must equal Dijkstra distance (%g)", paths[0].Dist, sp.Dist)
	}
	seen := map[string]bool{}
	for i, p := range paths {
		if !p.IsSimple() {
			t.Errorf("path %d not simple: %v", i, p)
		}
		if err := p.Validate(g); err != nil {
			t.Errorf("path %d invalid: %v", i, err)
		}
		if math.Abs(p.EvalDist(g)-p.Dist) > 1e-9 {
			t.Errorf("path %d reported dist %g but edges sum to %g", i, p.Dist, p.EvalDist(g))
		}
		if i > 0 && paths[i-1].Dist > p.Dist+1e-9 {
			t.Errorf("paths not sorted: %g > %g", paths[i-1].Dist, p.Dist)
		}
		key := graph.PathKey(p)
		if seen[key] {
			t.Errorf("duplicate path %v", p)
		}
		seen[key] = true
		if p.Source() != testutil.V1 || p.Target() != testutil.V19 {
			t.Errorf("path %d has wrong endpoints: %v", i, p)
		}
	}
}

func TestYenEdgeCases(t *testing.T) {
	g := testutil.LineGraph(t, 4)
	if got := Yen(g, 0, 3, 0, nil); got != nil {
		t.Errorf("k=0 should return nil")
	}
	// A line graph has exactly one simple path between endpoints.
	paths := Yen(g, 0, 3, 5, nil)
	if len(paths) != 1 {
		t.Errorf("line graph should yield 1 path, got %d", len(paths))
	}
	// Same source and target.
	paths = Yen(g, 2, 2, 3, nil)
	if len(paths) != 1 || paths[0].Len() != 0 {
		t.Errorf("s==t should yield the trivial path, got %v", paths)
	}
	// Disconnected.
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	dg := b.Build()
	if got := Yen(dg, 0, 3, 3, nil); got != nil {
		t.Errorf("disconnected should return nil, got %v", got)
	}
}

func TestYenSquareGraphAllPaths(t *testing.T) {
	// Square 0-1, 1-3, 0-2, 2-3 plus diagonal 0-3: exactly 3 simple paths 0->3.
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 3, 1)
	b.AddEdge(0, 2, 2)
	b.AddEdge(2, 3, 2)
	b.AddEdge(0, 3, 5)
	g := b.Build()
	paths := Yen(g, 0, 3, 10, nil)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3: %v", len(paths), paths)
	}
	wantDists := []float64{2, 4, 5}
	for i, w := range wantDists {
		if paths[i].Dist != w {
			t.Errorf("path %d dist = %g, want %g", i, paths[i].Dist, w)
		}
	}
}

func TestYenWithForbiddenVertex(t *testing.T) {
	g := testutil.PaperGraph(t)
	opts := &Options{ForbiddenVertices: map[graph.VertexID]bool{testutil.V9: true}}
	paths := Yen(g, testutil.V4, testutil.V13, 4, opts)
	for _, p := range paths {
		if p.Contains(testutil.V9) {
			t.Errorf("path %v contains forbidden vertex", p)
		}
	}
}

func TestYenWithCustomWeight(t *testing.T) {
	g := testutil.PaperGraph(t)
	hop := &Options{Weight: func(graph.EdgeID) float64 { return 1 }}
	paths := Yen(g, testutil.V1, testutil.V13, 3, hop)
	for i := 1; i < len(paths); i++ {
		if paths[i-1].Dist > paths[i].Dist {
			t.Errorf("hop-metric paths not sorted")
		}
	}
	if len(paths) > 0 && paths[0].Dist != float64(paths[0].Len()) {
		t.Errorf("hop metric dist mismatch")
	}
}

func TestKShortestDistinctLengths(t *testing.T) {
	// Diamond with two equal-length routes plus one longer route.
	b := graph.NewBuilder(5, false)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 4, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(2, 4, 1)
	b.AddEdge(0, 3, 2)
	b.AddEdge(3, 4, 2)
	g := b.Build()
	// limit=2 keeps both length-2 paths (ties) and the single length-4 path.
	paths := KShortestDistinctLengths(g, 0, 4, 2, 10, nil)
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3 (ties kept): %v", len(paths), paths)
	}
	if paths[0].Dist != 2 || paths[1].Dist != 2 || paths[2].Dist != 4 {
		t.Errorf("lengths = %g,%g,%g; want 2,2,4", paths[0].Dist, paths[1].Dist, paths[2].Dist)
	}
	// limit 1 keeps only the smallest length class (both tied paths).
	one := KShortestDistinctLengths(g, 0, 4, 1, 10, nil)
	if len(one) != 2 || one[0].Dist != 2 || one[1].Dist != 2 {
		t.Errorf("limit=1 result wrong: %v", one)
	}
	if got := KShortestDistinctLengths(g, 0, 4, 0, 10, nil); got != nil {
		t.Errorf("limit=0 should return nil")
	}
}

// Property test: on random connected graphs, Yen's first path always matches
// Dijkstra, all paths are simple, valid, and sorted.
func TestPropertyYenOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(20)
		g := testutil.RandomConnected(rng, n, n)
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		k := 1 + rng.Intn(5)
		paths := Yen(g, s, tt, k, nil)
		if s == tt {
			return len(paths) == 1 && paths[0].Len() == 0
		}
		sp, ok := ShortestPath(g, s, tt, nil)
		if !ok {
			return len(paths) == 0
		}
		if len(paths) == 0 || math.Abs(paths[0].Dist-sp.Dist) > 1e-9 {
			return false
		}
		for i, p := range paths {
			if !p.IsSimple() || p.Validate(g) != nil {
				return false
			}
			if p.Source() != s || p.Target() != tt {
				return false
			}
			if i > 0 && paths[i-1].Dist > p.Dist+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property test: Yen matches the brute-force oracle on small random graphs.
func TestPropertyYenMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(6)
		g := testutil.RandomConnected(rng, n, 4)
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			return true
		}
		k := 1 + rng.Intn(4)
		got := Yen(g, s, tt, k, nil)
		want := testutil.BruteForceKSP(g, s, tt, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property test: Dijkstra distances obey the relaxation condition
// dist[v] <= dist[u] + w(u,v) for every edge.
func TestPropertyDijkstraRelaxed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		g := testutil.RandomConnected(rng, n, 2*n)
		s := graph.VertexID(rng.Intn(n))
		tree := Dijkstra(g, s, nil)
		for u := graph.VertexID(0); int(u) < n; u++ {
			for _, a := range g.Neighbors(u) {
				if tree.Dist[a.To] > tree.Dist[u]+g.Weight(a.Edge)+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
