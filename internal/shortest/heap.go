package shortest

import "kspdg/internal/graph"

// vertexHeap is a binary min-heap of (vertex, priority) pairs used by
// Dijkstra.  Duplicate entries for the same vertex are allowed; stale entries
// are skipped by the caller via its settled set ("lazy deletion"), which is
// simpler and in practice as fast as a decrease-key heap for sparse road
// networks.
type vertexHeap struct {
	vs []graph.VertexID
	ps []float64
}

func newVertexHeap(capHint int) *vertexHeap {
	return &vertexHeap{
		vs: make([]graph.VertexID, 0, capHint),
		ps: make([]float64, 0, capHint),
	}
}

func (h *vertexHeap) len() int { return len(h.vs) }

// reset empties the heap while keeping its backing arrays for reuse.
func (h *vertexHeap) reset() {
	h.vs = h.vs[:0]
	h.ps = h.ps[:0]
}

func (h *vertexHeap) push(v graph.VertexID, p float64) {
	h.vs = append(h.vs, v)
	h.ps = append(h.ps, p)
	h.up(len(h.vs) - 1)
}

func (h *vertexHeap) pop() (graph.VertexID, float64) {
	v, p := h.vs[0], h.ps[0]
	last := len(h.vs) - 1
	h.vs[0], h.ps[0] = h.vs[last], h.ps[last]
	h.vs = h.vs[:last]
	h.ps = h.ps[:last]
	if last > 0 {
		h.down(0)
	}
	return v, p
}

func (h *vertexHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.ps[parent] <= h.ps[i] {
			break
		}
		h.swap(parent, i)
		i = parent
	}
}

func (h *vertexHeap) down(i int) {
	n := len(h.vs)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.ps[l] < h.ps[smallest] {
			smallest = l
		}
		if r < n && h.ps[r] < h.ps[smallest] {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *vertexHeap) swap(i, j int) {
	h.vs[i], h.vs[j] = h.vs[j], h.vs[i]
	h.ps[i], h.ps[j] = h.ps[j], h.ps[i]
}
