package trace

import "context"

type ctxKey struct{}

// NewContext returns a context carrying the span.  A nil span returns ctx
// unchanged.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's span and returns it together with
// a derived context carrying the child.  On an untraced context it returns
// (nil, ctx): the nil span is safe to Finish/attribute, so callers need no
// branches.
func StartSpan(ctx context.Context, name string) (*Span, context.Context) {
	parent := FromContext(ctx)
	if parent == nil {
		return nil, ctx
	}
	child := parent.Child(name)
	return child, NewContext(ctx, child)
}
