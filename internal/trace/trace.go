// Package trace is a dependency-free span/trace layer in the style of
// internal/metrics: no third-party imports, instance-based (no globals), and
// cheap enough to leave on in production.  A Tracer hands out Traces; a Trace
// is a bounded set of Spans sharing one 64-bit trace ID; a Span measures one
// pipeline stage with monotonic timings and a small set of key=value
// attributes.  Finished traces pass through tail-based retention: slow,
// non-converged, failed-over, canceled, and errored queries are always kept,
// plus a seeded pseudo-random sample of normal ones, in a fixed-capacity ring
// buffer served by `GET /debug/traces`.
//
// Spans flow between pipeline stages inside a context.Context (see
// FromContext / NewContext / StartSpan) and across process boundaries as
// []SpanMsg (see Span.Graft), so worker-side execution spans stitch into the
// master-side trace.  All methods are nil-receiver safe: an untraced request
// pays one context lookup and nothing else.
package trace

import (
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Flag bits recorded on a Trace; any set bit forces retention.
const (
	flagSlow uint32 = 1 << iota
	flagNonConverged
	flagFailedOver
	flagCanceled
	flagError
)

// Defaults applied by New when the corresponding Options field is zero.
const (
	DefaultCapacity   = 256
	DefaultMaxSpans   = 512
	DefaultMaxAttrs   = 16
	defaultSampleRate = 0.05
)

// Options configures a Tracer.
type Options struct {
	// Capacity is the number of retained traces kept in the ring buffer.
	// Zero means DefaultCapacity.
	Capacity int
	// SampleRate is the probability that a normal (fast, converged,
	// un-flagged) trace is retained.  Zero means defaultSampleRate; set a
	// negative value to retain no normal traces.
	SampleRate float64
	// SlowThreshold marks any trace whose root duration meets or exceeds it
	// as slow (always retained).  Zero disables the slow rule.
	SlowThreshold time.Duration
	// MaxSpans bounds the spans recorded per trace; later spans are counted
	// as dropped instead.  Zero means DefaultMaxSpans.
	MaxSpans int
	// Seed seeds the sampling/ID RNG so retention is reproducible in tests.
	// Zero means a fixed default seed (the tracer is still deterministic).
	Seed int64
	// OnSpanFinish, when non-nil, is invoked for every finished span with
	// its name and duration — the bridge into a metrics histogram such as
	// kspd_stage_seconds{stage=...}.  It must be safe for concurrent use.
	OnSpanFinish func(name string, d time.Duration)
}

// Tracer creates traces and owns the retention ring.
type Tracer struct {
	opts Options

	mu      sync.Mutex
	rng     *rand.Rand
	ring    []*Trace // ring buffer of retained traces
	next    int      // next ring slot to overwrite
	started uint64
	kept    uint64
}

// New returns a Tracer with the given options.  A nil Tracer is valid and
// records nothing.
func New(opts Options) *Tracer {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	if opts.SampleRate == 0 {
		opts.SampleRate = defaultSampleRate
	}
	if opts.MaxSpans <= 0 {
		opts.MaxSpans = DefaultMaxSpans
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return &Tracer{
		opts: opts,
		rng:  rand.New(rand.NewSource(seed)),
		ring: make([]*Trace, 0, opts.Capacity),
	}
}

// StartTrace begins a new trace whose root span has the given name.  Returns
// (nil, nil) on a nil tracer.
func (t *Tracer) StartTrace(name string) (*Trace, *Span) {
	if t == nil {
		return nil, nil
	}
	t.mu.Lock()
	id := uint64(t.rng.Int63())<<1 | 1 // nonzero; zero means "untraced" on the wire
	t.started++
	t.mu.Unlock()
	tr := &Trace{
		tracer: t,
		id:     id,
		start:  time.Now(),
	}
	root := tr.newSpan(name, 0)
	tr.root = root
	return tr, root
}

// Stats reports how many traces were started and how many were retained.
func (t *Tracer) Stats() (started, retained uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.started, t.kept
}

// finish applies tail-based retention to a finished trace.
func (t *Tracer) finish(tr *Trace) {
	keep := tr.flagBits() != 0
	t.mu.Lock()
	defer t.mu.Unlock()
	if !keep && t.opts.SampleRate > 0 {
		keep = t.rng.Float64() < t.opts.SampleRate
	}
	if !keep {
		return
	}
	t.kept++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
		return
	}
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
}

// Trace is one query's bounded collection of spans.
type Trace struct {
	tracer *Tracer
	id     uint64
	start  time.Time
	root   *Span

	flags    uint32 // atomic
	nextSpan uint64 // atomic span-ID counter

	mu       sync.Mutex
	spans    []*Span
	dropped  int
	finished bool
	dur      time.Duration
}

// ID returns the 64-bit trace identifier (zero on a nil trace).
func (tr *Trace) ID() uint64 {
	if tr == nil {
		return 0
	}
	return tr.id
}

// Root returns the root span.
func (tr *Trace) Root() *Span {
	if tr == nil {
		return nil
	}
	return tr.root
}

// MarkNonConverged flags the trace as an iteration-cap/non-converged outlier.
func (tr *Trace) MarkNonConverged() { tr.mark(flagNonConverged) }

// MarkFailedOver flags the trace as having taken a failover leg.
func (tr *Trace) MarkFailedOver() { tr.mark(flagFailedOver) }

// MarkCanceled flags the trace as canceled (deadline or client disconnect).
func (tr *Trace) MarkCanceled() { tr.mark(flagCanceled) }

// MarkError flags the trace as failed.
func (tr *Trace) MarkError() { tr.mark(flagError) }

func (tr *Trace) mark(bit uint32) {
	if tr == nil {
		return
	}
	for {
		old := atomic.LoadUint32(&tr.flags)
		if old&bit != 0 || atomic.CompareAndSwapUint32(&tr.flags, old, old|bit) {
			return
		}
	}
}

func (tr *Trace) flagBits() uint32 { return atomic.LoadUint32(&tr.flags) }

// Finish closes the trace (finishing the root span if still open), applies
// the slow-threshold rule, and hands it to the tracer's retention ring.
// Calling Finish more than once is a no-op.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.root.Finish()
	tr.mu.Lock()
	if tr.finished {
		tr.mu.Unlock()
		return
	}
	tr.finished = true
	tr.dur = tr.root.Duration()
	tr.mu.Unlock()
	if st := tr.tracer.opts.SlowThreshold; st > 0 && tr.dur >= st {
		tr.mark(flagSlow)
	}
	tr.tracer.finish(tr)
}

// Duration returns the root span's duration once finished, else the elapsed
// time so far.
func (tr *Trace) Duration() time.Duration {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	fin, d := tr.finished, tr.dur
	tr.mu.Unlock()
	if fin {
		return d
	}
	return time.Since(tr.start)
}

// newSpan allocates and records a span, honouring the per-trace bound.
func (tr *Trace) newSpan(name string, parent uint64) *Span {
	return tr.newSpanAt(name, parent, time.Now())
}

func (tr *Trace) newSpanAt(name string, parent uint64, start time.Time) *Span {
	if tr == nil {
		return nil
	}
	s := &Span{
		tr:     tr,
		id:     atomic.AddUint64(&tr.nextSpan, 1),
		parent: parent,
		name:   name,
		start:  start,
	}
	tr.mu.Lock()
	if len(tr.spans) >= tr.tracer.opts.MaxSpans {
		tr.dropped++
		tr.mu.Unlock()
		s.recorded = false
		return s
	}
	s.recorded = true
	tr.spans = append(tr.spans, s)
	tr.mu.Unlock()
	return s
}

// Stages aggregates finished-span durations by span name.  Unfinished spans
// are skipped.  Returns nil on a nil trace.
func (tr *Trace) Stages() map[string]time.Duration {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	spans := append([]*Span(nil), tr.spans...)
	tr.mu.Unlock()
	out := make(map[string]time.Duration, 8)
	for _, s := range spans {
		if s.Finished() {
			out[s.name] += s.Duration()
		}
	}
	return out
}

// Span measures one stage of one trace.
type Span struct {
	tr       *Trace
	id       uint64
	parent   uint64
	name     string
	start    time.Time
	recorded bool // false once the trace hit its span bound

	done  uint32 // atomic; 1 after Finish
	durNs int64  // atomic; valid once done

	mu    sync.Mutex
	attrs []Attr
}

// Attr is one key=value annotation on a span.  Values are strings so the
// type stays trivially encodable (JSON, gob) with no reflection surprises.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Trace returns the span's owning trace (nil-safe).
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// ID returns the span's ID within its trace (zero on nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Name returns the span's stage name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Child starts a sub-span.  Returns nil on a nil receiver, so untraced code
// paths chain through without checks.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id)
}

// SetAttr records a key=value attribute, bounded per span; excess attributes
// are silently dropped.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if len(s.attrs) < DefaultMaxAttrs {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// SetAttrInt records an integer attribute.
func (s *Span) SetAttrInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// SetAttrDuration records a duration attribute in Go's duration syntax.
func (s *Span) SetAttrDuration(key string, d time.Duration) {
	if s == nil {
		return
	}
	s.SetAttr(key, d.String())
}

// Finish closes the span using the monotonic clock.  Double-finish keeps the
// first duration.  Finishing also feeds the tracer's OnSpanFinish bridge.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	if !atomic.CompareAndSwapUint32(&s.done, 0, 1) {
		return
	}
	d := time.Since(s.start)
	atomic.StoreInt64(&s.durNs, int64(d))
	if cb := s.tr.tracer.opts.OnSpanFinish; cb != nil {
		cb(s.name, d)
	}
}

// finishAs closes the span with an externally measured duration (used when
// grafting worker-side spans whose clocks we never saw).
func (s *Span) finishAs(d time.Duration) {
	if s == nil {
		return
	}
	if !atomic.CompareAndSwapUint32(&s.done, 0, 1) {
		return
	}
	atomic.StoreInt64(&s.durNs, int64(d))
	if cb := s.tr.tracer.opts.OnSpanFinish; cb != nil {
		cb(s.name, d)
	}
}

// Finished reports whether Finish has run.
func (s *Span) Finished() bool {
	return s != nil && atomic.LoadUint32(&s.done) == 1
}

// Duration returns the recorded duration, or elapsed time if unfinished.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	if atomic.LoadUint32(&s.done) == 1 {
		return time.Duration(atomic.LoadInt64(&s.durNs))
	}
	return time.Since(s.start)
}
