package trace

import "time"

// SpanMsg is the wire shape of a remotely recorded span.  Workers cannot
// share the master's clock or span-ID space, so a message carries only
// durations relative to the request it served: StartNs is the offset from the
// moment the worker began handling the request, DurNs the span's length.
// Parent indexes another entry of the same slice; -1 attaches the span
// directly under the master-side RPC span it is grafted onto.  The zero value
// round-trips through encoding/gob, and legacy peers that predate the field
// simply leave the slice nil.
type SpanMsg struct {
	Name    string
	Parent  int32 // index into the same []SpanMsg, or -1 for the graft root
	StartNs int64 // offset from request handling start
	DurNs   int64
	Attrs   []Attr
}

// Graft attaches remotely recorded spans under s, preserving their relative
// structure and durations.  Message start offsets are rebased onto s's own
// start time, which slightly misplaces them by the network latency — the
// durations themselves are exact.  Safe on a nil receiver or empty slice.
func (s *Span) Graft(msgs []SpanMsg) {
	if s == nil || len(msgs) == 0 {
		return
	}
	children := make([]*Span, len(msgs))
	for i, m := range msgs {
		parent := s
		if m.Parent >= 0 && int(m.Parent) < i && children[m.Parent] != nil {
			parent = children[m.Parent]
		}
		c := parent.tr.newSpanAt(m.Name, parent.id, s.start.Add(time.Duration(m.StartNs)))
		if c == nil {
			continue
		}
		for _, a := range m.Attrs {
			c.SetAttr(a.Key, a.Value)
		}
		c.finishAs(time.Duration(m.DurNs))
		children[i] = c
	}
}
