package trace

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// newTestTracer keeps every finished trace so structural tests are not at the
// mercy of sampling.
func newTestTracer(capacity int) *Tracer {
	return New(Options{Capacity: capacity, SampleRate: 1})
}

func finishAll(tr *Trace, spans ...*Span) {
	for _, s := range spans {
		s.Finish()
	}
	tr.Finish()
}

func TestNilSafety(t *testing.T) {
	var tracer *Tracer
	tr, root := tracer.StartTrace("request")
	if tr != nil || root != nil {
		t.Fatalf("nil tracer must hand out nil traces, got %v %v", tr, root)
	}
	// Every method must be a no-op on nil receivers.
	tr.MarkNonConverged()
	tr.MarkError()
	tr.Finish()
	if tr.ID() != 0 || tr.Stages() != nil || tr.Duration() != 0 {
		t.Error("nil trace accessors must return zero values")
	}
	root.SetAttr("k", "v")
	root.SetAttrInt("n", 1)
	root.Finish()
	if c := root.Child("x"); c != nil {
		t.Errorf("nil span child must be nil, got %v", c)
	}
	if got := tracer.Snapshot(10); got != nil {
		t.Errorf("nil tracer snapshot must be nil, got %v", got)
	}
	ctx := NewContext(context.Background(), nil)
	if s := FromContext(ctx); s != nil {
		t.Errorf("nil span must not enter the context, got %v", s)
	}
	if s, _ := StartSpan(context.Background(), "x"); s != nil {
		t.Errorf("StartSpan on an untraced context must return nil, got %v", s)
	}
}

func TestTraceIDsAreNonzeroAndDistinct(t *testing.T) {
	tracer := newTestTracer(8)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		tr, root := tracer.StartTrace("request")
		if tr.ID() == 0 {
			t.Fatal("trace id must be nonzero (zero means untraced on the wire)")
		}
		if seen[tr.ID()] {
			t.Fatalf("duplicate trace id %d", tr.ID())
		}
		seen[tr.ID()] = true
		finishAll(tr, root)
	}
}

func TestRingEviction(t *testing.T) {
	tracer := newTestTracer(4)
	var ids []string
	for i := 0; i < 10; i++ {
		tr, root := tracer.StartTrace("request")
		ids = append(ids, IDString(tr.ID()))
		finishAll(tr, root)
	}
	views := tracer.Snapshot(0)
	if len(views) != 4 {
		t.Fatalf("ring of capacity 4 retained %d traces", len(views))
	}
	// Newest-first: the last four started traces, in reverse start order.
	for i, v := range views {
		want := ids[len(ids)-1-i]
		if v.ID != want {
			t.Errorf("snapshot[%d] = %s, want %s", i, v.ID, want)
		}
	}
	started, kept := tracer.Stats()
	if started != 10 || kept != 10 {
		t.Errorf("stats = (%d, %d), want (10, 10)", started, kept)
	}
}

func TestTailRetentionKeepsFlaggedTraces(t *testing.T) {
	// SampleRate < 0 retains no normal traces, so anything in the ring got
	// there through a flag.
	tracer := New(Options{Capacity: 16, SampleRate: -1})

	tr, root := tracer.StartTrace("request")
	finishAll(tr, root)
	if got := tracer.Snapshot(0); len(got) != 0 {
		t.Fatalf("unflagged trace retained under zero sampling: %v", got)
	}

	marks := []struct {
		flag string
		mark func(*Trace)
	}{
		{"nonconverged", (*Trace).MarkNonConverged},
		{"failedover", (*Trace).MarkFailedOver},
		{"canceled", (*Trace).MarkCanceled},
		{"error", (*Trace).MarkError},
	}
	for _, m := range marks {
		tr, root := tracer.StartTrace("request")
		m.mark(tr)
		finishAll(tr, root)
	}
	views := tracer.Snapshot(0)
	if len(views) != len(marks) {
		t.Fatalf("retained %d flagged traces, want %d", len(views), len(marks))
	}
	flagged := map[string]bool{}
	for _, v := range views {
		for _, f := range v.Flags {
			flagged[f] = true
		}
	}
	for _, m := range marks {
		if !flagged[m.flag] {
			t.Errorf("no retained trace carries flag %q", m.flag)
		}
	}
}

func TestSlowThresholdForcesRetention(t *testing.T) {
	tracer := New(Options{Capacity: 4, SampleRate: -1, SlowThreshold: time.Nanosecond})
	tr, root := tracer.StartTrace("request")
	time.Sleep(time.Millisecond)
	finishAll(tr, root)
	views := tracer.Snapshot(0)
	if len(views) != 1 {
		t.Fatalf("slow trace not retained")
	}
	if len(views[0].Flags) != 1 || views[0].Flags[0] != "slow" {
		t.Errorf("flags = %v, want [slow]", views[0].Flags)
	}
}

func TestSamplingIsSeededAndReproducible(t *testing.T) {
	run := func() uint64 {
		tracer := New(Options{Capacity: 1024, SampleRate: 0.3, Seed: 99})
		for i := 0; i < 200; i++ {
			tr, root := tracer.StartTrace("request")
			finishAll(tr, root)
		}
		_, kept := tracer.Stats()
		return kept
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different retention: %d vs %d", a, b)
	}
	if a == 0 || a == 200 {
		t.Errorf("0.3 sampling kept %d of 200 traces", a)
	}
}

func TestSpanBoundCountsDropped(t *testing.T) {
	tracer := New(Options{Capacity: 4, SampleRate: 1, MaxSpans: 3})
	tr, root := tracer.StartTrace("request")
	for i := 0; i < 5; i++ {
		root.Child(fmt.Sprintf("s%d", i)).Finish()
	}
	finishAll(tr, root)
	v := tracer.Snapshot(1)[0]
	if len(v.Spans) != 3 {
		t.Errorf("recorded %d spans, want 3 (bound)", len(v.Spans))
	}
	if v.Dropped != 3 {
		// root + 5 children = 6 creations against a bound of 3.
		t.Errorf("dropped = %d, want 3", v.Dropped)
	}
}

func TestAttrBound(t *testing.T) {
	tracer := newTestTracer(4)
	tr, root := tracer.StartTrace("request")
	for i := 0; i < DefaultMaxAttrs+10; i++ {
		root.SetAttrInt(fmt.Sprintf("a%d", i), int64(i))
	}
	finishAll(tr, root)
	v := tracer.Snapshot(1)[0]
	if len(v.Spans[0].Attrs) != DefaultMaxAttrs {
		t.Errorf("span kept %d attrs, want %d", len(v.Spans[0].Attrs), DefaultMaxAttrs)
	}
}

func TestStagesAggregateFinishedSpans(t *testing.T) {
	tracer := newTestTracer(4)
	tr, root := tracer.StartTrace("request")
	a := root.Child("refine")
	b := root.Child("refine")
	c := root.Child("filter")
	open := root.Child("queue") // never finished: must not appear
	a.Finish()
	b.Finish()
	c.Finish()
	_ = open
	st := tr.Stages()
	if _, ok := st["queue"]; ok {
		t.Error("unfinished span leaked into Stages")
	}
	if _, ok := st["refine"]; !ok {
		t.Error("missing refine stage")
	}
	if _, ok := st["filter"]; !ok {
		t.Error("missing filter stage")
	}
}

func TestOnSpanFinishBridge(t *testing.T) {
	var mu sync.Mutex
	got := map[string]int{}
	tracer := New(Options{Capacity: 4, SampleRate: 1, OnSpanFinish: func(name string, d time.Duration) {
		if d < 0 {
			t.Errorf("negative duration for %s", name)
		}
		mu.Lock()
		got[name]++
		mu.Unlock()
	}})
	tr, root := tracer.StartTrace("request")
	s := root.Child("execute")
	s.Finish()
	s.Finish() // double finish must not double-observe
	finishAll(tr, root)
	if got["execute"] != 1 || got["request"] != 1 {
		t.Errorf("bridge observations = %v", got)
	}
}

func TestGraftRebasesWorkerSpans(t *testing.T) {
	tracer := newTestTracer(4)
	tr, root := tracer.StartTrace("request")
	rpc := root.Child("rpc")
	msgs := []SpanMsg{
		{Name: "worker_exec", Parent: -1, StartNs: 1000, DurNs: int64(5 * time.Millisecond),
			Attrs: []Attr{{Key: "worker", Value: "1"}}},
		{Name: "pair_yen", Parent: 0, StartNs: 2000, DurNs: int64(2 * time.Millisecond)},
	}
	rpc.Graft(msgs)
	rpc.Finish()
	finishAll(tr, root)
	v := tracer.Snapshot(1)[0]
	byName := map[string]SpanView{}
	for _, s := range v.Spans {
		byName[s.Name] = s
	}
	we, ok := byName["worker_exec"]
	if !ok {
		t.Fatal("worker_exec span not grafted")
	}
	if we.Parent != byName["rpc"].ID {
		t.Errorf("worker_exec parent = %d, want rpc span %d", we.Parent, byName["rpc"].ID)
	}
	if we.DurMs != 5 {
		t.Errorf("worker_exec duration %v ms, want 5", we.DurMs)
	}
	py, ok := byName["pair_yen"]
	if !ok {
		t.Fatal("pair_yen span not grafted")
	}
	if py.Parent != we.ID {
		t.Errorf("pair_yen parent = %d, want worker_exec %d", py.Parent, we.ID)
	}
	if len(we.Attrs) != 1 || we.Attrs[0].Key != "worker" {
		t.Errorf("grafted attrs lost: %v", we.Attrs)
	}
}

func TestContextPropagation(t *testing.T) {
	tracer := newTestTracer(4)
	tr, root := tracer.StartTrace("request")
	ctx := NewContext(context.Background(), root)
	if FromContext(ctx) != root {
		t.Fatal("span lost in context round-trip")
	}
	child, cctx := StartSpan(ctx, "queue")
	if child == nil || child.Trace() != tr {
		t.Fatal("StartSpan did not create a child on the carried trace")
	}
	if FromContext(cctx) != child {
		t.Fatal("StartSpan must return a context carrying the new span")
	}
	child.Finish()
	finishAll(tr, root)
}

func TestConcurrentSpansAndViews(t *testing.T) {
	tracer := New(Options{Capacity: 32, SampleRate: 1, MaxSpans: 128})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr, root := tracer.StartTrace("request")
				var inner sync.WaitGroup
				for j := 0; j < 4; j++ {
					inner.Add(1)
					go func(j int) {
						defer inner.Done()
						s := root.Child("refine")
						s.SetAttrInt("iter", int64(j))
						s.Finish()
					}(j)
				}
				if g == 0 {
					// Concurrent reads while spans finish.
					_ = tr.View()
					_ = tr.Stages()
				}
				inner.Wait()
				if i%2 == 0 {
					tr.MarkNonConverged()
				}
				finishAll(tr, root)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = tracer.Snapshot(8)
			}
		}
	}()
	wg.Wait()
	close(done)
	started, _ := tracer.Stats()
	if started != 400 {
		t.Errorf("started = %d, want 400", started)
	}
	if got := tracer.Snapshot(0); len(got) != 32 {
		t.Errorf("ring holds %d traces, want full capacity 32", len(got))
	}
}
