package trace

import (
	"sort"
	"strconv"
	"time"
)

// SpanView is the JSON-facing snapshot of one span.
type SpanView struct {
	ID       uint64  `json:"id"`
	Parent   uint64  `json:"parent,omitempty"`
	Name     string  `json:"name"`
	StartUs  int64   `json:"start_us"` // offset from trace start, microseconds
	DurMs    float64 `json:"dur_ms"`
	Finished bool    `json:"finished"`
	Attrs    []Attr  `json:"attrs,omitempty"`
}

// TraceView is the JSON-facing snapshot of one trace: its spans plus the
// per-stage aggregate breakdown.
type TraceView struct {
	ID      string             `json:"id"` // hex
	Start   time.Time          `json:"start"`
	DurMs   float64            `json:"dur_ms"`
	Flags   []string           `json:"flags,omitempty"`
	Dropped int                `json:"dropped_spans,omitempty"`
	Stages  map[string]float64 `json:"stages"` // stage name -> total ms
	Spans   []SpanView         `json:"spans"`
}

// IDString renders a trace ID the way views and logs do (hex, no 0x).
func IDString(id uint64) string { return strconv.FormatUint(id, 16) }

// View snapshots the trace, including still-open spans (Finished=false, with
// elapsed-so-far durations).  Safe to call concurrently with span recording.
func (tr *Trace) View() TraceView {
	if tr == nil {
		return TraceView{}
	}
	tr.mu.Lock()
	spans := append([]*Span(nil), tr.spans...)
	dropped := tr.dropped
	tr.mu.Unlock()

	v := TraceView{
		ID:      IDString(tr.id),
		Start:   tr.start,
		DurMs:   float64(tr.Duration()) / float64(time.Millisecond),
		Dropped: dropped,
		Stages:  make(map[string]float64, 8),
		Spans:   make([]SpanView, 0, len(spans)),
	}
	for _, bit := range []struct {
		flag uint32
		name string
	}{
		{flagSlow, "slow"},
		{flagNonConverged, "nonconverged"},
		{flagFailedOver, "failedover"},
		{flagCanceled, "canceled"},
		{flagError, "error"},
	} {
		if tr.flagBits()&bit.flag != 0 {
			v.Flags = append(v.Flags, bit.name)
		}
	}
	for _, s := range spans {
		d := s.Duration()
		s.mu.Lock()
		attrs := append([]Attr(nil), s.attrs...)
		s.mu.Unlock()
		v.Spans = append(v.Spans, SpanView{
			ID:       s.id,
			Parent:   s.parent,
			Name:     s.name,
			StartUs:  s.start.Sub(tr.start).Microseconds(),
			DurMs:    float64(d) / float64(time.Millisecond),
			Finished: s.Finished(),
			Attrs:    attrs,
		})
		v.Stages[s.name] += float64(d) / float64(time.Millisecond)
	}
	return v
}

// Snapshot returns views of up to n retained traces, newest first.  n <= 0
// means all retained traces.  Returns nil on a nil tracer.
func (t *Tracer) Snapshot(n int) []TraceView {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	traces := append([]*Trace(nil), t.ring...)
	t.mu.Unlock()
	sort.Slice(traces, func(i, j int) bool { return traces[i].start.After(traces[j].start) })
	if n > 0 && n < len(traces) {
		traces = traces[:n]
	}
	out := make([]TraceView, 0, len(traces))
	for _, tr := range traces {
		out = append(out, tr.View())
	}
	return out
}
