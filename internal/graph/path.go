package graph

import (
	"fmt"
	"math"
	"strings"
)

// Path is a simple (loop-free) path through a graph: a sequence of vertices
// together with the total distance under the weights it was computed with.
type Path struct {
	Vertices []VertexID
	Dist     float64
}

// Source returns the first vertex of the path, or NoVertex for an empty path.
func (p Path) Source() VertexID {
	if len(p.Vertices) == 0 {
		return NoVertex
	}
	return p.Vertices[0]
}

// Target returns the last vertex of the path, or NoVertex for an empty path.
func (p Path) Target() VertexID {
	if len(p.Vertices) == 0 {
		return NoVertex
	}
	return p.Vertices[len(p.Vertices)-1]
}

// Len returns the number of edges on the path.
func (p Path) Len() int {
	if len(p.Vertices) == 0 {
		return 0
	}
	return len(p.Vertices) - 1
}

// IsSimple reports whether the path visits no vertex twice.
func (p Path) IsSimple() bool {
	seen := make(map[VertexID]struct{}, len(p.Vertices))
	for _, v := range p.Vertices {
		if _, dup := seen[v]; dup {
			return false
		}
		seen[v] = struct{}{}
	}
	return true
}

// Contains reports whether v appears on the path.
func (p Path) Contains(v VertexID) bool {
	for _, u := range p.Vertices {
		if u == v {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the path.
func (p Path) Clone() Path {
	return Path{Vertices: append([]VertexID(nil), p.Vertices...), Dist: p.Dist}
}

// Equal reports whether two paths visit the same vertex sequence.  Distances
// are not compared because the same sequence may be evaluated under different
// weight snapshots.
func (p Path) Equal(q Path) bool {
	if len(p.Vertices) != len(q.Vertices) {
		return false
	}
	for i := range p.Vertices {
		if p.Vertices[i] != q.Vertices[i] {
			return false
		}
	}
	return true
}

// String renders the path as "v0->v1->...->vn (dist)".
func (p Path) String() string {
	if len(p.Vertices) == 0 {
		return "<empty path>"
	}
	var b strings.Builder
	for i, v := range p.Vertices {
		if i > 0 {
			b.WriteString("->")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	fmt.Fprintf(&b, " (%.3f)", p.Dist)
	return b.String()
}

// EvalDist recomputes the distance of the path's vertex sequence under the
// weights of view v.  It returns +Inf if a required edge does not exist.
func (p Path) EvalDist(v WeightedView) float64 {
	var d float64
	for i := 0; i+1 < len(p.Vertices); i++ {
		e, ok := v.EdgeBetween(p.Vertices[i], p.Vertices[i+1])
		if !ok {
			return math.Inf(1)
		}
		d += v.Weight(e)
	}
	return d
}

// Validate checks that each consecutive vertex pair is connected in view v
// and that the path is simple.  It returns a descriptive error otherwise.
func (p Path) Validate(v WeightedView) error {
	if !p.IsSimple() {
		return fmt.Errorf("path %s is not simple", p)
	}
	for i := 0; i+1 < len(p.Vertices); i++ {
		if _, ok := v.EdgeBetween(p.Vertices[i], p.Vertices[i+1]); !ok {
			return fmt.Errorf("path %s uses missing edge (%d,%d)", p, p.Vertices[i], p.Vertices[i+1])
		}
	}
	return nil
}

// Concat joins p with q, where q must start at p's target.  The shared vertex
// appears once in the result.  Distances are added.
func (p Path) Concat(q Path) (Path, error) {
	if len(p.Vertices) == 0 {
		return q.Clone(), nil
	}
	if len(q.Vertices) == 0 {
		return p.Clone(), nil
	}
	if p.Target() != q.Source() {
		return Path{}, fmt.Errorf("graph: cannot concat %s with %s: endpoints differ", p, q)
	}
	out := Path{
		Vertices: make([]VertexID, 0, len(p.Vertices)+len(q.Vertices)-1),
		Dist:     p.Dist + q.Dist,
	}
	out.Vertices = append(out.Vertices, p.Vertices...)
	out.Vertices = append(out.Vertices, q.Vertices[1:]...)
	return out, nil
}

// ComparePaths orders paths by distance, breaking ties by lexicographic
// vertex sequence so orderings are deterministic.  It returns -1, 0 or +1.
func ComparePaths(a, b Path) int {
	switch {
	case a.Dist < b.Dist:
		return -1
	case a.Dist > b.Dist:
		return 1
	}
	n := len(a.Vertices)
	if len(b.Vertices) < n {
		n = len(b.Vertices)
	}
	for i := 0; i < n; i++ {
		if a.Vertices[i] != b.Vertices[i] {
			if a.Vertices[i] < b.Vertices[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a.Vertices) < len(b.Vertices):
		return -1
	case len(a.Vertices) > len(b.Vertices):
		return 1
	}
	return 0
}

// PathKey returns a compact string key identifying the vertex sequence of p,
// suitable for use in maps when deduplicating candidate paths.
func PathKey(p Path) string {
	// The key only needs equality semantics (it is a map key on every hot
	// dedup path, including inside Yen), so the vertex ids are packed in raw
	// little-endian bytes instead of being formatted as text.
	b := make([]byte, len(p.Vertices)*4)
	for i, v := range p.Vertices {
		b[i*4] = byte(v)
		b[i*4+1] = byte(v >> 8)
		b[i*4+2] = byte(v >> 16)
		b[i*4+3] = byte(v >> 24)
	}
	return string(b)
}
