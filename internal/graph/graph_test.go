package graph

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// buildPaperGraph constructs the 19-vertex example graph G from Figure 3 of
// the paper (vertices renumbered 0..18 for v1..v19).
func buildPaperGraph(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder(19, false)
	edges := []struct {
		u, v VertexID
		w    float64
	}{
		{0, 1, 3}, {0, 3, 3}, {1, 2, 6}, {1, 4, 3}, {2, 5, 2}, {3, 4, 4},
		{4, 5, 4}, {3, 6, 3}, {5, 8, 4}, {6, 7, 3}, {7, 8, 5}, {8, 9, 6},
		{8, 13, 7}, {9, 10, 5}, {10, 11, 3}, {11, 12, 3}, {12, 13, 5},
		{10, 13, 6}, {12, 15, 5}, {12, 17, 3}, {13, 15, 3}, {15, 16, 2},
		{16, 17, 2}, {17, 18, 3},
	}
	for _, e := range edges {
		if _, err := b.AddEdge(e.u, e.v, e.w); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", e.u, e.v, err)
		}
	}
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	g := buildPaperGraph(t)
	if got, want := g.NumVertices(), 19; got != want {
		t.Errorf("NumVertices = %d, want %d", got, want)
	}
	if got, want := g.NumEdges(), 24; got != want {
		t.Errorf("NumEdges = %d, want %d", got, want)
	}
	if g.Directed() {
		t.Errorf("graph should be undirected")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(3, false)
	if _, err := b.AddEdge(0, 3, 1); err == nil {
		t.Errorf("expected error for out-of-range vertex")
	}
	if _, err := b.AddEdge(-1, 1, 1); err == nil {
		t.Errorf("expected error for negative vertex")
	}
	if _, err := b.AddEdge(1, 1, 1); err == nil {
		t.Errorf("expected error for self-loop")
	}
	if _, err := b.AddEdge(0, 1, -2); err == nil {
		t.Errorf("expected error for negative weight")
	}
}

func TestUndirectedAdjacencySymmetric(t *testing.T) {
	g := buildPaperGraph(t)
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		for _, a := range g.Neighbors(v) {
			found := false
			for _, back := range g.Neighbors(a.To) {
				if back.To == v && back.Edge == a.Edge {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("arc %d->%d (edge %d) has no reverse entry", v, a.To, a.Edge)
			}
		}
	}
}

func TestDirectedAdjacencyOneWay(t *testing.T) {
	b := NewBuilder(3, true)
	e01, _ := b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	g := b.Build()
	if !g.Directed() {
		t.Fatal("graph should be directed")
	}
	if got := len(g.Neighbors(1)); got != 1 {
		t.Errorf("vertex 1 should have 1 outgoing arc, got %d", got)
	}
	if got := len(g.Neighbors(2)); got != 0 {
		t.Errorf("vertex 2 should have 0 outgoing arcs, got %d", got)
	}
	if _, ok := g.EdgeBetween(1, 0); ok {
		t.Errorf("reverse edge should not exist in directed graph")
	}
	if e, ok := g.EdgeBetween(0, 1); !ok || e != e01 {
		t.Errorf("EdgeBetween(0,1) = %d,%v; want %d,true", e, ok, e01)
	}
}

func TestWeightUpdateAndVersion(t *testing.T) {
	g := buildPaperGraph(t)
	e, ok := g.EdgeBetween(0, 1)
	if !ok {
		t.Fatal("edge (0,1) missing")
	}
	if got := g.Weight(e); got != 3 {
		t.Fatalf("initial weight = %g, want 3", got)
	}
	v0 := g.Version()
	delta, err := g.UpdateWeight(e, 5)
	if err != nil {
		t.Fatalf("UpdateWeight: %v", err)
	}
	if delta != 2 {
		t.Errorf("delta = %g, want 2", delta)
	}
	if got := g.Weight(e); got != 5 {
		t.Errorf("weight after update = %g, want 5", got)
	}
	if got := g.InitialWeight(e); got != 3 {
		t.Errorf("initial weight must not change, got %g", got)
	}
	if g.Version() != v0+1 {
		t.Errorf("version should increment by 1")
	}
	if _, err := g.UpdateWeight(e, -1); err == nil {
		t.Errorf("expected error for negative weight")
	}
	if _, err := g.UpdateWeight(EdgeID(9999), 1); err == nil {
		t.Errorf("expected error for out-of-range edge")
	}
}

func TestApplyUpdatesAtomicVersion(t *testing.T) {
	g := buildPaperGraph(t)
	batch := []WeightUpdate{{Edge: 0, NewWeight: 10}, {Edge: 1, NewWeight: 11}, {Edge: 2, NewWeight: 12}}
	v0 := g.Version()
	if err := g.ApplyUpdates(batch); err != nil {
		t.Fatalf("ApplyUpdates: %v", err)
	}
	if g.Version() != v0+1 {
		t.Errorf("batch should bump version exactly once")
	}
	for _, u := range batch {
		if got := g.Weight(u.Edge); got != u.NewWeight {
			t.Errorf("edge %d weight = %g, want %g", u.Edge, got, u.NewWeight)
		}
	}
	// Invalid batches are rejected wholesale.
	if err := g.ApplyUpdates([]WeightUpdate{{Edge: 0, NewWeight: 1}, {Edge: 9999, NewWeight: 1}}); err == nil {
		t.Errorf("expected error for invalid batch")
	}
	if got := g.Weight(0); got != 10 {
		t.Errorf("rejected batch must not be partially applied; edge 0 weight = %g, want 10", got)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	g := buildPaperGraph(t)
	e, _ := g.EdgeBetween(0, 1)
	snap := g.Snapshot()
	if _, err := g.UpdateWeight(e, 100); err != nil {
		t.Fatal(err)
	}
	if got := snap.Weight(e); got != 3 {
		t.Errorf("snapshot weight = %g, want 3 (isolated from later updates)", got)
	}
	snap2 := g.Snapshot()
	if got := snap2.Weight(e); got != 100 {
		t.Errorf("new snapshot weight = %g, want 100", got)
	}
	if snap2.Version() <= snap.Version() {
		t.Errorf("later snapshot should have greater version")
	}
	if snap.NumVertices() != g.NumVertices() || snap.NumEdges() != g.NumEdges() {
		t.Errorf("snapshot topology should match graph")
	}
}

func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	g := buildPaperGraph(t)
	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := EdgeID(rng.Intn(g.NumEdges()))
				if seed%2 == 0 {
					if _, err := g.UpdateWeight(e, 1+rng.Float64()*10); err != nil {
						t.Error(err)
						return
					}
				} else {
					s := g.Snapshot()
					if s.Weight(e) < 0 {
						t.Error("observed negative weight")
						return
					}
				}
			}
		}(int64(i))
	}
	// Let the goroutines race for a short while.
	for i := 0; i < 1000; i++ {
		g.Snapshot()
	}
	close(stop)
	wg.Wait()
}

func TestEdgesAccessor(t *testing.T) {
	g := buildPaperGraph(t)
	edges := g.Edges()
	if len(edges) != g.NumEdges() {
		t.Fatalf("Edges() returned %d, want %d", len(edges), g.NumEdges())
	}
	if edges[0].U != 0 || edges[0].V != 1 || edges[0].Weight != 3 {
		t.Errorf("edge 0 = %+v, want {0 1 3}", edges[0])
	}
}

func TestSortedArcs(t *testing.T) {
	g := buildPaperGraph(t)
	arcs := SortedArcs(g, 8)
	for i := 1; i < len(arcs); i++ {
		if arcs[i-1].To > arcs[i].To {
			t.Errorf("SortedArcs not sorted: %v", arcs)
		}
	}
}

// Property: after any sequence of valid updates, Weight(e) equals the last
// value written and InitialWeight(e) never changes.
func TestPropertyWeightLastWriteWins(t *testing.T) {
	g := buildPaperGraph(t)
	f := func(raw []uint16) bool {
		last := make(map[EdgeID]float64)
		for _, r := range raw {
			e := EdgeID(int(r) % g.NumEdges())
			w := float64(r%1000) + 1
			if _, err := g.UpdateWeight(e, w); err != nil {
				return false
			}
			last[e] = w
		}
		for e, w := range last {
			if g.Weight(e) != w {
				return false
			}
		}
		for e := EdgeID(0); int(e) < g.NumEdges(); e++ {
			if g.InitialWeight(e) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
