package graph

import (
	"fmt"
	"sort"
)

// TopologyUpdate describes a batch of topology mutations: vertex additions,
// edge insertions, and edge/vertex deletions.  A batch is applied atomically
// by ApplyTopology in a fixed order:
//
//  1. AddVertices new vertices are appended (ids NumVertices..NumVertices+AddVertices-1),
//  2. DeleteVertices are removed by deleting every live edge incident to them,
//  3. DeleteEdges are removed,
//  4. InsertEdges are appended (ids NumEdges..NumEdges+len(InsertEdges)-1).
//
// Because deletions precede insertions, a batch may delete a vertex and then
// insert a new edge touching it: the vertex is resurrected with only the new
// edge.  Vertex ids are never reused or renumbered; a deleted vertex remains
// a valid (isolated) id forever, and edge ids of deleted edges remain valid
// tombstones (EdgeAlive reports false for them).
type TopologyUpdate struct {
	// AddVertices is the number of fresh vertices to append.
	AddVertices int
	// InsertEdges are new edges; Weight is both the initial weight w0
	// (defining the edge's virtual-fragment count) and the current weight.
	// Endpoints may reference vertices added by this same batch.
	InsertEdges []Edge
	// DeleteEdges lists edge ids to delete.  Each must be alive before the
	// batch; duplicates within DeleteEdges are an error, but overlap with
	// edges already covered by DeleteVertices is allowed.
	DeleteEdges []EdgeID
	// DeleteVertices lists vertices to delete.  Deleting a vertex deletes
	// all live edges incident to it (in either direction); the vertex id
	// itself persists as an isolated vertex.
	DeleteVertices []VertexID
}

// IsZero reports whether the update contains no mutations.
func (up *TopologyUpdate) IsZero() bool {
	return up.AddVertices == 0 && len(up.InsertEdges) == 0 &&
		len(up.DeleteEdges) == 0 && len(up.DeleteVertices) == 0
}

// ApplyTopology derives a new Graph from g with the batch applied.  The
// receiver is left untouched (existing Snapshots alias its adjacency, so
// topology is never mutated in place); callers swap the returned graph in as
// the new parent.  It returns the ids of the inserted edges (in InsertEdges
// order) and the sorted ids of all edges deleted by the batch, including
// edges deleted via DeleteVertices expansion.
//
// Edge weights current at the time of the call carry over to the new graph;
// a concurrent ApplyUpdates on g may or may not be visible, so callers that
// need a strict ordering must serialize topology and weight batches (dtlp's
// writer lock does).
func (g *Graph) ApplyTopology(up TopologyUpdate) (ng *Graph, inserted, deleted []EdgeID, err error) {
	if up.AddVertices < 0 {
		return nil, nil, nil, fmt.Errorf("graph: negative AddVertices %d", up.AddVertices)
	}
	newNumV := g.numV + up.AddVertices
	oldNumE := len(g.ends)
	newNumE := oldNumE + len(up.InsertEdges)

	// Validate against the pre-batch graph before building anything.
	delVerts := make(map[VertexID]bool, len(up.DeleteVertices))
	for _, v := range up.DeleteVertices {
		if v < 0 || int(v) >= newNumV {
			return nil, nil, nil, fmt.Errorf("graph: delete of vertex %d outside [0,%d)", v, newNumV)
		}
		delVerts[v] = true
	}
	explicit := make(map[EdgeID]bool, len(up.DeleteEdges))
	for _, e := range up.DeleteEdges {
		if e < 0 || int(e) >= oldNumE {
			return nil, nil, nil, fmt.Errorf("graph: delete of edge %d outside [0,%d)", e, oldNumE)
		}
		if !g.EdgeAlive(e) {
			return nil, nil, nil, fmt.Errorf("graph: edge %d already deleted", e)
		}
		if explicit[e] {
			return nil, nil, nil, fmt.Errorf("graph: duplicate delete of edge %d", e)
		}
		explicit[e] = true
	}
	for i, e := range up.InsertEdges {
		if e.U < 0 || int(e.U) >= newNumV || e.V < 0 || int(e.V) >= newNumV {
			return nil, nil, nil, fmt.Errorf("graph: inserted edge %d (%d,%d) references vertex outside [0,%d)", i, e.U, e.V, newNumV)
		}
		if e.U == e.V {
			return nil, nil, nil, fmt.Errorf("graph: inserted self-loop on vertex %d not allowed", e.U)
		}
		if e.Weight < 0 {
			return nil, nil, nil, fmt.Errorf("graph: negative weight %g on inserted edge (%d,%d)", e.Weight, e.U, e.V)
		}
	}

	// Freeze the current weights; the new graph starts from this view.
	g.mu.RLock()
	curW := make([]float64, newNumE)
	copy(curW, g.weights)
	version := g.version
	g.mu.RUnlock()

	alive := make([]bool, newNumE)
	if g.alive == nil {
		for i := 0; i < oldNumE; i++ {
			alive[i] = true
		}
	} else {
		copy(alive, g.alive)
	}

	// Vertex deletion expands to every live incident edge (both directions).
	delSet := make(map[EdgeID]bool)
	if len(delVerts) > 0 {
		for e := 0; e < oldNumE; e++ {
			if alive[e] && (delVerts[g.ends[e].U] || delVerts[g.ends[e].V]) {
				delSet[EdgeID(e)] = true
			}
		}
	}
	for e := range explicit {
		delSet[e] = true
	}
	deleted = make([]EdgeID, 0, len(delSet))
	for e := range delSet {
		alive[e] = false
		deleted = append(deleted, e)
	}
	sort.Slice(deleted, func(i, j int) bool { return deleted[i] < deleted[j] })

	ends := make([]Endpoints, newNumE)
	copy(ends, g.ends)
	initW := make([]float64, newNumE)
	copy(initW, g.initW)
	inserted = make([]EdgeID, len(up.InsertEdges))
	for i, e := range up.InsertEdges {
		id := EdgeID(oldNumE + i)
		ends[id] = Endpoints{U: e.U, V: e.V}
		initW[id] = e.Weight
		curW[id] = e.Weight
		alive[id] = true
		inserted[i] = id
	}

	ng = &Graph{
		directed: g.directed,
		numV:     newNumV,
		ends:     ends,
		initW:    initW,
		weights:  curW,
		alive:    alive,
		version:  version + 1,
	}
	ng.rebuildAdjacency()
	return ng, inserted, deleted, nil
}

// rebuildAdjacency recomputes ng.adj and ng.numLive from the live edges.
func (g *Graph) rebuildAdjacency() {
	deg := make([]int, g.numV)
	live := 0
	for e, ends := range g.ends {
		if g.alive != nil && !g.alive[e] {
			continue
		}
		live++
		deg[ends.U]++
		if !g.directed {
			deg[ends.V]++
		}
	}
	g.adj = make([][]Arc, g.numV)
	for v := range g.adj {
		if deg[v] > 0 {
			g.adj[v] = make([]Arc, 0, deg[v])
		}
	}
	for e, ends := range g.ends {
		if g.alive != nil && !g.alive[e] {
			continue
		}
		id := EdgeID(e)
		g.adj[ends.U] = append(g.adj[ends.U], Arc{To: ends.V, Edge: id})
		if !g.directed {
			g.adj[ends.V] = append(g.adj[ends.V], Arc{To: ends.U, Edge: id})
		}
	}
	g.numLive = live
}
