package graph

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPathBasics(t *testing.T) {
	p := Path{Vertices: []VertexID{1, 2, 3}, Dist: 7}
	if p.Source() != 1 || p.Target() != 3 {
		t.Errorf("Source/Target = %d/%d, want 1/3", p.Source(), p.Target())
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
	if !p.IsSimple() {
		t.Errorf("path should be simple")
	}
	if !p.Contains(2) || p.Contains(9) {
		t.Errorf("Contains misbehaves")
	}
	empty := Path{}
	if empty.Source() != NoVertex || empty.Target() != NoVertex || empty.Len() != 0 {
		t.Errorf("empty path accessors wrong")
	}
	if empty.String() != "<empty path>" {
		t.Errorf("empty String = %q", empty.String())
	}
	if !strings.Contains(p.String(), "1->2->3") {
		t.Errorf("String = %q", p.String())
	}
}

func TestPathSimpleDetection(t *testing.T) {
	p := Path{Vertices: []VertexID{1, 2, 1}}
	if p.IsSimple() {
		t.Errorf("path with repeated vertex should not be simple")
	}
}

func TestPathCloneIndependence(t *testing.T) {
	p := Path{Vertices: []VertexID{1, 2, 3}, Dist: 5}
	q := p.Clone()
	q.Vertices[0] = 9
	if p.Vertices[0] != 1 {
		t.Errorf("Clone must copy vertices")
	}
}

func TestPathEqual(t *testing.T) {
	a := Path{Vertices: []VertexID{1, 2, 3}, Dist: 5}
	b := Path{Vertices: []VertexID{1, 2, 3}, Dist: 99}
	c := Path{Vertices: []VertexID{1, 2, 4}}
	d := Path{Vertices: []VertexID{1, 2}}
	if !a.Equal(b) {
		t.Errorf("paths with same sequence should be Equal regardless of Dist")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Errorf("different sequences should not be Equal")
	}
}

func TestPathConcat(t *testing.T) {
	a := Path{Vertices: []VertexID{1, 2, 3}, Dist: 4}
	b := Path{Vertices: []VertexID{3, 5}, Dist: 2}
	joined, err := a.Concat(b)
	if err != nil {
		t.Fatalf("Concat: %v", err)
	}
	want := Path{Vertices: []VertexID{1, 2, 3, 5}, Dist: 6}
	if !joined.Equal(want) || joined.Dist != 6 {
		t.Errorf("Concat = %v, want %v", joined, want)
	}
	if _, err := a.Concat(Path{Vertices: []VertexID{9, 10}}); err == nil {
		t.Errorf("expected error for mismatched endpoints")
	}
	// Concat with empty paths.
	if got, err := (Path{}).Concat(a); err != nil || !got.Equal(a) {
		t.Errorf("empty.Concat(a) = %v, %v", got, err)
	}
	if got, err := a.Concat(Path{}); err != nil || !got.Equal(a) {
		t.Errorf("a.Concat(empty) = %v, %v", got, err)
	}
}

func TestPathEvalDistAndValidate(t *testing.T) {
	g := buildPaperGraph(t)
	p := Path{Vertices: []VertexID{0, 1, 4}}
	if d := p.EvalDist(g); d != 6 {
		t.Errorf("EvalDist = %g, want 6", d)
	}
	if err := p.Validate(g); err != nil {
		t.Errorf("Validate: %v", err)
	}
	bad := Path{Vertices: []VertexID{0, 18}}
	if d := bad.EvalDist(g); !math.IsInf(d, 1) {
		t.Errorf("EvalDist of invalid path = %g, want +Inf", d)
	}
	if err := bad.Validate(g); err == nil {
		t.Errorf("Validate should fail for missing edge")
	}
	loop := Path{Vertices: []VertexID{0, 1, 0}}
	if err := loop.Validate(g); err == nil {
		t.Errorf("Validate should fail for non-simple path")
	}
}

func TestComparePaths(t *testing.T) {
	a := Path{Vertices: []VertexID{1, 2}, Dist: 1}
	b := Path{Vertices: []VertexID{1, 3}, Dist: 2}
	if ComparePaths(a, b) != -1 || ComparePaths(b, a) != 1 {
		t.Errorf("distance ordering wrong")
	}
	c := Path{Vertices: []VertexID{1, 2}, Dist: 2}
	d := Path{Vertices: []VertexID{1, 3}, Dist: 2}
	if ComparePaths(c, d) != -1 {
		t.Errorf("tie should break lexicographically")
	}
	if ComparePaths(c, c) != 0 {
		t.Errorf("identical paths should compare 0")
	}
	prefix := Path{Vertices: []VertexID{1, 2}, Dist: 2}
	longer := Path{Vertices: []VertexID{1, 2, 3}, Dist: 2}
	if ComparePaths(prefix, longer) != -1 || ComparePaths(longer, prefix) != 1 {
		t.Errorf("shorter prefix should order first on ties")
	}
}

func TestPathKey(t *testing.T) {
	a := Path{Vertices: []VertexID{1, 2, 3}}
	b := Path{Vertices: []VertexID{1, 2, 3}}
	c := Path{Vertices: []VertexID{1, 23}}
	if PathKey(a) != PathKey(b) {
		t.Errorf("same sequences must have same key")
	}
	if PathKey(a) == PathKey(c) {
		t.Errorf("different sequences must have different keys")
	}
}

// Property: ComparePaths is antisymmetric and Equal paths compare to 0.
func TestPropertyComparePathsAntisymmetric(t *testing.T) {
	f := func(av, bv []uint8, ad, bd float64) bool {
		a := Path{Dist: math.Abs(ad)}
		b := Path{Dist: math.Abs(bd)}
		for _, v := range av {
			a.Vertices = append(a.Vertices, VertexID(v))
		}
		for _, v := range bv {
			b.Vertices = append(b.Vertices, VertexID(v))
		}
		return ComparePaths(a, b) == -ComparePaths(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Concat preserves total edge count and distance additivity.
func TestPropertyConcatAdditive(t *testing.T) {
	f := func(n1, n2 uint8, d1, d2 float64) bool {
		if n1 == 0 || n2 == 0 {
			return true
		}
		d1, d2 = math.Abs(d1), math.Abs(d2)
		if math.IsInf(d1, 0) || math.IsInf(d2, 0) || math.IsNaN(d1) || math.IsNaN(d2) {
			return true
		}
		a := Path{Dist: d1}
		for i := uint8(0); i < n1; i++ {
			a.Vertices = append(a.Vertices, VertexID(i))
		}
		b := Path{Dist: d2}
		for i := uint8(0); i < n2; i++ {
			b.Vertices = append(b.Vertices, VertexID(n1-1+i))
		}
		j, err := a.Concat(b)
		if err != nil {
			return false
		}
		return j.Len() == a.Len()+b.Len() && j.Dist == d1+d2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
