package graph

// PathSet is an allocation-lean set of vertex sequences, used on every hot
// dedup path (Yen's candidate generation, the engine's result fold, partial
// path merging).  Compared to a plain map[string]bool keyed by PathKey it
// avoids the per-probe string allocation: the candidate's key is packed into
// a reusable scratch buffer and membership is tested with a non-allocating
// map lookup (the compiler elides the []byte→string conversion for lookups).
// Only a genuinely new entry pays one string allocation when it is inserted.
//
// The zero value is ready to use.  PathSet is not safe for concurrent use.
type PathSet struct {
	m       map[string]struct{}
	scratch []byte
}

// packSeq packs a vertex sequence into the reusable scratch buffer using the
// same little-endian layout as PathKey, so PathSet and PathKey keys agree.
func (s *PathSet) packSeq(verts []VertexID) []byte {
	need := len(verts) * 4
	if cap(s.scratch) < need {
		s.scratch = make([]byte, need)
	}
	b := s.scratch[:need]
	for i, v := range verts {
		b[i*4] = byte(v)
		b[i*4+1] = byte(v >> 8)
		b[i*4+2] = byte(v >> 16)
		b[i*4+3] = byte(v >> 24)
	}
	return b
}

// Len returns the number of sequences in the set.
func (s *PathSet) Len() int { return len(s.m) }

// Reset empties the set while keeping its allocations for reuse.
func (s *PathSet) Reset() {
	clear(s.m)
}

// Contains reports whether the path's vertex sequence is in the set.
func (s *PathSet) Contains(p Path) bool { return s.ContainsSeq(p.Vertices) }

// ContainsSeq reports whether the vertex sequence is in the set without
// allocating.
func (s *PathSet) ContainsSeq(verts []VertexID) bool {
	if s.m == nil {
		return false
	}
	_, ok := s.m[string(s.packSeq(verts))]
	return ok
}

// Add inserts the path's vertex sequence, reporting whether it was new.
func (s *PathSet) Add(p Path) bool { return s.AddSeq(p.Vertices) }

// AddSeq inserts a vertex sequence, reporting whether it was new.  Only a
// new sequence allocates (the map key string); duplicates are free.
func (s *PathSet) AddSeq(verts []VertexID) bool {
	b := s.packSeq(verts)
	if s.m == nil {
		s.m = make(map[string]struct{})
	} else if _, ok := s.m[string(b)]; ok {
		return false
	}
	s.m[string(b)] = struct{}{}
	return true
}
