// Package graph provides the dynamic weighted graph substrate used by the
// KSP-DG reproduction.  A Graph models a road network: vertices are
// intersections, edges are road segments, and edge weights are travel times
// that evolve over time (Definition 1 of the paper).
//
// The topology held by one Graph value is immutable: Snapshots alias its
// adjacency lists, so vertices and edges are never added or removed in place.
// Weight updates are applied through UpdateWeight / ApplyUpdates and are safe
// for concurrent use with readers.  Queries that need a consistent view of
// the weights take a Snapshot, which corresponds to the buffer G_curr
// described in Section 2 of the paper.
//
// Topology still evolves, copy-on-write: ApplyTopology derives a new Graph
// with a batch of vertex/edge inserts and deletes applied.  Ids are stable
// across derivations — deleted edges remain as tombstones (EdgeAlive reports
// false) and deleted vertices remain as isolated ids — so identifiers in
// logs, WAL records, and client requests stay meaningful across epochs.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// VertexID identifies a vertex.  Vertices are numbered 0..NumVertices-1.
type VertexID int32

// EdgeID identifies an edge.  Edges are numbered 0..NumEdges-1.  In an
// undirected graph a single EdgeID covers both directions of travel.
type EdgeID int32

// NoVertex is a sentinel VertexID meaning "none".
const NoVertex VertexID = -1

// NoEdge is a sentinel EdgeID meaning "none".
const NoEdge EdgeID = -1

// Arc is one directed adjacency entry: travelling from the owning vertex to
// To uses edge Edge.
type Arc struct {
	To   VertexID
	Edge EdgeID
}

// Endpoints records the two endpoints of an edge as constructed.  For
// undirected graphs the order (U, V) is the insertion order and carries no
// semantic meaning.
type Endpoints struct {
	U, V VertexID
}

// Edge describes an edge for graph construction.
type Edge struct {
	U, V   VertexID
	Weight float64
}

// Graph is a weighted graph with immutable topology and mutable edge weights.
// The zero value is not usable; construct with a Builder.
type Graph struct {
	directed bool
	numV     int
	adj      [][]Arc     // adjacency lists (live edges only), indexed by vertex
	ends     []Endpoints // edge id -> endpoints
	initW    []float64   // initial weights w0 (fixed; defines vfrag counts)
	alive    []bool      // edge tombstones; nil means every edge is alive
	numLive  int         // number of live edges

	mu      sync.RWMutex
	weights []float64 // current weights, guarded by mu
	version uint64    // incremented on every weight change batch
}

// Builder accumulates vertices and edges and produces an immutable-topology
// Graph.  It is not safe for concurrent use.
type Builder struct {
	directed bool
	numV     int
	edges    []Edge
	dead     []EdgeID
}

// NewBuilder returns a Builder for a graph with n vertices numbered 0..n-1.
// If directed is false, each added edge is traversable in both directions and
// shares one weight.
func NewBuilder(n int, directed bool) *Builder {
	return &Builder{directed: directed, numV: n}
}

// AddEdge adds an edge from u to v with the given non-negative weight.
// It returns the EdgeID the edge will have in the built graph.
func (b *Builder) AddEdge(u, v VertexID, w float64) (EdgeID, error) {
	if u < 0 || int(u) >= b.numV || v < 0 || int(v) >= b.numV {
		return NoEdge, fmt.Errorf("graph: edge (%d,%d) references vertex outside [0,%d)", u, v, b.numV)
	}
	if u == v {
		return NoEdge, fmt.Errorf("graph: self-loop on vertex %d not allowed", u)
	}
	if w < 0 {
		return NoEdge, fmt.Errorf("graph: negative weight %g on edge (%d,%d)", w, u, v)
	}
	id := EdgeID(len(b.edges))
	b.edges = append(b.edges, Edge{U: u, V: v, Weight: w})
	return id, nil
}

// NumEdges reports the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// MarkDead records that edge id, already added via AddEdge, is a tombstone:
// the built graph keeps its endpoints and weights (so ids round-trip through
// serialization) but excludes it from adjacency and rejects weight updates
// on it.  Used when decoding snapshots of graphs that have seen topology
// deletions.
func (b *Builder) MarkDead(id EdgeID) error {
	if id < 0 || int(id) >= len(b.edges) {
		return fmt.Errorf("graph: MarkDead edge %d outside [0,%d)", id, len(b.edges))
	}
	b.dead = append(b.dead, id)
	return nil
}

// Build constructs the Graph.  The Builder may be reused afterwards, but
// edges added later do not affect already built graphs.
func (b *Builder) Build() *Graph {
	g := &Graph{
		directed: b.directed,
		numV:     b.numV,
		ends:     make([]Endpoints, len(b.edges)),
		initW:    make([]float64, len(b.edges)),
		weights:  make([]float64, len(b.edges)),
	}
	for i, e := range b.edges {
		g.ends[i] = Endpoints{U: e.U, V: e.V}
		g.initW[i] = e.Weight
		g.weights[i] = e.Weight
	}
	if len(b.dead) > 0 {
		g.alive = make([]bool, len(b.edges))
		for i := range g.alive {
			g.alive[i] = true
		}
		for _, id := range b.dead {
			g.alive[id] = false
		}
	}
	g.rebuildAdjacency()
	return g
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.numV }

// NumEdges returns the number of edge ids, including tombstones of deleted
// edges.  Use NumLiveEdges for the count of traversable edges.
func (g *Graph) NumEdges() int { return len(g.ends) }

// NumLiveEdges returns the number of live (non-deleted) edges.
func (g *Graph) NumLiveEdges() int { return g.numLive }

// EdgeAlive reports whether edge e exists and has not been deleted by a
// topology update.
func (g *Graph) EdgeAlive(e EdgeID) bool {
	if e < 0 || int(e) >= len(g.ends) {
		return false
	}
	return g.alive == nil || g.alive[e]
}

// Neighbors returns the adjacency list of v.  The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(v VertexID) []Arc {
	return g.adj[v]
}

// Degree returns the number of arcs leaving v.
func (g *Graph) Degree(v VertexID) int { return len(g.adj[v]) }

// EdgeEndpoints returns the endpoints of edge e.
func (g *Graph) EdgeEndpoints(e EdgeID) Endpoints { return g.ends[e] }

// EdgeBetween returns the edge connecting u and v, if any.  For directed
// graphs only the u->v direction is considered.
func (g *Graph) EdgeBetween(u, v VertexID) (EdgeID, bool) {
	for _, a := range g.adj[u] {
		if a.To == v {
			return a.Edge, true
		}
	}
	return NoEdge, false
}

// InitialWeight returns the initial weight w0 of edge e (the weight at index
// construction time, which defines the number of virtual fragments).
func (g *Graph) InitialWeight(e EdgeID) float64 { return g.initW[e] }

// Weight returns the current weight of edge e.
func (g *Graph) Weight(e EdgeID) float64 {
	g.mu.RLock()
	w := g.weights[e]
	g.mu.RUnlock()
	return w
}

// Version returns the current weight version.  The version increases by one
// for every successful UpdateWeight or ApplyUpdates call.
func (g *Graph) Version() uint64 {
	g.mu.RLock()
	v := g.version
	g.mu.RUnlock()
	return v
}

// WeightUpdate describes a change of a single edge weight to a new absolute
// value.
type WeightUpdate struct {
	Edge      EdgeID
	NewWeight float64
}

// UpdateWeight sets the weight of edge e to w.  It returns the signed change
// Δw relative to the previous weight.
func (g *Graph) UpdateWeight(e EdgeID, w float64) (float64, error) {
	if w < 0 {
		return 0, fmt.Errorf("graph: negative weight %g for edge %d", w, e)
	}
	if e < 0 || int(e) >= len(g.ends) {
		return 0, fmt.Errorf("graph: edge %d out of range [0,%d)", e, len(g.ends))
	}
	if !g.EdgeAlive(e) {
		return 0, fmt.Errorf("graph: weight update on deleted edge %d", e)
	}
	g.mu.Lock()
	delta := w - g.weights[e]
	g.weights[e] = w
	g.version++
	g.mu.Unlock()
	return delta, nil
}

// ApplyUpdates applies a batch of weight updates atomically with respect to
// Snapshot: a snapshot observes either all or none of the batch.
func (g *Graph) ApplyUpdates(batch []WeightUpdate) error {
	for _, u := range batch {
		if u.NewWeight < 0 {
			return fmt.Errorf("graph: negative weight %g for edge %d", u.NewWeight, u.Edge)
		}
		if u.Edge < 0 || int(u.Edge) >= len(g.ends) {
			return fmt.Errorf("graph: edge %d out of range [0,%d)", u.Edge, len(g.ends))
		}
		if !g.EdgeAlive(u.Edge) {
			return fmt.Errorf("graph: weight update on deleted edge %d", u.Edge)
		}
	}
	g.mu.Lock()
	for _, u := range batch {
		g.weights[u.Edge] = u.NewWeight
	}
	g.version++
	g.mu.Unlock()
	return nil
}

// Snapshot returns an immutable, consistent view of the current edge weights
// together with the graph topology.  This models the buffer G_curr of the
// paper: queries are answered against the most recent snapshot.
func (g *Graph) Snapshot() *Snapshot {
	g.mu.RLock()
	w := make([]float64, len(g.weights))
	copy(w, g.weights)
	v := g.version
	g.mu.RUnlock()
	return &Snapshot{g: g, weights: w, version: v}
}

// Edges returns a copy of all edges with their current weights, sorted by
// EdgeID.  Intended for diagnostics and serialization, not hot paths.
func (g *Graph) Edges() []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Edge, len(g.ends))
	for i, e := range g.ends {
		out[i] = Edge{U: e.U, V: e.V, Weight: g.weights[i]}
	}
	return out
}

// Snapshot is a read-only consistent view of the graph weights at a point in
// time.  Snapshots share the (immutable) topology with the parent graph and
// are safe for concurrent use.
type Snapshot struct {
	g       *Graph
	weights []float64
	version uint64
}

// Directed reports whether the underlying graph is directed.
func (s *Snapshot) Directed() bool { return s.g.directed }

// NumVertices returns the number of vertices.
func (s *Snapshot) NumVertices() int { return s.g.numV }

// NumEdges returns the number of edges.
func (s *Snapshot) NumEdges() int { return len(s.weights) }

// Version returns the graph weight version this snapshot was taken at.
func (s *Snapshot) Version() uint64 { return s.version }

// Neighbors returns the adjacency list of v.
func (s *Snapshot) Neighbors(v VertexID) []Arc { return s.g.adj[v] }

// Weight returns the weight of edge e in this snapshot.
func (s *Snapshot) Weight(e EdgeID) float64 { return s.weights[e] }

// InitialWeight returns the initial weight w0 of edge e.
func (s *Snapshot) InitialWeight(e EdgeID) float64 { return s.g.initW[e] }

// EdgeEndpoints returns the endpoints of edge e.
func (s *Snapshot) EdgeEndpoints(e EdgeID) Endpoints { return s.g.ends[e] }

// EdgeBetween returns the edge connecting u and v, if any.
func (s *Snapshot) EdgeBetween(u, v VertexID) (EdgeID, bool) { return s.g.EdgeBetween(u, v) }

// EdgeAlive reports whether edge e exists and has not been deleted.
func (s *Snapshot) EdgeAlive(e EdgeID) bool { return s.g.EdgeAlive(e) }

// Graph returns the parent graph of this snapshot.
func (s *Snapshot) Graph() *Graph { return s.g }

// WeightedView is the read interface shared by Graph and Snapshot; algorithms
// that only need to read the graph accept a WeightedView so they can operate
// on either.
type WeightedView interface {
	Directed() bool
	NumVertices() int
	NumEdges() int
	Neighbors(v VertexID) []Arc
	Weight(e EdgeID) float64
	InitialWeight(e EdgeID) float64
	EdgeEndpoints(e EdgeID) Endpoints
	EdgeBetween(u, v VertexID) (EdgeID, bool)
}

var (
	_ WeightedView = (*Graph)(nil)
	_ WeightedView = (*Snapshot)(nil)
)

// SortedArcs returns the arcs of v ordered by destination vertex.  It
// allocates; use Neighbors on hot paths.
func SortedArcs(v WeightedView, u VertexID) []Arc {
	arcs := append([]Arc(nil), v.Neighbors(u)...)
	sort.Slice(arcs, func(i, j int) bool { return arcs[i].To < arcs[j].To })
	return arcs
}
