package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kspdg/internal/cluster"
	"kspdg/internal/dtlp"
	"kspdg/internal/partition"
	"kspdg/internal/serve"
	"kspdg/internal/trace"
	"kspdg/internal/workload"
)

// tracesResponse mirrors handleTraces's JSON envelope.
type tracesResponse struct {
	Started  uint64            `json:"traces_started"`
	Retained uint64            `json:"traces_retained"`
	Traces   []trace.TraceView `json:"traces"`
}

// TestEndToEndTraceWithFailover is the tracing acceptance path: a real TCP
// replicated deployment (2 workers, factor 2) fronted by serve + gateway,
// with worker 0 killed before the first query.  The query that routes a
// batch to the dead primary must fail over — and the single trace retrieved
// from /debug/traces must stitch the whole journey together: gateway
// admission, queue wait, engine iterations, shipped rpc batches, the
// failover leg, and the surviving worker's grafted execution spans.
func TestEndToEndTraceWithFailover(t *testing.T) {
	ds, err := workload.BuiltinDataset("NY", workload.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.PartitionGraph(ds.Graph, ds.DefaultZ)
	if err != nil {
		t.Fatal(err)
	}
	index, err := dtlp.Build(part, dtlp.Config{Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 2
	table, err := cluster.AssignReplicas(part, workers, 2)
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*cluster.Server, workers)
	remotes := make([]*cluster.RemoteWorker, workers)
	for w := 0; w < workers; w++ {
		worker := cluster.NewWorker(w, part, table.OwnedBy(w))
		worker.SetViewResolver(index.ViewAt)
		srv, err := cluster.Serve("127.0.0.1:0", worker)
		if err != nil {
			t.Fatal(err)
		}
		servers[w] = srv
		rw, err := cluster.DialPool(srv.Addr(), cluster.ClientOptions{PoolSize: 2})
		if err != nil {
			t.Fatal(err)
		}
		remotes[w] = rw
	}
	rp, err := cluster.NewReplicatedRemoteProvider(remotes, part, table, cluster.ReplicatedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(index, rp, serve.Options{Workers: 4})
	tracer := trace.New(trace.Options{Capacity: 64, SampleRate: 1})
	gw := New(srv, Options{Tracer: tracer})
	ts := httptest.NewServer(gw)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		rp.Close()
		for w := 1; w < workers; w++ {
			remotes[w].Close()
			servers[w].Close()
		}
		remotes[0].Close()
	})

	// Chaos: kill worker 0's listener and connections.  Factor 2 means every
	// subgraph survives on worker 1, so queries must keep answering — via
	// the failover path whenever a batch routes to the dead primary.
	servers[0].Close()

	// Issue queries until one trips the failover path (the first one whose
	// pairs' common subgraphs have worker 0 as primary — membership only
	// learns about the death from data-path failures, so this is the first
	// batch actually sent to worker 0).
	var debugID string
	pairs := [][2]int{{3, 100}, {5, 90}, {1, 50}, {7, 120}, {11, 33}, {42, 77}}
	for _, pr := range pairs {
		body := fmt.Sprintf(`{"source":%d,"target":%d,"k":3}`, pr[0], pr[1])
		resp, err := http.Post(ts.URL+"/v1/ksp?debug=1", "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out queryResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %v: status %d", pr, resp.StatusCode)
		}
		if out.Trace == nil || out.Trace.ID == "" {
			t.Fatalf("query %v: ?debug=1 response carries no trace block", pr)
		}
		if len(out.Trace.Stages) == 0 {
			t.Fatalf("query %v: debug trace has no stage breakdown", pr)
		}
		if rp.FailoverStats().Failovers > 0 {
			debugID = out.Trace.ID
			break
		}
	}
	if debugID == "" {
		t.Fatalf("no query failed over with worker 0 dead (failover stats: %+v)", rp.FailoverStats())
	}

	// Retrieve the failed-over query's trace from /debug/traces and check it
	// covers every layer of the pipeline.
	resp, err := http.Get(ts.URL + "/debug/traces?n=64")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces status %d", resp.StatusCode)
	}
	var tr tracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.Started == 0 || tr.Retained == 0 {
		t.Fatalf("tracer stats empty: started=%d retained=%d", tr.Started, tr.Retained)
	}
	var view *trace.TraceView
	for i := range tr.Traces {
		if tr.Traces[i].ID == debugID {
			view = &tr.Traces[i]
			break
		}
	}
	if view == nil {
		t.Fatalf("trace %s not retained (got %d traces)", debugID, len(tr.Traces))
	}

	flagged := false
	for _, f := range view.Flags {
		if f == "failedover" {
			flagged = true
		}
	}
	if !flagged {
		t.Errorf("failed-over trace missing the failedover flag: %v", view.Flags)
	}
	names := map[string]bool{}
	for _, s := range view.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{
		"request",     // gateway root
		"admission",   // rate limit + slot acquisition
		"queue",       // serve queue wait
		"execute",     // engine run
		"filter",      // DTLP filter step
		"refine",      // partial-KSP refine iterations
		"rpc_wait",    // batcher coalesce wait
		"rpc_batch",   // shipped cross-query batch
		"rpc",         // one transport call
		"failover",    // the replica re-dispatch leg
		"worker_exec", // grafted from the surviving worker
	} {
		if !names[want] {
			t.Errorf("trace %s missing span %q (spans: %v)", debugID, want, spanNames(view))
		}
	}
	// Stage aggregation must cover the same pipeline.
	for _, want := range []string{"request", "queue", "execute", "refine"} {
		if _, ok := view.Stages[want]; !ok {
			t.Errorf("trace %s stages missing %q: %v", debugID, want, view.Stages)
		}
	}
}

func spanNames(v *trace.TraceView) []string {
	var out []string
	for _, s := range v.Spans {
		out = append(out, s.Name)
	}
	return out
}
