// Package gateway is the HTTP front door of a kspd deployment: the JSON API
// external clients call, with the serving-layer discipline a production
// system needs in front of the query engine — per-API-key token-bucket rate
// limiting, priority classes with bounded deadline-aware admission queues,
// end-to-end deadline propagation (HTTP timeout header → context → engine
// iteration loop), and first-class observability through a hand-rolled
// Prometheus-text metrics registry.
//
// Routes:
//
//	POST /v1/ksp         one KSP query (optionally epoch-pinned), JSON in/out
//	GET  /v1/ksp/stream  the same query streamed as NDJSON, paths emitted as
//	                     the engine settles them
//	POST /v1/updates     a batched edge-weight update
//	POST /v1/topology    a batched topology mutation (edge/vertex insert
//	                     and delete) with incremental index maintenance
//	GET  /healthz        liveness + epoch + worker membership counts
//	GET  /metrics        Prometheus text exposition
//	GET  /debug/traces   retained query traces (see internal/trace), newest
//	                     first; ?n= bounds the count
//	GET  /debug/pprof/*  Go profiling endpoints (only with Options.EnablePprof)
//
// With Options.Tracer set, every admitted request runs under a trace whose
// root "request" span is carried on the request context, so the serve layer,
// engine and cluster transport hang their queue/iteration/rpc/worker spans
// beneath it.  Appending ?debug=1 to /v1/ksp adds the trace id and per-stage
// breakdown to the JSON response.
//
// Status codes: 400 malformed/out-of-range input, 404 unknown route, 409 a
// topology delete referenced an already-deleted edge, 410 a pinned epoch aged
// out of the retention window, 429 rate limited (with Retry-After), 503
// admission queue full, 504 deadline expired (shed while queued, or
// mid-execution).
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"kspdg/internal/cluster"
	"kspdg/internal/core"
	"kspdg/internal/graph"
	"kspdg/internal/metrics"
	"kspdg/internal/serve"
	"kspdg/internal/trace"
)

// Options configures a Gateway.
type Options struct {
	// Rate is the per-API-key admission rate in requests/second; Burst is the
	// bucket depth.  Zero Rate means 100/s; negative disables rate limiting.
	// Zero Burst means max(1, Rate).
	Rate  float64
	Burst int
	// InteractiveSlots and BatchSlots bound the concurrently executing
	// requests per priority class (zero: 16 and 4).  QueueDepth bounds the
	// number waiting for a slot per class (zero: 4x the class's slots).
	InteractiveSlots int
	BatchSlots       int
	QueueDepth       int
	// DefaultTimeout is applied to requests without a Request-Timeout-Ms
	// header; zero means no default.  MaxTimeout caps any client-requested
	// timeout; zero means 60s.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxK bounds the k a query may request (zero: 64).
	MaxK int
	// MaxUpdateBatch bounds the updates accepted per /v1/updates call
	// (zero: 65536).
	MaxUpdateBatch int
	// MaxTopologyBatch bounds the total mutation count (added vertices +
	// inserted edges + deleted edges + deleted vertices) accepted per
	// /v1/topology call (zero: 4096).  Topology batches rebuild bounding
	// paths for every touched subgraph, so they are orders of magnitude more
	// expensive than weight updates and get a tighter default.
	MaxTopologyBatch int
	// Registry receives the gateway's metrics and serves /metrics.  Nil
	// creates a private registry.
	Registry *metrics.Registry
	// Membership, when set, exports worker health states on /healthz and
	// /metrics (kspd passes the replicated provider's failure detector).
	Membership *cluster.Membership
	// WorkerParallelism, when positive, is exported as the
	// kspd_worker_parallelism gauge: the partial-KSP executor width the
	// deployment runs its workers at (kspd passes the resolved
	// -worker-parallelism value).
	WorkerParallelism int
	// Tracer, when set, traces every admitted request and serves the retained
	// traces on GET /debug/traces.  Nil disables tracing entirely (requests
	// pay one context lookup per stage and nothing else).
	Tracer *trace.Tracer
	// EnablePprof mounts net/http/pprof's profiling handlers under
	// /debug/pprof/ on the gateway mux (kspd's -pprof flag).
	EnablePprof bool
	// now overrides the rate limiter's clock in tests.
	now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Rate == 0 {
		o.Rate = 100
	}
	if o.InteractiveSlots <= 0 {
		o.InteractiveSlots = 16
	}
	if o.BatchSlots <= 0 {
		o.BatchSlots = 4
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 60 * time.Second
	}
	if o.MaxK <= 0 {
		o.MaxK = 64
	}
	if o.MaxUpdateBatch <= 0 {
		o.MaxUpdateBatch = 65536
	}
	if o.MaxTopologyBatch <= 0 {
		o.MaxTopologyBatch = 4096
	}
	if o.Registry == nil {
		o.Registry = metrics.NewRegistry()
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// Gateway is the HTTP handler fronting one serve.Server.
type Gateway struct {
	srv     *serve.Server
	opts    Options
	reg     *metrics.Registry
	mux     *http.ServeMux
	limiter *rateLimiter
	classes [numClasses]*admitter

	requests    *metrics.CounterVec
	latency     *metrics.HistogramVec
	rateLimited *metrics.Counter
	queueShed   *metrics.CounterVec
	queueFull   *metrics.CounterVec
	disconnects *metrics.Counter
	streamed    *metrics.Counter
}

// New builds a gateway over the server and registers every metric family.
func New(srv *serve.Server, opts Options) *Gateway {
	opts = opts.withDefaults()
	g := &Gateway{
		srv:     srv,
		opts:    opts,
		reg:     opts.Registry,
		limiter: newRateLimiter(opts.Rate, opts.Burst, opts.now),
	}
	for c := class(0); c < numClasses; c++ {
		slots := opts.InteractiveSlots
		if c == classBatch {
			slots = opts.BatchSlots
		}
		depth := opts.QueueDepth
		if depth <= 0 {
			depth = 4 * slots
		}
		g.classes[c] = newAdmitter(slots, depth)
	}
	g.registerMetrics()
	g.mux = http.NewServeMux()
	g.mux.Handle("POST /v1/ksp", g.admitted("/v1/ksp", g.handleQuery))
	g.mux.Handle("GET /v1/ksp/stream", g.admitted("/v1/ksp/stream", g.handleStream))
	g.mux.Handle("POST /v1/updates", g.admitted("/v1/updates", g.handleUpdates))
	g.mux.Handle("POST /v1/topology", g.admitted("/v1/topology", g.handleTopology))
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.Handle("GET /metrics", g.reg.Handler())
	g.mux.HandleFunc("GET /debug/traces", g.handleTraces)
	if opts.EnablePprof {
		g.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		g.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		g.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		g.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		g.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return g
}

// Registry returns the gateway's metrics registry.
func (g *Gateway) Registry() *metrics.Registry { return g.reg }

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// ---- admission wrapper ----

// statusRecorder captures the status a handler wrote so the wrapper can
// label its metrics, including for streaming handlers that write the header
// long before they finish.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so NDJSON streaming flushes reach
// the client even through the recorder.
func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// admitted wraps a handler with the full admission pipeline: rate limit,
// deadline derivation, priority classification, bounded deadline-aware
// queueing, and per-route metrics.
func (g *Gateway) admitted(route string, h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w}
		tr, root := g.opts.Tracer.StartTrace("request")
		if root != nil {
			root.SetAttr("route", route)
			r = r.WithContext(trace.NewContext(r.Context(), root))
		}
		g.serveAdmitted(sr, r, route, h)
		if sr.status == 0 {
			sr.status = http.StatusOK
		}
		if tr != nil {
			root.SetAttrInt("status", int64(sr.status))
			switch {
			case sr.status == 499 || sr.status == http.StatusGatewayTimeout:
				tr.MarkCanceled()
			case sr.status >= 500:
				tr.MarkError()
			}
			tr.Finish()
		}
		g.requests.With(route, strconv.Itoa(sr.status)).Inc()
		g.latency.With(route).Observe(time.Since(start).Seconds())
	})
}

func (g *Gateway) serveAdmitted(w http.ResponseWriter, r *http.Request, route string, h func(http.ResponseWriter, *http.Request)) {
	// The admission span covers everything between arrival and the handler:
	// rate limiting, deadline derivation, and the wait for a class slot.
	aspan := trace.FromContext(r.Context()).Child("admission")
	defer aspan.Finish()
	if ok, retry := g.limiter.allow(apiKey(r)); !ok {
		g.rateLimited.Inc()
		aspan.SetAttr("rejected", "rate_limited")
		secs := int(retry/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("rate limit exceeded, retry in %ds", secs))
		return
	}

	ctx, cancel, err := g.requestContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	defer cancel()

	cl := requestClass(r)
	adm := g.classes[cl]
	if err := adm.acquire(ctx); err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			g.queueFull.With(cl.String()).Inc()
			writeError(w, http.StatusServiceUnavailable, "admission queue full")
		case errors.Is(err, context.Canceled):
			// The client hung up while queued: not an overload signal, so it
			// counts as a disconnect rather than a deadline shed.
			g.disconnects.Inc()
			writeError(w, 499, "client closed request")
		default:
			g.queueShed.With(cl.String()).Inc()
			writeError(w, http.StatusGatewayTimeout,
				"deadline expired before the request reached a worker")
		}
		return
	}
	defer adm.release()
	aspan.Finish() // admission ends at slot acquisition, not handler return
	h(w, r.WithContext(ctx))
}

// requestContext derives the request's context deadline from the
// Request-Timeout-Ms header (bounded by MaxTimeout) or DefaultTimeout.  An
// explicit zero header means the client has no time budget left — the
// context comes back already expired and admission sheds the request with
// 504 before it can reach a worker.
func (g *Gateway) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	ctx := r.Context()
	timeout := g.opts.DefaultTimeout
	if hdr := r.Header.Get("Request-Timeout-Ms"); hdr != "" {
		ms, err := strconv.ParseInt(hdr, 10, 64)
		if err != nil || ms < 0 {
			return nil, nil, fmt.Errorf("malformed Request-Timeout-Ms header %q", hdr)
		}
		if ms == 0 {
			ctx, cancel := context.WithDeadline(ctx, time.Unix(0, 0))
			return ctx, cancel, nil
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	if timeout <= 0 {
		ctx, cancel := context.WithCancel(ctx)
		return ctx, cancel, nil
	}
	if timeout > g.opts.MaxTimeout {
		timeout = g.opts.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, cancel, nil
}

func apiKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

func requestClass(r *http.Request) class {
	if r.Header.Get("X-Priority") == "batch" {
		return classBatch
	}
	return classInteractive
}

// ---- JSON shapes ----

type pathJSON struct {
	Vertices []graph.VertexID `json:"vertices"`
	Distance float64          `json:"distance"`
}

func toPathJSON(p graph.Path) pathJSON {
	return pathJSON{Vertices: p.Vertices, Distance: p.Dist}
}

type queryRequest struct {
	Source int64   `json:"source"`
	Target int64   `json:"target"`
	K      int     `json:"k"`
	Epoch  *uint64 `json:"epoch,omitempty"`
}

type queryResponse struct {
	Paths     []pathJSON `json:"paths"`
	Epoch     uint64     `json:"epoch"`
	Converged bool       `json:"converged"`
	// BoundGap is 0 for exact answers; positive when the adaptive iteration
	// budget terminated the search early, in which case every returned
	// distance is within BoundGap of its exact counterpart.
	BoundGap   float64 `json:"bound_gap,omitempty"`
	Iterations int     `json:"iterations"`
	ElapsedUs  int64   `json:"elapsed_us"`
	// Trace is present only for ?debug=1 requests on a tracing gateway: the
	// request's trace id (look it up on /debug/traces) and its per-stage
	// duration breakdown so far.
	Trace *traceDebugJSON `json:"trace,omitempty"`
}

type traceDebugJSON struct {
	ID     string             `json:"id"`
	Stages map[string]float64 `json:"stages_ms"`
}

type updateJSON struct {
	Edge   int64   `json:"edge"`
	Weight float64 `json:"weight"`
}

type updatesRequest struct {
	Updates []updateJSON `json:"updates"`
}

type updatesResponse struct {
	Applied int    `json:"applied"`
	Epoch   uint64 `json:"epoch"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

// ---- route handlers ----

// validateQuery bounds-checks the query against the graph so malformed input
// fails fast with 400 instead of surfacing as an engine error.
func (g *Gateway) validateQuery(q queryRequest) error {
	n := int64(g.srv.Index().Partition().Parent().NumVertices())
	if q.Source < 0 || q.Source >= n || q.Target < 0 || q.Target >= n {
		return fmt.Errorf("query endpoints (%d,%d) outside [0,%d)", q.Source, q.Target, n)
	}
	if q.K <= 0 || q.K > g.opts.MaxK {
		return fmt.Errorf("k must be in [1,%d], got %d", g.opts.MaxK, q.K)
	}
	return nil
}

// finishQueryError maps an execution error onto its HTTP status.
func (g *Gateway) finishQueryError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, serve.ErrEpochEvicted):
		writeError(w, http.StatusGone, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "deadline expired during query execution")
	case errors.Is(err, context.Canceled):
		// The client hung up; nobody is reading the response.  499 is the
		// de facto status for client-closed requests (it only reaches the
		// metrics label).
		g.disconnects.Inc()
		writeError(w, 499, "client closed request")
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request) {
	var q queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&q); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request body: "+err.Error())
		return
	}
	if err := g.validateQuery(q); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var res core.Result
	var err error
	if q.Epoch != nil {
		res, err = g.srv.QueryAt(r.Context(), *q.Epoch, graph.VertexID(q.Source), graph.VertexID(q.Target), q.K)
	} else {
		res, err = g.srv.QueryCtx(r.Context(), graph.VertexID(q.Source), graph.VertexID(q.Target), q.K)
	}
	if err != nil {
		g.finishQueryError(w, r, err)
		return
	}
	out := toQueryResponse(res)
	if r.URL.Query().Get("debug") == "1" {
		if tr := trace.FromContext(r.Context()).Trace(); tr != nil {
			stages := make(map[string]float64, 8)
			for name, d := range tr.Stages() {
				stages[name] = float64(d) / float64(time.Millisecond)
			}
			out.Trace = &traceDebugJSON{ID: trace.IDString(tr.ID()), Stages: stages}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func toQueryResponse(res core.Result) queryResponse {
	out := queryResponse{
		Paths:      make([]pathJSON, 0, len(res.Paths)),
		Epoch:      res.Epoch,
		Converged:  res.Converged,
		BoundGap:   res.BoundGap,
		Iterations: res.Iterations,
		ElapsedUs:  res.Elapsed.Microseconds(),
	}
	for _, p := range res.Paths {
		out.Paths = append(out.Paths, toPathJSON(p))
	}
	return out
}

// streamLine is one NDJSON record of /v1/ksp/stream: either a path or the
// terminal summary (Done=true).  Encoding always goes through pathLine or
// doneLine so a terminal line carries its epoch even when it is zero;
// streamLine is the decode shape clients (and tests) read either into.
type streamLine struct {
	Path       *pathJSON `json:"path,omitempty"`
	Done       bool      `json:"done,omitempty"`
	Epoch      uint64    `json:"epoch"`
	Converged  bool      `json:"converged"`
	BoundGap   float64   `json:"bound_gap,omitempty"`
	Paths      int       `json:"paths"`
	Iterations int       `json:"iterations"`
	Error      string    `json:"error,omitempty"`
}

type pathLine struct {
	Path pathJSON `json:"path"`
}

type doneLine struct {
	Done       bool    `json:"done"`
	Epoch      uint64  `json:"epoch"`
	Converged  bool    `json:"converged"`
	BoundGap   float64 `json:"bound_gap,omitempty"`
	Paths      int     `json:"paths"`
	Iterations int     `json:"iterations"`
	Error      string  `json:"error,omitempty"`
}

func (g *Gateway) handleStream(w http.ResponseWriter, r *http.Request) {
	q, err := streamParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := g.validateQuery(q); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Resolve a pinned epoch before committing to a 200: eviction must be a
	// clean 410, not a mid-stream error line.
	if q.Epoch != nil && g.srv.Index().ViewAt(*q.Epoch) == nil {
		writeError(w, http.StatusGone,
			fmt.Sprintf("epoch %d evicted from the retention window", *q.Epoch))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	yield := func(p graph.Path) error {
		// yield runs on the pool worker executing the query while this
		// handler goroutine blocks in StreamQuery, so writes never race.
		if err := enc.Encode(pathLine{Path: toPathJSON(p)}); err != nil {
			return fmt.Errorf("gateway: client write failed: %w", err)
		}
		if flusher != nil {
			flusher.Flush()
		}
		g.streamed.Inc()
		return nil
	}
	var res core.Result
	if q.Epoch != nil {
		res, err = g.srv.StreamQueryAt(r.Context(), *q.Epoch, graph.VertexID(q.Source), graph.VertexID(q.Target), q.K, yield)
	} else {
		res, err = g.srv.StreamQuery(r.Context(), graph.VertexID(q.Source), graph.VertexID(q.Target), q.K, yield)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			g.disconnects.Inc()
			return // the client is gone; nothing to tell it
		}
		// The header is already out; the NDJSON contract is a terminal error
		// line instead of a status code.
		_ = enc.Encode(doneLine{Done: true, Error: err.Error()})
		return
	}
	_ = enc.Encode(doneLine{
		Done:       true,
		Epoch:      res.Epoch,
		Converged:  res.Converged,
		BoundGap:   res.BoundGap,
		Paths:      len(res.Paths),
		Iterations: res.Iterations,
	})
	if flusher != nil {
		flusher.Flush()
	}
}

func streamParams(r *http.Request) (queryRequest, error) {
	var q queryRequest
	vals := r.URL.Query()
	var err error
	if q.Source, err = strconv.ParseInt(vals.Get("source"), 10, 64); err != nil {
		return q, fmt.Errorf("malformed source %q", vals.Get("source"))
	}
	if q.Target, err = strconv.ParseInt(vals.Get("target"), 10, 64); err != nil {
		return q, fmt.Errorf("malformed target %q", vals.Get("target"))
	}
	if q.K, err = strconv.Atoi(vals.Get("k")); err != nil {
		return q, fmt.Errorf("malformed k %q", vals.Get("k"))
	}
	if e := vals.Get("epoch"); e != "" {
		epoch, err := strconv.ParseUint(e, 10, 64)
		if err != nil {
			return q, fmt.Errorf("malformed epoch %q", e)
		}
		q.Epoch = &epoch
	}
	return q, nil
}

func (g *Gateway) handleUpdates(w http.ResponseWriter, r *http.Request) {
	var req updatesRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request body: "+err.Error())
		return
	}
	if len(req.Updates) == 0 {
		writeError(w, http.StatusBadRequest, "empty update batch")
		return
	}
	if len(req.Updates) > g.opts.MaxUpdateBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("update batch of %d exceeds the %d limit", len(req.Updates), g.opts.MaxUpdateBatch))
		return
	}
	vspan := trace.FromContext(r.Context()).Child("validate")
	defer vspan.Finish() // first Finish wins; this only covers early returns
	numEdges := int64(g.srv.Index().Partition().Parent().NumEdges())
	batch := make([]graph.WeightUpdate, 0, len(req.Updates))
	for _, u := range req.Updates {
		if u.Edge < 0 || u.Edge >= numEdges {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("edge %d outside [0,%d)", u.Edge, numEdges))
			return
		}
		if u.Weight <= 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("edge %d: weight must be positive, got %v", u.Edge, u.Weight))
			return
		}
		batch = append(batch, graph.WeightUpdate{Edge: graph.EdgeID(u.Edge), NewWeight: u.Weight})
	}
	vspan.Finish()
	// The epoch comes from the apply itself: a concurrent writer may publish
	// further epochs before this response is written, and a client pinning
	// follow-up reads to the returned epoch must get its own batch's weights.
	epoch, err := g.srv.ApplyUpdatesEpochCtx(r.Context(), batch)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, updatesResponse{
		Applied: len(batch),
		Epoch:   epoch,
	})
}

// ---- topology ----

type insertEdgeJSON struct {
	U      int64   `json:"u"`
	V      int64   `json:"v"`
	Weight float64 `json:"weight"`
}

type topologyRequest struct {
	AddVertices    int              `json:"add_vertices,omitempty"`
	InsertEdges    []insertEdgeJSON `json:"insert_edges,omitempty"`
	DeleteEdges    []int64          `json:"delete_edges,omitempty"`
	DeleteVertices []int64          `json:"delete_vertices,omitempty"`
}

type topologyResponse struct {
	Epoch uint64 `json:"epoch"`
	// InsertedEdges are the global edge ids assigned to insert_edges, in
	// request order; clients reference them in later weight updates and
	// deletes.  DeletedEdges are the sorted ids of every edge the batch
	// removed, including edges removed because an endpoint was deleted.
	InsertedEdges    []graph.EdgeID `json:"inserted_edges"`
	DeletedEdges     []graph.EdgeID `json:"deleted_edges"`
	SubgraphsRebuilt int            `json:"subgraphs_rebuilt"`
}

func (g *Gateway) handleTopology(w http.ResponseWriter, r *http.Request) {
	var req topologyRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request body: "+err.Error())
		return
	}
	size := req.AddVertices + len(req.InsertEdges) + len(req.DeleteEdges) + len(req.DeleteVertices)
	if size == 0 {
		writeError(w, http.StatusBadRequest, "empty topology batch")
		return
	}
	if req.AddVertices < 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("add_vertices must be non-negative, got %d", req.AddVertices))
		return
	}
	if size > g.opts.MaxTopologyBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("topology batch of %d mutations exceeds the %d limit", size, g.opts.MaxTopologyBatch))
		return
	}
	// Validation runs against the pre-batch graph exactly like the engine's
	// own checks, so malformed input fails with 400 before touching the
	// writer path.  Inserted endpoints may reference vertices this same
	// batch adds.
	vspan := trace.FromContext(r.Context()).Child("validate")
	defer vspan.Finish() // first Finish wins; this only covers early returns
	parent := g.srv.Index().Partition().Parent()
	numV := int64(parent.NumVertices()) + int64(req.AddVertices)
	numE := int64(parent.NumEdges())
	up := graph.TopologyUpdate{AddVertices: req.AddVertices}
	for i, e := range req.InsertEdges {
		if e.U < 0 || e.U >= numV || e.V < 0 || e.V >= numV {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("insert_edges[%d] endpoints (%d,%d) outside [0,%d)", i, e.U, e.V, numV))
			return
		}
		if e.U == e.V {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("insert_edges[%d] is a self-loop on vertex %d", i, e.U))
			return
		}
		if e.Weight <= 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("insert_edges[%d]: weight must be positive, got %v", i, e.Weight))
			return
		}
		up.InsertEdges = append(up.InsertEdges, graph.Edge{
			U: graph.VertexID(e.U), V: graph.VertexID(e.V), Weight: e.Weight,
		})
	}
	for i, e := range req.DeleteEdges {
		if e < 0 || e >= numE {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("delete_edges[%d] id %d outside [0,%d)", i, e, numE))
			return
		}
		up.DeleteEdges = append(up.DeleteEdges, graph.EdgeID(e))
	}
	for i, v := range req.DeleteVertices {
		if v < 0 || v >= numV {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("delete_vertices[%d] id %d outside [0,%d)", i, v, numV))
			return
		}
		up.DeleteVertices = append(up.DeleteVertices, graph.VertexID(v))
	}
	vspan.Finish()
	// The epoch, edge-id assignments and rebuild count come from the apply
	// itself, so a client interleaved with concurrent writers attributes its
	// own batch exactly (mirrors /v1/updates).  Deleting an already-dead edge
	// is a state conflict, not malformed input, so it surfaces as 409.
	st, err := g.srv.ApplyTopologyStatsCtx(r.Context(), up)
	if err != nil {
		if strings.Contains(err.Error(), "already deleted") {
			writeError(w, http.StatusConflict, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	ins := st.InsertedEdges
	if ins == nil {
		ins = []graph.EdgeID{}
	}
	del := st.DeletedEdges
	if del == nil {
		del = []graph.EdgeID{}
	}
	writeJSON(w, http.StatusOK, topologyResponse{
		Epoch:            st.Epoch,
		InsertedEdges:    ins,
		DeletedEdges:     del,
		SubgraphsRebuilt: st.SubgraphsRebuilt,
	})
}

type healthResponse struct {
	Status  string         `json:"status"`
	Epoch   uint64         `json:"epoch"`
	Workers map[string]int `json:"workers,omitempty"`
}

// handleTraces serves the retained traces, newest first.  ?n= bounds how many
// are returned (default 32).  Without a tracer the list is empty.
func (g *Gateway) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 32
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed n %q", s))
			return
		}
		n = v
	}
	views := g.opts.Tracer.Snapshot(n)
	if views == nil {
		views = []trace.TraceView{}
	}
	started, retained := g.opts.Tracer.Stats()
	writeJSON(w, http.StatusOK, struct {
		Started  uint64            `json:"traces_started"`
		Retained uint64            `json:"traces_retained"`
		Traces   []trace.TraceView `json:"traces"`
	}{started, retained, views})
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := healthResponse{Status: "ok", Epoch: g.srv.Stats().Epoch}
	if g.opts.Membership != nil {
		up, suspect, down := g.opts.Membership.Counts()
		h.Workers = map[string]int{"up": up, "suspect": suspect, "down": down}
	}
	writeJSON(w, http.StatusOK, h)
}

// ---- metrics wiring ----

// registerMetrics installs the gateway's own families plus scrape-time
// bridges to the serve layer's scheduling counters, the refine transport's
// batching/failover counters, and (when provided) worker membership.
func (g *Gateway) registerMetrics() {
	r := g.reg
	g.requests = r.CounterVec("gateway_requests_total",
		"HTTP requests by route and status code.", "route", "code")
	g.latency = r.HistogramVec("gateway_request_seconds",
		"End-to-end request latency by route, including queue wait.", nil, "route")
	g.rateLimited = r.Counter("gateway_rate_limited_total",
		"Requests rejected with 429 by the per-key token bucket.")
	g.queueShed = r.CounterVec("gateway_queue_shed_total",
		"Requests shed with 504 because their deadline expired while queued.", "class")
	g.queueFull = r.CounterVec("gateway_queue_full_total",
		"Requests rejected with 503 because the class admission queue was full.", "class")
	g.disconnects = r.Counter("gateway_client_disconnects_total",
		"Requests abandoned because the client hung up mid-flight.")
	g.streamed = r.Counter("gateway_streamed_paths_total",
		"Paths emitted on /v1/ksp/stream before query completion.")
	for c := class(0); c < numClasses; c++ {
		c := c
		r.GaugeFunc("gateway_inflight_"+c.String(),
			"Currently executing "+c.String()+" requests.",
			func() float64 { return float64(g.classes[c].inFlight()) })
		r.GaugeFunc("gateway_queued_"+c.String(),
			"Requests waiting for a "+c.String()+" slot.",
			func() float64 { return float64(g.classes[c].queued()) })
	}

	stats := func(f func(serve.Stats) int64) func() float64 {
		return func() float64 { return float64(f(g.srv.Stats())) }
	}
	r.GaugeFunc("kspd_epoch", "Current index epoch.",
		func() float64 { return float64(g.srv.Stats().Epoch) })
	r.CounterFunc("kspd_queries_served_total", "Completed queries, including cache hits.",
		stats(func(s serve.Stats) int64 { return s.QueriesServed }))
	r.CounterFunc("kspd_cache_hits_total", "Queries answered from the epoch-tagged result cache.",
		stats(func(s serve.Stats) int64 { return s.CacheHits }))
	r.CounterFunc("kspd_coalesced_queries_total", "Queries that joined an identical in-flight query.",
		stats(func(s serve.Stats) int64 { return s.Coalesced }))
	r.CounterFunc("kspd_nonconverged_queries_total",
		"Queries cut off with fewer than k proven candidates (possibly truncated results).",
		stats(func(s serve.Stats) int64 { return s.NonConverged }))
	r.CounterFunc("kspd_budget_terminated_total",
		"Queries the adaptive iteration budget terminated early with a near-exact answer (k paths within a reported bound gap).",
		stats(func(s serve.Stats) int64 { return s.BudgetTerminated }))
	r.GaugeFunc("kspd_max_bound_gap",
		"Largest bound gap observed across budget-terminated queries since start.",
		func() float64 { return g.srv.Stats().MaxBoundGap })
	r.CounterFunc("kspd_canceled_queries_total",
		"Queries abandoned by cancellation or deadline expiry.",
		stats(func(s serve.Stats) int64 { return s.Canceled }))
	r.CounterFunc("kspd_update_batches_total", "Weight-update batches applied.",
		stats(func(s serve.Stats) int64 { return s.UpdateBatches }))
	r.CounterFunc("kspd_updates_applied_total", "Individual edge-weight updates applied.",
		stats(func(s serve.Stats) int64 { return s.UpdatesApplied }))
	r.CounterFunc("kspd_topology_batches_total", "Topology mutation batches applied.",
		stats(func(s serve.Stats) int64 { return s.TopologyBatches }))
	r.CounterFunc("kspd_subgraphs_rebuilt_total",
		"Subgraph index rebuilds performed by topology batches (incremental maintenance cost).",
		stats(func(s serve.Stats) int64 { return s.SubgraphsRebuilt }))
	r.CounterFunc("kspd_snapshots_total", "Periodic index snapshots written.",
		stats(func(s serve.Stats) int64 { return s.Snapshots }))
	r.CounterFunc("kspd_rpc_batches_total", "Coalesced partial-KSP batches shipped to workers.",
		stats(func(s serve.Stats) int64 { return s.RPCBatches }))
	r.CounterFunc("kspd_rpc_pairs_coalesced_total", "Pair requests that shared a batch with another query.",
		stats(func(s serve.Stats) int64 { return s.PairsCoalesced }))
	r.CounterFunc("kspd_rpc_dedup_hits_total", "Pair requests answered by an identical pending pair.",
		stats(func(s serve.Stats) int64 { return s.DedupHits }))
	r.CounterFunc("kspd_rpc_pair_memo_hits_total", "Pair requests answered from the epoch-pinned pair memo.",
		stats(func(s serve.Stats) int64 { return s.PairCacheHits }))
	r.CounterFunc("kspd_failovers_total", "Partial-KSP batches re-dispatched to replicas after a primary failure.",
		stats(func(s serve.Stats) int64 { return s.Failovers }))
	r.CounterFunc("kspd_hedged_batches_total", "Speculative replica dispatches fired for slow primaries.",
		stats(func(s serve.Stats) int64 { return s.HedgedBatches }))
	r.CounterFunc("kspd_hedge_wins_total", "Hedged dispatches whose answer beat the primary.",
		stats(func(s serve.Stats) int64 { return s.HedgeWins }))
	r.CounterFunc("kspd_hedge_drops_total", "Duplicate hedge-race replies discarded.",
		stats(func(s serve.Stats) int64 { return s.HedgeDrops }))
	if g.opts.WorkerParallelism > 0 {
		par := float64(g.opts.WorkerParallelism)
		r.GaugeFunc("kspd_worker_parallelism",
			"Partial-KSP executor width per worker (goroutines one request fans out across).",
			func() float64 { return par })
	}
	if g.opts.Membership != nil {
		r.GaugeVecFunc("kspd_workers", "Worker count by membership health state.",
			"state", []string{"up", "suspect", "down"}, func() []float64 {
				up, suspect, down := g.opts.Membership.Counts()
				return []float64{float64(up), float64(suspect), float64(down)}
			})
	}
}
