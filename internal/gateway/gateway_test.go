package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"kspdg/internal/cluster"
	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/serve"
	"kspdg/internal/testutil"
	"kspdg/internal/workload"
)

// harness is one in-process replicated deployment behind a live HTTP server.
type harness struct {
	g     *graph.Graph
	index *dtlp.Index
	cl    *cluster.Cluster
	srv   *serve.Server
	gw    *Gateway
	ts    *httptest.Server
}

// newHarness boots NY-tiny on an in-process cluster with replication factor
// 2, fronted by a serve.Server and a Gateway on a real listener.
func newHarness(tb testing.TB, gwOpts Options) *harness {
	tb.Helper()
	ds, err := workload.BuiltinDataset("NY", workload.ScaleTiny)
	if err != nil {
		tb.Fatal(err)
	}
	part, err := partition.PartitionGraph(ds.Graph, ds.DefaultZ)
	if err != nil {
		tb.Fatal(err)
	}
	index, err := dtlp.Build(part, dtlp.Config{Xi: 2})
	if err != nil {
		tb.Fatal(err)
	}
	cl, err := cluster.New(index, cluster.Config{NumWorkers: 2, Replicas: 2})
	if err != nil {
		tb.Fatal(err)
	}
	srv := serve.New(index, cl.Provider(), serve.Options{Workers: 4, BroadcastTopology: cl.BroadcastTopology})
	gw := New(srv, gwOpts)
	ts := httptest.NewServer(gw)
	h := &harness{g: ds.Graph, index: index, cl: cl, srv: srv, gw: gw, ts: ts}
	tb.Cleanup(func() {
		ts.Close()
		srv.Close()
		cl.Close()
	})
	return h
}

// engine returns a fresh comparison engine over the same index and provider
// as the server — the in-process ground truth HTTP responses must match
// bit-identically.
func (h *harness) engine() *core.Engine {
	return core.NewEngine(h.index, h.cl.Provider(), core.Options{})
}

func (h *harness) postQuery(tb testing.TB, body string, hdrs map[string]string) (*http.Response, []byte) {
	tb.Helper()
	req, err := http.NewRequest("POST", h.ts.URL+"/v1/ksp", strings.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	for k, v := range hdrs {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp, data
}

// requirePathsEqual asserts the JSON paths are bit-identical to the engine's.
func requirePathsEqual(tb testing.TB, got []pathJSON, want []graph.Path) {
	tb.Helper()
	if len(got) != len(want) {
		tb.Fatalf("got %d paths, engine computed %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Distance != want[i].Dist {
			tb.Fatalf("path %d distance %v != engine %v", i, got[i].Distance, want[i].Dist)
		}
		if len(got[i].Vertices) != len(want[i].Vertices) {
			tb.Fatalf("path %d has %d vertices, engine %d", i, len(got[i].Vertices), len(want[i].Vertices))
		}
		for j := range want[i].Vertices {
			if got[i].Vertices[j] != want[i].Vertices[j] {
				tb.Fatalf("path %d vertex %d: %d != engine %d", i, j, got[i].Vertices[j], want[i].Vertices[j])
			}
		}
	}
}

func TestQueryEndToEnd(t *testing.T) {
	h := newHarness(t, Options{Rate: -1})
	resp, data := h.postQuery(t, `{"source":3,"target":100,"k":3}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var qr queryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
	view := h.index.ViewAt(qr.Epoch)
	if view == nil {
		t.Fatalf("epoch %d not retained", qr.Epoch)
	}
	want, err := h.engine().QueryView(view, 3, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	requirePathsEqual(t, qr.Paths, want.Paths)
	if qr.Converged != want.Converged {
		t.Errorf("converged %v != engine %v", qr.Converged, want.Converged)
	}
}

func TestEpochPinnedReads(t *testing.T) {
	h := newHarness(t, Options{Rate: -1})

	// Record the first epoch's answer, then move the weights twice.
	resp, data := h.postQuery(t, `{"source":5,"target":90,"k":2}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var before queryResponse
	if err := json.Unmarshal(data, &before); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		batch := workload.NewTrafficModel(0.4, 0.5, int64(77+i)).Derive(
			h.g.NumEdges(), h.g.Directed(), h.g.Weight)
		var ur updatesRequest
		for _, u := range batch {
			ur.Updates = append(ur.Updates, updateJSON{Edge: int64(u.Edge), Weight: u.NewWeight})
		}
		body, _ := json.Marshal(ur)
		req, err := http.NewRequest("POST", h.ts.URL+"/v1/updates", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var urr updatesResponse
		if err := json.NewDecoder(resp.Body).Decode(&urr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("updates status %d", resp.StatusCode)
		}
		if urr.Applied != len(batch) {
			t.Fatalf("applied %d of %d updates", urr.Applied, len(batch))
		}
	}
	if cur := h.srv.Stats().Epoch; cur != before.Epoch+2 {
		t.Fatalf("epoch after two updates %d, want %d", cur, before.Epoch+2)
	}

	// A pin to the old epoch must reproduce the old answer bit-identically.
	resp, data = h.postQuery(t, fmt.Sprintf(`{"source":5,"target":90,"k":2,"epoch":%d}`, before.Epoch), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinned status %d: %s", resp.StatusCode, data)
	}
	var pinned queryResponse
	if err := json.Unmarshal(data, &pinned); err != nil {
		t.Fatal(err)
	}
	if pinned.Epoch != before.Epoch {
		t.Fatalf("pinned response reports epoch %d, want %d", pinned.Epoch, before.Epoch)
	}
	view := h.index.ViewAt(before.Epoch)
	want, err := h.engine().QueryView(view, 5, 90, 2)
	if err != nil {
		t.Fatal(err)
	}
	requirePathsEqual(t, pinned.Paths, want.Paths)

	// A pin outside the retention window is 410 Gone.
	resp, data = h.postQuery(t, `{"source":5,"target":90,"k":2,"epoch":99999}`, nil)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted-epoch status %d (%s), want 410", resp.StatusCode, data)
	}
}

func TestStreamMatchesEngine(t *testing.T) {
	h := newHarness(t, Options{Rate: -1})
	resp, err := http.Get(h.ts.URL + "/v1/ksp/stream?source=7&target=120&k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var streamed []pathJSON
	var final *streamLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Done {
			final = &line
			break
		}
		if line.Path == nil {
			t.Fatalf("line is neither path nor terminal: %q", sc.Text())
		}
		streamed = append(streamed, *line.Path)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if final == nil {
		t.Fatal("stream ended without a terminal line")
	}
	if final.Error != "" {
		t.Fatalf("stream reported error %q", final.Error)
	}
	if final.Paths != len(streamed) {
		t.Fatalf("terminal line counts %d paths, streamed %d", final.Paths, len(streamed))
	}
	view := h.index.ViewAt(final.Epoch)
	if view == nil {
		t.Fatalf("epoch %d not retained", final.Epoch)
	}
	want, err := h.engine().QueryView(view, 7, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	requirePathsEqual(t, streamed, want.Paths)
	if final.Converged != want.Converged {
		t.Errorf("stream converged %v != engine %v", final.Converged, want.Converged)
	}
}

func TestRateLimit429(t *testing.T) {
	now := time.Now()
	h := newHarness(t, Options{
		Rate:  10,
		Burst: 2,
		now:   func() time.Time { return now }, // frozen clock: no refill
	})
	codes := make([]int, 0, 3)
	for i := 0; i < 3; i++ {
		resp, _ := h.postQuery(t, `{"source":1,"target":50,"k":2}`, map[string]string{"X-API-Key": "alice"})
		codes = append(codes, resp.StatusCode)
		if resp.StatusCode == http.StatusTooManyRequests {
			ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || ra < 1 {
				t.Fatalf("429 Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
			}
		}
	}
	if codes[0] != 200 || codes[1] != 200 || codes[2] != 429 {
		t.Fatalf("status sequence %v, want [200 200 429]", codes)
	}
	// A different API key has its own bucket.
	resp, _ := h.postQuery(t, `{"source":1,"target":50,"k":2}`, map[string]string{"X-API-Key": "bob"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other key status %d, want 200", resp.StatusCode)
	}
	if got := h.gw.rateLimited.Value(); got != 1 {
		t.Fatalf("rate-limited counter %d, want 1", got)
	}
}

func TestExpiredDeadlineShed504(t *testing.T) {
	h := newHarness(t, Options{Rate: -1})
	resp, data := h.postQuery(t, `{"source":1,"target":50,"k":2}`,
		map[string]string{"Request-Timeout-Ms": "0"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, data)
	}
	// Shed before reaching a worker: the serve layer never saw the query.
	if st := h.srv.Stats(); st.QueriesServed != 0 {
		t.Fatalf("shed request reached the serve layer: %+v", st)
	}
	if got := h.gw.queueShed.With("interactive").Value(); got != 1 {
		t.Fatalf("queue-shed counter %d, want 1", got)
	}
}

// gatedProvider blocks every refine call until the gate opens, making slot
// occupancy deterministic in admission tests.
type gatedProvider struct {
	inner   core.PartialProvider
	gate    chan struct{} // close to open
	entered chan struct{} // one token per call that reached the provider
}

func newGatedProvider(inner core.PartialProvider) *gatedProvider {
	return &gatedProvider{inner: inner, gate: make(chan struct{}), entered: make(chan struct{}, 64)}
}

func (p *gatedProvider) PartialKSP(pairs []core.PairRequest, k int) (map[core.PairRequest][]graph.Path, error) {
	select {
	case p.entered <- struct{}{}:
	default:
	}
	<-p.gate
	return p.inner.PartialKSP(pairs, k)
}

func (p *gatedProvider) PartialKSPView(iv *dtlp.IndexView, pairs []core.PairRequest, k int) (map[core.PairRequest][]graph.Path, error) {
	select {
	case p.entered <- struct{}{}:
	default:
	}
	<-p.gate
	if vp, ok := p.inner.(core.ViewProvider); ok {
		return vp.PartialKSPView(iv, pairs, k)
	}
	return p.inner.PartialKSP(pairs, k)
}

// gatedHarness is a single-slot gateway over the paper graph whose engine
// blocks in the refine step until the gate opens.
type gatedHarness struct {
	srv  *serve.Server
	gw   *Gateway
	ts   *httptest.Server
	gate *gatedProvider
}

func newGatedHarness(tb testing.TB, gwOpts Options) *gatedHarness {
	tb.Helper()
	g := testutil.PaperGraph(tb)
	part, err := partition.PartitionGraph(g, 6)
	if err != nil {
		tb.Fatal(err)
	}
	index, err := dtlp.Build(part, dtlp.Config{Xi: 2})
	if err != nil {
		tb.Fatal(err)
	}
	gate := newGatedProvider(core.NewLocalProvider(part, 0))
	srv := serve.New(index, gate, serve.Options{Workers: 2, CacheCapacity: -1})
	gw := New(srv, gwOpts)
	ts := httptest.NewServer(gw)
	h := &gatedHarness{srv: srv, gw: gw, ts: ts, gate: gate}
	tb.Cleanup(func() {
		h.open()
		ts.Close()
		srv.Close()
	})
	return h
}

// open releases every blocked refine call (idempotent).
func (h *gatedHarness) open() {
	defer func() { _ = recover() }() // double close from cleanup
	close(h.gate.gate)
}

func TestQueueWaitShed504(t *testing.T) {
	h := newGatedHarness(t, Options{Rate: -1, InteractiveSlots: 1, QueueDepth: 4})

	// Occupy the only interactive slot with a query stuck in its refine step.
	type result struct {
		code int
		err  error
	}
	occupied := make(chan result, 1)
	go func() {
		resp, err := http.Post(h.ts.URL+"/v1/ksp", "application/json",
			strings.NewReader(`{"source":3,"target":12,"k":2}`))
		if err != nil {
			occupied <- result{err: err}
			return
		}
		defer resp.Body.Close()
		_, _ = io.ReadAll(resp.Body)
		occupied <- result{code: resp.StatusCode}
	}()
	<-h.gate.entered // the slot-holder reached the engine

	// A queued request whose deadline expires while waiting is shed with 504.
	req, err := http.NewRequest("POST", h.ts.URL+"/v1/ksp",
		strings.NewReader(`{"source":0,"target":15,"k":2}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Request-Timeout-Ms", "80")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued request status %d (%s), want 504", resp.StatusCode, body)
	}
	if got := h.gw.queueShed.With("interactive").Value(); got != 1 {
		t.Fatalf("queue-shed counter %d, want 1", got)
	}

	// Opening the gate lets the slot-holder finish normally.
	h.open()
	res := <-occupied
	if res.err != nil {
		t.Fatalf("slot-holder failed: %v", res.err)
	}
	if res.code != http.StatusOK {
		t.Fatalf("slot-holder status %d, want 200", res.code)
	}
}

func TestQueueFull503(t *testing.T) {
	h := newGatedHarness(t, Options{Rate: -1, InteractiveSlots: 1, QueueDepth: 1})

	done := make(chan int, 2)
	post := func(timeoutMs string) {
		req, _ := http.NewRequest("POST", h.ts.URL+"/v1/ksp",
			strings.NewReader(`{"source":3,"target":12,"k":2}`))
		if timeoutMs != "" {
			req.Header.Set("Request-Timeout-Ms", timeoutMs)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- -1
			return
		}
		_, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}
	go post("") // occupies the slot
	<-h.gate.entered
	go post("") // fills the one queue position
	// Wait until the second request is actually queued.
	deadline := time.Now().Add(5 * time.Second)
	for h.gw.classes[classInteractive].queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// The third request finds the queue full: immediate 503.
	resp, err := http.Post(h.ts.URL+"/v1/ksp", "application/json",
		strings.NewReader(`{"source":3,"target":12,"k":2}`))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow status %d, want 503", resp.StatusCode)
	}
	if got := h.gw.queueFull.With("interactive").Value(); got != 1 {
		t.Fatalf("queue-full counter %d, want 1", got)
	}

	h.open()
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("request %d finished with %d, want 200", i, code)
		}
	}
}

func TestMidStreamClientDisconnect(t *testing.T) {
	h := newGatedHarness(t, Options{Rate: -1})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET",
		h.ts.URL+"/v1/ksp/stream?source=3&target=12&k=2", nil)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			errCh <- err
			return
		}
		// Headers arrive before the first path; block reading the body until
		// the cancel kills the connection.
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		errCh <- err
	}()
	<-h.gate.entered // the stream query is executing (blocked in refine)
	cancel()         // client hangs up mid-stream
	if err := <-errCh; err == nil {
		t.Fatal("client read completed despite cancellation")
	}

	// The gateway notices the disconnect as soon as the handler unblocks.
	deadline := time.Now().Add(5 * time.Second)
	for h.gw.disconnects.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnect never counted")
		}
		time.Sleep(time.Millisecond)
	}

	// Once the refine unblocks, the engine observes the canceled context and
	// abandons the computation instead of finishing it for nobody.
	h.open()
	deadline = time.Now().Add(5 * time.Second)
	for h.srv.Stats().Canceled == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("serve layer never recorded the cancellation: %+v", h.srv.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBadInput400(t *testing.T) {
	h := newHarness(t, Options{Rate: -1, MaxK: 8})
	cases := []struct {
		name string
		body string
		hdrs map[string]string
	}{
		{"malformed json", `{"source":`, nil},
		{"negative k", `{"source":1,"target":2,"k":-1}`, nil},
		{"k beyond MaxK", `{"source":1,"target":2,"k":9}`, nil},
		{"out of range source", `{"source":-5,"target":2,"k":2}`, nil},
		{"out of range target", `{"source":1,"target":1000000,"k":2}`, nil},
		{"bad timeout header", `{"source":1,"target":2,"k":2}`, map[string]string{"Request-Timeout-Ms": "soon"}},
	}
	for _, tc := range cases {
		resp, data := h.postQuery(t, tc.body, tc.hdrs)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, data)
		}
	}

	for _, q := range []string{
		"source=x&target=2&k=2", "source=1&target=2&k=0", "source=1&target=2&k=2&epoch=x",
	} {
		resp, err := http.Get(h.ts.URL + "/v1/ksp/stream?" + q)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("stream %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestUpdatesValidation(t *testing.T) {
	h := newHarness(t, Options{Rate: -1})
	for _, tc := range []struct {
		name string
		body string
	}{
		{"empty batch", `{"updates":[]}`},
		{"edge out of range", `{"updates":[{"edge":99999999,"weight":2}]}`},
		{"nonpositive weight", `{"updates":[{"edge":0,"weight":0}]}`},
	} {
		resp, err := http.Post(h.ts.URL+"/v1/updates", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, data)
		}
	}
	// No epoch was published by any of the rejected batches.
	if epoch := h.srv.Stats().Epoch; epoch != 0 {
		t.Fatalf("rejected updates advanced the epoch to %d", epoch)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	member := cluster.NewMembership(3, cluster.MembershipOptions{SuspectAfter: 1, DownAfter: 3})
	member.ReportFailure(2) // one suspect worker
	h := newHarness(t, Options{Rate: -1, Membership: member})

	// Generate some traffic first.
	if resp, data := h.postQuery(t, `{"source":3,"target":100,"k":2}`, nil); resp.StatusCode != 200 {
		t.Fatalf("query status %d: %s", resp.StatusCode, data)
	}

	resp, err := http.Get(h.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || hr.Status != "ok" {
		t.Fatalf("healthz %d %+v", resp.StatusCode, hr)
	}
	if hr.Workers["up"] != 2 || hr.Workers["suspect"] != 1 {
		t.Fatalf("healthz workers %+v, want 2 up and 1 suspect", hr.Workers)
	}

	resp, err = http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	exposition := string(body)
	for _, want := range []string{
		`gateway_requests_total{route="/v1/ksp",code="200"} 1`,
		"gateway_request_seconds_bucket",
		"kspd_queries_served_total 1",
		"kspd_rpc_batches_total",
		"kspd_rpc_pairs_coalesced_total",
		"kspd_failovers_total",
		"kspd_hedged_batches_total",
		"kspd_nonconverged_queries_total",
		"kspd_epoch 0",
		`kspd_workers{state="up"} 2`,
		`kspd_workers{state="suspect"} 1`,
		`kspd_workers{state="down"} 0`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The cluster provider really was exercised: batches flowed.
	if !strings.Contains(exposition, "kspd_rpc_batches_total ") {
		t.Error("rpc batch counter family missing")
	}
}

func TestUnknownRoute404(t *testing.T) {
	h := newHarness(t, Options{Rate: -1})
	resp, err := http.Get(h.ts.URL + "/v2/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestTopologyEndpoint(t *testing.T) {
	h := newHarness(t, Options{Rate: -1})
	postTopo := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(h.ts.URL+"/v1/topology", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, data
	}
	numV := h.g.NumVertices()
	numE := h.g.NumEdges()

	// Validation failures never publish an epoch.
	for _, tc := range []struct {
		name, body string
	}{
		{"malformed json", `{"insert_edges":`},
		{"empty batch", `{}`},
		{"negative add_vertices", `{"add_vertices":-1}`},
		{"self loop", `{"insert_edges":[{"u":3,"v":3,"weight":1}]}`},
		{"nonpositive weight", `{"insert_edges":[{"u":3,"v":4,"weight":0}]}`},
		{"endpoint out of range", fmt.Sprintf(`{"insert_edges":[{"u":3,"v":%d,"weight":1}]}`, numV)},
		{"delete edge out of range", fmt.Sprintf(`{"delete_edges":[%d]}`, numE)},
		{"delete vertex out of range", fmt.Sprintf(`{"delete_vertices":[%d]}`, numV)},
	} {
		if resp, data := postTopo(tc.body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, data)
		}
	}
	if epoch := h.srv.Stats().Epoch; epoch != 0 {
		t.Fatalf("rejected topology batches advanced the epoch to %d", epoch)
	}

	// A valid batch: a fresh vertex wired to vertex 3 plus a direct cheap
	// shortcut 3->100, deleting edge 0.  Endpoints may reference the vertex
	// added by the same batch (id numV).
	resp, data := postTopo(fmt.Sprintf(
		`{"add_vertices":1,"insert_edges":[{"u":3,"v":%d,"weight":1},{"u":3,"v":100,"weight":0.25}],"delete_edges":[0]}`, numV))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topology batch status %d: %s", resp.StatusCode, data)
	}
	var tr struct {
		Epoch            uint64  `json:"epoch"`
		InsertedEdges    []int64 `json:"inserted_edges"`
		DeletedEdges     []int64 `json:"deleted_edges"`
		SubgraphsRebuilt int     `json:"subgraphs_rebuilt"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("decoding topology response %s: %v", data, err)
	}
	if tr.Epoch != 1 {
		t.Errorf("topology epoch = %d, want 1", tr.Epoch)
	}
	if len(tr.InsertedEdges) != 2 || tr.InsertedEdges[0] != int64(numE) {
		t.Errorf("inserted_edges = %v, want ids from %d", tr.InsertedEdges, numE)
	}
	if len(tr.DeletedEdges) != 1 || tr.DeletedEdges[0] != 0 {
		t.Errorf("deleted_edges = %v, want [0]", tr.DeletedEdges)
	}
	if tr.SubgraphsRebuilt < 1 {
		t.Errorf("subgraphs_rebuilt = %d, want >= 1", tr.SubgraphsRebuilt)
	}

	// Queries now answer against the mutated graph: the inserted shortcut is
	// the new best 3->100 path.
	qresp, qdata := h.postQuery(t, `{"source":3,"target":100,"k":1}`, nil)
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("post-topology query status %d: %s", qresp.StatusCode, qdata)
	}
	var qr queryResponse
	if err := json.Unmarshal(qdata, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Epoch != 1 || len(qr.Paths) == 0 || qr.Paths[0].Distance > 0.25+1e-9 {
		t.Fatalf("post-topology query = %+v, want epoch 1 and the 0.25 shortcut", qr)
	}

	// Deleting an already-deleted edge is a state conflict, not a validation
	// failure: 409, and no epoch is published.
	if resp, data := postTopo(`{"delete_edges":[0]}`); resp.StatusCode != http.StatusConflict {
		t.Fatalf("double delete status %d (%s), want 409", resp.StatusCode, data)
	}
	if epoch := h.srv.Stats().Epoch; epoch != 1 {
		t.Fatalf("conflicting batch advanced the epoch to %d", epoch)
	}

	// The write-path counters surface on /metrics.
	mresp, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"kspd_topology_batches_total 1",
		"kspd_subgraphs_rebuilt_total",
		`gateway_requests_total{route="/v1/topology",code="200"} 1`,
		`gateway_requests_total{route="/v1/topology",code="409"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestTopologyBatchSizeLimit(t *testing.T) {
	h := newHarness(t, Options{Rate: -1, MaxTopologyBatch: 2})
	body := `{"delete_edges":[0,1,2]}`
	resp, err := http.Post(h.ts.URL+"/v1/topology", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch status %d (%s), want 400", resp.StatusCode, data)
	}
}
