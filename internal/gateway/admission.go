package gateway

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Admission errors, mapped onto HTTP statuses by the handler wrapper (rate
// limiting reports through rateLimiter.allow's return values instead).
var (
	// errQueueFull: the class's wait queue is at capacity (503).
	errQueueFull = errors.New("gateway: admission queue full")
	// errDeadlineShed: the request's deadline expired before a slot freed up,
	// so it was shed without ever reaching a worker (504).
	errDeadlineShed = errors.New("gateway: deadline expired while queued")
)

// tokenBucket is one API key's refilling budget.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter applies a per-key token bucket: every key accrues `rate` tokens
// per second up to `burst`, and each admitted request spends one.  Keys are
// created on first use and evicted opportunistically once they have refilled
// to full burst (an idle bucket holds no state worth keeping), which bounds
// the map against API-key churn without a background sweeper.
type rateLimiter struct {
	rate    float64
	burst   float64
	maxKeys int
	now     func() time.Time

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	b := float64(burst)
	if b < 1 {
		b = math.Max(1, rate)
	}
	return &rateLimiter{
		rate:    rate,
		burst:   b,
		maxKeys: 4096,
		now:     now,
		buckets: make(map[string]*tokenBucket),
	}
}

// allow spends one token of key's bucket.  When the bucket is empty it
// returns false and the duration after which one token will have accrued —
// the Retry-After the client should honor.
func (rl *rateLimiter) allow(key string) (bool, time.Duration) {
	if rl.rate <= 0 {
		return true, 0 // unlimited
	}
	now := rl.now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	tb, ok := rl.buckets[key]
	if !ok {
		if len(rl.buckets) >= rl.maxKeys {
			rl.evictFullLocked(now)
		}
		tb = &tokenBucket{tokens: rl.burst, last: now}
		rl.buckets[key] = tb
	}
	tb.tokens = math.Min(rl.burst, tb.tokens+now.Sub(tb.last).Seconds()*rl.rate)
	tb.last = now
	if tb.tokens >= 1 {
		tb.tokens--
		return true, 0
	}
	wait := time.Duration((1 - tb.tokens) / rl.rate * float64(time.Second))
	return false, wait
}

// evictFullLocked drops buckets that have refilled to burst: they are
// indistinguishable from never-seen keys.  Callers hold rl.mu.
func (rl *rateLimiter) evictFullLocked(now time.Time) {
	for k, tb := range rl.buckets {
		if math.Min(rl.burst, tb.tokens+now.Sub(tb.last).Seconds()*rl.rate) >= rl.burst {
			delete(rl.buckets, k)
		}
	}
}

// class is a request priority class.  Interactive requests (the default) and
// batch requests (X-Priority: batch) run on separately bounded slot pools so
// a flood of bulk traffic cannot starve latency-sensitive callers.
type class int

const (
	classInteractive class = iota
	classBatch
	numClasses
)

func (c class) String() string {
	if c == classBatch {
		return "batch"
	}
	return "interactive"
}

// admitter bounds one class's concurrency (slots) and its wait queue.  A
// request past the concurrency bound waits for a slot only as long as its
// deadline allows — when the context expires first the request is shed with
// errDeadlineShed instead of rotting in the queue, and a request arriving to
// a full queue is rejected immediately with errQueueFull.
type admitter struct {
	slots   chan struct{}
	maxWait int64
	waiting atomic.Int64
}

func newAdmitter(slots, queueDepth int) *admitter {
	a := &admitter{slots: make(chan struct{}, slots), maxWait: int64(queueDepth)}
	return a
}

// acquire claims a slot, queueing deadline-aware.  Callers must release()
// after the request completes iff acquire returned nil.  A context that dies
// first yields errDeadlineShed when its deadline expired and the raw
// context.Canceled when the client hung up — the two are different events to
// an operator (overload vs client churn) and are counted separately.
func (a *admitter) acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return shedCause(err)
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.waiting.Add(1) > a.maxWait {
		a.waiting.Add(-1)
		return errQueueFull
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return shedCause(ctx.Err())
	}
}

func shedCause(err error) error {
	if errors.Is(err, context.Canceled) {
		return context.Canceled
	}
	return errDeadlineShed
}

func (a *admitter) release() { <-a.slots }

// inFlight returns the number of currently executing requests of the class.
func (a *admitter) inFlight() int { return len(a.slots) }

// queued returns the number of requests waiting for a slot.
func (a *admitter) queued() int64 { return a.waiting.Load() }
