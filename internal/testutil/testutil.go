// Package testutil provides shared graph fixtures and reference
// implementations used by the test suites of the other packages.  The
// fixtures include a small road network modelled on the running example of
// the paper (Figures 3-4), regular grids, and random connected graphs, plus a
// brute-force k-shortest-path enumerator used as a correctness oracle.
package testutil

import (
	"math/rand"
	"testing"

	"kspdg/internal/graph"
)

// PaperVertex names the vertices of the paper-style example graph for
// readability in tests: index i corresponds to paper vertex v_{i+1} for
// v1..v14, and indices 14..17 correspond to v16..v19.
const (
	V1 graph.VertexID = iota
	V2
	V3
	V4
	V5
	V6
	V7
	V8
	V9
	V10
	V11
	V12
	V13
	V14
	V16
	V17
	V18
	V19
)

// PaperGraphEdges returns the edge list of the example road network used
// throughout the tests.  The network has 18 vertices and 25 edges organised
// in four natural regions that a partitioner with z=6 splits along the
// boundary vertices v4, v6, v9, v10, v13, v14 — mirroring the structure of
// the running example in the paper.
func PaperGraphEdges() []graph.Edge {
	return []graph.Edge{
		// Region 1: v1..v6
		{U: V1, V: V2, Weight: 3}, {U: V1, V: V4, Weight: 3}, {U: V2, V: V3, Weight: 6},
		{U: V2, V: V5, Weight: 3}, {U: V3, V: V6, Weight: 2}, {U: V4, V: V5, Weight: 4},
		{U: V5, V: V6, Weight: 4},
		// Region 2: v4,v6,v7,v8,v9,v10
		{U: V4, V: V7, Weight: 3}, {U: V7, V: V8, Weight: 3}, {U: V8, V: V9, Weight: 5},
		{U: V6, V: V9, Weight: 4}, {U: V6, V: V10, Weight: 6}, {U: V9, V: V10, Weight: 4},
		// Region 3: v9,v10,v11,v12,v13,v14
		{U: V9, V: V11, Weight: 5}, {U: V10, V: V14, Weight: 7}, {U: V10, V: V11, Weight: 5},
		{U: V11, V: V12, Weight: 3}, {U: V12, V: V13, Weight: 3}, {U: V13, V: V14, Weight: 6},
		// Region 4: v13,v14,v16,v17,v18,v19
		{U: V13, V: V16, Weight: 5}, {U: V16, V: V14, Weight: 3}, {U: V13, V: V18, Weight: 3},
		{U: V18, V: V17, Weight: 2}, {U: V17, V: V16, Weight: 2}, {U: V18, V: V19, Weight: 3},
	}
}

// PaperGraph builds the example road network as an undirected dynamic graph.
func PaperGraph(tb testing.TB) *graph.Graph {
	tb.Helper()
	b := graph.NewBuilder(18, false)
	for _, e := range PaperGraphEdges() {
		if _, err := b.AddEdge(e.U, e.V, e.Weight); err != nil {
			tb.Fatalf("testutil: building paper graph: %v", err)
		}
	}
	return b.Build()
}

// LineGraph builds a path graph 0-1-...-(n-1) with unit weights.
func LineGraph(tb testing.TB, n int) *graph.Graph {
	tb.Helper()
	b := graph.NewBuilder(n, false)
	for i := 0; i < n-1; i++ {
		if _, err := b.AddEdge(graph.VertexID(i), graph.VertexID(i+1), 1); err != nil {
			tb.Fatalf("testutil: building line graph: %v", err)
		}
	}
	return b.Build()
}

// GridGraph builds a w x h grid graph with the given uniform edge weight.
// Vertex (x, y) has index y*w+x.
func GridGraph(w, h int, weight float64) *graph.Graph {
	b := graph.NewBuilder(w*h, false)
	id := func(x, y int) graph.VertexID { return graph.VertexID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y), weight)
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1), weight)
			}
		}
	}
	return b.Build()
}

// RandomConnected builds a connected random undirected graph with n vertices:
// a random spanning tree plus approximately extra additional edges, with
// weights uniform in [1, 10).
func RandomConnected(rng *rand.Rand, n, extra int) *graph.Graph {
	b := graph.NewBuilder(n, false)
	present := make(map[[2]graph.VertexID]bool)
	addEdge := func(u, v graph.VertexID, w float64) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		key := [2]graph.VertexID{u, v}
		if present[key] {
			return
		}
		present[key] = true
		b.AddEdge(u, v, w)
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u := graph.VertexID(perm[i])
		v := graph.VertexID(perm[rng.Intn(i)])
		addEdge(u, v, 1+rng.Float64()*9)
	}
	for i := 0; i < extra; i++ {
		addEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)), 1+rng.Float64()*9)
	}
	return b.Build()
}

// BruteForceKSP enumerates all simple paths from s to t by depth-first search
// and returns the k shortest under the graph's current weights.  It is the
// correctness oracle for Dijkstra, Yen and KSP-DG on small graphs.
func BruteForceKSP(g graph.WeightedView, s, t graph.VertexID, k int) []graph.Path {
	var all []graph.Path
	onPath := make([]bool, g.NumVertices())
	var verts []graph.VertexID
	var dfs func(u graph.VertexID, dist float64)
	dfs = func(u graph.VertexID, dist float64) {
		onPath[u] = true
		verts = append(verts, u)
		if u == t {
			all = append(all, graph.Path{Vertices: append([]graph.VertexID(nil), verts...), Dist: dist})
		} else {
			for _, a := range g.Neighbors(u) {
				if !onPath[a.To] {
					dfs(a.To, dist+g.Weight(a.Edge))
				}
			}
		}
		onPath[u] = false
		verts = verts[:len(verts)-1]
	}
	dfs(s, 0)
	sortPaths(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// sortPaths sorts paths by (distance, lexicographic sequence).
func sortPaths(ps []graph.Path) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && graph.ComparePaths(ps[j], ps[j-1]) < 0; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// PerturbWeights changes the weight of a fraction alpha of edges by a factor
// uniform in [-tau, +tau], never letting a weight drop below minWeight.  It
// returns the applied updates.  The mutation is applied to g.
func PerturbWeights(tb testing.TB, g *graph.Graph, rng *rand.Rand, alpha, tau, minWeight float64) []graph.WeightUpdate {
	tb.Helper()
	var batch []graph.WeightUpdate
	for e := graph.EdgeID(0); int(e) < g.NumEdges(); e++ {
		if rng.Float64() >= alpha {
			continue
		}
		if !g.EdgeAlive(e) {
			continue // tombstone of a deleted edge: no weight to perturb
		}
		factor := 1 + (rng.Float64()*2-1)*tau
		w := g.Weight(e) * factor
		if w < minWeight {
			w = minWeight
		}
		batch = append(batch, graph.WeightUpdate{Edge: e, NewWeight: w})
	}
	if len(batch) > 0 {
		if err := g.ApplyUpdates(batch); err != nil {
			tb.Fatalf("testutil: perturbing weights: %v", err)
		}
	}
	return batch
}

// RandomStronglyConnected builds a strongly connected random directed graph
// with n vertices: both directions of a random spanning tree (independent
// weights per direction) plus approximately extra additional arcs, with
// weights uniform in [1, 10).
func RandomStronglyConnected(rng *rand.Rand, n, extra int) *graph.Graph {
	b := graph.NewBuilder(n, true)
	present := make(map[[2]graph.VertexID]bool)
	addArc := func(u, v graph.VertexID, w float64) {
		if u == v {
			return
		}
		key := [2]graph.VertexID{u, v}
		if present[key] {
			return
		}
		present[key] = true
		b.AddEdge(u, v, w)
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u := graph.VertexID(perm[i])
		v := graph.VertexID(perm[rng.Intn(i)])
		addArc(u, v, 1+rng.Float64()*9)
		addArc(v, u, 1+rng.Float64()*9)
	}
	for i := 0; i < extra; i++ {
		addArc(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)), 1+rng.Float64()*9)
	}
	return b.Build()
}
