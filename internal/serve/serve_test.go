package serve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"kspdg/internal/cluster"
	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/partition"
	"kspdg/internal/shortest"
	"kspdg/internal/testutil"
	"kspdg/internal/workload"
)

func buildServer(tb testing.TB, g *graph.Graph, z, xi int, opts Options) (*dtlp.Index, *Server) {
	tb.Helper()
	p, err := partition.PartitionGraph(g, z)
	if err != nil {
		tb.Fatalf("partition: %v", err)
	}
	x, err := dtlp.Build(p, dtlp.Config{Xi: xi})
	if err != nil {
		tb.Fatalf("dtlp: %v", err)
	}
	return x, New(x, nil, opts)
}

func TestServerMatchesEngine(t *testing.T) {
	g := testutil.PaperGraph(t)
	x, s := buildServer(t, g, 6, 2, Options{Workers: 4})
	defer s.Close()
	engine := core.NewEngine(x, nil, core.Options{})
	for _, q := range []struct {
		s, t graph.VertexID
		k    int
	}{{testutil.V1, testutil.V19, 3}, {testutil.V2, testutil.V14, 2}, {testutil.V5, testutil.V17, 4}} {
		got, err := s.Query(q.s, q.t, q.k)
		if err != nil {
			t.Fatalf("server query: %v", err)
		}
		want, err := engine.Query(q.s, q.t, q.k)
		if err != nil {
			t.Fatalf("engine query: %v", err)
		}
		if len(got.Paths) != len(want.Paths) {
			t.Fatalf("server returned %d paths, engine %d", len(got.Paths), len(want.Paths))
		}
		for i := range want.Paths {
			if math.Abs(got.Paths[i].Dist-want.Paths[i].Dist) > 1e-9 {
				t.Errorf("path %d dist %g != %g", i, got.Paths[i].Dist, want.Paths[i].Dist)
			}
		}
	}
}

func TestServerCacheInvalidatedByEpoch(t *testing.T) {
	g := testutil.PaperGraph(t)
	_, s := buildServer(t, g, 6, 2, Options{Workers: 2})
	defer s.Close()

	r1, err := s.Query(testutil.V1, testutil.V19, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Query(testutil.V1, testutil.V19, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CacheHits != 1 {
		t.Errorf("expected 1 cache hit, got %d", st.CacheHits)
	}
	if r1.Epoch != r2.Epoch {
		t.Errorf("cached result epoch mismatch: %d vs %d", r1.Epoch, r2.Epoch)
	}

	// Raise the weight of every edge on the best path; the cached entry must
	// not survive the epoch bump.
	var batch []graph.WeightUpdate
	verts := r1.Paths[0].Vertices
	for i := 0; i+1 < len(verts); i++ {
		e, ok := g.EdgeBetween(verts[i], verts[i+1])
		if !ok {
			t.Fatalf("edge (%d,%d) missing", verts[i], verts[i+1])
		}
		batch = append(batch, graph.WeightUpdate{Edge: e, NewWeight: g.Weight(e) * 10})
	}
	if err := s.ApplyUpdates(batch); err != nil {
		t.Fatal(err)
	}
	r3, err := s.Query(testutil.V1, testutil.V19, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Epoch == r1.Epoch {
		t.Fatalf("query after update still served epoch %d", r1.Epoch)
	}
	if r3.Paths[0].Dist <= r1.Paths[0].Dist {
		t.Errorf("after raising best-path weights, dist %g should exceed %g", r3.Paths[0].Dist, r1.Paths[0].Dist)
	}
	if st := s.Stats(); st.CacheHits != 1 {
		t.Errorf("stale entry served from cache: %d hits", st.CacheHits)
	}
}

// slowProvider delays every refine step, giving concurrent identical queries
// a guaranteed window to find each other in flight.
type slowProvider struct {
	inner core.PartialProvider
	delay time.Duration
}

func (p slowProvider) PartialKSP(pairs []core.PairRequest, k int) (map[core.PairRequest][]graph.Path, error) {
	time.Sleep(p.delay)
	return p.inner.PartialKSP(pairs, k)
}

func TestServerCoalescesIdenticalQueries(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dtlp.Build(p, dtlp.Config{Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A slow refine step keeps the first query in flight long enough that
	// the 15 identical followers must join it rather than recompute (the
	// cache is disabled so joining is the only sharing mechanism).
	s := New(x, slowProvider{inner: core.NewLocalProvider(p, 0), delay: 20 * time.Millisecond},
		Options{Workers: 1, CacheCapacity: -1})
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Query(testutil.V1, testutil.V19, 3); err != nil {
				t.Errorf("query: %v", err)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.QueriesServed != 16 {
		t.Errorf("served %d queries, want 16", st.QueriesServed)
	}
	if st.Coalesced == 0 {
		t.Errorf("expected some coalesced queries, got none (stats %+v)", st)
	}
}

// TestServerConcurrentQueriesSnapshotIsolated is the acceptance-criteria
// concurrency test: at least 8 concurrent queriers interleave with at least 3
// weight-update batches through the snapshot layer (run under -race in CI).
// Every result must be internally consistent with the epoch it reports: each
// returned path's edge weights, summed on that epoch's frozen view, must
// reproduce the reported distance, and the path multiset must match an exact
// Yen run on the same frozen weights.
func TestServerConcurrentQueriesSnapshotIsolated(t *testing.T) {
	const (
		queriers         = 8
		queriesPerWorker = 6
		updateBatches    = 4
	)
	rng := rand.New(rand.NewSource(7))
	g := testutil.RandomConnected(rng, 60, 30)
	x, s := buildServer(t, g, 12, 2, Options{Workers: queriers})
	defer s.Close()

	type outcome struct {
		s, t graph.VertexID
		k    int
		res  core.Result
	}
	outcomes := make(chan outcome, queriers*queriesPerWorker)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(seed))
			<-start
			for i := 0; i < queriesPerWorker; i++ {
				src := graph.VertexID(qrng.Intn(g.NumVertices()))
				dst := graph.VertexID(qrng.Intn(g.NumVertices()))
				if src == dst {
					continue
				}
				k := 1 + qrng.Intn(4)
				res, err := s.Query(src, dst, k)
				if err != nil {
					t.Errorf("query(%d,%d,%d): %v", src, dst, k, err)
					continue
				}
				outcomes <- outcome{s: src, t: dst, k: k, res: res}
			}
		}(int64(100 + w))
	}
	// Writer goroutine: apply update batches while the queriers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		urng := rand.New(rand.NewSource(5))
		<-start
		for b := 0; b < updateBatches; b++ {
			var batch []graph.WeightUpdate
			for e := 0; e < g.NumEdges(); e++ {
				if urng.Float64() < 0.3 {
					w := g.Weight(graph.EdgeID(e)) * (0.6 + urng.Float64())
					if w < 0.1 {
						w = 0.1
					}
					batch = append(batch, graph.WeightUpdate{Edge: graph.EdgeID(e), NewWeight: w})
				}
			}
			if err := s.ApplyUpdates(batch); err != nil {
				t.Errorf("ApplyUpdates: %v", err)
			}
		}
	}()
	close(start)
	wg.Wait()
	close(outcomes)

	if st := s.Stats(); st.UpdateBatches < 3 {
		t.Fatalf("only %d update batches applied", st.UpdateBatches)
	}
	epochs := make(map[uint64]int)
	checked := 0
	for o := range outcomes {
		epochs[o.res.Epoch]++
		view := x.ViewAt(o.res.Epoch)
		if view == nil {
			t.Fatalf("epoch %d evicted from retention window", o.res.Epoch)
		}
		opts := &shortest.Options{Weight: view.GlobalWeight}
		// Reported distances must re-derive from the epoch's frozen weights.
		for i, p := range o.res.Paths {
			sum := 0.0
			for j := 0; j+1 < len(p.Vertices); j++ {
				e, ok := g.EdgeBetween(p.Vertices[j], p.Vertices[j+1])
				if !ok {
					t.Fatalf("result path uses missing edge (%d,%d)", p.Vertices[j], p.Vertices[j+1])
				}
				sum += view.GlobalWeight(e)
			}
			if math.Abs(sum-p.Dist) > 1e-9 {
				t.Errorf("query(%d,%d,%d) path %d: dist %g but epoch-%d weights sum to %g (torn read)",
					o.s, o.t, o.k, i, p.Dist, o.res.Epoch, sum)
			}
		}
		// And the distances must match exact Yen on the same frozen weights.
		want := shortest.Yen(g, o.s, o.t, o.k, opts)
		if len(o.res.Paths) != len(want) {
			t.Errorf("query(%d,%d,%d)@epoch %d: %d paths, Yen %d", o.s, o.t, o.k, o.res.Epoch, len(o.res.Paths), len(want))
			continue
		}
		for i := range want {
			if math.Abs(o.res.Paths[i].Dist-want[i].Dist) > 1e-9 {
				t.Errorf("query(%d,%d,%d)@epoch %d path %d: dist %g, Yen %g",
					o.s, o.t, o.k, o.res.Epoch, i, o.res.Paths[i].Dist, want[i].Dist)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no query outcomes checked")
	}
	if len(epochs) < 2 {
		t.Logf("all %d queries landed on one epoch; isolation exercised but not across epochs", checked)
	}
}

func TestServerWithClusterProvider(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dtlp.Build(p, dtlp.Config{Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(x, cluster.Config{NumWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := New(x, cl.Provider(), Options{Workers: 4})
	defer s.Close()
	res, err := s.Query(testutil.V1, testutil.V19, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := testutil.BruteForceKSP(g, testutil.V1, testutil.V19, 3)
	if len(res.Paths) != len(want) {
		t.Fatalf("cluster-backed server returned %d paths, oracle %d", len(res.Paths), len(want))
	}
	for i := range want {
		if math.Abs(res.Paths[i].Dist-want[i].Dist) > 1e-9 {
			t.Errorf("path %d dist %g, oracle %g", i, res.Paths[i].Dist, want[i].Dist)
		}
	}
}

func TestServerRunScenario(t *testing.T) {
	g := testutil.PaperGraph(t)
	_, s := buildServer(t, g, 6, 2, Options{Workers: 4})
	defer s.Close()
	sc := workload.GenerateMixed(g, 20, 3, 2, 0.3, 0.4, 11)
	if sc.NumQueries() != 20 || sc.NumUpdateBatches() == 0 {
		t.Fatalf("unexpected scenario shape: %d queries, %d batches", sc.NumQueries(), sc.NumUpdateBatches())
	}
	report, err := s.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if errs := report.Errs(); len(errs) > 0 {
		t.Fatalf("scenario queries failed: %v", errs)
	}
	if report.BatchesApplied != sc.NumUpdateBatches() {
		t.Errorf("applied %d batches, scenario has %d", report.BatchesApplied, sc.NumUpdateBatches())
	}
	for i, qr := range report.Results {
		for _, p := range qr.Result.Paths {
			if p.Source() != qr.Query.Source || p.Target() != qr.Query.Target {
				t.Errorf("result %d endpoints wrong: %v", i, p)
			}
		}
	}
}

func TestServerCloseRejectsNewQueries(t *testing.T) {
	g := testutil.PaperGraph(t)
	_, s := buildServer(t, g, 6, 1, Options{Workers: 2})
	if _, err := s.Query(testutil.V1, testutil.V9, 1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Query(testutil.V1, testutil.V9, 1); err == nil {
		t.Fatal("query after Close should fail")
	}
}

// blockingProvider parks every refine call until released, for cancellation
// tests.
type blockingProvider struct {
	inner   core.PartialProvider
	release chan struct{}
	entered chan struct{}
}

func newBlockingProvider(inner core.PartialProvider) *blockingProvider {
	return &blockingProvider{inner: inner, release: make(chan struct{}), entered: make(chan struct{}, 16)}
}

func (p *blockingProvider) PartialKSP(pairs []core.PairRequest, k int) (map[core.PairRequest][]graph.Path, error) {
	select {
	case p.entered <- struct{}{}:
	default:
	}
	<-p.release
	return p.inner.PartialKSP(pairs, k)
}

func (p *blockingProvider) PartialKSPView(iv *dtlp.IndexView, pairs []core.PairRequest, k int) (map[core.PairRequest][]graph.Path, error) {
	select {
	case p.entered <- struct{}{}:
	default:
	}
	<-p.release
	if vp, ok := p.inner.(core.ViewProvider); ok {
		return vp.PartialKSPView(iv, pairs, k)
	}
	return p.inner.PartialKSP(pairs, k)
}

func TestQueryCtxCancelStopsComputation(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dtlp.Build(p, dtlp.Config{Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	bp := newBlockingProvider(core.NewLocalProvider(p, 0))
	s := New(x, bp, Options{Workers: 1, CacheCapacity: -1})
	defer func() {
		defer func() { _ = recover() }()
		close(bp.release)
		s.Close()
	}()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.QueryCtx(ctx, 3, 12, 2)
		errCh <- err
	}()
	<-bp.entered // the query reached the refine step
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled query returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("QueryCtx did not return after cancel")
	}

	// The engine abandons the computation once the refine unblocks.
	close(bp.release)
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Canceled == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cancellation never counted: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
}

func TestCoalescedCancelKeepsOtherWaiters(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dtlp.Build(p, dtlp.Config{Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	bp := newBlockingProvider(core.NewLocalProvider(p, 0))
	s := New(x, bp, Options{Workers: 1, CacheCapacity: -1})
	released := false
	defer func() {
		if !released {
			close(bp.release)
		}
		s.Close()
	}()

	type outcome struct {
		res core.Result
		err error
	}
	first := make(chan outcome, 1)
	go func() {
		res, err := s.QueryCtx(context.Background(), 3, 12, 2)
		first <- outcome{res, err}
	}()
	<-bp.entered // the computation is running

	// A second identical query joins it, then hangs up.
	ctx, cancel := context.WithCancel(context.Background())
	second := make(chan outcome, 1)
	go func() {
		res, err := s.QueryCtx(ctx, 3, 12, 2)
		second <- outcome{res, err}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Coalesced == 0 {
		// The joiner registers by bumping the waiter count before blocking;
		// give it a moment to reach the select.
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
		s.mu.Lock()
		n := len(s.inflight)
		s.mu.Unlock()
		if n > 0 {
			break
		}
	}
	time.Sleep(10 * time.Millisecond) // let the joiner block on the call
	cancel()
	o2 := <-second
	if !errors.Is(o2.err, context.Canceled) {
		t.Fatalf("canceled joiner returned %v, want context.Canceled", o2.err)
	}

	// The first waiter still gets a real answer: one abandoning joiner must
	// not kill a computation someone else is waiting on.
	released = true
	close(bp.release)
	o1 := <-first
	if o1.err != nil {
		t.Fatalf("surviving waiter failed: %v", o1.err)
	}
	if len(o1.res.Paths) == 0 {
		t.Fatal("surviving waiter got no paths")
	}
}

func TestQueryAtPinnedEpoch(t *testing.T) {
	g := testutil.PaperGraph(t)
	_, s := buildServer(t, g, 6, 2, Options{Workers: 2})
	defer s.Close()

	res0, err := s.Query(testutil.V1, testutil.V19, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Shift the weights: the current epoch moves past res0's.
	tm := workload.NewTrafficModel(0.5, 0.5, 5)
	for i := 0; i < 3; i++ {
		batch := tm.Derive(g.NumEdges(), g.Directed(), g.Weight)
		if err := s.ApplyUpdates(batch); err != nil {
			t.Fatal(err)
		}
	}

	pinned, err := s.QueryAt(context.Background(), res0.Epoch, testutil.V1, testutil.V19, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Epoch != res0.Epoch {
		t.Fatalf("pinned result reports epoch %d, want %d", pinned.Epoch, res0.Epoch)
	}
	if len(pinned.Paths) != len(res0.Paths) {
		t.Fatalf("pinned returned %d paths, original %d", len(pinned.Paths), len(res0.Paths))
	}
	for i := range res0.Paths {
		if pinned.Paths[i].Dist != res0.Paths[i].Dist {
			t.Errorf("pinned path %d dist %v != original %v", i, pinned.Paths[i].Dist, res0.Paths[i].Dist)
		}
	}

	if _, err := s.QueryAt(context.Background(), 10_000, testutil.V1, testutil.V19, 2); !errors.Is(err, ErrEpochEvicted) {
		t.Fatalf("unretained epoch returned %v, want ErrEpochEvicted", err)
	}
}

func TestStreamQueryMatchesQuery(t *testing.T) {
	g := testutil.PaperGraph(t)
	_, s := buildServer(t, g, 6, 2, Options{Workers: 2, CacheCapacity: -1})
	defer s.Close()

	for _, q := range []struct {
		s, t graph.VertexID
		k    int
	}{
		{testutil.V1, testutil.V19, 3},
		{testutil.V3, testutil.V17, 2},
		{testutil.V5, testutil.V12, 4},
	} {
		var streamed []graph.Path
		res, err := s.StreamQuery(context.Background(), q.s, q.t, q.k, func(p graph.Path) error {
			streamed = append(streamed, p)
			return nil
		})
		if err != nil {
			t.Fatalf("stream query(%d,%d,%d): %v", q.s, q.t, q.k, err)
		}
		if len(streamed) != len(res.Paths) {
			t.Fatalf("query(%d,%d,%d): streamed %d paths, result has %d",
				q.s, q.t, q.k, len(streamed), len(res.Paths))
		}
		for i := range res.Paths {
			if streamed[i].Dist != res.Paths[i].Dist ||
				graph.PathKey(streamed[i]) != graph.PathKey(res.Paths[i]) {
				t.Errorf("query(%d,%d,%d): streamed path %d differs from result", q.s, q.t, q.k, i)
			}
		}
		// Streamed paths arrive in ascending order.
		for i := 1; i < len(streamed); i++ {
			if streamed[i].Dist < streamed[i-1].Dist {
				t.Errorf("query(%d,%d,%d): stream out of order at %d", q.s, q.t, q.k, i)
			}
		}
	}
}

func TestNonConvergedCounter(t *testing.T) {
	g := testutil.PaperGraph(t)
	// An iteration cap of 1 forces every multi-iteration search to give up
	// before the Theorem 3 bound fires.  Depending on how many candidates the
	// single iteration yields, the result is either near-exact (k paths with a
	// bound gap -> BudgetTerminated) or truncated (fewer than k paths ->
	// NonConverged); exactly one of the two counters must record it.
	_, s := buildServer(t, g, 6, 2, Options{Workers: 2, Engine: core.Options{MaxIterations: 1}})
	defer s.Close()
	res, err := s.Query(testutil.V1, testutil.V19, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged && res.BoundGap == 0 {
		t.Skip("query converged in one iteration; counter not exercised")
	}
	st := s.Stats()
	switch {
	case !res.Converged:
		if st.NonConverged != 1 || st.BudgetTerminated != 0 {
			t.Fatalf("truncated result: NonConverged = %d, BudgetTerminated = %d, want 1, 0", st.NonConverged, st.BudgetTerminated)
		}
	default:
		if st.BudgetTerminated != 1 || st.NonConverged != 0 {
			t.Fatalf("near-exact result: BudgetTerminated = %d, NonConverged = %d, want 1, 0", st.BudgetTerminated, st.NonConverged)
		}
		if st.MaxBoundGap != res.BoundGap {
			t.Fatalf("MaxBoundGap = %g, want %g", st.MaxBoundGap, res.BoundGap)
		}
	}
}

func TestAbandonedEnqueueStillServesJoiners(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dtlp.Build(p, dtlp.Config{Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	bp := newBlockingProvider(core.NewLocalProvider(p, 0))
	// One worker and a one-deep task queue, so a third query's creator
	// blocks in the enqueue itself.
	s := New(x, bp, Options{Workers: 1, QueueDepth: 1, CacheCapacity: -1})
	released := false
	defer func() {
		if !released {
			close(bp.release)
		}
		s.Close()
	}()

	type outcome struct {
		res core.Result
		err error
	}
	// A occupies the only worker (blocked in its refine step).
	a := make(chan outcome, 1)
	go func() {
		res, err := s.Query(3, 12, 2)
		a <- outcome{res, err}
	}()
	<-bp.entered
	// B fills the one-slot task buffer.
	b := make(chan outcome, 1)
	go func() {
		res, err := s.Query(0, 15, 2)
		b <- outcome{res, err}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.tasks) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second query never reached the task buffer")
		}
		time.Sleep(time.Millisecond)
	}

	// C's creator blocks sending to the full queue...
	ctxC, cancelC := context.WithCancel(context.Background())
	defer cancelC()
	c := make(chan outcome, 1)
	go func() {
		res, err := s.QueryCtx(ctxC, 1, 16, 2)
		c <- outcome{res, err}
	}()
	key := queryKey{s: 1, t: 16, k: 2}
	var call3 *call
	for call3 == nil {
		if time.Now().After(deadline) {
			t.Fatal("third query never registered")
		}
		s.mu.Lock()
		call3 = s.inflight[key]
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	// ...and D joins C's in-flight call with no deadline of its own.
	d := make(chan outcome, 1)
	go func() {
		res, err := s.QueryCtx(context.Background(), 1, 16, 2)
		d <- outcome{res, err}
	}()
	for call3.waiters.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("joiner never registered (waiters=%d)", call3.waiters.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// C gives up while the enqueue is still blocked.  D's context is live,
	// so the call must be handed off and answered, not failed.
	cancelC()
	oc := <-c
	if !errors.Is(oc.err, context.Canceled) {
		t.Fatalf("canceled creator returned %v, want context.Canceled", oc.err)
	}
	released = true
	close(bp.release)
	for _, ch := range []chan outcome{a, b, d} {
		o := <-ch
		if o.err != nil {
			t.Fatalf("surviving query failed: %v", o.err)
		}
		if len(o.res.Paths) == 0 {
			t.Fatal("surviving query got no paths")
		}
	}
}
