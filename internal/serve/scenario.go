package serve

import (
	"sync"
	"time"

	"kspdg/internal/core"
	"kspdg/internal/workload"
)

// ScenarioResult pairs one query of a mixed scenario with its outcome.
type ScenarioResult struct {
	Query  workload.Query
	Result core.Result
	Err    error
}

// ScenarioReport summarises a mixed scenario execution.
type ScenarioReport struct {
	// Results holds one entry per query event, in event order.
	Results []ScenarioResult
	// BatchesApplied counts the update batches applied.
	BatchesApplied int
	// TopologyApplied counts the topology batches applied.
	TopologyApplied int
	// ChaosInjected counts the fault injections executed through
	// Options.Chaos.
	ChaosInjected int
	// Elapsed is the wall-clock time of the whole run.
	Elapsed time.Duration
}

// Errs returns the errors of failed queries.
func (r ScenarioReport) Errs() []error {
	var errs []error
	for _, qr := range r.Results {
		if qr.Err != nil {
			errs = append(errs, qr.Err)
		}
	}
	return errs
}

// RunScenario replays a mixed query/update scenario against the server.
// Queries are submitted asynchronously — each occupies a slot of the
// server's worker pool and may overlap any number of later events — while
// update batches are applied inline in event order, so weight changes land
// while earlier queries are still in flight.  This is the concurrent path a
// production deployment exercises: RunScenario returns only after every
// query has completed and every batch has been applied.
func (s *Server) RunScenario(sc workload.MixedScenario) (ScenarioReport, error) {
	start := time.Now()
	report := ScenarioReport{Results: make([]ScenarioResult, sc.NumQueries())}
	var wg sync.WaitGroup
	qi := 0
	for _, ev := range sc.Events {
		if ev.Query != nil {
			q := *ev.Query
			slot := qi
			qi++
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := s.Query(q.Source, q.Target, sc.K)
				report.Results[slot] = ScenarioResult{Query: q, Result: res, Err: err}
			}()
			continue
		}
		if len(ev.Updates) > 0 {
			if err := s.ApplyUpdates(ev.Updates); err != nil {
				wg.Wait()
				report.Elapsed = time.Since(start)
				return report, err
			}
			report.BatchesApplied++
			continue
		}
		if ev.Topology != nil {
			// Topology batches apply inline like weight batches: in-flight
			// queries keep their pinned pre-mutation epoch while the next
			// epoch's structure changes underneath them.
			if err := s.ApplyTopology(*ev.Topology); err != nil {
				wg.Wait()
				report.Elapsed = time.Since(start)
				return report, err
			}
			report.TopologyApplied++
			continue
		}
		if ev.Chaos != nil && s.opts.Chaos != nil {
			// Faults are injected inline, like updates: earlier queries may
			// still be in flight when the worker dies — that overlap is the
			// point of a chaos scenario.
			if err := s.opts.Chaos(*ev.Chaos); err != nil {
				wg.Wait()
				report.Elapsed = time.Since(start)
				return report, err
			}
			report.ChaosInjected++
		}
	}
	wg.Wait()
	report.Elapsed = time.Since(start)
	return report, nil
}
