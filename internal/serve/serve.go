// Package serve is the concurrent, snapshot-isolated query layer on top of
// the KSP-DG engine: the front door a production deployment would expose.
//
// A Server owns the master copy of the road network and its DTLP index and
// separates the two kinds of traffic the paper's system must absorb:
//
//   - Queries run on a bounded worker pool.  Each query is answered against
//     one immutable index epoch (dtlp.IndexView), so an in-flight query never
//     observes a half-applied update batch no matter how many batches land
//     while it runs.  Identical concurrent queries are coalesced, and results
//     are cached per (source, target, k) until the epoch they were computed
//     on is superseded.
//   - Weight updates go through a single writer that applies each batch to
//     the master graph and the index, then publishes the next epoch
//     atomically.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"kspdg/internal/cluster"
	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/rpcbatch"
	"kspdg/internal/workload"
)

// Persister receives durability callbacks from the server's writer path.
// *store.Store implements it; serve depends only on this interface so the
// persistence subsystem stays optional.
type Persister interface {
	// AppendBatch logs one applied batch under the epoch it produced.
	AppendBatch(epoch uint64, batch []graph.WeightUpdate) error
	// SaveSnapshot persists the index at its current epoch and returns that
	// epoch.
	SaveSnapshot(index *dtlp.Index) (uint64, error)
}

// Options configures a Server.
type Options struct {
	// Workers is the size of the query worker pool.  Zero means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of admitted-but-unstarted queries.
	// Submitting beyond it blocks (backpressure).  Zero means 4*Workers.
	QueueDepth int
	// CacheCapacity bounds the number of cached query results.  Zero means
	// 1024; negative disables caching.
	CacheCapacity int
	// Engine configures the underlying KSP-DG engines.
	Engine core.Options
	// Broadcast, when set, is invoked with each update batch after it has
	// been applied to the master graph and index.  Deployments use it to
	// forward the batch to standalone workers that maintain their own weight
	// copies; its error fails the ApplyUpdates call that triggered it.
	Broadcast func(batch []graph.WeightUpdate) error
	// Store, when set, makes every applied batch durable: ApplyUpdates
	// appends the batch to the write-ahead log under its exact epoch before
	// returning, and a WAL append failure fails the call (the batch is
	// already applied in memory, but the caller learns durability was lost).
	Store Persister
	// SnapshotEvery, when positive together with Store, writes a fresh index
	// snapshot after every SnapshotEvery applied batches, rotating the WAL
	// and bounding recovery replay cost.
	SnapshotEvery int
	// Chaos, when set, executes the fault-injection events of a scenario
	// replayed through RunScenario (kill/restart a worker of the deployment
	// backing the refine provider).  Nil ignores chaos events.
	Chaos func(ev workload.ChaosEvent) error
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.CacheCapacity == 0 {
		o.CacheCapacity = 1024
	}
	return o
}

// Stats aggregates a server's scheduling counters.
type Stats struct {
	QueriesServed  int64 // completed queries, including cache hits
	CacheHits      int64 // queries answered from the epoch-tagged cache
	Coalesced      int64 // queries that joined an identical in-flight query
	UpdateBatches  int64 // update batches applied
	UpdatesApplied int64 // individual edge updates applied
	Snapshots      int64 // periodic snapshots written through Options.Store
	Epoch          uint64
	// RPCBatches, PairsCoalesced and DedupHits mirror the provider's
	// cross-query batching counters (see rpcbatch.Stats) when the refine step
	// runs on a batching transport; they stay zero for local providers.
	RPCBatches     int64
	PairsCoalesced int64
	DedupHits      int64
	PairCacheHits  int64
	// Failovers, HedgedBatches, HedgeWins and HedgeDrops mirror the replica
	// failover counters (see cluster.FailoverStats) when the refine step runs
	// on a replicated transport; they stay zero otherwise.
	Failovers     int64
	HedgedBatches int64
	HedgeWins     int64
	HedgeDrops    int64
}

// batchStatsProvider is implemented by batching refine-step providers (the
// cluster transports) that can report their coalescing counters.
type batchStatsProvider interface {
	BatchStats() rpcbatch.Stats
}

// failoverStatsProvider is implemented by replica-aware refine-step providers
// (cluster.ReplicatedRemoteProvider) that can report their failover traffic.
type failoverStatsProvider interface {
	FailoverStats() cluster.FailoverStats
}

// Server schedules concurrent KSP queries and weight updates over one index.
type Server struct {
	index    *dtlp.Index
	engine   *core.Engine
	provider core.PartialProvider
	parent   *graph.Graph
	opts     Options

	tasks   chan *task
	workers sync.WaitGroup
	senders sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	cache    map[queryKey]cacheEntry
	inflight map[queryKey]*call

	// writeMu serializes the whole writer path (graph + index + WAL +
	// broadcast) so WAL records land in exactly the epoch order the index
	// published and periodic snapshots observe a quiescent writer.
	writeMu       sync.Mutex
	sinceSnapshot int

	queries   atomic.Int64
	hits      atomic.Int64
	coalesced atomic.Int64
	batches   atomic.Int64
	updates   atomic.Int64
	snapshots atomic.Int64
}

type queryKey struct {
	s, t graph.VertexID
	k    int
}

type cacheEntry struct {
	epoch uint64
	res   core.Result
}

// call is one in-flight computation that concurrent identical queries share.
type call struct {
	key   queryKey
	epoch uint64 // epoch current at registration; joiners must match
	done  chan struct{}
	res   core.Result
	err   error
}

type task struct{ c *call }

// New creates a server over the given index.  provider selects where the
// refine step runs: nil uses a local provider with the server's worker
// parallelism, anything else (e.g. a cluster provider) is passed through to
// the engine.  Queries gain snapshot isolation on the refine step whenever
// the provider implements core.ViewProvider.
func New(index *dtlp.Index, provider core.PartialProvider, opts Options) *Server {
	opts = opts.withDefaults()
	engOpts := opts.Engine
	if provider == nil && engOpts.Parallelism == 0 {
		// Queries already run concurrently on the pool; keep each refine
		// step serial by default so pool workers do not oversubscribe CPUs.
		engOpts.Parallelism = 1
	}
	s := &Server{
		index:    index,
		engine:   core.NewEngine(index, provider, engOpts),
		provider: provider,
		parent:   index.Partition().Parent(),
		opts:     opts,
		tasks:    make(chan *task, opts.QueueDepth),
		cache:    make(map[queryKey]cacheEntry),
		inflight: make(map[queryKey]*call),
	}
	s.workers.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s
}

// Index returns the server's DTLP index.
func (s *Server) Index() *dtlp.Index { return s.index }

// Engine returns the server's underlying engine.  Direct engine queries
// bypass the scheduler and cache but are still snapshot-isolated.
func (s *Server) Engine() *core.Engine { return s.engine }

// worker drains the task queue, answering each query against the newest
// epoch available when the query starts executing.
func (s *Server) worker() {
	defer s.workers.Done()
	for t := range s.tasks {
		view := s.index.CurrentView()
		res, err := s.engine.QueryView(view, t.c.key.s, t.c.key.t, t.c.key.k)
		s.finish(t.c, res, err)
	}
}

// finish completes a call: publishes the result to all joined waiters and
// installs it in the epoch-tagged cache.
func (s *Server) finish(c *call, res core.Result, err error) {
	c.res, c.err = res, err
	s.mu.Lock()
	if s.inflight[c.key] == c {
		delete(s.inflight, c.key)
	}
	if err == nil && s.opts.CacheCapacity > 0 {
		s.storeCacheLocked(c.key, cacheEntry{epoch: res.Epoch, res: res})
	}
	s.mu.Unlock()
	close(c.done)
}

// storeCacheLocked inserts an entry, evicting stale entries (and, if the
// cache is still full, arbitrary ones) to respect the capacity bound.
// Callers must hold s.mu.
func (s *Server) storeCacheLocked(key queryKey, e cacheEntry) {
	if len(s.cache) >= s.opts.CacheCapacity {
		cur := s.index.CurrentView().Epoch()
		for k, old := range s.cache {
			if old.epoch != cur {
				delete(s.cache, k)
			}
		}
		for k := range s.cache {
			if len(s.cache) < s.opts.CacheCapacity {
				break
			}
			delete(s.cache, k)
		}
	}
	s.cache[key] = e
}

// Query answers q(s, t) with the given k through the scheduler: cached
// results for the current epoch are returned immediately, identical in-flight
// queries are joined, and everything else waits for a pool worker.  Query
// blocks until the result is available and is safe for unbounded concurrent
// use; admission beyond the queue depth blocks callers (backpressure) rather
// than growing an unbounded backlog.
func (s *Server) Query(src, dst graph.VertexID, k int) (core.Result, error) {
	key := queryKey{s: src, t: dst, k: k}

	s.mu.Lock()
	// The epoch is read under s.mu so the cache/in-flight decisions below
	// are made against a single consistent notion of "current": reading it
	// earlier could evict an entry that is in fact newer than our reading.
	epoch := s.index.CurrentView().Epoch()
	if s.closed {
		s.mu.Unlock()
		return core.Result{}, fmt.Errorf("serve: server is closed")
	}
	if e, ok := s.cache[key]; ok {
		if e.epoch == epoch {
			s.mu.Unlock()
			s.queries.Add(1)
			s.hits.Add(1)
			return e.res, nil
		}
		delete(s.cache, key) // stale epoch: lazy invalidation
	}
	if c, ok := s.inflight[key]; ok && c.epoch == epoch {
		// An identical query for the same epoch is already running (or
		// queued); share its outcome instead of computing it twice.
		s.mu.Unlock()
		<-c.done
		s.queries.Add(1)
		s.coalesced.Add(1)
		return c.res, c.err
	}
	c := &call{key: key, epoch: epoch, done: make(chan struct{})}
	s.inflight[key] = c
	s.senders.Add(1)
	s.mu.Unlock()

	s.tasks <- &task{c: c}
	s.senders.Done()
	<-c.done
	s.queries.Add(1)
	return c.res, c.err
}

// ApplyUpdates applies one batch of edge weight updates: first to the master
// copy of the road network, then to the index, which publishes the next
// epoch.  Batches from concurrent callers are serialized; queries already in
// flight keep their epoch.  When a Store is configured the batch is appended
// to the write-ahead log under the epoch it produced before ApplyUpdates
// returns, and every Options.SnapshotEvery batches a fresh snapshot is
// written (rotating the WAL).
func (s *Server) ApplyUpdates(batch []graph.WeightUpdate) error {
	if len(batch) == 0 {
		return nil
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if err := s.parent.ApplyUpdates(batch); err != nil {
		return err
	}
	epoch, err := s.index.ApplyUpdatesEpoch(batch)
	if err != nil {
		return err
	}
	// The WAL append and the worker broadcast are independent obligations:
	// a durability failure must not leave the (already updated) master and
	// the standalone workers with diverged weights, so the broadcast runs
	// regardless and the errors are joined.
	var errs []error
	if s.opts.Store != nil {
		if err := s.opts.Store.AppendBatch(epoch, batch); err != nil {
			errs = append(errs, fmt.Errorf("serve: logging update batch for epoch %d: %w", epoch, err))
		}
	}
	if s.opts.Broadcast != nil {
		if err := s.opts.Broadcast(batch); err != nil {
			errs = append(errs, fmt.Errorf("serve: broadcasting update batch: %w", err))
		}
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	s.batches.Add(1)
	s.updates.Add(int64(len(batch)))
	if s.opts.Store != nil && s.opts.SnapshotEvery > 0 {
		s.sinceSnapshot++
		if s.sinceSnapshot >= s.opts.SnapshotEvery {
			if _, err := s.opts.Store.SaveSnapshot(s.index); err != nil {
				return fmt.Errorf("serve: periodic snapshot at epoch %d: %w", epoch, err)
			}
			s.sinceSnapshot = 0
			s.snapshots.Add(1)
		}
	}
	return nil
}

// Stats returns the server's scheduling counters, including the refine
// transport's cross-query batching counters when the provider exposes them.
func (s *Server) Stats() Stats {
	st := Stats{
		QueriesServed:  s.queries.Load(),
		CacheHits:      s.hits.Load(),
		Coalesced:      s.coalesced.Load(),
		UpdateBatches:  s.batches.Load(),
		UpdatesApplied: s.updates.Load(),
		Snapshots:      s.snapshots.Load(),
		Epoch:          s.index.CurrentView().Epoch(),
	}
	if bp, ok := s.provider.(batchStatsProvider); ok {
		bst := bp.BatchStats()
		st.RPCBatches = bst.Batches
		st.PairsCoalesced = bst.Coalesced
		st.DedupHits = bst.DedupHits
		st.PairCacheHits = bst.CacheHits
	}
	if fp, ok := s.provider.(failoverStatsProvider); ok {
		fst := fp.FailoverStats()
		st.Failovers = fst.Failovers
		st.HedgedBatches = fst.HedgedBatches
		st.HedgeWins = fst.HedgeWins
		st.HedgeDrops = fst.HedgeDrops
	}
	return st
}

// Close drains the worker pool.  Queries submitted after Close fail;
// queries already admitted complete normally.  Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.senders.Wait() // every admitted task is in the channel now
	close(s.tasks)
	s.workers.Wait()
}
