// Package serve is the concurrent, snapshot-isolated query layer on top of
// the KSP-DG engine: the front door a production deployment would expose.
//
// A Server owns the master copy of the road network and its DTLP index and
// separates the two kinds of traffic the paper's system must absorb:
//
//   - Queries run on a bounded worker pool.  Each query is answered against
//     one immutable index epoch (dtlp.IndexView), so an in-flight query never
//     observes a half-applied update batch no matter how many batches land
//     while it runs.  Identical concurrent queries are coalesced, and results
//     are cached per (source, target, k) until the epoch they were computed
//     on is superseded.
//   - Weight updates go through a single writer that applies each batch to
//     the master graph and the index, then publishes the next epoch
//     atomically.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"kspdg/internal/cluster"
	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/logx"
	"kspdg/internal/rpcbatch"
	"kspdg/internal/trace"
	"kspdg/internal/workload"
)

// ErrEpochEvicted is returned (wrapped) by QueryAt and StreamQueryAt when the
// requested epoch has aged out of the index's view retention window.  Serving
// layers map it to a distinct status (the gateway returns 410 Gone).
var ErrEpochEvicted = errors.New("serve: epoch evicted from the retention window")

// Persister receives durability callbacks from the server's writer path.
// *store.Store implements it; serve depends only on this interface so the
// persistence subsystem stays optional.
type Persister interface {
	// AppendBatch logs one applied weight batch under the epoch it produced.
	AppendBatch(epoch uint64, batch []graph.WeightUpdate) error
	// AppendTopology logs one applied topology batch under the epoch it
	// produced, interleaved with weight batches in epoch order.
	AppendTopology(epoch uint64, up graph.TopologyUpdate) error
	// SaveSnapshot persists the index at its current epoch and returns that
	// epoch.
	SaveSnapshot(index *dtlp.Index) (uint64, error)
}

// Options configures a Server.
type Options struct {
	// Workers is the size of the query worker pool.  Zero means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of admitted-but-unstarted queries.
	// Submitting beyond it blocks (backpressure).  Zero means 4*Workers.
	QueueDepth int
	// CacheCapacity bounds the number of cached query results.  Zero means
	// 1024; negative disables caching.
	CacheCapacity int
	// Engine configures the underlying KSP-DG engines.
	Engine core.Options
	// Broadcast, when set, is invoked with each update batch after it has
	// been applied to the master graph and index.  Deployments use it to
	// forward the batch to standalone workers that maintain their own weight
	// copies; its error fails the ApplyUpdates call that triggered it.
	Broadcast func(batch []graph.WeightUpdate) error
	// BroadcastTopology, when set, forwards each applied topology batch to
	// the deployment's workers after the master index has published it.
	// Topology batches reach every worker (unlike per-subgraph weight
	// routing) because an insert or delete can reshape routing anywhere; its
	// error fails the ApplyTopology call that triggered it.
	BroadcastTopology func(up graph.TopologyUpdate) error
	// Store, when set, makes every applied batch durable: ApplyUpdates
	// appends the batch to the write-ahead log under its exact epoch before
	// returning, and a WAL append failure fails the call (the batch is
	// already applied in memory, but the caller learns durability was lost).
	Store Persister
	// SnapshotEvery, when positive together with Store, writes a fresh index
	// snapshot after every SnapshotEvery applied batches, rotating the WAL
	// and bounding recovery replay cost.
	SnapshotEvery int
	// Chaos, when set, executes the fault-injection events of a scenario
	// replayed through RunScenario (kill/restart a worker of the deployment
	// backing the refine provider).  Nil ignores chaos events.
	Chaos func(ev workload.ChaosEvent) error
	// Logger, when set, receives a structured slow-query log line for every
	// non-converged or budget-terminated query, and for every query slower
	// than SlowQueryThreshold.  The line carries the trace id and the
	// per-stage duration breakdown when the query was traced.
	Logger *logx.Logger
	// SlowQueryThreshold is the duration above which a successfully answered
	// query is logged as slow.  Zero disables the duration rule; outliers
	// (non-converged, budget-terminated) are logged regardless.
	SlowQueryThreshold time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.CacheCapacity == 0 {
		o.CacheCapacity = 1024
	}
	return o
}

// Stats aggregates a server's scheduling counters.
type Stats struct {
	QueriesServed  int64 // completed queries, including cache hits
	CacheHits      int64 // queries answered from the epoch-tagged cache
	Coalesced      int64 // queries that joined an identical in-flight query
	UpdateBatches  int64 // weight update batches applied
	UpdatesApplied int64 // individual edge updates applied
	Snapshots      int64 // periodic snapshots written through Options.Store
	// TopologyBatches counts applied topology batches (edge/vertex inserts
	// and deletes); SubgraphsRebuilt totals the subgraphs whose bounding
	// paths were re-enumerated across those batches — the cumulative
	// incremental-maintenance cost of the write path.
	TopologyBatches  int64
	SubgraphsRebuilt int64
	// NonConverged counts successfully answered queries whose search was cut
	// off while it still held fewer than k proven candidates: their paths may
	// be silently truncated.  With the adaptive iteration budget in place
	// this should stay at zero in healthy deployments; a nonzero rate means
	// the MaxIterations safety valve fired before k candidates existed.
	NonConverged int64
	// BudgetTerminated counts successfully answered queries the adaptive
	// iteration budget (or the MaxIterations cap) terminated early with a
	// principled near-exact answer: k paths, each within Result.BoundGap of
	// its exact counterpart.  This is the tunable replacement for the old
	// iteration-cap tail — the former multi-minute outliers now land here,
	// bounded by core.Options.StallWindow.
	BudgetTerminated int64
	// MaxBoundGap is the largest Result.BoundGap observed across
	// budget-terminated queries since the server started, i.e. the worst
	// distance overshoot any near-exact answer may have had.
	MaxBoundGap float64
	// Canceled counts queries abandoned before completion because their
	// context was canceled or blew its deadline (including queued queries
	// whose last waiter hung up before a worker picked them up).
	Canceled int64
	Epoch    uint64
	// RPCBatches, PairsCoalesced and DedupHits mirror the provider's
	// cross-query batching counters (see rpcbatch.Stats) when the refine step
	// runs on a batching transport; they stay zero for local providers.
	RPCBatches     int64
	PairsCoalesced int64
	DedupHits      int64
	PairCacheHits  int64
	// Failovers, HedgedBatches, HedgeWins and HedgeDrops mirror the replica
	// failover counters (see cluster.FailoverStats) when the refine step runs
	// on a replicated transport; they stay zero otherwise.
	Failovers     int64
	HedgedBatches int64
	HedgeWins     int64
	HedgeDrops    int64
}

// batchStatsProvider is implemented by batching refine-step providers (the
// cluster transports) that can report their coalescing counters.
type batchStatsProvider interface {
	BatchStats() rpcbatch.Stats
}

// failoverStatsProvider is implemented by replica-aware refine-step providers
// (cluster.ReplicatedRemoteProvider) that can report their failover traffic.
type failoverStatsProvider interface {
	FailoverStats() cluster.FailoverStats
}

// Server schedules concurrent KSP queries and weight updates over one index.
type Server struct {
	index    *dtlp.Index
	engine   *core.Engine
	provider core.PartialProvider
	opts     Options

	tasks   chan *task
	workers sync.WaitGroup
	senders sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	cache    map[queryKey]cacheEntry
	inflight map[queryKey]*call

	// writeMu serializes the whole writer path (graph + index + WAL +
	// broadcast) so WAL records land in exactly the epoch order the index
	// published and periodic snapshots observe a quiescent writer.
	writeMu       sync.Mutex
	sinceSnapshot int

	queries          atomic.Int64
	hits             atomic.Int64
	coalesced        atomic.Int64
	batches          atomic.Int64
	updates          atomic.Int64
	topoBatches      atomic.Int64
	subgraphsRebuilt atomic.Int64
	snapshots        atomic.Int64
	nonConverged     atomic.Int64
	budgetTerminated atomic.Int64
	maxBoundGap      atomic.Uint64 // math.Float64bits, monotonic max
	canceled         atomic.Int64
}

type queryKey struct {
	s, t graph.VertexID
	k    int
}

type cacheEntry struct {
	epoch uint64
	res   core.Result
}

// call is one scheduled computation.  Plain queries are shared: concurrent
// identical queries join the same call and its result lands in the cache.
// Epoch-pinned and streaming queries get private calls (pin answers are
// immutable but rare; stream yields belong to one client).
//
// The computation runs under its own context (ctx/cancel), which is canceled
// once every joined waiter has abandoned the call — that is how a dead
// client's deadline propagates into the engine loop and stops consuming
// worker capacity, without a single impatient joiner killing a computation
// other callers still want.
type call struct {
	key    queryKey
	epoch  uint64 // epoch current at registration; joiners must match
	shared bool   // registered in inflight + eligible for the cache

	view  *dtlp.IndexView        // pinned epoch view; nil = newest at execution
	yield func(graph.Path) error // streaming observer; runs on the pool worker

	ctx     context.Context
	cancel  context.CancelFunc
	waiters atomic.Int32 // callers currently waiting on done

	// reqSpan is the creating caller's request span (nil for untraced
	// callers).  The computation's queue/execute spans — and everything the
	// engine and transport hang beneath them — belong to the creator's
	// trace; joiners only record an annotation naming it (see QueryCtx).
	reqSpan   *trace.Span
	queueSpan *trace.Span

	done chan struct{}
	res  core.Result
	err  error
}

// newCall registers a computation created by the caller behind ctx.  The
// call's execution context is detached from the creator's cancellation (a
// coalesced computation must outlive any single waiter) but inherits its
// trace span, under which the queue wait starts immediately.
func newCall(ctx context.Context, key queryKey) *call {
	cctx, cancel := context.WithCancel(context.Background())
	c := &call{key: key, ctx: cctx, cancel: cancel, done: make(chan struct{})}
	c.reqSpan = trace.FromContext(ctx)
	c.queueSpan = c.reqSpan.Child("queue")
	c.waiters.Store(1)
	return c
}

type task struct{ c *call }

// New creates a server over the given index.  provider selects where the
// refine step runs: nil uses a local provider with the server's worker
// parallelism, anything else (e.g. a cluster provider) is passed through to
// the engine.  Queries gain snapshot isolation on the refine step whenever
// the provider implements core.ViewProvider.
func New(index *dtlp.Index, provider core.PartialProvider, opts Options) *Server {
	opts = opts.withDefaults()
	engOpts := opts.Engine
	if provider == nil && engOpts.Parallelism == 0 {
		// Queries already run concurrently on the pool; keep each refine
		// step serial by default so pool workers do not oversubscribe CPUs.
		engOpts.Parallelism = 1
	}
	s := &Server{
		index:    index,
		engine:   core.NewEngine(index, provider, engOpts),
		provider: provider,
		opts:     opts,
		tasks:    make(chan *task, opts.QueueDepth),
		cache:    make(map[queryKey]cacheEntry),
		inflight: make(map[queryKey]*call),
	}
	s.workers.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s
}

// Index returns the server's DTLP index.
func (s *Server) Index() *dtlp.Index { return s.index }

// Engine returns the server's underlying engine.  Direct engine queries
// bypass the scheduler and cache but are still snapshot-isolated.
func (s *Server) Engine() *core.Engine { return s.engine }

// worker drains the task queue, answering each query against its pinned view
// or the newest epoch available when the query starts executing.  Calls whose
// context died while queued are failed without touching the engine.
func (s *Server) worker() {
	defer s.workers.Done()
	for t := range s.tasks {
		c := t.c
		c.queueSpan.Finish()
		if err := c.ctx.Err(); err != nil {
			s.finish(c, core.Result{}, err)
			continue
		}
		view := c.view
		if view == nil {
			view = s.index.CurrentView()
		}
		// The execute span is injected into the call's detached context so the
		// engine (and the batching transport beneath it) hang their iteration
		// and rpc spans under the creator's trace.
		exec := c.reqSpan.Child("execute")
		ctx := trace.NewContext(c.ctx, exec)
		var res core.Result
		var err error
		if c.yield != nil {
			res, err = s.engine.StreamView(ctx, view, c.key.s, c.key.t, c.key.k, c.yield)
		} else {
			res, err = s.engine.QueryViewCtx(ctx, view, c.key.s, c.key.t, c.key.k)
		}
		exec.Finish()
		s.finish(c, res, err)
	}
}

// finish completes a call: publishes the result to all joined waiters and,
// for shared calls, installs it in the epoch-tagged cache.
func (s *Server) finish(c *call, res core.Result, err error) {
	c.res, c.err = res, err
	c.cancel()
	s.mu.Lock()
	if c.shared && s.inflight[c.key] == c {
		delete(s.inflight, c.key)
	}
	if err == nil && c.shared && s.opts.CacheCapacity > 0 {
		s.storeCacheLocked(c.key, cacheEntry{epoch: res.Epoch, res: res})
	}
	s.mu.Unlock()
	tr := c.reqSpan.Trace()
	outlier := false
	switch {
	case err == nil && !res.Converged:
		s.nonConverged.Add(1)
		tr.MarkNonConverged()
		outlier = true
	case err == nil && res.BoundGap > 0:
		s.budgetTerminated.Add(1)
		tr.MarkNonConverged()
		outlier = true
		for {
			cur := s.maxBoundGap.Load()
			if res.BoundGap <= math.Float64frombits(cur) {
				break
			}
			if s.maxBoundGap.CompareAndSwap(cur, math.Float64bits(res.BoundGap)) {
				break
			}
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.canceled.Add(1)
		tr.MarkCanceled()
	case err != nil:
		tr.MarkError()
	}
	s.logSlowQuery(c, res, err, outlier)
	close(c.done)
}

// logSlowQuery emits the structured slow-query log line for outliers
// (non-converged or budget-terminated answers) and for queries slower than
// Options.SlowQueryThreshold, carrying the trace id and per-stage breakdown
// when the query was traced.
func (s *Server) logSlowQuery(c *call, res core.Result, err error, outlier bool) {
	lg := s.opts.Logger
	if lg == nil || err != nil {
		return
	}
	slow := s.opts.SlowQueryThreshold > 0 && res.Elapsed >= s.opts.SlowQueryThreshold
	if !outlier && !slow {
		return
	}
	kv := []any{
		"s", uint64(c.key.s), "t", uint64(c.key.t), "k", c.key.k,
		"epoch", res.Epoch,
		"elapsed", res.Elapsed.Round(time.Microsecond).String(),
		"iterations", res.Iterations,
		"converged", res.Converged,
	}
	if res.BoundGap > 0 {
		kv = append(kv, "bound_gap", strconv.FormatFloat(res.BoundGap, 'g', -1, 64))
	}
	if tr := c.reqSpan.Trace(); tr != nil {
		kv = append(kv, "trace", trace.IDString(tr.ID()))
		stages := tr.Stages()
		names := make([]string, 0, len(stages))
		for name := range stages {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			kv = append(kv, "stage_"+name, stages[name].Round(time.Microsecond).String())
		}
	}
	lg.Warn("slow query", kv...)
}

// abandon records that one waiter gave up on c.  The last waiter to leave
// cancels the computation and unregisters the call, so the next identical
// query starts fresh instead of joining a corpse.
func (s *Server) abandon(c *call) {
	s.mu.Lock()
	if c.waiters.Add(-1) == 0 {
		if c.shared && s.inflight[c.key] == c {
			delete(s.inflight, c.key)
		}
		c.cancel()
	}
	s.mu.Unlock()
}

// storeCacheLocked inserts an entry, evicting stale entries (and, if the
// cache is still full, arbitrary ones) to respect the capacity bound.
// Callers must hold s.mu.
func (s *Server) storeCacheLocked(key queryKey, e cacheEntry) {
	if len(s.cache) >= s.opts.CacheCapacity {
		cur := s.index.CurrentView().Epoch()
		for k, old := range s.cache {
			if old.epoch != cur {
				delete(s.cache, k)
			}
		}
		for k := range s.cache {
			if len(s.cache) < s.opts.CacheCapacity {
				break
			}
			delete(s.cache, k)
		}
	}
	s.cache[key] = e
}

// Query answers q(s, t) with the given k through the scheduler: cached
// results for the current epoch are returned immediately, identical in-flight
// queries are joined, and everything else waits for a pool worker.  Query
// blocks until the result is available and is safe for unbounded concurrent
// use; admission beyond the queue depth blocks callers (backpressure) rather
// than growing an unbounded backlog.
func (s *Server) Query(src, dst graph.VertexID, k int) (core.Result, error) {
	return s.QueryCtx(context.Background(), src, dst, k)
}

// QueryCtx is Query under a context: once ctx is done the caller returns
// immediately with ctx's error, and — when it was the computation's last
// remaining waiter — the computation itself is canceled mid-iteration, so a
// hung-up client stops consuming worker capacity.  A coalesced computation
// with other live waiters keeps running for them.
func (s *Server) QueryCtx(ctx context.Context, src, dst graph.VertexID, k int) (core.Result, error) {
	if err := ctx.Err(); err != nil {
		return core.Result{}, err
	}
	key := queryKey{s: src, t: dst, k: k}

	s.mu.Lock()
	// The epoch is read under s.mu so the cache/in-flight decisions below
	// are made against a single consistent notion of "current": reading it
	// earlier could evict an entry that is in fact newer than our reading.
	epoch := s.index.CurrentView().Epoch()
	if s.closed {
		s.mu.Unlock()
		return core.Result{}, fmt.Errorf("serve: server is closed")
	}
	if e, ok := s.cache[key]; ok {
		if e.epoch == epoch {
			s.mu.Unlock()
			s.queries.Add(1)
			s.hits.Add(1)
			return e.res, nil
		}
		delete(s.cache, key) // stale epoch: lazy invalidation
	}
	if c, ok := s.inflight[key]; ok && c.epoch == epoch {
		// An identical query for the same epoch is already running (or
		// queued); share its outcome instead of computing it twice.  A traced
		// joiner records which trace owns the computation it attached to, so
		// its own trace explains where the time went.
		c.waiters.Add(1)
		s.mu.Unlock()
		var jspan *trace.Span
		if js := trace.FromContext(ctx); js != nil {
			jspan = js.Child("coalesced")
			jspan.SetAttr("owner_trace", trace.IDString(c.reqSpan.Trace().ID()))
		}
		select {
		case <-c.done:
			jspan.Finish()
			s.queries.Add(1)
			s.coalesced.Add(1)
			return c.res, c.err
		case <-ctx.Done():
			jspan.Finish()
			s.abandon(c)
			return core.Result{}, ctx.Err()
		}
	}
	c := newCall(ctx, key)
	c.epoch = epoch
	c.shared = true
	s.inflight[key] = c
	s.senders.Add(1)
	s.mu.Unlock()
	return s.await(ctx, c)
}

// QueryAt answers the query pinned to a specific retained index epoch: the
// whole search runs against that epoch's frozen weights regardless of how
// many updates have landed since.  Pinned queries bypass the cache and
// coalescing (the current-epoch bookkeeping does not apply) but still run on
// the worker pool.  A request for an epoch outside the retention window
// fails with an error wrapping ErrEpochEvicted.
func (s *Server) QueryAt(ctx context.Context, epoch uint64, src, dst graph.VertexID, k int) (core.Result, error) {
	view := s.index.ViewAt(epoch)
	if view == nil {
		return core.Result{}, fmt.Errorf("%w: epoch %d (current %d)",
			ErrEpochEvicted, epoch, s.index.CurrentView().Epoch())
	}
	return s.submit(ctx, queryKey{s: src, t: dst, k: k}, view, nil)
}

// StreamQuery answers the query against the newest epoch available at
// execution, emitting settled result paths incrementally through yield (see
// core.Engine.StreamView) from the pool worker executing the query.  The
// caller blocks until the query completes; yield errors abort the
// computation.  Streaming queries bypass the cache and coalescing.
func (s *Server) StreamQuery(ctx context.Context, src, dst graph.VertexID, k int, yield func(graph.Path) error) (core.Result, error) {
	return s.submit(ctx, queryKey{s: src, t: dst, k: k}, nil, yield)
}

// StreamQueryAt is StreamQuery pinned to a retained epoch.
func (s *Server) StreamQueryAt(ctx context.Context, epoch uint64, src, dst graph.VertexID, k int, yield func(graph.Path) error) (core.Result, error) {
	view := s.index.ViewAt(epoch)
	if view == nil {
		return core.Result{}, fmt.Errorf("%w: epoch %d (current %d)",
			ErrEpochEvicted, epoch, s.index.CurrentView().Epoch())
	}
	return s.submit(ctx, queryKey{s: src, t: dst, k: k}, view, yield)
}

// submit schedules a private (uncached, uncoalesced) call on the pool.
func (s *Server) submit(ctx context.Context, key queryKey, view *dtlp.IndexView, yield func(graph.Path) error) (core.Result, error) {
	if err := ctx.Err(); err != nil {
		return core.Result{}, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return core.Result{}, fmt.Errorf("serve: server is closed")
	}
	c := newCall(ctx, key)
	c.view = view
	c.yield = yield
	s.senders.Add(1)
	s.mu.Unlock()
	return s.await(ctx, c)
}

// await enqueues the freshly created call and waits for its outcome as its
// first waiter.
func (s *Server) await(ctx context.Context, c *call) (core.Result, error) {
	select {
	case s.tasks <- &task{c: c}:
		s.senders.Done()
	case <-ctx.Done():
		// The creator's patience ran out while the queue was full, but
		// joiners with live contexts may share this call: hand the blocking
		// enqueue off to a detached sender so the call still executes for
		// them.  If every waiter is gone by then, abandon() has canceled the
		// call's context and the worker fast-fails it without computing.
		// The sender holds s.senders, so Close cannot close the task channel
		// underneath the pending send.
		go func() {
			s.tasks <- &task{c: c}
			s.senders.Done()
		}()
		s.abandon(c)
		return core.Result{}, ctx.Err()
	}
	select {
	case <-c.done:
		s.queries.Add(1)
		return c.res, c.err
	case <-ctx.Done():
		s.abandon(c)
		return core.Result{}, ctx.Err()
	}
}

// ApplyUpdates applies one batch of edge weight updates: first to the master
// copy of the road network, then to the index, which publishes the next
// epoch.  Batches from concurrent callers are serialized; queries already in
// flight keep their epoch.  When a Store is configured the batch is appended
// to the write-ahead log under the epoch it produced before ApplyUpdates
// returns, and every Options.SnapshotEvery batches a fresh snapshot is
// written (rotating the WAL).
func (s *Server) ApplyUpdates(batch []graph.WeightUpdate) error {
	_, err := s.ApplyUpdatesEpoch(batch)
	return err
}

// ApplyUpdatesEpoch is ApplyUpdates returning the epoch the batch published,
// so callers answering on behalf of one specific client (the gateway's
// /v1/updates) can attribute the batch to its exact epoch instead of
// re-reading the current epoch after the fact — under concurrent writers
// those are not the same thing.  An empty batch publishes nothing and
// returns the current epoch.
func (s *Server) ApplyUpdatesEpoch(batch []graph.WeightUpdate) (uint64, error) {
	return s.ApplyUpdatesEpochCtx(context.Background(), batch)
}

// ApplyUpdatesEpochCtx is ApplyUpdatesEpoch under a context: a trace span
// carried by ctx gains rebuild/wal/broadcast/snapshot child spans covering the
// write path's phases.  The context is a trace carrier only — the write path
// does not consume cancellation (a half-applied batch is worse than a late
// one).
func (s *Server) ApplyUpdatesEpochCtx(ctx context.Context, batch []graph.WeightUpdate) (uint64, error) {
	if len(batch) == 0 {
		return s.index.CurrentView().Epoch(), nil
	}
	sp := trace.FromContext(ctx)
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	rs := sp.Child("rebuild")
	rs.SetAttrInt("updates", int64(len(batch)))
	// The master graph is resolved through the index each time: topology
	// batches replace it copy-on-write, so a pointer cached at construction
	// would go stale after the first insert or delete.
	if err := s.index.Partition().Parent().ApplyUpdates(batch); err != nil {
		rs.Finish()
		return 0, err
	}
	epoch, err := s.index.ApplyUpdatesEpoch(batch)
	rs.Finish()
	if err != nil {
		return 0, err
	}
	// The WAL append and the worker broadcast are independent obligations:
	// a durability failure must not leave the (already updated) master and
	// the standalone workers with diverged weights, so the broadcast runs
	// regardless and the errors are joined.
	var errs []error
	if s.opts.Store != nil {
		ws := sp.Child("wal")
		if err := s.opts.Store.AppendBatch(epoch, batch); err != nil {
			errs = append(errs, fmt.Errorf("serve: logging update batch for epoch %d: %w", epoch, err))
		}
		ws.Finish()
	}
	if s.opts.Broadcast != nil {
		bs := sp.Child("broadcast")
		if err := s.opts.Broadcast(batch); err != nil {
			errs = append(errs, fmt.Errorf("serve: broadcasting update batch: %w", err))
		}
		bs.Finish()
	}
	if len(errs) > 0 {
		return epoch, errors.Join(errs...)
	}
	s.batches.Add(1)
	s.updates.Add(int64(len(batch)))
	ss := sp.Child("snapshot")
	err = s.maybeSnapshotLocked(epoch)
	ss.Finish()
	if err != nil {
		return epoch, err
	}
	return epoch, nil
}

// ApplyTopology applies one batch of topology mutations (edge/vertex inserts
// and deletes): the index derives the new master graph and partition
// copy-on-write, rebuilds only the touched subgraphs, and publishes the next
// epoch exactly like a weight batch.  Topology and weight batches from
// concurrent callers serialize on the same writer lock, so WAL records land
// in epoch order regardless of kind.
func (s *Server) ApplyTopology(up graph.TopologyUpdate) error {
	_, err := s.ApplyTopologyEpoch(up)
	return err
}

// ApplyTopologyEpoch is ApplyTopology returning the epoch the batch
// published (the current epoch for an empty batch).
func (s *Server) ApplyTopologyEpoch(up graph.TopologyUpdate) (uint64, error) {
	st, err := s.ApplyTopologyStats(up)
	return st.Epoch, err
}

// ApplyTopologyStats is ApplyTopology returning the batch's maintenance
// statistics: the epoch it published, the global ids assigned to inserted
// edges, the sorted ids of all deleted edges, and the number of subgraphs
// rebuilt.  Callers answering on behalf of one specific client (the
// gateway's /v1/topology) use it to attribute the batch exactly.
func (s *Server) ApplyTopologyStats(up graph.TopologyUpdate) (dtlp.TopologyStats, error) {
	return s.ApplyTopologyStatsCtx(context.Background(), up)
}

// ApplyTopologyStatsCtx is ApplyTopologyStats under a context; like
// ApplyUpdatesEpochCtx, the context carries an optional trace span (which
// gains rebuild/wal/broadcast/snapshot children) and nothing else.
func (s *Server) ApplyTopologyStatsCtx(ctx context.Context, up graph.TopologyUpdate) (dtlp.TopologyStats, error) {
	if up.IsZero() {
		return dtlp.TopologyStats{Epoch: s.index.CurrentView().Epoch()}, nil
	}
	sp := trace.FromContext(ctx)
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	rs := sp.Child("rebuild")
	// Unlike the weight path, the index applies the mutation to the master
	// graph itself (the new graph and partition are one atomic generation),
	// so there is no separate parent.ApplyTopology step here.
	st, err := s.index.ApplyTopologyStats(up)
	rs.SetAttrInt("subgraphs_rebuilt", int64(st.SubgraphsRebuilt))
	rs.Finish()
	if err != nil {
		return st, err
	}
	var errs []error
	if s.opts.Store != nil {
		ws := sp.Child("wal")
		if err := s.opts.Store.AppendTopology(st.Epoch, up); err != nil {
			errs = append(errs, fmt.Errorf("serve: logging topology batch for epoch %d: %w", st.Epoch, err))
		}
		ws.Finish()
	}
	if s.opts.BroadcastTopology != nil {
		bs := sp.Child("broadcast")
		if err := s.opts.BroadcastTopology(up); err != nil {
			errs = append(errs, fmt.Errorf("serve: broadcasting topology batch: %w", err))
		}
		bs.Finish()
	}
	if len(errs) > 0 {
		return st, errors.Join(errs...)
	}
	s.topoBatches.Add(1)
	s.subgraphsRebuilt.Add(int64(st.SubgraphsRebuilt))
	ss := sp.Child("snapshot")
	err = s.maybeSnapshotLocked(st.Epoch)
	ss.Finish()
	if err != nil {
		return st, err
	}
	return st, nil
}

// maybeSnapshotLocked advances the shared snapshot cadence (weight and
// topology batches both count toward SnapshotEvery) and writes a snapshot
// when it is due.  Callers must hold writeMu.
func (s *Server) maybeSnapshotLocked(epoch uint64) error {
	if s.opts.Store == nil || s.opts.SnapshotEvery <= 0 {
		return nil
	}
	s.sinceSnapshot++
	if s.sinceSnapshot < s.opts.SnapshotEvery {
		return nil
	}
	if _, err := s.opts.Store.SaveSnapshot(s.index); err != nil {
		return fmt.Errorf("serve: periodic snapshot at epoch %d: %w", epoch, err)
	}
	s.sinceSnapshot = 0
	s.snapshots.Add(1)
	return nil
}

// Stats returns the server's scheduling counters, including the refine
// transport's cross-query batching counters when the provider exposes them.
func (s *Server) Stats() Stats {
	st := Stats{
		QueriesServed:  s.queries.Load(),
		CacheHits:      s.hits.Load(),
		Coalesced:      s.coalesced.Load(),
		UpdateBatches:  s.batches.Load(),
		UpdatesApplied: s.updates.Load(),
		Snapshots:      s.snapshots.Load(),

		TopologyBatches:  s.topoBatches.Load(),
		SubgraphsRebuilt: s.subgraphsRebuilt.Load(),
		NonConverged:     s.nonConverged.Load(),
		Canceled:         s.canceled.Load(),
		Epoch:            s.index.CurrentView().Epoch(),

		BudgetTerminated: s.budgetTerminated.Load(),
		MaxBoundGap:      math.Float64frombits(s.maxBoundGap.Load()),
	}
	if bp, ok := s.provider.(batchStatsProvider); ok {
		bst := bp.BatchStats()
		st.RPCBatches = bst.Batches
		st.PairsCoalesced = bst.Coalesced
		st.DedupHits = bst.DedupHits
		st.PairCacheHits = bst.CacheHits
	}
	if fp, ok := s.provider.(failoverStatsProvider); ok {
		fst := fp.FailoverStats()
		st.Failovers = fst.Failovers
		st.HedgedBatches = fst.HedgedBatches
		st.HedgeWins = fst.HedgeWins
		st.HedgeDrops = fst.HedgeDrops
	}
	return st
}

// Close drains the worker pool.  Queries submitted after Close fail;
// queries already admitted complete normally.  Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.senders.Wait() // every admitted task is in the channel now
	close(s.tasks)
	s.workers.Wait()
}
