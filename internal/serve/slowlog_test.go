package serve

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"kspdg/internal/logx"
	"kspdg/internal/testutil"
	"kspdg/internal/trace"
)

// syncBuffer collects log output safely across the serve workers.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestSlowQueryLogCarriesTraceAndStages: with the threshold at 1ns every
// query is an outlier, and the structured line must name the query, its
// trace id, and a per-stage breakdown an operator can paste into
// /debug/traces.
func TestSlowQueryLogCarriesTraceAndStages(t *testing.T) {
	var buf syncBuffer
	g := testutil.PaperGraph(t)
	_, s := buildServer(t, g, 6, 2, Options{
		Workers:            2,
		Logger:             logx.New(&buf, logx.LevelInfo),
		SlowQueryThreshold: time.Nanosecond,
	})
	defer s.Close()

	tracer := trace.New(trace.Options{Capacity: 8, SampleRate: 1})
	tr, root := tracer.StartTrace("request")
	ctx := trace.NewContext(context.Background(), root)
	if _, err := s.QueryCtx(ctx, testutil.V1, testutil.V19, 3); err != nil {
		t.Fatal(err)
	}
	root.Finish()
	tr.Finish()

	got := buf.String()
	if !strings.Contains(got, `msg="slow query"`) {
		t.Fatalf("no slow-query line emitted:\n%s", got)
	}
	for _, want := range []string{
		"level=warn",
		"trace=" + trace.IDString(tr.ID()),
		"converged=true",
		"stage_queue=",
		"stage_execute=",
		"iterations=",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("slow-query line missing %q:\n%s", want, got)
		}
	}
}

// TestSlowQueryLogSilentUnderThreshold: with no threshold configured, a
// healthy converged query must not log at all.
func TestSlowQueryLogSilentUnderThreshold(t *testing.T) {
	var buf syncBuffer
	g := testutil.PaperGraph(t)
	_, s := buildServer(t, g, 6, 2, Options{
		Workers: 2,
		Logger:  logx.New(&buf, logx.LevelInfo),
	})
	defer s.Close()
	if _, err := s.Query(testutil.V1, testutil.V19, 2); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); strings.Contains(got, "slow query") {
		t.Fatalf("healthy query logged as slow:\n%s", got)
	}
}
