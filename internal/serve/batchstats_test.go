package serve

import (
	"sync"
	"testing"

	"kspdg/internal/cluster"
	"kspdg/internal/dtlp"
	"kspdg/internal/partition"
	"kspdg/internal/testutil"
	"kspdg/internal/workload"
)

// TestStatsExposeBatchCounters serves concurrent queries over a batching
// cluster provider and checks the provider's coalescing counters surface in
// serve.Stats.
func TestStatsExposeBatchCounters(t *testing.T) {
	g := testutil.PaperGraph(t)
	p, err := partition.PartitionGraph(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dtlp.Build(p, dtlp.Config{Xi: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(x, cluster.Config{NumWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := New(x, c.Provider(), Options{Workers: 4, CacheCapacity: -1})
	defer s.Close()

	queries := workload.NewQueryGenerator(g.NumVertices(), 11).Batch(12)
	var wg sync.WaitGroup
	for _, q := range queries {
		wg.Add(1)
		go func(q workload.Query) {
			defer wg.Done()
			if _, err := s.Query(q.Source, q.Target, 2); err != nil {
				t.Errorf("query: %v", err)
			}
		}(q)
	}
	wg.Wait()
	st := s.Stats()
	if st.RPCBatches == 0 {
		t.Errorf("expected the cluster provider's batch counters in serve.Stats, got %+v", st)
	}
	if st.QueriesServed != int64(len(queries)) {
		t.Errorf("queries served = %d, want %d", st.QueriesServed, len(queries))
	}
}
