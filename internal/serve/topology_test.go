package serve

import (
	"errors"
	"strings"
	"testing"

	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/testutil"
)

// recordingPersister captures the durability callbacks of the writer path so
// tests can assert the exact interleaving of weight and topology records.
type recordingPersister struct {
	kinds     []string // "w" or "t", in append order
	epochs    []uint64
	snapshots int
	failTopo  error
}

func (p *recordingPersister) AppendBatch(epoch uint64, batch []graph.WeightUpdate) error {
	p.kinds = append(p.kinds, "w")
	p.epochs = append(p.epochs, epoch)
	return nil
}

func (p *recordingPersister) AppendTopology(epoch uint64, up graph.TopologyUpdate) error {
	if p.failTopo != nil {
		return p.failTopo
	}
	p.kinds = append(p.kinds, "t")
	p.epochs = append(p.epochs, epoch)
	return nil
}

func (p *recordingPersister) SaveSnapshot(index *dtlp.Index) (uint64, error) {
	p.snapshots++
	return index.CurrentView().Epoch(), nil
}

func TestServerApplyTopology(t *testing.T) {
	g := testutil.PaperGraph(t)
	_, s := buildServer(t, g, 6, 2, Options{Workers: 2})
	defer s.Close()

	pre, err := s.Query(testutil.V1, testutil.V19, 3)
	if err != nil || len(pre.Paths) == 0 {
		t.Fatalf("pre-topology query: %v (%d paths)", err, len(pre.Paths))
	}

	// Epoch 1: weight batch; epoch 2: topology batch.  Both kinds share the
	// epoch counter, so the topology stats must report epoch 2.
	if err := s.ApplyUpdates([]graph.WeightUpdate{{Edge: 0, NewWeight: 5}}); err != nil {
		t.Fatalf("weight batch: %v", err)
	}
	nv := graph.VertexID(g.NumVertices())
	st, err := s.ApplyTopologyStats(graph.TopologyUpdate{
		AddVertices: 1,
		InsertEdges: []graph.Edge{{U: testutil.V1, V: nv, Weight: 1}, {U: nv, V: testutil.V19, Weight: 1}},
	})
	if err != nil {
		t.Fatalf("topology batch: %v", err)
	}
	if st.Epoch != 2 {
		t.Fatalf("topology epoch = %d, want 2", st.Epoch)
	}
	if len(st.InsertedEdges) != 2 || st.SubgraphsRebuilt == 0 {
		t.Fatalf("unexpected topology stats: %+v", st)
	}

	// The server must answer against the post-topology parent: the two unit
	// edges through the fresh vertex form a strictly shorter v1->v19 path.
	post, err := s.Query(testutil.V1, testutil.V19, 3)
	if err != nil || len(post.Paths) == 0 {
		t.Fatalf("post-topology query: %v", err)
	}
	if post.Paths[0].Dist > 2+1e-9 {
		t.Fatalf("shortest v1->v19 after shortcut insert = %g, want 2", post.Paths[0].Dist)
	}
	if post.Epoch != 2 {
		t.Fatalf("post-topology query epoch = %d, want 2", post.Epoch)
	}

	stats := s.Stats()
	if stats.TopologyBatches != 1 || stats.SubgraphsRebuilt != int64(st.SubgraphsRebuilt) {
		t.Fatalf("server stats: %d topology batches, %d rebuilt; want 1, %d",
			stats.TopologyBatches, stats.SubgraphsRebuilt, st.SubgraphsRebuilt)
	}

	// An empty batch is a no-op that publishes nothing.
	st2, err := s.ApplyTopologyStats(graph.TopologyUpdate{})
	if err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if st2.Epoch != 2 {
		t.Fatalf("empty batch reported epoch %d, want unchanged 2", st2.Epoch)
	}
	if got := s.Stats().TopologyBatches; got != 1 {
		t.Fatalf("empty batch counted as applied: %d batches", got)
	}

	// An invalid batch must not publish an epoch or bump counters.
	if err := s.ApplyTopology(graph.TopologyUpdate{DeleteEdges: []graph.EdgeID{graph.EdgeID(g.NumEdges() + 10)}}); err == nil {
		t.Fatal("out-of-range delete must fail")
	}
	if got := s.Stats().Epoch; got != 2 {
		t.Fatalf("failed batch advanced the epoch to %d", got)
	}
}

func TestServerTopologyBroadcastAndWAL(t *testing.T) {
	g := testutil.PaperGraph(t)
	p := &recordingPersister{}
	var broadcasts []graph.TopologyUpdate
	_, s := buildServer(t, g, 6, 2, Options{
		Workers: 1,
		Store:   p,
		BroadcastTopology: func(up graph.TopologyUpdate) error {
			broadcasts = append(broadcasts, up)
			return nil
		},
	})
	defer s.Close()

	if err := s.ApplyUpdates([]graph.WeightUpdate{{Edge: 1, NewWeight: 4}}); err != nil {
		t.Fatal(err)
	}
	up := graph.TopologyUpdate{InsertEdges: []graph.Edge{{U: testutil.V2, V: testutil.V7, Weight: 3}}}
	if err := s.ApplyTopology(up); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyUpdates([]graph.WeightUpdate{{Edge: 2, NewWeight: 7}}); err != nil {
		t.Fatal(err)
	}

	wantKinds := []string{"w", "t", "w"}
	if strings.Join(p.kinds, "") != strings.Join(wantKinds, "") {
		t.Fatalf("WAL record kinds = %v, want %v", p.kinds, wantKinds)
	}
	for i, e := range p.epochs {
		if e != uint64(i+1) {
			t.Fatalf("WAL epochs = %v, want contiguous from 1", p.epochs)
		}
	}
	if len(broadcasts) != 1 || len(broadcasts[0].InsertEdges) != 1 {
		t.Fatalf("broadcast hook saw %d batches, want exactly the topology one", len(broadcasts))
	}

	// A WAL append failure must surface to the caller even though the batch
	// is already applied in memory.
	p.failTopo = errors.New("disk full")
	err := s.ApplyTopology(graph.TopologyUpdate{DeleteEdges: []graph.EdgeID{0}})
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("WAL failure not surfaced: %v", err)
	}
}
