package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"kspdg/internal/workload"
)

// quickSuite returns a Suite small enough for unit tests.
func quickSuite() *Suite {
	return &Suite{Scale: workload.ScaleTiny, Nq: 8, Xi: 2, K: 2, Seed: 7, Workers: 2}
}

func TestExperimentsRegistry(t *testing.T) {
	names := Experiments()
	if len(names) < 30 {
		t.Fatalf("expected at least 30 registered experiments, got %d", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate experiment name %q", n)
		}
		seen[n] = true
		if title, ok := Describe(n); !ok || title == "" {
			t.Errorf("experiment %q has no title", n)
		}
	}
	// Every figure and table of the evaluation section must be covered.
	required := []string{"table1", "table3"}
	for f := 15; f <= 46; f++ {
		required = append(required, "fig"+itoa(f))
	}
	for _, r := range required {
		if !seen[r] {
			t.Errorf("missing experiment for %s", r)
		}
	}
	if _, ok := Describe("nonexistent"); ok {
		t.Errorf("Describe should fail for unknown experiments")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

func TestRunUnknownExperiment(t *testing.T) {
	s := quickSuite()
	if _, err := s.Run("fig999"); err == nil {
		t.Errorf("unknown experiment should error")
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{Name: "demo", Title: "demo table", Columns: []string{"a", "bee"}}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("xyz", "w")
	tbl.Notes = append(tbl.Notes, "a note")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"demo table", "a", "bee", "xyz", "2.500", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// Representative cheap experiments from each group run end to end and
// produce non-empty tables.  In -short mode (the -race CI lane) only a
// cheap cross-section runs; the full list stays in the non-race lane.
func TestRepresentativeExperiments(t *testing.T) {
	s := quickSuite()
	names := []string{"table1", "table3", "fig15", "fig21", "fig24", "fig32", "fig35", "fig40", "fig41", "fig43", "loadbalance", "rpc", "ablation-vfrag", "ablation-mfptree", "ablation-paircache"}
	if testing.Short() {
		names = []string{"table1", "table3", "fig15", "fig35", "fig41"}
	}
	for _, name := range names {
		tbl, err := s.Run(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s produced no rows", name)
		}
		if len(tbl.Columns) == 0 {
			t.Errorf("%s has no columns", name)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Columns) {
				t.Errorf("%s row width %d != %d columns", name, len(row), len(tbl.Columns))
			}
		}
	}
}

func TestComparisonShapes(t *testing.T) {
	// The comparison experiment produces one row per batch size, each with
	// parseable durations for all three algorithms, and batch time grows
	// (weakly) with Nq for the centralized baselines.
	s := quickSuite()
	tbl, err := s.Run("fig38")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 2 {
		t.Fatal("expected at least two batch sizes")
	}
	var prevYen float64
	for i, row := range tbl.Rows {
		if len(row) != 4 {
			t.Fatalf("row %d has %d cells", i, len(row))
		}
		for c := 1; c < 4; c++ {
			if parseMs(t, row[c]) < 0 {
				t.Errorf("negative duration in row %d", i)
			}
		}
		yen := parseMs(t, row[3])
		if i > 0 && yen+1e-6 < prevYen*0.5 {
			t.Errorf("Yen batch time should grow with Nq (row %d: %.3f after %.3f)", i, yen, prevYen)
		}
		prevYen = yen
	}
}

func parseMs(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
	if err != nil {
		t.Fatalf("cannot parse duration %q: %v", s, err)
	}
	return v
}

func TestRunMeasuredWritesJSON(t *testing.T) {
	s := quickSuite()
	tbl, m, err := s.RunMeasured("table3")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "table3" || m.ElapsedNs <= 0 || m.NsPerOp <= 0 {
		t.Fatalf("metrics not populated: %+v", m)
	}
	if len(m.Rows) != len(tbl.Rows) || len(m.Columns) != len(tbl.Columns) {
		t.Fatalf("metrics table shape differs from the printed table")
	}
	dir := t.TempDir()
	path, err := WriteJSON(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_table3.json" {
		t.Fatalf("unexpected file name %s", path)
	}
	var back Metrics
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if back.Name != m.Name || back.NsPerOp != m.NsPerOp || len(back.Rows) != len(m.Rows) {
		t.Fatalf("round-tripped metrics differ: %+v vs %+v", back, m)
	}
}
