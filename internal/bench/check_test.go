package bench

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"kspdg/internal/workload"
)

func TestReadJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := Metrics{
		Name: "rpc", Title: "t", Scale: "small", Nq: 7, Xi: 2, K: 3,
		Workers: 5, Seed: 99, ElapsedNs: 1000, NsPerOp: 500,
		Columns: []string{"a"}, Rows: [][]string{{"1"}},
	}
	path, err := WriteJSON(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_rpc.json" {
		t.Fatalf("wrote %s, want BENCH_rpc.json", path)
	}
	got, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || got.NsPerOp != m.NsPerOp || got.Scale != m.Scale || got.Seed != m.Seed {
		t.Fatalf("round trip changed the record: %+v", got)
	}

	s, err := SuiteFromMetrics(got)
	if err != nil {
		t.Fatal(err)
	}
	if s.Scale != workload.ScaleSmall || s.Nq != 7 || s.Xi != 2 || s.K != 3 || s.Workers != 5 || s.Seed != 99 {
		t.Fatalf("suite does not replay the baseline parameters: %+v", s)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestCheckRegression(t *testing.T) {
	base := Metrics{Name: "rpc", NsPerOp: 1000}

	if err := CheckRegression(base, Metrics{Name: "rpc", NsPerOp: 1400}, 1.5); err != nil {
		t.Errorf("within tolerance: %v", err)
	}
	if err := CheckRegression(base, Metrics{Name: "rpc", NsPerOp: 200}, 1.5); err != nil {
		t.Errorf("an improvement must always pass: %v", err)
	}

	err := CheckRegression(base, Metrics{Name: "rpc", NsPerOp: 2000}, 1.5)
	if err == nil {
		t.Fatal("2x slowdown must fail a 1.5x gate")
	}
	var reg *RegressionError
	if !errors.As(err, &reg) {
		t.Fatalf("error type %T, want *RegressionError", err)
	}
	if reg.Ratio() < 1.99 || reg.Ratio() > 2.01 {
		t.Errorf("ratio %.2f, want 2.0", reg.Ratio())
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Errorf("error %q should say what happened", err)
	}

	if err := CheckRegression(base, Metrics{Name: "other", NsPerOp: 100}, 1.5); err == nil {
		t.Error("mismatched experiment names must fail")
	}
	if err := CheckRegression(Metrics{Name: "rpc"}, Metrics{Name: "rpc", NsPerOp: 1}, 1.5); err == nil {
		t.Error("baseline without ns/op must fail")
	}
	// Unset tolerance falls back to the 1.5x default.
	if err := CheckRegression(base, Metrics{Name: "rpc", NsPerOp: 1400}, 0); err != nil {
		t.Errorf("default tolerance should be 1.5x: %v", err)
	}
	// A strict 1.0 gate is honored, not silently loosened.
	if err := CheckRegression(base, Metrics{Name: "rpc", NsPerOp: 1400}, 1.0); err == nil {
		t.Error("a 1.4x slowdown must fail a strict 1.0x gate")
	}
}

func TestCheckAllocRegression(t *testing.T) {
	base := Metrics{Name: "rpc", Nq: 100, Allocs: 1000}

	if err := CheckAllocRegression(base, Metrics{Name: "rpc", Allocs: 1200}, 1.25); err != nil {
		t.Errorf("within tolerance: %v", err)
	}
	if err := CheckAllocRegression(base, Metrics{Name: "rpc", Allocs: 400}, 1.25); err != nil {
		t.Errorf("an improvement must always pass: %v", err)
	}

	err := CheckAllocRegression(base, Metrics{Name: "rpc", Allocs: 2000}, 1.25)
	if err == nil {
		t.Fatal("2x allocation growth must fail a 1.25x gate")
	}
	var reg *AllocRegressionError
	if !errors.As(err, &reg) {
		t.Fatalf("error type %T, want *AllocRegressionError", err)
	}
	if reg.Ratio() < 1.99 || reg.Ratio() > 2.01 {
		t.Errorf("ratio %.2f, want 2.0", reg.Ratio())
	}
	if !strings.Contains(err.Error(), "allocs/query") {
		t.Errorf("error %q should report per-query counts", err)
	}

	if err := CheckAllocRegression(base, Metrics{Name: "other", Allocs: 10}, 1.25); err == nil {
		t.Error("mismatched experiment names must fail")
	}
	// A baseline recorded before allocation tracking is skipped, not failed.
	if err := CheckAllocRegression(Metrics{Name: "rpc"}, Metrics{Name: "rpc", Allocs: 1 << 30}, 1.25); err != nil {
		t.Errorf("zero-alloc baseline must skip the gate: %v", err)
	}
	// Unset tolerance falls back to the 1.25x default.
	if err := CheckAllocRegression(base, Metrics{Name: "rpc", Allocs: 1200}, 0); err != nil {
		t.Errorf("default tolerance should be 1.25x: %v", err)
	}
}
