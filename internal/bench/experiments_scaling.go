package bench

import (
	"fmt"
	"runtime"
	"time"
)

// Scaling sweeps the worker parallelism over the batched rpc workload: the
// same TCP deployment, query pool and mixed workload as the rpc experiment,
// with every worker's partial-KSP executor (and the index's update sharding)
// pinned to 1, 2, 4 and 8 goroutines.  The answers are bit-identical at every
// width, so the sweep isolates pure CPU scaling: on a multi-core host
// queries/s should grow towards the core count, while on a 1-CPU host every
// row should match parallelism 1 within noise (the executor adds no work,
// only concurrency).
func (s *Suite) Scaling() (*Table, error) {
	table := &Table{
		Columns: []string{"parallelism", "elapsed", "queries/s", "speedup_vs_1"},
	}
	var base time.Duration
	for _, par := range []int{1, 2, 4, 8} {
		el, _, err := s.runRPCMode("batched", par)
		if err != nil {
			return nil, fmt.Errorf("parallelism %d: %w", par, err)
		}
		if base == 0 {
			base = el
		}
		table.AddRow(par, el, float64(s.Nq)/el.Seconds(), base.Seconds()/el.Seconds())
	}
	table.Notes = append(table.Notes,
		fmt.Sprintf("%d TCP workers on loopback, %d-deep query pool, batched transport, mixed hotspot workload: %d queries (k=%d) + 3 update batches",
			s.Workers, rpcInflight, s.Nq, s.K),
		fmt.Sprintf("host has GOMAXPROCS=%d; speedups beyond that are not expected", runtime.GOMAXPROCS(0)),
		"each worker fans a request's pairs (and heavy pairs' per-subgraph Yen searches) across the configured",
		"number of goroutines; update batches shard bound refreshes across affected subgraphs at the same width.")
	return table, nil
}
