package bench

import (
	"fmt"
	"time"

	"kspdg/internal/cluster"
	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/partition"
	"kspdg/internal/rpcbatch"
	"kspdg/internal/serve"
	"kspdg/internal/workload"
)

// rpcInflight is the depth of the concurrent query pool the transport
// comparison runs under — the regime where cross-query batching pays.
const rpcInflight = 8

// RPCTransports compares the three master↔worker transports on the same
// concurrent mixed workload, served by real TCP worker servers on loopback:
//
//   - serialized: the legacy transport — one connection per worker, one
//     request at a time, every query fanning its pairs out alone;
//   - pipelined: multiplexed request-ID framing over a small connection pool,
//     many requests in flight per worker, still per-query fan-out;
//   - batched: the pipelined transport plus per-worker rpcbatch queues that
//     coalesce and dedupe pair requests across concurrent queries.
//
// The workload is the serve layer's concurrent path: a pool of rpcInflight
// query workers drains randomized queries while weight-update batches are
// broadcast to the workers in between.
func (s *Suite) RPCTransports() (*Table, error) {
	table := &Table{
		Columns: []string{"transport", "elapsed", "queries/s", "rpc_batches", "pairs_coalesced", "dedup_hits", "pair_cache_hits"},
	}
	elapsed := make(map[string]time.Duration)
	for _, mode := range []string{"serialized", "pipelined", "batched"} {
		// Parallelism 0: each worker's executor defaults to GOMAXPROCS, the
		// deployment default (see the scaling experiment for the sweep).
		el, st, err := s.runRPCMode(mode, 0)
		if err != nil {
			return nil, fmt.Errorf("transport %s: %w", mode, err)
		}
		table.AddRow(mode, el, float64(s.Nq)/el.Seconds(), st.RPCBatches, st.PairsCoalesced, st.DedupHits, st.PairCacheHits)
		elapsed[mode] = el
	}
	table.Notes = append(table.Notes,
		fmt.Sprintf("%d TCP workers on loopback, %d-deep query pool, mixed hotspot workload: %d queries (k=%d) + 3 update batches",
			s.Workers, rpcInflight, s.Nq, s.K),
		fmt.Sprintf("speedup over serialized: pipelined %.2fx, batched %.2fx",
			elapsed["serialized"].Seconds()/elapsed["pipelined"].Seconds(),
			elapsed["serialized"].Seconds()/elapsed["batched"].Seconds()),
		"pipelining alone pays on multi-core hosts and real networks (it removes head-of-line blocking);",
		"batching pays everywhere: coalesced flushes amortise the wire and the epoch-pinned pair memo",
		"removes the repeated subgraph searches that overlapping queries would otherwise recompute.")
	return table, nil
}

// runRPCMode deploys one transport mode end to end and replays the workload.
// parallelism is each worker's partial-KSP executor width and the index's
// update sharding width (0 = GOMAXPROCS).
func (s *Suite) runRPCMode(mode string, parallelism int) (time.Duration, serve.Stats, error) {
	ds, err := workload.BuiltinDataset("NY", s.Scale)
	if err != nil {
		return 0, serve.Stats{}, err
	}
	// Large subgraphs put the deployment in the paper's query-cost regime:
	// the skeleton (filter step) shrinks while each partial-KSP search
	// (refine step) grows, so the master↔worker request path dominates query
	// cost — exactly the traffic the transports differ on.
	z := ds.DefaultZ * 4
	part, err := partition.PartitionGraph(ds.Graph, z)
	if err != nil {
		return 0, serve.Stats{}, err
	}
	index, err := dtlp.Build(part, dtlp.Config{Xi: s.Xi, UpdateParallelism: parallelism})
	if err != nil {
		return 0, serve.Stats{}, err
	}

	// One TCP worker server per slot, each owning a round-robin share of the
	// subgraphs.  The workers resolve epoch pins against the master's
	// retained views (like the in-process cluster), so epoch-pinned requests
	// are answered exactly and the batched transport may memoize them.
	var servers []*cluster.Server
	var remotes []*cluster.RemoteWorker
	shutdown := func() {
		for _, rw := range remotes {
			rw.Close()
		}
		for _, srv := range servers {
			srv.Close()
		}
	}
	for w := 0; w < s.Workers; w++ {
		var owned []partition.SubgraphID
		for i := 0; i < part.NumSubgraphs(); i++ {
			if i%s.Workers == w {
				owned = append(owned, partition.SubgraphID(i))
			}
		}
		worker := cluster.NewWorker(w, part, owned)
		worker.SetViewResolver(index.ViewAt)
		worker.SetParallelism(parallelism)
		srv, err := cluster.Serve("127.0.0.1:0", worker)
		if err != nil {
			shutdown()
			return 0, serve.Stats{}, err
		}
		servers = append(servers, srv)
	}
	copts := cluster.ClientOptions{PoolSize: 2}
	if mode == "serialized" {
		copts = cluster.ClientOptions{Serialize: true}
	}
	for _, srv := range servers {
		rw, err := cluster.DialPool(srv.Addr(), copts)
		if err != nil {
			shutdown()
			return 0, serve.Stats{}, err
		}
		remotes = append(remotes, rw)
	}
	var provider core.PartialProvider = cluster.NewRemoteProvider(remotes)
	var bp *cluster.BatchedRemoteProvider
	if mode == "batched" {
		// The memo is opted in explicitly: these workers resolve epoch pins,
		// so an epoch-pinned answer really is immutable.
		bp = cluster.NewBatchedRemoteProvider(remotes, rpcbatch.Options{
			MaxDelay:      time.Millisecond,
			CacheCapacity: 4096,
		})
		provider = bp
	}
	server := serve.New(index, provider, serve.Options{
		Workers: rpcInflight,
		Engine:  s.engineOpts(),
	})

	// Commute-shaped skew: many distinct sources head for a few hub
	// destinations, so concurrent queries share refine pairs without being
	// identical (identical queries would be absorbed by the serve layer's
	// query cache in every mode).
	queries := workload.NewQueryGenerator(ds.Graph.NumVertices(), s.Seed).HotspotBatch(s.Nq, 8, 0.9)
	sc := workload.GenerateMixedWith(ds.Graph, queries, 3, s.K, 0.2, 0.3, s.Seed)
	report, err := server.RunScenario(sc)
	if err == nil {
		if errs := report.Errs(); len(errs) > 0 {
			err = errs[0]
		}
	}
	stats := server.Stats()
	server.Close()
	if bp != nil {
		bp.Close()
	}
	shutdown()
	if err != nil {
		return 0, serve.Stats{}, err
	}
	return report.Elapsed, stats, nil
}
