package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"kspdg/internal/workload"
)

// Metrics is the machine-readable record of one experiment run, written as
// BENCH_<name>.json so the perf trajectory can be tracked across commits
// instead of living only in captured plain-text tables.  Reference runs are
// committed at the repository root (e.g. BENCH_rpc.json, the transport
// comparison recorded by `kspbench -exp rpc -json .`); CI re-exercises the
// emitter with tiny sizes on every push.  The naming is load-bearing: the
// BENCH_ prefix is what downstream tooling greps for, so new experiments
// should record their artifacts the same way.
type Metrics struct {
	Name    string `json:"name"`
	Title   string `json:"title"`
	Scale   string `json:"scale"`
	Nq      int    `json:"nq"`
	Xi      int    `json:"xi"`
	K       int    `json:"k"`
	Workers int    `json:"workers"`
	Seed    int64  `json:"seed"`

	// ElapsedNs is the wall-clock time of the whole experiment; NsPerOp
	// divides it by the number of table rows (the experiment's unit of work).
	ElapsedNs int64 `json:"elapsed_ns"`
	NsPerOp   int64 `json:"ns_per_op"`
	// Allocs and AllocBytes are the heap allocation deltas over the run
	// (runtime.MemStats Mallocs / TotalAlloc).
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`

	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// scaleName renders the suite's scale for the metrics record.
func (s *Suite) scaleName() string {
	switch s.Scale {
	case workload.ScaleSmall:
		return "small"
	case workload.ScaleMedium:
		return "medium"
	default:
		return "tiny"
	}
}

// RunMeasured runs one experiment and captures wall time and allocation
// counters alongside the table.
func (s *Suite) RunMeasured(name string) (*Table, Metrics, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	table, err := s.Run(name)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, Metrics{}, err
	}
	m := Metrics{
		Name:       table.Name,
		Title:      table.Title,
		Scale:      s.scaleName(),
		Nq:         s.Nq,
		Xi:         s.Xi,
		K:          s.K,
		Workers:    s.Workers,
		Seed:       s.Seed,
		ElapsedNs:  elapsed.Nanoseconds(),
		NsPerOp:    elapsed.Nanoseconds() / int64(max(len(table.Rows), 1)),
		Allocs:     after.Mallocs - before.Mallocs,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
		Columns:    table.Columns,
		Rows:       table.Rows,
		Notes:      table.Notes,
	}
	return table, m, nil
}

// WriteJSON writes the metrics as BENCH_<name>.json in dir, creating the
// directory if needed.
func WriteJSON(dir string, m Metrics) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("BENCH_%s.json", m.Name))
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
