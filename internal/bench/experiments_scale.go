package bench

import (
	"fmt"
	"math"
	"sort"
	"time"

	"kspdg/internal/baseline"
	"kspdg/internal/cluster"
	"kspdg/internal/core"
	"kspdg/internal/dtlp"
	"kspdg/internal/graph"
	"kspdg/internal/mfptree"
	"kspdg/internal/partition"
	"kspdg/internal/shortest"
	"kspdg/internal/workload"
)

// serverSweep is the list of simulated cluster sizes used by the scaling-out
// experiments (the paper sweeps 2..20 servers).
func (s *Suite) serverSweep() []int { return []int{1, 2, 4, 8} }

// Fig42 reproduces Figure 42: DTLP building time versus the number of
// servers.  Construction parallelism stands in for distributing the subgraph
// indexing work across servers.
func (s *Suite) Fig42() (*Table, error) {
	t := &Table{Columns: []string{"network", "servers", "build time"}}
	for _, name := range workload.DatasetNames() {
		ds, err := workload.BuiltinDataset(name, s.Scale)
		if err != nil {
			return nil, err
		}
		for _, servers := range s.serverSweep() {
			part, err := partition.PartitionGraph(ds.Graph, ds.DefaultZ)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := dtlp.Build(part, dtlp.Config{Xi: s.Xi, Parallelism: servers}); err != nil {
				return nil, err
			}
			t.AddRow(name, servers, time.Since(start))
		}
	}
	t.Notes = append(t.Notes, "building time drops as more servers share the subgraph indexing work (Figure 42)")
	return t, nil
}

// Fig43 reproduces Figure 43: query batch processing time versus the number
// of servers, per dataset.
func (s *Suite) Fig43() (*Table, error) {
	t := &Table{Columns: []string{"network", "servers", "batch time"}}
	for _, name := range workload.DatasetNames() {
		st, err := s.load(name, 0, s.Xi)
		if err != nil {
			return nil, err
		}
		queries := s.queries(st.ds.Graph, s.Nq)
		for _, servers := range s.serverSweep() {
			c, err := cluster.New(st.index, cluster.Config{NumWorkers: servers, QueryBolts: servers})
			if err != nil {
				return nil, err
			}
			elapsed, _, err := runBatchCluster(c, queries, s.K)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, servers, elapsed)
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("Nq=%d, k=%d; processing time falls as servers are added (Figure 43)", s.Nq, s.K))
	return t, nil
}

// Fig44 reproduces Figure 44: processing time versus the number of servers
// for several values of k on NY.
func (s *Suite) Fig44() (*Table, error) {
	st, err := s.load("NY", 0, s.Xi)
	if err != nil {
		return nil, err
	}
	queries := s.queries(st.ds.Graph, s.Nq)
	t := &Table{Columns: []string{"servers", "k", "batch time"}}
	for _, servers := range s.serverSweep() {
		for _, k := range []int{2, 4, 6} {
			c, err := cluster.New(st.index, cluster.Config{NumWorkers: servers, QueryBolts: servers})
			if err != nil {
				return nil, err
			}
			elapsed, _, err := runBatchCluster(c, queries, k)
			if err != nil {
				return nil, err
			}
			t.AddRow(servers, k, elapsed)
		}
	}
	t.Notes = append(t.Notes, "more servers reduce processing time for every k (Figure 44)")
	return t, nil
}

// Fig45 reproduces Figure 45: scalability of KSP-DG versus the centralized
// baselines when queries are spread over a growing number of servers.  The
// centralized algorithms are modelled as the paper models them: each server
// runs an independent instance and the query batch is split evenly.
func (s *Suite) Fig45() (*Table, error) {
	st, err := s.load("NY", 0, s.Xi)
	if err != nil {
		return nil, err
	}
	queries := s.queries(st.ds.Graph, s.Nq)
	yen := baseline.NewYen(st.ds.Graph)
	find := baseline.NewFindKSP(st.ds.Graph)
	t := &Table{Columns: []string{"servers", "KSP-DG", "FindKSP", "Yen"}}
	for _, servers := range s.serverSweep() {
		c, err := cluster.New(st.index, cluster.Config{NumWorkers: servers, QueryBolts: servers})
		if err != nil {
			return nil, err
		}
		kspdgTime, _, err := runBatchCluster(c, queries, s.K)
		if err != nil {
			return nil, err
		}
		findTime, err := runPartitionedBaseline(find, queries, s.K, servers)
		if err != nil {
			return nil, err
		}
		yenTime, err := runPartitionedBaseline(yen, queries, s.K, servers)
		if err != nil {
			return nil, err
		}
		t.AddRow(servers, kspdgTime, findTime, yenTime)
	}
	t.Notes = append(t.Notes, "paper: KSP-DG stays fastest for every cluster size; all three curves fall as servers are added (Figure 45, see EXPERIMENTS.md for the small-scale caveat)")
	return t, nil
}

// runPartitionedBaseline models running a centralized algorithm independently
// on `servers` machines with the query batch split evenly: the batch time is
// the slowest server's share, i.e. roughly total/servers.
func runPartitionedBaseline(alg baseline.Algorithm, queries []workload.Query, k, servers int) (time.Duration, error) {
	if servers < 1 {
		servers = 1
	}
	var slowest time.Duration
	for w := 0; w < servers; w++ {
		var share []workload.Query
		for i := w; i < len(queries); i += servers {
			share = append(share, queries[i])
		}
		elapsed, err := runBaselineBatch(alg, share, k)
		if err != nil {
			return 0, err
		}
		if elapsed > slowest {
			slowest = elapsed
		}
	}
	return slowest, nil
}

// Fig46 reproduces Figure 46: relative speedups (time on 1 server divided by
// time on N servers) of the three algorithms.
func (s *Suite) Fig46() (*Table, error) {
	st, err := s.load("NY", 0, s.Xi)
	if err != nil {
		return nil, err
	}
	queries := s.queries(st.ds.Graph, s.Nq)
	yen := baseline.NewYen(st.ds.Graph)
	find := baseline.NewFindKSP(st.ds.Graph)

	base := map[string]time.Duration{}
	t := &Table{Columns: []string{"servers", "KSP-DG speedup", "FindKSP speedup", "Yen speedup"}}
	for _, servers := range s.serverSweep() {
		c, err := cluster.New(st.index, cluster.Config{NumWorkers: servers, QueryBolts: servers})
		if err != nil {
			return nil, err
		}
		kspdgTime, _, err := runBatchCluster(c, queries, s.K)
		if err != nil {
			return nil, err
		}
		findTime, err := runPartitionedBaseline(find, queries, s.K, servers)
		if err != nil {
			return nil, err
		}
		yenTime, err := runPartitionedBaseline(yen, queries, s.K, servers)
		if err != nil {
			return nil, err
		}
		if servers == s.serverSweep()[0] {
			base["kspdg"], base["find"], base["yen"] = kspdgTime, findTime, yenTime
		}
		t.AddRow(servers, speedup(base["kspdg"], kspdgTime), speedup(base["find"], findTime), speedup(base["yen"], yenTime))
	}
	t.Notes = append(t.Notes, "relative speedup grows roughly linearly with the number of servers for every algorithm (Figure 46)")
	return t, nil
}

func speedup(base, now time.Duration) float64 {
	if now <= 0 {
		return 0
	}
	return float64(base) / float64(now)
}

// LoadBalance reports the per-worker load spread (requests, pairs, owned
// subgraphs) of a cluster run, standing in for the CPU/memory balance
// discussion of Section 6.6.
func (s *Suite) LoadBalance() (*Table, error) {
	st, err := s.load("CUSA", 0, s.Xi)
	if err != nil {
		return nil, err
	}
	c, err := cluster.New(st.index, cluster.Config{NumWorkers: s.Workers})
	if err != nil {
		return nil, err
	}
	queries := s.queries(st.ds.Graph, s.Nq)
	if _, _, err := runBatchCluster(c, queries, s.K); err != nil {
		return nil, err
	}
	cs := c.Stats()
	t := &Table{Columns: []string{"worker", "subgraphs", "requests", "pairs served"}}
	for w := 0; w < cs.Workers; w++ {
		t.AddRow(w, cs.WorkerSubgraphs[w], cs.WorkerRequests[w], cs.WorkerPairs[w])
	}
	t.AddRow("spread", fmt.Sprintf("%.1f%%", spread(cs.WorkerSubgraphs)*100),
		fmt.Sprintf("%.1f%%", spread(cs.WorkerRequests)*100), fmt.Sprintf("%.1f%%", spread(cs.WorkerPairs)*100))
	t.Notes = append(t.Notes, "the paper reports <6% CPU and <2% memory spread across servers; the simulated spread is shown in the last row")
	return t, nil
}

// AblationVfrag compares the tightness of the vfrag-based lower bound
// distances against the simpler "m smallest edge weights" bound the paper
// starts from in Section 3.4.
func (s *Suite) AblationVfrag() (*Table, error) {
	st, err := s.load("NY", 0, s.Xi)
	if err != nil {
		return nil, err
	}
	// Perturb weights so bounds separate from exact distances.
	batch, err := s.perturb(st.ds.Graph, 0.5, 0.6, s.Seed)
	if err != nil {
		return nil, err
	}
	if err := st.index.ApplyUpdates(batch); err != nil {
		return nil, err
	}
	var vfragRatios, edgeRatios []float64
	for _, sg := range st.part.Subgraphs {
		si := st.index.SubgraphIndex(sg.ID)
		for i := 0; i < len(sg.Boundary); i++ {
			for j := i + 1; j < len(sg.Boundary); j++ {
				la, _ := sg.ToLocal(sg.Boundary[i])
				lb, _ := sg.ToLocal(sg.Boundary[j])
				trueDist := shortest.ShortestDistance(sg.Local, la, lb, nil)
				if math.IsInf(trueDist, 1) || trueDist == 0 {
					continue
				}
				lbd := si.LBDLocal(la, lb)
				if !math.IsInf(lbd, 1) {
					vfragRatios = append(vfragRatios, lbd/trueDist)
				}
				if eb := edgeCountBound(sg, la, lb); eb > 0 {
					edgeRatios = append(edgeRatios, eb/trueDist)
				}
			}
		}
	}
	t := &Table{Columns: []string{"bound", "pairs", "mean tightness (bound/true)", "p10", "p90"}}
	addStats := func(label string, ratios []float64) {
		if len(ratios) == 0 {
			t.AddRow(label, 0, 0.0, 0.0, 0.0)
			return
		}
		sort.Float64s(ratios)
		mean := 0.0
		for _, r := range ratios {
			mean += r
		}
		mean /= float64(len(ratios))
		t.AddRow(label, len(ratios), mean, ratios[len(ratios)/10], ratios[len(ratios)*9/10])
	}
	addStats("vfrag (DTLP)", vfragRatios)
	addStats("m smallest edge weights", edgeRatios)
	t.Notes = append(t.Notes, "tightness closer to 1.0 is better; vfrag bounds dominate the edge-count bounds, motivating Section 3.4")
	return t, nil
}

// edgeCountBound computes the first-attempt bound of Section 3.4: the number
// of edges m on the fewest-edge path between the pair, times the m smallest
// edge weights of the subgraph.
func edgeCountBound(sg *partition.Subgraph, la, lb graph.VertexID) float64 {
	hop := &shortest.Options{Weight: func(graph.EdgeID) float64 { return 1 }}
	p, ok := shortest.ShortestPath(sg.Local, la, lb, hop)
	if !ok {
		return 0
	}
	m := p.Len()
	weights := make([]float64, sg.Local.NumEdges())
	for e := 0; e < sg.Local.NumEdges(); e++ {
		weights[e] = sg.Local.Weight(graph.EdgeID(e))
	}
	sort.Float64s(weights)
	if m > len(weights) {
		m = len(weights)
	}
	var sum float64
	for i := 0; i < m; i++ {
		sum += weights[i]
	}
	return sum
}

// AblationMFPTree compares the flat EP-Index against the LSH+MFP-tree
// compressed representation: storage entries and the cost of enumerating the
// bounding paths affected by a batch of edge changes.
func (s *Suite) AblationMFPTree() (*Table, error) {
	st, err := s.load("FLA", 0, s.Xi)
	if err != nil {
		return nil, err
	}
	t := &Table{Columns: []string{"representation", "entries/nodes", "lookup time (all edges)"}}
	totalFlat, totalCompressed := 0, 0
	var flatTime, compressedTime time.Duration
	for _, sg := range st.part.Subgraphs {
		si := st.index.SubgraphIndex(sg.ID)
		sets := si.PathSets()
		if len(sets) == 0 {
			continue
		}
		totalFlat += si.EPIndexEntries()
		start := time.Now()
		for e := range sets {
			for range si.PathsThroughEdge(e) {
			}
		}
		flatTime += time.Since(start)

		forest, err := mfptree.Build(sets, mfptree.Config{Seed: uint64(s.Seed)})
		if err != nil {
			return nil, err
		}
		totalCompressed += forest.Stats().PathNodes
		start = time.Now()
		for e := range sets {
			forest.VisitPathsForEdge(e, func(mfptree.PathID) {})
		}
		compressedTime += time.Since(start)
	}
	t.AddRow("EP-Index (flat)", totalFlat, flatTime)
	t.AddRow("MFP-tree (LSH groups)", totalCompressed, compressedTime)
	if totalFlat > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("compression ratio: %.2f (path nodes / flat entries)", float64(totalCompressed)/float64(totalFlat)))
	}
	return t, nil
}

// AblationPairCache measures the Section 5.2 optimisation: reusing partial k
// shortest paths computed for earlier reference paths of the same query.
func (s *Suite) AblationPairCache() (*Table, error) {
	st, err := s.load("COL", 0, 1)
	if err != nil {
		return nil, err
	}
	batch, err := s.perturb(st.ds.Graph, 0.4, 0.7, s.Seed)
	if err != nil {
		return nil, err
	}
	if err := st.index.ApplyUpdates(batch); err != nil {
		return nil, err
	}
	queries := s.queries(st.ds.Graph, s.Nq/2)
	k := 6

	t := &Table{Columns: []string{"variant", "batch time", "pairs refined", "avg iterations"}}
	for _, disable := range []bool{false, true} {
		engine := core.NewEngine(st.index, nil, core.Options{DisablePairCache: disable, MaxIterations: 80})
		elapsed, results, err := runBatchLocal(engine, queries, k)
		if err != nil {
			return nil, err
		}
		total := 0
		for _, r := range results {
			total += r.PairsRefined
		}
		label := "with pair reuse (Section 5.2)"
		if disable {
			label = "without pair reuse"
		}
		t.AddRow(label, elapsed, total, avgIterations(results))
	}
	t.Notes = append(t.Notes, "reusing partial paths across neighbouring reference paths reduces the refine work per query")
	return t, nil
}
